package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"testing"

	"skyfaas/internal/load"
)

// capture redirects stdout for the duration of fn and returns what was
// written.
func capture(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	var buf bytes.Buffer
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = io.Copy(&buf, r)
	}()
	defer func() {
		os.Stdout = old
		w.Close()
		<-done
	}()
	fn()
	w.Close()
	os.Stdout = old
	<-done
	return buf.String()
}

// burstSink is a fake skyd: it answers /v1/burst with 200s, interleaving a
// 429 (with Retry-After) every shedEvery-th request when shedEvery > 0.
type burstSink struct {
	mu        sync.Mutex
	bodies    []burstBody
	count     atomic.Int64
	shedEvery int64
}

func (s *burstSink) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/v1/burst" || r.Method != http.MethodPost {
		http.Error(w, "wrong endpoint", http.StatusNotFound)
		return
	}
	var body burstBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	s.bodies = append(s.bodies, body)
	s.mu.Unlock()
	n := s.count.Add(1)
	if s.shedEvery > 0 && n%s.shedEvery == 0 {
		w.Header().Set("Retry-After", "2")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		_, _ = w.Write([]byte(`{"error":"overloaded","shed":true}`))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write([]byte(`{"completed":1}`))
}

func TestRunJSONReport(t *testing.T) {
	sink := &burstSink{shedEvery: 4}
	srv := httptest.NewServer(sink)
	defer srv.Close()

	var err error
	out := capture(t, func() {
		err = run([]string{
			"-url", srv.URL,
			"-rps", "100", "-duration", "500ms",
			"-workload", "sha1_hash", "-strategy", "baseline", "-az", "t1-a",
			"-seed", "7", "-json",
		})
	})
	if err != nil {
		t.Fatal(err)
	}

	var report load.Report
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, out)
	}
	if report.Requests != 50 {
		t.Fatalf("requests = %d, want 50 (100 rps for 500ms)", report.Requests)
	}
	wantShed := uint64(50 / 4)
	if report.Shed != wantShed {
		t.Fatalf("shed = %d, want %d", report.Shed, wantShed)
	}
	if report.OK != 50-wantShed {
		t.Fatalf("ok = %d, want %d", report.OK, 50-wantShed)
	}
	if report.Errors != 0 {
		t.Fatalf("errors = %d, want 0", report.Errors)
	}
	if report.MeanRetryAfterMS != 2000 {
		t.Fatalf("mean retry-after = %v ms, want 2000", report.MeanRetryAfterMS)
	}
	if report.Latency.Count != 50-wantShed || report.Latency.P99 <= 0 {
		t.Fatalf("served latency summary %+v, want count %d with positive p99",
			report.Latency, 50-wantShed)
	}
	if report.OfferedRPS != 100 {
		t.Fatalf("offered rps = %v, want 100", report.OfferedRPS)
	}

	// Every burst carried the flags through.
	sink.mu.Lock()
	defer sink.mu.Unlock()
	for _, b := range sink.bodies {
		if b.Workload != "sha1_hash" || b.Strategy != "baseline" || b.AZ != "t1-a" || b.N != 1 {
			t.Fatalf("unexpected burst body %+v", b)
		}
	}
}

func TestRunTableReport(t *testing.T) {
	sink := &burstSink{}
	srv := httptest.NewServer(sink)
	defer srv.Close()

	var err error
	out := capture(t, func() {
		err = run([]string{
			"-url", srv.URL,
			"-rps", "50", "-duration", "200ms",
			"-mix", "sha1_hash=3,matrix_multiply=1", "-n", "2",
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"offered RPS", "shed (429)", "latency p99 ms"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	// The mix must reach the wire: both workloads, majority sha1_hash.
	sink.mu.Lock()
	defer sink.mu.Unlock()
	byFn := map[string]int{}
	for _, b := range sink.bodies {
		byFn[b.Workload]++
		if b.N != 2 {
			t.Fatalf("burst n = %d, want 2", b.N)
		}
	}
	if byFn["sha1_hash"] == 0 || byFn["sha1_hash"] <= byFn["matrix_multiply"] {
		t.Fatalf("mix not honored: %v", byFn)
	}
}

// TestKeyReachesWire: -key must authenticate every burst, and with no flag
// the SKY_API_KEY environment variable is the default.
func TestKeyReachesWire(t *testing.T) {
	var mu sync.Mutex
	seen := map[string]int{}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seen[r.Header.Get("Authorization")]++
		mu.Unlock()
		_, _ = w.Write([]byte(`{"completed":1}`))
	}))
	defer srv.Close()

	base := []string{"-url", srv.URL, "-rps", "40", "-duration", "100ms", "-json"}
	capture(t, func() {
		if err := run(append(base, "-key", "sk-flag")); err != nil {
			t.Error(err)
		}
	})
	t.Setenv("SKY_API_KEY", "sk-env")
	capture(t, func() {
		if err := run(base); err != nil {
			t.Error(err)
		}
	})
	mu.Lock()
	defer mu.Unlock()
	if seen["Bearer sk-flag"] == 0 || seen["Bearer sk-env"] == 0 {
		t.Fatalf("auth headers seen = %v, want both Bearer sk-flag and Bearer sk-env", seen)
	}
	if seen[""] != 0 {
		t.Fatalf("%d requests went out unauthenticated: %v", seen[""], seen)
	}
}

func TestRunBadInputs(t *testing.T) {
	if err := run([]string{"-workload", "no_such_fn", "-duration", "1ms"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if err := run([]string{"-pattern", "sawtooth", "-duration", "1ms"}); err == nil {
		t.Fatal("unknown pattern accepted")
	}
	if err := run([]string{"-mix", "sha1_hash=bogus", "-duration", "1ms"}); err == nil {
		t.Fatal("bad mix weight accepted")
	}
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestErrorsRecorded(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()

	var err error
	out := capture(t, func() {
		err = run([]string{"-url", srv.URL, "-rps", "40", "-duration", "250ms", "-json"})
	})
	if err != nil {
		t.Fatal(err)
	}
	var report load.Report
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatal(err)
	}
	if report.Errors != report.Requests || report.Requests == 0 {
		t.Fatalf("errors = %d of %d requests, want all errored", report.Errors, report.Requests)
	}
	if report.ErrorRate != 1 {
		t.Fatalf("error rate = %v, want 1", report.ErrorRate)
	}
}
