// Command skyload is an open-loop load generator for a running skyd: it
// fires bursts against POST /v1/burst on a deterministic arrival schedule
// (constant, ramp, or diurnal RPS off the shared rng), draws each request's
// function from a weighted workload mix, records per-request latency into
// log-bucketed histograms, and prints a results report — achieved RPS,
// p50/p90/p95/p99, and the shed/error breakdown — as a table or JSON.
//
// Being open-loop, arrivals follow the schedule regardless of completions: a
// saturated or shedding skyd does not slow the generator down, so the report
// shows true overload behavior rather than the self-throttled numbers a
// closed-loop client would produce.
//
// Usage:
//
//	skyd -addr :8080 -admission &
//	skyload -url http://localhost:8080 -rps 20 -duration 10s -workload sha1_hash
//	skyload -url http://localhost:8080 -pattern ramp -base-rps 2 -rps 60 -duration 30s \
//	        -mix "sha1_hash=3,thumbnailer=1" -json
//
// Against an auth-enabled skyd (-tenants), pass a tenant API key with -key
// or the SKY_API_KEY environment variable:
//
//	skyd -addr :8080 -admission -tenants fixture &
//	SKY_API_KEY=sk-acme-7f3a skyload -rps 20 -duration 10s -workload sha1_hash
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"skyfaas/internal/load"
	"skyfaas/internal/rng"
	"skyfaas/internal/skyapi"
	"skyfaas/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "skyload:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("skyload", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	url := fs.String("url", "http://127.0.0.1:8080", "skyd base URL")
	key := fs.String("key", skyapi.KeyFromEnv(), "tenant API key for an auth-enabled skyd (default $SKY_API_KEY; empty = unauthenticated)")
	pattern := fs.String("pattern", "constant", "arrival pattern: constant, ramp, or diurnal")
	rps := fs.Float64("rps", 10, "peak offered requests per second")
	baseRPS := fs.Float64("base-rps", 0, "ramp start / diurnal trough RPS")
	duration := fs.Duration("duration", 10*time.Second, "load duration")
	period := fs.Duration("period", 0, "diurnal cycle length (0 = duration)")
	wlName := fs.String("workload", "sha1_hash", "single workload to drive (ignored when -mix is set)")
	mixFlag := fs.String("mix", "", "weighted workload mix, e.g. \"sha1_hash=3,thumbnailer=1\"")
	n := fs.Int("n", 1, "invocations per burst request")
	strategy := fs.String("strategy", "", "routing strategy for each burst (empty = skyd default)")
	az := fs.String("az", "", "pinned zone for single-zone strategies")
	candidates := fs.String("candidates", "", "comma-separated candidate zones")
	seed := fs.Uint64("seed", 42, "schedule + mix seed (same seed, same arrival plan)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request HTTP timeout")
	jsonOut := fs.Bool("json", false, "emit the report as JSON instead of a table")
	if err := fs.Parse(args); err != nil {
		return err
	}

	sched := load.Schedule{
		Pattern:  load.Pattern(*pattern),
		PeakRPS:  *rps,
		BaseRPS:  *baseRPS,
		Duration: *duration,
		Period:   *period,
	}
	if err := sched.Validate(); err != nil {
		return err
	}
	var mix load.Mix
	if *mixFlag != "" {
		m, err := load.ParseMix(*mixFlag)
		if err != nil {
			return err
		}
		mix = m
	} else {
		spec, ok := workload.ByName(*wlName)
		if !ok {
			names := make([]string, 0, 12)
			for _, s := range workload.All() {
				names = append(names, s.Name)
			}
			return fmt.Errorf("unknown workload %q; choose from: %s", *wlName, strings.Join(names, ", "))
		}
		mix = load.SingleMix(spec.ID)
	}
	if *n < 1 {
		*n = 1
	}

	root := rng.New(*seed)
	arrivals := sched.Arrivals(root.Split("skyload/arrivals"))
	mixStream := root.Split("skyload/mix")
	plan := make([]workload.ID, len(arrivals))
	for i := range arrivals {
		plan[i] = mix.Pick(mixStream)
	}

	client := &http.Client{Timeout: *timeout}
	rec := load.NewRecorder()
	var wg sync.WaitGroup
	start := time.Now()
	for i, at := range arrivals {
		// Open loop: sleep to the scheduled offset, then fire regardless of
		// how many requests are still outstanding.
		if wait := at - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		wg.Add(1)
		go func(w workload.ID) {
			defer wg.Done()
			fire(client, *url, *key, rec, burstBody{
				Workload:   w.String(),
				Strategy:   *strategy,
				AZ:         *az,
				N:          *n,
				Candidates: splitList(*candidates),
			})
		}(plan[i])
	}
	wg.Wait()
	elapsed := time.Since(start)

	report := rec.Report(sched.OfferedRPS()*float64(*n), elapsed)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	fmt.Printf("skyload: %s %s for %v against %s (mix %s, %d per burst)\n\n",
		sched.Pattern, fmtRPS(sched), *duration, *url, mix, *n)
	fmt.Print(report.Render())
	return nil
}

type burstBody struct {
	Workload   string   `json:"workload"`
	Strategy   string   `json:"strategy,omitempty"`
	AZ         string   `json:"az,omitempty"`
	N          int      `json:"n"`
	Candidates []string `json:"candidates,omitempty"`
}

// fire issues one burst request and records its outcome. Latency is wall
// time to the full response; sheds also record the server's Retry-After.
// The generator deliberately bypasses the skyapi client on this hot path:
// the recorder classifies raw status codes (a tenant-quota 429 is a shed,
// not an error), and allocating typed errors per request would be waste.
func fire(client *http.Client, base, key string, rec *load.Recorder, body burstBody) {
	rec.Begin()
	buf, err := json.Marshal(body)
	if err != nil {
		rec.Record(load.Errored, 0)
		return
	}
	req, err := http.NewRequest(http.MethodPost, base+"/v1/burst", strings.NewReader(string(buf)))
	if err != nil {
		rec.Record(load.Errored, 0)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	start := time.Now()
	res, err := client.Do(req)
	if err != nil {
		rec.Record(load.Errored, msSince(start))
		return
	}
	defer res.Body.Close()
	_, _ = io.Copy(io.Discard, res.Body)
	lat := msSince(start)
	switch {
	case res.StatusCode == http.StatusOK:
		rec.Record(load.OK, lat)
	case res.StatusCode == http.StatusTooManyRequests:
		rec.Record(load.Shed, lat)
		if secs, err := strconv.Atoi(res.Header.Get("Retry-After")); err == nil && secs > 0 {
			rec.RecordRetryAfter(time.Duration(secs) * time.Second)
		}
	default:
		rec.Record(load.Errored, lat)
	}
}

func msSince(start time.Time) float64 {
	return float64(time.Since(start)) / float64(time.Millisecond)
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fmtRPS(s load.Schedule) string {
	if s.Pattern == load.Constant {
		return fmt.Sprintf("%g rps", s.PeakRPS)
	}
	return fmt.Sprintf("%g→%g rps", s.BaseRPS, s.PeakRPS)
}
