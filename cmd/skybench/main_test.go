package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureStdout runs fn with os.Stdout redirected to a pipe.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	errCh := make(chan error, 1)
	go func() { errCh <- fn() }()
	runErr := <-errCh
	_ = w.Close()
	buf := new(strings.Builder)
	tmp := make([]byte, 4096)
	for {
		n, rerr := r.Read(tmp)
		buf.Write(tmp[:n])
		if rerr != nil {
			break
		}
	}
	return buf.String(), runErr
}

func TestRunTable1(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-ex", "table1"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 1", "logistic_regression", "zipper"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunReducedEx1WithCSV(t *testing.T) {
	dir := t.TempDir()
	out, err := captureStdout(t, func() error {
		return run([]string{"-ex", "ex1", "-scale", "reduced", "-csvdir", dir})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Fig. 3") || !strings.Contains(out, "Fig. 4") {
		t.Errorf("missing figure sections:\n%s", out)
	}
	for _, f := range []string{"fig3_sleep_sweep.csv", "fig4_saturation.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("csv %s not written: %v", f, err)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-scale", "galactic"}); err == nil {
		t.Error("bad scale accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunUnknownExperimentErrors(t *testing.T) {
	_, err := captureStdout(t, func() error {
		return run([]string{"-ex", "ex99"})
	})
	if err == nil {
		t.Fatal("unknown experiment accepted silently")
	}
	// The error names every valid choice, derived from the registry.
	for _, name := range experimentNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list %s", err, name)
		}
	}
}

// TestRegistryAgreesWithFlagText is the drift guard the -ex help string
// used to lack: the flag text, the registry, and the valid-name set must
// all come from the same list.
func TestRegistryAgreesWithFlagText(t *testing.T) {
	names := experimentNames()
	if len(names) == 0 {
		t.Fatal("empty experiment registry")
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate registry entry %s", n)
		}
		seen[n] = true
	}
	for _, want := range []string{"table1", "ex1", "ex6", "ex7", "ex9"} {
		if !seen[want] {
			t.Errorf("registry missing %s", want)
		}
	}
	if seen["all"] {
		t.Error("registry must not claim the reserved name \"all\"")
	}

	// The -ex usage string is derived from the registry and must list
	// every experiment exactly once, in run order.
	usage := exUsage()
	if !strings.Contains(usage, "all | "+strings.Join(names, ",")) {
		t.Errorf("-ex usage %q missing derived list", usage)
	}
}

// TestRunEx7Dispatch runs a mid-registry entry end to end through the CLI:
// the reduced EX-7 must render its table and write its dataset.
func TestRunEx7Dispatch(t *testing.T) {
	dir := t.TempDir()
	out, err := captureStdout(t, func() error {
		return run([]string{"-ex", "ex7", "-scale", "reduced", "-csvdir", dir})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"EX-7", "static-once", "periodic", "drift", "headline"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "ex7_refresh.csv")); err != nil {
		t.Errorf("csv not written: %v", err)
	}
}

// TestRunEx9Dispatch runs the newest registry entry end to end through the
// CLI: the reduced EX-9 must render its scalability table, prove the
// engines agreed, and write its dataset.
func TestRunEx9Dispatch(t *testing.T) {
	dir := t.TempDir()
	out, err := captureStdout(t, func() error {
		return run([]string{"-ex", "ex9", "-scale", "reduced", "-csvdir", dir})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"EX-9", "Shards", "deterministic across engines: yes"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "ex9_scalability.csv")); err != nil {
		t.Errorf("csv not written: %v", err)
	}
}
