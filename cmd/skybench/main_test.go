package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureStdout runs fn with os.Stdout redirected to a pipe.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	errCh := make(chan error, 1)
	go func() { errCh <- fn() }()
	runErr := <-errCh
	_ = w.Close()
	buf := new(strings.Builder)
	tmp := make([]byte, 4096)
	for {
		n, rerr := r.Read(tmp)
		buf.Write(tmp[:n])
		if rerr != nil {
			break
		}
	}
	return buf.String(), runErr
}

func TestRunTable1(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-ex", "table1"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 1", "logistic_regression", "zipper"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunReducedEx1WithCSV(t *testing.T) {
	dir := t.TempDir()
	out, err := captureStdout(t, func() error {
		return run([]string{"-ex", "ex1", "-scale", "reduced", "-csvdir", dir})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Fig. 3") || !strings.Contains(out, "Fig. 4") {
		t.Errorf("missing figure sections:\n%s", out)
	}
	for _, f := range []string{"fig3_sleep_sweep.csv", "fig4_saturation.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("csv %s not written: %v", f, err)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-scale", "galactic"}); err == nil {
		t.Error("bad scale accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunUnknownExperimentIsNoop(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-ex", "ex99"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "" {
		t.Errorf("unknown experiment produced output: %q", out)
	}
}
