// Command skybench regenerates the paper's tables and figures on the
// simulated sky.
//
// Usage:
//
//	skybench -ex all                 # every experiment at paper scale
//	skybench -ex ex3,ex5 -scale reduced
//	skybench -ex table1              # Table 1 (workload catalog) only
//	skybench -ex ex5 -seed 7 -profile-runs 10000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"skyfaas/internal/experiments"
	"skyfaas/internal/metrics"
	"skyfaas/internal/router"
	"skyfaas/internal/tablefmt"
	"skyfaas/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "skybench:", err)
		os.Exit(1)
	}
}

// benchOpts carries the parsed flags into each experiment runner.
type benchOpts struct {
	seed          uint64
	reduced       bool
	profileRuns   int
	days          int
	csvDir        string
	ex6Strategies string
}

// csvWriter is the piece of each result the -csvdir flag consumes.
type csvWriter interface{ WriteCSV(dir string) error }

// renderCSV renders a result and optionally writes its dataset.
func renderCSV(o benchOpts, res interface {
	csvWriter
	Render() string
}, err error) (string, error) {
	if err != nil {
		return "", err
	}
	if o.csvDir != "" {
		if err := res.WriteCSV(o.csvDir); err != nil {
			return "", err
		}
	}
	return res.Render(), nil
}

// experiment is one runnable entry. The registry below is the single source
// of truth: the -ex help text, the "all" set, and the dispatch loop are all
// derived from it, so a new experiment registers itself exactly once.
type experiment struct {
	name string
	run  func(o benchOpts) (string, error)
}

func registry() []experiment {
	return []experiment{
		{"table1", func(benchOpts) (string, error) {
			t := tablefmt.New("Function", "vCPUs", "BaseMS", "Description")
			for _, s := range workload.All() {
				t.Row(s.Name, s.VCPUs, s.BaseMS, s.Description)
			}
			return "Table 1 — workload catalog\n" + t.String(), nil
		}},
		{"ex1", func(o benchOpts) (string, error) {
			cfg := experiments.EX1Config{Seed: o.seed}
			if o.reduced {
				cfg = cfg.Reduced()
			}
			res, err := experiments.RunEX1(cfg)
			return renderCSV(o, res, err)
		}},
		{"ex2", func(o benchOpts) (string, error) {
			cfg := experiments.EX2Config{Seed: o.seed}
			if o.reduced {
				cfg = cfg.Reduced()
			}
			res, err := experiments.RunEX2(cfg)
			return renderCSV(o, res, err)
		}},
		{"ex3", func(o benchOpts) (string, error) {
			cfg := experiments.EX3Config{Seed: o.seed}
			if o.reduced {
				cfg = cfg.Reduced()
			}
			res, err := experiments.RunEX3(cfg)
			return renderCSV(o, res, err)
		}},
		{"ex4", func(o benchOpts) (string, error) {
			cfg := experiments.EX4Config{Seed: o.seed}
			if o.days > 0 {
				cfg.Rounds = o.days
			}
			if o.reduced {
				cfg = cfg.Reduced()
			}
			res, err := experiments.RunEX4(cfg)
			return renderCSV(o, res, err)
		}},
		{"ex5", func(o benchOpts) (string, error) {
			cfg := experiments.EX5Config{Seed: o.seed}
			if o.days > 0 {
				cfg.Days = o.days
			}
			if o.profileRuns > 0 {
				cfg.ProfileRuns = o.profileRuns
			}
			if o.reduced {
				cfg = cfg.Reduced()
			}
			res, err := experiments.RunEX5(cfg)
			return renderCSV(o, res, err)
		}},
		{"ex6", func(o benchOpts) (string, error) {
			cfg := experiments.EX6Config{Seed: o.seed}
			if o.reduced {
				cfg = cfg.Reduced()
			}
			if o.ex6Strategies != "" {
				cfg.Arms = experiments.DefaultEX6Arms()
				for _, name := range strings.Split(o.ex6Strategies, ",") {
					name = strings.TrimSpace(name)
					// Validate up front so a typo fails with the registry's
					// name listing instead of mid-experiment; the placeholder
					// AZ satisfies pinned strategies and is re-resolved to the
					// chaos target inside each cell.
					if _, err := router.Build(router.StrategySpec{Name: name, AZ: "us-west-1b"}); err != nil {
						return "", err
					}
					cfg.Arms = append(cfg.Arms, experiments.EX6Arm{
						Label:      name,
						Strategy:   router.StrategySpec{Name: name},
						Resilience: router.DefaultResilience(),
					})
				}
			}
			res, err := experiments.RunEX6(cfg)
			return renderCSV(o, res, err)
		}},
		{"ex7", func(o benchOpts) (string, error) {
			cfg := experiments.EX7Config{Seed: o.seed}
			if o.reduced {
				cfg = cfg.Reduced()
			}
			res, err := experiments.RunEX7(cfg)
			return renderCSV(o, res, err)
		}},
		{"ex8", func(o benchOpts) (string, error) {
			cfg := experiments.EX8Config{Seed: o.seed}
			if o.reduced {
				cfg = cfg.Reduced()
			}
			res, err := experiments.RunEX8(cfg)
			return renderCSV(o, res, err)
		}},
		{"ex9", func(o benchOpts) (string, error) {
			cfg := experiments.EX9Config{Seed: o.seed}
			if o.reduced {
				cfg = cfg.Reduced()
			}
			res, err := experiments.RunEX9(cfg)
			return renderCSV(o, res, err)
		}},
		{"ex10", func(o benchOpts) (string, error) {
			cfg := experiments.EX10Config{Seed: o.seed}
			if o.reduced {
				cfg = cfg.Reduced()
			}
			res, err := experiments.RunEX10(cfg)
			return renderCSV(o, res, err)
		}},
		{"ex11", func(o benchOpts) (string, error) {
			cfg := experiments.EX11Config{Seed: o.seed}
			if o.profileRuns > 0 {
				cfg.ProfileRuns = o.profileRuns
			}
			if o.reduced {
				cfg = cfg.Reduced()
			}
			res, err := experiments.RunEX11(cfg)
			return renderCSV(o, res, err)
		}},
	}
}

// experimentNames lists the registry in run order.
func experimentNames() []string {
	exps := registry()
	names := make([]string, len(exps))
	for i, e := range exps {
		names[i] = e.name
	}
	return names
}

// exUsage derives the -ex flag's help text from the registry, so the two
// can never drift apart again.
func exUsage() string {
	return "experiments to run: all | " + strings.Join(experimentNames(), ",")
}

func run(args []string) error {
	names := experimentNames()
	fs := flag.NewFlagSet("skybench", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	exFlag := fs.String("ex", "all", exUsage())
	ex6Strategies := fs.String("ex6-strategies", "", "extra EX-6 arms: comma-separated strategy names (see router.Names), run with default resilience")
	seed := fs.Uint64("seed", 42, "simulation seed (equal seeds replay exactly)")
	scale := fs.String("scale", "full", "full | reduced")
	profileRuns := fs.Int("profile-runs", 0, "EX-5 profiling executions per workload per zone (0 = default)")
	days := fs.Int("days", 0, "EX-4/EX-5 evaluation days (0 = paper's 14)")
	csvDir := fs.String("csvdir", "", "also write each figure's dataset as CSV into this directory")
	dumpMetrics := fs.Bool("metrics", false, "dump a Prometheus-text metrics snapshot covering all experiments after the run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scale != "full" && *scale != "reduced" {
		return fmt.Errorf("unknown scale %q", *scale)
	}

	valid := map[string]bool{}
	for _, name := range names {
		valid[name] = true
	}
	want := map[string]bool{}
	for _, name := range strings.Split(*exFlag, ",") {
		name = strings.TrimSpace(name)
		if name != "all" && !valid[name] {
			return fmt.Errorf("unknown experiment %q (valid: all, %s)", name, strings.Join(names, ", "))
		}
		want[name] = true
	}
	all := want["all"]

	o := benchOpts{
		seed:          *seed,
		reduced:       *scale == "reduced",
		profileRuns:   *profileRuns,
		days:          *days,
		csvDir:        *csvDir,
		ex6Strategies: *ex6Strategies,
	}
	for _, e := range registry() {
		if !all && !want[e.name] {
			continue
		}
		start := time.Now()
		out, err := e.run(o)
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Printf("==== %s (%s, seed %d, %.1fs) ====\n%s\n", e.name, *scale, *seed, time.Since(start).Seconds(), out)
	}

	if *dumpMetrics {
		// Every runtime the experiments built reported into the process
		// default registry, so one snapshot covers the whole run.
		fmt.Println("==== metrics snapshot ====")
		return metrics.Default().WritePrometheus(os.Stdout)
	}
	return nil
}
