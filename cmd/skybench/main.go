// Command skybench regenerates the paper's tables and figures on the
// simulated sky.
//
// Usage:
//
//	skybench -ex all                 # every experiment at paper scale
//	skybench -ex ex3,ex5 -scale reduced
//	skybench -ex table1              # Table 1 (workload catalog) only
//	skybench -ex ex5 -seed 7 -profile-runs 10000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"skyfaas/internal/experiments"
	"skyfaas/internal/metrics"
	"skyfaas/internal/router"
	"skyfaas/internal/tablefmt"
	"skyfaas/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "skybench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("skybench", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	exFlag := fs.String("ex", "all", "experiments to run: all | table1,ex1,ex2,ex3,ex4,ex5,ex6")
	ex6Strategies := fs.String("ex6-strategies", "", "extra EX-6 arms: comma-separated strategy names (see router.Names), run with default resilience")
	seed := fs.Uint64("seed", 42, "simulation seed (equal seeds replay exactly)")
	scale := fs.String("scale", "full", "full | reduced")
	profileRuns := fs.Int("profile-runs", 0, "EX-5 profiling executions per workload per zone (0 = default)")
	days := fs.Int("days", 0, "EX-4/EX-5 evaluation days (0 = paper's 14)")
	csvDir := fs.String("csvdir", "", "also write each figure's dataset as CSV into this directory")
	dumpMetrics := fs.Bool("metrics", false, "dump a Prometheus-text metrics snapshot covering all experiments after the run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	reduced := *scale == "reduced"
	if *scale != "full" && *scale != "reduced" {
		return fmt.Errorf("unknown scale %q", *scale)
	}

	want := map[string]bool{}
	for _, name := range strings.Split(*exFlag, ",") {
		want[strings.TrimSpace(name)] = true
	}
	all := want["all"]

	runOne := func(name string, fn func() (string, error)) error {
		if !all && !want[name] {
			return nil
		}
		start := time.Now()
		out, err := fn()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("==== %s (%s, seed %d, %.1fs) ====\n%s\n", name, *scale, *seed, time.Since(start).Seconds(), out)
		return nil
	}

	if err := runOne("table1", func() (string, error) {
		t := tablefmt.New("Function", "vCPUs", "BaseMS", "Description")
		for _, s := range workload.All() {
			t.Row(s.Name, s.VCPUs, s.BaseMS, s.Description)
		}
		return "Table 1 — workload catalog\n" + t.String(), nil
	}); err != nil {
		return err
	}

	if err := runOne("ex1", func() (string, error) {
		cfg := experiments.EX1Config{Seed: *seed}
		if reduced {
			cfg = cfg.Reduced()
		}
		res, err := experiments.RunEX1(cfg)
		if err != nil {
			return "", err
		}
		if *csvDir != "" {
			if err := res.WriteCSV(*csvDir); err != nil {
				return "", err
			}
		}
		return res.Render(), nil
	}); err != nil {
		return err
	}

	if err := runOne("ex2", func() (string, error) {
		cfg := experiments.EX2Config{Seed: *seed}
		if reduced {
			cfg = cfg.Reduced()
		}
		res, err := experiments.RunEX2(cfg)
		if err != nil {
			return "", err
		}
		if *csvDir != "" {
			if err := res.WriteCSV(*csvDir); err != nil {
				return "", err
			}
		}
		return res.Render(), nil
	}); err != nil {
		return err
	}

	if err := runOne("ex3", func() (string, error) {
		cfg := experiments.EX3Config{Seed: *seed}
		if reduced {
			cfg = cfg.Reduced()
		}
		res, err := experiments.RunEX3(cfg)
		if err != nil {
			return "", err
		}
		if *csvDir != "" {
			if err := res.WriteCSV(*csvDir); err != nil {
				return "", err
			}
		}
		return res.Render(), nil
	}); err != nil {
		return err
	}

	if err := runOne("ex4", func() (string, error) {
		cfg := experiments.EX4Config{Seed: *seed}
		if *days > 0 {
			cfg.Rounds = *days
		}
		if reduced {
			cfg = cfg.Reduced()
		}
		res, err := experiments.RunEX4(cfg)
		if err != nil {
			return "", err
		}
		if *csvDir != "" {
			if err := res.WriteCSV(*csvDir); err != nil {
				return "", err
			}
		}
		return res.Render(), nil
	}); err != nil {
		return err
	}

	if err := runOne("ex5", func() (string, error) {
		cfg := experiments.EX5Config{Seed: *seed}
		if *days > 0 {
			cfg.Days = *days
		}
		if *profileRuns > 0 {
			cfg.ProfileRuns = *profileRuns
		}
		if reduced {
			cfg = cfg.Reduced()
		}
		res, err := experiments.RunEX5(cfg)
		if err != nil {
			return "", err
		}
		if *csvDir != "" {
			if err := res.WriteCSV(*csvDir); err != nil {
				return "", err
			}
		}
		return res.Render(), nil
	}); err != nil {
		return err
	}

	if err := runOne("ex6", func() (string, error) {
		cfg := experiments.EX6Config{Seed: *seed}
		if reduced {
			cfg = cfg.Reduced()
		}
		if *ex6Strategies != "" {
			cfg.Arms = experiments.DefaultEX6Arms()
			for _, name := range strings.Split(*ex6Strategies, ",") {
				name = strings.TrimSpace(name)
				// Validate up front so a typo fails with the registry's
				// name listing instead of mid-experiment; the placeholder
				// AZ satisfies pinned strategies and is re-resolved to the
				// chaos target inside each cell.
				if _, err := router.Build(router.StrategySpec{Name: name, AZ: "us-west-1b"}); err != nil {
					return "", err
				}
				cfg.Arms = append(cfg.Arms, experiments.EX6Arm{
					Label:      name,
					Strategy:   router.StrategySpec{Name: name},
					Resilience: router.DefaultResilience(),
				})
			}
		}
		res, err := experiments.RunEX6(cfg)
		if err != nil {
			return "", err
		}
		if *csvDir != "" {
			if err := res.WriteCSV(*csvDir); err != nil {
				return "", err
			}
		}
		return res.Render(), nil
	}); err != nil {
		return err
	}

	if *dumpMetrics {
		// Every runtime the experiments built reported into the process
		// default registry, so one snapshot covers the whole run.
		fmt.Println("==== metrics snapshot ====")
		return metrics.Default().WritePrometheus(os.Stdout)
	}
	return nil
}
