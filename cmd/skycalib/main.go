// Command skycalib runs the real Table-1 workload implementations on this
// machine, measures their wall time, and compares the measured runtime
// *ratios* against the simulator's modelled BaseMS ratios.
//
// The simulator's cost model cannot predict absolute runtimes on unknown
// hardware, but the relative weight of the workloads should be of the same
// order on any CPU; this tool makes that check a one-liner.
//
//	skycalib -runs 5 -scale 2
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"skyfaas/internal/stats"
	"skyfaas/internal/tablefmt"
	"skyfaas/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "skycalib:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("skycalib", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	runs := fs.Int("runs", 5, "measured executions per workload (after one warmup)")
	scale := fs.Int("scale", 1, "workload problem-size multiplier")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *runs < 1 {
		return fmt.Errorf("need at least 1 run")
	}

	dir, err := os.MkdirTemp("", "skycalib")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	type row struct {
		spec     workload.Spec
		measured float64 // mean wall ms
	}
	rows := make([]row, 0, 12)
	for _, spec := range workload.All() {
		in := workload.Input{Seed: 1, Scale: *scale, TempDir: dir}
		// Warmup run (page cache, allocator).
		if _, err := workload.Run(spec.ID, in); err != nil {
			return fmt.Errorf("%s: %w", spec.Name, err)
		}
		var samples []float64
		for i := 0; i < *runs; i++ {
			in.Seed = uint64(i + 2)
			start := time.Now()
			if _, err := workload.Run(spec.ID, in); err != nil {
				return fmt.Errorf("%s: %w", spec.Name, err)
			}
			samples = append(samples, float64(time.Since(start).Microseconds())/1000)
		}
		rows = append(rows, row{spec: spec, measured: stats.Mean(samples)})
	}

	// Normalize both columns to sha1_hash (the smallest workload) so the
	// comparison is scale-free.
	var refMeasured, refModel float64
	for _, r := range rows {
		if r.spec.ID == workload.Sha1Hash {
			refMeasured, refModel = r.measured, r.spec.BaseMS
		}
	}
	if refMeasured == 0 || refModel == 0 {
		return fmt.Errorf("missing sha1_hash reference")
	}

	sort.Slice(rows, func(i, j int) bool { return rows[i].spec.ID < rows[j].spec.ID })
	t := tablefmt.New("workload", "measured ms", "x sha1 (real)", "x sha1 (model)", "ratio gap")
	for _, r := range rows {
		realRel := r.measured / refMeasured
		modelRel := r.spec.BaseMS / refModel
		gap := realRel / modelRel
		t.Row(r.spec.Name,
			fmt.Sprintf("%.1f", r.measured),
			fmt.Sprintf("%.2f", realRel),
			fmt.Sprintf("%.2f", modelRel),
			fmt.Sprintf("%.2f", gap))
	}
	fmt.Printf("calibration on this machine (%d runs each, scale %d, normalized to sha1_hash)\n",
		*runs, *scale)
	fmt.Print(t.String())
	fmt.Println("\nratio gap ~1 means the modelled workload weights match this machine;")
	fmt.Println("large gaps flag workloads whose BaseMS should be re-derived before")
	fmt.Println("trusting absolute (not relative) cost numbers.")
	return nil
}
