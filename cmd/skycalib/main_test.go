package main

import (
	"os"
	"strings"
	"testing"
)

func TestRunProducesTable(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run([]string{"-runs", "1"})
	_ = w.Close()
	os.Stdout = old
	buf := new(strings.Builder)
	tmp := make([]byte, 4096)
	for {
		n, rerr := r.Read(tmp)
		buf.Write(tmp[:n])
		if rerr != nil {
			break
		}
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	out := buf.String()
	for _, want := range []string{"calibration", "sha1_hash", "ratio gap"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if err := run([]string{"-runs", "0"}); err == nil {
		t.Error("zero runs accepted")
	}
	if err := run([]string{"-nope"}); err == nil {
		t.Error("bad flag accepted")
	}
}
