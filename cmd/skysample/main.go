// Command skysample characterizes one availability zone with the paper's
// infrastructure sampling technique and prints the poll-by-poll trace.
//
// Usage:
//
//	skysample -az us-west-1a            # poll to saturation
//	skysample -az eu-north-1a -polls 6  # cheap fixed-poll characterization
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"skyfaas/internal/charact"
	"skyfaas/internal/core"
	"skyfaas/internal/sampler"
	"skyfaas/internal/sim"
	"skyfaas/internal/tablefmt"
	"skyfaas/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "skysample:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("skysample", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	az := fs.String("az", "us-west-1a", "availability zone to characterize")
	seed := fs.Uint64("seed", 42, "simulation seed")
	polls := fs.Int("polls", 0, "fixed poll count (0 = poll to saturation)")
	truth := fs.Bool("truth", false, "also print the simulator's ground-truth mix (evaluation only)")
	tracePath := fs.String("trace", "", "write every invocation as JSON lines to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := core.Config{Seed: *seed, SkipMesh: true}
	var rec *trace.Recorder
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		w := bufio.NewWriter(f)
		defer w.Flush()
		rec = trace.NewRecorder(w)
		cfg.CloudOpts.OnResponse = rec.Hook()
	}
	rt, err := core.New(cfg)
	if err != nil {
		return err
	}
	zone, ok := rt.Cloud().AZ(*az)
	if !ok {
		return fmt.Errorf("unknown AZ %q (try us-west-1a, eu-north-1a, us-east-2b, ...)", *az)
	}

	return rt.Do(func(p *sim.Proc) error {
		if err := rt.EnsureSamplerEndpoints(*az); err != nil {
			return err
		}
		var ch charact.Characterization
		var trail []sampler.PollResult
		var err error
		if *polls > 0 {
			ch, trail, err = rt.Sampler().CharacterizeQuick(p, *az, *polls)
		} else {
			ch, trail, err = rt.Sampler().Characterize(p, *az)
		}
		if err != nil {
			return err
		}
		printTrace(trail)
		fmt.Printf("\ncharacterization of %s (%d polls, %d unique FIs, %s):\n  %s\n",
			*az, ch.Polls, ch.Samples, tablefmt.USD(ch.CostUSD), ch.Dist())
		if rec != nil {
			if rec.Err() != nil {
				return rec.Err()
			}
			fmt.Printf("\ntrace: %d invocation records written to %s\n", rec.Count(), *tracePath)
		}
		if *truth {
			truthDist := make(charact.Dist)
			for k, v := range zone.TrueMix() {
				truthDist[k] = v
			}
			fmt.Printf("\nsimulator ground truth (never visible to the sampler):\n  %s\n  APE vs characterization: %.2f%%\n",
				truthDist, charact.APE(ch.Dist(), truthDist))
		}
		return nil
	})
}

func printTrace(trail []sampler.PollResult) {
	t := tablefmt.New("poll", "endpoint", "requested", "newFIs", "failed", "failFrac", "cost")
	for i, pr := range trail {
		t.Row(i+1, pr.Endpoint, pr.Requested, pr.NewFIs, pr.Failed,
			tablefmt.Pct(pr.FailFrac()), tablefmt.USD(pr.CostUSD))
	}
	fmt.Print(t.String())
}
