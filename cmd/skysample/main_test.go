package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, args []string) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(args)
	_ = w.Close()
	os.Stdout = old
	buf := new(strings.Builder)
	tmp := make([]byte, 4096)
	for {
		n, rerr := r.Read(tmp)
		buf.Write(tmp[:n])
		if rerr != nil {
			break
		}
	}
	return buf.String(), runErr
}

func TestQuickCharacterization(t *testing.T) {
	out, err := capture(t, []string{"-az", "eu-north-1a", "-polls", "2", "-truth"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"poll", "characterization of eu-north-1a", "ground truth", "APE"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestUnknownZoneRejected(t *testing.T) {
	if _, err := capture(t, []string{"-az", "atlantis-1a"}); err == nil {
		t.Fatal("unknown AZ accepted")
	}
}

func TestBadFlagRejected(t *testing.T) {
	if err := run([]string{"-zorp"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
