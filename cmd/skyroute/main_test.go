package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, args []string) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(args)
	_ = w.Close()
	os.Stdout = old
	buf := new(strings.Builder)
	tmp := make([]byte, 4096)
	for {
		n, rerr := r.Read(tmp)
		buf.Write(tmp[:n])
		if rerr != nil {
			break
		}
	}
	return buf.String(), runErr
}

func TestRouteComparisonTable(t *testing.T) {
	out, err := capture(t, []string{
		"-workload", "sha1_hash", "-n", "40",
		"-profile-runs", "150", "-refresh-polls", "2",
		"-zones", "us-west-1b,sa-east-1a",
		"-client", "seattle",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"baseline", "regional", "retry-slow", "focus-fastest", "hybrid",
		"latency-bound+hybrid", "cost-aware", "sampling spend",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestValidation(t *testing.T) {
	if err := run([]string{"-workload", "quantum_sort"}); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run([]string{"-zones", "atlantis-1a"}); err == nil {
		t.Error("unknown zone accepted")
	}
	if err := run([]string{"-workload", "zipper", "-client", "gotham"}); err == nil {
		t.Error("unknown city accepted")
	}
	if err := run([]string{"-zorp"}); err == nil {
		t.Error("bad flag accepted")
	}
}
