package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func capture(t *testing.T, args []string) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(args)
	_ = w.Close()
	os.Stdout = old
	buf := new(strings.Builder)
	tmp := make([]byte, 4096)
	for {
		n, rerr := r.Read(tmp)
		buf.Write(tmp[:n])
		if rerr != nil {
			break
		}
	}
	return buf.String(), runErr
}

func TestRouteComparisonTable(t *testing.T) {
	out, err := capture(t, []string{
		"-workload", "sha1_hash", "-n", "40",
		"-profile-runs", "150", "-refresh-polls", "2",
		"-zones", "us-west-1b,sa-east-1a",
		"-client", "seattle",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"baseline", "regional", "retry-slow", "focus-fastest", "hybrid",
		"latency-bound+hybrid", "cost-aware", "sampling spend",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// fakeSkyd answers the three /v1 calls remote mode makes, recording the
// Authorization header and the burst strategies it saw.
type fakeSkyd struct {
	mu         sync.Mutex
	auth       map[string]bool
	strategies []string
}

func (f *fakeSkyd) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	f.auth[r.Header.Get("Authorization")] = true
	f.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	switch r.URL.Path {
	case "/v1/characterize":
		_, _ = w.Write([]byte(`{"az":"t1-a","costUSD":0.01,"dist":{"Xeon-2.5":0.6,"EPYC-2.0":0.4}}`))
	case "/v1/profile":
		_, _ = w.Write([]byte(`{"workload":"zipper","costUSD":0.25}`))
	case "/v1/burst":
		var body struct {
			Strategy string `json:"strategy"`
		}
		_ = json.NewDecoder(r.Body).Decode(&body)
		f.mu.Lock()
		f.strategies = append(f.strategies, body.Strategy)
		f.mu.Unlock()
		_, _ = w.Write([]byte(`{"az":"t1-a","costUSD":0.5,"meanRunMS":120,"retryFrac":0.1,"elapsedMS":2500}`))
	default:
		w.WriteHeader(http.StatusNotFound)
		_, _ = w.Write([]byte(`{"error":{"code":"http_error","message":"no such endpoint"}}`))
	}
}

func TestRemoteMode(t *testing.T) {
	fake := &fakeSkyd{auth: map[string]bool{}}
	srv := httptest.NewServer(fake)
	defer srv.Close()

	out, err := capture(t, []string{
		"-url", srv.URL, "-key", "sk-test",
		"-workload", "zipper", "-n", "10",
		"-zones", "t1-a,t1-b",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"baseline", "hybrid", "sampling spend", srv.URL} {
		if !strings.Contains(out, want) {
			t.Errorf("remote output missing %q:\n%s", want, out)
		}
	}
	fake.mu.Lock()
	defer fake.mu.Unlock()
	if !fake.auth["Bearer sk-test"] || len(fake.auth) != 1 {
		t.Errorf("auth headers seen = %v, want only Bearer sk-test", fake.auth)
	}
	wantStrats := []string{"baseline", "regional", "retry-slow", "focus-fastest", "hybrid"}
	if !reflect.DeepEqual(fake.strategies, wantStrats) {
		t.Errorf("burst strategies = %v, want %v", fake.strategies, wantStrats)
	}
}

// TestRemoteModeSurfacesEnvelope: a typed server error (here an auth
// failure) must reach the user as its code and message, not a JSON blob.
func TestRemoteModeSurfacesEnvelope(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusUnauthorized)
		_, _ = w.Write([]byte(`{"error":{"code":"missing_key","message":"authentication required"}}`))
	}))
	defer srv.Close()
	_, err := capture(t, []string{"-url", srv.URL, "-workload", "zipper"})
	if err == nil || !strings.Contains(err.Error(), "missing_key") {
		t.Fatalf("err = %v, want missing_key surfaced", err)
	}
}

func TestValidation(t *testing.T) {
	if err := run([]string{"-workload", "quantum_sort"}); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run([]string{"-zones", "atlantis-1a"}); err == nil {
		t.Error("unknown zone accepted")
	}
	if err := run([]string{"-workload", "zipper", "-client", "gotham"}); err == nil {
		t.Error("unknown city accepted")
	}
	if err := run([]string{"-zorp"}); err == nil {
		t.Error("bad flag accepted")
	}
}
