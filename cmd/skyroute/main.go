// Command skyroute drives one workload through every routing strategy and
// prints the cost comparison — a one-shot view of the paper's EX-5.
//
// Usage:
//
//	skyroute -workload zipper -n 500
//	skyroute -workload logistic_regression -zones us-west-1a,us-west-1b,sa-east-1a
//
// By default the comparison runs an in-process simulation; -url points it
// at a running skyd instead, with -key (or SKY_API_KEY) authenticating
// against an auth-enabled instance:
//
//	skyroute -url http://localhost:8080 -key sk-acme-7f3a -workload zipper -n 200
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"skyfaas/internal/core"
	"skyfaas/internal/geo"
	"skyfaas/internal/router"
	"skyfaas/internal/sim"
	"skyfaas/internal/skyapi"
	"skyfaas/internal/tablefmt"
	"skyfaas/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "skyroute:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("skyroute", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	wlName := fs.String("workload", "zipper", "Table-1 workload name")
	n := fs.Int("n", 500, "invocations per burst")
	seed := fs.Uint64("seed", 42, "simulation seed")
	zonesFlag := fs.String("zones", "us-west-1a,us-west-1b,sa-east-1a", "candidate zones (first = fixed baseline zone)")
	profileRuns := fs.Int("profile-runs", 1200, "profiling executions per zone")
	refreshPolls := fs.Int("refresh-polls", 6, "characterization polls per zone")
	client := fs.String("client", "", "client city (seattle, london, tokyo, ...): adds latency-bound and cost-aware strategies")
	maxRTT := fs.Duration("max-rtt", 120*time.Millisecond, "latency bound for the -client strategy")
	dumpMetrics := fs.Bool("metrics", false, "dump a Prometheus-text metrics snapshot after the run")
	url := fs.String("url", "", "drive a running skyd at this base URL instead of an in-process simulation")
	key := fs.String("key", skyapi.KeyFromEnv(), "tenant API key for an auth-enabled skyd (default $SKY_API_KEY; only used with -url)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, ok := workload.ByName(*wlName)
	if !ok {
		names := make([]string, 0, 12)
		for _, s := range workload.All() {
			names = append(names, s.Name)
		}
		return fmt.Errorf("unknown workload %q; choose from: %s", *wlName, strings.Join(names, ", "))
	}
	var clientLoc geo.Coord
	if *client != "" {
		loc, ok := geo.City(*client)
		if !ok {
			return fmt.Errorf("unknown city %q", *client)
		}
		clientLoc = loc
	}
	zones := strings.Split(*zonesFlag, ",")
	for i := range zones {
		zones[i] = strings.TrimSpace(zones[i])
	}
	if len(zones) == 0 {
		return fmt.Errorf("no zones given")
	}
	specs := strategySpecs(zones[0], *client, clientLoc, *maxRTT)

	if *url != "" {
		// Remote mode: the running skyd owns the simulation; unknown zones
		// come back as 404 unknown_az from the server instead of the local
		// catalog check below.
		return runRemote(*url, *key, spec, zones, specs, *n, *profileRuns, *refreshPolls)
	}

	rt, err := core.New(core.Config{Seed: *seed, SkipMesh: true})
	if err != nil {
		return err
	}
	for _, z := range zones {
		if _, ok := rt.Cloud().AZ(z); !ok {
			return fmt.Errorf("unknown AZ %q", z)
		}
	}

	err = rt.Do(func(p *sim.Proc) error {
		fmt.Printf("characterizing %d zones (%d polls each)...\n", len(zones), *refreshPolls)
		sampleCost, err := rt.Refresh(p, zones, *refreshPolls)
		if err != nil {
			return err
		}
		for _, z := range zones {
			if ch, ok := rt.Store().Get(z, rt.Env().Now()); ok {
				fmt.Printf("  %-16s %s\n", z, ch.Dist())
			}
		}
		fmt.Printf("profiling %s (%d runs per zone)...\n", spec.Name, *profileRuns)
		profCost, err := rt.ProfileWorkloads(p, []workload.ID{spec.ID}, zones, *profileRuns)
		if err != nil {
			return err
		}

		strategies := make([]router.Strategy, 0, len(specs))
		for _, sp := range specs {
			s, err := router.Build(sp,
				router.WithLocator(router.NewZoneLocator(rt.Cloud())),
				router.WithPricer(router.NewZonePricer(rt.Cloud())))
			if err != nil {
				return err
			}
			strategies = append(strategies, s)
		}
		t := tablefmt.New("strategy", "zone", "cost", "vs baseline", "meanMS", "retried", "elapsed")
		var baseCost float64
		for _, s := range strategies {
			res, err := rt.Run(p, router.BurstSpec{
				Strategy:   s,
				Workload:   spec.ID,
				N:          *n,
				Candidates: zones,
			})
			if err != nil {
				return err
			}
			if s.Name() == "baseline" {
				baseCost = res.CostUSD
			}
			vs := "-"
			if baseCost > 0 && s.Name() != "baseline" {
				vs = tablefmt.Pct(1 - res.CostUSD/baseCost)
			}
			t.Row(s.Name(), res.AZ, tablefmt.USD(res.CostUSD), vs,
				fmt.Sprintf("%.0f", res.MeanRunMS()), tablefmt.Pct(res.RetryFrac()),
				res.Elapsed.Truncate(1e7).String())
			// Space bursts out so warm instances expire between strategies.
			p.Sleep(rt.Cloud().Options().KeepAlive + 1e9)
		}
		fmt.Printf("\n%s burst of %d on zones %v\n%s", spec.Name, *n, zones, t.String())
		fmt.Printf("\nsampling spend %s, profiling spend %s\n", tablefmt.USD(sampleCost), tablefmt.USD(profCost))
		return nil
	})
	if err != nil {
		return err
	}
	if *dumpMetrics {
		fmt.Println("\n==== metrics snapshot ====")
		if err := rt.Metrics().WritePrometheus(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// strategySpecs is the comparison lineup, shared by the in-process and
// remote paths: the fixed-zone baselines pin to the first zone, and a
// -client city adds the latency-bound and cost-aware arms.
func strategySpecs(fixed, client string, clientLoc geo.Coord, maxRTT time.Duration) []router.StrategySpec {
	specs := []router.StrategySpec{
		{Name: "baseline", AZ: fixed},
		{Name: "regional"},
		{Name: "retry-slow", AZ: fixed},
		{Name: "focus-fastest", AZ: fixed},
		{Name: "hybrid"},
	}
	if client != "" {
		specs = append(specs,
			router.StrategySpec{Name: "latency-bound", Params: map[string]float64{
				"maxRTTMS":  float64(maxRTT) / float64(time.Millisecond),
				"clientLat": clientLoc.Lat,
				"clientLon": clientLoc.Lon,
			}},
			router.StrategySpec{Name: "cost-aware"},
		)
	}
	return specs
}

// runRemote replays the same characterize → profile → burst sequence
// against a running skyd over its /v1 API, one burst per strategy.
func runRemote(base, key string, spec workload.Spec, zones []string, specs []router.StrategySpec, n, profileRuns, refreshPolls int) error {
	c := skyapi.New(base, key)
	fmt.Printf("characterizing %d zones (%d polls each) via %s...\n", len(zones), refreshPolls, base)
	var sampleCost float64
	for _, z := range zones {
		var ch struct {
			CostUSD float64            `json:"costUSD"`
			Dist    map[string]float64 `json:"dist"`
		}
		if err := c.Post("/v1/characterize", map[string]any{"az": z, "polls": refreshPolls}, &ch); err != nil {
			return err
		}
		sampleCost += ch.CostUSD
		fmt.Printf("  %-16s %s\n", z, fmtDist(ch.Dist))
	}
	fmt.Printf("profiling %s (%d runs per zone)...\n", spec.Name, profileRuns)
	var prof struct {
		CostUSD float64 `json:"costUSD"`
	}
	if err := c.Post("/v1/profile", map[string]any{"workload": spec.Name, "zones": zones, "runs": profileRuns}, &prof); err != nil {
		return err
	}

	t := tablefmt.New("strategy", "zone", "cost", "vs baseline", "meanMS", "retried", "elapsed")
	var baseCost float64
	for _, sp := range specs {
		body := map[string]any{"strategy": sp.Name, "workload": spec.Name, "n": n, "candidates": zones}
		if sp.AZ != "" {
			body["az"] = sp.AZ
		}
		if len(sp.Params) > 0 {
			body["params"] = sp.Params
		}
		var res struct {
			AZ        string  `json:"az"`
			CostUSD   float64 `json:"costUSD"`
			MeanRunMS float64 `json:"meanRunMS"`
			RetryFrac float64 `json:"retryFrac"`
			ElapsedMS float64 `json:"elapsedMS"`
		}
		if err := c.Post("/v1/burst", body, &res); err != nil {
			return err
		}
		if sp.Name == "baseline" {
			baseCost = res.CostUSD
		}
		vs := "-"
		if baseCost > 0 && sp.Name != "baseline" {
			vs = tablefmt.Pct(1 - res.CostUSD/baseCost)
		}
		elapsed := time.Duration(res.ElapsedMS * float64(time.Millisecond))
		t.Row(sp.Name, res.AZ, tablefmt.USD(res.CostUSD), vs,
			fmt.Sprintf("%.0f", res.MeanRunMS), tablefmt.Pct(res.RetryFrac),
			elapsed.Truncate(1e7).String())
	}
	fmt.Printf("\n%s burst of %d on zones %v\n%s", spec.Name, n, zones, t.String())
	fmt.Printf("\nsampling spend %s, profiling spend %s\n", tablefmt.USD(sampleCost), tablefmt.USD(prof.CostUSD))
	return nil
}

// fmtDist renders a wire-form CPU share map largest-first, matching the
// in-process characterization stringer closely enough for eyeballing.
func fmtDist(dist map[string]float64) string {
	keys := make([]string, 0, len(dist))
	for k := range dist {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if dist[keys[i]] != dist[keys[j]] {
			return dist[keys[i]] > dist[keys[j]]
		}
		return keys[i] < keys[j]
	})
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s %.0f%%", k, dist[k]*100)
	}
	return strings.Join(parts, ", ")
}
