// Command skyroute drives one workload through every routing strategy and
// prints the cost comparison — a one-shot view of the paper's EX-5.
//
// Usage:
//
//	skyroute -workload zipper -n 500
//	skyroute -workload logistic_regression -zones us-west-1a,us-west-1b,sa-east-1a
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"skyfaas/internal/core"
	"skyfaas/internal/geo"
	"skyfaas/internal/router"
	"skyfaas/internal/sim"
	"skyfaas/internal/tablefmt"
	"skyfaas/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "skyroute:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("skyroute", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	wlName := fs.String("workload", "zipper", "Table-1 workload name")
	n := fs.Int("n", 500, "invocations per burst")
	seed := fs.Uint64("seed", 42, "simulation seed")
	zonesFlag := fs.String("zones", "us-west-1a,us-west-1b,sa-east-1a", "candidate zones (first = fixed baseline zone)")
	profileRuns := fs.Int("profile-runs", 1200, "profiling executions per zone")
	refreshPolls := fs.Int("refresh-polls", 6, "characterization polls per zone")
	client := fs.String("client", "", "client city (seattle, london, tokyo, ...): adds latency-bound and cost-aware strategies")
	maxRTT := fs.Duration("max-rtt", 120*time.Millisecond, "latency bound for the -client strategy")
	dumpMetrics := fs.Bool("metrics", false, "dump a Prometheus-text metrics snapshot after the run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, ok := workload.ByName(*wlName)
	if !ok {
		names := make([]string, 0, 12)
		for _, s := range workload.All() {
			names = append(names, s.Name)
		}
		return fmt.Errorf("unknown workload %q; choose from: %s", *wlName, strings.Join(names, ", "))
	}
	var clientLoc geo.Coord
	if *client != "" {
		loc, ok := geo.City(*client)
		if !ok {
			return fmt.Errorf("unknown city %q", *client)
		}
		clientLoc = loc
	}
	zones := strings.Split(*zonesFlag, ",")
	for i := range zones {
		zones[i] = strings.TrimSpace(zones[i])
	}
	if len(zones) == 0 {
		return fmt.Errorf("no zones given")
	}

	rt, err := core.New(core.Config{Seed: *seed, SkipMesh: true})
	if err != nil {
		return err
	}
	for _, z := range zones {
		if _, ok := rt.Cloud().AZ(z); !ok {
			return fmt.Errorf("unknown AZ %q", z)
		}
	}
	fixed := zones[0]

	err = rt.Do(func(p *sim.Proc) error {
		fmt.Printf("characterizing %d zones (%d polls each)...\n", len(zones), *refreshPolls)
		sampleCost, err := rt.Refresh(p, zones, *refreshPolls)
		if err != nil {
			return err
		}
		for _, z := range zones {
			if ch, ok := rt.Store().Get(z, rt.Env().Now()); ok {
				fmt.Printf("  %-16s %s\n", z, ch.Dist())
			}
		}
		fmt.Printf("profiling %s (%d runs per zone)...\n", spec.Name, *profileRuns)
		profCost, err := rt.ProfileWorkloads(p, []workload.ID{spec.ID}, zones, *profileRuns)
		if err != nil {
			return err
		}

		specs := []router.StrategySpec{
			{Name: "baseline", AZ: fixed},
			{Name: "regional"},
			{Name: "retry-slow", AZ: fixed},
			{Name: "focus-fastest", AZ: fixed},
			{Name: "hybrid"},
		}
		if *client != "" {
			specs = append(specs,
				router.StrategySpec{Name: "latency-bound", Params: map[string]float64{
					"maxRTTMS":  float64(*maxRTT) / float64(time.Millisecond),
					"clientLat": clientLoc.Lat,
					"clientLon": clientLoc.Lon,
				}},
				router.StrategySpec{Name: "cost-aware"},
			)
		}
		strategies := make([]router.Strategy, 0, len(specs))
		for _, sp := range specs {
			s, err := router.Build(sp,
				router.WithLocator(router.NewZoneLocator(rt.Cloud())),
				router.WithPricer(router.NewZonePricer(rt.Cloud())))
			if err != nil {
				return err
			}
			strategies = append(strategies, s)
		}
		t := tablefmt.New("strategy", "zone", "cost", "vs baseline", "meanMS", "retried", "elapsed")
		var baseCost float64
		for _, s := range strategies {
			res, err := rt.Run(p, router.BurstSpec{
				Strategy:   s,
				Workload:   spec.ID,
				N:          *n,
				Candidates: zones,
			})
			if err != nil {
				return err
			}
			if s.Name() == "baseline" {
				baseCost = res.CostUSD
			}
			vs := "-"
			if baseCost > 0 && s.Name() != "baseline" {
				vs = tablefmt.Pct(1 - res.CostUSD/baseCost)
			}
			t.Row(s.Name(), res.AZ, tablefmt.USD(res.CostUSD), vs,
				fmt.Sprintf("%.0f", res.MeanRunMS()), tablefmt.Pct(res.RetryFrac()),
				res.Elapsed.Truncate(1e7).String())
			// Space bursts out so warm instances expire between strategies.
			p.Sleep(rt.Cloud().Options().KeepAlive + 1e9)
		}
		fmt.Printf("\n%s burst of %d on zones %v\n%s", spec.Name, *n, zones, t.String())
		fmt.Printf("\nsampling spend %s, profiling spend %s\n", tablefmt.USD(sampleCost), tablefmt.USD(profCost))
		return nil
	})
	if err != nil {
		return err
	}
	if *dumpMetrics {
		fmt.Println("\n==== metrics snapshot ====")
		if err := rt.Metrics().WritePrometheus(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}
