// Skylint runs the project's static-analysis pass (internal/lint) over the
// enclosing module and reports invariant violations as
// "file:line: [rule] message", exiting non-zero when any are found.
//
// Usage:
//
//	skylint [-rules rule1,rule2] [-json findings.json] [-list] [./... ./internal/...]
//
// Patterns restrict which findings are reported (the whole module is always
// loaded, since analyses need cross-package type information). With no
// pattern, everything is reported. Individual call sites are exempted with
// a "//lint:allow <rule> -- reason" comment; see internal/lint.
//
// -json additionally writes the findings as a JSON array to the named file
// (written even when empty, so CI can always archive it). Under GitHub
// Actions (GITHUB_ACTIONS=true) each finding is also emitted as a
// "::error file=...,line=..." workflow command, which GitHub renders as an
// inline annotation on the offending line of the PR diff.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"skyfaas/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("skylint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	jsonOut := fs.String("json", "", "also write findings as a JSON array to this file")
	list := fs.Bool("list", false, "list available rules and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *rules != "" {
		var err error
		analyzers, err = selectRules(analyzers, *rules)
		if err != nil {
			fmt.Fprintf(stderr, "skylint: %v\n", err)
			return 2
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "skylint: %v\n", err)
		return 2
	}
	root, err := findModuleRoot(wd)
	if err != nil {
		fmt.Fprintf(stderr, "skylint: %v\n", err)
		return 2
	}
	mod, err := lint.Load(root)
	if err != nil {
		fmt.Fprintf(stderr, "skylint: %v\n", err)
		return 2
	}

	annotate := os.Getenv("GITHUB_ACTIONS") == "true"
	matched := make([]lint.Finding, 0)
	for _, f := range lint.Run(mod, analyzers) {
		if !matchAny(f.File, fs.Args()) {
			continue
		}
		matched = append(matched, f)
		fmt.Fprintln(stdout, f)
		if annotate {
			fmt.Fprintln(stdout, githubAnnotation(f))
		}
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, matched); err != nil {
			fmt.Fprintf(stderr, "skylint: %v\n", err)
			return 2
		}
	}
	if len(matched) > 0 {
		fmt.Fprintf(stderr, "skylint: %d finding(s)\n", len(matched))
		return 1
	}
	return 0
}

// githubAnnotation renders a finding as a GitHub Actions workflow command;
// the runner scans stdout for these and pins them to the PR diff.
func githubAnnotation(f lint.Finding) string {
	return fmt.Sprintf("::error file=%s,line=%d,title=skylint %s::%s", f.File, f.Line, f.Rule, f.Msg)
}

// writeJSON dumps the findings to path as a JSON array — always an array,
// even when empty, so CI consumers can parse it unconditionally.
func writeJSON(path string, findings []lint.Finding) error {
	type finding struct {
		File string `json:"file"`
		Line int    `json:"line"`
		Rule string `json:"rule"`
		Msg  string `json:"msg"`
	}
	out := make([]finding, 0, len(findings))
	for _, f := range findings {
		out = append(out, finding{File: f.File, Line: f.Line, Rule: f.Rule, Msg: f.Msg})
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// selectRules filters analyzers down to a comma-separated name list.
func selectRules(all []*lint.Analyzer, names string) ([]*lint.Analyzer, error) {
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (try -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// findModuleRoot walks up from dir to the nearest directory holding go.mod.
func findModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// matchAny reports whether a module-relative file path falls under any of
// the go-style package patterns (no patterns means match everything).
func matchAny(relFile string, patterns []string) bool {
	if len(patterns) == 0 {
		return true
	}
	for _, pat := range patterns {
		if matchPattern(relFile, pat) {
			return true
		}
	}
	return false
}

// matchPattern implements the useful subset of go package patterns against
// a module-relative file path: "./..." (everything), "./dir/..." (subtree),
// and "./dir" (exactly that package directory).
func matchPattern(relFile, pat string) bool {
	pat = strings.TrimPrefix(pat, "./")
	if pat == "..." || pat == "" || pat == "." {
		return true
	}
	dir := filepath.ToSlash(filepath.Dir(relFile))
	if sub, ok := strings.CutSuffix(pat, "/..."); ok {
		return dir == sub || strings.HasPrefix(dir, sub+"/")
	}
	return dir == strings.TrimSuffix(pat, "/")
}
