package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"skyfaas/internal/lint"
)

func TestMatchPattern(t *testing.T) {
	cases := []struct {
		file, pat string
		want      bool
	}{
		{"internal/sim/sim.go", "./...", true},
		{"internal/sim/sim.go", "./internal/...", true},
		{"internal/sim/sim.go", "./internal/sim", true},
		{"internal/sim/sim.go", "internal/sim", true},
		{"internal/sim/sim.go", "./internal/router", false},
		{"internal/router/metrics.go", "./internal/router/...", true},
		{"internal/router/metrics.go", "./internal/rou/...", false},
		{"sky.go", "./...", true},
		{"sky.go", ".", true},
		{"sky.go", "./internal/...", false},
	}
	for _, c := range cases {
		if got := matchPattern(c.file, c.pat); got != c.want {
			t.Errorf("matchPattern(%q, %q) = %v, want %v", c.file, c.pat, got, c.want)
		}
	}
}

func TestFindModuleRoot(t *testing.T) {
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	nested := filepath.Join(root, "a", "b")
	if err := os.MkdirAll(nested, 0o755); err != nil {
		t.Fatal(err)
	}
	got, err := findModuleRoot(nested)
	if err != nil {
		t.Fatal(err)
	}
	if got != root {
		t.Errorf("findModuleRoot = %q, want %q", got, root)
	}
}

func TestRunList(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("run(-list) = %d, stderr: %s", code, errOut.String())
	}
	for _, rule := range []string{"ctxgo", "floatdet", "mutexheld", "nilmetrics", "nodeterm", "sentinelerr"} {
		if !strings.Contains(out.String(), rule) {
			t.Errorf("-list output missing rule %s:\n%s", rule, out.String())
		}
	}
}

func TestRunUnknownRule(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-rules", "nope"}, &out, &errOut); code != 2 {
		t.Errorf("run(-rules nope) = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown rule") {
		t.Errorf("stderr missing diagnosis: %s", errOut.String())
	}
}

func TestGithubAnnotation(t *testing.T) {
	f := lint.Finding{File: "internal/sim/sim.go", Line: 42, Rule: "hotalloc", Msg: "append may grow"}
	want := "::error file=internal/sim/sim.go,line=42,title=skylint hotalloc::append may grow"
	if got := githubAnnotation(f); got != want {
		t.Errorf("githubAnnotation = %q, want %q", got, want)
	}
}

func TestWriteJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "findings.json")
	if err := writeJSON(path, []lint.Finding{
		{File: "a.go", Line: 1, Rule: "nodeterm", Msg: "m"},
	}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got []map[string]any
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, raw)
	}
	if len(got) != 1 || got[0]["file"] != "a.go" || got[0]["rule"] != "nodeterm" {
		t.Errorf("round trip = %v", got)
	}

	// No findings must still produce a parseable empty array, not "null".
	if err := writeJSON(path, nil); err != nil {
		t.Fatal(err)
	}
	raw, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(raw)) != "[]" {
		t.Errorf("empty findings wrote %q, want []", raw)
	}
}

// TestRunCleanRepo runs the real binary path over the enclosing module —
// the exact invocation `make lint` performs — and expects a clean exit.
func TestRunCleanRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide type-check is slow; run without -short")
	}
	var out, errOut strings.Builder
	if code := run([]string{"./..."}, &out, &errOut); code != 0 {
		t.Errorf("run(./...) = %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
}
