package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: skyfaas/internal/router
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkRouteHotPath/pinned-4         	     100	         4.410 ns/op	       0 B/op	       0 allocs/op
BenchmarkRouteHotPath/cheapest-4       	     100	         3.040 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	skyfaas/internal/router	0.004s
pkg: skyfaas
BenchmarkShardedMesh/single-4         	       3	 261738051 ns/op	     40000 inv/iter	    156004 inv/s
BenchmarkShardedMesh/sharded4-4       	       3	 234739464 ns/op	     40000 inv/iter	    172629 inv/s
PASS
`

func TestParseBenchOutput(t *testing.T) {
	results, err := parseBenchOutput(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("parsed %d results, want 4", len(results))
	}
	// The -4 GOMAXPROCS suffix is stripped so baselines port across hosts.
	if results[0].name != "BenchmarkRouteHotPath/pinned" {
		t.Errorf("name = %q", results[0].name)
	}
	if got := results[0].metrics["allocs/op"]; got != 0 {
		t.Errorf("allocs/op = %v", got)
	}
	if got := results[3].metrics["inv/s"]; got != 172629 {
		t.Errorf("inv/s = %v", got)
	}
	if results[3].iters != 3 {
		t.Errorf("iters = %d", results[3].iters)
	}
}

func TestParseBenchOutputRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkX-4\t100\n",            // no metrics
		"BenchmarkX-4 100 4.1 ns/op 7\n", // dangling value
		"BenchmarkX-4 lots 4.1 ns/op\n",  // bad iteration count
		"BenchmarkX-4 100 fast ns/op\n",  // bad metric value
	} {
		if _, err := parseBenchOutput(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func writeBaseline(t *testing.T, dir string, b map[string]any) string {
	t.Helper()
	buf, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "BENCH_test.json")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func mustLoad(t *testing.T, path string) *baseline {
	t.Helper()
	b, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCompareDirections(t *testing.T) {
	results, _ := parseBenchOutput(strings.NewReader(sampleOutput))
	path := writeBaseline(t, t.TempDir(), map[string]any{
		"tolerance": 0.25,
		"benchmarks": map[string]map[string]float64{
			// Within tolerance in the good direction and the bad one.
			"BenchmarkShardedMesh/single": {"ns/op": 250000000, "inv/s": 150000},
		},
	})
	if rep := mustLoad(t, path).compare(results); rep.failed {
		t.Errorf("within-tolerance run failed: %v", rep.lines)
	}

	// ns/op regresses by rising...
	path = writeBaseline(t, t.TempDir(), map[string]any{
		"benchmarks": map[string]map[string]float64{
			"BenchmarkShardedMesh/single": {"ns/op": 100000000},
		},
	})
	if rep := mustLoad(t, path).compare(results); !rep.failed {
		t.Error("2.6x ns/op regression passed")
	}
	// ...and inv/s regresses by falling.
	path = writeBaseline(t, t.TempDir(), map[string]any{
		"benchmarks": map[string]map[string]float64{
			"BenchmarkShardedMesh/single": {"inv/s": 500000},
		},
	})
	if rep := mustLoad(t, path).compare(results); !rep.failed {
		t.Error("3x inv/s drop passed")
	}
	// A fast run against a slow ns/op baseline is an improvement, not a
	// failure.
	path = writeBaseline(t, t.TempDir(), map[string]any{
		"benchmarks": map[string]map[string]float64{
			"BenchmarkShardedMesh/single": {"ns/op": 900000000},
		},
	})
	if rep := mustLoad(t, path).compare(results); rep.failed {
		t.Errorf("improvement failed the gate: %v", rep.lines)
	}
}

func TestCompareZeroAllocContractIsExact(t *testing.T) {
	// 0.4 allocs/op would round within any relative tolerance of zero;
	// the gate must treat a 0 baseline as exact.
	out := "BenchmarkRouteHotPath/pinned-4 100 4.1 ns/op 0.4 allocs/op\n"
	results, err := parseBenchOutput(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	path := writeBaseline(t, t.TempDir(), map[string]any{
		"benchmarks": map[string]map[string]float64{
			"BenchmarkRouteHotPath/pinned": {"allocs/op": 0},
		},
	})
	rep := mustLoad(t, path).compare(results)
	if !rep.failed {
		t.Error("nonzero allocs passed a 0 allocs/op baseline")
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	results, _ := parseBenchOutput(strings.NewReader(sampleOutput))
	path := writeBaseline(t, t.TempDir(), map[string]any{
		"benchmarks": map[string]map[string]float64{
			"BenchmarkDeleted": {"ns/op": 1},
		},
	})
	rep := mustLoad(t, path).compare(results)
	if !rep.failed {
		t.Error("baseline benchmark missing from output passed")
	}
}

func TestUpdateRewritesNumbersAndKeepsNotes(t *testing.T) {
	results, _ := parseBenchOutput(strings.NewReader(sampleOutput))
	path := writeBaseline(t, t.TempDir(), map[string]any{
		"tolerance": 0.3,
		"notes":     "hand-written context",
		"benchmarks": map[string]map[string]float64{
			"BenchmarkRouteHotPath/pinned": {"ns/op": 999, "allocs/op": 3},
		},
	})
	b := mustLoad(t, path)
	if err := b.update(results, path); err != nil {
		t.Fatal(err)
	}
	b2 := mustLoad(t, path)
	got := b2.Benchmarks["BenchmarkRouteHotPath/pinned"]
	if got["ns/op"] != 4.410 || got["allocs/op"] != 0 {
		t.Errorf("metrics not refreshed: %v", got)
	}
	if b2.Tolerance != 0.3 {
		t.Errorf("tolerance clobbered: %v", b2.Tolerance)
	}
	if b2.GOMAXPROCS != runtime.GOMAXPROCS(0) {
		t.Errorf("gomaxprocs = %d", b2.GOMAXPROCS)
	}
	raw, _ := os.ReadFile(path)
	if !strings.Contains(string(raw), "hand-written context") {
		t.Error("informational field dropped on update")
	}
}

func TestParseArgs(t *testing.T) {
	cfg, err := parseArgs([]string{"-baseline", "a.json", "-baseline", "b.json", "out.txt"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.baselines) != 2 || cfg.input != "out.txt" || cfg.update {
		t.Errorf("cfg = %+v", cfg)
	}
	if _, err := parseArgs(nil); err == nil {
		t.Error("no -baseline accepted")
	}
	if _, err := parseArgs([]string{"-baseline", "a.json", "x", "y"}); err == nil {
		t.Error("two inputs accepted")
	}
}
