// Command benchcheck is the CI benchmark-regression gate: it parses `go
// test -bench` output and compares every measured metric against a
// checked-in BENCH_*.json baseline, failing when a metric regresses past
// the baseline's tolerance.
//
// Usage:
//
//	go test -run '^$' -bench ... > out.txt
//	benchcheck -baseline BENCH_route.json -baseline BENCH_mesh.json out.txt
//	benchcheck -update -baseline BENCH_route.json out.txt   # rewrite numbers
//
// With no file argument the bench output is read from stdin. The tool is
// stdlib-only by design — it must run in CI before anything else is built.
//
// Direction awareness: rate metrics (any unit ending in "/s") regress by
// falling, everything else (ns/op, B/op, allocs/op, ...) regresses by
// rising. A zero baseline is exact: a benchmark pinned at 0 allocs/op
// fails the gate on the first allocation, tolerance notwithstanding.
//
// Baselines are per-host artifacts (wall-clock metrics move with the
// hardware); regenerate them with -update when the benchmark machine
// class changes. The `gomaxprocs` field records the host the numbers came
// from; a mismatch with the current host is reported as a warning, not a
// failure.
package main

import (
	"fmt"
	"os"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout))
}

func run(args []string, stdin *os.File, out *os.File) int {
	cfg, err := parseArgs(args)
	if err != nil {
		fmt.Fprintln(out, "benchcheck:", err)
		return 2
	}
	in := stdin
	if cfg.input != "" {
		f, err := os.Open(cfg.input)
		if err != nil {
			fmt.Fprintln(out, "benchcheck:", err)
			return 2
		}
		defer f.Close()
		in = f
	}
	results, err := parseBenchOutput(in)
	if err != nil {
		fmt.Fprintln(out, "benchcheck:", err)
		return 2
	}
	if len(results) == 0 {
		fmt.Fprintln(out, "benchcheck: no benchmark results in input")
		return 2
	}

	failed := false
	for _, path := range cfg.baselines {
		base, err := loadBaseline(path)
		if err != nil {
			fmt.Fprintln(out, "benchcheck:", err)
			return 2
		}
		if cfg.update {
			if err := base.update(results, path); err != nil {
				fmt.Fprintln(out, "benchcheck:", err)
				return 2
			}
			fmt.Fprintf(out, "benchcheck: %s updated\n", path)
			continue
		}
		report := base.compare(results)
		for _, line := range report.lines {
			fmt.Fprintf(out, "benchcheck: %s: %s\n", path, line)
		}
		if report.failed {
			failed = true
		}
	}
	if failed {
		fmt.Fprintln(out, "benchcheck: FAIL")
		return 1
	}
	fmt.Fprintln(out, "benchcheck: ok")
	return 0
}

type config struct {
	baselines []string
	update    bool
	input     string
}

func parseArgs(args []string) (config, error) {
	var cfg config
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-baseline", "--baseline":
			i++
			if i >= len(args) {
				return cfg, fmt.Errorf("-baseline needs a file argument")
			}
			cfg.baselines = append(cfg.baselines, args[i])
		case "-update", "--update":
			cfg.update = true
		case "-h", "-help", "--help":
			return cfg, fmt.Errorf("usage: benchcheck [-update] -baseline BENCH_x.json [bench-output.txt]")
		default:
			if cfg.input != "" {
				return cfg, fmt.Errorf("unexpected argument %q (one input file max)", args[i])
			}
			cfg.input = args[i]
		}
	}
	if len(cfg.baselines) == 0 {
		return cfg, fmt.Errorf("at least one -baseline required")
	}
	return cfg, nil
}
