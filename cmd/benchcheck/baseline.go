package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// result is one parsed benchmark line: the name (GOMAXPROCS suffix
// stripped, so baselines port across -cpu settings) and every measured
// metric, ns/op included.
type result struct {
	name    string
	iters   int
	metrics map[string]float64
}

// benchLine matches `BenchmarkName-8  123  45.6 ns/op  7 B/op ...`.
// go test left-pads columns with spaces and tabs; fields are
// whitespace-split and metrics come in (value, unit) pairs after the
// iteration count.
var benchLine = regexp.MustCompile(`^Benchmark\S+`)

// parseBenchOutput reads `go test -bench` output (any number of package
// sections) and returns the benchmark results in order of appearance.
func parseBenchOutput(r io.Reader) ([]result, error) {
	var out []result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !benchLine.MatchString(line) {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			return nil, fmt.Errorf("malformed bench line: %q", line)
		}
		iters, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("malformed iteration count in %q", line)
		}
		res := result{name: stripCPUSuffix(fields[0]), iters: iters, metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("malformed metric value in %q", line)
			}
			res.metrics[fields[i+1]] = v
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

var cpuSuffix = regexp.MustCompile(`-\d+$`)

func stripCPUSuffix(name string) string { return cpuSuffix.ReplaceAllString(name, "") }

// baseline is one BENCH_*.json file. Benchmarks map bench name to its
// recorded metrics; extra informational fields (command, notes, full-scale
// records) ride along untouched so the file doubles as the human-readable
// benchmark log the repo already keeps (see BENCH_ex8.json).
type baseline struct {
	// Tolerance is the allowed relative drift before a metric counts as a
	// regression (default 0.25 = ±25%).
	Tolerance  float64                       `json:"tolerance"`
	GOMAXPROCS int                           `json:"gomaxprocs,omitempty"`
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`

	// extra preserves unknown keys across -update round trips.
	extra map[string]json.RawMessage
}

func loadBaseline(path string) (*baseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var all map[string]json.RawMessage
	if err := json.Unmarshal(raw, &all); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	b := &baseline{Tolerance: 0.25, extra: map[string]json.RawMessage{}}
	for k, v := range all {
		switch k {
		case "tolerance":
			if err := json.Unmarshal(v, &b.Tolerance); err != nil {
				return nil, fmt.Errorf("%s: tolerance: %w", path, err)
			}
		case "gomaxprocs":
			if err := json.Unmarshal(v, &b.GOMAXPROCS); err != nil {
				return nil, fmt.Errorf("%s: gomaxprocs: %w", path, err)
			}
		case "benchmarks":
			if err := json.Unmarshal(v, &b.Benchmarks); err != nil {
				return nil, fmt.Errorf("%s: benchmarks: %w", path, err)
			}
		default:
			b.extra[k] = v
		}
	}
	if len(b.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks recorded", path)
	}
	if b.Tolerance <= 0 || b.Tolerance >= 1 {
		return nil, fmt.Errorf("%s: tolerance %v out of (0,1)", path, b.Tolerance)
	}
	return b, nil
}

// higherBetter reports the metric's regression direction: rates regress by
// falling, everything else by rising.
func higherBetter(unit string) bool { return strings.HasSuffix(unit, "/s") }

type report struct {
	lines  []string
	failed bool
}

// compare checks every baseline benchmark against the run. A baseline
// benchmark missing from the run is a failure — a gate that silently skips
// rotted benchmarks is no gate.
func (b *baseline) compare(results []result) report {
	var rep report
	byName := map[string]result{}
	for _, r := range results {
		byName[r.name] = r
	}
	if b.GOMAXPROCS != 0 && b.GOMAXPROCS != runtime.GOMAXPROCS(0) {
		rep.lines = append(rep.lines, fmt.Sprintf(
			"warning: baseline recorded at GOMAXPROCS=%d, running at %d — wall-clock drift expected; regenerate with -update if this host is the new benchmark machine",
			b.GOMAXPROCS, runtime.GOMAXPROCS(0)))
	}
	names := make([]string, 0, len(b.Benchmarks))
	for name := range b.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := b.Benchmarks[name]
		got, ok := byName[name]
		if !ok {
			rep.failed = true
			rep.lines = append(rep.lines, fmt.Sprintf("FAIL %s: in baseline but not in bench output", name))
			continue
		}
		units := make([]string, 0, len(want))
		for u := range want {
			units = append(units, u)
		}
		sort.Strings(units)
		for _, unit := range units {
			base := want[unit]
			cur, ok := got.metrics[unit]
			if !ok {
				rep.failed = true
				rep.lines = append(rep.lines, fmt.Sprintf("FAIL %s: metric %q not reported", name, unit))
				continue
			}
			if verdict, bad := judge(base, cur, unit, b.Tolerance); bad {
				rep.failed = true
				rep.lines = append(rep.lines, fmt.Sprintf("FAIL %s: %s %s", name, unit, verdict))
			} else if verdict != "" {
				rep.lines = append(rep.lines, fmt.Sprintf("note %s: %s %s", name, unit, verdict))
			}
		}
	}
	return rep
}

// judge compares one metric. Zero baselines are exact contracts (0
// allocs/op means zero, not "up to 25% of zero").
func judge(base, cur float64, unit string, tol float64) (string, bool) {
	if base == 0 {
		if cur > 0 && !higherBetter(unit) {
			return fmt.Sprintf("pinned at 0, measured %g", cur), true
		}
		return "", false
	}
	drift := (cur - base) / base
	regressed := drift > tol
	if higherBetter(unit) {
		regressed = drift < -tol
	}
	if regressed {
		return fmt.Sprintf("baseline %g, measured %g (%+.0f%%, tolerance ±%.0f%%)",
			base, cur, drift*100, tol*100), true
	}
	// Large improvements are worth a note: the baseline understates the
	// current code and should be refreshed so the gate stays tight.
	if (higherBetter(unit) && drift > tol) || (!higherBetter(unit) && drift < -tol) {
		return fmt.Sprintf("improved past tolerance (baseline %g, measured %g) — consider -update", base, cur), false
	}
	return "", false
}

// update rewrites the baseline's recorded metrics (and gomaxprocs) from
// the run, preserving tolerance and every informational field. Only
// benchmarks already in the baseline are refreshed; new benchmarks are
// added when the baseline file tracks nothing yet.
func (b *baseline) update(results []result, path string) error {
	byName := map[string]result{}
	for _, r := range results {
		byName[r.name] = r
	}
	for name, want := range b.Benchmarks {
		got, ok := byName[name]
		if !ok {
			return fmt.Errorf("cannot update %s: benchmark %s not in bench output", path, name)
		}
		for unit := range want {
			cur, ok := got.metrics[unit]
			if !ok {
				return fmt.Errorf("cannot update %s: %s does not report %q", path, name, unit)
			}
			want[unit] = cur
		}
	}
	b.GOMAXPROCS = runtime.GOMAXPROCS(0)

	out := map[string]any{
		"tolerance":  b.Tolerance,
		"gomaxprocs": b.GOMAXPROCS,
		"benchmarks": b.Benchmarks,
	}
	for k, v := range b.extra {
		out[k] = v
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
