package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// freePort reserves an ephemeral port and releases it for the server under
// test. The gap between Close and ListenAndServe is a theoretical race, but
// nothing else in the test process binds ports.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		res, err := http.Get(base + "/healthz")
		if err == nil {
			res.Body.Close()
			if res.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("server never became healthy")
}

// TestGracefulShutdownDrainsInflight proves the SIGTERM path: a burst that
// is mid-flight when the signal lands must finish with 200 (the listener
// stops accepting, the simulation keeps running until the drain completes)
// and run must exit cleanly.
func TestGracefulShutdownDrainsInflight(t *testing.T) {
	addr := freePort(t)
	base := "http://" + addr

	done := make(chan error, 1)
	go func() {
		// Slow pacing (20 virtual seconds per wall second) makes the burst
		// take ~45ms of wall time — a window the signal can land inside.
		// Refresh stays off: after the drain, Close still has to pace out
		// any already-scheduled tick, which at this speedup would stall the
		// exit for seconds without testing anything new.
		done <- run([]string{"-addr", addr, "-speedup", "20"})
	}()
	waitHealthy(t, base)
	// healthz answers as soon as the listener is up; give run a beat to
	// reach signal.Notify before SIGTERM.
	time.Sleep(100 * time.Millisecond)

	// Find any zone to pin the burst to.
	res, err := http.Get(base + "/v1/zones")
	if err != nil {
		t.Fatal(err)
	}
	var zones struct {
		Zones []struct {
			Name string `json:"name"`
		} `json:"zones"`
	}
	if err := json.NewDecoder(res.Body).Decode(&zones); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if len(zones.Zones) == 0 {
		t.Fatal("no zones")
	}
	az := zones.Zones[0].Name

	burstRes := make(chan error, 1)
	go func() {
		body := fmt.Sprintf(`{"workload":"sha1_hash","strategy":"baseline","az":%q,"n":5}`, az)
		res, err := http.Post(base+"/v1/burst", "application/json", strings.NewReader(body))
		if err != nil {
			burstRes <- err
			return
		}
		defer res.Body.Close()
		buf := new(bytes.Buffer)
		_, _ = buf.ReadFrom(res.Body)
		if res.StatusCode != http.StatusOK {
			burstRes <- fmt.Errorf("burst status %d: %s", res.StatusCode, buf.String())
			return
		}
		burstRes <- nil
	}()

	// Let the burst reach the simulation, then signal mid-flight.
	time.Sleep(20 * time.Millisecond)
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-burstRes:
		if err != nil {
			t.Fatalf("in-flight burst not drained: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("burst still pending after shutdown")
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v, want clean exit", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not exit after SIGTERM")
	}

	// The listener must actually be gone.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still answering after shutdown")
	}
}

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-tenants", "/no/such/file.json"}); err == nil {
		t.Fatal("missing tenant file accepted")
	}
}

// TestTenantsFlagAuth boots skyd with -tenants pointing at a JSON file and
// proves the auth boundary end to end: no key → 401 missing_key envelope,
// a loaded key → 200.
func TestTenantsFlagAuth(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tenants.json")
	blob := `[{"id":"ops","name":"Ops","keys":["sk-test-ops"],"admin":true}]`
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}

	addr := freePort(t)
	base := "http://" + addr
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", addr, "-speedup", "1e6", "-tenants", path})
	}()
	defer func() {
		_ = syscall.Kill(syscall.Getpid(), syscall.SIGTERM)
		select {
		case <-done:
		case <-time.After(15 * time.Second):
			t.Error("run did not exit after SIGTERM")
		}
	}()
	waitHealthy(t, base)
	time.Sleep(100 * time.Millisecond)

	res, err := http.Get(base + "/v1/zones")
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.NewDecoder(res.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusUnauthorized || env.Error.Code != "missing_key" {
		t.Fatalf("unauthenticated /v1/zones = %d %q, want 401 missing_key", res.StatusCode, env.Error.Code)
	}

	req, _ := http.NewRequest(http.MethodGet, base+"/v1/zones", nil)
	req.Header.Set("Authorization", "Bearer sk-test-ops")
	res, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("keyed /v1/zones = %d, want 200", res.StatusCode)
	}
}
