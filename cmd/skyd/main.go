// Command skyd serves the sky middleware control plane over HTTP: a live
// (real-time paced) sky runtime you can characterize, profile, and route
// against with curl.
//
//	skyd -addr :8080 -speedup 1000 &
//	curl localhost:8080/v1/zones
//	curl -XPOST localhost:8080/v1/characterize -d '{"az":"us-west-1a","polls":6}'
//	curl -XPOST localhost:8080/v1/profile -d '{"workload":"zipper","zones":["us-west-1a"],"runs":300}'
//	curl -XPOST localhost:8080/v1/burst -d '{"strategy":"hybrid","workload":"zipper","n":200,"candidates":["us-west-1a","sa-east-1a"]}'
//	curl localhost:8080/healthz      # liveness: is the sim goroutine pumping?
//	curl localhost:8080/metrics      # Prometheus text exposition
//	curl localhost:8080/metrics.json # same snapshot as JSON
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"skyfaas/internal/core"
	"skyfaas/internal/refresh"
	"skyfaas/internal/skyd"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "skyd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("skyd", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	seed := fs.Uint64("seed", 42, "simulation seed")
	speedup := fs.Float64("speedup", 1000, "virtual seconds per wall second")
	fullMesh := fs.Bool("full-mesh", false, "deploy the full 698-endpoint mesh (slower startup)")
	refreshMode := fs.String("refresh", "", "characterization maintenance mode: off, age, or drift (empty = disabled)")
	refreshRate := fs.Float64("refresh-budget-rate", 0, "refresh budget refill, USD per virtual hour (0 = default)")
	refreshCap := fs.Float64("refresh-budget-cap", 0, "refresh budget ceiling, USD (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rt, err := core.New(core.Config{Seed: *seed, SkipMesh: !*fullMesh})
	if err != nil {
		return err
	}
	skydCfg := skyd.Config{Runtime: rt, Speedup: *speedup}
	if *refreshMode != "" {
		// Drift scoring needs the passive collector routed traffic feeds.
		rt.EnablePassiveCharacterization(0)
		skydCfg.Refresh = &refresh.Config{
			Mode:        refresh.Mode(*refreshMode),
			RatePerHour: *refreshRate,
			Cap:         *refreshCap,
		}
	}
	server, err := skyd.New(skydCfg)
	if err != nil {
		return err
	}
	defer server.Close()

	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           server,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpServer.ListenAndServe() }()
	log.Printf("skyd listening on %s (seed %d, %gx pacing); /metrics, /metrics.json, /healthz live", *addr, *seed, *speedup)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		log.Printf("received %v, shutting down", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpServer.Shutdown(ctx); err != nil {
			return err
		}
		return nil
	}
}
