// Command skyd serves the sky middleware control plane over HTTP: a live
// (real-time paced) sky runtime you can characterize, profile, and route
// against with curl.
//
//	skyd -addr :8080 -speedup 1000 &
//	curl localhost:8080/v1/zones
//	curl -XPOST localhost:8080/v1/characterize -d '{"az":"us-west-1a","polls":6}'
//	curl -XPOST localhost:8080/v1/profile -d '{"workload":"zipper","zones":["us-west-1a"],"runs":300}'
//	curl -XPOST localhost:8080/v1/burst -d '{"strategy":"hybrid","workload":"zipper","n":200,"candidates":["us-west-1a","sa-east-1a"]}'
//	curl localhost:8080/healthz      # liveness: is the sim goroutine pumping?
//	curl localhost:8080/metrics      # Prometheus text exposition
//	curl localhost:8080/metrics.json # same snapshot as JSON
//
// With -warmpool, a budget-governed pre-warming loop keeps each zone's
// warm pool sized to its forecast arrival rate:
//
//	skyd -addr :8080 -warmpool predictive &
//	curl localhost:8080/v1/warmpool
//	curl -XPOST localhost:8080/v1/warmpool -d '{"mode":"pinned","budget":{"ratePerHour":0.5,"capUSD":1}}'
//
// With -tenants, every /v1 endpoint requires an API key and tenant quotas
// and budgets govern /v1/burst:
//
//	skyd -addr :8080 -tenants fixture &
//	curl -H 'Authorization: Bearer sk-ops-0001' localhost:8080/v1/tenants
//	curl -H 'Authorization: Bearer sk-acme-7f3a' localhost:8080/v1/tenants/acme/usage
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"skyfaas/internal/admission"
	"skyfaas/internal/core"
	"skyfaas/internal/metrics"
	"skyfaas/internal/refresh"
	"skyfaas/internal/skyd"
	"skyfaas/internal/tenant"
	"skyfaas/internal/warmpool"
)

// loadTenants builds the registry from the -tenants flag value: the literal
// "fixture" loads the built-in deterministic accounts, anything else is a
// path to a JSON array of tenants (see tenant.Load for the schema).
func loadTenants(src string, m *metrics.Registry) (*tenant.Registry, error) {
	var accounts []tenant.Tenant
	if src == "fixture" {
		accounts = tenant.Fixture()
	} else {
		f, err := os.Open(src)
		if err != nil {
			return nil, fmt.Errorf("tenants: %w", err)
		}
		accounts, err = tenant.Load(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("tenants: %s: %w", src, err)
		}
	}
	reg := tenant.NewRegistry(tenant.Config{Metrics: m})
	now := time.Now()
	for _, t := range accounts {
		if err := reg.Create(t, now); err != nil {
			return nil, fmt.Errorf("tenants: %w", err)
		}
	}
	return reg, nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "skyd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("skyd", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	seed := fs.Uint64("seed", 42, "simulation seed")
	speedup := fs.Float64("speedup", 1000, "virtual seconds per wall second")
	fullMesh := fs.Bool("full-mesh", false, "deploy the full 698-endpoint mesh (slower startup)")
	refreshMode := fs.String("refresh", "", "characterization maintenance mode: off, age, or drift (empty = disabled)")
	refreshRate := fs.Float64("refresh-budget-rate", 0, "refresh budget refill, USD per virtual hour (0 = default)")
	refreshCap := fs.Float64("refresh-budget-cap", 0, "refresh budget ceiling, USD (0 = default)")
	warmMode := fs.String("warmpool", "", "warm-pool policy: off, pinned, reactive, or predictive (empty = disabled)")
	warmRate := fs.Float64("warmpool-budget-rate", 0, "warm-pool budget refill, USD per virtual hour (0 = default)")
	warmCap := fs.Float64("warmpool-budget-cap", 0, "warm-pool budget ceiling, USD (0 = default)")
	admit := fs.Bool("admission", false, "enable the overload-control gate (sheds with 429 past estimated capacity)")
	admitSlots := fs.Int("admission-slots", 0, "admission slot count (0 = platform quota minus headroom)")
	admitUtil := fs.Float64("admission-target-util", 0, "admitted-concurrency ceiling as a fraction of slots (0 = default 0.9)")
	tenants := fs.String("tenants", "", `tenant accounts: "fixture" for the built-in trio, or a path to a JSON tenant file (empty = auth off)`)
	shutdownTimeout := fs.Duration("shutdown-timeout", 10*time.Second, "how long to let in-flight requests drain on SIGINT/SIGTERM")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rt, err := core.New(core.Config{Seed: *seed, SkipMesh: !*fullMesh})
	if err != nil {
		return err
	}
	skydCfg := skyd.Config{Runtime: rt, Speedup: *speedup}
	if *refreshMode != "" {
		// Drift scoring needs the passive collector routed traffic feeds.
		rt.EnablePassiveCharacterization(0)
		skydCfg.Refresh = &refresh.Config{
			Mode:        refresh.Mode(*refreshMode),
			RatePerHour: *refreshRate,
			Cap:         *refreshCap,
		}
	}
	if *warmMode != "" {
		if !warmpool.ValidMode(warmpool.Mode(*warmMode)) {
			return fmt.Errorf("unknown warm-pool mode %q (valid: %v)", *warmMode, warmpool.Modes())
		}
		skydCfg.WarmPool = &warmpool.Config{
			Mode:        warmpool.Mode(*warmMode),
			RatePerHour: *warmRate,
			Cap:         *warmCap,
		}
	}
	if *admit {
		skydCfg.Admission = &admission.Config{
			Slots:      *admitSlots,
			TargetUtil: *admitUtil,
		}
	}
	if *tenants != "" {
		reg, err := loadTenants(*tenants, rt.Metrics())
		if err != nil {
			return err
		}
		skydCfg.Tenants = reg
		log.Printf("tenant auth enabled: %d accounts from %s; /v1 now requires Authorization: Bearer <key>", reg.Len(), *tenants)
	}
	server, err := skyd.New(skydCfg)
	if err != nil {
		return err
	}
	defer server.Close()

	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           server,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpServer.ListenAndServe() }()
	log.Printf("skyd listening on %s (seed %d, %gx pacing); /metrics, /metrics.json, /healthz live", *addr, *seed, *speedup)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case s := <-sig:
		// Graceful drain, strictly ordered: stop the listener and wait out
		// in-flight requests first (they round-trip through the simulation,
		// so the sim goroutine and any refresh loop must still be running),
		// then the deferred server.Close stops the refresh tick and the
		// simulation itself.
		log.Printf("received %v, draining in-flight requests (up to %v)", s, *shutdownTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := httpServer.Shutdown(ctx); err != nil {
			// Deadline exceeded: report it, but still close the simulation
			// cleanly via the defer.
			return fmt.Errorf("shutdown: %w", err)
		}
		// Shutdown returned, so ListenAndServe has ended with
		// ErrServerClosed; collect it so the goroutine is done before the
		// simulation stops.
		if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
