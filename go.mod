module skyfaas

go 1.22
