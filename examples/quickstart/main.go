// Quickstart: stand up a sky, characterize two zones, learn a workload's
// per-CPU performance, and route a burst with the hybrid strategy.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"skyfaas"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A full 41-region world; everything below is deterministic in Seed.
	rt, err := sky.New(sky.Config{Seed: 42})
	if err != nil {
		return err
	}

	zipper, _ := sky.WorkloadByName("zipper")
	zones := []string{"us-west-1a", "us-west-1b", "sa-east-1a"}

	return rt.Do(func(p *sky.Proc) error {
		// 1. Characterize each zone's hidden CPU pool with a few polls.
		fmt.Println("characterizing zones...")
		cost, err := rt.Refresh(p, zones, 6)
		if err != nil {
			return err
		}
		for _, z := range zones {
			ch, _ := rt.Store().Get(z, rt.Env().Now())
			fmt.Printf("  %-12s %5d FIs sampled  ->  %s\n", z, ch.Samples, ch.Dist())
		}
		fmt.Printf("  sampling spend: $%.4f\n\n", cost)

		// 2. Learn how the workload performs on each CPU type.
		fmt.Println("profiling zipper...")
		if _, err := rt.ProfileWorkloads(p, []sky.WorkloadID{zipper.ID}, zones, 900); err != nil {
			return err
		}
		for _, k := range rt.Perf().Kinds(zipper.ID) {
			mean, _ := rt.Perf().Mean(zipper.ID, k)
			fmt.Printf("  %-14v mean %6.0f ms\n", k, mean)
		}
		fmt.Println()

		// 3. Route a burst: fixed-zone baseline vs the hybrid strategy
		//    (region hopping + CPU-targeted retries).
		baseline, err := rt.Run(p, sky.BurstSpec{
			Strategy:   sky.Baseline{AZ: "us-west-1b"},
			Workload:   zipper.ID,
			N:          300,
			Candidates: zones,
		})
		if err != nil {
			return err
		}
		hybrid, err := rt.Run(p, sky.BurstSpec{
			Strategy:   sky.Hybrid{},
			Workload:   zipper.ID,
			N:          300,
			Candidates: zones,
		})
		if err != nil {
			return err
		}
		fmt.Printf("baseline (%s): $%.4f   mean %4.0f ms\n", baseline.AZ, baseline.CostUSD, baseline.MeanRunMS())
		fmt.Printf("hybrid   (%s): $%.4f   mean %4.0f ms   retried %.0f%%\n",
			hybrid.AZ, hybrid.CostUSD, hybrid.MeanRunMS(), hybrid.RetryFrac()*100)
		fmt.Printf("savings: %.1f%%\n", (1-hybrid.CostUSD/baseline.CostUSD)*100)
		return nil
	})
}
