// Payloads: dynamic functions carry their workload (and data files) in the
// request payload — gzip+base64 on the wire, decoded and cached per
// instance (§3.2). This example ships a data-bearing payload twice to the
// same instance and shows the cache eliminating the decode cost.
//
//	go run ./examples/payloads
package main

import (
	"fmt"
	"log"
	"time"

	"skyfaas/internal/cloudsim"
	"skyfaas/internal/cpu"
	"skyfaas/internal/dynfunc"
	"skyfaas/internal/faas"
	"skyfaas/internal/geo"
	"skyfaas/internal/rng"
	"skyfaas/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	env := sim.NewEnv(time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC))
	catalog := []cloudsim.RegionSpec{{
		Provider: cloudsim.AWS, Name: "demo", Loc: geo.Coord{Lat: 40, Lon: -80},
		AZs: []cloudsim.AZSpec{{
			Name: "demo-a", PoolFIs: 1024,
			Mix: map[cpu.Kind]float64{cpu.Xeon25: 1},
		}},
	}}
	cloud := cloudsim.New(env, 7, catalog, cloudsim.Options{HorizonDays: 1})
	if _, err := dynfunc.Deploy(cloud, "demo-a", "dyn", 2048, cpu.X86); err != nil {
		return err
	}
	client := faas.NewClient(cloud, "demo-acct")

	// A payload with ~2 MB of incompressible input data for the sha1
	// workload (already-compressed inputs are the worst case for the
	// decode path).
	data := make([]byte, 2<<20)
	s := rng.New(1)
	for i := 0; i+8 <= len(data); i += 8 {
		v := s.Uint64()
		for j := 0; j < 8; j++ {
			data[i+j] = byte(v >> (8 * j))
		}
	}
	payload := dynfunc.Payload{Workload: "sha1_hash", Data: data}
	wire, err := dynfunc.Encode(payload)
	if err != nil {
		return err
	}
	fmt.Printf("payload: %d bytes raw data -> %d bytes on the wire (hash %s)\n",
		len(payload.Data), len(wire.Blob), wire.Hash[:12])

	env.Go("client", func(p *sim.Proc) error {
		invoke := func(cached bool) cloudsim.Response {
			work, err := dynfunc.WorkFor(payload, len(wire.Blob), cached)
			if err != nil {
				log.Fatal(err)
			}
			return client.Invoke(p, faas.Call{
				AZ: "demo-a", Function: "dyn",
				Work: work, PayloadHash: wire.Hash,
			})
		}
		first := invoke(false)
		if !first.OK() {
			return first.Err
		}
		fmt.Printf("first call:  %6.1f ms billed (cold=%v, payload decoded on the instance)\n",
			first.BilledMS, first.Cold)
		// Same instance, same payload hash: the decode is skipped.
		second := invoke(first.PayloadCached)
		if !second.OK() {
			return second.Err
		}
		work2, _ := dynfunc.WorkFor(payload, len(wire.Blob), second.PayloadCached)
		fmt.Printf("second call: %6.1f ms billed (warm=%v, cached=%v, decode cost now %.1f ms)\n",
			second.BilledMS, !second.Cold, second.PayloadCached, work2.ExtraMS)
		fmt.Printf("decode saved per request: %.1f ms\n",
			dynfunc.DecodeMS(len(wire.Blob), false)-dynfunc.DecodeMS(len(wire.Blob), true))
		return nil
	})
	return env.Run()
}
