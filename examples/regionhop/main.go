// Region hop: track a workload for a week of daily bursts, comparing a
// fixed-zone baseline against the hybrid strategy that re-characterizes
// zones each day and hops to the best one — the paper's Fig.-11 scenario.
//
//	go run ./examples/regionhop
package main

import (
	"fmt"
	"log"
	"time"

	"skyfaas"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rt, err := sky.New(sky.Config{Seed: 11})
	if err != nil {
		return err
	}
	logreg, _ := sky.WorkloadByName("logistic_regression")
	zones := []string{"us-west-1a", "us-west-1b", "sa-east-1a"}
	const fixed = "us-west-1b"
	const days = 7
	const burstN = 300

	return rt.Do(func(p *sky.Proc) error {
		if _, err := rt.ProfileWorkloads(p, []sky.WorkloadID{logreg.ID}, zones, 1200); err != nil {
			return err
		}
		p.Sleep(6 * time.Minute)

		var baseTotal, hybridTotal, sampleTotal float64
		fmt.Printf("%-4s  %-10s  %-10s  %-12s  %s\n", "day", "baseline", "hybrid", "zone chosen", "daily savings")
		for day := 1; day <= days; day++ {
			// Re-characterize every morning: volatile zones drift daily.
			cost, err := rt.Refresh(p, zones, 6)
			if err != nil {
				return err
			}
			sampleTotal += cost

			base, err := rt.Run(p, sky.BurstSpec{
				Strategy: sky.Baseline{AZ: fixed}, Workload: logreg.ID, N: burstN, Candidates: zones,
			})
			if err != nil {
				return err
			}
			p.Sleep(6 * time.Minute)
			hyb, err := rt.Run(p, sky.BurstSpec{
				Strategy: sky.Hybrid{}, Workload: logreg.ID, N: burstN, Candidates: zones,
			})
			if err != nil {
				return err
			}
			baseTotal += base.CostUSD
			hybridTotal += hyb.CostUSD
			fmt.Printf("%-4d  $%.4f    $%.4f    %-12s  %5.1f%%\n",
				day, base.CostUSD, hyb.CostUSD, hyb.AZ, (1-hyb.CostUSD/base.CostUSD)*100)
			if day < days {
				p.Sleep(22 * time.Hour)
			}
		}
		fmt.Printf("\ncumulative savings %.1f%% (spent $%.4f on characterization)\n",
			(1-hybridTotal/baseTotal)*100, sampleTotal)
		return nil
	})
}
