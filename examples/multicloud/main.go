// Multicloud: build the full sky mesh across AWS Lambda, IBM Code Engine,
// and DigitalOcean Functions, characterize a zone from each provider, and
// show where a workload runs cheapest — the paper's EX-2 view.
//
//	go run ./examples/multicloud
package main

import (
	"fmt"
	"log"

	"skyfaas"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rt, err := sky.New(sky.Config{Seed: 3})
	if err != nil {
		return err
	}
	fmt.Printf("sky mesh deployed: %d endpoints across %d regions\n\n",
		rt.Mesh().Size(), len(rt.Cloud().Regions()))

	// One zone per provider.
	zones := []string{"us-west-2a", "eu-de-a", "nyc1-a"}
	zipper, _ := sky.WorkloadByName("zipper")

	return rt.Do(func(p *sky.Proc) error {
		if _, err := rt.Refresh(p, zones, 5); err != nil {
			return err
		}
		fmt.Println("per-provider CPU pools (as characterized by sampling):")
		for _, z := range zones {
			ch, _ := rt.Store().Get(z, rt.Env().Now())
			fmt.Printf("  %-12s %s\n", z, ch.Dist())
		}
		fmt.Println()

		if _, err := rt.ProfileWorkloads(p, []sky.WorkloadID{zipper.ID}, zones, 600); err != nil {
			return err
		}

		fmt.Println("zipper burst of 200 per zone:")
		var best string
		var bestCost float64
		for _, z := range zones {
			res, err := rt.Run(p, sky.BurstSpec{
				Strategy: sky.Baseline{AZ: z},
				Workload: zipper.ID,
				N:        200,
			})
			if err != nil {
				return err
			}
			fmt.Printf("  %-12s $%.4f  (mean %4.0f ms on %d CPU types)\n",
				z, res.CostUSD, res.MeanRunMS(), len(res.PerCPU))
			if best == "" || res.CostUSD < bestCost {
				best, bestCost = z, res.CostUSD
			}
		}
		fmt.Printf("\ncheapest zone for zipper right now: %s\n", best)

		// Sky routing across providers: hand the decision to Regional.
		res, err := rt.Run(p, sky.BurstSpec{
			Strategy:   sky.Regional{},
			Workload:   zipper.ID,
			N:          200,
			Candidates: zones,
		})
		if err != nil {
			return err
		}
		fmt.Printf("Regional strategy picked %s ($%.4f)\n", res.AZ, res.CostUSD)
		return nil
	})
}
