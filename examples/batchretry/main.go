// Batch retry: run a batch workload on one heterogeneous zone under each
// retry policy and compare cost, runtime, and retry overhead — the paper's
// Fig.-10 scenario in miniature.
//
//	go run ./examples/batchretry
package main

import (
	"fmt"
	"log"
	"time"

	"skyfaas"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rt, err := sky.New(sky.Config{Seed: 7})
	if err != nil {
		return err
	}
	const zone = "us-west-1b" // diverse CPUs: all four Lambda processors
	math, _ := sky.WorkloadByName("math_service")

	return rt.Do(func(p *sky.Proc) error {
		// Know the zone and the workload before routing anything.
		if _, err := rt.Refresh(p, []string{zone}, 6); err != nil {
			return err
		}
		ch, _ := rt.Store().Get(zone, rt.Env().Now())
		fmt.Printf("%s characterization: %s\n\n", zone, ch.Dist())
		if _, err := rt.ProfileWorkloads(p, []sky.WorkloadID{math.ID}, []string{zone}, 1200); err != nil {
			return err
		}

		strategies := []sky.Strategy{
			sky.Baseline{AZ: zone},
			sky.RetrySlow{AZ: zone},
			sky.FocusFastest{AZ: zone},
		}
		var baseCost float64
		for _, s := range strategies {
			res, err := rt.Run(p, sky.BurstSpec{
				Strategy: s,
				Workload: math.ID,
				N:        400,
			})
			if err != nil {
				return err
			}
			saved := ""
			if s.Name() == "baseline" {
				baseCost = res.CostUSD
			} else if baseCost > 0 {
				saved = fmt.Sprintf("  saved %5.1f%%", (1-res.CostUSD/baseCost)*100)
			}
			fmt.Printf("%-14s cost $%.4f  mean %5.0f ms  retried %4.1f%%  batch took %v%s\n",
				s.Name(), res.CostUSD, res.MeanRunMS(), res.RetryFrac()*100,
				res.Elapsed.Truncate(time.Millisecond), saved)
			// Let instances expire so each policy starts from a cold pool.
			p.Sleep(6 * time.Minute)
		}
		return nil
	})
}
