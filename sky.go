// Package sky is the public API of skyfaas: a from-scratch reproduction of
// "Sky Computing for Serverless: Infrastructure Assessment to Support
// Performance Enhancement" (Cordingly et al.).
//
// A Runtime bundles the full system: a deterministic simulated multi-cloud
// (41 regions across AWS Lambda, IBM Code Engine, and DigitalOcean
// Functions), a sky mesh of pre-deployed dynamic functions, the
// infrastructure sampling technique that characterizes each zone's hidden
// CPU pool, a per-workload performance model, and the smart routing system
// that exploits hardware heterogeneity for cost savings.
//
// Quickstart:
//
//	rt, err := sky.New(sky.Config{Seed: 42})
//	if err != nil { ... }
//	err = rt.Do(func(p *sim.Proc) error {
//		ch, _, err := rt.Characterize(p, "us-west-1a")   // profile a zone
//		if err != nil { return err }
//		fmt.Println(ch.Dist())                           // its CPU mix
//		rt.ProfileWorkloads(p, workload.IDs(), []string{"us-west-1a"}, 100)
//		res, err := rt.Run(p, sky.BurstSpec{             // route a burst
//			Strategy:   sky.Hybrid{},
//			Workload:   workload.Zipper,
//			N:          100,
//			Candidates: []string{"us-west-1a", "us-west-1b"},
//		})
//		...
//	})
//
// See examples/ for complete programs and DESIGN.md for the architecture.
package sky

import (
	"skyfaas/internal/admission"
	"skyfaas/internal/chaos"
	"skyfaas/internal/charact"
	"skyfaas/internal/cloudsim"
	"skyfaas/internal/core"
	"skyfaas/internal/faas"
	"skyfaas/internal/load"
	"skyfaas/internal/refresh"
	"skyfaas/internal/router"
	"skyfaas/internal/sampler"
	"skyfaas/internal/sim"
	"skyfaas/internal/tenant"
	"skyfaas/internal/warmpool"
	"skyfaas/internal/workload"
)

// Core assembly.
type (
	// Runtime is a fully assembled serverless sky computing system.
	Runtime = core.Runtime
	// Config assembles a Runtime; the zero value plus a Seed is a
	// complete, paper-faithful configuration.
	Config = core.Config
)

// New builds a Runtime over the default 41-region world (or cfg.Catalog).
func New(cfg Config) (*Runtime, error) { return core.New(cfg) }

// Routing strategies (§3.5).
type (
	// Strategy decides burst placement and CPU bans.
	Strategy = router.Strategy
	// Baseline pins bursts to one zone with no retries.
	Baseline = router.Baseline
	// Regional routes each burst to the best-characterized zone.
	Regional = router.Regional
	// RetrySlow retries invocations landing on the slowest CPUs.
	RetrySlow = router.RetrySlow
	// FocusFastest aggressively retries anything off the fastest CPU.
	FocusFastest = router.FocusFastest
	// Hybrid combines region hopping with overhead-optimal CPU retries.
	Hybrid = router.Hybrid
	// LatencyBound filters candidates by client round-trip time (§3.4's
	// client-region distance heuristic).
	LatencyBound = router.LatencyBound
	// CostAware optimizes expected dollars across provider rate cards.
	CostAware = router.CostAware
	// BurstSpec describes one routed batch of invocations.
	BurstSpec = router.BurstSpec
	// BurstResult summarizes a routed batch.
	BurstResult = router.BurstResult
	// PerfModel is the learned per-workload, per-CPU runtime profile.
	PerfModel = router.PerfModel
	// StrategySpec names a strategy declaratively for Build.
	StrategySpec = router.StrategySpec
	// BuildOption supplies runtime dependencies to Build.
	BuildOption = router.BuildOption
)

// BuildStrategy turns a StrategySpec into a Strategy; unknown names yield
// an error wrapping router.ErrUnknownStrategy listing the valid choices.
func BuildStrategy(spec StrategySpec, opts ...BuildOption) (Strategy, error) {
	return router.Build(spec, opts...)
}

// StrategyNames lists the registered strategy names, sorted.
func StrategyNames() []string { return router.Names() }

// Resilient routing (graceful degradation under faults).
type (
	// Resilience configures retries, hedging, circuit breaking, and
	// failover for a burst.
	Resilience = router.Resilience
	// BreakerConfig tunes the per-AZ circuit breaker.
	BreakerConfig = router.BreakerConfig
	// Breaker is a sim-time circuit breaker.
	Breaker = router.Breaker
	// InvokeSpec describes a single resilient invocation for faas.Client.Do.
	InvokeSpec = faas.InvokeSpec
	// RetryPolicy bounds attempts and shapes backoff.
	RetryPolicy = faas.RetryPolicy
	// HedgePolicy arms duplicate requests against stragglers.
	HedgePolicy = faas.HedgePolicy
)

// DefaultResilience returns the recommended production posture: breaker,
// failover, three attempts with jittered backoff.
func DefaultResilience() *Resilience { return router.DefaultResilience() }

// Fault injection (chaos engineering over the simulated sky).
type (
	// Fault is one timed pathology window on one zone.
	Fault = chaos.Fault
	// FaultKind names a pathology (outage, throttle-storm, ...).
	FaultKind = chaos.Kind
	// Scenario is a named, composable set of fault windows.
	Scenario = chaos.Scenario
	// Injector arms fault windows against a runtime's cloud.
	Injector = chaos.Injector
	// FaultStatus describes one scheduled fault window.
	FaultStatus = chaos.Status
)

// FaultKinds lists every supported fault kind, in stable order.
func FaultKinds() []FaultKind { return chaos.Kinds() }

// ScenarioByName builds a canned chaos scenario targeting az.
func ScenarioByName(name, az string) (Scenario, bool) { return chaos.ScenarioByName(name, az) }

// ScenarioNames lists the canned chaos scenario names, sorted.
func ScenarioNames() []string { return chaos.ScenarioNames() }

// Continuous characterization maintenance (drift detection + refresh).
type (
	// RefreshConfig tunes the drift-aware refresh control loop.
	RefreshConfig = refresh.Config
	// RefreshMode selects the maintenance policy (off, age, drift).
	RefreshMode = refresh.Mode
	// RefreshMaintainer is the running control loop; obtain one with
	// Runtime.EnableRefresh.
	RefreshMaintainer = refresh.Maintainer
	// RefreshStatus is a point-in-time snapshot of the control loop.
	RefreshStatus = refresh.Status
	// DriftScore quantifies passive-vs-stored CPU-mix divergence for a zone.
	DriftScore = refresh.DriftScore
	// RefreshWeights blends age, drift, and traffic into refresh urgency.
	RefreshWeights = refresh.Weights
)

// RefreshModes lists the supported maintenance modes, in stable order.
func RefreshModes() []RefreshMode { return refresh.Modes() }

// Predictive warm pooling (forecast-driven cold-start elimination).
type (
	// WarmPoolConfig tunes the pre-warming control loop.
	WarmPoolConfig = warmpool.Config
	// WarmPoolMode selects the pool-sizing policy (off, pinned, reactive,
	// predictive).
	WarmPoolMode = warmpool.Mode
	// WarmPoolMaintainer is the running control loop; obtain one with
	// Runtime.EnableWarmPool.
	WarmPoolMaintainer = warmpool.Maintainer
	// WarmPoolStatus is a point-in-time snapshot of the control loop.
	WarmPoolStatus = warmpool.Status
	// WarmPoolZoneStatus is one maintained zone's forecast and pool state.
	WarmPoolZoneStatus = warmpool.ZoneStatus
)

// WarmPoolModes lists the supported pool-sizing policies, in stable order.
func WarmPoolModes() []WarmPoolMode { return warmpool.Modes() }

// Admission control (overload shedding) and open-loop load generation.
type (
	// AdmissionConfig tunes the overload-control gate; obtain a running
	// gate with Runtime.EnableAdmission.
	AdmissionConfig = admission.Config
	// AdmissionController is the concurrency-limited admission gate.
	AdmissionController = admission.Controller
	// AdmissionTicket is one admitted request's accounting handle.
	AdmissionTicket = admission.Ticket
	// ShedError is the typed rejection an overloaded gate returns,
	// carrying the Retry-After hint skyd surfaces as HTTP 429.
	ShedError = admission.ShedError
	// AdmissionSnapshot is a point-in-time view of the gate.
	AdmissionSnapshot = admission.Snapshot
	// LoadSchedule is a deterministic open-loop arrival schedule
	// (constant, ramp, or diurnal RPS).
	LoadSchedule = load.Schedule
	// LoadMix is a weighted workload mix for generated traffic.
	LoadMix = load.Mix
	// LoadRecorder accumulates per-request outcomes into a LoadReport.
	LoadRecorder = load.Recorder
	// LoadReport is a load run's digest: goodput, latency quantiles, and
	// the shed/error breakdown.
	LoadReport = load.Report
)

// ErrShed matches any ShedError via errors.Is.
var ErrShed = admission.ErrShed

// Multi-tenant accounts (API-key auth, per-tenant quotas and budgets).
type (
	// Tenant is one account: identity, API keys, and its concurrency quota
	// and USD budget governors.
	Tenant = tenant.Tenant
	// TenantRegistry resolves keys to accounts and enforces per-tenant
	// quotas/budgets ahead of the global admission gate.
	TenantRegistry = tenant.Registry
	// TenantConfig tunes a TenantRegistry.
	TenantConfig = tenant.Config
	// TenantLease is one admitted request's per-tenant accounting handle.
	TenantLease = tenant.Lease
	// TenantLimitError is the typed rejection a tenant over its quota or
	// budget receives, carrying the Retry-After hint skyd surfaces as 429.
	TenantLimitError = tenant.LimitError
	// TenantUsage is one account's billing/usage rollup.
	TenantUsage = tenant.Usage
)

// ErrTenantLimited matches any TenantLimitError via errors.Is.
var ErrTenantLimited = tenant.ErrLimited

// NewTenantRegistry builds an empty tenant registry.
func NewTenantRegistry(cfg TenantConfig) *TenantRegistry { return tenant.NewRegistry(cfg) }

// TenantFixture returns the built-in deterministic demo accounts.
func TenantFixture() []Tenant { return tenant.Fixture() }

// ParseLoadMix parses a "name=weight,name=weight" workload mix.
func ParseLoadMix(s string) (LoadMix, error) { return load.ParseMix(s) }

// LoadPatterns lists the supported arrival patterns, in stable order.
func LoadPatterns() []load.Pattern { return load.Patterns() }

// Characterization machinery (RQ-1/RQ-2).
type (
	// Characterization is one zone's hardware profile.
	Characterization = charact.Characterization
	// Dist is a CPU-kind share distribution.
	Dist = charact.Dist
	// SamplerConfig tunes the polling technique.
	SamplerConfig = sampler.Config
	// PollResult is one infrastructure poll's outcome.
	PollResult = sampler.PollResult
)

// APE is the absolute percentage error between two distributions
// (total-variation distance in percent).
func APE(est, ref Dist) float64 { return charact.APE(est, ref) }

// World model.
type (
	// RegionSpec statically describes a region.
	RegionSpec = cloudsim.RegionSpec
	// AZSpec statically describes an availability zone.
	AZSpec = cloudsim.AZSpec
	// CloudOptions tunes platform mechanics.
	CloudOptions = cloudsim.Options
)

// DefaultCatalog returns the 41-region default world.
func DefaultCatalog() []RegionSpec { return cloudsim.DefaultCatalog() }

// Simulation plumbing needed by client code.
type (
	// Proc is the cooperative client process handed to Runtime.Do.
	Proc = sim.Proc
	// WorkloadID identifies a Table-1 workload.
	WorkloadID = workload.ID
	// WorkloadSpec is a Table-1 workload's description and cost model.
	WorkloadSpec = workload.Spec
)

// Workloads re-exports the Table-1 catalog for convenience.
func Workloads() []WorkloadSpec { return workload.All() }

// WorkloadByName resolves a Table-1 workload by its snake_case name.
func WorkloadByName(name string) (WorkloadSpec, bool) { return workload.ByName(name) }
