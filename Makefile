# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test race bench reproduce serve clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/skyd/ ./internal/sim/

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper table/figure at full scale (writes data/*.csv).
reproduce:
	$(GO) run ./cmd/skybench -ex all -csvdir data | tee skybench_full.txt

serve:
	$(GO) run ./cmd/skyd -addr 127.0.0.1:8080

clean:
	rm -rf data skybench_full.txt test_output.txt bench_output.txt
