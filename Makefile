# Convenience targets; everything is plain `go` underneath.

GO ?= go

# Concurrency-sensitive packages that must stay race-clean. `make ci` and
# .github/workflows/ci.yml run exactly the same targets; the
# internal/ciparity test asserts the two lists cannot drift.
RACE_PKGS = ./internal/skyd/ ./internal/sim/ ./internal/metrics/ ./internal/cloudsim/ ./internal/router/ ./internal/chaos/ ./internal/faas/ ./internal/refresh/ ./internal/trace/ ./internal/admission/ ./internal/load/ ./internal/core/ ./internal/experiments/ ./internal/tenant/ ./internal/warmpool/

# Benchmark selection for `make bench` (regexp, per `go test -bench`).
# Example: make bench BENCH_PATTERN='RouteHotPath|ShardedMesh'
BENCH_PATTERN ?= .

# The benchmark-regression gate's subjects and baselines (see cmd/benchcheck
# and the README "Performance" section).
BENCH_GATE_PATTERN = BenchmarkRouteHotPath$$|BenchmarkShardedMesh$$|BenchmarkSkylintModule$$|BenchmarkWarmPoolTick$$
BENCH_BASELINES = -baseline BENCH_route.json -baseline BENCH_mesh.json -baseline BENCH_warmpool.json

.PHONY: all build vet fmt-check lint lint-fixtures test race ci smoke-ex6 smoke-ex7 smoke-ex8 smoke-ex10 smoke-ex11 bench bench-check bench-baseline reproduce serve clean

all: build vet lint test

ci: build vet fmt-check lint test race smoke-ex6 smoke-ex7 smoke-ex8 smoke-ex10 smoke-ex11 bench-check

# One reduced EX-6 pass: proves the chaos layer, resilient routing, and the
# strategy registry compose end to end outside the test harness.
smoke-ex6:
	$(GO) run ./cmd/skybench -ex ex6 -scale reduced

# One reduced EX-7 pass: proves the drift detector, refresh scheduler, and
# budget governor compose end to end outside the test harness.
smoke-ex7:
	$(GO) run ./cmd/skybench -ex ex7 -scale reduced

# One reduced EX-8 pass: proves the admission gate, the open-loop load
# schedule, and the overload frontier compose end to end outside the test
# harness.
smoke-ex8:
	$(GO) run ./cmd/skybench -ex ex8 -scale reduced

# One reduced EX-10 pass: proves the tenant quota governors, the global
# admission gate, and the fairness comparison compose end to end outside the
# test harness.
smoke-ex10:
	$(GO) run ./cmd/skybench -ex ex10 -scale reduced

# One reduced EX-11 pass: proves the warm-pool forecaster, the budget
# governor, and the pre-warm actuator compose end to end outside the test
# harness.
smoke-ex11:
	$(GO) run ./cmd/skybench -ex ex11 -scale reduced

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis (determinism & concurrency invariants);
# see internal/lint and the README "Static analysis" section. Findings are
# mirrored into lint_findings.json for CI archival, and under GitHub
# Actions skylint emits ::error workflow commands so findings land as
# inline PR annotations.
lint:
	$(GO) run ./cmd/skylint -json lint_findings.json ./...

# Just the analyzer golden tests (fixture module, //want markers) — the
# fast inner loop when developing a lint rule. -short skips the repo-wide
# type-check that the full `go test ./internal/lint/` also performs.
lint-fixtures:
	$(GO) test -short ./internal/lint/ ./cmd/skylint/

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -bench='$(BENCH_PATTERN)' -benchmem ./...

# Benchmark-regression gate: run the routing/mesh microbenchmarks a few
# times and compare every reported metric against the checked-in baselines
# (±25% drift tolerance; 0 allocs/op baselines are exact). The bench output
# is kept in a file so a go test failure isn't masked by the pipe.
bench-check:
	$(GO) test -run '^$$' -bench '$(BENCH_GATE_PATTERN)' -benchtime 3x -benchmem . ./internal/router/ ./internal/warmpool/ > bench_check_output.txt || (cat bench_check_output.txt; exit 1)
	$(GO) run ./cmd/benchcheck $(BENCH_BASELINES) bench_check_output.txt

# Refresh the gate baselines in place (run on the benchmark machine after a
# deliberate performance change; review the diff like any other).
bench-baseline:
	$(GO) test -run '^$$' -bench '$(BENCH_GATE_PATTERN)' -benchtime 3x -benchmem . ./internal/router/ ./internal/warmpool/ > bench_check_output.txt || (cat bench_check_output.txt; exit 1)
	$(GO) run ./cmd/benchcheck -update $(BENCH_BASELINES) bench_check_output.txt

# Regenerate every paper table/figure at full scale (writes data/*.csv).
reproduce:
	$(GO) run ./cmd/skybench -ex all -csvdir data | tee skybench_full.txt

serve:
	$(GO) run ./cmd/skyd -addr 127.0.0.1:8080

# Remove generated outputs only. data/ holds the checked-in fig*.csv
# reproduction artifacts (refreshed in place by `make reproduce`), so it
# must survive a clean.
clean:
	rm -f skybench_full.txt test_output.txt bench_output.txt bench_check_output.txt lint_findings.json
