package metrics

import (
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sky_test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value() = %d, want 5", got)
	}
	// Same name + labels returns the same series.
	if r.Counter("sky_test_total", "a counter") != c {
		t.Fatal("second lookup returned a different series")
	}
}

func TestLabeledSeriesAreDistinct(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("sky_labeled_total", "", L("az", "us-west-1a"))
	b := r.Counter("sky_labeled_total", "", L("az", "us-west-1b"))
	if a == b {
		t.Fatal("different label values shared a series")
	}
	a.Inc()
	if b.Value() != 0 {
		t.Fatal("increment leaked across series")
	}
	// Label order must not matter.
	x := r.Counter("sky_two_labels_total", "", L("a", "1"), L("b", "2"))
	y := r.Counter("sky_two_labels_total", "", L("b", "2"), L("a", "1"))
	if x != y {
		t.Fatal("label order changed series identity")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("sky_kind_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("sky_kind_total", "")
}

func TestLabelSchemaMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("sky_schema_total", "", L("az", "x"))
	defer func() {
		if recover() == nil {
			t.Fatal("changing the label schema did not panic")
		}
	}()
	r.Counter("sky_schema_total", "", L("strategy", "hybrid"))
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("sky_depth", "")
	g.Set(2.5)
	g.Inc()
	g.Dec()
	g.Add(-0.5)
	if got := g.Value(); got != 2 {
		t.Fatalf("Value() = %v, want 2", got)
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles reported nonzero values")
	}
	if s := h.Snapshot(); s.Count != 0 || len(s.Buckets) != 0 {
		t.Fatalf("nil histogram snapshot = %+v", s)
	}
	var r *Registry
	if r.Counter("x", "") != nil {
		t.Fatal("nil registry returned a live counter")
	}
	if s := r.Snapshot(); len(s.Metrics) != 0 {
		t.Fatal("nil registry snapshot non-empty")
	}
}

func TestConcurrentCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("sky_conc_total", "").Inc()
				r.Gauge("sky_conc_gauge", "").Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("sky_conc_total", "").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("sky_conc_gauge", "").Value(); got != 8000 {
		t.Fatalf("gauge = %v, want 8000", got)
	}
}

func TestDefaultRegistryIsStable(t *testing.T) {
	if Default() == nil || Default() != Default() {
		t.Fatal("Default() is not a stable singleton")
	}
}
