package metrics

import (
	"encoding/json"
	"strings"
	"testing"
)

func buildTestRegistry() *Registry {
	r := NewRegistry()
	r.Counter("sky_requests_total", "requests seen", L("az", "us-west-1a")).Add(7)
	r.Counter("sky_requests_total", "requests seen", L("az", `we"ird\az`)).Add(1)
	r.Gauge("sky_queue_depth", "commands waiting").Set(3)
	h := r.Histogram("sky_latency_ms", "request latency", []float64{1, 10}, L("path", "/v1/burst"))
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	return r
}

func TestWritePrometheus(t *testing.T) {
	var b strings.Builder
	if err := buildTestRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP sky_requests_total requests seen",
		"# TYPE sky_requests_total counter",
		`sky_requests_total{az="us-west-1a"} 7`,
		`sky_requests_total{az="we\"ird\\az"} 1`,
		"# TYPE sky_queue_depth gauge",
		"sky_queue_depth 3",
		"# TYPE sky_latency_ms histogram",
		`sky_latency_ms_bucket{path="/v1/burst",le="1"} 1`,
		`sky_latency_ms_bucket{path="/v1/burst",le="10"} 2`,
		`sky_latency_ms_bucket{path="/v1/burst",le="+Inf"} 3`,
		`sky_latency_ms_sum{path="/v1/burst"} 55.5`,
		`sky_latency_ms_count{path="/v1/burst"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Families sorted by name: the histogram block precedes the counters.
	if strings.Index(out, "sky_latency_ms") > strings.Index(out, "sky_queue_depth") {
		t.Errorf("families not sorted:\n%s", out)
	}
}

func TestWriteJSON(t *testing.T) {
	var b strings.Builder
	if err := buildTestRegistry().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(b.String()), &snap); err != nil {
		t.Fatalf("round-trip failed: %v\n%s", err, b.String())
	}
	if len(snap.Metrics) != 3 {
		t.Fatalf("families = %d, want 3", len(snap.Metrics))
	}
	byName := map[string]FamilySnapshot{}
	for _, m := range snap.Metrics {
		byName[m.Name] = m
	}
	if byName["sky_requests_total"].Type != KindCounter || len(byName["sky_requests_total"].Series) != 2 {
		t.Fatalf("counter family = %+v", byName["sky_requests_total"])
	}
	hist := byName["sky_latency_ms"].Series[0].Histogram
	if hist == nil || hist.Count != 3 || hist.Sum != 55.5 {
		t.Fatalf("histogram = %+v", hist)
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	a := buildTestRegistry().Snapshot()
	b := buildTestRegistry().Snapshot()
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("snapshots of identical programs differ:\n%s\n%s", ja, jb)
	}
}
