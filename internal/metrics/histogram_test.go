package metrics

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
)

func TestHistogramZeroObservations(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	snap := h.Snapshot()
	if snap.Count != 0 || snap.Sum != 0 {
		t.Fatalf("empty histogram: count=%d sum=%v", snap.Count, snap.Sum)
	}
	if got := snap.Mean(); got != 0 {
		t.Fatalf("Mean() = %v, want 0", got)
	}
	if got := snap.Quantile(0.99); got != 0 {
		t.Fatalf("Quantile(0.99) = %v, want 0", got)
	}
	if len(snap.Buckets) != 4 { // 3 bounds + the +Inf overflow
		t.Fatalf("buckets = %d, want 4", len(snap.Buckets))
	}
	for _, b := range snap.Buckets {
		if b.Count != 0 {
			t.Fatalf("empty histogram has bucket count %d at le=%v", b.Count, b.UpperBound)
		}
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 1.5, 10, 99, 100} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	wantCum := []uint64{2, 4, 6, 6} // le=1: {0.5,1}; le=10: +{1.5,10}; le=100: +{99,100}
	for i, want := range wantCum {
		if snap.Buckets[i].Count != want {
			t.Fatalf("bucket[%d] = %d, want %d (snap %+v)", i, snap.Buckets[i].Count, want, snap)
		}
	}
	if snap.Count != 6 || snap.Sum != 212 {
		t.Fatalf("count=%d sum=%v", snap.Count, snap.Sum)
	}
}

func TestHistogramBeyondLastBucket(t *testing.T) {
	h := NewHistogram([]float64{1, 10})
	h.Observe(10.0001)
	h.Observe(1e12)
	h.Observe(math.Inf(1))
	snap := h.Snapshot()
	if snap.Count != 3 {
		t.Fatalf("count = %d, want 3 (overflow observations must not be dropped)", snap.Count)
	}
	last := snap.Buckets[len(snap.Buckets)-1]
	if !math.IsInf(last.UpperBound, 1) || last.Count != 3 {
		t.Fatalf("+Inf bucket = %+v", last)
	}
	if snap.Buckets[0].Count != 0 || snap.Buckets[1].Count != 0 {
		t.Fatalf("finite buckets non-empty: %+v", snap.Buckets)
	}
	// The +Inf quantile estimate clamps to the last finite bound.
	if got := snap.Quantile(0.5); got != 10 {
		t.Fatalf("Quantile(0.5) = %v, want 10", got)
	}
}

func TestHistogramNaNDropped(t *testing.T) {
	h := NewHistogram(nil)
	h.Observe(math.NaN())
	h.Observe(5)
	snap := h.Snapshot()
	if snap.Count != 1 || snap.Sum != 5 {
		t.Fatalf("after NaN: count=%d sum=%v", snap.Count, snap.Sum)
	}
}

func TestHistogramNegativeAndUnsortedBounds(t *testing.T) {
	h := NewHistogram([]float64{50, -1, 5}) // bounds get sorted
	h.Observe(-10)
	h.Observe(0)
	h.Observe(7)
	snap := h.Snapshot()
	if snap.Buckets[0].UpperBound != -1 || snap.Buckets[0].Count != 1 {
		t.Fatalf("bucket[0] = %+v", snap.Buckets[0])
	}
	if snap.Buckets[1].Count != 2 || snap.Buckets[2].Count != 3 {
		t.Fatalf("buckets = %+v", snap.Buckets)
	}
}

// TestHistogramConcurrentObserve hammers one histogram from many goroutines;
// run under -race this is the package's data-race certification.
func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8, 16, 32})
	const (
		writers = 8
		perW    = 5000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				h.Observe(float64((w*perW + i) % 40))
			}
		}()
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count != writers*perW {
		t.Fatalf("count = %d, want %d", snap.Count, writers*perW)
	}
	// Every value 0..39 appears writers*perW/40 times; sum is exact because
	// the values are small integers.
	wantSum := float64(writers*perW) / 40 * (39 * 40 / 2)
	if snap.Sum != wantSum {
		t.Fatalf("sum = %v, want %v", snap.Sum, wantSum)
	}
	if last := snap.Buckets[len(snap.Buckets)-1].Count; last != snap.Count {
		t.Fatalf("+Inf cumulative %d != count %d", last, snap.Count)
	}
}

// TestHistogramSnapshotWhileWriting takes snapshots concurrently with
// writers and checks every one is internally consistent: buckets are
// cumulative, the +Inf bucket equals Count, and Count is monotone across
// snapshots.
func TestHistogramSnapshotWhileWriting(t *testing.T) {
	h := NewHistogram([]float64{5, 10, 20})
	stop := make(chan struct{})
	var wrote atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(float64(i % 25))
				wrote.Add(1)
			}
		}()
	}
	var lastCount uint64
	for i := 0; i < 200; i++ {
		snap := h.Snapshot()
		var prev uint64
		for _, b := range snap.Buckets {
			if b.Count < prev {
				t.Fatalf("buckets not cumulative: %+v", snap.Buckets)
			}
			prev = b.Count
		}
		if snap.Buckets[len(snap.Buckets)-1].Count != snap.Count {
			t.Fatalf("snapshot inconsistent: +Inf=%d count=%d",
				snap.Buckets[len(snap.Buckets)-1].Count, snap.Count)
		}
		if snap.Count < lastCount {
			t.Fatalf("count went backwards: %d -> %d", lastCount, snap.Count)
		}
		lastCount = snap.Count
	}
	close(stop)
	wg.Wait()
	final := h.Snapshot()
	if final.Count != wrote.Load() {
		t.Fatalf("final count %d != observations made %d", final.Count, wrote.Load())
	}
}

func TestQuantileInterpolation(t *testing.T) {
	h := NewHistogram([]float64{10, 20})
	for i := 0; i < 100; i++ {
		h.Observe(5) // all in the first bucket
	}
	snap := h.Snapshot()
	// Median rank 50 of 100 falls midway through [0,10).
	if got := snap.Quantile(0.5); got != 5 {
		t.Fatalf("Quantile(0.5) = %v, want 5", got)
	}
	if got := snap.Quantile(1); got != 10 {
		t.Fatalf("Quantile(1) = %v, want 10", got)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 5)
	want := []float64{1, 2, 4, 8, 16}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ExpBuckets(0,2,3) did not panic")
		}
	}()
	ExpBuckets(0, 2, 3)
}
