package metrics

import (
	"math"
	"testing"
)

func TestSummary(t *testing.T) {
	h := NewHistogram(ExpBuckets(1, 2, 12))
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	sum := h.Snapshot().Summary()
	if sum.Count != 1000 {
		t.Fatalf("count = %d, want 1000", sum.Count)
	}
	if math.Abs(sum.Mean-500.5) > 0.01 {
		t.Errorf("mean = %v, want 500.5", sum.Mean)
	}
	// Bucketed estimates are coarse; check ordering and ballpark.
	if !(sum.P50 <= sum.P90 && sum.P90 <= sum.P95 && sum.P95 <= sum.P99) {
		t.Errorf("quantiles not monotone: %+v", sum)
	}
	if sum.P50 < 250 || sum.P50 > 1000 {
		t.Errorf("p50 = %v, want within the distribution", sum.P50)
	}
	if sum.P99 < sum.Mean {
		t.Errorf("p99 = %v below mean %v", sum.P99, sum.Mean)
	}
}

func TestSummaryEmpty(t *testing.T) {
	var h *Histogram
	sum := h.Snapshot().Summary()
	if sum.Count != 0 || sum.Mean != 0 || sum.P99 != 0 {
		t.Errorf("empty summary not zero: %+v", sum)
	}
}

func TestQuantilesMatchQuantile(t *testing.T) {
	h := NewHistogram(DefBuckets)
	for i := 0; i < 500; i++ {
		h.Observe(float64(i % 97))
	}
	snap := h.Snapshot()
	got := snap.Quantiles(0.5, 0.9, 0.99)
	for i, q := range []float64{0.5, 0.9, 0.99} {
		if want := snap.Quantile(q); got[i] != want {
			t.Errorf("Quantiles[%d] = %v, Quantile(%v) = %v", i, got[i], q, want)
		}
	}
}
