// Package metrics is a small, dependency-free instrumentation layer for the
// sky runtime: atomic counters, gauges, and fixed-bucket latency histograms
// behind a registry with Prometheus-text and JSON exposition.
//
// The package serves two very different callers at once. The simulation
// kernel is single-threaded and extremely hot — instrumented model code
// (cloudsim, router) resolves its series once and then touches only
// lock-free atomics on the fast path. HTTP handlers (skyd) are fully
// concurrent — every operation on a Counter, Gauge, Histogram, or Registry
// is safe without external locking, including taking a snapshot while
// writers are active.
//
// All metric handles are nil-safe: methods on a nil *Counter, *Gauge, or
// *Histogram are no-ops, so model code can hold unconditionally-called
// handles and pay nothing when metrics are disabled.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name/value pair attached to a series.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind discriminates the metric families a registry can hold.
type Kind string

// The supported metric kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// ---------------------------------------------------------------------------
// Counter

// Counter is a monotonically increasing integer. The zero value is ready to
// use; a nil receiver is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add increments by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// ---------------------------------------------------------------------------
// Gauge

// Gauge is a float64 that can go up and down. The zero value is ready to
// use; a nil receiver is a no-op.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments by delta (negative deltas decrement).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// ---------------------------------------------------------------------------
// Registry

// family is one named metric with a fixed kind, help string, label schema,
// and (for histograms) bucket layout, holding every labeled series.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string  // sorted label keys all series must carry
	bounds  []float64 // histogram upper bounds (nil otherwise)
	mu      sync.RWMutex
	series  map[string]any     // series key -> *Counter | *Gauge | *Histogram; guarded by mu
	ordered []string           // series keys in first-seen order; guarded by mu
	byKey   map[string][]Label // labels per series key; guarded by mu
}

// Registry holds metric families and hands out their series.
type Registry struct {
	mu sync.RWMutex
	// families maps family name to its series table; guarded by mu.
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry. Runtimes that are not handed an
// explicit registry record here, so CLI tools can dump one snapshot covering
// everything the process ran.
func Default() *Registry { return defaultRegistry }

// Counter returns the counter series of the named family with the given
// labels, creating family and series on first use. It panics if the name is
// already registered with a different kind or label schema — that is a
// programming error, not a runtime condition.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.series(name, help, KindCounter, nil, labels)
	return s.(*Counter)
}

// Gauge returns the gauge series of the named family with the given labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.series(name, help, KindGauge, nil, labels)
	return s.(*Gauge)
}

// Histogram returns the histogram series of the named family with the given
// labels. Buckets are cumulative upper bounds; nil means DefBuckets. All
// series of one family share the first registration's bucket layout.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	s := r.series(name, help, KindHistogram, buckets, labels)
	return s.(*Histogram)
}

func (r *Registry) series(name, help string, kind Kind, bounds []float64, labels []Label) any {
	if r == nil {
		// A nil registry hands out detached nil handles; every operation on
		// them is a no-op.
		switch kind {
		case KindCounter:
			return (*Counter)(nil)
		case KindGauge:
			return (*Gauge)(nil)
		default:
			return (*Histogram)(nil)
		}
	}
	labels = normalizeLabels(labels)
	fam := r.family(name, help, kind, bounds, labels)
	return fam.get(labels)
}

func (r *Registry) family(name, help string, kind Kind, bounds []float64, labels []Label) *family {
	keys := labelKeys(labels)
	r.mu.RLock()
	fam, ok := r.families[name]
	r.mu.RUnlock()
	if !ok {
		r.mu.Lock()
		fam, ok = r.families[name]
		if !ok {
			fam = &family{
				name:   name,
				help:   help,
				kind:   kind,
				labels: keys,
				bounds: bounds,
				series: make(map[string]any),
				byKey:  make(map[string][]Label),
			}
			r.families[name] = fam
		}
		r.mu.Unlock()
	}
	if fam.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, fam.kind, kind))
	}
	if !equalStrings(fam.labels, keys) {
		panic(fmt.Sprintf("metrics: %s registered with labels %v, requested with %v", name, fam.labels, keys))
	}
	return fam
}

func (f *family) get(labels []Label) any {
	key := seriesKey(labels)
	f.mu.RLock()
	s, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok = f.series[key]; ok {
		return s
	}
	switch f.kind {
	case KindCounter:
		s = &Counter{}
	case KindGauge:
		s = &Gauge{}
	case KindHistogram:
		s = newHistogram(f.bounds)
	}
	f.series[key] = s
	f.ordered = append(f.ordered, key)
	f.byKey[key] = labels
	return s
}

// normalizeLabels sorts labels by key so {a=1,b=2} and {b=2,a=1} are the
// same series.
func normalizeLabels(labels []Label) []Label {
	if len(labels) < 2 {
		return labels
	}
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func labelKeys(labels []Label) []string {
	keys := make([]string, len(labels))
	for i, l := range labels {
		keys[i] = l.Key
	}
	return keys
}

func seriesKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte(1)
		b.WriteString(l.Value)
		b.WriteByte(2)
	}
	return b.String()
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
