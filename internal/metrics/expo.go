package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// SeriesSnapshot is one labeled series in a registry snapshot. Value holds
// counter/gauge readings; Histogram is set for histogram series.
type SeriesSnapshot struct {
	Labels    []Label       `json:"labels,omitempty"`
	Value     float64       `json:"value,omitempty"`
	Histogram *HistSnapshot `json:"histogram,omitempty"`
}

// FamilySnapshot is one metric family in a registry snapshot.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Help   string           `json:"help,omitempty"`
	Type   Kind             `json:"type"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot is a point-in-time view of an entire registry.
type Snapshot struct {
	Metrics []FamilySnapshot `json:"metrics"`
}

// Snapshot captures every family and series. Families are sorted by name
// and series keep first-registration order, so output is deterministic for
// a deterministic program. Safe concurrently with writers.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	snap := Snapshot{Metrics: make([]FamilySnapshot, 0, len(fams))}
	for _, f := range fams {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Type: f.kind}
		f.mu.RLock()
		for _, key := range f.ordered {
			ss := SeriesSnapshot{Labels: f.byKey[key]}
			switch s := f.series[key].(type) {
			case *Counter:
				ss.Value = float64(s.Value())
			case *Gauge:
				ss.Value = s.Value()
			case *Histogram:
				h := s.Snapshot()
				ss.Histogram = &h
			}
			fs.Series = append(fs.Series, ss)
		}
		f.mu.RUnlock()
		snap.Metrics = append(snap.Metrics, fs)
	}
	return snap
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Snapshot().WritePrometheus(w)
}

// WriteJSON renders the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WritePrometheus renders the snapshot in the Prometheus text format.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, fam := range s.Metrics {
		if fam.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam.Name, escapeHelp(fam.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam.Name, fam.Type); err != nil {
			return err
		}
		for _, series := range fam.Series {
			if err := writeSeries(w, fam, series); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, fam FamilySnapshot, s SeriesSnapshot) error {
	if fam.Type != KindHistogram {
		_, err := fmt.Fprintf(w, "%s%s %s\n", fam.Name, labelBlock(s.Labels, "", ""), formatFloat(s.Value))
		return err
	}
	h := s.Histogram
	if h == nil {
		return nil
	}
	for _, b := range h.Buckets {
		le := "+Inf"
		if !math.IsInf(b.UpperBound, 1) {
			le = formatFloat(b.UpperBound)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", fam.Name, labelBlock(s.Labels, "le", le), b.Count); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", fam.Name, labelBlock(s.Labels, "", ""), formatFloat(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", fam.Name, labelBlock(s.Labels, "", ""), h.Count)
	return err
}

// labelBlock renders {k="v",...}, optionally appending one extra pair (the
// histogram "le"), or "" when there are no labels at all.
func labelBlock(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(v string) string { return helpEscaper.Replace(v) }
