package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// DefBuckets is the default latency layout in milliseconds, spanning the
// sub-millisecond sim events up through multi-second profiling runs.
var DefBuckets = []float64{1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// ExpBuckets returns n exponentially spaced bucket bounds starting at start
// and growing by factor. It panics on a non-positive start, a factor <= 1,
// or n < 1.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("metrics: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// Histogram is a fixed-bucket distribution of float64 observations. Bounds
// are inclusive upper edges; every observation beyond the last bound lands
// in an implicit +Inf bucket, so no value is ever dropped. A nil receiver is
// a no-op.
type Histogram struct {
	bounds []float64 // immutable after construction
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // math.Float64bits accumulator
}

func newHistogram(bounds []float64) *Histogram {
	sorted := make([]float64, len(bounds))
	copy(sorted, bounds)
	sort.Float64s(sorted)
	return &Histogram{
		bounds: sorted,
		counts: make([]atomic.Uint64, len(sorted)+1),
	}
}

// NewHistogram returns a standalone histogram (not attached to a registry)
// with the given bucket upper bounds; nil means DefBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	return newHistogram(bounds)
}

// Observe records one value. NaN observations are dropped — a poisoned
// mean is worse than a lost sample.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	// Buckets first, total count last: a concurrent snapshot that sums the
	// buckets it read can never exceed the writer's published count by more
	// than in-flight observations, and HistSnapshot recomputes Count from
	// the bucket sum so it is always internally consistent.
	h.counts[h.bucketIdx(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
}

// bucketIdx finds the first bound >= v; len(bounds) is the +Inf bucket.
func (h *Histogram) bucketIdx(v float64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	// UpperBound is the inclusive upper edge; +Inf for the overflow bucket.
	UpperBound float64 `json:"le"`
	// Count is the cumulative number of observations <= UpperBound.
	Count uint64 `json:"count"`
}

// MarshalJSON renders the +Inf overflow bound as the string "+Inf", since
// JSON has no infinity literal.
func (b Bucket) MarshalJSON() ([]byte, error) {
	if math.IsInf(b.UpperBound, 1) {
		return json.Marshal(struct {
			UpperBound string `json:"le"`
			Count      uint64 `json:"count"`
		}{"+Inf", b.Count})
	}
	return json.Marshal(struct {
		UpperBound float64 `json:"le"`
		Count      uint64  `json:"count"`
	}{b.UpperBound, b.Count})
}

// UnmarshalJSON accepts both numeric bounds and the "+Inf" string.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var raw struct {
		UpperBound json.RawMessage `json:"le"`
		Count      uint64          `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	b.Count = raw.Count
	var s string
	if err := json.Unmarshal(raw.UpperBound, &s); err == nil {
		if s != "+Inf" {
			return fmt.Errorf("metrics: bad bucket bound %q", s)
		}
		b.UpperBound = math.Inf(1)
		return nil
	}
	return json.Unmarshal(raw.UpperBound, &b.UpperBound)
}

// HistSnapshot is a point-in-time view of a histogram.
type HistSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets"`
}

// Snapshot captures the histogram. It is safe concurrently with Observe;
// Count is recomputed as the sum of the bucket reads, so the snapshot is
// always internally consistent (Count equals the +Inf cumulative bucket)
// even while writers are racing.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	snap := HistSnapshot{Buckets: make([]Bucket, len(h.counts))}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		bound := math.Inf(1)
		if i < len(h.bounds) {
			bound = h.bounds[i]
		}
		snap.Buckets[i] = Bucket{UpperBound: bound, Count: cum}
	}
	snap.Count = cum
	snap.Sum = h.Sum()
	return snap
}

// Mean returns the average observation (0 with no observations).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// within the containing bucket, like Prometheus's histogram_quantile. It
// returns 0 with no observations; estimates falling in the +Inf bucket
// return the last finite bound.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	for i, b := range s.Buckets {
		if float64(b.Count) < rank {
			continue
		}
		if math.IsInf(b.UpperBound, 1) {
			if len(s.Buckets) > 1 {
				return s.Buckets[len(s.Buckets)-2].UpperBound
			}
			return 0
		}
		lower, lowerCount := 0.0, uint64(0)
		if i > 0 {
			lower = s.Buckets[i-1].UpperBound
			lowerCount = s.Buckets[i-1].Count
		}
		inBucket := b.Count - lowerCount
		if inBucket == 0 {
			return b.UpperBound
		}
		return lower + (b.UpperBound-lower)*(rank-float64(lowerCount))/float64(inBucket)
	}
	return s.Buckets[len(s.Buckets)-1].UpperBound
}
