package metrics

// Summary is the standard latency digest derived from one histogram
// snapshot: count, mean, and the p50/p90/p95/p99 estimates every report in
// this repository quotes. It exists so callers (skyload's results table, the
// admission controller's service-time tracker, skyd handlers) share one
// quantile derivation instead of each re-walking buckets.
type Summary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// SummaryQuantiles are the quantiles a Summary carries, in field order.
var SummaryQuantiles = []float64{0.50, 0.90, 0.95, 0.99}

// Summary digests the snapshot into the standard percentile set.
func (s HistSnapshot) Summary() Summary {
	qs := s.Quantiles(SummaryQuantiles...)
	return Summary{
		Count: s.Count,
		Mean:  s.Mean(),
		P50:   qs[0],
		P90:   qs[1],
		P95:   qs[2],
		P99:   qs[3],
	}
}

// Quantiles estimates several quantiles in one pass over the snapshot,
// returning them in argument order. Each estimate follows Quantile's
// interpolation rules.
func (s HistSnapshot) Quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = s.Quantile(q)
	}
	return out
}
