// Package trace records every simulated invocation as a JSON-lines stream —
// the "data sets" counterpart to the figure CSVs. Attach a Recorder to the
// cloud via cloudsim.Options.OnResponse and every response (successes,
// throttles, probe declines) becomes one line suitable for jq/pandas.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"skyfaas/internal/cloudsim"
)

// Record is one invocation's trace line.
type Record struct {
	Time     time.Time `json:"time"` // response delivery (virtual)
	AZ       string    `json:"az"`
	Function string    `json:"function"`
	Account  string    `json:"account"`
	FI       string    `json:"fi,omitempty"`
	Host     string    `json:"host,omitempty"`
	CPU      string    `json:"cpu,omitempty"`
	Cold     bool      `json:"cold,omitempty"`
	Declined bool      `json:"declined,omitempty"`
	BilledMS float64   `json:"billedMS,omitempty"`
	CostUSD  float64   `json:"costUSD,omitempty"`
	Error    string    `json:"error,omitempty"`
}

// Recorder serializes records to a writer. It is safe for concurrent use:
// the simulation delivers responses one at a time, but a paced skyd run can
// drain traces while HTTP handlers read Count/Err from other goroutines, so
// every field is guarded by one mutex.
type Recorder struct {
	mu  sync.Mutex
	enc *json.Encoder // guarded by mu
	n   int           // guarded by mu
	err error         // guarded by mu
}

// NewRecorder writes JSON lines to w.
func NewRecorder(w io.Writer) *Recorder {
	return &Recorder{enc: json.NewEncoder(w)}
}

// Hook returns the cloudsim.Options.OnResponse adapter.
func (r *Recorder) Hook() func(cloudsim.Request, cloudsim.Response) {
	return func(req cloudsim.Request, resp cloudsim.Response) {
		rec := Record{
			Time:     resp.Ended,
			AZ:       req.AZ,
			Function: req.Function,
			Account:  req.Account,
			FI:       resp.FI,
			Host:     resp.Host,
			Cold:     resp.Cold,
			BilledMS: resp.BilledMS,
			CostUSD:  resp.CostUSD,
		}
		if rec.Time.IsZero() {
			rec.Time = resp.Sent
		}
		if resp.CPU.Valid() {
			rec.CPU = resp.CPU.String()
		}
		if out, ok := resp.Value.(cloudsim.ProbeOutcome); ok && !out.Ran {
			rec.Declined = true
		}
		if resp.Err != nil {
			rec.Error = resp.Err.Error()
		}
		r.mu.Lock()
		defer r.mu.Unlock()
		if err := r.enc.Encode(rec); err != nil && r.err == nil {
			r.err = fmt.Errorf("trace: %w", err)
		}
		r.n++
	}
}

// Count returns the number of records written.
func (r *Recorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Err returns the first write error, if any.
func (r *Recorder) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}
