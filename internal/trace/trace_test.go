package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"skyfaas/internal/cloudsim"
	"skyfaas/internal/cpu"
	"skyfaas/internal/geo"
	"skyfaas/internal/sim"
)

func TestRecorderCapturesInvocations(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf)

	env := sim.NewEnv(time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC))
	catalog := []cloudsim.RegionSpec{{
		Provider: cloudsim.AWS, Name: "r", Loc: geo.Coord{},
		AZs: []cloudsim.AZSpec{{
			Name: "r-az", PoolFIs: 256,
			Mix: map[cpu.Kind]float64{cpu.Xeon25: 1},
		}},
	}}
	cloud := cloudsim.New(env, 5, catalog, cloudsim.Options{
		HorizonDays: 1,
		OnResponse:  rec.Hook(),
	})
	if _, err := cloud.Deploy("r-az", "fn", cloudsim.DeployConfig{
		MemoryMB: 1024, Behavior: cloudsim.SleepBehavior{D: 20 * time.Millisecond},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		cloud.StartInvoke(cloudsim.Request{Account: "a", AZ: "r-az", Function: "fn"}, func(cloudsim.Response) {})
	}
	// One failing request too.
	cloud.StartInvoke(cloudsim.Request{Account: "a", AZ: "r-az", Function: "ghost"}, func(cloudsim.Response) {})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}

	if rec.Count() != 6 {
		t.Fatalf("count = %d", rec.Count())
	}
	if rec.Err() != nil {
		t.Fatal(rec.Err())
	}
	sc := bufio.NewScanner(&buf)
	var records []Record
	for sc.Scan() {
		var r Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		records = append(records, r)
	}
	if len(records) != 6 {
		t.Fatalf("parsed %d records", len(records))
	}
	okCount, errCount := 0, 0
	for _, r := range records {
		if r.Error != "" {
			errCount++
			continue
		}
		okCount++
		if r.AZ != "r-az" || r.Function != "fn" || r.CPU != "Xeon 2.50GHz" {
			t.Errorf("record = %+v", r)
		}
		if r.FI == "" || r.BilledMS <= 0 || r.CostUSD <= 0 || r.Time.IsZero() {
			t.Errorf("incomplete record: %+v", r)
		}
	}
	if okCount != 5 || errCount != 1 {
		t.Fatalf("ok/err = %d/%d", okCount, errCount)
	}
}

func TestRecorderMarksDeclines(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	hook := rec.Hook()
	hook(cloudsim.Request{AZ: "z", Function: "f"}, cloudsim.Response{
		Value: cloudsim.ProbeOutcome{Ran: false},
	})
	if !strings.Contains(buf.String(), `"declined":true`) {
		t.Fatalf("decline not marked: %s", buf.String())
	}
}

func TestRecorderSurfacesWriteError(t *testing.T) {
	rec := NewRecorder(errWriter{})
	rec.Hook()(cloudsim.Request{}, cloudsim.Response{})
	if rec.Err() == nil {
		t.Fatal("write error swallowed")
	}
}

type errWriter struct{}

func (errWriter) Write([]byte) (int, error) { return 0, errBoom }

var errBoom = bufio.ErrBufferFull // any sentinel error

// TestRecorderConcurrentUse hammers the hook from several goroutines while
// another reads Count/Err — the pattern a paced skyd run produces. Run under
// -race this proves the Recorder's mutex actually covers every field.
func TestRecorderConcurrentUse(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	hook := rec.Hook()
	const writers, each = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				hook(cloudsim.Request{AZ: "z", Function: "f"}, cloudsim.Response{})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_ = rec.Count()
			_ = rec.Err()
		}
	}()
	wg.Wait()
	<-done
	if got := rec.Count(); got != writers*each {
		t.Fatalf("count = %d, want %d", got, writers*each)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != writers*each {
		t.Fatalf("lines = %d, want %d", lines, writers*each)
	}
}
