package saaf

import (
	"strings"
	"testing"

	"skyfaas/internal/cpu"
)

func TestCollectFromCPUInfo(t *testing.T) {
	dump := cpu.CPUInfo(cpu.Xeon30, 2)
	r, err := Collect(dump, "fi-1", "host-9", true, 123.4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind != cpu.Xeon30 {
		t.Errorf("kind = %v", r.Kind)
	}
	if r.CPUMHz != 3000 {
		t.Errorf("MHz = %v", r.CPUMHz)
	}
	if r.VCPUs != 2 {
		t.Errorf("vcpus = %v", r.VCPUs)
	}
	if !r.Cold() {
		t.Error("cold flag lost")
	}
	if r.UUID != "fi-1" || r.VMID != "host-9" {
		t.Errorf("ids = %q %q", r.UUID, r.VMID)
	}
	if r.RuntimeMS != 123.4 {
		t.Errorf("runtime = %v", r.RuntimeMS)
	}
}

func TestCollectWarm(t *testing.T) {
	r, err := Collect(cpu.CPUInfo(cpu.EPYC, 1), "fi", "h", false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cold() || r.NewContainer != 0 {
		t.Error("warm invocation flagged cold")
	}
	if r.Kind != cpu.EPYC {
		t.Errorf("kind = %v", r.Kind)
	}
}

func TestCollectRejectsGarbage(t *testing.T) {
	if _, err := Collect("not cpuinfo", "fi", "h", false, 1); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Collect("", "fi", "h", false, 1); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestMarshalParseRoundTrip(t *testing.T) {
	for _, k := range cpu.Kinds() {
		orig, err := Collect(cpu.CPUInfo(k, 2), "fi-x", "host-y", true, 55.5)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := Marshal(orig)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Parse(blob)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if back != orig {
			t.Errorf("%v: round trip mismatch:\n  %+v\n  %+v", k, orig, back)
		}
	}
}

func TestMarshalUsesSAAFFieldNames(t *testing.T) {
	r, err := Collect(cpu.CPUInfo(cpu.Xeon25, 1), "fi", "h", false, 1)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"uuid"`, `"vmID"`, `"cpuType"`, `"newcontainer"`, `"runtime"`} {
		if !strings.Contains(string(blob), field) {
			t.Errorf("JSON missing SAAF field %s: %s", field, blob)
		}
	}
}

func TestParseRejectsUnknownModel(t *testing.T) {
	if _, err := Parse([]byte(`{"cpuType":"Mystery CPU"}`)); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := Parse([]byte(`{bad json`)); err == nil {
		t.Fatal("bad json accepted")
	}
}
