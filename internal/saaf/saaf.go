// Package saaf reimplements the observable core of the Serverless
// Application Analytics Framework (SAAF): a profiler that runs *inside* a
// function instance, inspects the environment a guest can see
// (/proc/cpuinfo, instance identifiers), and attaches a report to the
// function's response.
//
// The inference path is kept honest: Collect receives the raw cpuinfo text
// the simulated host exposes and must parse the CPU model out of it, exactly
// as the real SAAF does. Nothing downstream of this package may touch the
// simulator's ground truth.
package saaf

import (
	"encoding/json"
	"fmt"

	"skyfaas/internal/cpu"
)

// Report is the per-invocation profile SAAF returns with a function's
// response. Field names follow SAAF's JSON attribute conventions.
type Report struct {
	// UUID identifies the function instance (stable across warm reuses).
	UUID string `json:"uuid"`
	// VMID identifies the host machine the instance landed on.
	VMID string `json:"vmID"`
	// CPUModel is the raw model string read from /proc/cpuinfo.
	CPUModel string `json:"cpuType"`
	// CPUMHz is the clock reported by /proc/cpuinfo.
	CPUMHz float64 `json:"cpuMHz"`
	// VCPUs is the number of processors visible to the guest.
	VCPUs int `json:"vcpus"`
	// NewContainer is 1 when this invocation cold-started the instance.
	NewContainer int `json:"newcontainer"`
	// RuntimeMS is the billed handler runtime in milliseconds.
	RuntimeMS float64 `json:"runtime"`
	// Kind is the catalogued processor kind inferred from CPUModel. It is
	// derived locally from the model string (not serialized) so consumers
	// re-derive it after parsing.
	Kind cpu.Kind `json:"-"`
}

// Collect builds a report from what a guest observes. cpuinfo is the raw
// /proc/cpuinfo content; fi and host are the platform-assigned identifiers
// the guest reads from its environment.
func Collect(cpuinfo, fi, host string, cold bool, runtimeMS float64) (Report, error) {
	kind, procs, err := cpu.ParseCPUInfo(cpuinfo)
	if err != nil {
		return Report{}, fmt.Errorf("saaf: %w", err)
	}
	info := cpu.MustLookup(kind)
	r := Report{
		UUID:      fi,
		VMID:      host,
		CPUModel:  info.Model,
		CPUMHz:    info.ClockGHz * 1000,
		VCPUs:     procs,
		RuntimeMS: runtimeMS,
		Kind:      kind,
	}
	if cold {
		r.NewContainer = 1
	}
	return r, nil
}

// Marshal renders the report as SAAF-style JSON, the wire format a real
// function response would embed.
func Marshal(r Report) ([]byte, error) {
	b, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("saaf: marshal: %w", err)
	}
	return b, nil
}

// Parse decodes SAAF-style JSON and re-derives the processor kind from the
// model string.
func Parse(data []byte) (Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("saaf: parse: %w", err)
	}
	kind, err := cpu.FromModel(r.CPUModel)
	if err != nil {
		return Report{}, fmt.Errorf("saaf: parse: %w", err)
	}
	r.Kind = kind
	return r, nil
}

// Cold reports whether the invocation cold-started its instance.
func (r Report) Cold() bool { return r.NewContainer == 1 }
