package workload

import "testing"

// Golden digests pin each workload's semantic output for a fixed seed, so
// refactors of the implementations cannot silently change behaviour.
// To regenerate after an intentional change, blank the digest, run
// `go test ./internal/workload -run TestGoldenDigests -v`, and paste the
// logged value back here.
var goldenDigests = map[ID]string{
	GraphMST:           "349117f3d1763adf04db3da10d8f3fb3d50c99b9",
	GraphBFS:           "3c6e61cad8556754396373a75666d6a4968007e6",
	PageRank:           "4425ac1e7d66b879f6c30ecd6a38275d956aa835",
	Zipper:             "fde34016b2524eecb553fdf335d981e9b2ad9e9d",
	Thumbnailer:        "0bc6ba4c5a3d8277019664f02621b1585c321421",
	Sha1Hash:           "c59a474dd3fafa6542f3e52be121e04e6a3dac68",
	JSONFlattener:      "6c259307e5bd11e1dcf07d813055a127fad6c9e5",
	MathService:        "c662fd4bce999e5916a8ba42b0069d24a813183d",
	MatrixMultiply:     "ed1940b591a292058801e7a4d670025c3128ca53",
	LogisticRegression: "678817b5f3bbb8d7b288ac380960419c612bcbff",
}

func TestGoldenDigests(t *testing.T) {
	const seed = 2026
	for id, want := range goldenDigests {
		id, want := id, want
		t.Run(id.String(), func(t *testing.T) {
			out, err := Run(id, Input{Seed: seed, TempDir: t.TempDir()})
			if err != nil {
				t.Fatal(err)
			}
			if want == "" {
				t.Logf("golden %v: %q", id, out.Digest)
				return
			}
			if out.Digest != want {
				t.Errorf("digest = %s, want %s (semantic output changed)", out.Digest, want)
			}
		})
	}
}
