package workload

import (
	"archive/zip"
	"bytes"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"skyfaas/internal/rng"
)

// Input parameterizes a real workload execution.
type Input struct {
	// Scale multiplies the problem size; 1 is the (test-friendly) reference.
	Scale int
	// Seed drives deterministic input generation.
	Seed uint64
	// Payload is optional caller data (hashed by sha1_hash, for example).
	Payload []byte
	// TempDir is where disk-bound workloads write; empty means os.TempDir().
	TempDir string
}

func (in Input) scale() int {
	if in.Scale < 1 {
		return 1
	}
	return in.Scale
}

func (in Input) tempDir() string {
	if in.TempDir == "" {
		return os.TempDir()
	}
	return in.TempDir
}

// Output is the result of a real workload execution.
type Output struct {
	// Digest is a hex SHA-1 over the semantically meaningful result, so
	// tests can assert determinism and cross-implementation agreement.
	Digest string
	// Bytes counts the payload bytes the workload produced or processed.
	Bytes int
	// Detail is a short human-readable result description.
	Detail string
}

// Run executes the real implementation of workload id.
func Run(id ID, in Input) (Output, error) {
	switch id {
	case GraphMST:
		return runGraphMST(in)
	case GraphBFS:
		return runGraphBFS(in)
	case PageRank:
		return runPageRank(in)
	case DiskWriter:
		return runDiskWriter(in)
	case DiskWriteProcess:
		return runDiskWriteProcess(in)
	case Zipper:
		return runZipper(in)
	case Thumbnailer:
		return runThumbnailer(in)
	case Sha1Hash:
		return runSha1Hash(in)
	case JSONFlattener:
		return runJSONFlattener(in)
	case MathService:
		return runMathService(in)
	case MatrixMultiply:
		return runMatrixMultiply(in)
	case LogisticRegression:
		return runLogisticRegression(in)
	default:
		return Output{}, fmt.Errorf("workload: unknown id %d", int(id))
	}
}

func digestOf(parts ...[]byte) string {
	h := sha1.New()
	for _, p := range parts {
		_, _ = h.Write(p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func u64bytes(v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return b[:]
}

// ---------------------------------------------------------------------------
// Graph workloads

type edge struct {
	u, v int
	w    float64
}

func genGraph(seed uint64, nodes, degree int) []edge {
	s := rng.New(seed)
	edges := make([]edge, 0, nodes*degree)
	for u := 0; u < nodes; u++ {
		for d := 0; d < degree; d++ {
			v := s.Intn(nodes)
			if v == u {
				v = (v + 1) % nodes
			}
			edges = append(edges, edge{u: u, v: v, w: s.Float64()})
		}
	}
	// Ring edges guarantee connectivity so MST/BFS cover every node.
	for u := 0; u < nodes; u++ {
		edges = append(edges, edge{u: u, v: (u + 1) % nodes, w: 1 + s.Float64()})
	}
	return edges
}

type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) bool {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return false
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
	return true
}

func runGraphMST(in Input) (Output, error) {
	nodes := 800 * in.scale()
	edges := genGraph(in.Seed, nodes, 6)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].w != edges[j].w {
			return edges[i].w < edges[j].w
		}
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		return edges[i].v < edges[j].v
	})
	uf := newUnionFind(nodes)
	var total float64
	picked := 0
	for _, e := range edges {
		if uf.union(e.u, e.v) {
			total += e.w
			picked++
			if picked == nodes-1 {
				break
			}
		}
	}
	if picked != nodes-1 {
		return Output{}, fmt.Errorf("graph_mst: graph not connected (%d/%d edges)", picked, nodes-1)
	}
	return Output{
		Digest: digestOf(u64bytes(math.Float64bits(total)), u64bytes(uint64(picked))),
		Bytes:  len(edges) * 24,
		Detail: fmt.Sprintf("mst weight %.4f over %d nodes", total, nodes),
	}, nil
}

func runGraphBFS(in Input) (Output, error) {
	nodes := 1200 * in.scale()
	edges := genGraph(in.Seed, nodes, 5)
	adj := make([][]int, nodes)
	for _, e := range edges {
		adj[e.u] = append(adj[e.u], e.v)
		adj[e.v] = append(adj[e.v], e.u)
	}
	depth := make([]int, nodes)
	for i := range depth {
		depth[i] = -1
	}
	queue := make([]int, 0, nodes)
	queue = append(queue, 0)
	depth[0] = 0
	visited := 0
	maxDepth := 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		visited++
		if depth[u] > maxDepth {
			maxDepth = depth[u]
		}
		for _, v := range adj[u] {
			if depth[v] < 0 {
				depth[v] = depth[u] + 1
				queue = append(queue, v)
			}
		}
	}
	if visited != nodes {
		return Output{}, fmt.Errorf("graph_bfs: visited %d of %d nodes", visited, nodes)
	}
	var sum uint64
	for _, d := range depth {
		sum = sum*31 + uint64(d)
	}
	return Output{
		Digest: digestOf(u64bytes(sum), u64bytes(uint64(maxDepth))),
		Bytes:  nodes * 8,
		Detail: fmt.Sprintf("bfs visited %d nodes, max depth %d", visited, maxDepth),
	}, nil
}

func runPageRank(in Input) (Output, error) {
	nodes := 600 * in.scale()
	edges := genGraph(in.Seed, nodes, 5)
	out := make([][]int, nodes)
	outDeg := make([]int, nodes)
	for _, e := range edges {
		out[e.u] = append(out[e.u], e.v)
		outDeg[e.u]++
	}
	const damping = 0.85
	const iters = 25
	rank := make([]float64, nodes)
	next := make([]float64, nodes)
	for i := range rank {
		rank[i] = 1 / float64(nodes)
	}
	for it := 0; it < iters; it++ {
		base := (1 - damping) / float64(nodes)
		for i := range next {
			next[i] = base
		}
		for u := 0; u < nodes; u++ {
			if outDeg[u] == 0 {
				continue
			}
			share := damping * rank[u] / float64(outDeg[u])
			for _, v := range out[u] {
				next[v] += share
			}
		}
		rank, next = next, rank
	}
	var sum float64
	best, bestRank := 0, rank[0]
	for i, r := range rank {
		sum += r
		if r > bestRank {
			best, bestRank = i, r
		}
	}
	if math.Abs(sum-1) > 0.05 {
		return Output{}, fmt.Errorf("page_rank: ranks sum to %v, want ~1", sum)
	}
	return Output{
		Digest: digestOf(u64bytes(math.Float64bits(bestRank)), u64bytes(uint64(best))),
		Bytes:  nodes * 8,
		Detail: fmt.Sprintf("top node %d rank %.6f", best, bestRank),
	}, nil
}

// ---------------------------------------------------------------------------
// Disk workloads

func genText(seed uint64, n int) []byte {
	s := rng.New(seed)
	words := []string{"sky", "cloud", "function", "instance", "poll", "zone", "region", "retry", "route", "cpu"}
	var b bytes.Buffer
	b.Grow(n)
	for b.Len() < n {
		b.WriteString(words[s.Intn(len(words))])
		if s.Bool(0.15) {
			b.WriteByte('\n')
		} else {
			b.WriteByte(' ')
		}
	}
	return b.Bytes()
}

func runDiskWriter(in Input) (Output, error) {
	dir, err := os.MkdirTemp(in.tempDir(), "disk_writer")
	if err != nil {
		return Output{}, fmt.Errorf("disk_writer: %w", err)
	}
	defer os.RemoveAll(dir)
	text := genText(in.Seed, 64<<10)
	rounds := 10 * in.scale()
	written := 0
	h := sha1.New()
	for i := 0; i < rounds; i++ {
		path := filepath.Join(dir, "chunk_"+strconv.Itoa(i)+".txt")
		if err := os.WriteFile(path, text, 0o600); err != nil {
			return Output{}, fmt.Errorf("disk_writer: %w", err)
		}
		back, err := os.ReadFile(path)
		if err != nil {
			return Output{}, fmt.Errorf("disk_writer: %w", err)
		}
		_, _ = h.Write(back[:64])
		written += len(back)
		if err := os.Remove(path); err != nil {
			return Output{}, fmt.Errorf("disk_writer: %w", err)
		}
	}
	return Output{
		Digest: hex.EncodeToString(h.Sum(nil)),
		Bytes:  written,
		Detail: fmt.Sprintf("wrote and deleted %d files (%d bytes)", rounds, written),
	}, nil
}

// runDiskWriteProcess reproduces the Table-1 function that shells out to
// wc, base64, sha1sum and cat. The shell tools are substituted with exact
// in-process equivalents so the workload has no external dependencies; the
// I/O + byte-crunching profile is the same.
func runDiskWriteProcess(in Input) (Output, error) {
	dir, err := os.MkdirTemp(in.tempDir(), "disk_write_process")
	if err != nil {
		return Output{}, fmt.Errorf("disk_write_and_process: %w", err)
	}
	defer os.RemoveAll(dir)
	text := genText(in.Seed, 256<<10)
	path := filepath.Join(dir, "large.txt")
	if err := os.WriteFile(path, text, 0o600); err != nil {
		return Output{}, fmt.Errorf("disk_write_and_process: %w", err)
	}
	loops := 4 * in.scale()
	var lines, wordCount, chars int
	h := sha1.New()
	processed := 0
	for i := 0; i < loops; i++ {
		data, err := os.ReadFile(path) // cat
		if err != nil {
			return Output{}, fmt.Errorf("disk_write_and_process: %w", err)
		}
		lines, wordCount, chars = wc(data)                 // wc
		encoded := base64.StdEncoding.EncodeToString(data) // base64
		sum := sha1.Sum(data)                              // sha1sum
		_, _ = h.Write(sum[:])                             //
		processed += len(data) + len(encoded)              //
		_ = encoded                                        //
	}
	return Output{
		Digest: hex.EncodeToString(h.Sum(nil)),
		Bytes:  processed,
		Detail: fmt.Sprintf("%d loops: %d lines, %d words, %d chars", loops, lines, wordCount, chars),
	}, nil
}

func wc(data []byte) (lines, words, chars int) {
	chars = len(data)
	inWord := false
	for _, c := range data {
		switch c {
		case '\n':
			lines++
			inWord = false
		case ' ', '\t', '\r':
			inWord = false
		default:
			if !inWord {
				words++
				inWord = true
			}
		}
	}
	return lines, words, chars
}

// ---------------------------------------------------------------------------
// Zipper

func runZipper(in Input) (Output, error) {
	s := rng.New(in.Seed)
	files := 8 * in.scale()
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	raw := 0
	for i := 0; i < files; i++ {
		w, err := zw.Create(fmt.Sprintf("file_%03d.txt", i))
		if err != nil {
			return Output{}, fmt.Errorf("zipper: %w", err)
		}
		content := genText(s.Uint64(), 48<<10)
		if _, err := w.Write(content); err != nil {
			return Output{}, fmt.Errorf("zipper: %w", err)
		}
		raw += len(content)
	}
	if err := zw.Close(); err != nil {
		return Output{}, fmt.Errorf("zipper: %w", err)
	}
	// Verify the archive round-trips.
	zr, err := zip.NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		return Output{}, fmt.Errorf("zipper: reopen: %w", err)
	}
	if len(zr.File) != files {
		return Output{}, fmt.Errorf("zipper: archive holds %d files, want %d", len(zr.File), files)
	}
	return Output{
		Digest: digestOf(u64bytes(uint64(buf.Len())), u64bytes(uint64(raw))),
		Bytes:  buf.Len(),
		Detail: fmt.Sprintf("zipped %d files: %d -> %d bytes", files, raw, buf.Len()),
	}, nil
}

// ---------------------------------------------------------------------------
// Thumbnailer

func runThumbnailer(in Input) (Output, error) {
	s := rng.New(in.Seed)
	side := 256 * in.scale()
	src := make([]byte, side*side*4)
	for i := range src {
		src[i] = byte(s.Uint64())
	}
	sizes := []int{128, 64, 32}
	h := sha1.New()
	outBytes := 0
	for _, target := range sizes {
		thumb := scaleNearest(src, side, target)
		_, _ = h.Write(thumb)
		outBytes += len(thumb)
	}
	return Output{
		Digest: hex.EncodeToString(h.Sum(nil)),
		Bytes:  outBytes,
		Detail: fmt.Sprintf("scaled %dx%d bitmap to %v", side, side, sizes),
	}, nil
}

// scaleNearest downscales a square RGBA bitmap with nearest-neighbour
// sampling.
func scaleNearest(src []byte, srcSide, dstSide int) []byte {
	dst := make([]byte, dstSide*dstSide*4)
	for y := 0; y < dstSide; y++ {
		sy := y * srcSide / dstSide
		for x := 0; x < dstSide; x++ {
			sx := x * srcSide / dstSide
			si := (sy*srcSide + sx) * 4
			di := (y*dstSide + x) * 4
			copy(dst[di:di+4], src[si:si+4])
		}
	}
	return dst
}

// ---------------------------------------------------------------------------
// Sha1 hash

func runSha1Hash(in Input) (Output, error) {
	payload := in.Payload
	if len(payload) == 0 {
		payload = genText(in.Seed, 32<<10)
	}
	rounds := 200 * in.scale()
	sum := sha1.Sum(payload)
	for i := 1; i < rounds; i++ {
		h := sha1.New()
		_, _ = h.Write(sum[:])
		_, _ = h.Write(payload)
		copy(sum[:], h.Sum(nil))
	}
	return Output{
		Digest: hex.EncodeToString(sum[:]),
		Bytes:  len(payload) * rounds,
		Detail: fmt.Sprintf("%d chained sha1 rounds over %d bytes", rounds, len(payload)),
	}, nil
}

// ---------------------------------------------------------------------------
// JSON flattener

func genNested(s *rng.Stream, depth, fanout int) map[string]any {
	m := make(map[string]any, fanout)
	for i := 0; i < fanout; i++ {
		key := "k" + strconv.Itoa(i)
		if depth > 0 && s.Bool(0.6) {
			m[key] = genNested(s, depth-1, fanout)
		} else if s.Bool(0.5) {
			m[key] = s.Float64()
		} else {
			m[key] = "v" + strconv.Itoa(s.Intn(1000))
		}
	}
	return m
}

func flatten(prefix string, v any, out map[string]string) {
	switch val := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(val))
		for k := range val {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flatten(p, val[k], out)
		}
	case float64:
		out[prefix] = strconv.FormatFloat(val, 'g', -1, 64)
	case string:
		out[prefix] = val
	default:
		out[prefix] = fmt.Sprint(val)
	}
}

func runJSONFlattener(in Input) (Output, error) {
	s := rng.New(in.Seed)
	depth := 5
	fanout := 6 + in.scale()
	nested := genNested(s, depth, fanout)
	// Round-trip through encoding/json so the workload exercises real
	// serialization, as the Python original does.
	blob, err := json.Marshal(nested)
	if err != nil {
		return Output{}, fmt.Errorf("json_flattener: marshal: %w", err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(blob, &decoded); err != nil {
		return Output{}, fmt.Errorf("json_flattener: unmarshal: %w", err)
	}
	flat := make(map[string]string)
	flatten("", decoded, flat)
	if len(flat) == 0 {
		return Output{}, fmt.Errorf("json_flattener: empty flatten result")
	}
	keys := make([]string, 0, len(flat))
	for k := range flat {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha1.New()
	for _, k := range keys {
		_, _ = h.Write([]byte(k))
		_, _ = h.Write([]byte{'='})
		_, _ = h.Write([]byte(flat[k]))
		_, _ = h.Write([]byte{'\n'})
	}
	return Output{
		Digest: hex.EncodeToString(h.Sum(nil)),
		Bytes:  len(blob),
		Detail: fmt.Sprintf("flattened %d byte JSON into %d pairs", len(blob), len(flat)),
	}, nil
}

// ---------------------------------------------------------------------------
// Math service

func runMathService(in Input) (Output, error) {
	s := rng.New(in.Seed)
	n := 50000 * in.scale()
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = s.Float64()
		b[i] = s.Float64()
	}
	var acc float64
	for round := 0; round < 12; round++ {
		for i := 0; i < n; i++ {
			a[i] = a[i]*1.000001 + b[i]*0.5
			acc += math.Sqrt(math.Abs(a[i] - b[i]))
		}
	}
	return Output{
		Digest: digestOf(u64bytes(math.Float64bits(acc))),
		Bytes:  n * 16,
		Detail: fmt.Sprintf("12 rounds over %d-element arrays, acc %.4f", n, acc),
	}, nil
}

// ---------------------------------------------------------------------------
// Matrix multiply

func runMatrixMultiply(in Input) (Output, error) {
	s := rng.New(in.Seed)
	n := 64 * in.scale()
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	for i := range a {
		a[i] = s.Float64()
		b[i] = s.Float64()
	}
	c := make([]float64, n*n)
	for loop := 0; loop < 3; loop++ {
		for i := 0; i < n; i++ {
			for k := 0; k < n; k++ {
				aik := a[i*n+k]
				row := b[k*n : k*n+n]
				out := c[i*n : i*n+n]
				for j := 0; j < n; j++ {
					out[j] += aik * row[j]
				}
			}
		}
		// Dot products between consecutive rows.
		for i := 0; i+1 < n; i++ {
			var dot float64
			for j := 0; j < n; j++ {
				dot += c[i*n+j] * c[(i+1)*n+j]
			}
			a[i*n] = dot * 1e-6
		}
	}
	var trace float64
	for i := 0; i < n; i++ {
		trace += c[i*n+i]
	}
	return Output{
		Digest: digestOf(u64bytes(math.Float64bits(trace))),
		Bytes:  n * n * 8 * 3,
		Detail: fmt.Sprintf("3 multiplies of %dx%d matrices, trace %.4f", n, n, trace),
	}, nil
}

// ---------------------------------------------------------------------------
// Logistic regression

func runLogisticRegression(in Input) (Output, error) {
	s := rng.New(in.Seed)
	const features = 16
	samples := 4000 * in.scale()
	xs := make([][features]float64, samples)
	ys := make([]float64, samples)
	var trueW [features]float64
	for i := range trueW {
		trueW[i] = s.Norm(0, 1)
	}
	for i := 0; i < samples; i++ {
		var dot float64
		for j := 0; j < features; j++ {
			xs[i][j] = s.Norm(0, 1)
			dot += xs[i][j] * trueW[j]
		}
		if sigmoid(dot) > s.Float64() {
			ys[i] = 1
		}
	}

	// SGD across two threads, as Table 1 specifies: each worker trains on
	// half the data; weights are averaged after every epoch.
	const epochs = 6
	const lr = 0.05
	var w [features]float64
	half := samples / 2
	for epoch := 0; epoch < epochs; epoch++ {
		var wg sync.WaitGroup
		partials := make([][features]float64, 2)
		for t := 0; t < 2; t++ {
			t := t
			local := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				lo, hi := t*half, (t+1)*half
				for i := lo; i < hi; i++ {
					var dot float64
					for j := 0; j < features; j++ {
						dot += xs[i][j] * local[j]
					}
					grad := sigmoid(dot) - ys[i]
					for j := 0; j < features; j++ {
						local[j] -= lr * grad * xs[i][j]
					}
				}
				partials[t] = local
			}()
		}
		wg.Wait()
		for j := 0; j < features; j++ {
			w[j] = (partials[0][j] + partials[1][j]) / 2
		}
	}

	// Training accuracy must beat chance decisively on separable-ish data.
	correct := 0
	for i := 0; i < samples; i++ {
		var dot float64
		for j := 0; j < features; j++ {
			dot += xs[i][j] * w[j]
		}
		pred := 0.0
		if sigmoid(dot) >= 0.5 {
			pred = 1
		}
		if pred == ys[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(samples)
	if acc < 0.7 {
		return Output{}, fmt.Errorf("logistic_regression: accuracy %.3f below sanity floor", acc)
	}
	var wsum float64
	for _, v := range w {
		wsum += v
	}
	return Output{
		Digest: digestOf(u64bytes(math.Float64bits(wsum)), u64bytes(uint64(correct))),
		Bytes:  samples * features * 8,
		Detail: fmt.Sprintf("%d epochs x %d samples, accuracy %.3f", epochs, samples, acc),
	}, nil
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
