package workload

import (
	"math"
	"strings"
	"testing"

	"skyfaas/internal/cpu"
)

func TestCatalogCompleteness(t *testing.T) {
	all := All()
	if len(all) != 12 {
		t.Fatalf("catalog has %d workloads, Table 1 lists 12", len(all))
	}
	seen := make(map[string]bool)
	for _, s := range all {
		if s.Name == "" || s.Description == "" {
			t.Errorf("%v: empty name/description", s.ID)
		}
		if seen[s.Name] {
			t.Errorf("duplicate name %q", s.Name)
		}
		seen[s.Name] = true
		if s.VCPUs < 1 || s.VCPUs > 2 {
			t.Errorf("%s: vCPUs %v outside Table-1 range", s.Name, s.VCPUs)
		}
		if s.BaseMS <= 0 {
			t.Errorf("%s: non-positive BaseMS", s.Name)
		}
		if s.NoiseFrac <= 0 || s.NoiseFrac > 0.2 {
			t.Errorf("%s: NoiseFrac %v implausible", s.Name, s.NoiseFrac)
		}
	}
}

func TestTable1VCPUs(t *testing.T) {
	// Table 1 pins specific vCPU demands.
	want := map[ID]float64{
		GraphMST: 1, GraphBFS: 1, PageRank: 1.2, DiskWriter: 1,
		DiskWriteProcess: 1, Zipper: 2, Thumbnailer: 1, Sha1Hash: 1,
		JSONFlattener: 1, MathService: 2, MatrixMultiply: 2, LogisticRegression: 2,
	}
	for id, v := range want {
		if got := MustGet(id).VCPUs; got != v {
			t.Errorf("%v vCPUs = %v, want %v", id, got, v)
		}
	}
}

func TestGetAndByName(t *testing.T) {
	if _, ok := Get(ID(0)); ok {
		t.Error("Get(0) succeeded")
	}
	if _, ok := Get(ID(99)); ok {
		t.Error("Get(99) succeeded")
	}
	for _, id := range IDs() {
		spec := MustGet(id)
		byName, ok := ByName(spec.Name)
		if !ok || byName.ID != id {
			t.Errorf("ByName(%q) mismatch", spec.Name)
		}
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Error("ByName(nonexistent) succeeded")
	}
	if !strings.Contains(ID(99).String(), "workload(") {
		t.Error("unknown ID String not flagged")
	}
}

// TestFig9FactorShape verifies the encoded ground truth matches the paper's
// observed performance hierarchy (§4.5 / Fig. 9).
func TestFig9FactorShape(t *testing.T) {
	deviants := map[ID]bool{DiskWriter: true, DiskWriteProcess: true, Sha1Hash: true}
	for _, s := range All() {
		x25 := s.CPUFactor(cpu.Xeon25)
		x29 := s.CPUFactor(cpu.Xeon29)
		x30 := s.CPUFactor(cpu.Xeon30)
		epyc := s.CPUFactor(cpu.EPYC)
		if x25 != 1 {
			t.Errorf("%s: baseline factor %v != 1", s.Name, x25)
		}
		if x30 >= 1 {
			t.Errorf("%s: 3.0GHz factor %v not faster than baseline", s.Name, x30)
		}
		if !deviants[s.ID] {
			if x30 < 0.85 || x30 > 0.95 {
				t.Errorf("%s: 3.0GHz factor %v outside 5-15%% faster band", s.Name, x30)
			}
			if x29 < 1.08 || x29 > 1.30 {
				t.Errorf("%s: 2.9GHz factor %v outside slower band", s.Name, x29)
			}
			if epyc <= x29 || epyc > 1.50 {
				t.Errorf("%s: EPYC factor %v should be slowest (<=1.5)", s.Name, epyc)
			}
		}
	}
	// The named exceptions.
	if f := MustGet(DiskWriter).CPUFactor(cpu.EPYC); f >= 1 {
		t.Errorf("disk_writer EPYC factor %v: paper observed EPYC slightly beating baseline", f)
	}
	if f := MustGet(LogisticRegression).CPUFactor(cpu.EPYC); f < 1.45 {
		t.Errorf("logistic_regression EPYC factor %v: should be among the worst (~1.5)", f)
	}
	if f := MustGet(MathService).CPUFactor(cpu.EPYC); f < 1.4 {
		t.Errorf("math_service EPYC factor %v: should be near-worst", f)
	}
}

func TestCPUFactorFallback(t *testing.T) {
	s := MustGet(GraphMST)
	// Unknown kind: neutral.
	if got := s.CPUFactor(cpu.Kind(99)); got != 1 {
		t.Fatalf("unknown kind factor = %v", got)
	}
	// Spec with no table: clock-ratio fallback.
	bare := Spec{Name: "bare"}
	got := bare.CPUFactor(cpu.Xeon30)
	if math.Abs(got-2.5/3.0) > 1e-9 {
		t.Fatalf("clock fallback = %v, want %v", got, 2.5/3.0)
	}
}

func TestMemoryFactor(t *testing.T) {
	s := MustGet(MatrixMultiply) // 2 vCPUs -> needs ~3538 MB for full speed
	if got := s.MemoryFactor(10240); got != 1 {
		t.Errorf("10GB factor = %v, want 1", got)
	}
	if got := s.MemoryFactor(0); got != 1 {
		t.Errorf("zero-memory factor = %v, want neutral", got)
	}
	half := s.MemoryFactor(1769)
	if math.Abs(half-2) > 1e-9 {
		t.Errorf("1769MB factor = %v, want 2 (half the demanded CPU)", half)
	}
	if lo, hi := s.MemoryFactor(512), s.MemoryFactor(256); hi <= lo {
		t.Errorf("memory factor not monotone: %v vs %v", lo, hi)
	}
	one := MustGet(GraphMST)
	if got := one.MemoryFactor(1769); got != 1 {
		t.Errorf("1-vCPU workload at 1769MB = %v, want 1", got)
	}
}

func TestRunAllWorkloadsSucceed(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id.String(), func(t *testing.T) {
			out, err := Run(id, Input{Seed: 42, TempDir: t.TempDir()})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if out.Digest == "" || len(out.Digest) != 40 {
				t.Errorf("digest %q not a sha1 hex", out.Digest)
			}
			if out.Bytes <= 0 {
				t.Errorf("bytes = %d", out.Bytes)
			}
			if out.Detail == "" {
				t.Error("empty detail")
			}
		})
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	// Digests must be stable for a fixed seed and differ across seeds.
	// logistic_regression runs two goroutines but averages per-epoch, so it
	// is deterministic too.
	for _, id := range IDs() {
		id := id
		t.Run(id.String(), func(t *testing.T) {
			dir := t.TempDir()
			a, err := Run(id, Input{Seed: 7, TempDir: dir})
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(id, Input{Seed: 7, TempDir: dir})
			if err != nil {
				t.Fatal(err)
			}
			if a.Digest != b.Digest {
				t.Errorf("same seed, different digests: %s vs %s", a.Digest, b.Digest)
			}
			c, err := Run(id, Input{Seed: 8, TempDir: dir})
			if err != nil {
				t.Fatal(err)
			}
			if a.Digest == c.Digest {
				t.Errorf("different seeds produced identical digest %s", a.Digest)
			}
		})
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	if _, err := Run(ID(0), Input{}); err == nil {
		t.Fatal("Run(0) succeeded")
	}
}

func TestSha1HashUsesPayload(t *testing.T) {
	a, err := Run(Sha1Hash, Input{Seed: 1, Payload: []byte("alpha")})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Sha1Hash, Input{Seed: 1, Payload: []byte("beta")})
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest == b.Digest {
		t.Fatal("payload ignored")
	}
}

func TestScaleGrowsWork(t *testing.T) {
	small, err := Run(MathService, Input{Seed: 3, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(MathService, Input{Seed: 3, Scale: 2})
	if err != nil {
		t.Fatal(err)
	}
	if big.Bytes <= small.Bytes {
		t.Fatalf("scale 2 bytes %d <= scale 1 bytes %d", big.Bytes, small.Bytes)
	}
}

func TestWCCounts(t *testing.T) {
	lines, words, chars := wc([]byte("one two\nthree\tfour five\n"))
	if lines != 2 || words != 5 || chars != 24 {
		t.Fatalf("wc = %d/%d/%d", lines, words, chars)
	}
}

func TestScaleNearestDimensions(t *testing.T) {
	src := make([]byte, 16*16*4)
	for i := range src {
		src[i] = byte(i)
	}
	dst := scaleNearest(src, 16, 4)
	if len(dst) != 4*4*4 {
		t.Fatalf("len(dst) = %d", len(dst))
	}
	// Top-left pixel preserved.
	for i := 0; i < 4; i++ {
		if dst[i] != src[i] {
			t.Fatalf("pixel 0 mismatch at byte %d", i)
		}
	}
}

func TestUnionFind(t *testing.T) {
	uf := newUnionFind(4)
	if !uf.union(0, 1) {
		t.Fatal("first union failed")
	}
	if uf.union(1, 0) {
		t.Fatal("re-union succeeded")
	}
	uf.union(2, 3)
	if uf.find(0) == uf.find(2) {
		t.Fatal("separate components merged")
	}
	uf.union(1, 3)
	if uf.find(0) != uf.find(2) {
		t.Fatal("components not merged")
	}
}

func BenchmarkWorkloads(b *testing.B) {
	for _, id := range IDs() {
		id := id
		b.Run(id.String(), func(b *testing.B) {
			dir := b.TempDir()
			for i := 0; i < b.N; i++ {
				if _, err := Run(id, Input{Seed: uint64(i), TempDir: dir}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
