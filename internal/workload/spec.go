// Package workload implements the twelve serverless functions of Table 1.
//
// Each workload exists in two forms:
//
//   - A real, runnable Go implementation (Run) used by the examples and by
//     tests to validate functional behaviour.
//   - A cost model (Spec) used by the cloud simulator: the mean billed
//     runtime on the reference CPU (Intel Xeon 2.50 GHz, the most prevalent
//     Lambda processor) plus a per-CPU runtime multiplier table. The
//     multiplier table is the *ground truth* behind Fig. 9 — the hidden
//     hardware performance the smart routing system must discover by
//     profiling, because the simulation, like the real cloud, never exposes
//     it directly.
//
// Multipliers encode the paper's observed hierarchy: the 3.0 GHz Xeon is
// 5–15% faster than baseline, the 2.9 GHz Xeon is 15–30% slower, and the
// AMD EPYC is up to 50% slower — except for disk_writer,
// disk_write_and_process and sha1_hash, which are less CPU-speed sensitive
// (EPYC slightly beats baseline on disk_writer).
package workload

import (
	"fmt"

	"skyfaas/internal/cpu"
)

// ID identifies one of the twelve Table-1 workloads.
type ID int

// The Table-1 workload catalog.
const (
	GraphMST ID = iota + 1
	GraphBFS
	PageRank
	DiskWriter
	DiskWriteProcess
	Zipper
	Thumbnailer
	Sha1Hash
	JSONFlattener
	MathService
	MatrixMultiply
	LogisticRegression

	numWorkloads = int(LogisticRegression)
)

// Spec is the static description and cost model of a workload.
type Spec struct {
	ID          ID
	Name        string  // snake_case name used in figures and payloads
	VCPUs       float64 // Table-1 vCPU demand
	Description string  // Table-1 description
	// BaseMS is the mean billed runtime (milliseconds) on the reference
	// Xeon 2.50 GHz with enough memory to satisfy VCPUs.
	BaseMS float64
	// NoiseFrac is the run-to-run lognormal-ish runtime noise fraction
	// (resource contention aside).
	NoiseFrac float64
	// factors maps CPU kind -> runtime multiplier relative to Xeon25.
	factors map[cpu.Kind]float64
}

// CPUFactor returns the ground-truth runtime multiplier of k relative to
// the reference Xeon 2.50 GHz for this workload. Unknown kinds fall back to
// a clock-ratio estimate.
func (s Spec) CPUFactor(k cpu.Kind) float64 {
	if f, ok := s.factors[k]; ok {
		return f
	}
	info, ok := cpu.Lookup(k)
	if !ok {
		return 1
	}
	ref := cpu.MustLookup(cpu.Xeon25)
	return ref.ClockGHz / info.ClockGHz
}

// mkFactors builds a multiplier table. x30, x29, epyc are the AWS-specific
// Fig.-9 multipliers; the remaining catalogued kinds get clock-scaled
// defaults tempered toward 1 (cross-provider CPUs showed little spread).
func mkFactors(x30, x29, epyc float64) map[cpu.Kind]float64 {
	return map[cpu.Kind]float64{
		cpu.Xeon25:       1.00,
		cpu.Xeon30:       x30,
		cpu.Xeon29:       x29,
		cpu.EPYC:         epyc,
		cpu.Graviton:     1.10,
		cpu.IBMCascade24: 1.04,
		cpu.IBMCascade25: 1.00,
		cpu.DOXeon26:     0.99,
		cpu.DOXeon27:     0.97,
	}
}

var specs = [...]Spec{
	{
		ID: GraphMST, Name: "graph_mst", VCPUs: 1,
		Description: "Generates a graph and calculates its minimum spanning tree.",
		BaseMS:      3800, NoiseFrac: 0.05,
		factors: mkFactors(0.90, 1.20, 1.35),
	},
	{
		ID: GraphBFS, Name: "graph_bfs", VCPUs: 1,
		Description: "Generates a graph and performs a breadth-first search.",
		BaseMS:      4800, NoiseFrac: 0.05,
		factors: mkFactors(0.85, 1.28, 1.48),
	},
	{
		ID: PageRank, Name: "page_rank", VCPUs: 1.2,
		Description: "Generates a graph and computes the PageRank of each node.",
		BaseMS:      4500, NoiseFrac: 0.05,
		factors: mkFactors(0.87, 1.25, 1.38),
	},
	{
		ID: DiskWriter, Name: "disk_writer", VCPUs: 1,
		Description: "Generates text, repeatedly writes it to disk, and deletes it.",
		BaseMS:      1200, NoiseFrac: 0.08,
		// Less sensitive to raw CPU speed; EPYC slightly beats baseline.
		factors: mkFactors(0.97, 1.08, 0.96),
	},
	{
		ID: DiskWriteProcess, Name: "disk_write_and_process", VCPUs: 1,
		Description: "Writes a large text file and then runs several shell commands (wc, base64, sha1sum, cat) on it in a loop.",
		BaseMS:      1800, NoiseFrac: 0.08,
		factors: mkFactors(0.96, 1.10, 1.02),
	},
	{
		ID: Zipper, Name: "zipper", VCPUs: 2,
		Description: "Generates files and compresses them into ZIP archives.",
		BaseMS:      4200, NoiseFrac: 0.06,
		factors: mkFactors(0.85, 1.22, 1.38),
	},
	{
		ID: Thumbnailer, Name: "thumbnailer", VCPUs: 1,
		Description: "Generates a random bitmap image and scales it to different sizes.",
		BaseMS:      2400, NoiseFrac: 0.05,
		factors: mkFactors(0.89, 1.18, 1.30),
	},
	{
		ID: Sha1Hash, Name: "sha1_hash", VCPUs: 1,
		Description: "Takes an input string and produces its SHA-1 hash.",
		BaseMS:      900, NoiseFrac: 0.07,
		factors: mkFactors(0.95, 1.12, 1.05),
	},
	{
		ID: JSONFlattener, Name: "json_flattener", VCPUs: 1,
		Description: "Recursively generates a large JSON object and flattens it into key-value pairs.",
		BaseMS:      2600, NoiseFrac: 0.05,
		factors: mkFactors(0.90, 1.22, 1.33),
	},
	{
		ID: MathService, Name: "math_service", VCPUs: 2,
		Description: "Builds large arrays and repeatedly performs arithmetic operations on them.",
		BaseMS:      5200, NoiseFrac: 0.04,
		factors: mkFactors(0.86, 1.28, 1.48),
	},
	{
		ID: MatrixMultiply, Name: "matrix_multiply", VCPUs: 2,
		Description: "Generates large matrices and executes multiply and dot operations in loops.",
		BaseMS:      6000, NoiseFrac: 0.04,
		factors: mkFactors(0.87, 1.26, 1.42),
	},
	{
		ID: LogisticRegression, Name: "logistic_regression", VCPUs: 2,
		Description: "Runs logistic-regression SGD across two threads on a generated dataset for the requested epochs.",
		BaseMS:      6500, NoiseFrac: 0.04,
		factors: mkFactors(0.85, 1.30, 1.50),
	},
}

// All returns the Table-1 catalog in table order.
func All() []Spec {
	out := make([]Spec, len(specs))
	copy(out, specs[:])
	return out
}

// Get returns the spec for id.
func Get(id ID) (Spec, bool) {
	i := int(id) - 1
	if i < 0 || i >= len(specs) {
		return Spec{}, false
	}
	return specs[i], true
}

// MustGet returns the spec for id and panics for an unknown id; use only
// with compile-time-known ids.
func MustGet(id ID) Spec {
	s, ok := Get(id)
	if !ok {
		panic(fmt.Sprintf("workload: unknown id %d", int(id)))
	}
	return s
}

// ByName resolves a workload by its snake_case name.
func ByName(name string) (Spec, bool) {
	for _, s := range specs {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// IDs returns all workload ids in table order.
func IDs() []ID {
	out := make([]ID, 0, numWorkloads)
	for i := 1; i <= numWorkloads; i++ {
		out = append(out, ID(i))
	}
	return out
}

// String returns the workload's snake_case name.
func (id ID) String() string {
	if s, ok := Get(id); ok {
		return s.Name
	}
	return fmt.Sprintf("workload(%d)", int(id))
}

// MemoryFactor returns the runtime multiplier induced by a memory setting.
// FaaS platforms scale CPU share linearly with memory (1 vCPU per 1769 MB
// on AWS Lambda); a deployment whose memory grants fewer effective vCPUs
// than the workload demands runs proportionally slower. Extra vCPUs beyond
// the demand do not speed the workload up.
func (s Spec) MemoryFactor(memoryMB int) float64 {
	if memoryMB <= 0 {
		return 1
	}
	const mbPerVCPU = 1769.0
	effective := float64(memoryMB) / mbPerVCPU
	if effective >= s.VCPUs {
		return 1
	}
	return s.VCPUs / effective
}
