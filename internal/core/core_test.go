package core

import (
	"testing"
	"time"

	"skyfaas/internal/charact"
	"skyfaas/internal/cloudsim"
	"skyfaas/internal/cpu"
	"skyfaas/internal/geo"
	"skyfaas/internal/router"
	"skyfaas/internal/sampler"
	"skyfaas/internal/sim"
	"skyfaas/internal/workload"
)

// tinyCatalog is a two-zone world small enough for fast end-to-end tests.
func tinyCatalog() []cloudsim.RegionSpec {
	return []cloudsim.RegionSpec{{
		Provider: cloudsim.AWS, Name: "t1", Loc: geo.Coord{Lat: 40, Lon: -80},
		AZs: []cloudsim.AZSpec{
			{Name: "t1-slow", PoolFIs: 2048,
				Mix: map[cpu.Kind]float64{cpu.Xeon25: 0.5, cpu.EPYC: 0.5}},
			{Name: "t1-fast", PoolFIs: 2048,
				Mix: map[cpu.Kind]float64{cpu.Xeon30: 0.6, cpu.Xeon25: 0.4}},
		},
	}}
}

func tinyRuntime(t *testing.T) *Runtime {
	t.Helper()
	rt, err := New(Config{
		Seed:    11,
		Catalog: tinyCatalog(),
		SamplerCfg: sampler.Config{
			Endpoints: 30, PollSize: 84, Branch: 4,
			Sleep: 100 * time.Millisecond, InterPollPause: 500 * time.Millisecond,
		},
		SkipMesh: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestNewDefaultsAndAccessors(t *testing.T) {
	rt := tinyRuntime(t)
	for name, v := range map[string]any{
		"Env": rt.Env(), "Cloud": rt.Cloud(), "Client": rt.Client(),
		"Mesh": rt.Mesh(), "Sampler": rt.Sampler(), "Store": rt.Store(),
		"Perf": rt.Perf(), "Router": rt.Router(),
	} {
		if v == nil {
			t.Errorf("%s is nil", name)
		}
	}
	if rt.Mesh().Size() != 2 {
		t.Errorf("minimal mesh size = %d, want 2 (one per zone)", rt.Mesh().Size())
	}
}

func TestFullDefaultWorldConstructs(t *testing.T) {
	rt, err := New(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rt.Cloud().Regions()); got != 41 {
		t.Errorf("regions = %d", got)
	}
	if rt.Mesh().Size() < 600 {
		t.Errorf("full mesh size = %d", rt.Mesh().Size())
	}
}

func TestEndToEndCharacterizeProfileRoute(t *testing.T) {
	rt := tinyRuntime(t)
	azs := []string{"t1-slow", "t1-fast"}
	var baseline, hybrid router.BurstResult
	err := rt.Do(func(p *sim.Proc) error {
		// 1. Characterize both zones cheaply.
		if _, err := rt.Refresh(p, azs, 4); err != nil {
			return err
		}
		// 2. Learn workload performance.
		if _, err := rt.ProfileWorkloads(p, []workload.ID{workload.MathService}, azs, 600); err != nil {
			return err
		}
		// 3. Route: baseline in the slow zone vs hybrid over both.
		var err error
		baseline, err = rt.Run(p, router.BurstSpec{
			Strategy:   router.Baseline{AZ: "t1-slow"},
			Workload:   workload.MathService,
			N:          300,
			Candidates: azs,
		})
		if err != nil {
			return err
		}
		hybrid, err = rt.Run(p, router.BurstSpec{
			Strategy:   router.Hybrid{},
			Workload:   workload.MathService,
			N:          300,
			Candidates: azs,
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Completed != 300 || hybrid.Completed != 300 {
		t.Fatalf("completed: baseline=%d hybrid=%d", baseline.Completed, hybrid.Completed)
	}
	if hybrid.AZ != "t1-fast" {
		t.Errorf("hybrid picked %s, want the fast zone", hybrid.AZ)
	}
	if hybrid.CostUSD >= baseline.CostUSD {
		t.Errorf("hybrid $%.4f not cheaper than baseline $%.4f", hybrid.CostUSD, baseline.CostUSD)
	}
	savings := 1 - hybrid.CostUSD/baseline.CostUSD
	if savings < 0.05 || savings > 0.6 {
		t.Errorf("savings = %.1f%%, outside plausible band", savings*100)
	}
}

func TestCharacterizeStoresGroundTruth(t *testing.T) {
	rt := tinyRuntime(t)
	err := rt.Do(func(p *sim.Proc) error {
		ch, trail, err := rt.Characterize(p, "t1-slow")
		if err != nil {
			return err
		}
		if len(trail) < 3 {
			t.Errorf("only %d polls to saturation", len(trail))
		}
		az, _ := rt.Cloud().AZ("t1-slow")
		if ape := charact.APE(ch.Dist(), az.TrueMix()); ape > 12 {
			t.Errorf("characterization APE = %.1f%%", ape)
		}
		if _, ok := rt.Store().Get("t1-slow", rt.Env().Now()); !ok {
			t.Error("characterization not stored")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRefreshRespectsTTL(t *testing.T) {
	rt := tinyRuntime(t)
	err := rt.Do(func(p *sim.Proc) error {
		cost, err := rt.Refresh(p, []string{"t1-fast"}, 3)
		if err != nil {
			return err
		}
		if cost <= 0 {
			t.Error("refresh cost not tracked")
		}
		if _, ok := rt.Store().Get("t1-fast", rt.Env().Now()); !ok {
			t.Error("fresh characterization missing")
		}
		p.Sleep(25 * time.Hour)
		if _, ok := rt.Store().Get("t1-fast", rt.Env().Now()); ok {
			t.Error("characterization survived past TTL")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEnsureSamplerEndpointsIdempotent(t *testing.T) {
	rt := tinyRuntime(t)
	if err := rt.EnsureSamplerEndpoints("t1-slow"); err != nil {
		t.Fatal(err)
	}
	if err := rt.EnsureSamplerEndpoints("t1-slow"); err != nil {
		t.Fatalf("second ensure failed: %v", err)
	}
}

func TestDoPropagatesClientError(t *testing.T) {
	rt := tinyRuntime(t)
	sentinel := &testError{}
	if err := rt.Do(func(p *sim.Proc) error { return sentinel }); err != sentinel {
		t.Fatalf("err = %v", err)
	}
}

type testError struct{}

func (*testError) Error() string { return "sentinel" }
