// Package core assembles the serverless sky computing runtime — the
// paper's primary contribution. A Runtime owns a simulated multi-cloud, a
// sky mesh of dynamic functions over it, an infrastructure sampler, a
// characterization store, a per-workload performance model, and the smart
// routing system that turns all of that into placement decisions.
//
// The flow mirrors §3: deploy the mesh once; characterize zones with the
// sampler (cheaply, a few polls — or exhaustively, to saturation); profile
// workloads to learn per-CPU performance; then route bursts with a
// Strategy (baseline / regional / retry / hybrid).
package core

import (
	"fmt"
	"time"

	"skyfaas/internal/admission"
	"skyfaas/internal/chaos"
	"skyfaas/internal/charact"
	"skyfaas/internal/cloudsim"
	"skyfaas/internal/cpu"
	"skyfaas/internal/faas"
	"skyfaas/internal/geo"
	"skyfaas/internal/mesh"
	"skyfaas/internal/metrics"
	"skyfaas/internal/refresh"
	"skyfaas/internal/router"
	"skyfaas/internal/sampler"
	"skyfaas/internal/sim"
	"skyfaas/internal/warmpool"
	"skyfaas/internal/workload"
)

// Config assembles a Runtime. Zero values take paper defaults.
type Config struct {
	// Seed drives every stochastic element; equal seeds replay exactly.
	Seed uint64
	// Epoch is the virtual start time (default 2026-01-05 00:00 UTC, a
	// Monday).
	Epoch time.Time
	// Catalog overrides the default 41-region world (nil = full world).
	Catalog []cloudsim.RegionSpec
	// CloudOpts tunes platform mechanics.
	CloudOpts cloudsim.Options
	// MeshCfg selects the deployment matrix.
	MeshCfg mesh.Config
	// SamplerCfg tunes the polling technique.
	SamplerCfg sampler.Config
	// StoreTTL is the characterization lifespan (default 24h).
	StoreTTL time.Duration
	// Account is the billing account (default "sky").
	Account string
	// ClientLoc places the client geographically (nil = co-located).
	ClientLoc *geo.Coord
	// SkipMesh replaces the full deployment matrix with a minimal one
	// (one x86 endpoint per zone) for fast tests.
	SkipMesh bool
	// Shards selects the simulation engine: 0 or 1 builds the classic
	// single-queue engine; N > 1 builds a sharded engine with N event
	// shards — shard 0 runs the client/router control plane, regions are
	// spread round-robin over the rest, and shards synchronize
	// conservatively on the minimum intra-cloud network latency. Replay is
	// byte-identical across shard counts (asserted by the experiments'
	// determinism tests).
	Shards int
	// Metrics receives runtime instrumentation (router decisions, cloudsim
	// per-zone counters, latency histograms). Nil means the process-wide
	// metrics.Default() registry, so CLI tools can dump a single snapshot
	// covering every runtime the process ran.
	Metrics *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.Epoch.IsZero() {
		c.Epoch = time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)
	}
	if c.StoreTTL == 0 {
		c.StoreTTL = 24 * time.Hour
	}
	if c.Account == "" {
		c.Account = "sky"
	}
	if c.Metrics == nil {
		c.Metrics = metrics.Default()
	}
	return c
}

// Runtime is a fully assembled serverless sky computing system.
type Runtime struct {
	env       *sim.Env
	cloud     *cloudsim.Cloud
	client    *faas.Client
	mesh      *mesh.Mesh
	sampler   *sampler.Sampler
	store     *charact.Store
	perf      *router.PerfModel
	router    *router.Router
	chaos     *chaos.Injector
	metrics   *metrics.Registry
	sampled   map[string]bool // zones with sampling endpoints deployed
	refresher *refresh.Maintainer
	gate      *admission.Controller
	warmer    *warmpool.Maintainer
	// trafficSinks fans the router's single traffic callback out to every
	// subsystem observing routed completions (refresh urgency weighting,
	// warm-pool forecasting).
	trafficSinks []func(az string, completed int)
}

// New builds a Runtime (deploying the mesh unless cfg.SkipMesh).
func New(cfg Config) (*Runtime, error) {
	cfg = cfg.withDefaults()
	var env *sim.Env
	if cfg.Shards > 1 {
		// The lookahead is the minimum one-way network latency between any
		// two shards: every cross-shard interaction travels the network, so
		// conservative windows of this width never cut a send short.
		rtt := cfg.CloudOpts.IntraCloudRTT
		if rtt == 0 {
			rtt = cloudsim.Options{}.WithDefaults().IntraCloudRTT
		}
		env = sim.NewSharded(cfg.Epoch, cfg.Shards, rtt/2).Control()
	} else {
		env = sim.NewEnv(cfg.Epoch)
	}
	if cfg.CloudOpts.Metrics == nil {
		cfg.CloudOpts.Metrics = cfg.Metrics
	}
	cloud := cloudsim.New(env, cfg.Seed, cfg.Catalog, cfg.CloudOpts)
	clientOpts := []faas.Option{faas.WithSeed(cfg.Seed)}
	if cfg.ClientLoc != nil {
		clientOpts = append(clientOpts, faas.WithLocation(*cfg.ClientLoc))
	}
	client := faas.NewClient(cloud, cfg.Account, clientOpts...)
	rt := &Runtime{
		env:     env,
		cloud:   cloud,
		client:  client,
		sampler: sampler.New(client, cfg.SamplerCfg),
		store:   charact.NewStore(cfg.StoreTTL),
		perf:    router.NewPerfModel(),
		metrics: cfg.Metrics,
		sampled: make(map[string]bool),
	}
	meshCfg := cfg.MeshCfg
	if cfg.SkipMesh {
		// Minimal matrix: one x86 endpoint per zone, enough for routing.
		meshCfg = mesh.Config{
			AWSMemoriesMB: []int{4096},
			AWSArchs:      []cpu.Arch{cpu.X86},
			IBMMemoriesMB: []int{4096},
			DOMemoriesMB:  []int{1024},
		}
	}
	m, err := mesh.Build(cloud, meshCfg)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	rt.mesh = m
	rt.router = router.New(client, rt.mesh, rt.store, rt.perf)
	rt.router.UseMetrics(rt.metrics)
	rt.router.UseSeed(cfg.Seed)
	rt.chaos = chaos.NewInjector(cloud, cfg.Metrics)
	return rt, nil
}

// Env returns the simulation environment.
func (rt *Runtime) Env() *sim.Env { return rt.env }

// Cloud returns the simulated sky.
func (rt *Runtime) Cloud() *cloudsim.Cloud { return rt.cloud }

// Client returns the account-scoped FaaS client.
func (rt *Runtime) Client() *faas.Client { return rt.client }

// Mesh returns the deployed sky mesh.
func (rt *Runtime) Mesh() *mesh.Mesh { return rt.mesh }

// Sampler returns the infrastructure sampler.
func (rt *Runtime) Sampler() *sampler.Sampler { return rt.sampler }

// Store returns the characterization store.
func (rt *Runtime) Store() *charact.Store { return rt.store }

// Perf returns the learned performance model.
func (rt *Runtime) Perf() *router.PerfModel { return rt.perf }

// Router returns the smart routing system.
func (rt *Runtime) Router() *router.Router { return rt.router }

// Chaos returns the fault injector over this runtime's cloud.
func (rt *Runtime) Chaos() *chaos.Injector { return rt.chaos }

// Metrics returns the instrumentation registry every layer of this runtime
// reports into.
func (rt *Runtime) Metrics() *metrics.Registry { return rt.metrics }

// Do runs fn as the client process and drives the simulation until all
// work completes, returning fn's error.
func (rt *Runtime) Do(fn func(p *sim.Proc) error) error {
	proc := rt.env.Go("client", fn)
	if err := rt.env.Run(); err != nil {
		return err
	}
	return proc.Err()
}

// EnsureSamplerEndpoints deploys the zone's sampling functions once.
func (rt *Runtime) EnsureSamplerEndpoints(az string) error {
	if rt.sampled[az] {
		return nil
	}
	if err := rt.sampler.Deploy(az); err != nil {
		return err
	}
	rt.sampled[az] = true
	return nil
}

// Characterize drives a zone to saturation (EX-1 style), stores the
// resulting ground-truth characterization, and returns it with the
// per-poll trail.
func (rt *Runtime) Characterize(p *sim.Proc, az string) (charact.Characterization, []sampler.PollResult, error) {
	if err := rt.EnsureSamplerEndpoints(az); err != nil {
		return charact.Characterization{}, nil, err
	}
	ch, trail, err := rt.sampler.Characterize(p, az)
	if err != nil {
		return ch, trail, err
	}
	rt.store.Put(ch)
	return ch, trail, nil
}

// Refresh updates zone characterizations with a fixed number of polls (the
// cheap daily mode) and returns the total sampling spend.
func (rt *Runtime) Refresh(p *sim.Proc, azs []string, polls int) (float64, error) {
	var cost float64
	for _, az := range azs {
		if err := rt.EnsureSamplerEndpoints(az); err != nil {
			return cost, err
		}
		ch, _, err := rt.sampler.CharacterizeQuick(p, az, polls)
		if err != nil {
			return cost, err
		}
		rt.store.Put(ch)
		cost += ch.CostUSD
	}
	return cost, nil
}

// EnablePassiveCharacterization attaches a passive collector (window 0 =
// 24h): all routed traffic feeds it, and RefreshPassive can then update the
// store at zero sampling cost for zones carrying enough traffic.
func (rt *Runtime) EnablePassiveCharacterization(window time.Duration) *charact.Passive {
	p := charact.NewPassive(window)
	rt.router.UsePassive(p)
	return p
}

// runtimeResampler adapts the runtime's sampler to the refresh.Resampler
// surface: ensure sampling endpoints exist, then run the cheap quick mode.
// The maintainer stores the result and accounts the spend itself.
type runtimeResampler struct{ rt *Runtime }

func (r runtimeResampler) Resample(p *sim.Proc, az string, polls int) (charact.Characterization, error) {
	if err := r.rt.EnsureSamplerEndpoints(az); err != nil {
		return charact.Characterization{}, err
	}
	ch, _, err := r.rt.sampler.CharacterizeQuick(p, az, polls)
	return ch, err
}

// EnableRefresh assembles the continuous characterization-maintenance loop
// over this runtime: drift detection against the passive collector (attach
// one first via EnablePassiveCharacterization for drift mode to gain
// confidence), budgeted re-sampling through the runtime's sampler, and the
// router's traffic feed for urgency weighting. The returned maintainer is
// not started; call Start to arm its control loop.
func (rt *Runtime) EnableRefresh(cfg refresh.Config) (*refresh.Maintainer, error) {
	m, err := refresh.New(rt.env, cfg, rt.store, rt.router.Passive(), runtimeResampler{rt}, rt.metrics)
	if err != nil {
		return nil, err
	}
	rt.addTrafficSink(m.ObserveTraffic)
	rt.refresher = m
	return m, nil
}

// Refresher returns the maintenance loop (nil until EnableRefresh).
func (rt *Runtime) Refresher() *refresh.Maintainer { return rt.refresher }

// addTrafficSink subscribes fn to the router's completed-traffic feed. The
// router carries a single callback slot, so the first subscription installs
// a fan-out closure over the runtime's sink list.
func (rt *Runtime) addTrafficSink(fn func(az string, completed int)) {
	rt.trafficSinks = append(rt.trafficSinks, fn)
	if len(rt.trafficSinks) == 1 {
		rt.router.UseTrafficSink(func(az string, completed int) {
			for _, sink := range rt.trafficSinks {
				sink(az, completed)
			}
		})
	}
}

// runtimeActuator adapts the cloud's warm-pool actuator to the warmpool
// policy surface: resolve the zone's mesh endpoint once, then drive
// Cloud.StartEnsureWarm (which hops to the zone's shard and back) billing
// the runtime's account.
type runtimeActuator struct {
	rt       *Runtime
	memoryMB int
	arch     cpu.Arch
	byZone   map[string]string // az -> resolved function name
}

func (a *runtimeActuator) resolve(az string) (string, bool) {
	if fn, ok := a.byZone[az]; ok {
		return fn, fn != ""
	}
	fn := ""
	if ep, ok := a.rt.mesh.Lookup(az, a.memoryMB, a.arch); ok {
		fn = ep.Function
	} else {
		// Zones deployed at other memory settings (e.g. DO's 1 GB matrix):
		// fall back to the zone's first endpoint of the right arch.
		for _, ep := range a.rt.mesh.Endpoints() {
			if ep.AZ == az && ep.Arch == a.arch {
				fn = ep.Function
				break
			}
		}
	}
	a.byZone[az] = fn
	return fn, fn != ""
}

func (a *runtimeActuator) EnsureWarm(az string, target, floor int, done func(warmpool.Provision)) {
	fn, ok := a.resolve(az)
	if !ok {
		a.rt.env.Schedule(0, func() {
			done(warmpool.Provision{Err: fmt.Errorf("core: no mesh endpoint in %s to keep warm", az)})
		})
		return
	}
	a.rt.cloud.StartEnsureWarm(a.rt.env, az, fn, target, floor, a.rt.client.Account(), func(r cloudsim.ProvisionResult) {
		done(warmpool.Provision{
			Live:        r.Live,
			Idle:        r.Idle,
			Requested:   r.Requested,
			Provisioned: r.Provisioned,
			CostUSD:     r.CostUSD,
			Err:         r.Err,
		})
	})
}

// EnableWarmPool assembles the predictive pre-warming loop over this
// runtime: per-zone arrival forecasting fed by the router's traffic feed, a
// Little's-law sizer over the admission gate's service-time estimate for w
// (enable admission first; the catalog BaseMS is the fallback), and
// actuation through the cloud's PreWarm/SetFloor API against each zone's
// x86 mesh endpoint, billed to the runtime's account. The returned
// maintainer is not started; call Start to arm its control loop.
func (rt *Runtime) EnableWarmPool(cfg warmpool.Config, w workload.ID) (*warmpool.Maintainer, error) {
	act := &runtimeActuator{rt: rt, memoryMB: 4096, arch: cpu.X86, byZone: make(map[string]string)}
	svc := func() float64 {
		if rt.gate != nil {
			if ms := rt.gate.ServiceMS(w); ms > 0 {
				return ms
			}
		}
		if spec, ok := workload.Get(w); ok && spec.BaseMS > 0 {
			return spec.BaseMS
		}
		return 1000
	}
	m, err := warmpool.New(rt.env, cfg, act, svc, rt.metrics)
	if err != nil {
		return nil, err
	}
	rt.addTrafficSink(m.ObserveTraffic)
	rt.warmer = m
	return m, nil
}

// WarmPool returns the pre-warming loop (nil until EnableWarmPool).
func (rt *Runtime) WarmPool() *warmpool.Maintainer { return rt.warmer }

// EnableAdmission builds the overload-control gate over this runtime.
// Slots defaults to the platform quota minus headroom for the router's
// profiling probes, and every workload's service-time estimate is seeded
// from what the runtime has already learned: the performance model's
// expected runtime over each characterized zone's CPU distribution
// (averaged across zones) when profiling data exists, the catalog BaseMS
// otherwise. The controller reports into the runtime's metrics registry
// unless cfg.Metrics overrides it.
func (rt *Runtime) EnableAdmission(cfg admission.Config) (*admission.Controller, error) {
	if cfg.Slots == 0 {
		quota := rt.cloud.Options().Quota
		headroom := quota / 10
		if headroom < 5 {
			headroom = 5
		}
		cfg.Slots = quota - headroom
		if cfg.Slots < 1 {
			cfg.Slots = 1
		}
	}
	if cfg.Metrics == nil {
		cfg.Metrics = rt.metrics
	}
	gate, err := admission.New(cfg)
	if err != nil {
		return nil, err
	}
	now := rt.env.Now()
	for _, w := range workload.IDs() {
		var sum float64
		var n int
		for _, az := range rt.store.Zones() {
			ch, ok := rt.store.Get(az, now)
			if !ok {
				continue
			}
			if ms, ok := rt.perf.ExpectedMS(w, ch.Dist()); ok && ms > 0 {
				sum += ms
				n++
			}
		}
		if n > 0 {
			gate.Seed(w, sum/float64(n))
		}
	}
	rt.gate = gate
	return gate, nil
}

// Admission returns the overload-control gate (nil until EnableAdmission).
func (rt *Runtime) Admission() *admission.Controller { return rt.gate }

// RefreshPassive updates the store from passive observations wherever at
// least minSamples instances were seen within the collector window. It
// returns the zones refreshed.
func (rt *Runtime) RefreshPassive(azs []string, minSamples int) []string {
	passive := rt.router.Passive()
	if passive == nil {
		return nil
	}
	now := rt.env.Now()
	var refreshed []string
	for _, az := range azs {
		if ch, ok := passive.Characterization(az, now, minSamples); ok {
			rt.store.Put(ch)
			refreshed = append(refreshed, az)
		}
	}
	return refreshed
}

// ProfileWorkloads learns per-CPU runtimes for each workload across zones
// (EX-5's baseline step), returning total profiling spend.
func (rt *Runtime) ProfileWorkloads(p *sim.Proc, ws []workload.ID, azs []string, nPerAZ int) (float64, error) {
	var cost float64
	for _, w := range ws {
		c, err := rt.router.Profile(p, w, azs, nPerAZ, 0)
		if err != nil {
			return cost, err
		}
		cost += c
	}
	return cost, nil
}

// Run executes one routed burst.
func (rt *Runtime) Run(p *sim.Proc, spec router.BurstSpec) (router.BurstResult, error) {
	return rt.router.Burst(p, spec)
}
