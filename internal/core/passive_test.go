package core

import (
	"testing"
	"time"

	"skyfaas/internal/router"
	"skyfaas/internal/sim"
	"skyfaas/internal/workload"
)

// TestPassiveCharacterizationEndToEnd exercises §4.6's future-work path:
// characterize zones from routed traffic alone — no polls, no sampling
// spend — then route on the passive characterizations.
func TestPassiveCharacterizationEndToEnd(t *testing.T) {
	rt := tinyRuntime(t)
	passive := rt.EnablePassiveCharacterization(24 * time.Hour)
	azs := []string{"t1-slow", "t1-fast"}
	err := rt.Do(func(p *sim.Proc) error {
		// Profiling traffic doubles as passive observation.
		if _, err := rt.ProfileWorkloads(p, []workload.ID{workload.MathService}, azs, 600); err != nil {
			return err
		}
		refreshed := rt.RefreshPassive(azs, 100)
		if len(refreshed) != 2 {
			t.Fatalf("passively refreshed %v, want both zones", refreshed)
		}
		for _, az := range azs {
			ch, ok := rt.Store().Get(az, rt.Env().Now())
			if !ok {
				t.Fatalf("%s: no stored characterization", az)
			}
			if ch.CostUSD != 0 {
				t.Errorf("%s: passive characterization has cost %v", az, ch.CostUSD)
			}
			if ch.Samples < 100 {
				t.Errorf("%s: only %d passive samples", az, ch.Samples)
			}
		}
		// The passive characterizations are good enough to route on: the
		// hybrid strategy still finds the fast zone.
		res, err := rt.Run(p, router.BurstSpec{
			Strategy:   router.Hybrid{},
			Workload:   workload.MathService,
			N:          200,
			Candidates: azs,
		})
		if err != nil {
			return err
		}
		if res.AZ != "t1-fast" {
			t.Errorf("hybrid on passive data picked %s", res.AZ)
		}
		if got := passive.Samples("t1-slow", rt.Env().Now()); got == 0 {
			t.Error("collector lost its observations")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRefreshPassiveWithoutCollector(t *testing.T) {
	rt := tinyRuntime(t)
	if got := rt.RefreshPassive([]string{"t1-slow"}, 1); got != nil {
		t.Fatalf("refresh without collector = %v", got)
	}
}
