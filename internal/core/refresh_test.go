package core

import (
	"testing"
	"time"

	"skyfaas/internal/refresh"
	"skyfaas/internal/router"
	"skyfaas/internal/sim"
	"skyfaas/internal/workload"
)

// TestEnableRefreshWiresTrafficAndResampling checks the maintenance loop's
// runtime integration: routed bursts feed the urgency model through the
// router's traffic sink, and a forced refresh re-samples through the real
// sampler into the store the router reads.
func TestEnableRefreshWiresTrafficAndResampling(t *testing.T) {
	rt := tinyRuntime(t)
	rt.EnablePassiveCharacterization(24 * time.Hour)
	m, err := rt.EnableRefresh(refresh.Config{
		Zones: []string{"t1-slow", "t1-fast"},
		Mode:  refresh.ModeOff,
		Polls: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Refresher() != m {
		t.Fatal("Refresher() must return the enabled maintainer")
	}
	err = rt.Do(func(p *sim.Proc) error {
		if _, err := rt.ProfileWorkloads(p, []workload.ID{workload.MathService}, []string{"t1-slow", "t1-fast"}, 200); err != nil {
			return err
		}
		res, err := rt.Run(p, router.BurstSpec{
			Strategy:   router.Baseline{AZ: "t1-fast"},
			Workload:   workload.MathService,
			N:          100,
			Candidates: []string{"t1-fast"},
		})
		if err != nil {
			return err
		}
		st := m.Snapshot()
		var share float64
		for _, z := range st.Zones {
			if z.AZ == res.AZ {
				share = z.TrafficShare
			}
		}
		if share != 1.0 {
			t.Errorf("traffic share for %s = %v, want 1.0 (only burst routed there)", res.AZ, share)
		}

		// A forced refresh pays real sampling spend and lands in the store.
		ch, err := m.Force(p, "t1-slow", 2)
		if err != nil {
			return err
		}
		if ch.CostUSD <= 0 || ch.Polls != 2 {
			t.Errorf("forced characterization = %+v, want 2 paid polls", ch)
		}
		got, ok := rt.Store().Get("t1-slow", rt.Env().Now())
		if !ok || !got.Taken.Equal(ch.Taken) {
			t.Errorf("store not updated by forced refresh: %+v ok=%v", got, ok)
		}
		if st := m.Snapshot(); st.SpentUSD <= 0 {
			t.Errorf("snapshot spend = %v, want > 0", st.SpentUSD)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
