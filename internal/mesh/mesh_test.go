package mesh

import (
	"testing"
	"time"

	"skyfaas/internal/cloudsim"
	"skyfaas/internal/cpu"
	"skyfaas/internal/geo"
	"skyfaas/internal/sim"
)

func smallCloud(t *testing.T) *cloudsim.Cloud {
	t.Helper()
	env := sim.NewEnv(time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC))
	catalog := []cloudsim.RegionSpec{
		{
			Provider: cloudsim.AWS, Name: "aws-r1", Loc: geo.Coord{},
			AZs: []cloudsim.AZSpec{
				{Name: "aws-r1-a", PoolFIs: 512, ArmPoolFIs: 128, Mix: map[cpu.Kind]float64{cpu.Xeon25: 1}},
				{Name: "aws-r1-b", PoolFIs: 512, ArmPoolFIs: 128, Mix: map[cpu.Kind]float64{cpu.Xeon25: 1}},
			},
		},
		{
			Provider: cloudsim.IBM, Name: "ibm-r1", Loc: geo.Coord{},
			AZs: []cloudsim.AZSpec{
				{Name: "ibm-r1-a", PoolFIs: 256, Mix: map[cpu.Kind]float64{cpu.IBMCascade25: 1}},
			},
		},
		{
			Provider: cloudsim.DO, Name: "do-r1", Loc: geo.Coord{},
			AZs: []cloudsim.AZSpec{
				{Name: "do-r1-a", PoolFIs: 256, Mix: map[cpu.Kind]float64{cpu.DOXeon26: 1}},
			},
		},
	}
	return cloudsim.New(env, 9, catalog, cloudsim.Options{HorizonDays: 1})
}

func TestBuildMatrix(t *testing.T) {
	cloud := smallCloud(t)
	m, err := Build(cloud, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// AWS: 2 AZs x 9 memories x 2 archs = 36; IBM: 1 x 3; DO: 1 x 2.
	byProvider := m.CountByProvider()
	if byProvider[cloudsim.AWS] != 36 {
		t.Errorf("AWS endpoints = %d, want 36", byProvider[cloudsim.AWS])
	}
	if byProvider[cloudsim.IBM] != 3 {
		t.Errorf("IBM endpoints = %d, want 3", byProvider[cloudsim.IBM])
	}
	if byProvider[cloudsim.DO] != 2 {
		t.Errorf("DO endpoints = %d, want 2", byProvider[cloudsim.DO])
	}
	if m.Size() != 41 {
		t.Errorf("total = %d, want 41", m.Size())
	}
	if azs := m.AZs(); len(azs) != 4 {
		t.Errorf("AZs = %v", azs)
	}
}

func TestPaperScaleMatrix(t *testing.T) {
	// Over the full default catalog, the AWS matrix alone exceeds 600
	// deployments (the paper's >1,600 includes its per-AZ sampling
	// functions, deployed on demand by the sampler).
	env := sim.NewEnv(time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC))
	cloud := cloudsim.New(env, 9, nil, cloudsim.Options{HorizonDays: 1})
	m, err := Build(cloud, Config{})
	if err != nil {
		t.Fatal(err)
	}
	byProvider := m.CountByProvider()
	if byProvider[cloudsim.AWS] < 600 {
		t.Errorf("AWS endpoints = %d, want >= 600", byProvider[cloudsim.AWS])
	}
	if byProvider[cloudsim.IBM] != 8*3 {
		t.Errorf("IBM endpoints = %d, want 24", byProvider[cloudsim.IBM])
	}
}

func TestLookupAndNearest(t *testing.T) {
	cloud := smallCloud(t)
	m, err := Build(cloud, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ep, ok := m.Lookup("aws-r1-a", 2048, cpu.X86)
	if !ok {
		t.Fatal("exact lookup failed")
	}
	if ep.MemoryMB != 2048 || ep.AZ != "aws-r1-a" || ep.Arch != cpu.X86 {
		t.Fatalf("endpoint = %+v", ep)
	}
	if _, ok := m.Lookup("aws-r1-a", 3000, cpu.X86); ok {
		t.Fatal("lookup of undeployed memory succeeded")
	}
	// Nearest rounds up.
	near, ok := m.Nearest("aws-r1-a", 3000, cpu.X86)
	if !ok || near.MemoryMB != 4096 {
		t.Fatalf("nearest(3000) = %+v ok=%v, want 4096", near, ok)
	}
	// Above the max, returns the largest.
	big, ok := m.Nearest("aws-r1-a", 99999, cpu.X86)
	if !ok || big.MemoryMB != 10240 {
		t.Fatalf("nearest(99999) = %+v, want 10240", big)
	}
	if _, ok := m.Nearest("ghost-az", 1024, cpu.X86); ok {
		t.Fatal("nearest in unknown AZ succeeded")
	}
	// ARM endpoints exist on AWS only.
	if _, ok := m.Nearest("aws-r1-a", 1024, cpu.ARM); !ok {
		t.Fatal("no ARM endpoint on AWS")
	}
	if _, ok := m.Nearest("ibm-r1-a", 1024, cpu.ARM); ok {
		t.Fatal("ARM endpoint on IBM")
	}
}

func TestMeshEndpointsInvocable(t *testing.T) {
	cloud := smallCloud(t)
	m, err := Build(cloud, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ep, ok := m.Lookup("ibm-r1-a", 2048, cpu.X86)
	if !ok {
		t.Fatal("no IBM endpoint")
	}
	env := cloud.Env()
	var resp cloudsim.Response
	env.Go("client", func(p *sim.Proc) error {
		resp = cloud.Invoke(p, cloudsim.Request{
			Account: "a", AZ: ep.AZ, Function: ep.Function,
		})
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !resp.OK() {
		t.Fatalf("mesh endpoint invoke failed: %v", resp.Err)
	}
	if resp.CPU != cpu.IBMCascade25 {
		t.Errorf("ran on %v", resp.CPU)
	}
}

func TestBuildIdempotenceGuard(t *testing.T) {
	cloud := smallCloud(t)
	if _, err := Build(cloud, Config{}); err != nil {
		t.Fatal(err)
	}
	// Second build collides with existing deployments.
	if _, err := Build(cloud, Config{}); err == nil {
		t.Fatal("double build succeeded")
	}
}
