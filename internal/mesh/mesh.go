// Package mesh builds and indexes the sky mesh (§3.3): a blanket of
// pre-deployed dynamic functions across every provider, region, and zone,
// covering each platform's configuration space (memory settings ×
// architectures), so any workload can run anywhere on demand with no
// deployment step.
package mesh

import (
	"fmt"
	"sort"

	"skyfaas/internal/cloudsim"
	"skyfaas/internal/cpu"
	"skyfaas/internal/dynfunc"
)

// Config selects the deployment matrix per provider. Zero fields take the
// paper's values.
type Config struct {
	// AWSMemoriesMB are the Lambda memory settings (9 in the paper).
	AWSMemoriesMB []int
	// AWSArchs are the Lambda architectures (x86_64 and arm64).
	AWSArchs []cpu.Arch
	// IBMMemoriesMB are the Code Engine memory settings (3 in the paper).
	IBMMemoriesMB []int
	// DOMemoriesMB are the DigitalOcean Functions settings.
	DOMemoriesMB []int
}

func (c Config) withDefaults() Config {
	if len(c.AWSMemoriesMB) == 0 {
		c.AWSMemoriesMB = []int{128, 256, 512, 1024, 2048, 4096, 6144, 8192, 10240}
	}
	if len(c.AWSArchs) == 0 {
		c.AWSArchs = []cpu.Arch{cpu.X86, cpu.ARM}
	}
	if len(c.IBMMemoriesMB) == 0 {
		c.IBMMemoriesMB = []int{1024, 2048, 4096}
	}
	if len(c.DOMemoriesMB) == 0 {
		c.DOMemoriesMB = []int{512, 1024}
	}
	return c
}

// Endpoint is one dynamic-function deployment in the mesh.
type Endpoint struct {
	Provider cloudsim.Provider
	Region   string
	AZ       string
	Function string
	MemoryMB int
	Arch     cpu.Arch
}

type key struct {
	az   string
	mem  int
	arch cpu.Arch
}

// Mesh is the deployed matrix with an endpoint index.
type Mesh struct {
	cloud     *cloudsim.Cloud
	endpoints []Endpoint
	index     map[key]Endpoint
	azs       []string
}

// Build deploys the mesh across every zone of the cloud.
func Build(cloud *cloudsim.Cloud, cfg Config) (*Mesh, error) {
	cfg = cfg.withDefaults()
	m := &Mesh{cloud: cloud, index: make(map[key]Endpoint)}
	for _, region := range cloud.Regions() {
		var mems []int
		archs := []cpu.Arch{cpu.X86}
		switch region.Provider() {
		case cloudsim.AWS:
			mems = cfg.AWSMemoriesMB
			archs = cfg.AWSArchs
		case cloudsim.IBM:
			mems = cfg.IBMMemoriesMB
		case cloudsim.DO:
			mems = cfg.DOMemoriesMB
		default:
			return nil, fmt.Errorf("mesh: unknown provider %v", region.Provider())
		}
		for _, az := range region.AZs() {
			m.azs = append(m.azs, az.Name())
			for _, mem := range mems {
				for _, arch := range archs {
					name := fmt.Sprintf("skymesh-%s-%d-%s", az.Name(), mem, arch)
					if _, err := dynfunc.Deploy(cloud, az.Name(), name, mem, arch); err != nil {
						return nil, fmt.Errorf("mesh: %w", err)
					}
					ep := Endpoint{
						Provider: region.Provider(),
						Region:   region.Name(),
						AZ:       az.Name(),
						Function: name,
						MemoryMB: mem,
						Arch:     arch,
					}
					m.endpoints = append(m.endpoints, ep)
					m.index[key{az: az.Name(), mem: mem, arch: arch}] = ep
				}
			}
		}
	}
	sort.Strings(m.azs)
	return m, nil
}

// Size returns the number of deployed endpoints.
func (m *Mesh) Size() int { return len(m.endpoints) }

// Endpoints returns every endpoint in deployment order.
func (m *Mesh) Endpoints() []Endpoint {
	out := make([]Endpoint, len(m.endpoints))
	copy(out, m.endpoints)
	return out
}

// AZs returns every zone covered by the mesh, sorted.
func (m *Mesh) AZs() []string {
	out := make([]string, len(m.azs))
	copy(out, m.azs)
	return out
}

// Lookup finds the endpoint for (zone, memory, arch).
func (m *Mesh) Lookup(az string, memoryMB int, arch cpu.Arch) (Endpoint, bool) {
	ep, ok := m.index[key{az: az, mem: memoryMB, arch: arch}]
	return ep, ok
}

// Nearest returns the endpoint in az whose memory setting is the smallest
// one >= memoryMB (falling back to the largest available); it lets callers
// ask for "at least this much memory".
func (m *Mesh) Nearest(az string, memoryMB int, arch cpu.Arch) (Endpoint, bool) {
	var best Endpoint
	found := false
	var bestMem int
	var maxEp Endpoint
	var maxMem int
	for k, ep := range m.index {
		if k.az != az || k.arch != arch {
			continue
		}
		if k.mem > maxMem {
			maxMem, maxEp = k.mem, ep
		}
		if k.mem >= memoryMB && (!found || k.mem < bestMem) {
			best, bestMem, found = ep, k.mem, true
		}
	}
	if found {
		return best, true
	}
	if maxMem > 0 {
		return maxEp, true
	}
	return Endpoint{}, false
}

// CountByProvider tallies endpoints per provider.
func (m *Mesh) CountByProvider() map[cloudsim.Provider]int {
	out := make(map[cloudsim.Provider]int, 3)
	for _, ep := range m.endpoints {
		out[ep.Provider]++
	}
	return out
}
