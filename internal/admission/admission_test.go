package admission

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"skyfaas/internal/metrics"
	"skyfaas/internal/workload"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func newController(t *testing.T, cfg Config) *Controller {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Slots: 10}).Validate(); err != nil {
		t.Fatalf("defaulted config rejected: %v", err)
	}
	bad := []Config{
		{Slots: 0},
		{Slots: 10, TargetUtil: 1.5},
		{Slots: 10, PressureUtil: -0.1},
		{Slots: 10, EWMAAlpha: 2},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

func TestAdmitUntilLimitThenShed(t *testing.T) {
	c := newController(t, Config{Slots: 10, TargetUtil: 0.8})
	var tickets []Ticket
	for i := 0; i < 8; i++ {
		tk, err := c.Admit(t0, workload.Sha1Hash, 1)
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		tickets = append(tickets, tk)
	}
	_, err := c.Admit(t0, workload.Sha1Hash, 1)
	if err == nil {
		t.Fatal("ninth admit at limit 8 succeeded")
	}
	if !errors.Is(err, ErrShed) {
		t.Fatalf("shed error does not wrap ErrShed: %v", err)
	}
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("shed error is not *ShedError: %T", err)
	}
	if shed.RetryAfter < 100*time.Millisecond || shed.RetryAfter > 5*time.Second {
		t.Errorf("retry-after %v outside clamp window", shed.RetryAfter)
	}
	if shed.Inflight != 8 || shed.Limit != 8 {
		t.Errorf("shed context = %d/%d, want 8/8", shed.Inflight, shed.Limit)
	}

	// Releasing one slot re-opens the gate.
	c.Done(tickets[0], t0.Add(time.Second), 900, true)
	if _, err := c.Admit(t0.Add(time.Second), workload.Sha1Hash, 1); err != nil {
		t.Fatalf("admit after release: %v", err)
	}
}

func TestDisabledNeverSheds(t *testing.T) {
	c := newController(t, Config{Slots: 2})
	c.SetEnabled(false)
	for i := 0; i < 50; i++ {
		if _, err := c.Admit(t0, workload.Thumbnailer, 1); err != nil {
			t.Fatalf("disabled gate shed request %d: %v", i, err)
		}
	}
	if c.Enabled() {
		t.Error("Enabled() true after SetEnabled(false)")
	}
	if u := c.Utilization(); u < 20 {
		t.Errorf("disabled gate should still track inflight; utilization %v", u)
	}
}

func TestServiceTimeEWMAAndCapacity(t *testing.T) {
	c := newController(t, Config{Slots: 100, TargetUtil: 0.9, EWMAAlpha: 0.5})
	// Catalog fallback for sha1_hash is BaseMS=900 → capacity 0.9*100*1000/900 = 100.
	if got := c.CapacityRPS(workload.Sha1Hash); got < 99 || got > 101 {
		t.Fatalf("fallback capacity = %v, want ~100", got)
	}
	// Seed from a characterization: 450ms doubles capacity.
	c.Seed(workload.Sha1Hash, 450)
	if got := c.CapacityRPS(workload.Sha1Hash); got < 199 || got > 201 {
		t.Fatalf("seeded capacity = %v, want ~200", got)
	}
	// Observed service times move the EWMA: alpha .5, obs 900 → 675ms.
	tk, _ := c.Admit(t0, workload.Sha1Hash, 1)
	c.Done(tk, t0.Add(time.Second), 900, true)
	snap := c.Snapshot()
	if len(snap.Functions) != 1 || snap.Functions[0].ServiceMS != 675 {
		t.Fatalf("EWMA after one obs: %+v", snap.Functions)
	}
	if snap.Functions[0].Observed.Count != 1 {
		t.Errorf("observed histogram count = %d, want 1", snap.Functions[0].Observed.Count)
	}
	// Failed requests must not pollute the estimate.
	tk, _ = c.Admit(t0, workload.Sha1Hash, 1)
	c.Done(tk, t0.Add(time.Second), 60000, false)
	if got := c.Snapshot().Functions[0].ServiceMS; got != 675 {
		t.Errorf("failure moved EWMA to %v", got)
	}
}

func TestPressureRouteCache(t *testing.T) {
	c := newController(t, Config{Slots: 4, TargetUtil: 1, PressureUtil: 0.5, RouteTTL: time.Second})
	c.RememberRoute(workload.Zipper, "aws/us-east-1/a", t0)
	if _, ok := c.RouteFor(workload.Zipper, t0); ok {
		t.Fatal("route served while unpressured")
	}
	// Cross the pressure threshold.
	tk1, _ := c.Admit(t0, workload.Zipper, 1)
	tk2, _ := c.Admit(t0, workload.Zipper, 1)
	if !c.Pressured() {
		t.Fatal("not pressured at 2/4 with PressureUtil 0.5")
	}
	az, ok := c.RouteFor(workload.Zipper, t0.Add(500*time.Millisecond))
	if !ok || az != "aws/us-east-1/a" {
		t.Fatalf("pressured route = %q, %v; want cached az", az, ok)
	}
	// TTL expiry invalidates the pin.
	if _, ok := c.RouteFor(workload.Zipper, t0.Add(2*time.Second)); ok {
		t.Fatal("expired route served")
	}
	c.Done(tk1, t0, 100, true)
	c.Done(tk2, t0, 100, true)
	if c.Pressured() {
		t.Error("still pressured after drain")
	}
}

func TestApplyRetune(t *testing.T) {
	c := newController(t, Config{Slots: 10})
	off := false
	if err := c.Apply(Retune{Enabled: &off, Slots: 20, TargetUtil: 0.5}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	snap := c.Snapshot()
	if snap.Enabled || snap.Slots != 20 || snap.TargetUtil != 0.5 || snap.Limit != 10 {
		t.Fatalf("retune not applied: %+v", snap)
	}
	if err := c.Apply(Retune{TargetUtil: 3}); err == nil {
		t.Fatal("invalid retune accepted")
	}
	if got := c.Snapshot().TargetUtil; got != 0.5 {
		t.Errorf("failed retune mutated config: targetUtil %v", got)
	}
}

func TestMetricsPublished(t *testing.T) {
	reg := metrics.NewRegistry()
	c := newController(t, Config{Slots: 2, TargetUtil: 1, Metrics: reg})
	tk, _ := c.Admit(t0, workload.Sha1Hash, 1)
	_, _ = c.Admit(t0, workload.Sha1Hash, 1)
	_, err := c.Admit(t0, workload.Sha1Hash, 1)
	if err == nil {
		t.Fatal("expected shed at 2/2")
	}
	c.Done(tk, t0, 900, true)
	admitted := reg.Counter("sky_admission_admitted_total", "", metrics.L("fn", "sha1_hash"))
	shed := reg.Counter("sky_admission_shed_total", "", metrics.L("fn", "sha1_hash"))
	if admitted.Value() != 2 || shed.Value() != 1 {
		t.Errorf("counters admitted=%d shed=%d, want 2/1", admitted.Value(), shed.Value())
	}
	inflight := reg.Gauge("sky_admission_inflight", "")
	if inflight.Value() != 1 {
		t.Errorf("inflight gauge = %v, want 1", inflight.Value())
	}
}

// TestConcurrentAdmitShed hammers the gate from many goroutines; with -race
// this is the concurrent admits/sheds test the issue calls for. Invariants:
// every admit is ticketed and released, the gate never exceeds its limit,
// and admitted+shed accounts for every attempt.
func TestConcurrentAdmitShed(t *testing.T) {
	c := newController(t, Config{Slots: 16, TargetUtil: 0.75}) // limit 12
	const workers = 8
	const perWorker = 400
	var admitted, shed, routed atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			now := t0
			for i := 0; i < perWorker; i++ {
				now = now.Add(time.Millisecond)
				fn := workload.ID(i%3 + 1)
				tk, err := c.Admit(now, fn, 1)
				if err != nil {
					if !errors.Is(err, ErrShed) {
						t.Errorf("non-shed admit error: %v", err)
					}
					shed.Add(1)
					continue
				}
				admitted.Add(1)
				if i%5 == 0 {
					c.RememberRoute(fn, "aws/us-east-1/b", now)
				}
				if _, ok := c.RouteFor(fn, now); ok {
					routed.Add(1)
				}
				c.Done(tk, now.Add(time.Millisecond), float64(50+i%100), i%7 != 0)
			}
		}(w)
	}
	wg.Wait()
	snap := c.Snapshot()
	if snap.Inflight != 0 {
		t.Errorf("inflight %d after full drain", snap.Inflight)
	}
	var gotAdmitted, gotShed uint64
	for _, fn := range snap.Functions {
		gotAdmitted += fn.Admitted
		gotShed += fn.Shed
	}
	if total := admitted.Load() + shed.Load(); total != workers*perWorker {
		t.Errorf("attempts = %d, want %d", total, workers*perWorker)
	}
	if gotAdmitted != admitted.Load() || gotShed != shed.Load() {
		t.Errorf("controller books admitted=%d shed=%d, callers saw %d/%d",
			gotAdmitted, gotShed, admitted.Load(), shed.Load())
	}
}
