// Package admission is skyd's overload-control layer: a concurrency-limited
// admission gate in front of the cloud's per-account quota, per-function
// capacity estimates in the style of Jindal et al. ("Estimating the
// Capacities of Function-as-a-Service Functions"), and request shedding with
// typed errors carrying a Retry-After hint once estimated capacity is
// exceeded.
//
// The capacity model is Little's law. A platform grants Slots concurrent
// executions (the provider quota, minus headroom the router needs for
// profiling probes). A function whose mean service time is S milliseconds
// therefore sustains at most Slots×1000/S requests per second through those
// slots; the controller admits while observed concurrency stays below
// TargetUtil×Slots and sheds beyond it, which keeps the platform shy of the
// quota cliff where the cloud itself starts throttling and retry storms
// inflate tail latency. Service times are seeded from characterization data
// and updated from observed billed runtimes with an EWMA, so the estimate
// tracks drift without re-profiling.
//
// Determinism contract: the controller never reads the wall clock — every
// method that needs time takes an explicit now. Under skyd the callers pass
// real time; under the simulation (EX-8) they pass virtual time, and the
// same seed replays bit-identically. All state is mutex-guarded and safe
// for concurrent use from HTTP handlers.
package admission

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"skyfaas/internal/metrics"
	"skyfaas/internal/workload"
)

// Config parameterizes a Controller.
type Config struct {
	// Slots is the number of concurrent executions the gate manages —
	// normally the provider quota minus router headroom. Required > 0.
	Slots int
	// TargetUtil is the admitted-concurrency ceiling as a fraction of
	// Slots (default 0.9). Admission stops once inflight reaches
	// TargetUtil×Slots.
	TargetUtil float64
	// PressureUtil is the utilization at which the controller reports
	// pressure and skyd switches to batched (pinned) routing decisions
	// (default 0.75).
	PressureUtil float64
	// EWMAAlpha weights new service-time observations (default 0.2).
	EWMAAlpha float64
	// RouteTTL bounds how long a pinned routing decision is reused under
	// pressure (default 1s).
	RouteTTL time.Duration
	// MinRetryAfter / MaxRetryAfter clamp the Retry-After hint attached to
	// sheds (defaults 100ms / 5s).
	MinRetryAfter time.Duration
	MaxRetryAfter time.Duration
	// Metrics receives the sky_admission_* series; nil disables them.
	Metrics *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.TargetUtil == 0 {
		c.TargetUtil = 0.9
	}
	if c.PressureUtil == 0 {
		c.PressureUtil = 0.75
	}
	if c.EWMAAlpha == 0 {
		c.EWMAAlpha = 0.2
	}
	if c.RouteTTL == 0 {
		c.RouteTTL = time.Second
	}
	if c.MinRetryAfter == 0 {
		c.MinRetryAfter = 100 * time.Millisecond
	}
	if c.MaxRetryAfter == 0 {
		c.MaxRetryAfter = 5 * time.Second
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Slots <= 0 {
		return fmt.Errorf("admission: non-positive slots %d", c.Slots)
	}
	if c.TargetUtil <= 0 || c.TargetUtil > 1 {
		return fmt.Errorf("admission: target utilization %v outside (0, 1]", c.TargetUtil)
	}
	if c.PressureUtil <= 0 || c.PressureUtil > 1 {
		return fmt.Errorf("admission: pressure utilization %v outside (0, 1]", c.PressureUtil)
	}
	if c.EWMAAlpha <= 0 || c.EWMAAlpha > 1 {
		return fmt.Errorf("admission: EWMA alpha %v outside (0, 1]", c.EWMAAlpha)
	}
	return nil
}

// ErrShed is the sentinel every shed wraps; errors.Is(err, ErrShed)
// identifies admission rejections regardless of detail.
var ErrShed = errors.New("admission: shed")

// ShedError is the typed rejection the gate returns when the platform is at
// estimated capacity. It carries everything the HTTP layer needs for a 429:
// the Retry-After hint and the load picture at rejection time.
type ShedError struct {
	Workload    workload.ID
	RetryAfter  time.Duration
	Inflight    int
	Limit       int
	Utilization float64
}

// Error implements error.
func (e *ShedError) Error() string {
	return fmt.Sprintf("admission: shed %s: %d/%d slots in use (%.0f%% utilization), retry after %v",
		e.Workload, e.Inflight, e.Limit, e.Utilization*100, e.RetryAfter)
}

// Unwrap ties the typed error to the ErrShed sentinel.
func (e *ShedError) Unwrap() error { return ErrShed }

// Ticket is proof of admission; pass it back to Done exactly once.
type Ticket struct {
	id     uint64
	fn     workload.ID
	weight int
	at     time.Time
}

// Workload returns the function the ticket admitted.
func (t Ticket) Workload() workload.ID { return t.fn }

// Weight returns how many slots the ticket holds.
func (t Ticket) Weight() int { return t.weight }

// fnState is the per-function capacity estimate and bookkeeping.
type fnState struct {
	serviceMS float64 // EWMA mean service time
	seeded    bool    // serviceMS came from characterizations (vs BaseMS fallback)
	inflight  int
	admitted  uint64
	shed      uint64
	observed  *metrics.Histogram // service-time distribution (ms)

	mAdmitted *metrics.Counter
	mShed     *metrics.Counter
}

type routeEntry struct {
	az      string
	expires time.Time
	reuses  uint64
}

// Controller is the admission gate. Construct with New; the zero value is
// not usable.
type Controller struct {
	mu       sync.Mutex
	cfg      Config
	enabled  bool
	nextID   uint64
	inflight int
	fns      map[workload.ID]*fnState
	routes   map[workload.ID]routeEntry

	mInflight *metrics.Gauge
	mUtil     *metrics.Gauge
	mRouteHit *metrics.Counter
}

// New returns an enabled controller for cfg.
func New(cfg Config) (*Controller, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Controller{
		cfg:     cfg,
		enabled: true,
		fns:     make(map[workload.ID]*fnState),
		routes:  make(map[workload.ID]routeEntry),
	}
	if reg := cfg.Metrics; reg != nil {
		c.mInflight = reg.Gauge("sky_admission_inflight", "Requests currently admitted and in flight.")
		c.mUtil = reg.Gauge("sky_admission_utilization", "Admitted concurrency as a fraction of slots.")
		c.mRouteHit = reg.Counter("sky_admission_route_reuse_total", "Routing decisions served from the pressure cache.")
	}
	return c, nil
}

// limit is the admitted-concurrency ceiling. Callers hold mu.
func (c *Controller) limit() int {
	lim := int(c.cfg.TargetUtil * float64(c.cfg.Slots))
	if lim < 1 {
		lim = 1
	}
	return lim
}

func (c *Controller) fn(w workload.ID) *fnState {
	st, ok := c.fns[w]
	if !ok {
		st = c.newFnState(w) //lint:allow hotalloc -- first sighting of a function: one-time state construction
		c.fns[w] = st
	}
	return st
}

// newFnState builds the per-function bookkeeping the first time a
// workload shows up. Deliberately off the admission hot path: histograms
// and labeled counters allocate freely here, once per function, never per
// request. Callers hold mu.
func (c *Controller) newFnState(w workload.ID) *fnState {
	st := &fnState{observed: metrics.NewHistogram(metrics.ExpBuckets(1, 1.5, 31))}
	if spec, ok := workload.Get(w); ok {
		st.serviceMS = spec.BaseMS
	} else {
		st.serviceMS = 1000
	}
	if reg := c.cfg.Metrics; reg != nil {
		lbl := metrics.L("fn", w.String())
		st.mAdmitted = reg.Counter("sky_admission_admitted_total", "Requests admitted past the gate.", lbl)
		st.mShed = reg.Counter("sky_admission_shed_total", "Requests shed with 429 at the gate.", lbl)
	}
	return st
}

// Seed installs a characterization-derived mean service time (milliseconds)
// for w, replacing the catalog fallback. Later observations still move it.
func (c *Controller) Seed(w workload.ID, serviceMS float64) {
	if c == nil || serviceMS <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.fn(w)
	st.serviceMS = serviceMS
	st.seeded = true
}

// SetEnabled flips the gate. A disabled controller admits everything (still
// tracking concurrency and service times) — the "no-admission" arm.
func (c *Controller) SetEnabled(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enabled = on
}

// Enabled reports whether the gate sheds.
func (c *Controller) Enabled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.enabled
}

// Admit asks the gate for weight concurrent slots for w at time now — one
// slot per invocation, so a burst of N holds N. On success the returned
// ticket must be released with Done. On overload it returns a *ShedError
// (wrapping ErrShed) and no slots are consumed. The admitted path runs
// once per request under skyd's handler and stays allocation-free
// (hotalloc-enforced); only the shed path constructs an error.
//
//lint:hotpath
func (c *Controller) Admit(now time.Time, w workload.ID, weight int) (Ticket, error) {
	if weight < 1 {
		weight = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.fn(w)
	lim := c.limit()
	if c.enabled && c.inflight+weight > lim {
		return Ticket{}, c.shedLocked(w, st, lim) //lint:allow hotalloc -- shed path: building the 429 is off the admitted fast path
	}
	c.inflight += weight
	st.inflight += weight
	st.admitted++
	st.mAdmitted.Inc()
	c.nextID++
	c.publishLocked()
	return Ticket{id: c.nextID, fn: w, weight: weight, at: now}, nil
}

// shedLocked records the rejection and builds the typed 429 detail.
// Callers hold mu.
func (c *Controller) shedLocked(w workload.ID, st *fnState, lim int) *ShedError {
	st.shed++
	st.mShed.Inc()
	return &ShedError{
		Workload:    w,
		RetryAfter:  c.retryAfterLocked(st),
		Inflight:    c.inflight,
		Limit:       lim,
		Utilization: float64(c.inflight) / float64(c.cfg.Slots),
	}
}

// retryAfterLocked estimates when a slot frees: the mean service time of the
// rejected function scaled by how deep past the limit the platform is, then
// clamped to the configured window. Callers hold mu.
func (c *Controller) retryAfterLocked(st *fnState) time.Duration {
	over := float64(c.inflight-c.limit()) + 1
	frac := over / float64(c.limit())
	if frac < 0.25 {
		frac = 0.25
	}
	d := time.Duration(st.serviceMS * frac * float64(time.Millisecond))
	if d < c.cfg.MinRetryAfter {
		d = c.cfg.MinRetryAfter
	}
	if d > c.cfg.MaxRetryAfter {
		d = c.cfg.MaxRetryAfter
	}
	return d
}

// Done releases a ticket's slot and, when the request succeeded, feeds the
// observed service time (milliseconds) into the capacity estimate. Runs
// once per completed request; allocation-free like Admit.
//
//lint:hotpath
func (c *Controller) Done(t Ticket, now time.Time, observedMS float64, ok bool) {
	if t.id == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.fn(t.fn)
	c.inflight -= t.weight
	if c.inflight < 0 {
		c.inflight = 0
	}
	st.inflight -= t.weight
	if st.inflight < 0 {
		st.inflight = 0
	}
	if ok && observedMS > 0 {
		a := c.cfg.EWMAAlpha
		st.serviceMS = (1-a)*st.serviceMS + a*observedMS
		st.observed.Observe(observedMS)
	}
	c.publishLocked()
}

func (c *Controller) publishLocked() {
	c.mInflight.Set(float64(c.inflight))
	c.mUtil.Set(float64(c.inflight) / float64(c.cfg.Slots))
}

// Utilization returns admitted concurrency over slots.
func (c *Controller) Utilization() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return float64(c.inflight) / float64(c.cfg.Slots)
}

// Pressured reports whether utilization has crossed PressureUtil — the
// point where skyd stops re-running the routing strategy per request and
// reuses pinned decisions.
func (c *Controller) Pressured() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return float64(c.inflight) >= c.cfg.PressureUtil*float64(c.cfg.Slots)
}

// CapacityRPS is the Jindal-style sustainable request rate for w given the
// current service-time estimate: TargetUtil×Slots×1000/serviceMS.
func (c *Controller) CapacityRPS(w workload.ID) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.fn(w)
	return c.cfg.TargetUtil * float64(c.cfg.Slots) * 1000 / st.serviceMS
}

// ServiceMS returns the gate's current mean service-time estimate for w in
// milliseconds — seeded from characterizations, EWMA-updated from observed
// completions. The warm-pool sizer turns it into instance counts.
func (c *Controller) ServiceMS(w workload.ID) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fn(w).serviceMS
}

// RouteFor returns the pinned routing decision for w if one is cached,
// fresh, and the controller is under pressure. The bool reports a usable
// hit.
func (c *Controller) RouteFor(w workload.ID, now time.Time) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if float64(c.inflight) < c.cfg.PressureUtil*float64(c.cfg.Slots) {
		return "", false
	}
	e, ok := c.routes[w]
	if !ok || now.After(e.expires) {
		return "", false
	}
	e.reuses++
	c.routes[w] = e
	c.mRouteHit.Inc()
	return e.az, true
}

// RememberRoute pins a freshly computed routing decision for w until
// now+RouteTTL, for reuse while pressure lasts.
func (c *Controller) RememberRoute(w workload.ID, az string, now time.Time) {
	if az == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.routes[w] = routeEntry{az: az, expires: now.Add(c.cfg.RouteTTL)}
}

// Retune applies a control-plane update. Zero-valued fields keep their
// current setting; Enabled always applies.
type Retune struct {
	Enabled      *bool   `json:"enabled,omitempty"`
	Slots        int     `json:"slots,omitempty"`
	TargetUtil   float64 `json:"targetUtil,omitempty"`
	PressureUtil float64 `json:"pressureUtil,omitempty"`
	EWMAAlpha    float64 `json:"ewmaAlpha,omitempty"`
}

// Apply validates and installs the retune.
func (c *Controller) Apply(r Retune) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	next := c.cfg
	if r.Slots != 0 {
		next.Slots = r.Slots
	}
	if r.TargetUtil != 0 {
		next.TargetUtil = r.TargetUtil
	}
	if r.PressureUtil != 0 {
		next.PressureUtil = r.PressureUtil
	}
	if r.EWMAAlpha != 0 {
		next.EWMAAlpha = r.EWMAAlpha
	}
	if err := next.Validate(); err != nil {
		return err
	}
	c.cfg = next
	if r.Enabled != nil {
		c.enabled = *r.Enabled
	}
	c.publishLocked()
	return nil
}

// FnSnapshot is one function's view in a Snapshot.
type FnSnapshot struct {
	Workload    string          `json:"workload"`
	ServiceMS   float64         `json:"serviceMS"`
	Seeded      bool            `json:"seeded"`
	CapacityRPS float64         `json:"capacityRPS"`
	Inflight    int             `json:"inflight"`
	Admitted    uint64          `json:"admitted"`
	Shed        uint64          `json:"shed"`
	Observed    metrics.Summary `json:"observedMS"`
}

// Snapshot is the full gate state served by GET /v1/admission.
type Snapshot struct {
	Enabled      bool         `json:"enabled"`
	Slots        int          `json:"slots"`
	TargetUtil   float64      `json:"targetUtil"`
	PressureUtil float64      `json:"pressureUtil"`
	Limit        int          `json:"limit"`
	Inflight     int          `json:"inflight"`
	Utilization  float64      `json:"utilization"`
	Pressured    bool         `json:"pressured"`
	Functions    []FnSnapshot `json:"functions"`
}

// Snapshot captures the controller state. Functions are sorted by name so
// the output is stable.
func (c *Controller) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Snapshot{
		Enabled:      c.enabled,
		Slots:        c.cfg.Slots,
		TargetUtil:   c.cfg.TargetUtil,
		PressureUtil: c.cfg.PressureUtil,
		Limit:        c.limit(),
		Inflight:     c.inflight,
		Utilization:  float64(c.inflight) / float64(c.cfg.Slots),
		Pressured:    float64(c.inflight) >= c.cfg.PressureUtil*float64(c.cfg.Slots),
	}
	for w, st := range c.fns {
		s.Functions = append(s.Functions, FnSnapshot{
			Workload:    w.String(),
			ServiceMS:   st.serviceMS,
			Seeded:      st.seeded,
			CapacityRPS: c.cfg.TargetUtil * float64(c.cfg.Slots) * 1000 / st.serviceMS,
			Inflight:    st.inflight,
			Admitted:    st.admitted,
			Shed:        st.shed,
			Observed:    st.observed.Snapshot().Summary(),
		})
	}
	sort.Slice(s.Functions, func(i, j int) bool {
		return s.Functions[i].Workload < s.Functions[j].Workload
	})
	return s
}
