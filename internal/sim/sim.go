// Package sim implements a deterministic discrete-event simulation (DES)
// kernel with cooperative processes.
//
// The kernel drives every experiment in this repository. Model code is
// written in one of two styles:
//
//   - Callbacks: Env.Schedule(d, fn) runs fn at virtual time now+d. Cheap,
//     used for mechanical bookkeeping (function-instance expiry, drift
//     ticks).
//   - Processes: Env.Go(name, fn) starts a cooperative process — a goroutine
//     that may block on Proc.Sleep and Proc.Wait. Processes make client-side
//     logic (pollers issuing requests, routers retrying invocations) read
//     like straight-line distributed-systems code while remaining fully
//     deterministic: the scheduler and at most one process run at any
//     instant, hand over hand.
//
// Events at equal virtual timestamps execute in schedule order (a strictly
// increasing sequence number breaks ties), so a run is a pure function of
// the model and its RNG seeds.
package sim

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrAborted is the cause recorded by a process that was shut down by
// Env.Shutdown while blocked.
var ErrAborted = errors.New("sim: process aborted by shutdown")

// errAbortSentinel is panicked inside a blocked process to unwind it during
// shutdown; the process wrapper recovers it.
type errAbortSentinel struct{}

// item is a scheduled occurrence in the event queue.
type item struct {
	at  time.Duration
	seq uint64
	fn  func()
}

// eventHeap is a binary min-heap of items by (at, seq), stored by value
// with hand-rolled sift functions. The container/heap interface would box
// every pushed item into an interface and allocate it on the heap; at tens
// of millions of events per run (EX-9, BenchmarkShardedMesh) that
// allocation — and the GC scan load of a pointer-dense queue — dominates
// the engine, so the queue stays flat.
type eventHeap []item

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(it item) {
	*h = append(*h, it) //lint:allow hotalloc -- amortized queue growth; steady state reuses capacity
	i := len(*h) - 1
	q := *h
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

// pop removes and returns the minimum item. Callers must check Len first.
func (h *eventHeap) pop() item {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = item{} // release the fn closure to the GC
	*h = q[:n]
	q = q[:n]
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		small := left
		if right := left + 1; right < n && q.less(right, left) {
			small = right
		}
		if !q.less(small, i) {
			break
		}
		q[i], q[small] = q[small], q[i]
		i = small
	}
	return top
}

// Env is a simulation environment: a virtual clock plus an event queue.
// An Env must not be shared across OS threads while running; the kernel
// enforces single-threaded model execution by construction.
type Env struct {
	epoch   time.Time
	now     time.Duration
	queue   eventHeap
	seq     uint64
	procs   map[*Proc]struct{}
	failure error
	running bool
	// fastForward, once set, makes RunPaced stop sleeping between events:
	// the remaining queue drains at full speed. It is the one cross-thread
	// input the kernel accepts — a shutdown knob for live servers whose
	// queues hold pre-scheduled far-future events (the drift timeline)
	// that would otherwise pace out for hours. It never reorders events,
	// so determinism of the event sequence is unaffected.
	fastForward atomic.Bool

	// group/shard identify this Env as a member of a Sharded group (see
	// shard.go); both are zero for a standalone single-queue environment.
	// postSeq numbers this shard's cross-shard sends so the merge barrier
	// can order same-instant arrivals deterministically.
	group   *Sharded
	shard   int
	postSeq uint64
}

// NewEnv returns an environment whose virtual clock starts at epoch.
func NewEnv(epoch time.Time) *Env {
	return &Env{
		epoch: epoch,
		procs: make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual wall-clock time.
func (e *Env) Now() time.Time { return e.epoch.Add(e.now) }

// Elapsed returns virtual time elapsed since the epoch.
func (e *Env) Elapsed() time.Duration { return e.now }

// Schedule runs fn at virtual time Now()+d. A negative d schedules at the
// current instant (after events already queued for this instant).
// Scheduling is the kernel's innermost operation — tens of millions of
// calls per run — so it must stay allocation-free (hotalloc-enforced).
//
//lint:hotpath
func (e *Env) Schedule(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.seq++
	e.queue.push(item{at: e.now + d, seq: e.seq, fn: fn})
}

// Fail aborts the run: Run returns err after the current event completes.
// The first failure wins.
func (e *Env) Fail(err error) {
	if e.failure == nil {
		e.failure = err
	}
}

// Run executes events until the queue is empty or a failure is recorded.
// Processes still blocked when the queue drains are aborted so their
// goroutines exit; their Err reports ErrAborted. On a sharded member the
// call runs the whole group (see Sharded.Run).
func (e *Env) Run() error {
	if e.group != nil {
		return e.group.Run()
	}
	return e.run(-1, 0)
}

// RunFor executes events for at most d of virtual time. Events scheduled
// beyond the horizon stay queued; the clock advances exactly to the horizon.
// Blocked processes are left intact so a subsequent RunFor can resume them.
// On a sharded member the call runs the whole group (see Sharded.RunFor).
func (e *Env) RunFor(d time.Duration) error {
	if e.group != nil {
		return e.group.run(e.now + d)
	}
	return e.run(e.now+d, 0)
}

// FinishFast makes a paced run (RunPaced) stop sleeping between events from
// the next event on, so the remaining queue drains at full speed. Safe to
// call from any goroutine, before or during the run; it is how a live
// server shuts down promptly without abandoning queued work. On a sharded
// member the flag fans out to every shard.
func (e *Env) FinishFast() {
	if e.group != nil {
		e.group.FinishFast()
		return
	}
	e.fastForward.Store(true)
}

// RunPaced is Run with real-time pacing for demos: between consecutive
// events the scheduler sleeps the virtual gap divided by speedup (e.g.
// speedup=1000 plays one virtual second per wall millisecond). Sharded
// groups never pace against the wall clock, so RunPaced rejects grouped
// members.
func (e *Env) RunPaced(speedup float64) error {
	if speedup <= 0 {
		return fmt.Errorf("sim: non-positive speedup %v", speedup)
	}
	if e.group != nil {
		return errors.New("sim: RunPaced is not supported on a sharded environment")
	}
	return e.run(-1, speedup)
}

// run is the event loop proper: pop, advance the clock, fire. Per-event
// work must not allocate (hotalloc-enforced) — the queue itself is a flat
// value heap for the same reason.
//
//lint:hotpath
func (e *Env) run(until time.Duration, speedup float64) error {
	if e.running {
		return errors.New("sim: Run re-entered")
	}
	e.running = true
	defer func() { e.running = false }() //lint:allow hotalloc -- one closure per run, not per event

	for e.failure == nil && len(e.queue) > 0 {
		next := e.queue[0]
		if until >= 0 && next.at > until {
			e.now = until
			return nil
		}
		e.queue.pop()
		if gap := next.at - e.now; gap > 0 && speedup > 0 {
			// RunPaced exists to map virtual gaps onto the wall clock for
			// live demos; determinism of the event order is unaffected.
			// Sleeping in short chunks keeps a long inter-event gap from
			// delaying a FinishFast shutdown request.
			const chunk = 25 * time.Millisecond
			remaining := time.Duration(float64(gap) / speedup)
			for remaining > 0 && !e.fastForward.Load() {
				d := remaining
				if d > chunk {
					d = chunk
				}
				time.Sleep(d) //lint:allow nodeterm -- intentional wall-clock pacing
				remaining -= d
			}
		}
		e.now = next.at
		next.fn()
	}
	if until >= 0 && e.failure == nil {
		e.now = until
		return nil
	}
	if e.failure != nil {
		e.drainProcs()
		return e.failure
	}
	e.drainProcs()
	return nil
}

// Shutdown aborts all live processes. It is safe to call when idle.
func (e *Env) Shutdown() { e.drainProcs() }

// drainProcs force-unwinds every blocked process so no goroutine leaks.
func (e *Env) drainProcs() {
	for p := range e.procs {
		if p.blocked {
			p.abort()
		}
	}
}

// LiveProcs reports the number of processes that have started but not
// finished.
func (e *Env) LiveProcs() int { return len(e.procs) }

// ---------------------------------------------------------------------------
// Processes

// Proc is a cooperative simulation process. Its methods must only be called
// from within the process's own function.
type Proc struct {
	env     *Env
	name    string
	resume  chan resumeMsg
	yielded chan struct{}
	blocked bool
	err     error
	done    *Event
}

type resumeMsg struct {
	val   any
	abort bool
}

// Go starts fn as a new process. The returned Proc's Done event triggers
// (with the value nil) when fn returns.
func (e *Env) Go(name string, fn func(p *Proc) error) *Proc {
	p := &Proc{
		env:     e,
		name:    name,
		resume:  make(chan resumeMsg),
		yielded: make(chan struct{}),
	}
	p.done = NewEvent(e)
	e.procs[p] = struct{}{}
	// The process starts at the current instant, via the queue, so that Go
	// during another process's execution is deterministic.
	e.Schedule(0, func() {
		go p.body(fn)
		<-p.yielded
	})
	return p
}

func (p *Proc) body(fn func(p *Proc) error) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(errAbortSentinel); ok {
				p.err = ErrAborted
			} else {
				// Re-panicking here would crash on the process goroutine
				// with a useless stack for the scheduler; record and fail
				// the run instead.
				p.err = fmt.Errorf("sim: process %q panicked: %v", p.name, r)
				p.env.Fail(p.err)
			}
		}
		delete(p.env.procs, p)
		p.done.Trigger(nil)
		p.yielded <- struct{}{}
	}()
	p.err = fn(p)
}

// yield hands control back to the scheduler and blocks until resumed.
func (p *Proc) yield() resumeMsg {
	p.blocked = true
	p.yielded <- struct{}{}
	msg := <-p.resume
	p.blocked = false
	if msg.abort {
		panic(errAbortSentinel{})
	}
	return msg
}

// wake schedules delivery of val to the blocked process at the current
// instant.
func (p *Proc) wake(val any) {
	p.resume <- resumeMsg{val: val}
	<-p.yielded
}

func (p *Proc) abort() {
	p.resume <- resumeMsg{abort: true}
	<-p.yielded
}

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Env returns the owning environment.
func (p *Proc) Env() *Env { return p.env }

// Err returns the error the process function returned (nil until the
// process finishes; ErrAborted if it was shut down while blocked).
func (p *Proc) Err() error { return p.err }

// Done returns an event that triggers when the process finishes.
func (p *Proc) Done() *Event { return p.done }

// Sleep blocks the process for d of virtual time.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.env.Schedule(d, func() { p.wake(nil) })
	p.yield()
}

// Wait blocks until ev triggers and returns the value it was triggered
// with. If ev already triggered, Wait returns immediately without yielding.
func (p *Proc) Wait(ev *Event) any {
	if ev.triggered {
		return ev.val
	}
	ev.waiters = append(ev.waiters, p)
	return p.yield().val
}

// WaitAll blocks until every event has triggered and returns their values
// in order.
func (p *Proc) WaitAll(evs ...*Event) []any {
	vals := make([]any, len(evs))
	for i, ev := range evs {
		vals[i] = p.Wait(ev)
	}
	return vals
}

// ---------------------------------------------------------------------------
// Events

// Event is a one-shot occurrence processes can wait on. Triggering an
// already-triggered event is a no-op.
type Event struct {
	env       *Env
	triggered bool
	val       any
	waiters   []*Proc
}

// NewEvent returns an untriggered event bound to e.
func NewEvent(e *Env) *Event { return &Event{env: e} }

// Trigger fires the event, waking all waiters at the current instant in
// registration order. Subsequent Wait calls return immediately with val.
func (ev *Event) Trigger(val any) {
	if ev.triggered {
		return
	}
	ev.triggered = true
	ev.val = val
	waiters := ev.waiters
	ev.waiters = nil
	for _, p := range waiters {
		proc := p
		ev.env.Schedule(0, func() { proc.wake(ev.val) })
	}
}

// Triggered reports whether the event has fired.
func (ev *Event) Triggered() bool { return ev.triggered }

// Value returns the value the event was triggered with (nil before firing).
func (ev *Event) Value() any { return ev.val }
