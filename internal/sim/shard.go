package sim

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Sharded coordinates a group of Envs — shards — under conservative
// sim-time synchronization. Each shard owns a private event queue and
// advances independently inside a bounded window; the group repeatedly:
//
//  1. drains the cross-shard inbox into the target shards' queues in a
//     deterministic order (sorted by arrival time, then source shard, then
//     source post sequence),
//  2. finds T_min, the earliest pending event across all shards,
//  3. runs every shard with pending work up to (but excluding) the window
//     end T_min + lookahead, in parallel worker goroutines,
//  4. meets at a barrier and repeats.
//
// The conservative contract: an event executing inside a window may post to
// another shard only at or beyond the window end — i.e. cross-shard sends
// need a minimum delay of `lookahead` (in this repository: the minimum
// cross-region one-way network latency). Env.SendTo enforces the contract
// and fails the run on violation, so a model bug surfaces as a hard error
// instead of silent nondeterminism.
//
// Because shards only interact through the sorted barrier inbox, the event
// sequence of a sharded run is a pure function of the model and its RNG
// seeds — identical whether windows execute in parallel or one shard at a
// time (the `sequential` test knob), and identical across shard counts as
// long as the model keeps per-shard state on its owning shard.
type Sharded struct {
	epoch     time.Time
	lookahead time.Duration
	shards    []*Env

	// sequential forces windows to execute on one goroutine in shard
	// order. Results are identical either way (asserted by tests); the
	// knob exists so that equivalence is directly testable.
	sequential bool

	mu    sync.Mutex
	inbox []crossPost // guarded by mu

	// running and windowEnd are written by the coordinating goroutine only
	// at barriers, while every worker is parked on its work channel; the
	// channel handshake orders those writes before any worker read.
	running   bool
	windowEnd time.Duration
}

// crossPost is a scheduled occurrence in transit between shards. The
// (at, src, srcSeq) triple totally orders deliveries, making the merge
// deterministic regardless of which worker appended first.
type crossPost struct {
	at     time.Duration
	src    int
	srcSeq uint64
	target int
	fn     func()
}

// MinLookahead is the floor for the synchronization horizon. A zero or
// negative lookahead would force zero-length windows.
const MinLookahead = time.Microsecond

// NewSharded returns a group of n shards whose virtual clocks start at
// epoch. n is clamped to at least 1; lookahead is clamped to MinLookahead.
// Shard 0 is the conventional "control" shard (clients, routers); model
// code assigns the rest.
func NewSharded(epoch time.Time, n int, lookahead time.Duration) *Sharded {
	if n < 1 {
		n = 1
	}
	if lookahead < MinLookahead {
		lookahead = MinLookahead
	}
	g := &Sharded{epoch: epoch, lookahead: lookahead}
	g.shards = make([]*Env, n)
	for i := range g.shards {
		e := NewEnv(epoch)
		e.group = g
		e.shard = i
		g.shards[i] = e
	}
	return g
}

// NumShards returns the number of shards in the group.
func (g *Sharded) NumShards() int { return len(g.shards) }

// Shard returns the i'th shard environment.
func (g *Sharded) Shard(i int) *Env { return g.shards[i] }

// Control returns shard 0, the conventional home for client-side model
// code.
func (g *Sharded) Control() *Env { return g.shards[0] }

// Lookahead returns the synchronization horizon.
func (g *Sharded) Lookahead() time.Duration { return g.lookahead }

// SetSequential forces windows to run one shard at a time on the calling
// goroutine. The event sequence is identical to parallel execution; tests
// use the knob to assert exactly that.
func (g *Sharded) SetSequential(v bool) { g.sequential = v }

// Run executes events until every shard's queue is empty (and the inbox is
// drained) or a failure is recorded on any shard. On a clean drain all
// shard clocks advance to the time of the globally last event, matching the
// single-queue engine.
func (g *Sharded) Run() error { return g.run(-1) }

// RunFor executes events for at most d of virtual time past the latest
// shard clock. Events beyond the horizon stay queued; every shard clock
// advances exactly to the horizon.
func (g *Sharded) RunFor(d time.Duration) error { return g.run(g.maxNow() + d) }

// FinishFast forwards to every shard. Sharded groups never pace against the
// wall clock, so this only matters for model code that consults the flag.
func (g *Sharded) FinishFast() {
	for _, s := range g.shards {
		s.fastForward.Store(true)
	}
}

// Shutdown aborts all live processes on every shard. Safe to call when
// idle.
func (g *Sharded) Shutdown() {
	for _, s := range g.shards {
		s.drainProcs()
	}
}

// LiveProcs reports the number of live processes across all shards.
func (g *Sharded) LiveProcs() int {
	n := 0
	for _, s := range g.shards {
		n += len(s.procs)
	}
	return n
}

func (g *Sharded) maxNow() time.Duration {
	max := g.shards[0].now
	for _, s := range g.shards[1:] {
		if s.now > max {
			max = s.now
		}
	}
	return max
}

// post appends a cross-shard occurrence to the inbox. Called from worker
// goroutines mid-window and from model setup code between runs.
func (g *Sharded) post(p crossPost) {
	g.mu.Lock()
	g.inbox = append(g.inbox, p)
	g.mu.Unlock()
}

// deliver drains the inbox into the target shards' queues. Only the
// coordinator calls it, at barriers, so the target heaps are quiescent.
// Sorting by (at, src, srcSeq) makes delivery order — and therefore the
// sequence numbers assigned on the target shard — deterministic.
func (g *Sharded) deliver() {
	g.mu.Lock()
	pending := g.inbox
	g.inbox = nil
	g.mu.Unlock()
	if len(pending) == 0 {
		return
	}
	sort.Slice(pending, func(i, j int) bool {
		a, b := pending[i], pending[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.srcSeq < b.srcSeq
	})
	for _, p := range pending {
		s := g.shards[p.target]
		s.seq++
		s.queue.push(item{at: p.at, seq: s.seq, fn: p.fn})
	}
}

// next returns the earliest pending event time across all shards.
func (g *Sharded) next() (time.Duration, bool) {
	var min time.Duration
	found := false
	for _, s := range g.shards {
		if len(s.queue) == 0 {
			continue
		}
		if !found || s.queue[0].at < min {
			min = s.queue[0].at
		}
		found = true
	}
	return min, found
}

// firstFailure returns the failure of the lowest-numbered failed shard.
// Shard order (not wall-clock arrival order) picks the winner so the
// reported error is deterministic under parallel execution.
func (g *Sharded) firstFailure() error {
	for _, s := range g.shards {
		if s.failure != nil {
			return s.failure
		}
	}
	return nil
}

func (g *Sharded) run(until time.Duration) error {
	if g.running {
		return errors.New("sim: Run re-entered")
	}
	g.running = true
	defer func() { g.running = false }()

	parallel := !g.sequential && len(g.shards) > 1
	var work []chan time.Duration
	var done chan struct{}
	if parallel {
		work = make([]chan time.Duration, len(g.shards))
		done = make(chan struct{}, len(g.shards))
		for i := range g.shards {
			work[i] = make(chan time.Duration)
			s := g.shards[i]
			ch := work[i]
			go func() {
				for end := range ch {
					s.runWindow(end)
					done <- struct{}{}
				}
			}()
		}
		defer func() {
			for _, ch := range work {
				close(ch)
			}
		}()
	}

	for {
		g.deliver()
		if g.firstFailure() != nil {
			break
		}
		tmin, ok := g.next()
		if !ok {
			break
		}
		if until >= 0 && tmin > until {
			for _, s := range g.shards {
				if s.now < until {
					s.now = until
				}
			}
			return nil
		}
		end := tmin + g.lookahead
		if until >= 0 && end > until {
			// Include events scheduled exactly at the horizon, matching the
			// single-queue engine's `next.at > until` stop condition.
			end = until + 1
		}
		g.windowEnd = end
		busy := 0
		for i, s := range g.shards {
			if len(s.queue) == 0 || s.queue[0].at >= end {
				continue
			}
			if parallel {
				work[i] <- end
				busy++
			} else {
				s.runWindow(end)
			}
		}
		for ; busy > 0; busy-- {
			<-done
		}
	}

	if err := g.firstFailure(); err != nil {
		g.Shutdown()
		return err
	}
	if until >= 0 {
		for _, s := range g.shards {
			if s.now < until {
				s.now = until
			}
		}
		return nil
	}
	// Natural drain: align every clock with the globally last event, as a
	// single queue would have.
	max := g.maxNow()
	for _, s := range g.shards {
		s.now = max
	}
	g.Shutdown()
	return nil
}

// errCrossEngine is reported when SendTo targets an Env outside the
// caller's group.
var errCrossEngine = errors.New("sim: SendTo target belongs to a different engine")

// SendTo schedules fn on the target environment at the caller's virtual
// time Now()+d. When target is the caller (or both are ungrouped members of
// the same single-queue run), this is exactly Schedule. Across shards the
// conservative contract applies: the arrival time must fall at or beyond
// the current synchronization window, i.e. d must be at least the group
// lookahead; a violating send fails the run.
func (e *Env) SendTo(target *Env, d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	if target == e {
		e.Schedule(d, fn)
		return
	}
	g := e.group
	if g == nil || target.group != g {
		e.Fail(errCrossEngine)
		return
	}
	at := e.now + d
	if g.running && at < g.windowEnd {
		e.Fail(fmt.Errorf(
			"sim: determinism violation: cross-shard send from shard %d at %v arrives at %v, inside the window ending %v (need delay >= lookahead %v)",
			e.shard, e.now, at, g.windowEnd, g.lookahead))
		return
	}
	e.postSeq++
	g.post(crossPost{at: at, src: e.shard, srcSeq: e.postSeq, target: target.shard, fn: fn})
}

// Shard returns the shard index of e within its group (0 when ungrouped).
func (e *Env) Shard() int { return e.shard }

// Group returns the Sharded group that owns e, or nil for a standalone
// single-queue environment.
func (e *Env) Group() *Sharded { return e.group }

// runWindow executes pending events strictly before end. The clock only
// advances to executed events (never to the window end), so a shard that
// idles through several windows jumps straight to its next event, exactly
// as the single-queue engine would.
func (e *Env) runWindow(end time.Duration) {
	for e.failure == nil && len(e.queue) > 0 && e.queue[0].at < end {
		next := e.queue.pop()
		e.now = next.at
		next.fn()
	}
}
