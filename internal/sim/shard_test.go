package sim

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"
)

// buildRing wires a ping ring over the group: each shard schedules a local
// tick and forwards a token to the next shard with a delay of at least the
// lookahead. Every shard records its own execution log (one writer per
// slice, so parallel windows stay race-free).
func buildRing(g *Sharded, hops int) [][]string {
	n := g.NumShards()
	logs := make([][]string, n)
	la := g.Lookahead()
	var forward func(shard, hop int)
	forward = func(shard, hop int) {
		e := g.Shard(shard)
		logs[shard] = append(logs[shard], fmt.Sprintf("t=%v hop=%d", e.Elapsed(), hop))
		// Local bookkeeping at the same instant exercises intra-window
		// ordering alongside the cross-shard traffic.
		e.Schedule(0, func() {
			logs[shard] = append(logs[shard], fmt.Sprintf("t=%v local hop=%d", e.Elapsed(), hop))
		})
		if hop >= hops {
			return
		}
		next := (shard + 1) % n
		e.SendTo(g.Shard(next), la+time.Duration(hop%3)*time.Millisecond, func() {
			forward(next, hop+1)
		})
	}
	g.Control().Schedule(0, func() { forward(0, 0) })
	return logs
}

func TestShardedParallelMatchesSequential(t *testing.T) {
	run := func(sequential bool) [][]string {
		g := NewSharded(epoch, 4, time.Millisecond)
		g.SetSequential(sequential)
		logs := buildRing(g, 40)
		if err := g.Run(); err != nil {
			t.Fatal(err)
		}
		return logs
	}
	seq := run(true)
	par := run(false)
	par2 := run(false)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel trace diverged from sequential:\nseq: %v\npar: %v", seq, par)
	}
	if !reflect.DeepEqual(par, par2) {
		t.Fatalf("parallel replay diverged:\n1: %v\n2: %v", par, par2)
	}
	total := 0
	for _, l := range seq {
		total += len(l)
	}
	if total != 2*41 {
		t.Fatalf("expected %d log lines, got %d", 2*41, total)
	}
}

func TestShardedSendExactlyAtHorizon(t *testing.T) {
	// A send whose arrival lands exactly on the window end is legal: the
	// conservative check forbids arrivals strictly inside the window.
	g := NewSharded(epoch, 2, time.Millisecond)
	var arrived time.Duration
	g.Control().Schedule(0, func() {
		g.Control().SendTo(g.Shard(1), g.Lookahead(), func() {
			arrived = g.Shard(1).Elapsed()
		})
	})
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if arrived != time.Millisecond {
		t.Fatalf("arrival at %v, want %v", arrived, time.Millisecond)
	}
}

func TestShardedConservativeViolation(t *testing.T) {
	g := NewSharded(epoch, 2, time.Millisecond)
	g.Control().Schedule(0, func() {
		g.Control().SendTo(g.Shard(1), 0, func() {})
	})
	err := g.Run()
	if err == nil || !strings.Contains(err.Error(), "determinism violation") {
		t.Fatalf("want determinism violation, got %v", err)
	}
}

func TestShardedDegenerateConfigs(t *testing.T) {
	// Zero shards clamps to one; non-positive lookahead clamps to the floor.
	g := NewSharded(epoch, 0, 0)
	if g.NumShards() != 1 {
		t.Fatalf("NumShards = %d, want 1", g.NumShards())
	}
	if g.Lookahead() != MinLookahead {
		t.Fatalf("Lookahead = %v, want %v", g.Lookahead(), MinLookahead)
	}
	// A one-shard group behaves exactly like a plain Env: SendTo to itself
	// is Schedule, and Run drains through the member dispatch.
	var order []int
	e := g.Control()
	e.Schedule(2*time.Millisecond, func() { order = append(order, 2) })
	e.Schedule(time.Millisecond, func() {
		order = append(order, 1)
		e.SendTo(e, 0, func() { order = append(order, 10) })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 10, 2}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestShardedSendToForeignEngine(t *testing.T) {
	a := NewEnv(epoch)
	b := NewEnv(epoch)
	a.Schedule(0, func() { a.SendTo(b, time.Second, func() {}) })
	if err := a.Run(); err != errCrossEngine {
		t.Fatalf("want errCrossEngine, got %v", err)
	}
}

func TestShardedRunForHorizon(t *testing.T) {
	g := NewSharded(epoch, 2, time.Millisecond)
	var ran []string
	g.Control().Schedule(5*time.Millisecond, func() { ran = append(ran, "at-horizon") })
	g.Shard(1).Schedule(7*time.Millisecond, func() { ran = append(ran, "beyond") })
	if err := g.RunFor(5 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// The event exactly at the horizon runs (matching the single-queue
	// engine); the later one stays queued; every clock sits at the horizon.
	if !reflect.DeepEqual(ran, []string{"at-horizon"}) {
		t.Fatalf("ran = %v", ran)
	}
	for i := 0; i < g.NumShards(); i++ {
		if got := g.Shard(i).Elapsed(); got != 5*time.Millisecond {
			t.Fatalf("shard %d elapsed = %v, want 5ms", i, got)
		}
	}
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ran, []string{"at-horizon", "beyond"}) {
		t.Fatalf("after drain ran = %v", ran)
	}
}

func TestShardedElapsedAlignsOnDrain(t *testing.T) {
	g := NewSharded(epoch, 3, time.Millisecond)
	g.Shard(2).Schedule(9*time.Millisecond, func() {})
	g.Control().Schedule(time.Millisecond, func() {})
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.NumShards(); i++ {
		if got := g.Shard(i).Elapsed(); got != 9*time.Millisecond {
			t.Fatalf("shard %d elapsed = %v, want 9ms", i, got)
		}
	}
}

func TestShardedFinishFastDrains(t *testing.T) {
	g := NewSharded(epoch, 2, time.Millisecond)
	logs := buildRing(g, 10)
	// FinishFast through a member must fan out to every shard and leave the
	// drain untouched — sharded groups never pace, so the flag is inert for
	// ordering but must still reach model code that consults it.
	g.Shard(1).FinishFast()
	if err := g.Control().Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.NumShards(); i++ {
		if !g.Shard(i).fastForward.Load() {
			t.Fatalf("shard %d fastForward not set", i)
		}
	}
	total := 0
	for _, l := range logs {
		total += len(l)
	}
	if total != 2*11 {
		t.Fatalf("expected %d log lines, got %d", 2*11, total)
	}
}

func TestShardedProcsAcrossShards(t *testing.T) {
	g := NewSharded(epoch, 2, time.Millisecond)
	server, client := g.Shard(1), g.Control()
	reply := NewEvent(client)
	request := NewEvent(server)
	server.Go("server", func(p *Proc) error {
		val := p.Wait(request)
		// Respond after a service time; the reply event lives on the
		// client shard and is triggered there by the delivered send.
		p.Sleep(3 * time.Millisecond)
		server.SendTo(client, g.Lookahead(), func() { reply.Trigger(val.(int) * 2) })
		return nil
	})
	var got int
	var at time.Duration
	client.Go("client", func(p *Proc) error {
		p.Sleep(2 * time.Millisecond)
		client.SendTo(server, g.Lookahead(), func() { request.Trigger(21) })
		got = p.Wait(reply).(int)
		at = client.Elapsed()
		return nil
	})
	if err := client.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("reply = %d, want 42", got)
	}
	// 2ms client sleep + 1ms send + 3ms service + 1ms reply.
	if at != 7*time.Millisecond {
		t.Fatalf("reply at %v, want 7ms", at)
	}
	if g.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d, want 0", g.LiveProcs())
	}
}

func TestShardedFailureIsDeterministic(t *testing.T) {
	// Two shards fail inside the same window; the lowest-numbered shard's
	// failure must win regardless of which worker finished first.
	for trial := 0; trial < 10; trial++ {
		g := NewSharded(epoch, 3, time.Millisecond)
		g.Shard(2).Schedule(time.Millisecond, func() {
			g.Shard(2).Fail(fmt.Errorf("shard 2 exploded"))
		})
		g.Shard(1).Schedule(time.Millisecond, func() {
			g.Shard(1).Fail(fmt.Errorf("shard 1 exploded"))
		})
		err := g.Run()
		if err == nil || err.Error() != "shard 1 exploded" {
			t.Fatalf("trial %d: err = %v, want shard 1 exploded", trial, err)
		}
	}
}

func TestShardedRunPacedRejected(t *testing.T) {
	g := NewSharded(epoch, 2, time.Millisecond)
	if err := g.Control().RunPaced(1000); err == nil {
		t.Fatal("RunPaced on a sharded member should error")
	}
}

// TestShardedRaceStress drives many shards through many small windows with
// dense cross-shard traffic. Run under -race it exercises the barrier
// happens-before edges; the per-shard digests double as a replay check.
func TestShardedRaceStress(t *testing.T) {
	run := func() []uint64 {
		const shards = 8
		g := NewSharded(epoch, shards, time.Millisecond)
		digests := make([]uint64, shards)
		var hop func(shard, stride, depth int)
		hop = func(shard, stride, depth int) {
			e := g.Shard(shard)
			digests[shard] = digests[shard]*1099511628211 + uint64(e.Elapsed()) + uint64(depth)
			if depth == 0 {
				return
			}
			next := (shard + stride) % shards
			e.SendTo(g.Shard(next), g.Lookahead()+time.Duration(depth%5)*100*time.Microsecond, func() {
				hop(next, stride, depth-1)
			})
		}
		for s := 0; s < shards; s++ {
			shard, stride := s, s%3+1
			g.Shard(s).Schedule(time.Duration(s)*250*time.Microsecond, func() {
				hop(shard, stride, 60)
			})
		}
		if err := g.Run(); err != nil {
			t.Fatal(err)
		}
		return digests
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); !reflect.DeepEqual(got, first) {
			t.Fatalf("replay %d diverged: %v vs %v", i, got, first)
		}
	}
}
