package sim

import (
	"errors"
	"testing"
	"time"
)

func TestScheduleFromWithinEvent(t *testing.T) {
	e := NewEnv(epoch)
	var order []string
	e.Schedule(time.Second, func() {
		order = append(order, "outer")
		// Zero-delay schedule from inside an event runs at the same
		// instant, after already-queued events for that instant.
		e.Schedule(0, func() { order = append(order, "inner") })
	})
	e.Schedule(time.Second, func() { order = append(order, "peer") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"outer", "peer", "inner"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRunForBoundaryEventRuns(t *testing.T) {
	e := NewEnv(epoch)
	ran := false
	e.Schedule(time.Minute, func() { ran = true })
	// An event exactly at the horizon executes (next.at > until is the
	// stop condition).
	if err := e.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("boundary event skipped")
	}
}

func TestRunReentryRejected(t *testing.T) {
	e := NewEnv(epoch)
	var reentryErr error
	e.Schedule(time.Second, func() {
		reentryErr = e.Run()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if reentryErr == nil {
		t.Fatal("nested Run accepted")
	}
}

func TestProcErrPropagation(t *testing.T) {
	e := NewEnv(epoch)
	sentinel := errors.New("worker failed")
	p := e.Go("worker", func(p *Proc) error {
		p.Sleep(time.Second)
		return sentinel
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(p.Err(), sentinel) {
		t.Fatalf("proc err = %v", p.Err())
	}
	if p.Name() != "worker" {
		t.Fatalf("name = %q", p.Name())
	}
	if p.Env() != e {
		t.Fatal("Env accessor broken")
	}
}

func TestEventValueBeforeTrigger(t *testing.T) {
	e := NewEnv(epoch)
	ev := NewEvent(e)
	if ev.Triggered() || ev.Value() != nil {
		t.Fatal("untriggered event has state")
	}
	ev.Trigger("x")
	if !ev.Triggered() || ev.Value() != "x" {
		t.Fatal("trigger state wrong")
	}
}

func TestManyWaitersWakeInOrder(t *testing.T) {
	e := NewEnv(epoch)
	ev := NewEvent(e)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Go("w", func(p *Proc) error {
			p.Wait(ev)
			order = append(order, i)
			return nil
		})
	}
	e.Schedule(time.Second, func() { ev.Trigger(nil) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 10 {
		t.Fatalf("only %d waiters woke", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("wake order = %v (want registration order)", order)
		}
	}
}

func TestNegativeSleepClamped(t *testing.T) {
	e := NewEnv(epoch)
	e.Go("p", func(p *Proc) error {
		p.Sleep(-time.Hour)
		if e.Elapsed() != 0 {
			t.Errorf("negative sleep advanced time to %v", e.Elapsed())
		}
		return nil
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFailDuringProcRun(t *testing.T) {
	e := NewEnv(epoch)
	sentinel := errors.New("abort")
	e.Go("p", func(p *Proc) error {
		p.Sleep(time.Second)
		e.Fail(sentinel)
		p.Sleep(time.Hour) // never completes: the run aborts
		return nil
	})
	err := e.Run()
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("leaked %d procs after failure", e.LiveProcs())
	}
}
