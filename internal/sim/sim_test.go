package sim

import (
	"errors"
	"testing"
	"time"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestScheduleOrdering(t *testing.T) {
	e := NewEnv(epoch)
	var order []int
	e.Schedule(2*time.Second, func() { order = append(order, 2) })
	e.Schedule(1*time.Second, func() { order = append(order, 1) })
	e.Schedule(3*time.Second, func() { order = append(order, 3) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if got := e.Elapsed(); got != 3*time.Second {
		t.Fatalf("elapsed = %v", got)
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := NewEnv(epoch)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { order = append(order, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", order)
		}
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEnv(epoch)
	ran := false
	e.Schedule(-time.Hour, func() { ran = true })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran || e.Elapsed() != 0 {
		t.Fatalf("ran=%v elapsed=%v", ran, e.Elapsed())
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEnv(epoch)
	var woke time.Duration
	e.Go("sleeper", func(p *Proc) error {
		p.Sleep(5 * time.Second)
		woke = e.Elapsed()
		return nil
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 5*time.Second {
		t.Fatalf("woke at %v", woke)
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("leaked %d procs", e.LiveProcs())
	}
}

func TestProcEventHandoff(t *testing.T) {
	e := NewEnv(epoch)
	ev := NewEvent(e)
	var got any
	e.Go("waiter", func(p *Proc) error {
		got = p.Wait(ev)
		return nil
	})
	e.Go("trigger", func(p *Proc) error {
		p.Sleep(3 * time.Second)
		ev.Trigger("payload")
		return nil
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "payload" {
		t.Fatalf("got %v", got)
	}
}

func TestWaitOnTriggeredEventReturnsImmediately(t *testing.T) {
	e := NewEnv(epoch)
	ev := NewEvent(e)
	ev.Trigger(42)
	var at time.Duration
	e.Go("late", func(p *Proc) error {
		p.Sleep(time.Second)
		if v := p.Wait(ev); v != 42 {
			t.Errorf("value = %v", v)
		}
		at = e.Elapsed()
		return nil
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != time.Second {
		t.Fatalf("wait blocked: resumed at %v", at)
	}
}

func TestWaitAllOrder(t *testing.T) {
	e := NewEnv(epoch)
	a, b := NewEvent(e), NewEvent(e)
	e.Schedule(2*time.Second, func() { b.Trigger("b") })
	e.Schedule(4*time.Second, func() { a.Trigger("a") })
	var vals []any
	var done time.Duration
	e.Go("joiner", func(p *Proc) error {
		vals = p.WaitAll(a, b)
		done = e.Elapsed()
		return nil
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if vals[0] != "a" || vals[1] != "b" {
		t.Fatalf("vals = %v", vals)
	}
	if done != 4*time.Second {
		t.Fatalf("joined at %v", done)
	}
}

func TestManyProcsDeterministic(t *testing.T) {
	runOnce := func() []string {
		e := NewEnv(epoch)
		var log []string
		for i := 0; i < 50; i++ {
			name := string(rune('a' + i%26))
			d := time.Duration(i%7) * time.Second
			e.Go(name, func(p *Proc) error {
				p.Sleep(d)
				log = append(log, name)
				return nil
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	first := runOnce()
	for trial := 0; trial < 3; trial++ {
		if got := runOnce(); len(got) != len(first) {
			t.Fatal("nondeterministic length")
		} else {
			for i := range got {
				if got[i] != first[i] {
					t.Fatalf("trial %d diverged at %d: %v vs %v", trial, i, got[i], first[i])
				}
			}
		}
	}
}

func TestProcDoneEvent(t *testing.T) {
	e := NewEnv(epoch)
	worker := e.Go("worker", func(p *Proc) error {
		p.Sleep(2 * time.Second)
		return nil
	})
	var joined time.Duration
	e.Go("parent", func(p *Proc) error {
		p.Wait(worker.Done())
		joined = e.Elapsed()
		return nil
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if joined != 2*time.Second {
		t.Fatalf("joined at %v", joined)
	}
}

func TestShutdownAbortsBlockedProcs(t *testing.T) {
	e := NewEnv(epoch)
	never := NewEvent(e)
	p := e.Go("stuck", func(p *Proc) error {
		p.Wait(never)
		return nil
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("leaked %d procs", e.LiveProcs())
	}
	if !errors.Is(p.Err(), ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", p.Err())
	}
}

func TestProcPanicFailsRun(t *testing.T) {
	e := NewEnv(epoch)
	e.Go("boom", func(p *Proc) error {
		panic("kaboom")
	})
	err := e.Run()
	if err == nil {
		t.Fatal("Run returned nil after process panic")
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("leaked %d procs", e.LiveProcs())
	}
}

func TestFailStopsRun(t *testing.T) {
	e := NewEnv(epoch)
	sentinel := errors.New("sentinel")
	ran := false
	e.Schedule(time.Second, func() { e.Fail(sentinel) })
	e.Schedule(2*time.Second, func() { ran = true })
	if err := e.Run(); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if ran {
		t.Fatal("event after failure still ran")
	}
}

func TestRunFor(t *testing.T) {
	e := NewEnv(epoch)
	count := 0
	var tick func()
	tick = func() {
		count++
		e.Schedule(time.Minute, tick)
	}
	e.Schedule(time.Minute, tick)
	if err := e.RunFor(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("count = %d", count)
	}
	if e.Elapsed() != 10*time.Minute {
		t.Fatalf("elapsed = %v", e.Elapsed())
	}
	// Resume for another 5 minutes.
	if err := e.RunFor(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if count != 15 {
		t.Fatalf("after resume count = %d", count)
	}
	e.Shutdown()
}

func TestRunForLeavesBlockedProcsResumable(t *testing.T) {
	e := NewEnv(epoch)
	var woke time.Duration
	e.Go("sleeper", func(p *Proc) error {
		p.Sleep(10 * time.Second)
		woke = e.Elapsed()
		return nil
	})
	if err := e.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if woke != 0 {
		t.Fatal("woke early")
	}
	if err := e.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if woke != 10*time.Second {
		t.Fatalf("woke at %v", woke)
	}
}

func TestNowTracksEpoch(t *testing.T) {
	e := NewEnv(epoch)
	e.Schedule(90*time.Minute, func() {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got, want := e.Now(), epoch.Add(90*time.Minute); !got.Equal(want) {
		t.Fatalf("Now = %v, want %v", got, want)
	}
}

func TestTriggerIdempotent(t *testing.T) {
	e := NewEnv(epoch)
	ev := NewEvent(e)
	ev.Trigger(1)
	ev.Trigger(2)
	if ev.Value() != 1 {
		t.Fatalf("value = %v, want first trigger to win", ev.Value())
	}
}

func TestRunPacedRejectsBadSpeedup(t *testing.T) {
	e := NewEnv(epoch)
	if err := e.RunPaced(0); err == nil {
		t.Fatal("RunPaced(0) accepted")
	}
}

func TestRunPacedExecutes(t *testing.T) {
	e := NewEnv(epoch)
	ran := false
	e.Schedule(time.Millisecond, func() { ran = true })
	if err := e.RunPaced(1e6); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("paced run skipped event")
	}
}

func TestNestedGoFromProc(t *testing.T) {
	e := NewEnv(epoch)
	var order []string
	e.Go("parent", func(p *Proc) error {
		child := e.Go("child", func(c *Proc) error {
			c.Sleep(time.Second)
			order = append(order, "child")
			return nil
		})
		p.Wait(child.Done())
		order = append(order, "parent")
		return nil
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "child" || order[1] != "parent" {
		t.Fatalf("order = %v", order)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEnv(epoch)
		for j := 0; j < 1000; j++ {
			e.Schedule(time.Duration(j)*time.Millisecond, func() {})
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProcHandoff(b *testing.B) {
	e := NewEnv(epoch)
	e.Go("pingpong", func(p *Proc) error {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Millisecond)
		}
		return nil
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
