package sim

import (
	"testing"
	"time"
)

// TestFinishFastDrainsPacedRun proves the shutdown knob: a paced run whose
// queue stretches hours of virtual time into minutes of wall time returns
// almost immediately once FinishFast lands, without dropping events.
func TestFinishFastDrainsPacedRun(t *testing.T) {
	env := NewEnv(epoch)
	fired := 0
	for h := 1; h <= 48; h++ {
		env.Schedule(time.Duration(h)*time.Hour, func() { fired++ })
	}
	// speedup 3600: one virtual hour per wall second — 48s if fully paced.
	go func() {
		time.Sleep(50 * time.Millisecond)
		env.FinishFast()
	}()
	start := time.Now()
	if err := env.RunPaced(3600); err != nil {
		t.Fatal(err)
	}
	if fired != 48 {
		t.Fatalf("fired %d events, want all 48", fired)
	}
	if wall := time.Since(start); wall > 5*time.Second {
		t.Fatalf("paced run took %v after FinishFast, want prompt drain", wall)
	}
}

// TestFinishFastBeforeRun applies when set ahead of the run, too.
func TestFinishFastBeforeRun(t *testing.T) {
	env := NewEnv(epoch)
	fired := false
	env.Schedule(10*time.Hour, func() { fired = true })
	env.FinishFast()
	start := time.Now()
	if err := env.RunPaced(1); err != nil {
		t.Fatal(err)
	}
	if !fired || time.Since(start) > time.Second {
		t.Fatalf("fired=%v in %v; want immediate unpaced drain", fired, time.Since(start))
	}
}
