package warmpool

import (
	"fmt"
	"testing"
	"time"

	"skyfaas/internal/sim"
)

// syncActuator resolves actuations inline with zero cost variance: the
// benchmark measures the control loop (forecast, sizing, dispatch), not a
// simulated cloud round trip.
type syncActuator struct {
	live map[string]int
}

func (a *syncActuator) EnsureWarm(az string, target, floor int, done func(Provision)) {
	r := Provision{}
	if deficit := target - a.live[az]; deficit > 0 {
		r.Requested, r.Provisioned = deficit, deficit
		r.CostUSD = float64(deficit) * 0.0001
		a.live[az] += deficit
	}
	r.Live, r.Idle = a.live[az], a.live[az]
	done(r)
}

// BenchmarkWarmPoolTick measures one steady-state control-loop pass over 32
// zones with primed forecasters: the per-tick cost skyd pays every
// TickEvery of virtual time. Gated by BENCH_warmpool.json via `make
// bench-check`.
func BenchmarkWarmPoolTick(b *testing.B) {
	env := sim.NewEnv(epoch)
	act := &syncActuator{live: make(map[string]int)}
	zones := make([]string, 32)
	for i := range zones {
		zones[i] = fmt.Sprintf("az-%02d", i)
	}
	m, err := New(env, Config{
		Zones:     zones,
		Mode:      ModePredictive,
		TickEvery: 30 * time.Second,
		Window:    time.Minute,
		Season:    20 * time.Minute,
	}, act, constSvc(150), nil)
	if err != nil {
		b.Fatal(err)
	}
	// Prime two full seasons of diurnal-ish traffic so the seasonal terms
	// are populated and every zone carries a non-trivial target.
	for w := 0; w < 40; w++ {
		w := w
		env.Schedule(time.Duration(w)*time.Minute, func() {
			for i, az := range zones {
				m.ObserveTraffic(az, 40+30*((w+i)%10))
			}
		})
	}
	if err := env.RunFor(40 * time.Minute); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.tick()
	}
}
