package warmpool

import "time"

// forecaster estimates one zone's arrival rate with an additive
// Holt–Winters (seasonal EWMA) model over fixed-width sim-time windows.
// Arrivals are accumulated into the current window; when virtual time
// crosses a window boundary the closed window's count updates a level
// EWMA and the seasonal component for that position in the season.
// Everything is a pure function of the observation sequence and virtual
// time — no wall clock, no randomness — so forecasts replay bit-identical.
//
// During the first season pass the seasonal terms are still zero and the
// forecast degenerates to the level EWMA, i.e. the predictive policy
// behaves reactively until it has seen one full period. That is the
// correct cold-start behaviour for a forecaster: predict nothing you have
// not observed.
type forecaster struct {
	window   time.Duration
	alpha    float64 // level smoothing
	gamma    float64 // seasonal smoothing
	level    float64
	seasonal []float64
	idx      int // seasonal position of the *current* (open) window
	cur      float64
	last     int64 // index of the open window since start
	start    time.Time
	primed   bool    // level initialized from the first closed window
	windows  int     // closed windows folded in so far
	recent   float64 // plain EWMA of per-window arrivals (reactive policy)
}

func newForecaster(start time.Time, window, season time.Duration, alpha, gamma float64) *forecaster {
	buckets := int(season / window)
	if buckets < 1 {
		buckets = 1
	}
	return &forecaster{
		window:   window,
		alpha:    alpha,
		gamma:    gamma,
		seasonal: make([]float64, buckets),
		start:    start,
	}
}

// observe adds n arrivals at now, closing any windows the clock has passed.
func (f *forecaster) observe(now time.Time, n int) {
	f.advance(now)
	f.cur += float64(n)
}

// advance folds every window closed by now into the model. Idle stretches
// close a run of zero-count windows, correctly decaying the level.
func (f *forecaster) advance(now time.Time) {
	b := int64(now.Sub(f.start) / f.window)
	for f.last < b {
		f.fold(f.cur)
		f.cur = 0
		f.last++
		f.idx = (f.idx + 1) % len(f.seasonal)
	}
}

// fold updates the model with one closed window's arrival count.
func (f *forecaster) fold(x float64) {
	f.recent = f.alpha*x + (1-f.alpha)*f.recent
	if !f.primed {
		f.level = x
		f.primed = true
	} else {
		s := f.seasonal[f.idx]
		f.level = f.alpha*(x-s) + (1-f.alpha)*f.level
		f.seasonal[f.idx] = f.gamma*(x-f.level) + (1-f.gamma)*s
	}
	f.windows++
}

// recentRPS is the smoothed current arrival rate in requests per second.
func (f *forecaster) recentRPS() float64 {
	return f.recent / f.window.Seconds()
}

// forecastRPS predicts the peak arrival rate within the next lead of
// virtual time: the maximum level-plus-seasonal forecast over every window
// the lead covers. Provisioning has to cover the worst window it cannot
// react to in time, so a point sample at now+lead would blind the policy
// whenever a steep seasonal edge sits just inside the lead.
func (f *forecaster) forecastRPS(lead time.Duration) float64 {
	n := int((lead + f.window - 1) / f.window)
	if n < 1 {
		n = 1
	}
	if n > len(f.seasonal) {
		n = len(f.seasonal)
	}
	best := 0.0
	for ahead := 1; ahead <= n; ahead++ {
		s := f.seasonal[(f.idx+ahead)%len(f.seasonal)]
		if x := f.level + s; x > best {
			best = x
		}
	}
	return best / f.window.Seconds()
}

// forecastPointRPS predicts the arrival rate at exactly lead ahead of now:
// the level plus the seasonal component of the window the lead lands in.
// Where forecastRPS answers "what must I provision for" (the worst window
// inside the lead), this answers "what will demand be once my lead has
// passed" — the right signal for how much capacity to keep holding, since
// it collapses one lead ahead of a falling seasonal edge.
func (f *forecaster) forecastPointRPS(lead time.Duration) float64 {
	ahead := int(lead / f.window)
	s := f.seasonal[(f.idx+ahead)%len(f.seasonal)]
	x := f.level + s
	if x < 0 {
		x = 0
	}
	return x / f.window.Seconds()
}
