// Package warmpool is the sky's predictive pre-warming subsystem: a
// control loop that converts forecast per-zone arrival rates and
// characterized service times into target warm-instance counts, and keeps
// the cloud's warm pools sized to them under an explicit USD budget.
//
// The router decides *where* to run; nothing before this package decided
// *how warm* the chosen zone should be, so every first invocation after a
// routing change or an idle trough paid cloudsim's lognormal cold start.
// The Maintainer closes that gap. A per-zone forecaster (seasonal EWMA /
// Holt–Winters over sim-time windows, fed by the same routed-traffic
// observations the refresh subsystem collects) estimates the arrival rate;
// a Little's-law sizer multiplies rate by the admission gate's service-time
// estimate to get the concurrency the zone must hold warm; and one of
// three policies — pinned (fixed floor), reactive (track the recent rate),
// predictive (forecast one lead ahead of the diurnal curve) — turns that
// into PreWarm/SetFloor actuations against cloudsim. Provisioning spend is
// real money, so actuations are metered by the refresh subsystem's
// token-bucket Budget (USD per sim-hour with a cap): when the bucket is
// empty, pool growth waits.
//
// Concurrency: everything except Stop/Start's running flag is owned by the
// simulation goroutine. Ticks run as Env callbacks, actuation results are
// delivered back on the maintainer's env, and admin reads (Snapshot) or
// writes (SetMode, RetuneBudget) must be issued from inside the simulation
// — skyd routes them through its Exec command queue.
package warmpool

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"skyfaas/internal/metrics"
	"skyfaas/internal/refresh"
	"skyfaas/internal/sim"
)

// Mode selects the pool-sizing policy.
type Mode string

// The supported warm-pool policies.
const (
	// ModeOff clears every floor and provisions nothing.
	ModeOff Mode = "off"
	// ModePinned holds a fixed warm floor per zone regardless of traffic.
	ModePinned Mode = "pinned"
	// ModeReactive sizes the pool to the smoothed recent arrival rate —
	// always one diurnal edge behind.
	ModeReactive Mode = "reactive"
	// ModePredictive sizes the pool to the peak seasonal forecast within
	// the next lead interval, warming before the curve rises.
	ModePredictive Mode = "predictive"
)

// Modes lists the supported modes in stable order.
func Modes() []Mode { return []Mode{ModeOff, ModePinned, ModeReactive, ModePredictive} }

// ValidMode reports whether m names a supported mode.
func ValidMode(m Mode) bool {
	for _, k := range Modes() {
		if m == k {
			return true
		}
	}
	return false
}

// Provision reports one actuation's outcome, mirrored from the cloud's
// actuator result so the policy layer stays decoupled from cloudsim.
type Provision struct {
	// Live / Idle are the deployment's instance counts after actuation.
	Live int
	Idle int
	// Requested is the deficit the actuator tried to fill; Provisioned is
	// what capacity allowed; CostUSD the billed spend (pre-warm
	// initializations plus the floor-hold charge accrued since the
	// previous actuation).
	Requested   int
	Provisioned int
	CostUSD     float64
	Err         error
}

// Actuator applies one zone's warm-pool decision: raise the deployment
// toward target provisioned instances and set its keep-alive floor. done
// must be delivered on the maintainer's env (core.Runtime adapts
// cloudsim.StartEnsureWarm, which hops to the zone's shard and back).
type Actuator interface {
	EnsureWarm(az string, target, floor int, done func(Provision))
}

// Config tunes a Maintainer. Zero fields take defaults.
type Config struct {
	// Zones restricts the maintained set. Empty means dynamic: every zone
	// that carries observed traffic is adopted.
	Zones []string
	// Mode selects the sizing policy (default ModePredictive).
	Mode Mode
	// TickEvery is the control-loop cadence in virtual time (default 30s).
	TickEvery time.Duration
	// Window is the forecaster's bucket width (default 1m).
	Window time.Duration
	// Season is the seasonal period the forecaster learns (default 24h —
	// the diurnal cycle; experiments compress it).
	Season time.Duration
	// Lead is how far ahead the predictive policy sizes for (default 2m;
	// it should cover the provisioning-to-demand gap, i.e. at least one
	// tick plus a cold start).
	Lead time.Duration
	// Alpha / Gamma are the Holt–Winters level and seasonal smoothing
	// factors (defaults 0.5 / 0.35).
	Alpha float64
	Gamma float64
	// Floor is the pinned policy's fixed per-zone warm floor (default 4).
	Floor int
	// MaxPerZone clamps any policy's target (default 64).
	MaxPerZone int
	// SafetyFactor pads the Little's-law target against burstiness
	// (default 1.25).
	SafetyFactor float64
	// RatePerHour refills the provisioning budget, USD per sim-hour
	// (default 0.50); Cap bounds the accrued balance (default 1.00).
	RatePerHour float64
	Cap         float64
}

func (c Config) withDefaults() Config {
	if c.Mode == "" {
		c.Mode = ModePredictive
	}
	if c.TickEvery == 0 {
		c.TickEvery = 30 * time.Second
	}
	if c.Window == 0 {
		c.Window = time.Minute
	}
	if c.Season == 0 {
		c.Season = 24 * time.Hour
	}
	if c.Lead == 0 {
		c.Lead = 2 * time.Minute
	}
	if c.Alpha == 0 {
		c.Alpha = 0.5
	}
	if c.Gamma == 0 {
		c.Gamma = 0.35
	}
	if c.Floor == 0 {
		c.Floor = 4
	}
	if c.MaxPerZone == 0 {
		c.MaxPerZone = 64
	}
	if c.SafetyFactor == 0 {
		c.SafetyFactor = 1.25
	}
	if c.RatePerHour == 0 {
		c.RatePerHour = 0.50
	}
	if c.Cap == 0 {
		c.Cap = 1.00
	}
	return c
}

// ZoneStatus is one maintained zone's state at snapshot time.
type ZoneStatus struct {
	AZ string
	// RecentRPS / ForecastRPS are the forecaster's smoothed current rate
	// and its peak forecast rate within the next lead.
	RecentRPS   float64
	ForecastRPS float64
	// Target / Floor are the current policy decision.
	Target int
	Floor  int
	// Live / Idle are the counts the last actuation reported back.
	Live int
	Idle int
	// Provisioned / SpentUSD accumulate over the zone's lifetime.
	Provisioned int
	SpentUSD    float64
}

// Status is the maintainer's full snapshot.
type Status struct {
	Mode          Mode
	BudgetBalance float64
	BudgetRate    float64
	BudgetCap     float64
	SpentUSD      float64
	Ticks         int
	Provisioned   int
	SkippedBudget int
	Zones         []ZoneStatus
}

// zoneState is the per-zone loop state, owned by the simulation goroutine.
type zoneState struct {
	f           *forecaster
	target      int
	floor       int
	live        int
	idle        int
	provisioned int
	spent       float64
	inflight    bool
	mTarget     *metrics.Gauge
	mForecast   *metrics.Gauge
}

// Maintainer drives the warm-pool control loop. All fields besides running
// are owned by the simulation goroutine.
type Maintainer struct {
	cfg    Config
	env    *sim.Env
	act    Actuator
	svcMS  func() float64
	budget *refresh.Budget

	// running gates the self-rescheduling tick; atomic because Stop may be
	// called from another OS thread (skyd.Close) while the simulation
	// goroutine is mid-tick.
	running atomic.Bool

	zones map[string]*zoneState
	names []string // sorted iteration order over zones

	ticks         int
	provisioned   int
	skippedBudget int

	reg          *metrics.Registry
	mTicks       *metrics.Counter
	mProvisioned *metrics.Counter
	mSkipBudget  *metrics.Counter
	mBudgetUSD   *metrics.Gauge
	mSpentUSD    *metrics.Gauge
}

// New assembles a maintainer over env. act applies decisions to the cloud;
// svcMS returns the current mean service-time estimate in milliseconds
// (core.Runtime derives it from the admission gate's capacity model, which
// is seeded from characterizations and EWMA-updated from live traffic);
// reg may be nil to disable instrumentation.
func New(env *sim.Env, cfg Config, act Actuator, svcMS func() float64, reg *metrics.Registry) (*Maintainer, error) {
	cfg = cfg.withDefaults()
	if !ValidMode(cfg.Mode) {
		return nil, fmt.Errorf("warmpool: unknown mode %q (valid: %v)", cfg.Mode, Modes())
	}
	if act == nil {
		return nil, fmt.Errorf("warmpool: nil actuator")
	}
	if svcMS == nil {
		return nil, fmt.Errorf("warmpool: nil service-time estimator")
	}
	if cfg.Window > cfg.Season {
		return nil, fmt.Errorf("warmpool: window %v exceeds season %v", cfg.Window, cfg.Season)
	}
	m := &Maintainer{
		cfg:    cfg,
		env:    env,
		act:    act,
		svcMS:  svcMS,
		budget: refresh.NewBudget(cfg.RatePerHour, cfg.Cap, env.Now()),
		zones:  make(map[string]*zoneState),
		reg:    reg,
		mTicks: reg.Counter("sky_warmpool_ticks_total", "warm-pool control-loop ticks executed"),
		mProvisioned: reg.Counter("sky_warmpool_provisioned_total",
			"instances provisioned by the warm-pool maintainer"),
		mSkipBudget: reg.Counter("sky_warmpool_skipped_total",
			"warm-pool actuations deferred, by cause", metrics.L("cause", "budget")),
		mBudgetUSD: reg.Gauge("sky_warmpool_budget_usd", "accrued warm-pool budget balance (USD)"),
		mSpentUSD:  reg.Gauge("sky_warmpool_spent_usd", "total warm-pool provisioning spend (USD)"),
	}
	for _, az := range cfg.Zones {
		m.adopt(az)
	}
	m.mBudgetUSD.Set(m.budget.Balance(env.Now()))
	return m, nil
}

// Config returns the effective configuration.
func (m *Maintainer) Config() Config { return m.cfg }

// adopt registers a zone, keeping names sorted so tick order is stable.
func (m *Maintainer) adopt(az string) *zoneState {
	if z, ok := m.zones[az]; ok {
		return z
	}
	z := &zoneState{
		f: newForecaster(m.env.Now(), m.cfg.Window, m.cfg.Season, m.cfg.Alpha, m.cfg.Gamma),
		mTarget: m.reg.Gauge("sky_warmpool_target",
			"current warm-pool target instance count", metrics.L("az", az)),
		mForecast: m.reg.Gauge("sky_warmpool_forecast_rps",
			"peak forecast arrival rate within the next lead (requests/sec)", metrics.L("az", az)),
	}
	m.zones[az] = z
	i := sort.SearchStrings(m.names, az)
	m.names = append(m.names, "")
	copy(m.names[i+1:], m.names[i:])
	m.names[i] = az
	return z
}

// ObserveTraffic records completed routed invocations landing on az — the
// forecaster's signal. Zones outside a fixed Zones set are ignored; with a
// dynamic set they are adopted on first traffic. Must be called from
// inside the simulation (the router's burst path).
func (m *Maintainer) ObserveTraffic(az string, completed int) {
	if completed <= 0 {
		return
	}
	z, ok := m.zones[az]
	if !ok {
		if len(m.cfg.Zones) > 0 {
			return
		}
		z = m.adopt(az)
	}
	z.f.observe(m.env.Now(), completed)
}

// SetMode switches the sizing policy. Must be called from inside the
// simulation.
func (m *Maintainer) SetMode(mode Mode) error {
	if !ValidMode(mode) {
		return fmt.Errorf("warmpool: unknown mode %q (valid: %v)", mode, Modes())
	}
	m.cfg.Mode = mode
	return nil
}

// RetuneBudget changes the governor's refill rate and cap. Must be called
// from inside the simulation.
func (m *Maintainer) RetuneBudget(ratePerHour, cap float64) error {
	if ratePerHour < 0 || cap <= 0 {
		return fmt.Errorf("warmpool: budget rate must be >= 0 and cap > 0")
	}
	m.budget.Retune(m.env.Now(), ratePerHour, cap)
	m.cfg.RatePerHour = ratePerHour
	m.cfg.Cap = cap
	m.mBudgetUSD.Set(m.budget.Balance(m.env.Now()))
	return nil
}

// plan computes one zone's policy decision at now.
func (m *Maintainer) plan(z *zoneState, now time.Time) (target, floor int) {
	switch m.cfg.Mode {
	case ModeOff:
		return 0, 0
	case ModePinned:
		f := m.cfg.Floor
		if f > m.cfg.MaxPerZone {
			f = m.cfg.MaxPerZone
		}
		return f, f
	case ModeReactive:
		t := m.size(z.f.recentRPS())
		return t, t
	default: // ModePredictive
		// Provision for the worst window inside the lead (warm ahead of a
		// rising edge), but hold only what demand will be once the lead has
		// passed (release ahead of a falling edge): foresight saves hold
		// spend on the way down exactly as it saves cold starts on the way
		// up. Instances above the floor stay warm under ordinary keep-alive
		// as long as traffic keeps reusing them.
		t := m.size(z.f.forecastRPS(m.cfg.Lead))
		f := m.size(z.f.forecastPointRPS(m.cfg.Lead))
		if f > t {
			f = t
		}
		return t, f
	}
}

// size converts an arrival rate into a warm-instance target: Little's law
// (concurrency = rate x service time) padded by the safety factor and
// clamped to the per-zone cap.
func (m *Maintainer) size(rps float64) int {
	if rps <= 0 {
		return 0
	}
	t := int(math.Ceil(rps * m.svcMS() / 1000 * m.cfg.SafetyFactor))
	if t > m.cfg.MaxPerZone {
		t = m.cfg.MaxPerZone
	}
	return t
}

// tick runs one control-loop pass: advance each forecaster to now, plan,
// and dispatch actuations. Growth is gated by the budget; shrinking or
// zero targets always dispatch (clearing a floor is free). A zone with an
// actuation still in flight is skipped — the next tick re-plans it.
func (m *Maintainer) tick() {
	now := m.env.Now()
	m.ticks++
	m.mTicks.Inc()
	m.mBudgetUSD.Set(m.budget.Balance(now))
	for _, az := range m.names {
		z := m.zones[az]
		z.f.advance(now)
		target, floor := m.plan(z, now)
		if z.inflight {
			continue
		}
		if target > z.live && !m.budget.Allows(now) {
			m.skippedBudget++
			m.mSkipBudget.Inc()
			continue
		}
		z.target, z.floor = target, floor
		z.mTarget.Set(float64(target))
		z.mForecast.Set(z.f.forecastRPS(m.cfg.Lead))
		z.inflight = true
		m.act.EnsureWarm(az, target, floor, func(r Provision) {
			z.inflight = false
			if r.Err != nil {
				return
			}
			z.live, z.idle = r.Live, r.Idle
			z.provisioned += r.Provisioned
			z.spent += r.CostUSD
			m.provisioned += r.Provisioned
			m.mProvisioned.Add(uint64(r.Provisioned))
			if r.CostUSD > 0 {
				m.budget.Debit(m.env.Now(), r.CostUSD)
				m.mSpentUSD.Set(m.budget.Spent())
			}
		})
	}
}

// Start arms the control loop: a tick every TickEvery of virtual time.
// Safe to call at most once before or during the run; the loop stops
// rescheduling after Stop, letting the event queue drain.
func (m *Maintainer) Start() {
	if !m.running.CompareAndSwap(false, true) {
		return
	}
	var tick func()
	tick = func() {
		if !m.running.Load() {
			return
		}
		m.tick()
		m.env.Schedule(m.cfg.TickEvery, tick)
	}
	m.env.Schedule(m.cfg.TickEvery, tick)
}

// Stop halts the control loop after the current tick. Safe from any
// goroutine; idempotent. In-flight actuations finish on their own.
func (m *Maintainer) Stop() { m.running.Store(false) }

// Running reports whether the control loop is armed.
func (m *Maintainer) Running() bool { return m.running.Load() }

// Snapshot returns the maintainer's full state at now. Must be called from
// inside the simulation.
func (m *Maintainer) Snapshot() Status {
	now := m.env.Now()
	st := Status{
		Mode:          m.cfg.Mode,
		BudgetBalance: m.budget.Balance(now),
		BudgetRate:    m.budget.RatePerHour(),
		BudgetCap:     m.budget.Cap(),
		SpentUSD:      m.budget.Spent(),
		Ticks:         m.ticks,
		Provisioned:   m.provisioned,
		SkippedBudget: m.skippedBudget,
	}
	for _, az := range m.names {
		z := m.zones[az]
		z.f.advance(now)
		st.Zones = append(st.Zones, ZoneStatus{
			AZ:          az,
			RecentRPS:   z.f.recentRPS(),
			ForecastRPS: z.f.forecastRPS(m.cfg.Lead),
			Target:      z.target,
			Floor:       z.floor,
			Live:        z.live,
			Idle:        z.idle,
			Provisioned: z.provisioned,
			SpentUSD:    z.spent,
		})
	}
	return st
}
