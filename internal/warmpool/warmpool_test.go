package warmpool

import (
	"math"
	"testing"
	"time"

	"skyfaas/internal/sim"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// fakeActuator is a scripted Actuator: it tracks per-zone live counts,
// fills any deficit instantly at a fixed per-instance cost, and records
// every call so tests can assert policy behaviour.
type fakeActuator struct {
	env      *sim.Env
	perInit  float64
	capacity int // max live per zone (0 = unlimited)
	live     map[string]int
	calls    []actCall
}

type actCall struct {
	az            string
	target, floor int
}

func newFakeActuator(env *sim.Env) *fakeActuator {
	return &fakeActuator{env: env, perInit: 0.001, live: make(map[string]int)}
}

func (a *fakeActuator) EnsureWarm(az string, target, floor int, done func(Provision)) {
	a.calls = append(a.calls, actCall{az: az, target: target, floor: floor})
	r := Provision{}
	if deficit := target - a.live[az]; deficit > 0 {
		r.Requested = deficit
		if a.capacity > 0 && a.live[az]+deficit > a.capacity {
			deficit = a.capacity - a.live[az]
		}
		r.Provisioned = deficit
		r.CostUSD = float64(deficit) * a.perInit
		a.live[az] += deficit
	}
	// The floor is the retention mechanism: below it the fake reaps
	// nothing, above it the pool decays to the floor (stand-in for
	// keep-alive expiry between ticks).
	if floor < a.live[az] && target < a.live[az] {
		a.live[az] = max(floor, target)
	}
	r.Live = a.live[az]
	r.Idle = a.live[az]
	a.env.Schedule(time.Millisecond, func() { done(r) })
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func constSvc(ms float64) func() float64 { return func() float64 { return ms } }

func newTestMaintainer(t *testing.T, env *sim.Env, cfg Config, act Actuator) *Maintainer {
	t.Helper()
	m, err := New(env, cfg, act, constSvc(200), nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func mustSnapshot(t *testing.T, env *sim.Env, m *Maintainer) Status {
	t.Helper()
	var st Status
	env.Schedule(0, func() { st = m.Snapshot() })
	if err := env.Run(); err != nil {
		t.Fatalf("snapshot run: %v", err)
	}
	return st
}

func TestNewValidates(t *testing.T) {
	env := sim.NewEnv(epoch)
	act := newFakeActuator(env)
	if _, err := New(env, Config{Mode: "clairvoyant"}, act, constSvc(100), nil); err == nil {
		t.Fatal("unknown mode must be rejected")
	}
	if _, err := New(env, Config{}, nil, constSvc(100), nil); err == nil {
		t.Fatal("nil actuator must be rejected")
	}
	if _, err := New(env, Config{}, act, nil, nil); err == nil {
		t.Fatal("nil service estimator must be rejected")
	}
	if _, err := New(env, Config{Window: time.Hour, Season: time.Minute}, act, constSvc(100), nil); err == nil {
		t.Fatal("window > season must be rejected")
	}
	m, err := New(env, Config{}, act, constSvc(100), nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	cfg := m.Config()
	if cfg.Mode != ModePredictive || cfg.TickEvery != 30*time.Second || cfg.MaxPerZone != 64 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestForecasterLearnsSeason(t *testing.T) {
	window, season := time.Minute, 10*time.Minute
	f := newForecaster(epoch, window, season, 0.5, 0.35)
	// A square wave: 5 minutes at 600/min, 5 minutes idle, repeated.
	now := epoch
	for cycle := 0; cycle < 6; cycle++ {
		for w := 0; w < 10; w++ {
			if w < 5 {
				f.observe(now, 600)
			} else {
				f.advance(now)
			}
			now = now.Add(window)
		}
	}
	// now sits at the start of a high phase; the trailing idle phase has
	// dragged the recent EWMA down while the 1-window-ahead forecast sees
	// the seasonal high coming.
	forecast := f.forecastRPS(window)
	recent := f.recentRPS()
	if forecast <= recent {
		t.Fatalf("forecast %.2f rps should exceed recent %.2f rps at the rising edge", forecast, recent)
	}
	if forecast < 5 {
		t.Fatalf("forecast %.2f rps, want near the 10 rps high phase", forecast)
	}
	// And just before the falling edge, the forecast should anticipate
	// the idle phase.
	for w := 0; w < 5; w++ {
		f.observe(now, 600)
		now = now.Add(window)
	}
	f.advance(now)
	if fall := f.forecastRPS(window); fall >= f.recentRPS() {
		t.Fatalf("forecast %.2f rps should drop below recent %.2f rps at the falling edge", fall, f.recentRPS())
	}
}

// TestPredictiveFloorReleasesBeforeFall: within one lead of a falling
// seasonal edge, the predictive policy still targets the peak window
// inside the lead (don't drop capacity the plateau is using) while its
// floor follows the point forecast down — releasing held capacity ahead
// of the drop, the falling-edge mirror of pre-warming a rise.
func TestPredictiveFloorReleasesBeforeFall(t *testing.T) {
	env := sim.NewEnv(epoch)
	act := newFakeActuator(env)
	m := newTestMaintainer(t, env, Config{
		Zones: []string{"az-1"}, Mode: ModePredictive,
		Window: time.Minute, Season: 10 * time.Minute, Lead: 2 * time.Minute,
	}, act)
	z := m.zones["az-1"]
	// Train on a square wave: 5 busy minutes at 10 rps, 5 idle, repeated.
	now := epoch
	for cycle := 0; cycle < 4; cycle++ {
		for w := 0; w < 10; w++ {
			if w < 5 {
				z.f.observe(now, 600)
			} else {
				z.f.advance(now)
			}
			now = now.Add(time.Minute)
		}
	}
	// Walk 3 windows into the high phase: the 2-minute lead now straddles
	// the falling edge — one plateau window ahead, then the idle phase.
	for w := 0; w < 3; w++ {
		z.f.observe(now, 600)
		now = now.Add(time.Minute)
	}
	z.f.advance(now)
	target, floor := m.plan(z, now)
	if target < 2 {
		t.Fatalf("target = %d, want the plateau still provisioned (peak within the lead)", target)
	}
	if floor >= target {
		t.Fatalf("floor %d >= target %d: the floor should release ahead of the falling edge", floor, target)
	}
}

func TestPinnedHoldsFloorWithoutTraffic(t *testing.T) {
	env := sim.NewEnv(epoch)
	act := newFakeActuator(env)
	m := newTestMaintainer(t, env, Config{
		Zones: []string{"az-a", "az-b"},
		Mode:  ModePinned,
		Floor: 3,
	}, act)
	m.Start()
	if err := env.RunFor(5 * time.Minute); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	m.Stop()
	if act.live["az-a"] != 3 || act.live["az-b"] != 3 {
		t.Fatalf("live = %v, want 3 in both zones", act.live)
	}
	st := mustSnapshot(t, env, m)
	if st.Provisioned != 6 {
		t.Fatalf("provisioned = %d, want 6 (3 per zone, once)", st.Provisioned)
	}
	if st.SpentUSD <= 0 || math.Abs(st.SpentUSD-6*act.perInit) > 1e-9 {
		t.Fatalf("spent = %f, want %f", st.SpentUSD, 6*act.perInit)
	}
	for _, z := range st.Zones {
		if z.Target != 3 || z.Floor != 3 {
			t.Fatalf("zone %+v, want target/floor 3", z)
		}
	}
}

func TestReactiveTracksRateAndOffClears(t *testing.T) {
	env := sim.NewEnv(epoch)
	act := newFakeActuator(env)
	m := newTestMaintainer(t, env, Config{
		Zones:        []string{"az-a"},
		Mode:         ModeReactive,
		TickEvery:    30 * time.Second,
		Window:       time.Minute,
		Season:       10 * time.Minute,
		SafetyFactor: 1,
	}, act)
	// 10 rps of observed traffic; at 200 ms service time Little's law
	// wants 2 warm instances.
	var feed func()
	stop := epoch.Add(10 * time.Minute)
	feed = func() {
		if env.Now().After(stop) {
			return
		}
		m.ObserveTraffic("az-a", 10)
		env.Schedule(time.Second, feed)
	}
	env.Schedule(0, feed)
	m.Start()
	if err := env.RunFor(10 * time.Minute); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if got := act.live["az-a"]; got != 2 {
		t.Fatalf("live = %d, want 2 (10 rps x 0.2 s)", got)
	}
	// Switching off clears the floor and the pool drains.
	env.Schedule(0, func() {
		if err := m.SetMode(ModeOff); err != nil {
			t.Errorf("SetMode: %v", err)
		}
	})
	if err := env.RunFor(2 * time.Minute); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	m.Stop()
	if got := act.live["az-a"]; got != 0 {
		t.Fatalf("live = %d after off, want 0", got)
	}
	last := act.calls[len(act.calls)-1]
	if last.target != 0 || last.floor != 0 {
		t.Fatalf("last actuation %+v, want cleared target and floor", last)
	}
}

func TestBudgetGatesGrowth(t *testing.T) {
	env := sim.NewEnv(epoch)
	act := newFakeActuator(env)
	act.perInit = 1  // expensive: one instance exhausts the bucket
	act.capacity = 4 // zone saturates below the floor, leaving a deficit
	m := newTestMaintainer(t, env, Config{
		Zones:       []string{"az-a"},
		Mode:        ModePinned,
		Floor:       10,
		TickEvery:   30 * time.Second,
		RatePerHour: 0.5,
		Cap:         0.5,
	}, act)
	m.Start()
	if err := env.RunFor(30 * time.Minute); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	m.Stop()
	st := mustSnapshot(t, env, m)
	// The first actuation provisions to the zone's capacity and drives the
	// balance to 0.5 - 4 = -3.5 USD; refill at 0.5/h cannot go positive
	// again within the run, so every later attempt to close the remaining
	// deficit is budget-skipped.
	if st.Provisioned != 4 {
		t.Fatalf("provisioned = %d, want the single pre-budget actuation", st.Provisioned)
	}
	if st.SkippedBudget == 0 {
		t.Fatal("no budget skips recorded")
	}
	if st.BudgetBalance >= 0 {
		t.Fatalf("balance = %f, want negative after the overdraft", st.BudgetBalance)
	}
}

func TestDynamicZoneAdoption(t *testing.T) {
	env := sim.NewEnv(epoch)
	act := newFakeActuator(env)
	m := newTestMaintainer(t, env, Config{Mode: ModeReactive, SafetyFactor: 1}, act)
	env.Schedule(time.Second, func() { m.ObserveTraffic("az-new", 50) })
	m.Start()
	if err := env.RunFor(5 * time.Minute); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	m.Stop()
	st := mustSnapshot(t, env, m)
	if len(st.Zones) != 1 || st.Zones[0].AZ != "az-new" {
		t.Fatalf("zones = %+v, want the adopted az-new", st.Zones)
	}
	if act.live["az-new"] == 0 {
		t.Fatal("adopted zone never provisioned")
	}
}

func TestRetuneBudgetAndModeValidation(t *testing.T) {
	env := sim.NewEnv(epoch)
	m := newTestMaintainer(t, env, Config{Zones: []string{"az-a"}}, newFakeActuator(env))
	env.Schedule(0, func() {
		if err := m.SetMode("warmish"); err == nil {
			t.Error("invalid mode accepted")
		}
		if err := m.RetuneBudget(-1, 1); err == nil {
			t.Error("negative rate accepted")
		}
		if err := m.RetuneBudget(2, 0); err == nil {
			t.Error("zero cap accepted")
		}
		if err := m.RetuneBudget(2, 3); err != nil {
			t.Errorf("RetuneBudget: %v", err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := mustSnapshot(t, env, m)
	if st.BudgetRate != 2 || st.BudgetCap != 3 {
		t.Fatalf("budget = %f/%f, want 2/3", st.BudgetRate, st.BudgetCap)
	}
}
