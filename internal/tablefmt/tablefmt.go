// Package tablefmt renders experiment results as aligned ASCII tables and
// simple text series, so skybench output reads like the paper's tables and
// figure data.
package tablefmt

import (
	"fmt"
	"strings"
)

// Table accumulates rows under a header and renders them aligned.
type Table struct {
	header []string
	rows   [][]string
}

// New returns a table with the given column headers.
func New(header ...string) *Table {
	return &Table{header: header}
}

// Row appends a row; values are rendered with %v.
func (t *Table) Row(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// String renders the table.
func (t *Table) String() string {
	cols := len(t.header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Series renders a named sequence of (label, value) pairs, one per line —
// the textual equivalent of one figure curve.
func Series(name string, labels []string, values []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", name)
	width := 0
	for _, l := range labels {
		if len(l) > width {
			width = len(l)
		}
	}
	for i, v := range values {
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		fmt.Fprintf(&b, "  %-*s  %s\n", width, label, trimFloat(v))
	}
	return b.String()
}

// Pct formats a fraction as a percentage string.
func Pct(frac float64) string { return fmt.Sprintf("%.1f%%", frac*100) }

// USD formats a dollar amount.
func USD(v float64) string { return fmt.Sprintf("$%.4f", v) }
