package tablefmt

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WriteCSV emits the table as CSV, header first — the machine-readable twin
// of String() used by skybench's -csv mode so the regenerated figure data
// can be plotted directly.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.header); err != nil {
		return fmt.Errorf("tablefmt: csv header: %w", err)
	}
	for _, row := range t.rows {
		padded := row
		if len(row) < len(t.header) {
			padded = make([]string, len(t.header))
			copy(padded, row)
		}
		if err := cw.Write(padded); err != nil {
			return fmt.Errorf("tablefmt: csv row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("tablefmt: csv flush: %w", err)
	}
	return nil
}
