package tablefmt

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tbl := New("zone", "polls", "cost")
	tbl.Row("us-west-1a", 25, 0.2254)
	tbl.Row("eu-north-1a", 6, 0.0468)
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Header, separator, rows all share the same width.
	if len(lines[0]) != len(lines[1]) {
		t.Errorf("separator width %d != header width %d", len(lines[1]), len(lines[0]))
	}
	if !strings.HasPrefix(lines[0], "zone") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], "us-west-1a") || !strings.Contains(lines[2], "0.225") {
		t.Errorf("row = %q", lines[2])
	}
}

func TestTableFloatTrimming(t *testing.T) {
	tbl := New("v")
	tbl.Row(1.5)
	tbl.Row(2.0)
	tbl.Row(0.125)
	lines := strings.Split(strings.TrimRight(tbl.String(), "\n"), "\n")
	got := []string{}
	for _, l := range lines[2:] { // skip header + separator
		got = append(got, strings.TrimSpace(l))
	}
	want := []string{"1.5", "2", "0.125"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestTableRaggedRows(t *testing.T) {
	tbl := New("a", "b")
	tbl.Row("only-one")
	tbl.Row("x", "y", "z") // wider than header
	out := tbl.String()
	if !strings.Contains(out, "only-one") || !strings.Contains(out, "z") {
		t.Fatalf("ragged rows mangled:\n%s", out)
	}
}

func TestSeries(t *testing.T) {
	out := Series("APE%", []string{"day 1", "day 2"}, []float64{0, 12.5})
	if !strings.Contains(out, "APE%:") {
		t.Errorf("missing name: %q", out)
	}
	if !strings.Contains(out, "day 1") || !strings.Contains(out, "12.5") {
		t.Errorf("missing data: %q", out)
	}
	// Value without a label still renders.
	out = Series("x", nil, []float64{1})
	if !strings.Contains(out, "1") {
		t.Errorf("unlabeled value missing: %q", out)
	}
}

func TestPctAndUSD(t *testing.T) {
	if got := Pct(0.182); got != "18.2%" {
		t.Errorf("Pct = %q", got)
	}
	if got := USD(2.8); got != "$2.8000" {
		t.Errorf("USD = %q", got)
	}
}

func TestWriteCSV(t *testing.T) {
	tbl := New("zone", "polls")
	tbl.Row("us-west-1a", 25)
	tbl.Row("short")
	var b strings.Builder
	if err := tbl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := "zone,polls\nus-west-1a,25\nshort,\n"
	if got != want {
		t.Fatalf("csv = %q, want %q", got, want)
	}
}

func TestWriteCSVQuotesCommas(t *testing.T) {
	tbl := New("desc")
	tbl.Row("a, b")
	var b strings.Builder
	if err := tbl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"a, b"`) {
		t.Fatalf("comma not quoted: %q", b.String())
	}
}
