package router

import (
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

// The classic three-state circuit.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes a per-zone circuit breaker. The zero value selects
// the defaults noted on each field.
type BreakerConfig struct {
	// Window is the sliding error-rate window (default 10 s).
	Window time.Duration
	// MinRequests is the minimum sample count inside the window before the
	// breaker may trip (default 20) — small bursts never trip on noise.
	MinRequests int
	// FailureRate is the windowed failure fraction that trips the breaker
	// (default 0.5).
	FailureRate float64
	// OpenFor is how long a tripped breaker rejects traffic before probing
	// again (default 30 s).
	OpenFor time.Duration
	// HalfOpenMax is how many probe requests half-open admits; that many
	// consecutive successes re-close the circuit, any failure re-opens it
	// (default 5).
	HalfOpenMax int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 10 * time.Second
	}
	if c.MinRequests <= 0 {
		c.MinRequests = 20
	}
	if c.FailureRate <= 0 {
		c.FailureRate = 0.5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 30 * time.Second
	}
	if c.HalfOpenMax <= 0 {
		c.HalfOpenMax = 5
	}
	return c
}

type breakerSample struct {
	at time.Time
	ok bool
}

// Breaker is a closed → open → half-open circuit breaker driven entirely by
// simulated time: every transition hangs off the `now` its caller passes in,
// so breaker behavior replays bit-identically with the run. It shares the
// simulation's single-threaded discipline and needs no locking.
type Breaker struct {
	cfg      BreakerConfig
	state    BreakerState
	samples  []breakerSample // outcomes inside the sliding window (closed only)
	openedAt time.Time
	probes   int // probe requests admitted while half-open
	probeOKs int // consecutive probe successes while half-open
	onChange func(from, to BreakerState)
}

// NewBreaker returns a closed breaker under cfg (zero fields take defaults).
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// OnTransition installs a state-change hook (instrumentation).
func (b *Breaker) OnTransition(fn func(from, to BreakerState)) { b.onChange = fn }

// State returns the breaker's current position.
func (b *Breaker) State() BreakerState { return b.state }

// Config returns the effective (defaulted) configuration.
func (b *Breaker) Config() BreakerConfig { return b.cfg }

func (b *Breaker) transition(now time.Time, to BreakerState) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	switch to {
	case BreakerOpen:
		b.openedAt = now
		b.samples = b.samples[:0]
	case BreakerHalfOpen:
		b.probes, b.probeOKs = 0, 0
	case BreakerClosed:
		b.samples = b.samples[:0]
	}
	if b.onChange != nil {
		b.onChange(from, to)
	}
}

// Admits reports whether a request issued at now would be allowed, without
// consuming half-open probe budget — the side-effect-free form failover uses
// to filter candidate zones.
func (b *Breaker) Admits(now time.Time) bool {
	switch b.state {
	case BreakerOpen:
		return now.Sub(b.openedAt) >= b.cfg.OpenFor
	case BreakerHalfOpen:
		return b.probes < b.cfg.HalfOpenMax
	default:
		return true
	}
}

// Allow gates one request at now: closed admits everything, open rejects
// until OpenFor has elapsed (then flips to half-open), and half-open admits
// up to HalfOpenMax probes. An admitted request must be answered with a
// Record call.
func (b *Breaker) Allow(now time.Time) bool {
	if b.state == BreakerOpen && now.Sub(b.openedAt) >= b.cfg.OpenFor {
		b.transition(now, BreakerHalfOpen)
	}
	switch b.state {
	case BreakerOpen:
		return false
	case BreakerHalfOpen:
		if b.probes >= b.cfg.HalfOpenMax {
			return false
		}
		b.probes++
		return true
	default:
		return true
	}
}

// Record feeds one request outcome at now. In the closed state outcomes
// accumulate in the sliding window and trip the breaker when the failure
// rate crosses the threshold; in half-open a failure re-opens the circuit
// and HalfOpenMax consecutive successes re-close it. Outcomes arriving while
// open (stragglers from before the trip) are dropped.
func (b *Breaker) Record(now time.Time, ok bool) {
	switch b.state {
	case BreakerOpen:
		return
	case BreakerHalfOpen:
		if !ok {
			b.transition(now, BreakerOpen)
			return
		}
		b.probeOKs++
		if b.probeOKs >= b.cfg.HalfOpenMax {
			b.transition(now, BreakerClosed)
		}
		return
	}
	// Closed: slide the window forward and append.
	cutoff := now.Add(-b.cfg.Window)
	keep := b.samples[:0]
	for _, s := range b.samples {
		if s.at.After(cutoff) {
			keep = append(keep, s)
		}
	}
	b.samples = append(keep, breakerSample{at: now, ok: ok})
	if len(b.samples) < b.cfg.MinRequests {
		return
	}
	failed := 0
	for _, s := range b.samples {
		if !s.ok {
			failed++
		}
	}
	if float64(failed)/float64(len(b.samples)) >= b.cfg.FailureRate {
		b.transition(now, BreakerOpen)
	}
}
