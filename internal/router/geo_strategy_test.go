package router

import (
	"testing"
	"time"

	"skyfaas/internal/charact"
	"skyfaas/internal/cloudsim"
	"skyfaas/internal/cpu"
	"skyfaas/internal/geo"
	"skyfaas/internal/workload"
)

// charactMake builds a stored characterization for strategy tests.
func charactMake(az string, taken time.Time, counts map[cpu.Kind]int) charact.Characterization {
	c := make(charact.Counts, len(counts))
	for k, n := range counts {
		c[k] = n
	}
	return charact.Characterization{AZ: az, Taken: taken, Counts: c}
}

func TestLatencyBoundFiltersFarZones(t *testing.T) {
	london, _ := geo.City("london")
	frankfurtLoc, _ := geo.City("frankfurt")
	sydneyLoc, _ := geo.City("sydney")
	locator := func(az string) (geo.Coord, bool) {
		switch az {
		case "near-az":
			return frankfurtLoc, true
		case "far-az":
			return sydneyLoc, true
		}
		return geo.Coord{}, false
	}
	dec := mkDecision(t,
		map[cpu.Kind]float64{cpu.Xeon25: 1},
		map[cpu.Kind]float64{cpu.Xeon25: 4000},
	)
	// Store characterizations for both zones; far-az is faster.
	now := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	dec.Store.Put(charactMake("near-az", now, map[cpu.Kind]int{cpu.Xeon25: 1000}))
	dec.Store.Put(charactMake("far-az", now, map[cpu.Kind]int{cpu.Xeon30: 1000}))
	dec.Perf.Observe(workload.Zipper, cpu.Xeon30, 3000)
	dec.Candidates = []string{"near-az", "far-az"}

	// Unbounded: the fast far zone wins.
	if az := (Regional{}).PickAZ(dec); az != "far-az" {
		t.Fatalf("regional picked %s", az)
	}
	// Bounded at 100ms from London: Sydney is filtered out.
	lb := LatencyBound{
		Inner:   Regional{},
		Client:  london,
		MaxRTT:  100 * time.Millisecond,
		Locator: locator,
	}
	if az := lb.PickAZ(dec); az != "near-az" {
		t.Fatalf("latency-bound picked %s, want near-az", az)
	}
	if name := lb.Name(); name != "latency-bound+regional" {
		t.Fatalf("name = %q", name)
	}
}

func TestLatencyBoundDegradesWhenNothingQualifies(t *testing.T) {
	sydneyLoc, _ := geo.City("sydney")
	london, _ := geo.City("london")
	locator := func(string) (geo.Coord, bool) { return sydneyLoc, true }
	dec := mkDecision(t,
		map[cpu.Kind]float64{cpu.Xeon25: 1},
		map[cpu.Kind]float64{cpu.Xeon25: 4000},
	)
	dec.Candidates = []string{"z"}
	lb := LatencyBound{Client: london, MaxRTT: time.Millisecond, Locator: locator}
	if az := lb.PickAZ(dec); az != "z" {
		t.Fatalf("over-strict bound stranded the burst: %q", az)
	}
}

func TestLatencyBoundDefaults(t *testing.T) {
	lb := LatencyBound{}
	if lb.inner().Name() != "hybrid" {
		t.Errorf("default inner = %s", lb.inner().Name())
	}
	if lb.maxRTT() != 120*time.Millisecond {
		t.Errorf("default maxRTT = %v", lb.maxRTT())
	}
	// Without a locator the filter is a no-op.
	if got := lb.filter([]string{"a", "b"}); len(got) != 2 {
		t.Errorf("filter without locator = %v", got)
	}
}

func TestCostAwarePrefersCheaperRateCard(t *testing.T) {
	dec := mkDecision(t,
		map[cpu.Kind]float64{cpu.Xeon25: 1},
		map[cpu.Kind]float64{cpu.Xeon25: 4000},
	)
	now := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	// Same hardware everywhere; "cheap-az" bills 40% less per GB-second.
	dec.Store.Put(charactMake("pricey-az", now, map[cpu.Kind]int{cpu.Xeon25: 1000}))
	dec.Store.Put(charactMake("cheap-az", now, map[cpu.Kind]int{cpu.Xeon25: 1000}))
	dec.Candidates = []string{"pricey-az", "cheap-az"}
	pricer := func(az string) (cloudsim.PriceModel, bool) {
		if az == "cheap-az" {
			return cloudsim.PriceModel{PerGBSecond: 0.00001, GranularityMS: 1}, true
		}
		return cloudsim.PriceModel{PerGBSecond: 0.0000166667, GranularityMS: 1}, true
	}
	ca := CostAware{Pricer: pricer}
	if az := ca.PickAZ(dec); az != "cheap-az" {
		t.Fatalf("cost-aware picked %s", az)
	}
	if ca.Name() != "cost-aware" {
		t.Fatalf("name = %q", ca.Name())
	}
}

func TestCostAwareRuntimeFallback(t *testing.T) {
	// Without a pricer it reduces to expected-runtime comparison.
	dec := mkDecision(t,
		map[cpu.Kind]float64{cpu.Xeon25: 1},
		map[cpu.Kind]float64{cpu.Xeon25: 4000, cpu.Xeon30: 3000},
	)
	now := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	dec.Store.Put(charactMake("slow-az", now, map[cpu.Kind]int{cpu.Xeon25: 1000}))
	dec.Store.Put(charactMake("fast-az", now, map[cpu.Kind]int{cpu.Xeon30: 1000}))
	dec.Candidates = []string{"slow-az", "fast-az"}
	if az := (CostAware{}).PickAZ(dec); az != "fast-az" {
		t.Fatalf("fallback picked %s", az)
	}
	// Empty candidates.
	dec.Candidates = nil
	if az := (CostAware{}).PickAZ(dec); az != "" {
		t.Fatalf("empty candidates -> %q", az)
	}
}

func TestZoneHelpersOverCloud(t *testing.T) {
	_, cloud, _ := world(t)
	locator := NewZoneLocator(cloud)
	if _, ok := locator("slow-az"); !ok {
		t.Error("locator missed a real zone")
	}
	if _, ok := locator("ghost"); ok {
		t.Error("locator resolved a ghost zone")
	}
	pricer := NewZonePricer(cloud)
	price, ok := pricer("slow-az")
	if !ok || price.PerGBSecond == 0 {
		t.Errorf("pricer = %+v ok=%v", price, ok)
	}
	if _, ok := pricer("ghost"); ok {
		t.Error("pricer resolved a ghost zone")
	}
}
