package router

import (
	"testing"

	"skyfaas/internal/cpu"
	"skyfaas/internal/workload"
)

// trainPerf gives the perf model enough observations to rank every kind
// the test zones expose, so ban logic takes its full path.
func trainPerf(r *Router) {
	r.Perf().Observe(workload.Zipper, cpu.Xeon30, 900)
	r.Perf().Observe(workload.Zipper, cpu.Xeon25, 1300)
	r.Perf().Observe(workload.Zipper, cpu.EPYC, 1800)
}

// TestRouteHotPathAllocs pins the allocation budget of the per-invocation
// route path: once a DecisionTable is built, picking the route and
// materializing the call must not allocate — for the pinned strategies
// (Baseline, RetrySlow, FocusFastest) and the cheapest-zone strategies
// (Regional, Hybrid) alike.
func TestRouteHotPathAllocs(t *testing.T) {
	_, cloud, r := world(t)
	seedStore(cloud, r, "slow-az", "fast-az")
	trainPerf(r)
	dec := Decision{
		Workload:   workload.Zipper,
		Candidates: []string{"slow-az", "fast-az"},
		Store:      r.Store(),
		Perf:       r.Perf(),
		Now:        cloud.Env().Now(),
	}
	strategies := []Strategy{
		Baseline{AZ: "slow-az"},
		RetrySlow{AZ: "slow-az"},
		FocusFastest{AZ: "fast-az"},
		Regional{},
		Hybrid{},
	}
	for _, s := range strategies {
		tbl, ok := BuildDecisionTable(s, dec, r.mesh, 2048, 150)
		if !ok {
			t.Fatalf("%s: no decision table", s.Name())
		}
		var az string
		var banned cpu.Mask
		allocs := testing.AllocsPerRun(1000, func() {
			az, banned = tbl.Pick()
			call := tbl.Call(true)
			if call.AZ != az {
				t.Fatal("call zone mismatch")
			}
			call = tbl.Call(false)
			_ = call
		})
		if allocs != 0 {
			t.Errorf("%s: route hot path allocates %.1f allocs/op, budget is 0", s.Name(), allocs)
		}
		if az == "" {
			t.Errorf("%s: empty zone", s.Name())
		}
		_ = banned
	}
}

// TestDecisionTableFreezesStrategy: the table must match what the strategy
// would decide live, for both a pinned and a ranking strategy.
func TestDecisionTableFreezesStrategy(t *testing.T) {
	_, cloud, r := world(t)
	seedStore(cloud, r, "slow-az", "fast-az")
	trainPerf(r)
	dec := Decision{
		Workload:   workload.Zipper,
		Candidates: []string{"slow-az", "fast-az"},
		Store:      r.Store(),
		Perf:       r.Perf(),
		Now:        cloud.Env().Now(),
	}
	for _, s := range []Strategy{FocusFastest{AZ: "fast-az"}, Hybrid{}} {
		tbl, ok := BuildDecisionTable(s, dec, r.mesh, 2048, 150)
		if !ok {
			t.Fatalf("%s: no table", s.Name())
		}
		wantAZ := s.PickAZ(dec)
		if tbl.AZ != wantAZ {
			t.Errorf("%s: table az %s, live az %s", s.Name(), tbl.AZ, wantAZ)
		}
		if want := s.Ban(dec, wantAZ); tbl.Banned != want {
			t.Errorf("%s: table bans %v, live bans %v", s.Name(), tbl.Banned, want)
		}
		call := tbl.Call(true)
		if call.AZ != wantAZ || call.Function != tbl.Endpoint.Function {
			t.Errorf("%s: call %+v does not target the decision", s.Name(), call)
		}
		if open := tbl.Call(false); open.Work == nil {
			t.Errorf("%s: open call lost its behavior", s.Name())
		}
	}
}

// TestBurstStatePooling: states cycle through the pool and come back fully
// reset.
func TestBurstStatePooling(t *testing.T) {
	st := newBurstState(4)
	if len(st.slots) != 4 || len(st.queue) != 4 {
		t.Fatalf("sized %d/%d", len(st.slots), len(st.queue))
	}
	st.slots[2].gen = 7
	st.slots[2].attempts = 3
	st.release()
	st2 := newBurstState(4)
	for i := range st2.slots {
		if st2.slots[i] != (burstSlot{}) {
			t.Fatalf("slot %d not reset: %+v", i, st2.slots[i])
		}
	}
	if len(st2.queue) != 4 {
		t.Fatalf("queue not rebuilt: %d", len(st2.queue))
	}
	st2.release()
}

// TestBurstStateRefcount pins the retain/settle/finish protocol: a state
// whose burst has returned stays out of the pool until the last in-flight
// reference (a hedge loser, an armed timer) settles, and states always
// come back from the pool with the bookkeeping reset.
func TestBurstStateRefcount(t *testing.T) {
	st := newBurstState(2)
	sl := &st.slots[0]
	st.retain(sl) // primary response in flight
	st.retain(sl) // hedge twin in flight
	if sl.refs != 2 || st.pending != 2 {
		t.Fatalf("refs=%d pending=%d after two retains", sl.refs, st.pending)
	}
	st.finish() // burst returns with both responses outstanding
	if !st.finished {
		t.Fatal("finish did not mark the state finished")
	}
	st.settle(sl) // winner arrives
	if st.pending != 1 {
		t.Fatalf("pending=%d after first settle", st.pending)
	}
	st.settle(sl) // losing twin straggles in — this settle pools the state
	nxt := newBurstState(2)
	if nxt.pending != 0 || nxt.finished {
		t.Fatalf("pooled state not reset: pending=%d finished=%v", nxt.pending, nxt.finished)
	}
	for i := range nxt.slots {
		if nxt.slots[i] != (burstSlot{}) {
			t.Fatalf("slot %d not reset: %+v", i, nxt.slots[i])
		}
	}
	nxt.release()

	// The reverse interleaving: all references settle before the burst
	// returns (hedging off, or every twin already resolved). finish alone
	// must pool the state.
	st3 := newBurstState(1)
	sl3 := &st3.slots[0]
	st3.retain(sl3)
	st3.settle(sl3)
	if st3.finished {
		t.Fatal("settle before finish must not mark finished")
	}
	st3.finish()
	st4 := newBurstState(1)
	if st4.pending != 0 || st4.finished {
		t.Fatalf("state after finish-last not reset: pending=%d finished=%v", st4.pending, st4.finished)
	}
	st4.release()
}
