package router

import (
	"sort"

	"skyfaas/internal/charact"
	"skyfaas/internal/cpu"
	"skyfaas/internal/stats"
	"skyfaas/internal/workload"
)

// PerfModel accumulates observed runtimes per (workload, CPU kind) — the
// profiling data of EX-5's baseline step. All knowledge in the model comes
// from SAAF reports of real (simulated) executions; it never peeks at the
// simulator's ground truth.
type PerfModel struct {
	byWorkload map[workload.ID]map[cpu.Kind]*stats.Running
}

// NewPerfModel returns an empty model.
func NewPerfModel() *PerfModel {
	return &PerfModel{byWorkload: make(map[workload.ID]map[cpu.Kind]*stats.Running)}
}

// Observe folds one execution's billed runtime into the model.
func (m *PerfModel) Observe(w workload.ID, k cpu.Kind, runtimeMS float64) {
	byKind, ok := m.byWorkload[w]
	if !ok {
		byKind = make(map[cpu.Kind]*stats.Running)
		m.byWorkload[w] = byKind
	}
	r, ok := byKind[k]
	if !ok {
		r = &stats.Running{}
		byKind[k] = r
	}
	r.Add(runtimeMS)
}

// Mean returns the observed mean runtime of w on k.
func (m *PerfModel) Mean(w workload.ID, k cpu.Kind) (float64, bool) {
	if byKind, ok := m.byWorkload[w]; ok {
		if r, ok := byKind[k]; ok && r.N() > 0 {
			return r.Mean(), true
		}
	}
	return 0, false
}

// Samples returns how many observations back the (w, k) estimate.
func (m *PerfModel) Samples(w workload.ID, k cpu.Kind) int {
	if byKind, ok := m.byWorkload[w]; ok {
		if r, ok := byKind[k]; ok {
			return r.N()
		}
	}
	return 0
}

// Kinds returns the CPU kinds with observations for w, sorted fastest
// (lowest mean runtime) first.
func (m *PerfModel) Kinds(w workload.ID) []cpu.Kind {
	byKind, ok := m.byWorkload[w]
	if !ok {
		return nil
	}
	kinds := make([]cpu.Kind, 0, len(byKind))
	for k, r := range byKind {
		if r.N() > 0 {
			kinds = append(kinds, k)
		}
	}
	sort.Slice(kinds, func(i, j int) bool {
		mi, _ := m.Mean(w, kinds[i])
		mj, _ := m.Mean(w, kinds[j])
		if mi != mj {
			return mi < mj
		}
		return kinds[i] < kinds[j]
	})
	return kinds
}

// Normalized returns mean runtimes of w relative to the reference Xeon
// 2.50 GHz (Fig. 9's presentation). Kinds without observations are absent;
// returns nil when the reference itself is unobserved.
func (m *PerfModel) Normalized(w workload.ID) map[cpu.Kind]float64 {
	ref, ok := m.Mean(w, cpu.Xeon25)
	if !ok || ref == 0 {
		return nil
	}
	out := make(map[cpu.Kind]float64)
	for k := range m.byWorkload[w] {
		if mean, ok := m.Mean(w, k); ok {
			out[k] = mean / ref
		}
	}
	return out
}

// ExpectedMS returns the expected runtime of w over a zone's CPU
// distribution: the share-weighted mean. Kinds without observations fall
// back to the overall observed mean so one gap does not poison the
// comparison; ok is false when nothing is observed at all.
func (m *PerfModel) ExpectedMS(w workload.ID, d charact.Dist) (float64, bool) {
	byKind, ok := m.byWorkload[w]
	if !ok || len(byKind) == 0 {
		return 0, false
	}
	// Sums run in catalog order so rounding is identical on every run.
	var overallSum float64
	var overallN int
	for _, k := range cpu.Kinds() {
		if r, ok := byKind[k]; ok {
			overallSum += r.Mean() * float64(r.N())
			overallN += r.N()
		}
	}
	if overallN == 0 {
		return 0, false
	}
	overall := overallSum / float64(overallN)
	var expected, covered float64
	for _, k := range cpu.Kinds() {
		share := d.Share(k)
		if share <= 0 {
			continue
		}
		mean, ok := m.Mean(w, k)
		if !ok {
			mean = overall
		}
		expected += share * mean
		covered += share
	}
	if covered == 0 {
		return overall, true
	}
	return expected / covered, true
}
