package router

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestBuildKnownStrategies(t *testing.T) {
	cases := []struct {
		spec StrategySpec
		want Strategy
	}{
		{StrategySpec{Name: "baseline", AZ: "z1"}, Baseline{AZ: "z1"}},
		{StrategySpec{Name: "regional"}, Regional{}},
		{StrategySpec{Name: "retry-slow", AZ: "z1"}, RetrySlow{AZ: "z1"}},
		{StrategySpec{Name: "focus-fastest", AZ: "z1"}, FocusFastest{AZ: "z1"}},
		{StrategySpec{Name: "hybrid"}, Hybrid{}},
		{StrategySpec{Name: "cost-aware", Params: map[string]float64{"memoryMB": 2048}}, CostAware{MemoryMB: 2048}},
	}
	for _, tc := range cases {
		got, err := Build(tc.spec)
		if err != nil {
			t.Errorf("Build(%+v): %v", tc.spec, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Build(%+v) = %#v, want %#v", tc.spec, got, tc.want)
		}
	}
}

func TestBuildUnknownStrategyListsNames(t *testing.T) {
	_, err := Build(StrategySpec{Name: "teleport"})
	if !errors.Is(err, ErrUnknownStrategy) {
		t.Fatalf("err = %v, want ErrUnknownStrategy", err)
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list valid strategy %q", err, name)
		}
	}
}

func TestBuildPinnedStrategiesNeedAZ(t *testing.T) {
	for _, name := range []string{"baseline", "retry-slow", "focus-fastest"} {
		_, err := Build(StrategySpec{Name: name})
		if !errors.Is(err, ErrBadSpec) {
			t.Errorf("Build(%s with no az) = %v, want ErrBadSpec", name, err)
		}
	}
}

func TestBuildRejectsBadParams(t *testing.T) {
	for _, spec := range []StrategySpec{
		{Name: "latency-bound", Params: map[string]float64{"maxRTTMS": -5}},
		{Name: "cost-aware", Params: map[string]float64{"memoryMB": 0}},
	} {
		if _, err := Build(spec); !errors.Is(err, ErrBadSpec) {
			t.Errorf("Build(%+v) = %v, want ErrBadSpec", spec, err)
		}
	}
}

func TestBuildLatencyBoundWiresDeps(t *testing.T) {
	s, err := Build(StrategySpec{
		Name:   "latency-bound",
		Params: map[string]float64{"maxRTTMS": 80, "clientLat": 47.6, "clientLon": -122.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	lb, ok := s.(LatencyBound)
	if !ok {
		t.Fatalf("built %T, want LatencyBound", s)
	}
	if lb.MaxRTT != 80*time.Millisecond || lb.Client.Lat != 47.6 || lb.Client.Lon != -122.3 {
		t.Fatalf("lb = %+v", lb)
	}
	if lb.Name() != "latency-bound+hybrid" {
		t.Fatalf("name = %q", lb.Name())
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	want := []string{"baseline", "cost-aware", "focus-fastest", "hybrid", "latency-bound", "regional", "retry-slow"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	// Every registered name must build a strategy whose Name() round-trips
	// (composites prefix their inner strategy's name).
	for _, name := range names {
		s, err := Build(StrategySpec{Name: name, AZ: "z1"})
		if err != nil {
			t.Errorf("Build(%q): %v", name, err)
			continue
		}
		if !strings.Contains(s.Name(), name) {
			t.Errorf("Build(%q).Name() = %q", name, s.Name())
		}
	}
}
