package router

import (
	"testing"

	"skyfaas/internal/cpu"
	"skyfaas/internal/faas"
	"skyfaas/internal/workload"
)

var (
	benchCall faas.Call
	benchAZ   string
	benchBan  cpu.Mask
)

// BenchmarkRouteHotPath measures the per-invocation route path after the
// decision is frozen: Pick + Call, exactly what the burst loop executes per
// slot. The allocs/op column is the contract — 0 for the pinned strategy
// and 0 for the cheapest-zone strategy — and `make bench-check` holds it
// there against BENCH_route.json.
func BenchmarkRouteHotPath(b *testing.B) {
	_, cloud, r := world(b)
	seedStore(cloud, r, "slow-az", "fast-az")
	trainPerf(r)
	dec := Decision{
		Workload:   workload.Zipper,
		Candidates: []string{"slow-az", "fast-az"},
		Store:      r.Store(),
		Perf:       r.Perf(),
		Now:        cloud.Env().Now(),
	}
	for _, arm := range []struct {
		name string
		s    Strategy
	}{
		{"pinned", FocusFastest{AZ: "fast-az"}},
		{"cheapest", Hybrid{}},
	} {
		b.Run(arm.name, func(b *testing.B) {
			tbl, ok := BuildDecisionTable(arm.s, dec, r.mesh, 2048, 150)
			if !ok {
				b.Fatal("no decision table")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchAZ, benchBan = tbl.Pick()
				benchCall = tbl.Call(true)
				benchCall = tbl.Call(false)
			}
		})
	}
}

// BenchmarkBuildDecisionTable measures the slow path the table amortizes —
// one full strategy decision per burst or failover.
func BenchmarkBuildDecisionTable(b *testing.B) {
	_, cloud, r := world(b)
	seedStore(cloud, r, "slow-az", "fast-az")
	trainPerf(r)
	dec := Decision{
		Workload:   workload.Zipper,
		Candidates: []string{"slow-az", "fast-az"},
		Store:      r.Store(),
		Perf:       r.Perf(),
		Now:        cloud.Env().Now(),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl, ok := BuildDecisionTable(Hybrid{}, dec, r.mesh, 2048, 150)
		if !ok {
			b.Fatal("no decision table")
		}
		benchAZ = tbl.AZ
	}
}
