package router

import (
	"time"

	"skyfaas/internal/cpu"
	"skyfaas/internal/metrics"
)

// UseMetrics attaches an instrumentation registry: every burst reports its
// route decision, retries, platform failures, region hops, per-CPU
// completions, and elapsed time. Nil detaches.
func (r *Router) UseMetrics(reg *metrics.Registry) { r.metrics = reg }

// burstMetrics caches the per-strategy series one burst updates, resolved
// once at burst start so the streaming retry loop stays allocation- and
// lock-free.
type burstMetrics struct {
	reg       *metrics.Registry
	strategy  string
	retries   *metrics.Counter
	failures  *metrics.Counter
	failovers *metrics.Counter
	hedges    *metrics.Counter
	hedgeWins *metrics.Counter
	abandoned *metrics.Counter
	elapsedMS *metrics.Histogram
}

func (r *Router) burstMetrics(strategy string) burstMetrics {
	sL := metrics.L("strategy", strategy)
	return burstMetrics{
		reg:      r.metrics,
		strategy: strategy,
		retries: r.metrics.Counter("sky_router_retries_total",
			"invocations reissued after a CPU-ban decline", sL),
		failures: r.metrics.Counter("sky_router_failures_total",
			"invocations reissued after a platform failure", sL),
		failovers: r.metrics.Counter("sky_router_failovers_total",
			"mid-burst re-routes to another zone after a breaker opened", sL),
		hedges: r.metrics.Counter("sky_router_hedges_total",
			"duplicate requests issued against slow slots", sL),
		hedgeWins: r.metrics.Counter("sky_router_hedge_wins_total",
			"hedged requests whose duplicate answered first", sL),
		abandoned: r.metrics.Counter("sky_router_abandoned_total",
			"slots dropped after exhausting their retry budget", sL),
		elapsedMS: r.metrics.Histogram("sky_router_burst_elapsed_ms",
			"burst wall time from start to last completion (virtual milliseconds)", nil, sL),
	}
}

// recordDecision counts the route decision and, when the strategy hopped
// away from the home (first-candidate) zone, the region hop.
func (m burstMetrics) recordDecision(az string, candidates []string) {
	sL := metrics.L("strategy", m.strategy)
	m.reg.Counter("sky_router_bursts_total",
		"bursts routed, by strategy", sL).Inc()
	if len(candidates) > 0 && az != candidates[0] {
		m.reg.Counter("sky_router_region_hops_total",
			"bursts placed away from the home (first-candidate) zone", sL).Inc()
	}
}

// recordResult publishes where a finished burst's work actually ran: the
// per-CPU completion tallies, the fast/slow hit split against the perf
// model's fastest known kind for the workload, and the elapsed time.
func (m burstMetrics) recordResult(res BurstResult, perf *PerfModel, elapsed time.Duration) {
	if m.reg == nil {
		return
	}
	sL := metrics.L("strategy", m.strategy)
	var fastest cpu.Kind
	if ranked := perf.Kinds(res.Workload); len(ranked) > 0 {
		fastest = ranked[0]
	}
	var fast, slow uint64
	for kind, n := range res.PerCPU {
		m.reg.Counter("sky_router_completions_total",
			"completed invocations, by strategy and the CPU they ran on",
			sL, metrics.L("cpu", kind.String())).Add(uint64(n))
		if kind == fastest {
			fast += uint64(n)
		} else {
			slow += uint64(n)
		}
	}
	if fastest != 0 {
		m.reg.Counter("sky_router_fast_cpu_hits_total",
			"completions that landed on the workload's fastest known CPU", sL).Add(fast)
		m.reg.Counter("sky_router_slow_cpu_hits_total",
			"completions that landed on any slower CPU", sL).Add(slow)
	}
	m.elapsedMS.Observe(float64(elapsed) / float64(time.Millisecond))
}
