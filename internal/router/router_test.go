package router

import (
	"math"
	"testing"
	"time"

	"skyfaas/internal/charact"
	"skyfaas/internal/cloudsim"
	"skyfaas/internal/cpu"
	"skyfaas/internal/faas"
	"skyfaas/internal/geo"
	"skyfaas/internal/mesh"
	"skyfaas/internal/sim"
	"skyfaas/internal/workload"
)

var testEpoch = time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)

// world builds a two-zone cloud: "slow-az" is a 50/50 mix of the baseline
// 2.5 GHz and EPYC; "fast-az" is 60% 3.0 GHz / 40% baseline.
func world(t testing.TB) (*sim.Env, *cloudsim.Cloud, *Router) {
	t.Helper()
	env := sim.NewEnv(testEpoch)
	catalog := []cloudsim.RegionSpec{{
		Provider: cloudsim.AWS, Name: "r1", Loc: geo.Coord{Lat: 40, Lon: -80},
		AZs: []cloudsim.AZSpec{
			{Name: "slow-az", PoolFIs: 4096,
				Mix: map[cpu.Kind]float64{cpu.Xeon25: 0.5, cpu.EPYC: 0.5}},
			{Name: "fast-az", PoolFIs: 4096,
				Mix: map[cpu.Kind]float64{cpu.Xeon30: 0.6, cpu.Xeon25: 0.4}},
		},
	}}
	cloud := cloudsim.New(env, 21, catalog, cloudsim.Options{HorizonDays: 2})
	m, err := mesh.Build(cloud, mesh.Config{
		AWSMemoriesMB: []int{2048},
		AWSArchs:      []cpu.Arch{cpu.X86},
	})
	if err != nil {
		t.Fatal(err)
	}
	client := faas.NewClient(cloud, "router-acct")
	r := New(client, m, charact.NewStore(24*time.Hour), NewPerfModel())
	return env, cloud, r
}

// seedStore fills the store with the zones' true mixes (as if sampled).
func seedStore(cloud *cloudsim.Cloud, r *Router, azs ...string) {
	for _, name := range azs {
		az, _ := cloud.AZ(name)
		counts := make(charact.Counts)
		for kind, share := range az.TrueMix() {
			counts[kind] = int(share * 1000)
		}
		r.Store().Put(charact.Characterization{
			AZ: name, Taken: cloud.Env().Now(), Polls: 6, Samples: 1000, Counts: counts,
		})
	}
}

func TestPerfModelBasics(t *testing.T) {
	m := NewPerfModel()
	if _, ok := m.Mean(workload.Zipper, cpu.Xeon25); ok {
		t.Fatal("empty model has a mean")
	}
	if _, ok := m.ExpectedMS(workload.Zipper, charact.Dist{cpu.Xeon25: 1}); ok {
		t.Fatal("empty model has an expectation")
	}
	m.Observe(workload.Zipper, cpu.Xeon25, 1000)
	m.Observe(workload.Zipper, cpu.Xeon25, 1100)
	m.Observe(workload.Zipper, cpu.Xeon30, 900)
	m.Observe(workload.Zipper, cpu.EPYC, 1400)
	mean, ok := m.Mean(workload.Zipper, cpu.Xeon25)
	if !ok || math.Abs(mean-1050) > 1e-9 {
		t.Fatalf("mean = %v", mean)
	}
	if m.Samples(workload.Zipper, cpu.Xeon25) != 2 {
		t.Fatalf("samples = %d", m.Samples(workload.Zipper, cpu.Xeon25))
	}
	kinds := m.Kinds(workload.Zipper)
	if len(kinds) != 3 || kinds[0] != cpu.Xeon30 || kinds[2] != cpu.EPYC {
		t.Fatalf("ranked kinds = %v", kinds)
	}
	norm := m.Normalized(workload.Zipper)
	if math.Abs(norm[cpu.Xeon30]-900.0/1050) > 1e-9 {
		t.Fatalf("normalized = %v", norm)
	}
}

func TestPerfModelExpectedMS(t *testing.T) {
	m := NewPerfModel()
	m.Observe(workload.Zipper, cpu.Xeon25, 1000)
	m.Observe(workload.Zipper, cpu.Xeon30, 800)
	d := charact.Dist{cpu.Xeon25: 0.5, cpu.Xeon30: 0.5}
	got, ok := m.ExpectedMS(workload.Zipper, d)
	if !ok || math.Abs(got-900) > 1e-9 {
		t.Fatalf("expected = %v ok=%v", got, ok)
	}
	// Unobserved kind falls back to overall mean instead of poisoning.
	d2 := charact.Dist{cpu.Xeon25: 0.5, cpu.EPYC: 0.5}
	got2, ok := m.ExpectedMS(workload.Zipper, d2)
	if !ok || got2 <= 0 {
		t.Fatalf("expected with gap = %v", got2)
	}
}

func TestStrategiesPickAndBan(t *testing.T) {
	_, cloud, r := world(t)
	seedStore(cloud, r, "slow-az", "fast-az")
	perf := r.Perf()
	// Train a simple profile: 3.0 fastest, EPYC slowest, with gaps above
	// the 300ms retry-economics guard.
	perf.Observe(workload.Zipper, cpu.Xeon30, 2400)
	perf.Observe(workload.Zipper, cpu.Xeon25, 2820)
	perf.Observe(workload.Zipper, cpu.EPYC, 3900)
	dec := Decision{
		Workload:   workload.Zipper,
		Candidates: []string{"slow-az", "fast-az"},
		Store:      r.Store(),
		Perf:       perf,
		Now:        cloud.Env().Now(),
	}

	if az := (Baseline{AZ: "slow-az"}).PickAZ(dec); az != "slow-az" {
		t.Errorf("baseline picked %s", az)
	}
	if banned := (Baseline{AZ: "slow-az"}).Ban(dec, "slow-az"); !banned.Empty() {
		t.Errorf("baseline bans %v", banned)
	}

	if az := (Regional{}).PickAZ(dec); az != "fast-az" {
		t.Errorf("regional picked %s, want fast-az", az)
	}

	rs := RetrySlow{AZ: "slow-az"}
	banned := rs.Ban(dec, "slow-az")
	if !banned.Has(cpu.EPYC) {
		t.Errorf("retry-slow bans = %v, want EPYC banned", banned)
	}
	if banned.Has(cpu.Xeon25) {
		t.Error("retry-slow banned the fastest present kind")
	}

	ff := FocusFastest{AZ: "fast-az"}
	banned = ff.Ban(dec, "fast-az")
	if banned.Has(cpu.Xeon30) {
		t.Error("focus-fastest banned the fastest kind")
	}
	if !banned.Has(cpu.Xeon25) {
		t.Errorf("focus-fastest bans = %v, want all but fastest", banned)
	}

	hy := Hybrid{}
	if az := hy.PickAZ(dec); az != "fast-az" {
		t.Errorf("hybrid picked %s", az)
	}
	banned = hy.Ban(dec, "fast-az")
	if banned.Has(cpu.Xeon30) || !banned.Has(cpu.Xeon25) {
		t.Errorf("hybrid bans = %v", banned)
	}
}

func TestFocusFastestRareCPUGuard(t *testing.T) {
	m := NewPerfModel()
	m.Observe(workload.Zipper, cpu.Xeon30, 900)
	m.Observe(workload.Zipper, cpu.Xeon25, 1000)
	m.Observe(workload.Zipper, cpu.Xeon29, 1200)
	m.Observe(workload.Zipper, cpu.EPYC, 1400)
	store := charact.NewStore(0)
	store.Put(charact.Characterization{
		AZ: "z", Taken: testEpoch,
		// 3.0 GHz nearly absent: focusing it would retry forever.
		Counts: charact.Counts{cpu.Xeon30: 1, cpu.Xeon25: 600, cpu.Xeon29: 250, cpu.EPYC: 149},
	})
	dec := Decision{Workload: workload.Zipper, Store: store, Perf: m, Now: testEpoch}
	banned := FocusFastest{AZ: "z"}.Ban(dec, "z")
	if banned.Has(cpu.Xeon25) {
		t.Errorf("rare-CPU guard failed: banned the workhorse kind; bans=%v", banned)
	}
	if !banned.Has(cpu.EPYC) || !banned.Has(cpu.Xeon29) {
		t.Errorf("guard should degrade to retry-slow; bans=%v", banned)
	}
}

func TestStrategyWithoutCharacterizationFallsBack(t *testing.T) {
	m := NewPerfModel()
	store := charact.NewStore(0)
	dec := Decision{
		Workload:   workload.Zipper,
		Candidates: []string{"a", "b"},
		Store:      store,
		Perf:       m,
		Now:        testEpoch,
	}
	if az := (Regional{}).PickAZ(dec); az != "a" {
		t.Errorf("uncharacterized regional pick = %s, want first candidate", az)
	}
	if banned := (RetrySlow{AZ: "a"}).Ban(dec, "a"); !banned.Empty() {
		t.Errorf("bans without characterization: %v", banned)
	}
}

func TestProfileLearnsFig9Ordering(t *testing.T) {
	env, _, r := world(t)
	env.Go("profile", func(p *sim.Proc) error {
		cost, err := r.Profile(p, workload.LogisticRegression, []string{"slow-az", "fast-az"}, 1200, 0)
		if err != nil {
			return err
		}
		if cost <= 0 {
			t.Error("profiling cost not accounted")
		}
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	perf := r.Perf()
	m30, ok30 := perf.Mean(workload.LogisticRegression, cpu.Xeon30)
	m25, ok25 := perf.Mean(workload.LogisticRegression, cpu.Xeon25)
	mEpyc, okE := perf.Mean(workload.LogisticRegression, cpu.EPYC)
	if !ok30 || !ok25 || !okE {
		t.Fatalf("missing observations: 30=%v 25=%v epyc=%v", ok30, ok25, okE)
	}
	if !(m30 < m25 && m25 < mEpyc) {
		t.Errorf("learned ordering wrong: 3.0=%.0f 2.5=%.0f epyc=%.0f", m30, m25, mEpyc)
	}
	// Learned ratios approximate the hidden ground truth.
	spec := workload.MustGet(workload.LogisticRegression)
	if ratio := mEpyc / m25; math.Abs(ratio-spec.CPUFactor(cpu.EPYC)) > 0.12 {
		t.Errorf("EPYC ratio learned %.2f, truth %.2f", ratio, spec.CPUFactor(cpu.EPYC))
	}
}

func TestBurstBaselineCompletes(t *testing.T) {
	env, cloud, r := world(t)
	seedStore(cloud, r, "slow-az", "fast-az")
	var res BurstResult
	env.Go("burst", func(p *sim.Proc) error {
		var err error
		res, err = r.Burst(p, BurstSpec{
			Strategy: Baseline{AZ: "slow-az"},
			Workload: workload.Sha1Hash,
			N:        200,
		})
		return err
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if res.Completed != 200 || res.Declined != 0 || res.Attempts != 200 {
		t.Fatalf("result = %+v", res)
	}
	if res.CostUSD <= 0 || res.MeanRunMS() <= 0 {
		t.Fatalf("metrics = %+v", res)
	}
	// Work landed on both kinds present in the zone.
	if len(res.PerCPU) < 2 {
		t.Errorf("perCPU = %v", res.PerCPU)
	}
}

func TestBurstFocusFastestAvoidsBannedCPUs(t *testing.T) {
	env, cloud, r := world(t)
	seedStore(cloud, r, "slow-az", "fast-az")
	perf := r.Perf()
	// Gap (420ms) comfortably above the retry-economics guard (300ms).
	perf.Observe(workload.Zipper, cpu.Xeon30, 2400)
	perf.Observe(workload.Zipper, cpu.Xeon25, 2820)
	var res BurstResult
	env.Go("burst", func(p *sim.Proc) error {
		var err error
		res, err = r.Burst(p, BurstSpec{
			Strategy: FocusFastest{AZ: "fast-az"},
			Workload: workload.Zipper,
			N:        600,
		})
		return err
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if res.Completed != 600 {
		t.Fatalf("completed = %d", res.Completed)
	}
	if res.PerCPU[cpu.Xeon25] != 0 {
		t.Errorf("%d executions on banned 2.5GHz", res.PerCPU[cpu.Xeon25])
	}
	if res.PerCPU[cpu.Xeon30] != 600 {
		t.Errorf("perCPU = %v", res.PerCPU)
	}
	if res.Declined == 0 {
		t.Error("focus-fastest on a 60/40 zone should decline some placements")
	}
	if res.RetryFrac() <= 0 {
		t.Error("retry fraction zero")
	}
}

func TestBurstCheaperOnFastZone(t *testing.T) {
	env, cloud, r := world(t)
	seedStore(cloud, r, "slow-az", "fast-az")
	var slow, fast BurstResult
	env.Go("burst", func(p *sim.Proc) error {
		var err error
		slow, err = r.Burst(p, BurstSpec{
			Strategy: Baseline{AZ: "slow-az"}, Workload: workload.MathService, N: 150,
		})
		if err != nil {
			return err
		}
		fast, err = r.Burst(p, BurstSpec{
			Strategy: Baseline{AZ: "fast-az"}, Workload: workload.MathService, N: 150,
		})
		return err
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if fast.CostUSD >= slow.CostUSD {
		t.Errorf("fast zone cost $%.4f not below slow zone $%.4f", fast.CostUSD, slow.CostUSD)
	}
}

func TestBurstValidation(t *testing.T) {
	env, _, r := world(t)
	env.Go("burst", func(p *sim.Proc) error {
		if _, err := r.Burst(p, BurstSpec{Workload: workload.Zipper, N: 1}); err == nil {
			t.Error("nil strategy accepted")
		}
		if _, err := r.Burst(p, BurstSpec{Strategy: Baseline{AZ: "slow-az"}, Workload: workload.Zipper}); err == nil {
			t.Error("zero N accepted")
		}
		if _, err := r.Burst(p, BurstSpec{Strategy: Baseline{AZ: "ghost"}, Workload: workload.Zipper, N: 1}); err == nil {
			t.Error("unknown AZ accepted")
		}
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBurstLearnFeedsPerfModel(t *testing.T) {
	env, cloud, r := world(t)
	seedStore(cloud, r, "slow-az")
	env.Go("burst", func(p *sim.Proc) error {
		_, err := r.Burst(p, BurstSpec{
			Strategy: Baseline{AZ: "slow-az"}, Workload: workload.GraphBFS, N: 60, Learn: true,
		})
		return err
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(r.Perf().Kinds(workload.GraphBFS)) == 0 {
		t.Error("Learn did not feed the perf model")
	}
}
