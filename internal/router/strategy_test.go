package router

import (
	"testing"
	"time"

	"skyfaas/internal/charact"
	"skyfaas/internal/cpu"
	"skyfaas/internal/workload"
)

// mkDecision builds a Decision over a synthetic store and perf model.
func mkDecision(t *testing.T, shares map[cpu.Kind]float64, means map[cpu.Kind]float64) Decision {
	t.Helper()
	store := charact.NewStore(0)
	counts := make(charact.Counts)
	for k, s := range shares {
		counts[k] = int(s * 1000)
	}
	now := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	store.Put(charact.Characterization{AZ: "z", Taken: now, Counts: counts})
	perf := NewPerfModel()
	for k, m := range means {
		perf.Observe(workload.Zipper, k, m)
	}
	return Decision{Workload: workload.Zipper, Store: store, Perf: perf, Now: now}
}

func TestOptimalBanSetBansWhenProfitable(t *testing.T) {
	// EPYC is 1.5s slower with a 20% share: banning costs
	// (0.2/0.8)*150 = 37.5ms of holds against a 300ms expected gain.
	dec := mkDecision(t,
		map[cpu.Kind]float64{cpu.Xeon25: 0.8, cpu.EPYC: 0.2},
		map[cpu.Kind]float64{cpu.Xeon25: 4000, cpu.EPYC: 5500},
	)
	banned := optimalBanSet(dec, dec.Lookup("z").Dist, 150)
	if !banned.Has(cpu.EPYC) || banned.Has(cpu.Xeon25) {
		t.Fatalf("bans = %v", banned)
	}
}

func TestOptimalBanSetSkipsUnprofitableBans(t *testing.T) {
	// The "fast" kind is only 50ms faster but holds 5% share: focusing it
	// would cost (0.95/0.05)*150 = 2850ms per completion for a 47.5ms gain.
	dec := mkDecision(t,
		map[cpu.Kind]float64{cpu.Xeon25: 0.95, cpu.Xeon30: 0.05},
		map[cpu.Kind]float64{cpu.Xeon25: 4000, cpu.Xeon30: 3950},
	)
	if banned := optimalBanSet(dec, dec.Lookup("z").Dist, 150); !banned.Empty() {
		t.Fatalf("bans = %v, want none", banned)
	}
}

func TestOptimalBanSetPicksInteriorCutoff(t *testing.T) {
	// Three kinds: banning EPYC pays for itself; also banning the 2.5GHz
	// does not (3.0 share too small relative to its modest edge).
	dec := mkDecision(t,
		map[cpu.Kind]float64{cpu.Xeon30: 0.10, cpu.Xeon25: 0.70, cpu.EPYC: 0.20},
		map[cpu.Kind]float64{cpu.Xeon30: 3800, cpu.Xeon25: 4000, cpu.EPYC: 6000},
	)
	banned := optimalBanSet(dec, dec.Lookup("z").Dist, 150)
	if !banned.Has(cpu.EPYC) {
		t.Errorf("EPYC not banned: %v", banned)
	}
	if banned.Has(cpu.Xeon25) {
		t.Errorf("2.5GHz banned despite thin 3.0GHz supply: %v", banned)
	}
}

func TestOptimalBanSetFocusesWhenFastIsPlentiful(t *testing.T) {
	// 60% of the zone is a much faster CPU: full focus is optimal.
	dec := mkDecision(t,
		map[cpu.Kind]float64{cpu.Xeon30: 0.6, cpu.Xeon25: 0.3, cpu.EPYC: 0.1},
		map[cpu.Kind]float64{cpu.Xeon30: 3400, cpu.Xeon25: 4200, cpu.EPYC: 6000},
	)
	banned := optimalBanSet(dec, dec.Lookup("z").Dist, 150)
	if !banned.Has(cpu.Xeon25) || !banned.Has(cpu.EPYC) || banned.Has(cpu.Xeon30) {
		t.Fatalf("bans = %v, want all but 3.0GHz", banned)
	}
}

func TestOptimalBanSetDegenerateInputs(t *testing.T) {
	// Single kind present: nothing to ban.
	dec := mkDecision(t,
		map[cpu.Kind]float64{cpu.Xeon25: 1},
		map[cpu.Kind]float64{cpu.Xeon25: 4000},
	)
	if banned := optimalBanSet(dec, dec.Lookup("z").Dist, 150); !banned.Empty() {
		t.Fatalf("bans = %v", banned)
	}
	// No characterization.
	empty := Decision{Workload: workload.Zipper, Store: charact.NewStore(0), Perf: NewPerfModel()}
	if banned := optimalBanSet(empty, empty.Lookup("ghost").Dist, 150); !banned.Empty() {
		t.Fatalf("bans without characterization = %v", banned)
	}
	// Characterized kinds with no perf observations are ignored.
	dec2 := mkDecision(t,
		map[cpu.Kind]float64{cpu.Xeon25: 0.5, cpu.EPYC: 0.5},
		map[cpu.Kind]float64{cpu.Xeon25: 4000}, // EPYC never profiled
	)
	if banned := optimalBanSet(dec2, dec2.Lookup("z").Dist, 150); !banned.Empty() {
		t.Fatalf("bans with unprofiled kind = %v", banned)
	}
}

func TestHybridUsesOptimalBans(t *testing.T) {
	dec := mkDecision(t,
		map[cpu.Kind]float64{cpu.Xeon30: 0.6, cpu.Xeon25: 0.4},
		map[cpu.Kind]float64{cpu.Xeon30: 3400, cpu.Xeon25: 4200},
	)
	banned := Hybrid{}.Ban(dec, "z")
	if !banned.Has(cpu.Xeon25) || banned.Has(cpu.Xeon30) {
		t.Fatalf("hybrid bans = %v", banned)
	}
	// A custom hold changes the economics: with an enormous hold no ban
	// can pay for itself.
	if banned := (Hybrid{HoldMS: 1e6}).Ban(dec, "z"); !banned.Empty() {
		t.Fatalf("hybrid with huge hold bans %v", banned)
	}
}

func TestFocusFastestMinShareDefault(t *testing.T) {
	// Fastest kind holds 10% (< default 15% guard): focus degrades to
	// banning the slowest kinds instead of chasing the rare CPU.
	dec := mkDecision(t,
		map[cpu.Kind]float64{cpu.Xeon30: 0.10, cpu.Xeon25: 0.60, cpu.EPYC: 0.30},
		map[cpu.Kind]float64{cpu.Xeon30: 3400, cpu.Xeon25: 4200, cpu.EPYC: 6000},
	)
	banned := FocusFastest{AZ: "z"}.Ban(dec, "z")
	if banned.Has(cpu.Xeon25) {
		t.Fatalf("guard failed, banned the workhorse: %v", banned)
	}
	if !banned.Has(cpu.EPYC) {
		t.Fatalf("slowest kind not banned: %v", banned)
	}
}

func TestBaselineAndRegionalNames(t *testing.T) {
	for _, tc := range []struct {
		s    Strategy
		want string
	}{
		{Baseline{}, "baseline"},
		{Regional{}, "regional"},
		{RetrySlow{}, "retry-slow"},
		{FocusFastest{}, "focus-fastest"},
		{Hybrid{}, "hybrid"},
	} {
		if got := tc.s.Name(); got != tc.want {
			t.Errorf("name = %q, want %q", got, tc.want)
		}
	}
}
