package router

import (
	"strings"
	"testing"

	"skyfaas/internal/cpu"
	"skyfaas/internal/metrics"
	"skyfaas/internal/sim"
	"skyfaas/internal/workload"
)

// metricValue digs one series' value out of a snapshot; -1 means absent.
func metricValue(snap metrics.Snapshot, name string, labels ...metrics.Label) float64 {
	for _, fam := range snap.Metrics {
		if fam.Name != name {
			continue
		}
	series:
		for _, s := range fam.Series {
			for _, want := range labels {
				found := false
				for _, l := range s.Labels {
					if l == want {
						found = true
						break
					}
				}
				if !found {
					continue series
				}
			}
			return s.Value
		}
	}
	return -1
}

func TestBurstReportsMetrics(t *testing.T) {
	env, cloud, r := world(t)
	reg := metrics.NewRegistry()
	r.UseMetrics(reg)
	seedStore(cloud, r, "slow-az", "fast-az")
	// Teach the model so hybrid hops to fast-az and bans the slow kinds.
	for i := 0; i < 30; i++ {
		r.Perf().Observe(workload.Zipper, cpu.Xeon30, 900)
		r.Perf().Observe(workload.Zipper, cpu.Xeon25, 1200)
		r.Perf().Observe(workload.Zipper, cpu.EPYC, 1600)
	}
	env.Go("client", func(p *sim.Proc) error {
		res, err := r.Burst(p, BurstSpec{
			Strategy:   Hybrid{},
			Workload:   workload.Zipper,
			N:          60,
			Candidates: []string{"slow-az", "fast-az"},
		})
		if err != nil {
			return err
		}
		if res.AZ != "fast-az" {
			t.Errorf("hybrid picked %s", res.AZ)
		}
		snap := reg.Snapshot()
		sL := metrics.L("strategy", "hybrid")
		if got := metricValue(snap, "sky_router_bursts_total", sL); got != 1 {
			t.Errorf("bursts = %v, want 1", got)
		}
		// slow-az is the home (first) candidate, so this was a region hop.
		if got := metricValue(snap, "sky_router_region_hops_total", sL); got != 1 {
			t.Errorf("region hops = %v, want 1", got)
		}
		if got := metricValue(snap, "sky_router_retries_total", sL); got != float64(res.Declined) {
			t.Errorf("retries metric = %v, result declined = %d", got, res.Declined)
		}
		// Per-CPU completions sum to the burst's completions.
		var completions float64
		for _, fam := range snap.Metrics {
			if fam.Name == "sky_router_completions_total" {
				for _, s := range fam.Series {
					completions += s.Value
				}
			}
		}
		if completions != float64(res.Completed) {
			t.Errorf("completions metric = %v, result = %d", completions, res.Completed)
		}
		fast := metricValue(snap, "sky_router_fast_cpu_hits_total", sL)
		slow := metricValue(snap, "sky_router_slow_cpu_hits_total", sL)
		if fast+slow != float64(res.Completed) || fast <= 0 {
			t.Errorf("fast/slow split = %v/%v over %d completions", fast, slow, res.Completed)
		}
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// The burst landed in the elapsed histogram and renders as Prometheus
	// text exposition.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `sky_router_burst_elapsed_ms_count{strategy="hybrid"} 1`) {
		t.Fatalf("exposition missing elapsed histogram:\n%s", b.String())
	}
}

func TestBurstWithoutMetricsStillWorks(t *testing.T) {
	env, cloud, r := world(t)
	seedStore(cloud, r, "slow-az")
	env.Go("client", func(p *sim.Proc) error {
		res, err := r.Burst(p, BurstSpec{
			Strategy:   Baseline{AZ: "slow-az"},
			Workload:   workload.Zipper,
			N:          20,
			Candidates: []string{"slow-az"},
		})
		if err != nil {
			return err
		}
		if res.Completed != 20 {
			t.Errorf("completed = %d", res.Completed)
		}
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}
