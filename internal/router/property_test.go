package router

import (
	"math"
	"testing"
	"testing/quick"

	"skyfaas/internal/charact"
	"skyfaas/internal/cpu"
	"skyfaas/internal/rng"
	"skyfaas/internal/workload"
)

// Property: ExpectedMS always lies between the fastest and slowest observed
// means when the distribution only covers observed kinds.
func TestExpectedMSBoundsProperty(t *testing.T) {
	kinds := []cpu.Kind{cpu.Xeon25, cpu.Xeon29, cpu.Xeon30, cpu.EPYC}
	if err := quick.Check(func(seed uint64) bool {
		s := rng.New(seed)
		m := NewPerfModel()
		d := make(charact.Dist)
		minMean, maxMean := math.Inf(1), math.Inf(-1)
		for _, k := range kinds {
			mean := 1000 + s.Float64()*9000
			for i := 0; i < 3; i++ {
				m.Observe(workload.Zipper, k, mean)
			}
			d[k] = s.Float64() + 0.01
			minMean = math.Min(minMean, mean)
			maxMean = math.Max(maxMean, mean)
		}
		got, ok := m.ExpectedMS(workload.Zipper, d)
		if !ok {
			return false
		}
		return got >= minMean-1e-6 && got <= maxMean+1e-6
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Kinds() is always sorted by ascending mean runtime.
func TestKindsRankingProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		s := rng.New(seed)
		m := NewPerfModel()
		all := cpu.Kinds()
		n := int(nRaw%uint8(len(all))) + 1
		for i := 0; i < n; i++ {
			m.Observe(workload.GraphBFS, all[i], 500+s.Float64()*5000)
		}
		ranked := m.Kinds(workload.GraphBFS)
		if len(ranked) != n {
			return false
		}
		for i := 1; i < len(ranked); i++ {
			prev, _ := m.Mean(workload.GraphBFS, ranked[i-1])
			cur, _ := m.Mean(workload.GraphBFS, ranked[i])
			if prev > cur {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: optimalBanSet never bans the fastest present kind, and whatever
// it bans always leaves positive share to run on.
func TestOptimalBanSetSafetyProperty(t *testing.T) {
	kinds := []cpu.Kind{cpu.Xeon25, cpu.Xeon29, cpu.Xeon30, cpu.EPYC}
	if err := quick.Check(func(seed uint64) bool {
		s := rng.New(seed)
		shares := map[cpu.Kind]float64{}
		means := map[cpu.Kind]float64{}
		for _, k := range kinds {
			shares[k] = s.Float64() + 0.01
			means[k] = 1000 + s.Float64()*9000
		}
		dec := mkDecisionQuick(shares, means)
		banned := optimalBanSet(dec, dec.Lookup("z").Dist, 150)
		d := dec.Lookup("z").Dist
		ranked := dec.Perf.Kinds(workload.Zipper)
		if len(ranked) > 0 && banned.Has(ranked[0]) {
			return false // fastest banned
		}
		var kept float64
		for _, k := range kinds {
			if !banned.Has(k) {
				kept += d.Share(k)
			}
		}
		return kept > 0
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// mkDecisionQuick is the non-testing.T variant of mkDecision for
// quick.Check bodies.
func mkDecisionQuick(shares map[cpu.Kind]float64, means map[cpu.Kind]float64) Decision {
	store := charact.NewStore(0)
	counts := make(charact.Counts)
	for k, s := range shares {
		counts[k] = int(s*1000) + 1
	}
	perf := NewPerfModel()
	for k, m := range means {
		perf.Observe(workload.Zipper, k, m)
	}
	ch := charact.Characterization{AZ: "z", Counts: counts}
	store.Put(ch)
	return Decision{Workload: workload.Zipper, Store: store, Perf: perf}
}
