package router

import (
	"skyfaas/internal/faas"
	"skyfaas/internal/metrics"
	"skyfaas/internal/rng"
)

// Resilience is a burst's graceful-degradation envelope: per-slot retry
// budgets with exponential backoff and jitter, tail-latency hedging, a
// per-zone circuit breaker, and automatic failover to the next-best
// characterized zone when the breaker opens. A nil *Resilience on BurstSpec
// reproduces the legacy burst behavior exactly (unbounded retries, fixed
// 50 ms failure backoff, no breaker).
type Resilience struct {
	// Retry bounds per-slot platform-failure attempts (default: 3 attempts,
	// 50 ms base backoff doubling to a 5 s cap, ±20% jitter). Slots that
	// exhaust the budget are abandoned and counted in BurstResult.Abandoned.
	Retry faas.RetryPolicy
	// Hedge duplicates slots that have not answered within Hedge.After; the
	// first response wins and the loser is abandoned on arrival (its cost is
	// still billed — a FaaS execution cannot be recalled, only ignored).
	// Zero value = no hedging.
	Hedge faas.HedgePolicy
	// Breaker tunes the per-zone circuit breaker (zero value = defaults).
	Breaker BreakerConfig
	// NoBreaker disables the circuit breaker (and with it, failover).
	NoBreaker bool
	// Failover lets the burst re-route queued slots to the next-best
	// characterized candidate zone while the current zone's breaker rejects
	// traffic.
	Failover bool
}

// DefaultResilience returns the full protection envelope: bounded retries
// with jittered backoff, breaker, and failover (hedging stays opt-in).
func DefaultResilience() *Resilience {
	return &Resilience{Failover: true}
}

func (rs *Resilience) withDefaults() *Resilience {
	if rs == nil {
		return nil
	}
	c := *rs
	if c.Retry.MaxAttempts == 0 {
		c.Retry.MaxAttempts = 3
	}
	if c.Retry.JitterFrac == 0 {
		c.Retry.JitterFrac = 0.2
	}
	c.Breaker = c.Breaker.withDefaults()
	return &c
}

func (rs *Resilience) breakerOn() bool { return rs != nil && !rs.NoBreaker }

func (rs *Resilience) hedgeOn() bool { return rs != nil && rs.Hedge.Enabled() }

// UseSeed derives the router's private randomness (backoff jitter) from
// seed, tying burst pacing to the experiment's run seed. Without it the
// router jitters from a fixed default stream — still deterministic, just
// not seed-varied.
func (r *Router) UseSeed(seed uint64) { r.rand = rng.New(seed).Split("router") }

// Breaker returns the zone's circuit breaker, if one has been created by a
// resilient burst. Breakers persist across bursts: a zone tripped by one
// burst stays avoided by the next until it proves healthy again.
func (r *Router) Breaker(az string) (*Breaker, bool) {
	b, ok := r.breakers[az]
	return b, ok
}

// breakerFor lazily creates the zone's breaker. The first resilient burst
// to touch a zone fixes its configuration; later bursts share it, which is
// the point — breaker memory must outlive any one burst.
func (r *Router) breakerFor(az string, cfg BreakerConfig) *Breaker {
	if b, ok := r.breakers[az]; ok {
		return b
	}
	b := NewBreaker(cfg)
	azL := metrics.L("az", az)
	state := r.metrics.Gauge("sky_router_breaker_state",
		"per-zone circuit state (0 closed, 1 open, 2 half-open)", azL)
	state.Set(float64(BreakerClosed))
	b.OnTransition(func(from, to BreakerState) {
		state.Set(float64(to))
		r.metrics.Counter("sky_router_breaker_transitions_total",
			"circuit transitions, by zone and resulting state",
			azL, metrics.L("to", to.String())).Inc()
	})
	r.breakers[az] = b
	return b
}
