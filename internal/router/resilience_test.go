package router

import (
	"testing"
	"time"

	"skyfaas/internal/charact"
	"skyfaas/internal/cpu"
	"skyfaas/internal/faas"
	"skyfaas/internal/rng"
	"skyfaas/internal/sim"
	"skyfaas/internal/workload"
)

// stormBurst runs one burst against a throttle-stormed slow-az and returns
// the result. The storm is armed before the burst starts and outlives it.
func stormBurst(t *testing.T, spec BurstSpec) BurstResult {
	t.Helper()
	env, cloud, r := world(t)
	seedStore(cloud, r, "slow-az", "fast-az")
	r.Perf().Observe(workload.Sha1Hash, cpu.Xeon30, 2400)
	r.Perf().Observe(workload.Sha1Hash, cpu.Xeon25, 2800)
	var res BurstResult
	env.Go("storm-burst", func(p *sim.Proc) error {
		az, _ := cloud.AZ("slow-az")
		az.SetThrottleStorm(0.75)
		var err error
		res, err = r.Burst(p, spec)
		return err
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	return res
}

// TestResilientBurstAbandonsUnderStorm: a pinned burst with a bounded retry
// budget and no failover loses roughly 1-(1-0.75^3) of its slots to the
// storm instead of retrying forever.
func TestResilientBurstAbandonsUnderStorm(t *testing.T) {
	res := stormBurst(t, BurstSpec{
		Strategy:   Baseline{AZ: "slow-az"},
		Workload:   workload.Sha1Hash,
		N:          200,
		Candidates: []string{"slow-az", "fast-az"},
		Resilience: &Resilience{NoBreaker: true},
	})
	if res.Completed+res.Abandoned != 200 {
		t.Fatalf("completed %d + abandoned %d != 200", res.Completed, res.Abandoned)
	}
	if res.Abandoned == 0 {
		t.Fatal("no slots abandoned under a 75% storm with 3 attempts")
	}
	// P(success) = 1 - 0.75^3 ≈ 0.578; allow generous slack around it.
	if sr := res.SuccessRate(); sr < 0.40 || sr > 0.75 {
		t.Errorf("success rate %.2f far from expected ≈0.58", sr)
	}
	if res.Failovers != 0 {
		t.Errorf("failovers = %d without a breaker", res.Failovers)
	}
}

// TestResilientBurstFailsOverUnderStorm: with the breaker on and failover
// enabled, the burst escapes the stormed zone and completes nearly all
// slots in the healthy one.
func TestResilientBurstFailsOverUnderStorm(t *testing.T) {
	res := stormBurst(t, BurstSpec{
		Strategy:   Baseline{AZ: "slow-az"},
		Workload:   workload.Sha1Hash,
		N:          200,
		Candidates: []string{"slow-az", "fast-az"},
		Resilience: DefaultResilience(),
	})
	if res.Failovers == 0 {
		t.Fatal("burst never failed over away from the stormed zone")
	}
	if sr := res.SuccessRate(); sr < 0.95 {
		t.Errorf("success rate %.2f under failover, want >= 0.95", sr)
	}
	// Most completions should have landed in the healthy fast-az hardware.
	if res.PerCPU[cpu.Xeon30] == 0 {
		t.Errorf("no completions on fast-az hardware: %v", res.PerCPU)
	}
}

// TestResilientBurstDeterminism: two identically-seeded runs of the same
// chaotic burst must agree bit-for-bit, jittered backoff included.
func TestResilientBurstDeterminism(t *testing.T) {
	run := func() BurstResult {
		return stormBurst(t, BurstSpec{
			Strategy:   Baseline{AZ: "slow-az"},
			Workload:   workload.Sha1Hash,
			N:          150,
			Candidates: []string{"slow-az", "fast-az"},
			Resilience: &Resilience{
				Retry:    faas.RetryPolicy{MaxAttempts: 3, JitterFrac: 0.3},
				Failover: true,
			},
		})
	}
	a, b := run(), run()
	if a.Completed != b.Completed || a.Abandoned != b.Abandoned ||
		a.Attempts != b.Attempts || a.Failed != b.Failed ||
		a.Failovers != b.Failovers || a.CostUSD != b.CostUSD ||
		a.Elapsed != b.Elapsed {
		t.Fatalf("same-seed runs diverged:\n a=%+v\n b=%+v", a, b)
	}
}

// TestBackoffJitterDeterminism: the jittered schedule is a pure function of
// the stream's seed.
func TestBackoffJitterDeterminism(t *testing.T) {
	p := faas.RetryPolicy{MaxAttempts: 5, BaseBackoff: 100 * time.Millisecond, JitterFrac: 0.5}
	seq := func(seed uint64) []time.Duration {
		src := rng.New(seed)
		out := make([]time.Duration, 0, 4)
		for n := 1; n <= 4; n++ {
			out = append(out, p.Backoff(n, src))
		}
		return out
	}
	a, b := seq(7), seq(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed jitter diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := seq(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical jitter (suspicious)")
	}
	// Un-jittered schedule grows exponentially and caps.
	flat := faas.RetryPolicy{BaseBackoff: 100 * time.Millisecond, MaxBackoff: 300 * time.Millisecond}
	if d := flat.Backoff(1, nil); d != 100*time.Millisecond {
		t.Errorf("backoff(1) = %v", d)
	}
	if d := flat.Backoff(2, nil); d != 200*time.Millisecond {
		t.Errorf("backoff(2) = %v", d)
	}
	if d := flat.Backoff(5, nil); d != 300*time.Millisecond {
		t.Errorf("backoff(5) = %v, want cap", d)
	}
}

// TestBurstHedging: on a zone with an injected cold-start spike, hedged
// slots finish and the loser accounting stays consistent.
func TestBurstHedging(t *testing.T) {
	env, cloud, r := world(t)
	seedStore(cloud, r, "slow-az", "fast-az")
	var res BurstResult
	env.Go("hedge-burst", func(p *sim.Proc) error {
		az, _ := cloud.AZ("slow-az")
		az.SetColdStartSpike(20) // multi-second cold starts: hedges fire
		var err error
		res, err = r.Burst(p, BurstSpec{
			Strategy: Baseline{AZ: "slow-az"},
			Workload: workload.Sha1Hash,
			N:        80,
			Resilience: &Resilience{
				NoBreaker: true,
				Hedge:     faas.HedgePolicy{After: 500 * time.Millisecond},
			},
		})
		return err
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if res.Completed != 80 {
		t.Fatalf("completed = %d, want 80 (abandoned %d)", res.Completed, res.Abandoned)
	}
	if res.Hedges == 0 {
		t.Fatal("no hedges fired despite 20x cold starts")
	}
	if res.HedgeWins > res.Hedges {
		t.Fatalf("hedge wins %d > hedges %d", res.HedgeWins, res.Hedges)
	}
	// Every request issued is accounted: N completions plus one response per
	// hedge loser (counted in Attempts when it arrives).
	if res.Attempts < res.Completed {
		t.Fatalf("attempts %d < completed %d", res.Attempts, res.Completed)
	}
}

// TestHedgedBurstPoolsSafely: back-to-back hedged bursts share the
// sync.Pool of burst states. Burst one's losing twins are still in flight
// when burst two starts; the per-slot refcount keeps the first state out
// of the pool until the last straggler settles, so the second burst can
// never be handed a state a stale response still points into. RACE_PKGS
// runs this under -race, which would catch a recycled slot being written
// by both bursts.
func TestHedgedBurstPoolsSafely(t *testing.T) {
	env, cloud, r := world(t)
	seedStore(cloud, r, "slow-az", "fast-az")
	spec := BurstSpec{
		Strategy: Baseline{AZ: "slow-az"},
		Workload: workload.Sha1Hash,
		N:        60,
		Resilience: &Resilience{
			NoBreaker: true,
			Hedge:     faas.HedgePolicy{After: 500 * time.Millisecond},
		},
	}
	var first, second BurstResult
	env.Go("hedge-pool", func(p *sim.Proc) error {
		az, _ := cloud.AZ("slow-az")
		az.SetColdStartSpike(20) // hedges fire; losers straggle past settle
		var err error
		if first, err = r.Burst(p, spec); err != nil {
			return err
		}
		second, err = r.Burst(p, spec)
		return err
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for i, res := range []BurstResult{first, second} {
		if res.Completed != 60 {
			t.Errorf("burst %d completed %d, want 60 (abandoned %d)", i+1, res.Completed, res.Abandoned)
		}
		if res.Hedges == 0 {
			t.Errorf("burst %d fired no hedges despite 20x cold starts", i+1)
		}
	}
}

// TestLegacyBurstUnchanged: a nil Resilience must reproduce the original
// burst semantics — unlimited retries, nothing abandoned.
func TestLegacyBurstUnchanged(t *testing.T) {
	res := stormBurst(t, BurstSpec{
		Strategy: Baseline{AZ: "slow-az"},
		Workload: workload.Sha1Hash,
		N:        100,
	})
	if res.Completed != 100 || res.Abandoned != 0 {
		t.Fatalf("legacy burst: completed %d abandoned %d", res.Completed, res.Abandoned)
	}
	if res.Failed == 0 {
		t.Error("storm produced no failures (injection broken?)")
	}
}

// TestStaleCharacterizationSurfaced covers the Decision.Lookup staleness
// contract and the strategies' deliberate degraded modes.
func TestStaleCharacterizationSurfaced(t *testing.T) {
	store := charact.NewStore(time.Hour)
	taken := testEpoch
	store.Put(charact.Characterization{
		AZ: "z", Taken: taken,
		Counts: charact.Counts{cpu.Xeon30: 600, cpu.Xeon25: 250, cpu.EPYC: 150},
	})
	perf := NewPerfModel()
	perf.Observe(workload.Zipper, cpu.Xeon30, 2400)
	perf.Observe(workload.Zipper, cpu.Xeon25, 2820)
	perf.Observe(workload.Zipper, cpu.EPYC, 3900)

	fresh := Decision{Workload: workload.Zipper, Store: store, Perf: perf,
		Now: taken.Add(30 * time.Minute)}
	stale := Decision{Workload: workload.Zipper, Store: store, Perf: perf,
		Now: taken.Add(3 * time.Hour)}

	if info := fresh.Lookup("z"); !info.Known || !info.Fresh || info.Age != 30*time.Minute {
		t.Fatalf("fresh lookup = %+v", info)
	}
	info := stale.Lookup("z")
	if !info.Known || info.Fresh {
		t.Fatalf("stale lookup = %+v, want known but not fresh", info)
	}
	if info.Age != 3*time.Hour {
		t.Errorf("stale age = %v", info.Age)
	}
	if info.Dist.Share(cpu.Xeon30) == 0 {
		t.Error("stale lookup dropped the distribution")
	}
	if unknown := stale.Lookup("ghost"); unknown.Known {
		t.Errorf("ghost zone lookup = %+v", unknown)
	}

	// Fresh: full focus bans everything but the fastest.
	if b := (FocusFastest{AZ: "z"}).Ban(fresh, "z"); !b.Has(cpu.Xeon25) || !b.Has(cpu.EPYC) {
		t.Errorf("fresh focus bans = %v", b)
	}
	// Stale: deliberate fallback to the conservative slowest-N ban — the
	// old code returned nil here (stale treated as uncharacterized).
	b := (FocusFastest{AZ: "z"}).Ban(stale, "z")
	if b.Empty() {
		t.Fatal("stale focus-fastest lost its ban signal entirely")
	}
	if !b.Has(cpu.EPYC) {
		t.Errorf("stale focus bans = %v, want slowest banned", b)
	}
	if b.Has(cpu.Xeon30) {
		t.Errorf("stale focus banned the fastest kind: %v", b)
	}
	// Hybrid degrades the same way.
	if b := (Hybrid{}).Ban(stale, "z"); b.Empty() || !b.Has(cpu.EPYC) || b.Has(cpu.Xeon30) {
		t.Errorf("stale hybrid bans = %v", b)
	}
}

// TestBestAZPrefersFreshThenStale: ranking falls back to stale estimates
// before falling back to blind candidate order.
func TestBestAZPrefersFreshThenStale(t *testing.T) {
	store := charact.NewStore(time.Hour)
	now := testEpoch.Add(2 * time.Hour)
	put := func(az string, taken time.Time, fast int) {
		store.Put(charact.Characterization{
			AZ: az, Taken: taken,
			Counts: charact.Counts{cpu.Xeon30: fast, cpu.Xeon25: 1000 - fast},
		})
	}
	perf := NewPerfModel()
	perf.Observe(workload.Zipper, cpu.Xeon30, 2400)
	perf.Observe(workload.Zipper, cpu.Xeon25, 3600)

	// "good-stale" is much better than "bad-stale", both expired; "meh" is
	// fresh but mediocre.
	put("good-stale", testEpoch, 900)
	put("bad-stale", testEpoch, 100)
	put("meh", now.Add(-10*time.Minute), 400)

	dec := Decision{Workload: workload.Zipper, Store: store, Perf: perf, Now: now,
		Candidates: []string{"bad-stale", "good-stale", "meh"}}
	if az := bestAZ(dec); az != "meh" {
		t.Errorf("fresh zone not preferred: picked %s", az)
	}
	// Without any fresh candidate, stale ranking beats candidate order.
	dec.Candidates = []string{"bad-stale", "good-stale"}
	if az := bestAZ(dec); az != "good-stale" {
		t.Errorf("stale ranking ignored: picked %s (old code blindly picked bad-stale)", az)
	}
	// Fully unknown zones: first candidate.
	dec.Candidates = []string{"ghost-1", "ghost-2"}
	if az := bestAZ(dec); az != "ghost-1" {
		t.Errorf("unknown-zone fallback picked %s", az)
	}
}
