package router

import (
	"time"

	"skyfaas/internal/charact"
	"skyfaas/internal/cpu"
	"skyfaas/internal/workload"
)

// Strategy decides where a burst runs and which CPUs it refuses to run on.
// The three paper strategies (§3.5) plus the fixed baseline are provided;
// all decisions consume only characterization-store and perf-model data.
type Strategy interface {
	// Name labels the strategy in experiment output.
	Name() string
	// PickAZ chooses the zone for a burst from the candidates.
	PickAZ(dec Decision) string
	// Ban returns the CPU kinds the workload must not run on in the
	// chosen zone (the retry set) as an allocation-free bitmask; the zero
	// Mask bans nothing.
	Ban(dec Decision, az string) cpu.Mask
}

// Decision carries everything a strategy may consult.
type Decision struct {
	Workload   workload.ID
	Candidates []string
	Store      *charact.Store
	Perf       *PerfModel
	Now        time.Time
}

// DistInfo is what the store knows about one zone at decision time: the
// last characterized distribution, its age, and whether it is still fresh
// under the store's lifespan. Known=false means the zone has never been
// characterized at all.
type DistInfo struct {
	Dist  charact.Dist
	Age   time.Duration
	Fresh bool
	Known bool
}

// Lookup surfaces az's characterization together with its staleness.
// Strategies used to see stale zones as plain uncharacterized (the old
// fresh-only dist helper returned nothing), which silently discarded the
// ban/ranking signal a drifted-but-recent characterization still carries;
// Lookup lets them degrade deliberately instead.
func (d Decision) Lookup(az string) DistInfo {
	ch, ok := d.Store.Last(az)
	if !ok {
		return DistInfo{}
	}
	return DistInfo{
		Dist:  ch.Dist(),
		Age:   ch.Age(d.Now),
		Fresh: d.Store.Fresh(ch, d.Now),
		Known: true,
	}
}

// ---------------------------------------------------------------------------

// Baseline pins every burst to one zone with no retries — the paper's
// comparison point.
type Baseline struct {
	AZ string
}

// Name implements Strategy.
func (b Baseline) Name() string { return "baseline" }

// PickAZ implements Strategy.
func (b Baseline) PickAZ(Decision) string { return b.AZ }

// Ban implements Strategy.
func (b Baseline) Ban(Decision, string) cpu.Mask { return 0 }

// ---------------------------------------------------------------------------

// Regional routes each burst to the candidate zone with the best expected
// runtime under its current characterization ("region hopping"). No
// retries.
type Regional struct{}

// Name implements Strategy.
func (Regional) Name() string { return "regional" }

// PickAZ implements Strategy.
func (Regional) PickAZ(dec Decision) string { return bestAZ(dec) }

// Ban implements Strategy.
func (Regional) Ban(Decision, string) cpu.Mask { return 0 }

// bestAZ returns the candidate with the lowest expected runtime. Freshly
// characterized zones are ranked first among themselves; when none is
// fresh, stale characterizations still rank the candidates — an outdated
// estimate beats the blind first-candidate guess. Fully unknown zones fall
// back to the first candidate.
func bestAZ(dec Decision) string {
	if len(dec.Candidates) == 0 {
		return ""
	}
	bestFresh, bestFreshMS := "", 0.0
	bestStale, bestStaleMS := "", 0.0
	for _, az := range dec.Candidates {
		info := dec.Lookup(az)
		if !info.Known {
			continue
		}
		ms, ok := dec.Perf.ExpectedMS(dec.Workload, info.Dist)
		if !ok {
			continue
		}
		switch {
		case info.Fresh:
			if bestFresh == "" || ms < bestFreshMS {
				bestFresh, bestFreshMS = az, ms
			}
		default:
			if bestStale == "" || ms < bestStaleMS {
				bestStale, bestStaleMS = az, ms
			}
		}
	}
	if bestFresh != "" {
		return bestFresh
	}
	if bestStale != "" {
		return bestStale
	}
	return dec.Candidates[0]
}

// ---------------------------------------------------------------------------

// RetrySlow pins bursts to one zone and retries invocations landing on the
// slowest CPUs (typically AMD EPYC and the 2.9 GHz Xeon).
type RetrySlow struct {
	AZ string
	// SlowCount is how many of the slowest observed kinds to ban
	// (default 2, the paper's configuration).
	SlowCount int
}

// Name implements Strategy.
func (RetrySlow) Name() string { return "retry-slow" }

// PickAZ implements Strategy.
func (r RetrySlow) PickAZ(Decision) string { return r.AZ }

// Ban implements Strategy. Stale characterizations are used as-is: the
// slow/fast CPU ordering survives drift far better than exact shares, so a
// conservative slowest-N ban stays worthwhile on old data.
func (r RetrySlow) Ban(dec Decision, az string) cpu.Mask {
	n := r.SlowCount
	if n == 0 {
		n = 2
	}
	info := dec.Lookup(az)
	if !info.Known {
		return 0
	}
	return banSlowest(dec, info.Dist, n)
}

// banSlowest bans up to the n slowest kinds present in d, under three
// guards: never the fastest present kind, never a kind so close to the
// fastest that retrying off it cannot repay the decline hold, and never so
// much of the zone that fewer than ~30% of placements can run — the paper's
// "only banning very poorly performing CPUs" mitigation.
func banSlowest(dec Decision, d charact.Dist, n int) cpu.Mask {
	const minKeptShare = 0.3
	if len(d) == 0 {
		return 0
	}
	ranked := dec.Perf.Kinds(dec.Workload) // fastest first
	present := make([]cpu.Kind, 0, len(ranked))
	for _, k := range ranked {
		if d.Share(k) > 0 {
			present = append(present, k)
		}
	}
	if len(present) <= 1 {
		return 0
	}
	fastMS, ok := dec.Perf.Mean(dec.Workload, present[0])
	if !ok {
		return 0
	}
	if n > len(present)-1 {
		n = len(present) - 1
	}
	var banned cpu.Mask
	bannedShare := 0.0
	for i := len(present) - 1; i >= len(present)-n; i-- {
		k := present[i]
		if meanK, ok := dec.Perf.Mean(dec.Workload, k); !ok || meanK-fastMS < minGain(0) {
			continue
		}
		if bannedShare+d.Share(k) > 1-minKeptShare {
			break // would leave too little of the zone to run on
		}
		banned = banned.Add(k)
		bannedShare += d.Share(k)
	}
	return banned
}

// ---------------------------------------------------------------------------

// FocusFastest pins bursts to one zone and aggressively retries anything
// not on the fastest observed CPU. MinShare guards against banning
// everything when the ideal CPU is nearly absent (the paper notes retry
// overhead explodes when the target CPU is rare).
type FocusFastest struct {
	AZ string
	// MinShare is the minimum characterized share of the fastest kind for
	// full focus; below it the strategy degrades to banning the slowest
	// two (default 0.03).
	MinShare float64
	// MinGainMS is the minimum learned runtime gain (vs the fastest kind)
	// a CPU must cost before it gets banned; anything cheaper cannot repay
	// the decline hold and retry churn (default 300 — twice the paper's
	// 150 ms hold).
	MinGainMS float64
}

// Name implements Strategy.
func (FocusFastest) Name() string { return "focus-fastest" }

// PickAZ implements Strategy.
func (f FocusFastest) PickAZ(Decision) string { return f.AZ }

// Ban implements Strategy. On a stale characterization the strategy
// degrades deliberately to banning the slowest two kinds: full focus bets
// on the exact share of one CPU, which drift invalidates first, while the
// slow/fast ordering it falls back on decays much more slowly.
func (f FocusFastest) Ban(dec Decision, az string) cpu.Mask {
	info := dec.Lookup(az)
	if !info.Known {
		return 0
	}
	if !info.Fresh {
		return banSlowest(dec, info.Dist, 2)
	}
	return banAllButFastest(dec, info.Dist, f.minShare(), minGain(f.MinGainMS))
}

func (f FocusFastest) minShare() float64 {
	if f.MinShare == 0 {
		// Below ~15% share, the expected decline holds (>5 per completion)
		// usually outweigh the gain — the paper's "overhead of additional
		// retries grows rapidly" regime.
		return 0.15
	}
	return f.MinShare
}

func minGain(v float64) float64 {
	if v == 0 {
		return 300
	}
	return v
}

func banAllButFastest(dec Decision, d charact.Dist, minShare, minGainMS float64) cpu.Mask {
	if len(d) == 0 {
		return 0
	}
	ranked := dec.Perf.Kinds(dec.Workload)
	var fastest cpu.Kind
	for _, k := range ranked {
		if d.Share(k) > 0 {
			fastest = k
			break
		}
	}
	if fastest == 0 {
		return 0
	}
	if d.Share(fastest) < minShare {
		return banSlowest(dec, d, 2)
	}
	fastMS, ok := dec.Perf.Mean(dec.Workload, fastest)
	if !ok {
		return 0
	}
	var banned cpu.Mask
	for _, k := range ranked {
		if k == fastest || d.Share(k) <= 0 {
			continue
		}
		if meanK, ok := dec.Perf.Mean(dec.Workload, k); ok && meanK-fastMS < minGainMS {
			// Too close to the fastest: retrying off it costs more than
			// it saves.
			continue
		}
		banned = banned.Add(k)
	}
	return banned
}

// ---------------------------------------------------------------------------

// Hybrid combines region hopping with in-zone retries: pick the best
// candidate zone by expected runtime, then ban the cost-optimal set of
// CPUs there. Rather than always focusing the single fastest CPU, it
// evaluates every "ban the j slowest kinds" cutoff against the expected
// decline-hold overhead and keeps the cheapest — the paper's observation
// that the retry approach "can be tuned by specifying the CPUs that are
// banned" turned into an explicit optimization.
type Hybrid struct {
	// HoldMS is the decline hold assumed by the overhead model
	// (default 150, matching BurstSpec).
	HoldMS float64
}

// Name implements Strategy.
func (Hybrid) Name() string { return "hybrid" }

// PickAZ implements Strategy.
func (Hybrid) PickAZ(dec Decision) string { return bestAZ(dec) }

// Ban implements Strategy. The cost optimization leans on exact shares, so
// on a stale characterization Hybrid degrades deliberately to the
// conservative slowest-two ban rather than optimizing against drifted data.
func (h Hybrid) Ban(dec Decision, az string) cpu.Mask {
	hold := h.HoldMS
	if hold == 0 {
		hold = 150
	}
	info := dec.Lookup(az)
	if !info.Known {
		return 0
	}
	if !info.Fresh {
		return banSlowest(dec, info.Dist, 2)
	}
	return optimalBanSet(dec, info.Dist, hold)
}

// optimalBanSet picks the ban cutoff minimizing expected per-completion
// cost: runtime over the kept kinds plus (bannedShare/keptShare)*hold of
// decline overhead.
func optimalBanSet(dec Decision, d charact.Dist, holdMS float64) cpu.Mask {
	if len(d) == 0 {
		return 0
	}
	ranked := dec.Perf.Kinds(dec.Workload) // fastest first
	type entry struct {
		kind  cpu.Kind
		share float64
		mean  float64
	}
	present := make([]entry, 0, len(ranked))
	for _, k := range ranked {
		share := d.Share(k)
		if share <= 0 {
			continue
		}
		mean, ok := dec.Perf.Mean(dec.Workload, k)
		if !ok {
			continue
		}
		present = append(present, entry{kind: k, share: share, mean: mean})
	}
	if len(present) <= 1 {
		return 0
	}
	bestJ := 0
	bestCost := 0.0
	for j := 0; j < len(present); j++ {
		kept := present[:len(present)-j]
		var keptShare, weighted float64
		for _, e := range kept {
			keptShare += e.share
			weighted += e.share * e.mean
		}
		if keptShare <= 0 {
			continue
		}
		expRun := weighted / keptShare
		expCost := expRun + (1-keptShare)/keptShare*holdMS
		if j == 0 || expCost < bestCost {
			bestJ, bestCost = j, expCost
		}
	}
	if bestJ == 0 {
		return 0
	}
	var banned cpu.Mask
	for _, e := range present[len(present)-bestJ:] {
		banned = banned.Add(e.kind)
	}
	return banned
}

var (
	_ Strategy = Baseline{}
	_ Strategy = Regional{}
	_ Strategy = RetrySlow{}
	_ Strategy = FocusFastest{}
	_ Strategy = Hybrid{}
)
