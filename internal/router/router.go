// Package router is the smart routing system (§3.4–3.5): it consumes
// per-zone CPU characterizations and per-workload performance profiles to
// place bursts of function invocations on the best available hardware via
// regional routing, CPU-banning retries, or both (hybrid).
package router

import (
	"fmt"
	"time"

	"skyfaas/internal/charact"
	"skyfaas/internal/cloudsim"
	"skyfaas/internal/cpu"
	"skyfaas/internal/faas"
	"skyfaas/internal/mesh"
	"skyfaas/internal/metrics"
	"skyfaas/internal/sim"
	"skyfaas/internal/workload"
)

// Router executes workload bursts over the sky mesh.
type Router struct {
	client  *faas.Client
	mesh    *mesh.Mesh
	store   *charact.Store
	perf    *PerfModel
	passive *charact.Passive
	metrics *metrics.Registry
}

// New assembles a router.
func New(client *faas.Client, m *mesh.Mesh, store *charact.Store, perf *PerfModel) *Router {
	return &Router{client: client, mesh: m, store: store, perf: perf}
}

// UsePassive attaches a passive characterization collector: every response
// the router sees (profiling runs, burst completions, and even declines)
// feeds it, so zones carrying traffic can be characterized without paying
// for polls (§4.6's future work).
func (r *Router) UsePassive(p *charact.Passive) { r.passive = p }

// Passive returns the attached collector (nil when unset).
func (r *Router) Passive() *charact.Passive { return r.passive }

// observePassive feeds one response into the passive collector.
func (r *Router) observePassive(az string, resp cloudsim.Response) {
	if r.passive == nil || !resp.OK() {
		return
	}
	r.passive.Observe(az, resp.Ended, resp.FI, resp.Profile.Kind)
}

// Perf exposes the router's performance model.
func (r *Router) Perf() *PerfModel { return r.perf }

// Store exposes the router's characterization store.
func (r *Router) Store() *charact.Store { return r.store }

// BurstSpec describes one batch of invocations.
type BurstSpec struct {
	Strategy Strategy
	Workload workload.ID
	// N is the number of invocations that must complete.
	N int
	// Candidates are the zones the strategy may choose among.
	Candidates []string
	// MemoryMB selects the mesh endpoint (default 4096, enough for the
	// 2-vCPU Table-1 workloads to run unstarved).
	MemoryMB int
	// HoldMS is the decline hold (default 150, the paper's value).
	HoldMS float64
	// GiveUp bounds how long the burst keeps retrying before running the
	// stragglers unbanned (default 2 min). Decline cascades through the
	// warm pool can pile onto individual slots, so the escape hatch is
	// burst-level wall time, not a per-slot retry count.
	GiveUp time.Duration
	// Learn feeds observed runtimes back into the perf model (passive
	// profiling; default off so experiments control their training data).
	Learn bool
}

func (s BurstSpec) withDefaults() BurstSpec {
	if s.MemoryMB == 0 {
		s.MemoryMB = 4096
	}
	if s.HoldMS == 0 {
		s.HoldMS = 150
	}
	if s.GiveUp == 0 {
		s.GiveUp = 2 * time.Minute
	}
	return s
}

// BurstResult summarizes one burst.
type BurstResult struct {
	Strategy  string
	Workload  workload.ID
	AZ        string
	N         int
	Completed int
	// Attempts counts every invocation issued, including declines and
	// platform failures.
	Attempts int
	Declined int
	Failed   int
	// PerCPU tallies where completed work finally ran.
	PerCPU map[cpu.Kind]int
	// TotalRunMS sums the billed runtime of completed executions only.
	TotalRunMS float64
	// CostUSD is the total spend including decline holds.
	CostUSD float64
	// Elapsed is wall (virtual) time from burst start to last completion.
	Elapsed time.Duration
}

// MeanRunMS is the mean billed runtime of completed executions.
func (b BurstResult) MeanRunMS() float64 {
	if b.Completed == 0 {
		return 0
	}
	return b.TotalRunMS / float64(b.Completed)
}

// RetryFrac is the fraction of placements that were declined and retried
// (throttle reissues excluded — they never reached an instance).
func (b BurstResult) RetryFrac() float64 {
	placed := b.Declined + b.Completed
	if placed == 0 {
		return 0
	}
	return float64(b.Declined) / float64(placed)
}

// Burst executes spec from the calling process and returns when all N
// invocations have completed.
//
// Retries stream: the moment a decline arrives the slot is reissued, while
// the declining instance is still held busy (§3.5's 150 ms hold), so the
// reissue cannot land back on it. Once the burst has been retrying for
// GiveUp, stragglers are reissued without bans so the burst always
// completes. Platform failures (throttle/saturation) back off briefly
// before reissue.
func (r *Router) Burst(p *sim.Proc, spec BurstSpec) (BurstResult, error) {
	spec = spec.withDefaults()
	if spec.Strategy == nil {
		return BurstResult{}, fmt.Errorf("router: nil strategy")
	}
	if spec.N <= 0 {
		return BurstResult{}, fmt.Errorf("router: non-positive burst size")
	}
	env := r.client.Cloud().Env()
	dec := Decision{
		Workload:   spec.Workload,
		Candidates: spec.Candidates,
		Store:      r.store,
		Perf:       r.perf,
		Now:        env.Now(),
	}
	az := spec.Strategy.PickAZ(dec)
	if az == "" {
		return BurstResult{}, fmt.Errorf("router: strategy %q picked no zone", spec.Strategy.Name())
	}
	ep, ok := r.mesh.Nearest(az, spec.MemoryMB, cpu.X86)
	if !ok {
		return BurstResult{}, fmt.Errorf("router: no mesh endpoint in %s", az)
	}
	banned := spec.Strategy.Ban(dec, az)
	bm := r.burstMetrics(spec.Strategy.Name())
	bm.recordDecision(az, spec.Candidates)

	res := BurstResult{
		Strategy: spec.Strategy.Name(),
		Workload: spec.Workload,
		AZ:       az,
		N:        spec.N,
		PerCPU:   make(map[cpu.Kind]int),
	}
	start := env.Now()
	giveUpAt := start.Add(spec.GiveUp)
	done := sim.NewEvent(env)

	// The client paces itself under the platform's concurrency quota:
	// at most maxOutstanding requests are in flight; further slots queue.
	maxOutstanding := r.client.Cloud().Options().Quota - 50
	if maxOutstanding < 1 {
		maxOutstanding = 1
	}
	outstanding := 0
	queued := 0
	var issue func()
	pump := func() {
		for outstanding < maxOutstanding && queued > 0 {
			queued--
			outstanding++
			issue()
		}
	}
	issue = func() {
		slotBans := banned
		if env.Now().After(giveUpAt) {
			slotBans = nil // guarantee completion
		}
		r.client.Start(faas.Call{
			AZ:       az,
			Function: ep.Function,
			Work: cloudsim.ProbeBehavior{
				Work:   cloudsim.WorkBehavior{Workload: spec.Workload},
				Banned: slotBans,
				HoldMS: spec.HoldMS,
			},
		}, func(resp cloudsim.Response) {
			res.Attempts++
			res.CostUSD += resp.CostUSD
			outstanding--
			r.observePassive(az, resp)
			if !resp.OK() {
				res.Failed++
				bm.failures.Inc()
				queued++
				env.Schedule(50*time.Millisecond, pump)
				return
			}
			outcome, ok := resp.Value.(cloudsim.ProbeOutcome)
			if !ok {
				res.Failed++
				bm.failures.Inc()
				queued++
				env.Schedule(50*time.Millisecond, pump)
				return
			}
			if !outcome.Ran {
				res.Declined++
				bm.retries.Inc()
				queued++
				pump() // reissue while the declining FI is held
				return
			}
			res.Completed++
			res.PerCPU[resp.Profile.Kind]++
			res.TotalRunMS += resp.BilledMS
			if spec.Learn {
				r.perf.Observe(spec.Workload, resp.Profile.Kind, resp.BilledMS)
			}
			if res.Completed == spec.N {
				done.Trigger(nil)
				return
			}
			pump()
		})
	}
	queued = spec.N
	pump()
	p.Wait(done)
	res.Elapsed = env.Now().Sub(start)
	bm.recordResult(res, r.perf, res.Elapsed)
	return res, nil
}

// Profile runs n unrestricted executions of w in each zone and feeds the
// observed per-CPU runtimes into the perf model — EX-5's baseline
// profiling step. It returns the total profiling spend.
//
// Batches are separated by more than the instance keep-alive: back-to-back
// batches would reuse the same warm instances on the same few (bin-packed)
// hosts and only ever observe one CPU type, whereas spacing batches lets
// each one land on freshly chosen hosts — this temporal spreading is how
// the paper's 10,000-run profiling covered each zone's hardware spectrum.
func (r *Router) Profile(p *sim.Proc, w workload.ID, azs []string, nPerAZ, memoryMB int) (float64, error) {
	if memoryMB == 0 {
		memoryMB = 4096
	}
	keepAlive := r.client.Cloud().Options().KeepAlive
	var cost float64
	for _, az := range azs {
		ep, ok := r.mesh.Nearest(az, memoryMB, cpu.X86)
		if !ok {
			return cost, fmt.Errorf("router: no mesh endpoint in %s", az)
		}
		const lane = 150
		remaining := nPerAZ
		for remaining > 0 {
			batch := lane
			if batch > remaining {
				batch = remaining
			}
			futures := make([]*faas.Future, batch)
			for i := range futures {
				futures[i] = r.client.InvokeAsync(faas.Call{
					AZ:       az,
					Function: ep.Function,
					Work:     cloudsim.WorkBehavior{Workload: w},
				})
			}
			for _, f := range futures {
				resp := f.Wait(p)
				if !resp.OK() {
					continue
				}
				cost += resp.CostUSD
				r.perf.Observe(w, resp.Profile.Kind, resp.BilledMS)
				r.observePassive(az, resp)
			}
			remaining -= batch
			if remaining > 0 {
				p.Sleep(keepAlive + time.Minute)
			}
		}
	}
	return cost, nil
}
