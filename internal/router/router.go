// Package router is the smart routing system (§3.4–3.5): it consumes
// per-zone CPU characterizations and per-workload performance profiles to
// place bursts of function invocations on the best available hardware via
// regional routing, CPU-banning retries, or both (hybrid).
package router

import (
	"fmt"
	"time"

	"skyfaas/internal/charact"
	"skyfaas/internal/cloudsim"
	"skyfaas/internal/cpu"
	"skyfaas/internal/faas"
	"skyfaas/internal/mesh"
	"skyfaas/internal/metrics"
	"skyfaas/internal/rng"
	"skyfaas/internal/sim"
	"skyfaas/internal/workload"
)

// Router executes workload bursts over the sky mesh.
type Router struct {
	client   *faas.Client
	mesh     *mesh.Mesh
	store    *charact.Store
	perf     *PerfModel
	passive  *charact.Passive
	metrics  *metrics.Registry
	breakers map[string]*Breaker
	rand     *rng.Stream
	// trafficSink, when set, receives each burst's landing zone and
	// completion count (the refresh maintainer's urgency signal).
	trafficSink func(az string, completed int)
}

// New assembles a router.
func New(client *faas.Client, m *mesh.Mesh, store *charact.Store, perf *PerfModel) *Router {
	return &Router{
		client: client, mesh: m, store: store, perf: perf,
		breakers: make(map[string]*Breaker),
		rand:     rng.New(0).Split("router"),
	}
}

// UsePassive attaches a passive characterization collector: every response
// the router sees (profiling runs, burst completions, and even declines)
// feeds it, so zones carrying traffic can be characterized without paying
// for polls (§4.6's future work).
func (r *Router) UsePassive(p *charact.Passive) { r.passive = p }

// Passive returns the attached collector (nil when unset).
func (r *Router) Passive() *charact.Passive { return r.passive }

// UseTrafficSink registers a callback invoked at the end of every burst
// with the decided zone and its completion count. The refresh maintainer
// uses it to weight re-characterization urgency by routed traffic share.
// The callback runs on the simulation goroutine.
func (r *Router) UseTrafficSink(fn func(az string, completed int)) { r.trafficSink = fn }

// observePassive feeds one response into the passive collector.
func (r *Router) observePassive(az string, resp cloudsim.Response) {
	if r.passive == nil || !resp.OK() {
		return
	}
	r.passive.Observe(az, resp.Ended, resp.FI, resp.Profile.Kind)
}

// Perf exposes the router's performance model.
func (r *Router) Perf() *PerfModel { return r.perf }

// Store exposes the router's characterization store.
func (r *Router) Store() *charact.Store { return r.store }

// BurstSpec describes one batch of invocations.
type BurstSpec struct {
	Strategy Strategy
	Workload workload.ID
	// N is the number of invocations that must complete.
	N int
	// Candidates are the zones the strategy may choose among.
	Candidates []string
	// MemoryMB selects the mesh endpoint (default 4096, enough for the
	// 2-vCPU Table-1 workloads to run unstarved).
	MemoryMB int
	// HoldMS is the decline hold (default 150, the paper's value).
	HoldMS float64
	// GiveUp bounds how long the burst keeps retrying before running the
	// stragglers unbanned (default 2 min). Decline cascades through the
	// warm pool can pile onto individual slots, so the escape hatch is
	// burst-level wall time, not a per-slot retry count.
	GiveUp time.Duration
	// Learn feeds observed runtimes back into the perf model (passive
	// profiling; default off so experiments control their training data).
	Learn bool
	// Resilience enables graceful degradation: bounded retries with
	// jittered backoff, hedging, the per-zone circuit breaker, and zone
	// failover. Nil reproduces the legacy behavior exactly.
	Resilience *Resilience
}

func (s BurstSpec) withDefaults() BurstSpec {
	if s.MemoryMB == 0 {
		s.MemoryMB = 4096
	}
	if s.HoldMS == 0 {
		s.HoldMS = 150
	}
	if s.GiveUp == 0 {
		s.GiveUp = 2 * time.Minute
	}
	return s
}

// BurstResult summarizes one burst.
type BurstResult struct {
	Strategy  string
	Workload  workload.ID
	AZ        string
	N         int
	Completed int
	// Attempts counts every invocation issued, including declines and
	// platform failures.
	Attempts int
	Declined int
	Failed   int
	// PerCPU tallies where completed work finally ran.
	PerCPU map[cpu.Kind]int
	// TotalRunMS sums the billed runtime of completed executions only.
	TotalRunMS float64
	// CostUSD is the total spend including decline holds.
	CostUSD float64
	// Elapsed is wall (virtual) time from burst start to last completion.
	Elapsed time.Duration
	// Abandoned counts slots that exhausted their retry budget (resilient
	// bursts only; legacy bursts retry until they complete).
	Abandoned int
	// Failovers counts mid-burst re-routes to another zone after the
	// breaker opened.
	Failovers int
	// Hedges counts duplicate requests issued against slow slots; HedgeWins
	// counts the hedges whose response arrived first.
	Hedges    int
	HedgeWins int
}

// SuccessRate is the fraction of requested invocations that completed.
func (b BurstResult) SuccessRate() float64 {
	if b.N == 0 {
		return 0
	}
	return float64(b.Completed) / float64(b.N)
}

// MeanRunMS is the mean billed runtime of completed executions.
func (b BurstResult) MeanRunMS() float64 {
	if b.Completed == 0 {
		return 0
	}
	return b.TotalRunMS / float64(b.Completed)
}

// RetryFrac is the fraction of placements that were declined and retried
// (throttle reissues excluded — they never reached an instance).
func (b BurstResult) RetryFrac() float64 {
	placed := b.Declined + b.Completed
	if placed == 0 {
		return 0
	}
	return float64(b.Declined) / float64(placed)
}

// Burst executes spec from the calling process and returns when all N
// invocations have completed (or, under a Resilience envelope, been
// abandoned after exhausting their retry budget).
//
// Retries stream: the moment a decline arrives the slot is reissued, while
// the declining instance is still held busy (§3.5's 150 ms hold), so the
// reissue cannot land back on it. Once the burst has been retrying for
// GiveUp, stragglers are reissued without bans so the burst always
// completes. Platform failures (throttle/saturation/outage) back off before
// reissue — a fixed 50 ms without Resilience, exponential with jitter
// under it. With Resilience, a per-zone circuit breaker watches those
// failures and, once open, queued slots fail over to the next-best
// characterized candidate zone; slow slots may additionally be hedged, the
// first response winning and the loser being dropped on arrival.
func (r *Router) Burst(p *sim.Proc, spec BurstSpec) (BurstResult, error) {
	spec = spec.withDefaults()
	if spec.Strategy == nil {
		return BurstResult{}, fmt.Errorf("router: nil strategy")
	}
	if spec.N <= 0 {
		return BurstResult{}, fmt.Errorf("router: non-positive burst size")
	}
	env := r.client.Cloud().Env()
	dec := Decision{
		Workload:   spec.Workload,
		Candidates: spec.Candidates,
		Store:      r.store,
		Perf:       r.perf,
		Now:        env.Now(),
	}
	tbl, ok := BuildDecisionTable(spec.Strategy, dec, r.mesh, spec.MemoryMB, spec.HoldMS)
	if !ok {
		if az := spec.Strategy.PickAZ(dec); az == "" {
			return BurstResult{}, fmt.Errorf("router: strategy %q picked no zone", spec.Strategy.Name())
		}
		return BurstResult{}, fmt.Errorf("router: no mesh endpoint for strategy %q", spec.Strategy.Name())
	}
	az := tbl.AZ
	bm := r.burstMetrics(spec.Strategy.Name())
	bm.recordDecision(az, spec.Candidates)

	rs := spec.Resilience.withDefaults()
	res := BurstResult{
		Strategy: spec.Strategy.Name(),
		Workload: spec.Workload,
		AZ:       az,
		N:        spec.N,
		PerCPU:   make(map[cpu.Kind]int),
	}
	start := env.Now()
	giveUpAt := start.Add(spec.GiveUp)
	done := sim.NewEvent(env)

	// The client paces itself under the platform's concurrency quota:
	// at most maxOutstanding requests are in flight; further slots queue.
	maxOutstanding := r.client.Cloud().Options().Quota - 50
	if maxOutstanding < 1 {
		maxOutstanding = 1
	}
	outstanding := 0

	// Slots and the retry queue come from the pool (hotpath.go). Every
	// in-flight response and armed hedge timer holds a reference on the
	// state; it is recycled once the burst has returned AND the last
	// reference settled, so hedge losers straggling in later never touch a
	// reused slot.
	st := newBurstState(spec.N)
	queue := st.queue

	// Route state; failover replaces the frozen decision table, retargeting
	// every slot issued afterward.
	routeAZ := az

	// failOver retargets the burst at the best candidate whose breaker
	// admits traffic. Side-effect-free Admits is used for filtering so
	// probing budgets aren't consumed on zones we don't pick.
	failOver := func() bool {
		cands := make([]string, 0, len(spec.Candidates))
		for _, c := range spec.Candidates {
			if c == routeAZ {
				continue
			}
			if b, ok := r.breakers[c]; ok && !b.Admits(env.Now()) {
				continue
			}
			cands = append(cands, c)
		}
		if len(cands) == 0 {
			return false
		}
		d := dec
		d.Candidates = cands
		d.Now = env.Now()
		next := bestAZ(d)
		if next == "" || next == routeAZ {
			return false
		}
		nextTbl, ok := buildTableAt(spec.Strategy, d, r.mesh, next, spec.MemoryMB, spec.HoldMS)
		if !ok {
			return false
		}
		routeAZ, tbl = next, nextTbl
		res.AZ = next // report where the burst ended up, not where it began
		res.Failovers++
		bm.failovers.Inc()
		return true
	}

	finish := func() bool {
		if res.Completed+res.Abandoned == spec.N {
			done.Trigger(nil)
			return true
		}
		return false
	}

	var issue func(sl *burstSlot)
	var pump func()
	pump = func() {
		for outstanding < maxOutstanding && len(queue) > 0 {
			if rs.breakerOn() && !env.Now().After(giveUpAt) &&
				!r.breakerFor(routeAZ, rs.Breaker).Allow(env.Now()) {
				if rs.Failover && failOver() {
					continue // re-gate against the new zone's breaker
				}
				// Nowhere to go: hold the queue and try again shortly.
				env.Schedule(50*time.Millisecond, pump)
				return
			}
			sl := queue[0]
			queue = queue[1:]
			outstanding++
			issue(sl)
		}
	}
	requeue := func(sl *burstSlot, after time.Duration) {
		queue = append(queue, sl)
		if after > 0 {
			env.Schedule(after, pump)
		} else {
			pump()
		}
	}
	issue = func(sl *burstSlot) {
		sl.gen++
		gen := sl.gen
		// After give-up, bans are lifted to guarantee completion. Both call
		// variants are prebuilt: issuing allocates nothing.
		call := tbl.Call(!env.Now().After(giveUpAt))
		azAt := routeAZ
		send := func(isHedge bool) {
			st.retain(sl)
			r.client.Start(call, func(resp cloudsim.Response) {
				// Settle last: the gen checks below must read the slot
				// before this reference is dropped (and the state possibly
				// pooled).
				defer st.settle(sl)
				outstanding--
				res.Attempts++
				res.CostUSD += resp.CostUSD
				r.observePassive(azAt, resp)
				if rs.breakerOn() {
					r.breakerFor(azAt, rs.Breaker).Record(env.Now(), resp.OK())
				}
				if gen != sl.gen {
					// Hedge loser or twin of a settled attempt: dropped.
					pump()
					return
				}
				sl.gen++ // settle: any in-flight twin is now a loser
				if isHedge {
					res.HedgeWins++
					bm.hedgeWins.Inc()
				}
				outcome, isProbe := resp.Value.(cloudsim.ProbeOutcome)
				switch {
				case !resp.OK() || !isProbe:
					res.Failed++
					bm.failures.Inc()
					sl.attempts++
					if rs != nil && sl.attempts >= rs.Retry.MaxAttempts {
						res.Abandoned++
						bm.abandoned.Inc()
						if finish() {
							return
						}
						pump()
						return
					}
					backoff := 50 * time.Millisecond
					if rs != nil {
						backoff = rs.Retry.Backoff(sl.attempts, r.rand)
					}
					requeue(sl, backoff)
				case !outcome.Ran:
					res.Declined++
					bm.retries.Inc()
					requeue(sl, 0) // reissue while the declining FI is held
				default:
					res.Completed++
					res.PerCPU[resp.Profile.Kind]++
					res.TotalRunMS += resp.BilledMS
					if spec.Learn {
						r.perf.Observe(spec.Workload, resp.Profile.Kind, resp.BilledMS)
					}
					if finish() {
						return
					}
					pump()
				}
			})
		}
		send(false)
		if rs != nil && rs.Hedge.Enabled() {
			var arm func(left int)
			arm = func(left int) {
				if left == 0 {
					return
				}
				st.retain(sl) // the timer reads sl.gen when it fires
				env.Schedule(rs.Hedge.After, func() {
					defer st.settle(sl)
					if gen != sl.gen || outstanding >= maxOutstanding {
						return // settled already, or no quota headroom
					}
					outstanding++
					res.Hedges++
					bm.hedges.Inc()
					send(true)
					arm(left - 1)
				})
			}
			arm(rs.Hedge.MaxHedges())
		}
	}
	pump()
	p.Wait(done)
	st.finish()
	res.Elapsed = env.Now().Sub(start)
	bm.recordResult(res, r.perf, res.Elapsed)
	if r.trafficSink != nil && res.Completed > 0 {
		r.trafficSink(res.AZ, res.Completed)
	}
	return res, nil
}

// Profile runs n unrestricted executions of w in each zone and feeds the
// observed per-CPU runtimes into the perf model — EX-5's baseline
// profiling step. It returns the total profiling spend.
//
// Batches are separated by more than the instance keep-alive: back-to-back
// batches would reuse the same warm instances on the same few (bin-packed)
// hosts and only ever observe one CPU type, whereas spacing batches lets
// each one land on freshly chosen hosts — this temporal spreading is how
// the paper's 10,000-run profiling covered each zone's hardware spectrum.
func (r *Router) Profile(p *sim.Proc, w workload.ID, azs []string, nPerAZ, memoryMB int) (float64, error) {
	if memoryMB == 0 {
		memoryMB = 4096
	}
	keepAlive := r.client.Cloud().Options().KeepAlive
	var cost float64
	for _, az := range azs {
		ep, ok := r.mesh.Nearest(az, memoryMB, cpu.X86)
		if !ok {
			return cost, fmt.Errorf("router: no mesh endpoint in %s", az)
		}
		const lane = 150
		remaining := nPerAZ
		for remaining > 0 {
			batch := lane
			if batch > remaining {
				batch = remaining
			}
			futures := make([]*faas.Future, batch)
			for i := range futures {
				futures[i] = r.client.InvokeAsync(faas.Call{
					AZ:       az,
					Function: ep.Function,
					Work:     cloudsim.WorkBehavior{Workload: w},
				})
			}
			for _, f := range futures {
				resp := f.Wait(p)
				if !resp.OK() {
					continue
				}
				cost += resp.CostUSD
				r.perf.Observe(w, resp.Profile.Kind, resp.BilledMS)
				r.observePassive(az, resp)
			}
			remaining -= batch
			if remaining > 0 {
				p.Sleep(keepAlive + time.Minute)
			}
		}
	}
	return cost, nil
}
