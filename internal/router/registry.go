package router

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"skyfaas/internal/geo"
)

// This file is the single front door for strategy construction. Every
// consumer — skyd's HTTP handlers, the CLI tools, the experiments — names a
// strategy with a StrategySpec and turns it into a live Strategy with
// Build. Adding a strategy means adding one entry to builders; callers pick
// it up by name with no further wiring.

// ErrUnknownStrategy is wrapped by Build when the spec names a strategy
// that is not registered. The error text lists the valid names.
var ErrUnknownStrategy = errors.New("unknown strategy")

// ErrBadSpec is wrapped by Build when the spec names a valid strategy but
// misconfigures it (for example a pinned strategy with no AZ).
var ErrBadSpec = errors.New("bad strategy spec")

// StrategySpec is a declarative, wire-friendly description of a routing
// strategy: a name from Names plus the handful of scalars the strategies
// need. It is what HTTP requests, flags, and experiment configs carry
// instead of concrete Strategy values.
type StrategySpec struct {
	// Name selects the strategy (see Names).
	Name string `json:"name"`
	// AZ pins the home zone for the single-zone strategies
	// (baseline, retry-slow, focus-fastest).
	AZ string `json:"az,omitempty"`
	// Params carries optional per-strategy scalars:
	//
	//	latency-bound: maxRTTMS, clientLat, clientLon
	//	cost-aware:    memoryMB
	Params map[string]float64 `json:"params,omitempty"`
}

// buildEnv collects the runtime dependencies a registry entry may need.
type buildEnv struct {
	locator ZoneLocator
	pricer  ZonePricer
}

// BuildOption supplies a runtime dependency to Build.
type BuildOption func(*buildEnv)

// WithLocator wires the zone-to-coordinates lookup the latency-bound
// strategy filters with.
func WithLocator(l ZoneLocator) BuildOption {
	return func(e *buildEnv) { e.locator = l }
}

// WithPricer wires the zone-to-rate-card lookup the cost-aware strategy
// prices with.
func WithPricer(p ZonePricer) BuildOption {
	return func(e *buildEnv) { e.pricer = p }
}

func needsAZ(spec StrategySpec) error {
	if spec.AZ == "" {
		return fmt.Errorf("%w: %s needs an az", ErrBadSpec, spec.Name)
	}
	return nil
}

var builders = map[string]func(StrategySpec, buildEnv) (Strategy, error){
	"baseline": func(spec StrategySpec, _ buildEnv) (Strategy, error) {
		if err := needsAZ(spec); err != nil {
			return nil, err
		}
		return Baseline{AZ: spec.AZ}, nil
	},
	"regional": func(StrategySpec, buildEnv) (Strategy, error) {
		return Regional{}, nil
	},
	"retry-slow": func(spec StrategySpec, _ buildEnv) (Strategy, error) {
		if err := needsAZ(spec); err != nil {
			return nil, err
		}
		return RetrySlow{AZ: spec.AZ}, nil
	},
	"focus-fastest": func(spec StrategySpec, _ buildEnv) (Strategy, error) {
		if err := needsAZ(spec); err != nil {
			return nil, err
		}
		return FocusFastest{AZ: spec.AZ}, nil
	},
	"hybrid": func(StrategySpec, buildEnv) (Strategy, error) {
		return Hybrid{}, nil
	},
	"latency-bound": func(spec StrategySpec, env buildEnv) (Strategy, error) {
		lb := LatencyBound{
			Locator: env.locator,
			Client:  geo.Coord{Lat: spec.Params["clientLat"], Lon: spec.Params["clientLon"]},
		}
		if v, ok := spec.Params["maxRTTMS"]; ok {
			if v <= 0 {
				return nil, fmt.Errorf("%w: latency-bound maxRTTMS must be positive", ErrBadSpec)
			}
			lb.MaxRTT = time.Duration(v * float64(time.Millisecond))
		}
		return lb, nil
	},
	"cost-aware": func(spec StrategySpec, env buildEnv) (Strategy, error) {
		ca := CostAware{Pricer: env.pricer}
		if v, ok := spec.Params["memoryMB"]; ok {
			if v <= 0 {
				return nil, fmt.Errorf("%w: cost-aware memoryMB must be positive", ErrBadSpec)
			}
			ca.MemoryMB = int(v)
		}
		return ca, nil
	},
}

// Names returns the registered strategy names, sorted.
func Names() []string {
	names := make([]string, 0, len(builders))
	for name := range builders {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Build turns a StrategySpec into a Strategy. Unknown names yield an error
// wrapping ErrUnknownStrategy that lists the valid choices; specs that
// misconfigure a known strategy yield one wrapping ErrBadSpec.
func Build(spec StrategySpec, opts ...BuildOption) (Strategy, error) {
	var env buildEnv
	for _, opt := range opts {
		opt(&env)
	}
	builder, ok := builders[spec.Name]
	if !ok {
		return nil, fmt.Errorf("%w %q (valid: %s)",
			ErrUnknownStrategy, spec.Name, strings.Join(Names(), ", "))
	}
	return builder(spec, env)
}
