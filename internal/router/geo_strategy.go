package router

import (
	"time"

	"skyfaas/internal/cloudsim"
	"skyfaas/internal/cpu"
	"skyfaas/internal/geo"
)

// This file implements the routing refinements §3.4 sketches around the
// core strategies: bounding the added network latency with the
// client–region distance heuristic, and optimizing dollars rather than
// milliseconds when providers price differently.

// LatencyBound wraps an inner strategy and removes candidate zones whose
// round trip from the client exceeds MaxRTT — the paper's prior system
// "bounded network latency with a client-region distance heuristic", and
// §3.5 notes regional routing trades latency for billed-runtime savings.
type LatencyBound struct {
	// Inner decides among the zones that survive the latency filter
	// (default Hybrid{}).
	Inner Strategy
	// Client is the request origin.
	Client geo.Coord
	// MaxRTT is the highest acceptable round trip (default 120 ms).
	MaxRTT time.Duration
	// Locator resolves a zone to its region location; wire it to
	// Cloud-backed lookup via NewZoneLocator.
	Locator ZoneLocator
	// Model converts distance to RTT (zero value = DefaultLatencyModel).
	Model geo.LatencyModel
}

// ZoneLocator resolves a zone name to its region's coordinates.
type ZoneLocator func(az string) (geo.Coord, bool)

// NewZoneLocator builds a ZoneLocator over a cloud's catalog.
func NewZoneLocator(c *cloudsim.Cloud) ZoneLocator {
	return func(azName string) (geo.Coord, bool) {
		az, ok := c.AZ(azName)
		if !ok {
			return geo.Coord{}, false
		}
		return az.Region().Loc(), true
	}
}

func (l LatencyBound) inner() Strategy {
	if l.Inner == nil {
		return Hybrid{}
	}
	return l.Inner
}

func (l LatencyBound) maxRTT() time.Duration {
	if l.MaxRTT == 0 {
		return 120 * time.Millisecond
	}
	return l.MaxRTT
}

func (l LatencyBound) model() geo.LatencyModel {
	if l.Model == (geo.LatencyModel{}) {
		return geo.DefaultLatencyModel()
	}
	return l.Model
}

// Name implements Strategy.
func (l LatencyBound) Name() string { return "latency-bound+" + l.inner().Name() }

// filter returns the candidates within the RTT bound. If none qualify the
// original list is kept — a too-strict bound should degrade to the inner
// strategy, not strand the burst.
func (l LatencyBound) filter(candidates []string) []string {
	if l.Locator == nil {
		return candidates
	}
	model := l.model()
	var kept []string
	for _, az := range candidates {
		loc, ok := l.Locator(az)
		if !ok {
			continue
		}
		if model.BaseRTT(l.Client, loc) <= l.maxRTT() {
			kept = append(kept, az)
		}
	}
	if len(kept) == 0 {
		return candidates
	}
	return kept
}

// PickAZ implements Strategy.
func (l LatencyBound) PickAZ(dec Decision) string {
	dec.Candidates = l.filter(dec.Candidates)
	return l.inner().PickAZ(dec)
}

// Ban implements Strategy.
func (l LatencyBound) Ban(dec Decision, az string) cpu.Mask {
	dec.Candidates = l.filter(dec.Candidates)
	return l.inner().Ban(dec, az)
}

// ---------------------------------------------------------------------------

// CostAware routes to the candidate zone with the lowest expected *dollar*
// cost instead of the lowest expected runtime. The two differ across
// providers: a slower zone with a cheaper rate card or smaller memory grain
// can win on price (visible in the multicloud example). Within one
// provider and memory setting it reduces to Regional.
type CostAware struct {
	// MemoryMB is the deployment size the estimate assumes (default 4096).
	MemoryMB int
	// Pricer returns the rate card for a zone; wire via NewZonePricer.
	Pricer ZonePricer
}

// ZonePricer resolves a zone to its provider's price model.
type ZonePricer func(az string) (cloudsim.PriceModel, bool)

// NewZonePricer builds a ZonePricer over a cloud's catalog.
func NewZonePricer(c *cloudsim.Cloud) ZonePricer {
	return func(azName string) (cloudsim.PriceModel, bool) {
		az, ok := c.AZ(azName)
		if !ok {
			return cloudsim.PriceModel{}, false
		}
		return c.Price(az.Region().Provider()), true
	}
}

// Name implements Strategy.
func (CostAware) Name() string { return "cost-aware" }

// PickAZ implements Strategy.
func (c CostAware) PickAZ(dec Decision) string {
	if len(dec.Candidates) == 0 {
		return ""
	}
	mem := c.MemoryMB
	if mem == 0 {
		mem = 4096
	}
	best := ""
	bestCost := 0.0
	for _, az := range dec.Candidates {
		info := dec.Lookup(az)
		if !info.Known || !info.Fresh {
			continue
		}
		ms, ok := dec.Perf.ExpectedMS(dec.Workload, info.Dist)
		if !ok {
			continue
		}
		price := cloudsim.PriceModel{}
		if c.Pricer != nil {
			if p, ok := c.Pricer(az); ok {
				price = p
			}
		}
		cost := ms // no pricer: fall back to runtime comparison
		if price != (cloudsim.PriceModel{}) {
			cost = price.Cost(mem, ms)
		}
		if best == "" || cost < bestCost {
			best, bestCost = az, cost
		}
	}
	if best == "" {
		return dec.Candidates[0]
	}
	return best
}

// Ban implements Strategy: cost-aware placement keeps the hybrid retry
// logic inside the chosen zone, degrading to the conservative slowest-two
// ban when the zone's characterization has gone stale.
func (c CostAware) Ban(dec Decision, az string) cpu.Mask {
	info := dec.Lookup(az)
	if !info.Known {
		return 0
	}
	if !info.Fresh {
		return banSlowest(dec, info.Dist, 2)
	}
	return optimalBanSet(dec, info.Dist, 150)
}

var (
	_ Strategy = LatencyBound{}
	_ Strategy = CostAware{}
)
