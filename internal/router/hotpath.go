package router

import (
	"sync"

	"skyfaas/internal/cloudsim"
	"skyfaas/internal/cpu"
	"skyfaas/internal/faas"
	"skyfaas/internal/mesh"
)

// This file is the router's allocation-free issue path. Strategy decisions
// are expensive and allocate freely (maps, candidate slices, sorted
// rankings) — but they only change when the route changes: at burst start
// and on breaker failover. Everything the per-invocation loop needs is
// frozen into a DecisionTable at those two points, so issuing an invocation
// copies prebuilt values and touches no allocator.
//
// The measured budget (BenchmarkRouteHotPath, TestRouteHotPathAllocs):
// 0 allocs/op for the pinned strategies (Baseline, RetrySlow, FocusFastest)
// and the cheapest-zone strategies (Regional, Hybrid, CostAware) alike —
// the table is strategy-independent once built.

// DecisionTable is one frozen routing decision: the zone, its mesh
// endpoint, the ban mask, and the two call variants the burst loop issues
// (with bans enforced, and with bans lifted after give-up). The Work
// behaviors inside the calls are boxed exactly once, at build time; the
// hot path copies the interface header, which Go does without allocating.
type DecisionTable struct {
	// AZ is the decided zone; Banned the CPU kinds refused there.
	AZ     string
	Banned cpu.Mask
	// Endpoint is the mesh deployment the calls target.
	Endpoint mesh.Endpoint

	banned faas.Call
	open   faas.Call
}

// BuildDecisionTable runs one full (allocating) strategy decision and
// freezes it. holdMS is the decline hold the probe behavior enforces.
func BuildDecisionTable(s Strategy, dec Decision, m *mesh.Mesh, memoryMB int, holdMS float64) (DecisionTable, bool) {
	az := s.PickAZ(dec)
	if az == "" {
		return DecisionTable{}, false
	}
	return buildTableAt(s, dec, m, az, memoryMB, holdMS)
}

// buildTableAt freezes a decision for an already-chosen zone (failover
// picks the zone itself, then rebuilds the table here).
func buildTableAt(s Strategy, dec Decision, m *mesh.Mesh, az string, memoryMB int, holdMS float64) (DecisionTable, bool) {
	ep, ok := m.Nearest(az, memoryMB, cpu.X86)
	if !ok {
		return DecisionTable{}, false
	}
	t := DecisionTable{
		AZ:       az,
		Banned:   s.Ban(dec, az),
		Endpoint: ep,
	}
	t.banned = faas.Call{
		AZ:       az,
		Function: ep.Function,
		Work: cloudsim.ProbeBehavior{
			Work:   cloudsim.WorkBehavior{Workload: dec.Workload},
			Banned: t.Banned,
			HoldMS: holdMS,
		},
	}
	t.open = faas.Call{
		AZ:       az,
		Function: ep.Function,
		Work: cloudsim.ProbeBehavior{
			Work:   cloudsim.WorkBehavior{Workload: dec.Workload},
			HoldMS: holdMS,
		},
	}
	return t, true
}

// Call returns the prebuilt call, with or without the ban set. The result
// is a value copy sharing the boxed behavior — callers must not mutate
// Work. Zero allocations, enforced statically by skylint's hotalloc rule
// and dynamically by TestRouteHotPathAllocs.
//
//lint:hotpath
func (t *DecisionTable) Call(enforceBans bool) faas.Call {
	if enforceBans {
		return t.banned
	}
	return t.open
}

// Pick returns the frozen decision. Zero allocations.
//
//lint:hotpath
func (t *DecisionTable) Pick() (az string, banned cpu.Mask) {
	return t.AZ, t.Banned
}

// ---------------------------------------------------------------------------

// burstState is the reusable per-burst bookkeeping: the logical-invocation
// slots and the retry queue. Bursts are created in volume by the scale
// experiments (EX-9 issues one per batch), so the arrays are pooled; a
// burst takes a state at start and returns it once every response that
// could touch a slot has settled.
type burstState struct {
	slots []burstSlot
	queue []*burstSlot
	// pending counts outstanding references across all slots: in-flight
	// response callbacks and armed hedge timers that will still read slot
	// state when they run. finished marks that Burst has returned. The
	// state goes back to the pool only when both agree nobody can touch
	// it — whichever of finish / the last settle happens second pools it.
	pending  int
	finished bool
}

// burstSlot is one logical invocation. gen advances every time the slot is
// (re)issued or settled, so a response carrying a stale gen — a hedge
// loser, or the twin of an attempt that already failed — identifies itself
// and is dropped.
type burstSlot struct {
	attempts int // platform-failure attempts consumed
	gen      int
	// refs is this slot's share of burstState.pending: response callbacks
	// and hedge timers that have not fired yet. Only the sim goroutine
	// touches it.
	refs int
}

var burstPool = sync.Pool{New: func() any { return new(burstState) }}

// newBurstState returns a pooled state sized for n slots, all queued.
func newBurstState(n int) *burstState {
	st := burstPool.Get().(*burstState)
	if cap(st.slots) < n {
		st.slots = make([]burstSlot, n)
		st.queue = make([]*burstSlot, 0, n)
	}
	st.slots = st.slots[:n]
	st.queue = st.queue[:0]
	for i := range st.slots {
		st.slots[i] = burstSlot{}
		st.queue = append(st.queue, &st.slots[i])
	}
	st.pending = 0
	st.finished = false
	return st
}

// retain records a reference to sl: a response callback or an armed hedge
// timer that will read the slot when it fires.
func (st *burstState) retain(sl *burstSlot) {
	sl.refs++
	st.pending++
}

// settle drops one reference to sl. The last settle after finish pools
// the state.
func (st *burstState) settle(sl *burstSlot) {
	sl.refs--
	st.pending--
	if st.finished && st.pending == 0 {
		st.release()
	}
}

// finish marks the burst returned. With no references in flight the state
// pools immediately; otherwise the final straggler's settle pools it.
// This is what makes pooling safe with hedging on: a losing twin that
// completes after the burst settles still holds its reference, so its
// slot cannot have been recycled under it.
func (st *burstState) finish() {
	st.finished = true
	if st.pending == 0 {
		st.release()
	}
}

// release returns the state to the pool. Callers outside the
// retain/settle/finish protocol must guarantee no in-flight response can
// still reach a slot.
func (st *burstState) release() {
	burstPool.Put(st)
}
