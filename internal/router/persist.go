package router

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"skyfaas/internal/cpu"
	"skyfaas/internal/stats"
	"skyfaas/internal/workload"
)

// Persistence for the learned performance model: §4.6 notes that CPU
// characterizations are workload-independent and reusable, and the same
// holds for the per-workload runtime profile — profiling costs tens of
// dollars at paper scale, so a deployment saves the model rather than
// re-learning it.

type perfFile struct {
	Workloads []perfWorkloadJS `json:"workloads"`
}

type perfWorkloadJS struct {
	Workload string       `json:"workload"` // snake_case name
	Kinds    []perfKindJS `json:"kinds"`
}

type perfKindJS struct {
	Model  string  `json:"cpuModel"` // catalog model string
	N      int     `json:"n"`
	MeanMS float64 `json:"meanMS"`
}

// Save writes the model as JSON. Only the sufficient statistics survive
// (count and mean per CPU), which is exactly what routing consumes.
func (m *PerfModel) Save(w io.Writer) error {
	var file perfFile
	ids := make([]workload.ID, 0, len(m.byWorkload))
	for id := range m.byWorkload {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		js := perfWorkloadJS{Workload: id.String()}
		for _, k := range m.Kinds(id) {
			mean, _ := m.Mean(id, k)
			js.Kinds = append(js.Kinds, perfKindJS{
				Model:  cpu.MustLookup(k).Model,
				N:      m.Samples(id, k),
				MeanMS: mean,
			})
		}
		file.Workloads = append(file.Workloads, js)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(file); err != nil {
		return fmt.Errorf("router: save perf model: %w", err)
	}
	return nil
}

// LoadPerfModel reads a model written by Save. Loaded entries reproduce
// the saved count and mean (the variance is not persisted; it is not used
// for routing).
func LoadPerfModel(r io.Reader) (*PerfModel, error) {
	var file perfFile
	if err := json.NewDecoder(r).Decode(&file); err != nil {
		return nil, fmt.Errorf("router: load perf model: %w", err)
	}
	m := NewPerfModel()
	for _, wjs := range file.Workloads {
		spec, ok := workload.ByName(wjs.Workload)
		if !ok {
			return nil, fmt.Errorf("router: load perf model: unknown workload %q", wjs.Workload)
		}
		for _, kjs := range wjs.Kinds {
			k, err := cpu.FromModel(kjs.Model)
			if err != nil {
				return nil, fmt.Errorf("router: load perf model: %w", err)
			}
			if kjs.N <= 0 {
				continue
			}
			byKind, ok := m.byWorkload[spec.ID]
			if !ok {
				byKind = make(map[cpu.Kind]*stats.Running)
				m.byWorkload[spec.ID] = byKind
			}
			r := &stats.Running{}
			for i := 0; i < kjs.N; i++ {
				r.Add(kjs.MeanMS) // reproduces count and mean exactly
			}
			byKind[k] = r
		}
	}
	return m, nil
}
