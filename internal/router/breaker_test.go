package router

import (
	"testing"
	"time"
)

// TestBreakerTransitions drives the circuit through its lifecycle with an
// explicit virtual clock: each step either records an outcome or asks for
// admission at a given sim-time offset, and asserts the resulting state.
func TestBreakerTransitions(t *testing.T) {
	cfg := BreakerConfig{
		Window:      10 * time.Second,
		MinRequests: 4,
		FailureRate: 0.5,
		OpenFor:     30 * time.Second,
		HalfOpenMax: 2,
	}
	epoch := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	type step struct {
		at        time.Duration
		op        string // "ok", "fail", "allow", "deny"
		wantState BreakerState
	}
	cases := []struct {
		name  string
		steps []step
	}{
		{
			name: "trips only past MinRequests",
			steps: []step{
				{0, "fail", BreakerClosed},
				{1 * time.Second, "fail", BreakerClosed},
				{2 * time.Second, "fail", BreakerClosed}, // 3 < MinRequests: still closed
				{3 * time.Second, "fail", BreakerOpen},   // 4/4 failed ≥ 50%
			},
		},
		{
			name: "healthy traffic never trips",
			steps: []step{
				{0, "ok", BreakerClosed},
				{1 * time.Second, "ok", BreakerClosed},
				{2 * time.Second, "fail", BreakerClosed},
				{3 * time.Second, "ok", BreakerClosed}, // 1/4 failed < 50%
				{4 * time.Second, "allow", BreakerClosed},
			},
		},
		{
			name: "window slides old failures out",
			steps: []step{
				{0, "fail", BreakerClosed},
				{1 * time.Second, "fail", BreakerClosed},
				// 15s later the two failures have aged out of the 10s window;
				// these three leave the rate at 1/3 over too few samples.
				{15 * time.Second, "ok", BreakerClosed},
				{16 * time.Second, "ok", BreakerClosed},
				{17 * time.Second, "fail", BreakerClosed},
			},
		},
		{
			name: "open rejects until OpenFor then half-opens",
			steps: []step{
				{0, "fail", BreakerClosed},
				{1 * time.Second, "fail", BreakerClosed},
				{2 * time.Second, "fail", BreakerClosed},
				{3 * time.Second, "fail", BreakerOpen},
				{10 * time.Second, "deny", BreakerOpen},      // still inside OpenFor
				{34 * time.Second, "allow", BreakerHalfOpen}, // 31s after trip
			},
		},
		{
			name: "half-open probe failure reopens",
			steps: []step{
				{0, "fail", BreakerClosed},
				{1 * time.Second, "fail", BreakerClosed},
				{2 * time.Second, "fail", BreakerClosed},
				{3 * time.Second, "fail", BreakerOpen},
				{40 * time.Second, "allow", BreakerHalfOpen},
				{41 * time.Second, "fail", BreakerOpen},
				{50 * time.Second, "deny", BreakerOpen}, // OpenFor restarts at re-trip
			},
		},
		{
			name: "half-open probe successes reclose",
			steps: []step{
				{0, "fail", BreakerClosed},
				{1 * time.Second, "fail", BreakerClosed},
				{2 * time.Second, "fail", BreakerClosed},
				{3 * time.Second, "fail", BreakerOpen},
				{40 * time.Second, "ok", BreakerHalfOpen}, // 1/2 probe successes
				{41 * time.Second, "ok", BreakerClosed},   // HalfOpenMax successes
				{42 * time.Second, "allow", BreakerClosed},
			},
		},
		{
			name: "half-open admits only HalfOpenMax probes",
			steps: []step{
				{0, "fail", BreakerClosed},
				{1 * time.Second, "fail", BreakerClosed},
				{2 * time.Second, "fail", BreakerClosed},
				{3 * time.Second, "fail", BreakerOpen},
				{40 * time.Second, "allow", BreakerHalfOpen},
				{40 * time.Second, "allow", BreakerHalfOpen},
				{40 * time.Second, "deny", BreakerHalfOpen}, // probe budget spent
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBreaker(cfg)
			for i, s := range tc.steps {
				now := epoch.Add(s.at)
				switch s.op {
				case "ok":
					if !b.Allow(now) {
						t.Fatalf("step %d: request rejected in state %v", i, b.State())
					}
					b.Record(now, true)
				case "fail":
					if b.State() != BreakerOpen && !b.Allow(now) {
						t.Fatalf("step %d: request rejected in state %v", i, b.State())
					}
					b.Record(now, false)
				case "allow":
					if !b.Allow(now) {
						t.Fatalf("step %d: want admitted, got rejected", i)
					}
				case "deny":
					if b.Allow(now) {
						t.Fatalf("step %d: want rejected, got admitted", i)
					}
				}
				if b.State() != s.wantState {
					t.Fatalf("step %d (%s at %v): state = %v, want %v",
						i, s.op, s.at, b.State(), s.wantState)
				}
			}
		})
	}
}

// TestBreakerAdmitsIsSideEffectFree verifies the failover filter can poll a
// half-open breaker without consuming its probe budget.
func TestBreakerAdmitsIsSideEffectFree(t *testing.T) {
	epoch := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	b := NewBreaker(BreakerConfig{MinRequests: 2, HalfOpenMax: 1, OpenFor: time.Second})
	b.Record(epoch, false)
	b.Record(epoch, false)
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	later := epoch.Add(2 * time.Second)
	for i := 0; i < 10; i++ {
		if !b.Admits(later) {
			t.Fatal("Admits rejected past OpenFor")
		}
	}
	if b.State() != BreakerOpen {
		t.Fatalf("Admits mutated state to %v", b.State())
	}
	if !b.Allow(later) {
		t.Fatal("Allow rejected the single half-open probe")
	}
	if b.Allow(later) {
		t.Fatal("probe budget not enforced after Admits polling")
	}
}

func TestBreakerStateString(t *testing.T) {
	for s, want := range map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerOpen:     "open",
		BreakerHalfOpen: "half-open",
		BreakerState(9): "unknown",
	} {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
}
