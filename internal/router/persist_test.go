package router

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"skyfaas/internal/cpu"
	"skyfaas/internal/workload"
)

func TestPerfModelSaveLoadRoundTrip(t *testing.T) {
	m := NewPerfModel()
	for i := 0; i < 100; i++ {
		m.Observe(workload.Zipper, cpu.Xeon25, 4000+float64(i))
		m.Observe(workload.Zipper, cpu.Xeon30, 3400+float64(i))
	}
	m.Observe(workload.LogisticRegression, cpu.EPYC, 9800)

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"zipper"`) {
		t.Errorf("serialized form lacks workload names:\n%s", buf.String())
	}
	back, err := LoadPerfModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []cpu.Kind{cpu.Xeon25, cpu.Xeon30} {
		origMean, _ := m.Mean(workload.Zipper, k)
		gotMean, ok := back.Mean(workload.Zipper, k)
		if !ok {
			t.Fatalf("%v missing after load", k)
		}
		if math.Abs(gotMean-origMean) > 1e-6 {
			t.Errorf("%v mean %v vs %v", k, gotMean, origMean)
		}
		if back.Samples(workload.Zipper, k) != 100 {
			t.Errorf("%v samples = %d", k, back.Samples(workload.Zipper, k))
		}
	}
	// Ranking survives.
	kinds := back.Kinds(workload.Zipper)
	if len(kinds) != 2 || kinds[0] != cpu.Xeon30 {
		t.Errorf("ranking after load = %v", kinds)
	}
	if _, ok := back.Mean(workload.LogisticRegression, cpu.EPYC); !ok {
		t.Error("second workload missing")
	}
}

func TestLoadPerfModelRejectsGarbage(t *testing.T) {
	if _, err := LoadPerfModel(strings.NewReader("]")); err == nil {
		t.Fatal("bad JSON accepted")
	}
	if _, err := LoadPerfModel(strings.NewReader(
		`{"workloads":[{"workload":"quantum_sort","kinds":[]}]}`)); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := LoadPerfModel(strings.NewReader(
		`{"workloads":[{"workload":"zipper","kinds":[{"cpuModel":"Mystery","n":1,"meanMS":5}]}]}`)); err == nil {
		t.Fatal("unknown CPU model accepted")
	}
}

func TestLoadPerfModelSkipsEmptyEntries(t *testing.T) {
	back, err := LoadPerfModel(strings.NewReader(
		`{"workloads":[{"workload":"zipper","kinds":[{"cpuModel":"AMD EPYC","n":0,"meanMS":5}]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := back.Mean(workload.Zipper, cpu.EPYC); ok {
		t.Fatal("zero-sample entry loaded")
	}
}
