package skyd

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"skyfaas/internal/admission"
	"skyfaas/internal/charact"
	"skyfaas/internal/cloudsim"
	"skyfaas/internal/router"
	"skyfaas/internal/sim"
	"skyfaas/internal/tenant"
	"skyfaas/internal/workload"
)

// All handler logic runs inside Exec: the simulation state (store, perf
// model, cloud) belongs to the simulation goroutine, so even read-only
// endpoints marshal their answers from within a command.

func (s *Server) routes() {
	for _, def := range apiRouteDefs() {
		s.mount(def)
	}
	// Observability endpoints are deliberately uninstrumented (and never
	// authenticated): scrapes must stay readable without perturbing the
	// numbers they report, and a monitor must not need a tenant key.
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /metrics.json", s.handleMetricsJSON)
}

// handleHealth reports whether the simulation goroutine is still pumping
// commands: it round-trips a no-op through the command queue, so a closed
// server or a stalled pump answers non-200.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	var now time.Time
	errCh := make(chan error, 1)
	go func() {
		errCh <- s.Exec(func(p *sim.Proc) error {
			now = p.Env().Now()
			return nil
		})
	}()
	select {
	case err := <-errCh:
		if err != nil {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"status": "down", "error": err.Error(),
			})
			return
		}
	case <-time.After(s.healthTimeout):
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "down", "error": "simulation pump stalled",
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"virtualTime":   now,
		"cmdQueueDepth": int(s.queueDepth.Value()),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.WritePrometheus(w)
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.metrics.WriteJSON(w)
}

func (s *Server) handleHealthz(ctx context.Context, r *apiReq) (any, *apiError) {
	var now time.Time
	err := s.Exec(func(p *sim.Proc) error {
		now = p.Env().Now()
		return nil
	})
	if err != nil {
		return nil, errFromExec(err)
	}
	return map[string]any{
		"status":      "ok",
		"virtualTime": now,
	}, nil
}

type zoneJS struct {
	Name     string `json:"name"`
	Region   string `json:"region"`
	Provider string `json:"provider"`
}

func (s *Server) handleZones(ctx context.Context, r *apiReq) (any, *apiError) {
	var zones []zoneJS
	err := s.Exec(func(p *sim.Proc) error {
		for _, region := range s.rt.Cloud().Regions() {
			for _, az := range region.AZs() {
				zones = append(zones, zoneJS{
					Name:     az.Name(),
					Region:   region.Name(),
					Provider: region.Provider().String(),
				})
			}
		}
		return nil
	})
	if err != nil {
		return nil, errFromExec(err)
	}
	return map[string]any{"zones": zones}, nil
}

type characterizationJS struct {
	AZ      string             `json:"az"`
	Taken   time.Time          `json:"taken"`
	Polls   int                `json:"polls"`
	Samples int                `json:"samples"`
	CostUSD float64            `json:"costUSD"`
	Dist    map[string]float64 `json:"dist"` // CPU label -> share
}

func charToJS(ch charact.Characterization) characterizationJS {
	dist := make(map[string]float64)
	for k, share := range ch.Dist() {
		dist[k.String()] = share
	}
	return characterizationJS{
		AZ: ch.AZ, Taken: ch.Taken, Polls: ch.Polls,
		Samples: ch.Samples, CostUSD: ch.CostUSD, Dist: dist,
	}
}

func (s *Server) handleCharacterizations(ctx context.Context, r *apiReq) (any, *apiError) {
	var out []characterizationJS
	err := s.Exec(func(p *sim.Proc) error {
		store := s.rt.Store()
		now := p.Env().Now()
		for _, az := range store.Zones() {
			if ch, ok := store.Get(az, now); ok {
				out = append(out, charToJS(ch))
			}
		}
		return nil
	})
	if err != nil {
		return nil, errFromExec(err)
	}
	return map[string]any{"characterizations": out}, nil
}

type characterizeReq struct {
	AZ    string `json:"az"`
	Polls int    `json:"polls"`
}

func (s *Server) handleCharacterize(ctx context.Context, r *apiReq) (any, *apiError) {
	var req characterizeReq
	if e := r.decode(&req); e != nil {
		return nil, e
	}
	if req.Polls <= 0 {
		req.Polls = 6
	}
	var ch charact.Characterization
	err := s.Exec(func(p *sim.Proc) error {
		// Address the zone before spending anything: an unknown AZ is the
		// caller's error (404 unknown_az via errFromExec), not a gateway
		// failure of the simulated cloud.
		if _, ok := s.rt.Cloud().AZ(req.AZ); !ok {
			return fmt.Errorf("%w: %q", cloudsim.ErrNoSuchAZ, req.AZ)
		}
		if err := s.rt.EnsureSamplerEndpoints(req.AZ); err != nil {
			return err
		}
		got, _, err := s.rt.Sampler().CharacterizeQuick(p, req.AZ, req.Polls)
		if err != nil {
			return err
		}
		s.rt.Store().Put(got)
		ch = got
		return nil
	})
	if err != nil {
		return nil, errFromExec(err)
	}
	return charToJS(ch), nil
}

type profileReq struct {
	Workload string   `json:"workload"`
	Zones    []string `json:"zones"`
	Runs     int      `json:"runs"`
}

func (s *Server) handleProfile(ctx context.Context, r *apiReq) (any, *apiError) {
	var req profileReq
	if e := r.decode(&req); e != nil {
		return nil, e
	}
	spec, ok := workload.ByName(req.Workload)
	if !ok {
		return nil, apiErrf(http.StatusBadRequest, "unknown_workload", "unknown workload %q", req.Workload)
	}
	if req.Runs <= 0 {
		req.Runs = 300
	}
	if len(req.Zones) == 0 {
		return nil, apiErrf(http.StatusBadRequest, "bad_request", "no zones given")
	}
	var cost float64
	err := s.Exec(func(p *sim.Proc) error {
		// Pre-validate the zone list: the router reports unknown zones as a
		// generic mesh failure, which would masquerade as a 502.
		for _, az := range req.Zones {
			if _, ok := s.rt.Cloud().AZ(az); !ok {
				return fmt.Errorf("%w: %q", cloudsim.ErrNoSuchAZ, az)
			}
		}
		c, err := s.rt.ProfileWorkloads(p, []workload.ID{spec.ID}, req.Zones, req.Runs)
		cost = c
		return err
	})
	if err != nil {
		return nil, errFromExec(err)
	}
	return map[string]any{
		"workload": spec.Name,
		"costUSD":  cost,
	}, nil
}

func (s *Server) handlePerf(ctx context.Context, r *apiReq) (any, *apiError) {
	name := r.http.URL.Query().Get("workload")
	spec, ok := workload.ByName(name)
	if !ok {
		return nil, apiErrf(http.StatusBadRequest, "unknown_workload", "unknown workload %q", name)
	}
	type kindJS struct {
		CPU     string  `json:"cpu"`
		MeanMS  float64 `json:"meanMS"`
		Samples int     `json:"samples"`
	}
	var kinds []kindJS
	err := s.Exec(func(p *sim.Proc) error {
		perf := s.rt.Perf()
		for _, k := range perf.Kinds(spec.ID) {
			mean, _ := perf.Mean(spec.ID, k)
			kinds = append(kinds, kindJS{
				CPU: k.String(), MeanMS: mean, Samples: perf.Samples(spec.ID, k),
			})
		}
		return nil
	})
	if err != nil {
		return nil, errFromExec(err)
	}
	return map[string]any{
		"workload": spec.Name,
		"kinds":    kinds,
	}, nil
}

type burstReq struct {
	Strategy   string             `json:"strategy"` // a router.Names() entry ("" = hybrid)
	AZ         string             `json:"az"`       // fixed zone for the pinned strategies
	Params     map[string]float64 `json:"params"`   // per-strategy scalars (see router.StrategySpec)
	Workload   string             `json:"workload"`
	N          int                `json:"n"`
	Candidates []string           `json:"candidates"`
}

type burstJS struct {
	Strategy  string         `json:"strategy"`
	Workload  string         `json:"workload"`
	AZ        string         `json:"az"`
	Completed int            `json:"completed"`
	Attempts  int            `json:"attempts"`
	Declined  int            `json:"declined"`
	Failed    int            `json:"failed"`
	RetryFrac float64        `json:"retryFrac"`
	MeanRunMS float64        `json:"meanRunMS"`
	CostUSD   float64        `json:"costUSD"`
	ElapsedMS float64        `json:"elapsedMS"`
	PerCPU    map[string]int `json:"perCPU"`
}

func (s *Server) handleBurst(ctx context.Context, r *apiReq) (any, *apiError) {
	var req burstReq
	if e := r.decode(&req); e != nil {
		return nil, e
	}
	spec, ok := workload.ByName(req.Workload)
	if !ok {
		return nil, apiErrf(http.StatusBadRequest, "unknown_workload", "unknown workload %q", req.Workload)
	}
	if req.Strategy == "" {
		req.Strategy = "hybrid"
	}
	strat, err := router.Build(
		router.StrategySpec{Name: req.Strategy, AZ: req.AZ, Params: req.Params},
		router.WithLocator(router.NewZoneLocator(s.rt.Cloud())),
		router.WithPricer(router.NewZonePricer(s.rt.Cloud())),
	)
	if err != nil {
		code := "bad_request"
		if errors.Is(err, router.ErrUnknownStrategy) {
			code = "unknown_strategy"
		}
		return nil, apiErrf(http.StatusBadRequest, code, "%v", err)
	}
	if req.N <= 0 {
		req.N = 100
	}
	// Tenant governors run before the global gate: a tenant over its own
	// quota or budget sheds here without consuming global admission
	// capacity, which is what keeps one tenant's storm from starving the
	// rest (EX-10).
	lease, e := s.acquireTenant(r, req.N)
	if e != nil {
		return nil, e
	}
	// Overload control: the burst must clear the admission gate before it
	// reaches the simulation — one slot per invocation, so a burst of N
	// holds N. Over capacity the request sheds with a typed 429 instead of
	// piling onto the provider quota and triggering retry storms.
	var ticket admission.Ticket
	if gate := s.gate; gate != nil {
		tk, admitErr := gate.Admit(time.Now(), spec.ID, req.N)
		if admitErr != nil {
			s.tenants.Release(lease, time.Now(), 0)
			var shed *admission.ShedError
			if errors.As(admitErr, &shed) {
				return nil, shedToAPIError(spec.Name, shed)
			}
			return nil, apiErrf(http.StatusInternalServerError, "internal", "%v", admitErr)
		}
		ticket = tk
		// Batched routing under pressure: reuse the last good placement for
		// this function instead of re-running the strategy per request.
		if az, ok := gate.RouteFor(spec.ID, time.Now()); ok {
			if pinned, perr := router.Build(router.StrategySpec{Name: "baseline", AZ: az}); perr == nil {
				strat = pinned
			}
		}
	}
	var res router.BurstResult
	err = s.Exec(func(p *sim.Proc) error {
		// Explicitly addressed zones are validated up front: a typo'd AZ or
		// candidate is the caller's 404, not an upstream 502.
		for _, az := range append([]string{req.AZ}, req.Candidates...) {
			if az == "" {
				continue
			}
			if _, ok := s.rt.Cloud().AZ(az); !ok {
				return fmt.Errorf("%w: %q", cloudsim.ErrNoSuchAZ, az)
			}
		}
		got, err := s.rt.Run(p, router.BurstSpec{
			Strategy:   strat,
			Workload:   spec.ID,
			N:          req.N,
			Candidates: req.Candidates,
		})
		res = got
		return err
	})
	if gate := s.gate; gate != nil {
		// Release the slots and feed the observed service time back into the
		// Jindal-style capacity estimate.
		gate.Done(ticket, time.Now(), res.MeanRunMS(), err == nil && res.Completed > 0)
		if err == nil && res.AZ != "" {
			gate.RememberRoute(spec.ID, res.AZ, time.Now())
		}
	}
	// The tenant is billed what the burst actually cost, successful or not.
	s.tenants.Release(lease, time.Now(), res.CostUSD)
	if err != nil {
		return nil, errFromExec(err)
	}
	perCPU := make(map[string]int, len(res.PerCPU))
	for k, n := range res.PerCPU {
		perCPU[k.String()] = n
	}
	return burstJS{
		Strategy:  res.Strategy,
		Workload:  res.Workload.String(),
		AZ:        res.AZ,
		Completed: res.Completed,
		Attempts:  res.Attempts,
		Declined:  res.Declined,
		Failed:    res.Failed,
		RetryFrac: res.RetryFrac(),
		MeanRunMS: res.MeanRunMS(),
		CostUSD:   res.CostUSD,
		ElapsedMS: float64(res.Elapsed) / float64(time.Millisecond),
		PerCPU:    perCPU,
	}, nil
}

// acquireTenant runs the per-tenant quota and budget governors for an
// N-invocation burst. Auth-off mode (no registry, acct nil) admits freely
// with a zero lease.
func (s *Server) acquireTenant(r *apiReq, n int) (tenant.Lease, *apiError) {
	if s.tenants == nil || r.acct == nil {
		return tenant.Lease{}, nil
	}
	lease, err := s.tenants.Acquire(r.acct.ID, n, time.Now())
	if err == nil {
		return lease, nil
	}
	var le *tenant.LimitError
	if errors.As(err, &le) {
		return tenant.Lease{}, limitToAPIError(le)
	}
	// The account vanished between authorize and here (concurrent DELETE).
	return tenant.Lease{}, apiErrf(http.StatusForbidden, "bad_key", "%v", err)
}

// limitToAPIError converts a per-tenant governor rejection into the
// envelope: 429, code = the shed reason, detail = the tenant's load/budget
// picture.
func limitToAPIError(le *tenant.LimitError) *apiError {
	e := apiErrf(http.StatusTooManyRequests, string(le.Reason), "%v", le)
	e.retryAfter = le.RetryAfter
	e.detail = map[string]any{
		"tenant":     le.Tenant,
		"inflight":   le.Inflight,
		"quotaSlots": le.QuotaSlots,
		"balanceUSD": le.BalanceUSD,
	}
	return e
}

func (s *Server) handleWorkloads(ctx context.Context, r *apiReq) (any, *apiError) {
	type wlJS struct {
		Name        string  `json:"name"`
		VCPUs       float64 `json:"vcpus"`
		Description string  `json:"description"`
	}
	out := make([]wlJS, 0, 12)
	for _, spec := range workload.All() {
		out = append(out, wlJS{Name: spec.Name, VCPUs: spec.VCPUs, Description: spec.Description})
	}
	return map[string]any{"workloads": out}, nil
}
