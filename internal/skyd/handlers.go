package skyd

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"skyfaas/internal/admission"
	"skyfaas/internal/charact"
	"skyfaas/internal/router"
	"skyfaas/internal/sim"
	"skyfaas/internal/workload"
)

// All handler logic runs inside Exec: the simulation state (store, perf
// model, cloud) belongs to the simulation goroutine, so even read-only
// endpoints marshal their answers from within a command.

func (s *Server) routes() {
	s.handle("GET /v1/healthz", "/v1/healthz", s.handleHealthz)
	s.handle("GET /v1/zones", "/v1/zones", s.handleZones)
	s.handle("GET /v1/characterizations", "/v1/characterizations", s.handleCharacterizations)
	s.handle("POST /v1/characterize", "/v1/characterize", s.handleCharacterize)
	s.handle("POST /v1/profile", "/v1/profile", s.handleProfile)
	s.handle("GET /v1/perf", "/v1/perf", s.handlePerf)
	s.handle("POST /v1/burst", "/v1/burst", s.handleBurst)
	s.handle("GET /v1/workloads", "/v1/workloads", s.handleWorkloads)
	s.handle("POST /v1/faults", "/v1/faults", s.handleInjectFaults)
	s.handle("GET /v1/faults", "/v1/faults", s.handleListFaults)
	s.handle("GET /v1/refresh", "/v1/refresh", s.handleRefreshStatus)
	s.handle("POST /v1/refresh", "/v1/refresh", s.handleRefreshControl)
	s.handle("GET /v1/admission", "/v1/admission", s.handleAdmissionStatus)
	s.handle("POST /v1/admission", "/v1/admission", s.handleAdmissionControl)
	// Observability endpoints are deliberately uninstrumented: scrapes must
	// stay readable without perturbing the numbers they report.
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /metrics.json", s.handleMetricsJSON)
}

// handleHealth reports whether the simulation goroutine is still pumping
// commands: it round-trips a no-op through the command queue, so a closed
// server or a stalled pump answers non-200.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	var now time.Time
	errCh := make(chan error, 1)
	go func() {
		errCh <- s.Exec(func(p *sim.Proc) error {
			now = p.Env().Now()
			return nil
		})
	}()
	select {
	case err := <-errCh:
		if err != nil {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"status": "down", "error": err.Error(),
			})
			return
		}
	case <-time.After(s.healthTimeout):
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "down", "error": "simulation pump stalled",
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"virtualTime":   now,
		"cmdQueueDepth": int(s.queueDepth.Value()),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.WritePrometheus(w)
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.metrics.WriteJSON(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	var now time.Time
	err := s.Exec(func(p *sim.Proc) error {
		now = p.Env().Now()
		return nil
	})
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"virtualTime": now,
	})
}

type zoneJS struct {
	Name     string `json:"name"`
	Region   string `json:"region"`
	Provider string `json:"provider"`
}

func (s *Server) handleZones(w http.ResponseWriter, r *http.Request) {
	var zones []zoneJS
	err := s.Exec(func(p *sim.Proc) error {
		for _, region := range s.rt.Cloud().Regions() {
			for _, az := range region.AZs() {
				zones = append(zones, zoneJS{
					Name:     az.Name(),
					Region:   region.Name(),
					Provider: region.Provider().String(),
				})
			}
		}
		return nil
	})
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"zones": zones})
}

type characterizationJS struct {
	AZ      string             `json:"az"`
	Taken   time.Time          `json:"taken"`
	Polls   int                `json:"polls"`
	Samples int                `json:"samples"`
	CostUSD float64            `json:"costUSD"`
	Dist    map[string]float64 `json:"dist"` // CPU label -> share
}

func charToJS(ch charact.Characterization) characterizationJS {
	dist := make(map[string]float64)
	for k, share := range ch.Dist() {
		dist[k.String()] = share
	}
	return characterizationJS{
		AZ: ch.AZ, Taken: ch.Taken, Polls: ch.Polls,
		Samples: ch.Samples, CostUSD: ch.CostUSD, Dist: dist,
	}
}

func (s *Server) handleCharacterizations(w http.ResponseWriter, r *http.Request) {
	var out []characterizationJS
	err := s.Exec(func(p *sim.Proc) error {
		store := s.rt.Store()
		now := p.Env().Now()
		for _, az := range store.Zones() {
			if ch, ok := store.Get(az, now); ok {
				out = append(out, charToJS(ch))
			}
		}
		return nil
	})
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"characterizations": out})
}

type characterizeReq struct {
	AZ    string `json:"az"`
	Polls int    `json:"polls"`
}

func (s *Server) handleCharacterize(w http.ResponseWriter, r *http.Request) {
	var req characterizeReq
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Polls <= 0 {
		req.Polls = 6
	}
	var ch charact.Characterization
	err := s.Exec(func(p *sim.Proc) error {
		if _, ok := s.rt.Cloud().AZ(req.AZ); !ok {
			return fmt.Errorf("unknown AZ %q", req.AZ)
		}
		if err := s.rt.EnsureSamplerEndpoints(req.AZ); err != nil {
			return err
		}
		got, _, err := s.rt.Sampler().CharacterizeQuick(p, req.AZ, req.Polls)
		if err != nil {
			return err
		}
		s.rt.Store().Put(got)
		ch = got
		return nil
	})
	if err != nil {
		writeErr(w, http.StatusBadGateway, err)
		return
	}
	writeJSON(w, http.StatusOK, charToJS(ch))
}

type profileReq struct {
	Workload string   `json:"workload"`
	Zones    []string `json:"zones"`
	Runs     int      `json:"runs"`
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	var req profileReq
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	spec, ok := workload.ByName(req.Workload)
	if !ok {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown workload %q", req.Workload))
		return
	}
	if req.Runs <= 0 {
		req.Runs = 300
	}
	if len(req.Zones) == 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("no zones given"))
		return
	}
	var cost float64
	err := s.Exec(func(p *sim.Proc) error {
		c, err := s.rt.ProfileWorkloads(p, []workload.ID{spec.ID}, req.Zones, req.Runs)
		cost = c
		return err
	})
	if err != nil {
		writeErr(w, http.StatusBadGateway, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"workload": spec.Name,
		"costUSD":  cost,
	})
}

func (s *Server) handlePerf(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("workload")
	spec, ok := workload.ByName(name)
	if !ok {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown workload %q", name))
		return
	}
	type kindJS struct {
		CPU     string  `json:"cpu"`
		MeanMS  float64 `json:"meanMS"`
		Samples int     `json:"samples"`
	}
	var kinds []kindJS
	err := s.Exec(func(p *sim.Proc) error {
		perf := s.rt.Perf()
		for _, k := range perf.Kinds(spec.ID) {
			mean, _ := perf.Mean(spec.ID, k)
			kinds = append(kinds, kindJS{
				CPU: k.String(), MeanMS: mean, Samples: perf.Samples(spec.ID, k),
			})
		}
		return nil
	})
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"workload": spec.Name,
		"kinds":    kinds,
	})
}

type burstReq struct {
	Strategy   string             `json:"strategy"` // a router.Names() entry ("" = hybrid)
	AZ         string             `json:"az"`       // fixed zone for the pinned strategies
	Params     map[string]float64 `json:"params"`   // per-strategy scalars (see router.StrategySpec)
	Workload   string             `json:"workload"`
	N          int                `json:"n"`
	Candidates []string           `json:"candidates"`
}

type burstJS struct {
	Strategy  string         `json:"strategy"`
	Workload  string         `json:"workload"`
	AZ        string         `json:"az"`
	Completed int            `json:"completed"`
	Attempts  int            `json:"attempts"`
	Declined  int            `json:"declined"`
	Failed    int            `json:"failed"`
	RetryFrac float64        `json:"retryFrac"`
	MeanRunMS float64        `json:"meanRunMS"`
	CostUSD   float64        `json:"costUSD"`
	ElapsedMS float64        `json:"elapsedMS"`
	PerCPU    map[string]int `json:"perCPU"`
}

func (s *Server) handleBurst(w http.ResponseWriter, r *http.Request) {
	var req burstReq
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	spec, ok := workload.ByName(req.Workload)
	if !ok {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown workload %q", req.Workload))
		return
	}
	if req.Strategy == "" {
		req.Strategy = "hybrid"
	}
	strat, err := router.Build(
		router.StrategySpec{Name: req.Strategy, AZ: req.AZ, Params: req.Params},
		router.WithLocator(router.NewZoneLocator(s.rt.Cloud())),
		router.WithPricer(router.NewZonePricer(s.rt.Cloud())),
	)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.N <= 0 {
		req.N = 100
	}
	// Overload control: the burst must clear the admission gate before it
	// reaches the simulation — one slot per invocation, so a burst of N
	// holds N. Over capacity the request sheds with a typed 429 instead of
	// piling onto the provider quota and triggering retry storms.
	var ticket admission.Ticket
	if gate := s.gate; gate != nil {
		tk, admitErr := gate.Admit(time.Now(), spec.ID, req.N)
		if admitErr != nil {
			var shed *admission.ShedError
			if errors.As(admitErr, &shed) {
				writeShed(w, spec.Name, shed)
				return
			}
			writeErr(w, http.StatusInternalServerError, admitErr)
			return
		}
		ticket = tk
		// Batched routing under pressure: reuse the last good placement for
		// this function instead of re-running the strategy per request.
		if az, ok := gate.RouteFor(spec.ID, time.Now()); ok {
			if pinned, perr := router.Build(router.StrategySpec{Name: "baseline", AZ: az}); perr == nil {
				strat = pinned
			}
		}
	}
	var res router.BurstResult
	err = s.Exec(func(p *sim.Proc) error {
		got, err := s.rt.Run(p, router.BurstSpec{
			Strategy:   strat,
			Workload:   spec.ID,
			N:          req.N,
			Candidates: req.Candidates,
		})
		res = got
		return err
	})
	if gate := s.gate; gate != nil {
		// Release the slots and feed the observed service time back into the
		// Jindal-style capacity estimate.
		gate.Done(ticket, time.Now(), res.MeanRunMS(), err == nil && res.Completed > 0)
		if err == nil && res.AZ != "" {
			gate.RememberRoute(spec.ID, res.AZ, time.Now())
		}
	}
	if err != nil {
		writeErr(w, http.StatusBadGateway, err)
		return
	}
	perCPU := make(map[string]int, len(res.PerCPU))
	for k, n := range res.PerCPU {
		perCPU[k.String()] = n
	}
	writeJSON(w, http.StatusOK, burstJS{
		Strategy:  res.Strategy,
		Workload:  res.Workload.String(),
		AZ:        res.AZ,
		Completed: res.Completed,
		Attempts:  res.Attempts,
		Declined:  res.Declined,
		Failed:    res.Failed,
		RetryFrac: res.RetryFrac(),
		MeanRunMS: res.MeanRunMS(),
		CostUSD:   res.CostUSD,
		ElapsedMS: float64(res.Elapsed) / float64(time.Millisecond),
		PerCPU:    perCPU,
	})
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	type wlJS struct {
		Name        string  `json:"name"`
		VCPUs       float64 `json:"vcpus"`
		Description string  `json:"description"`
	}
	out := make([]wlJS, 0, 12)
	for _, spec := range workload.All() {
		out = append(out, wlJS{Name: spec.Name, VCPUs: spec.VCPUs, Description: spec.Description})
	}
	writeJSON(w, http.StatusOK, map[string]any{"workloads": out})
}
