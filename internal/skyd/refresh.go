package skyd

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"time"

	"skyfaas/internal/refresh"
	"skyfaas/internal/sim"
)

// Characterization-maintenance admin surface. GET /v1/refresh snapshots the
// maintainer (mode, budget, per-zone drift/urgency); POST /v1/refresh
// switches modes, retunes the budget, and/or forces an immediate zone
// refresh. Durations travel as milliseconds, times as RFC 3339, matching
// the fault surface.

type refreshZoneJS struct {
	AZ           string  `json:"az"`
	Known        bool    `json:"known"`
	Fresh        bool    `json:"fresh"`
	AgeMS        float64 `json:"ageMS"`
	DriftTV      float64 `json:"driftTV"`
	DriftChi2    float64 `json:"driftChi2"`
	DriftSamples int     `json:"driftSamples"`
	Confident    bool    `json:"confident"`
	TrafficShare float64 `json:"trafficShare"`
	Urgency      float64 `json:"urgency"`
	Due          bool    `json:"due"`
	Reason       string  `json:"reason,omitempty"`
	LastRefresh  string  `json:"lastRefresh,omitempty"`
}

type refreshStatusJS struct {
	Mode              string          `json:"mode"`
	Running           bool            `json:"running"`
	BudgetBalanceUSD  float64         `json:"budgetBalanceUSD"`
	BudgetRatePerHour float64         `json:"budgetRatePerHour"`
	BudgetCapUSD      float64         `json:"budgetCapUSD"`
	SpentUSD          float64         `json:"spentUSD"`
	Refreshes         int             `json:"refreshes"`
	Forced            int             `json:"forced"`
	SkippedBudget     int             `json:"skippedBudget"`
	SkippedCooldown   int             `json:"skippedCooldown"`
	Zones             []refreshZoneJS `json:"zones"`
}

func refreshStatus(st refresh.Status, running bool) refreshStatusJS {
	out := refreshStatusJS{
		Mode:              string(st.Mode),
		Running:           running,
		BudgetBalanceUSD:  st.BudgetBalance,
		BudgetRatePerHour: st.BudgetRate,
		BudgetCapUSD:      st.BudgetCap,
		SpentUSD:          st.SpentUSD,
		Refreshes:         st.Refreshes,
		Forced:            st.Forced,
		SkippedBudget:     st.SkippedBudget,
		SkippedCooldown:   st.SkippedCooldown,
		Zones:             []refreshZoneJS{},
	}
	for _, z := range st.Zones {
		js := refreshZoneJS{
			AZ:           z.AZ,
			Known:        z.Known,
			Fresh:        z.Fresh,
			AgeMS:        float64(z.Age) / float64(time.Millisecond),
			DriftTV:      z.Drift.TV,
			DriftChi2:    z.Drift.Chi2,
			DriftSamples: z.Drift.Samples,
			Confident:    z.Drift.Confident,
			TrafficShare: z.TrafficShare,
			Urgency:      z.Urgency,
			Due:          z.Due,
			Reason:       string(z.Reason),
		}
		if !z.LastRefresh.IsZero() {
			js.LastRefresh = z.LastRefresh.UTC().Format(time.RFC3339)
		}
		out.Zones = append(out.Zones, js)
	}
	return out
}

type refreshBudgetJS struct {
	RatePerHour float64 `json:"ratePerHour"`
	CapUSD      float64 `json:"capUSD"`
}

type refreshReq struct {
	// Mode switches the trigger policy (off | age | drift).
	Mode string `json:"mode,omitempty"`
	// Budget retunes the token-bucket governor.
	Budget *refreshBudgetJS `json:"budget,omitempty"`
	// AZ forces an immediate re-characterization of one zone, bypassing
	// mode and cooldown (still debited against the budget).
	AZ string `json:"az,omitempty"`
	// Polls overrides the forced refresh depth (0 = configured default).
	Polls int `json:"polls,omitempty"`
}

// errRefreshDisabled answers both endpoints when the server was built
// without a refresh configuration.
func errRefreshDisabled() *apiError {
	return apiErrf(http.StatusConflict, "refresh_disabled",
		"refresh maintenance not enabled (start skyd with a refresh config)")
}

func (s *Server) handleRefreshStatus(ctx context.Context, r *apiReq) (any, *apiError) {
	m := s.refresher
	if m == nil {
		return nil, errRefreshDisabled()
	}
	var st refresh.Status
	err := s.Exec(func(*sim.Proc) error {
		st = m.Snapshot()
		return nil
	})
	if err != nil {
		return nil, errFromExec(err)
	}
	return refreshStatus(st, m.Running()), nil
}

func (s *Server) handleRefreshControl(ctx context.Context, r *apiReq) (any, *apiError) {
	m := s.refresher
	if m == nil {
		return nil, errRefreshDisabled()
	}
	var req refreshReq
	if e := r.decode(&req); e != nil {
		return nil, e
	}
	if req.Mode == "" && req.Budget == nil && req.AZ == "" {
		return nil, apiErrf(http.StatusBadRequest, "bad_request",
			"provide at least one of mode, budget, az")
	}
	if req.Mode != "" && !refresh.ValidMode(refresh.Mode(req.Mode)) {
		names := make([]string, 0, 3)
		for _, k := range refresh.Modes() {
			names = append(names, string(k))
		}
		return nil, apiErrf(http.StatusBadRequest, "unknown_mode",
			"unknown mode %q (valid: %s)", req.Mode, strings.Join(names, ", "))
	}
	if req.Budget != nil && (req.Budget.RatePerHour < 0 || req.Budget.CapUSD <= 0) {
		return nil, apiErrf(http.StatusBadRequest, "bad_budget",
			"budget rate must be >= 0 and cap > 0")
	}
	var st refresh.Status
	err := s.Exec(func(p *sim.Proc) error {
		if req.Mode != "" {
			if err := m.SetMode(refresh.Mode(req.Mode)); err != nil {
				return err
			}
		}
		if req.Budget != nil {
			if err := m.RetuneBudget(req.Budget.RatePerHour, req.Budget.CapUSD); err != nil {
				return err
			}
		}
		if req.AZ != "" {
			if _, err := m.Force(p, req.AZ, req.Polls); err != nil {
				return fmt.Errorf("force refresh %s: %w", req.AZ, err)
			}
		}
		st = m.Snapshot()
		return nil
	})
	if err != nil {
		return nil, errFromExec(err)
	}
	return refreshStatus(st, m.Running()), nil
}
