package skyd

import (
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"skyfaas/internal/chaos"
	"skyfaas/internal/cloudsim"
	"skyfaas/internal/sim"
)

// Fault-injection admin surface. POST /v1/faults arms a single fault window
// or a canned scenario; GET /v1/faults lists every scheduled window with
// its lifecycle state. Durations travel as milliseconds to keep the JSON
// free of Go duration strings.

type faultJS struct {
	Kind       string  `json:"kind"`
	AZ         string  `json:"az"`
	StartMS    float64 `json:"startMS,omitempty"`
	DurationMS float64 `json:"durationMS"`
	Magnitude  float64 `json:"magnitude,omitempty"`
	ExtraRTTMS float64 `json:"extraRTTMS,omitempty"`
	Step       float64 `json:"step,omitempty"`
	EveryMS    float64 `json:"everyMS,omitempty"`
}

func (f faultJS) fault() chaos.Fault {
	ms := func(v float64) time.Duration { return time.Duration(v * float64(time.Millisecond)) }
	return chaos.Fault{
		Kind:      chaos.Kind(f.Kind),
		AZ:        f.AZ,
		Start:     ms(f.StartMS),
		Duration:  ms(f.DurationMS),
		Magnitude: f.Magnitude,
		ExtraRTT:  ms(f.ExtraRTTMS),
		Step:      f.Step,
		Every:     ms(f.EveryMS),
	}
}

type injectFaultsReq struct {
	// Scenario names a canned chaos scenario targeting AZ; exclusive
	// with Fault.
	Scenario string `json:"scenario"`
	AZ       string `json:"az"`
	// Fault arms one explicit window.
	Fault *faultJS `json:"fault"`
}

type faultStatusJS struct {
	ID        int     `json:"id"`
	Kind      string  `json:"kind"`
	AZ        string  `json:"az"`
	State     string  `json:"state"`
	StartAt   string  `json:"startAt"`
	EndAt     string  `json:"endAt"`
	Magnitude float64 `json:"magnitude,omitempty"`
}

func statusJS(st chaos.Status) faultStatusJS {
	return faultStatusJS{
		ID:        st.ID,
		Kind:      string(st.Fault.Kind),
		AZ:        st.Fault.AZ,
		State:     string(st.State),
		StartAt:   st.StartAt.UTC().Format(time.RFC3339),
		EndAt:     st.EndAt.UTC().Format(time.RFC3339),
		Magnitude: st.Fault.Magnitude,
	}
}

// badFault reports whether err is the caller's fault (a 400) rather than a
// runtime failure.
func badFault(err error) bool {
	return errors.Is(err, chaos.ErrUnknownKind) ||
		errors.Is(err, chaos.ErrBadFault) ||
		errors.Is(err, cloudsim.ErrNoSuchAZ)
}

func (s *Server) handleInjectFaults(w http.ResponseWriter, r *http.Request) {
	var req injectFaultsReq
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if (req.Scenario == "") == (req.Fault == nil) {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("provide exactly one of scenario or fault"))
		return
	}
	var sc chaos.Scenario
	if req.Scenario != "" {
		var ok bool
		sc, ok = chaos.ScenarioByName(req.Scenario, req.AZ)
		if !ok {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown scenario %q (valid: %s)",
				req.Scenario, strings.Join(chaos.ScenarioNames(), ", ")))
			return
		}
	} else {
		sc = chaos.Scenario{Name: "adhoc", Faults: []chaos.Fault{req.Fault.fault()}}
	}
	var ids []int
	err := s.Exec(func(*sim.Proc) error {
		got, err := s.rt.Chaos().InjectScenario(sc)
		ids = got
		return err
	})
	if err != nil {
		code := http.StatusBadGateway
		if badFault(err) {
			code = http.StatusBadRequest
		}
		writeErr(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ids": ids})
}

func (s *Server) handleListFaults(w http.ResponseWriter, r *http.Request) {
	var out []faultStatusJS
	err := s.Exec(func(*sim.Proc) error {
		for _, st := range s.rt.Chaos().Faults() {
			out = append(out, statusJS(st))
		}
		return nil
	})
	if err != nil {
		writeErr(w, http.StatusBadGateway, err)
		return
	}
	if out == nil {
		out = []faultStatusJS{}
	}
	writeJSON(w, http.StatusOK, out)
}
