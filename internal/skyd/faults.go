package skyd

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"time"

	"skyfaas/internal/chaos"
	"skyfaas/internal/cloudsim"
	"skyfaas/internal/sim"
)

// Fault-injection admin surface. POST /v1/faults arms a single fault window
// or a canned scenario; GET /v1/faults lists every scheduled window with
// its lifecycle state. Durations travel as milliseconds to keep the JSON
// free of Go duration strings.

type faultJS struct {
	Kind       string  `json:"kind"`
	AZ         string  `json:"az"`
	StartMS    float64 `json:"startMS,omitempty"`
	DurationMS float64 `json:"durationMS"`
	Magnitude  float64 `json:"magnitude,omitempty"`
	ExtraRTTMS float64 `json:"extraRTTMS,omitempty"`
	Step       float64 `json:"step,omitempty"`
	EveryMS    float64 `json:"everyMS,omitempty"`
}

func (f faultJS) fault() chaos.Fault {
	ms := func(v float64) time.Duration { return time.Duration(v * float64(time.Millisecond)) }
	return chaos.Fault{
		Kind:      chaos.Kind(f.Kind),
		AZ:        f.AZ,
		Start:     ms(f.StartMS),
		Duration:  ms(f.DurationMS),
		Magnitude: f.Magnitude,
		ExtraRTT:  ms(f.ExtraRTTMS),
		Step:      f.Step,
		Every:     ms(f.EveryMS),
	}
}

type injectFaultsReq struct {
	// Scenario names a canned chaos scenario targeting AZ; exclusive
	// with Fault.
	Scenario string `json:"scenario"`
	AZ       string `json:"az"`
	// Fault arms one explicit window.
	Fault *faultJS `json:"fault"`
}

type faultStatusJS struct {
	ID        int     `json:"id"`
	Kind      string  `json:"kind"`
	AZ        string  `json:"az"`
	State     string  `json:"state"`
	StartAt   string  `json:"startAt"`
	EndAt     string  `json:"endAt"`
	Magnitude float64 `json:"magnitude,omitempty"`
}

func statusJS(st chaos.Status) faultStatusJS {
	return faultStatusJS{
		ID:        st.ID,
		Kind:      string(st.Fault.Kind),
		AZ:        st.Fault.AZ,
		State:     string(st.State),
		StartAt:   st.StartAt.UTC().Format(time.RFC3339),
		EndAt:     st.EndAt.UTC().Format(time.RFC3339),
		Magnitude: st.Fault.Magnitude,
	}
}

// faultErr maps an injection failure onto the envelope: malformed faults
// are the caller's 400, an unknown zone the caller's 404, anything else an
// upstream failure.
func faultErr(err error) *apiError {
	switch {
	case errors.Is(err, chaos.ErrUnknownKind):
		return apiErrf(http.StatusBadRequest, "unknown_fault_kind", "%v", err)
	case errors.Is(err, chaos.ErrBadFault):
		return apiErrf(http.StatusBadRequest, "bad_fault", "%v", err)
	case errors.Is(err, cloudsim.ErrNoSuchAZ):
		return apiErrf(http.StatusNotFound, "unknown_az", "%v", err)
	default:
		return errFromExec(err)
	}
}

func (s *Server) handleInjectFaults(ctx context.Context, r *apiReq) (any, *apiError) {
	var req injectFaultsReq
	if e := r.decode(&req); e != nil {
		return nil, e
	}
	if (req.Scenario == "") == (req.Fault == nil) {
		return nil, apiErrf(http.StatusBadRequest, "bad_request",
			"provide exactly one of scenario or fault")
	}
	var sc chaos.Scenario
	if req.Scenario != "" {
		var ok bool
		sc, ok = chaos.ScenarioByName(req.Scenario, req.AZ)
		if !ok {
			return nil, apiErrf(http.StatusBadRequest, "unknown_scenario",
				"unknown scenario %q (valid: %s)", req.Scenario, strings.Join(chaos.ScenarioNames(), ", "))
		}
	} else {
		sc = chaos.Scenario{Name: "adhoc", Faults: []chaos.Fault{req.Fault.fault()}}
	}
	var ids []int
	err := s.Exec(func(*sim.Proc) error {
		got, err := s.rt.Chaos().InjectScenario(sc)
		ids = got
		return err
	})
	if err != nil {
		return nil, faultErr(err)
	}
	return map[string]any{"ids": ids}, nil
}

func (s *Server) handleListFaults(ctx context.Context, r *apiReq) (any, *apiError) {
	out := []faultStatusJS{}
	err := s.Exec(func(*sim.Proc) error {
		for _, st := range s.rt.Chaos().Faults() {
			out = append(out, statusJS(st))
		}
		return nil
	})
	if err != nil {
		return nil, errFromExec(err)
	}
	return out, nil
}
