// Package skyd is the sky middleware's control plane: an HTTP server over a
// live (real-time paced) sky runtime. It is what an operator deployment of
// the paper's system looks like — characterize zones, inspect the learned
// performance model, and route bursts, all over JSON.
//
// Concurrency model: the simulation kernel is single-threaded by design, so
// the server runs it on one dedicated goroutine and bridges HTTP handlers
// in through a command queue. A self-rescheduling pump event drains the
// queue every PumpEvery of virtual time and spawns each command as a
// cooperative process; handlers block on a reply channel. No handler ever
// touches the simulation directly.
package skyd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"skyfaas/internal/admission"
	"skyfaas/internal/core"
	"skyfaas/internal/metrics"
	"skyfaas/internal/refresh"
	"skyfaas/internal/sim"
	"skyfaas/internal/tenant"
	"skyfaas/internal/warmpool"
	"skyfaas/internal/workload"
)

// ErrClosed is returned for commands submitted after Close.
var ErrClosed = errors.New("skyd: server closed")

// Config assembles a Server.
type Config struct {
	// Runtime is the assembled sky runtime to serve (required).
	Runtime *core.Runtime
	// Speedup is the virtual-to-wall time ratio (default 1000: one
	// virtual second per wall millisecond).
	Speedup float64
	// PumpEvery is the virtual-time granularity of command injection
	// (default 100ms virtual; at the default speedup, 0.1ms wall).
	PumpEvery time.Duration
	// Metrics is the registry /metrics serves and HTTP instrumentation
	// reports into (default: the runtime's registry, so one scrape covers
	// the HTTP layer, the router, and the simulated cloud).
	Metrics *metrics.Registry
	// HealthTimeout bounds how long /healthz waits for the simulation
	// goroutine to answer before reporting the pump stalled (default 5s).
	HealthTimeout time.Duration
	// Refresh, when non-nil, enables the continuous characterization-
	// maintenance control loop on the runtime and starts it with the
	// server; /v1/refresh then inspects and steers it. Nil leaves the
	// endpoints answering 409 (unless the runtime already carries a
	// maintainer, which the server adopts and stops on Close).
	Refresh *refresh.Config
	// WarmPool, when non-nil, enables the predictive pre-warming control
	// loop on the runtime and starts it with the server; /v1/warmpool then
	// inspects and steers it. Nil leaves the endpoints answering 409
	// (unless the runtime already carries a maintainer, which the server
	// adopts and stops on Close).
	WarmPool *warmpool.Config
	// WarmPoolWorkload selects the workload whose admission service-time
	// estimate sizes the warm pools (default Sha1Hash, the catalog's
	// lightest request-shaped workload).
	WarmPoolWorkload workload.ID
	// Admission, when non-nil, enables the overload-control gate on the
	// runtime: burst requests past estimated capacity answer 429 with
	// Retry-After, and /v1/admission inspects and retunes the gate. Nil
	// leaves the endpoints answering 409 (unless the runtime already
	// carries a controller, which the server adopts).
	Admission *admission.Config
	// Tenants, when non-nil, turns authentication on: every /v1 endpoint
	// except /v1/healthz requires an API key resolving to a registered
	// tenant, per-tenant quota/budget governors run in front of the global
	// admission gate, and the /v1/tenants surface administers the registry.
	// Nil is auth-off mode — the full surface stays open and untenanted,
	// preserving zero-config behavior.
	Tenants *tenant.Registry
}

// Server bridges HTTP onto a paced simulation.
type Server struct {
	rt            *core.Runtime
	speedup       float64
	pumpEvery     time.Duration
	metrics       *metrics.Registry
	queueDepth    *metrics.Gauge
	healthTimeout time.Duration

	// refresher is the maintenance loop the server owns the lifecycle of
	// (nil when refresh is disabled); Close must stop it or its
	// self-rescheduling tick would keep the event queue alive forever.
	refresher *refresh.Maintainer

	// warmer is the pre-warming loop (nil when warm pooling is disabled);
	// like the refresher it self-reschedules, so Close must stop it.
	warmer *warmpool.Maintainer

	// gate is the overload-control layer in the burst path (nil when
	// admission is disabled). It needs no lifecycle management: it holds no
	// events, only mutex-guarded state.
	gate *admission.Controller

	// tenants is the account registry (nil in auth-off mode). Like the
	// gate it is mutex-guarded state with no lifecycle of its own.
	tenants *tenant.Registry

	mux  *http.ServeMux
	cmds chan func(p *sim.Proc)

	mu sync.Mutex
	// closed records that Close began; guarded by mu.
	closed bool
	stop   chan struct{}
	done   chan struct{}
}

// New builds and starts a server (the simulation goroutine begins
// immediately; call Close to stop it).
func New(cfg Config) (*Server, error) {
	if cfg.Runtime == nil {
		return nil, fmt.Errorf("skyd: nil runtime")
	}
	if cfg.Speedup == 0 {
		cfg.Speedup = 1000
	}
	if cfg.PumpEvery == 0 {
		cfg.PumpEvery = 100 * time.Millisecond
	}
	if cfg.Metrics == nil {
		cfg.Metrics = cfg.Runtime.Metrics()
	}
	if cfg.HealthTimeout == 0 {
		cfg.HealthTimeout = 5 * time.Second
	}
	s := &Server{
		rt:            cfg.Runtime,
		speedup:       cfg.Speedup,
		pumpEvery:     cfg.PumpEvery,
		metrics:       cfg.Metrics,
		healthTimeout: cfg.HealthTimeout,
		mux:           http.NewServeMux(),
		cmds:          make(chan func(p *sim.Proc), 64),
		stop:          make(chan struct{}),
		done:          make(chan struct{}),
		tenants:       cfg.Tenants,
	}
	s.queueDepth = s.metrics.Gauge("sky_skyd_cmd_queue_depth",
		"commands enqueued for the simulation goroutine but not yet started")
	// Arm the maintenance loop before the simulation goroutine starts: the
	// environment is not yet running, so scheduling its first tick here is
	// single-threaded and safe.
	if cfg.Refresh != nil {
		m, err := cfg.Runtime.EnableRefresh(*cfg.Refresh)
		if err != nil {
			return nil, err
		}
		m.Start()
		s.refresher = m
	} else if m := cfg.Runtime.Refresher(); m != nil {
		// Adopt an externally enabled maintainer so Close can stop its tick.
		s.refresher = m
	}
	if cfg.WarmPool != nil {
		w := cfg.WarmPoolWorkload
		if w == 0 {
			w = workload.Sha1Hash
		}
		m, err := cfg.Runtime.EnableWarmPool(*cfg.WarmPool, w)
		if err != nil {
			return nil, err
		}
		m.Start()
		s.warmer = m
	} else if m := cfg.Runtime.WarmPool(); m != nil {
		// Adopt an externally enabled maintainer so Close can stop its tick.
		s.warmer = m
	}
	if cfg.Admission != nil {
		gate, err := cfg.Runtime.EnableAdmission(*cfg.Admission)
		if err != nil {
			return nil, err
		}
		s.gate = gate
	} else if gate := cfg.Runtime.Admission(); gate != nil {
		// Adopt an externally enabled controller.
		s.gate = gate
	}
	s.routes()
	go s.loop()
	return s, nil
}

// loop owns the simulation: it pumps queued commands into the environment
// and paces virtual time against the wall clock.
func (s *Server) loop() {
	defer close(s.done)
	env := s.rt.Env()
	var pump func()
	pump = func() {
		select {
		case <-s.stop:
			// Do not reschedule: outstanding work drains, then Run ends.
			return
		default:
		}
		for {
			select {
			case fn := <-s.cmds:
				s.queueDepth.Dec()
				fn2 := fn
				env.Go("skyd-cmd", func(p *sim.Proc) error {
					fn2(p)
					return nil
				})
				continue
			default:
			}
			break
		}
		env.Schedule(s.pumpEvery, pump)
	}
	env.Schedule(0, pump)
	// The pacing error is unreachable for positive speedups; a failure
	// inside the model surfaces through the pending command replies.
	_ = env.RunPaced(s.speedup)
}

// Exec runs fn as a simulation process and blocks until it finishes.
func (s *Server) Exec(fn func(p *sim.Proc) error) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.mu.Unlock()
	reply := make(chan error, 1)
	// Inc before the send so the pump's matching Dec can never land first
	// and leave the gauge transiently negative.
	s.queueDepth.Inc()
	select {
	case s.cmds <- func(p *sim.Proc) {
		reply <- fn(p)
	}:
	case <-s.done:
		s.queueDepth.Dec()
		return ErrClosed
	}
	select {
	case err := <-reply:
		return err
	case <-s.done:
		return ErrClosed
	}
}

// Close stops accepting commands, lets in-flight work drain, and waits for
// the simulation goroutine to exit.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return
	}
	s.closed = true
	// Stop the maintenance tick first (atomic flag, safe cross-thread):
	// RunPaced only returns once the event queue drains, and a live
	// self-rescheduling tick would keep it full forever.
	if s.refresher != nil {
		s.refresher.Stop()
	}
	if s.warmer != nil {
		s.warmer.Stop()
	}
	close(s.stop)
	// Drop the real-time pacing for the remaining queue: the cloud
	// pre-schedules its whole drift timeline (HorizonDays of events), which
	// at production speedups would otherwise pace out for hours before
	// RunPaced drains. Outstanding work still runs to completion, just at
	// full speed.
	s.rt.Env().FinishFast()
	s.mu.Unlock()
	<-s.done
}

// Runtime exposes the underlying runtime (read-only use outside Exec).
func (s *Server) Runtime() *core.Runtime { return s.rt }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// ---------------------------------------------------------------------------
// HTTP plumbing

// httpBuckets extends the default layout downward: handlers answering from
// warm state finish in well under a millisecond of wall time.
var httpBuckets = []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
