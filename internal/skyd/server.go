// Package skyd is the sky middleware's control plane: an HTTP server over a
// live (real-time paced) sky runtime. It is what an operator deployment of
// the paper's system looks like — characterize zones, inspect the learned
// performance model, and route bursts, all over JSON.
//
// Concurrency model: the simulation kernel is single-threaded by design, so
// the server runs it on one dedicated goroutine and bridges HTTP handlers
// in through a command queue. A self-rescheduling pump event drains the
// queue every PumpEvery of virtual time and spawns each command as a
// cooperative process; handlers block on a reply channel. No handler ever
// touches the simulation directly.
package skyd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"skyfaas/internal/core"
	"skyfaas/internal/sim"
)

// ErrClosed is returned for commands submitted after Close.
var ErrClosed = errors.New("skyd: server closed")

// Config assembles a Server.
type Config struct {
	// Runtime is the assembled sky runtime to serve (required).
	Runtime *core.Runtime
	// Speedup is the virtual-to-wall time ratio (default 1000: one
	// virtual second per wall millisecond).
	Speedup float64
	// PumpEvery is the virtual-time granularity of command injection
	// (default 100ms virtual; at the default speedup, 0.1ms wall).
	PumpEvery time.Duration
}

// Server bridges HTTP onto a paced simulation.
type Server struct {
	rt        *core.Runtime
	speedup   float64
	pumpEvery time.Duration

	mux  *http.ServeMux
	cmds chan func(p *sim.Proc)

	mu     sync.Mutex
	closed bool
	stop   chan struct{}
	done   chan struct{}
}

// New builds and starts a server (the simulation goroutine begins
// immediately; call Close to stop it).
func New(cfg Config) (*Server, error) {
	if cfg.Runtime == nil {
		return nil, fmt.Errorf("skyd: nil runtime")
	}
	if cfg.Speedup == 0 {
		cfg.Speedup = 1000
	}
	if cfg.PumpEvery == 0 {
		cfg.PumpEvery = 100 * time.Millisecond
	}
	s := &Server{
		rt:        cfg.Runtime,
		speedup:   cfg.Speedup,
		pumpEvery: cfg.PumpEvery,
		mux:       http.NewServeMux(),
		cmds:      make(chan func(p *sim.Proc), 64),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	s.routes()
	go s.loop()
	return s, nil
}

// loop owns the simulation: it pumps queued commands into the environment
// and paces virtual time against the wall clock.
func (s *Server) loop() {
	defer close(s.done)
	env := s.rt.Env()
	var pump func()
	pump = func() {
		select {
		case <-s.stop:
			// Do not reschedule: outstanding work drains, then Run ends.
			return
		default:
		}
		for {
			select {
			case fn := <-s.cmds:
				fn2 := fn
				env.Go("skyd-cmd", func(p *sim.Proc) error {
					fn2(p)
					return nil
				})
				continue
			default:
			}
			break
		}
		env.Schedule(s.pumpEvery, pump)
	}
	env.Schedule(0, pump)
	// The pacing error is unreachable for positive speedups; a failure
	// inside the model surfaces through the pending command replies.
	_ = env.RunPaced(s.speedup)
}

// Exec runs fn as a simulation process and blocks until it finishes.
func (s *Server) Exec(fn func(p *sim.Proc) error) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.mu.Unlock()
	reply := make(chan error, 1)
	select {
	case s.cmds <- func(p *sim.Proc) {
		reply <- fn(p)
	}:
	case <-s.done:
		return ErrClosed
	}
	select {
	case err := <-reply:
		return err
	case <-s.done:
		return ErrClosed
	}
}

// Close stops accepting commands, lets in-flight work drain, and waits for
// the simulation goroutine to exit.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return
	}
	s.closed = true
	close(s.stop)
	s.mu.Unlock()
	<-s.done
}

// Runtime exposes the underlying runtime (read-only use outside Exec).
func (s *Server) Runtime() *core.Runtime { return s.rt }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// ---------------------------------------------------------------------------
// HTTP plumbing

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, apiError{Error: err.Error()})
}

func readJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}
