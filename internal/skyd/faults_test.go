package skyd

import (
	"encoding/json"
	"net/http"
	"testing"
)

func TestInjectSingleFault(t *testing.T) {
	s := newTestServer(t)
	res, body := do(t, s, "POST", "/v1/faults", map[string]any{
		"fault": map[string]any{
			"kind": "throttle-storm", "az": "t1-slow",
			"durationMS": 60000, "magnitude": 0.5,
		},
	})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", res.StatusCode, body)
	}
	var out struct {
		IDs []int `json:"ids"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.IDs) != 1 {
		t.Fatalf("ids = %v", out.IDs)
	}

	res, body = do(t, s, "GET", "/v1/faults", nil)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("list status %d", res.StatusCode)
	}
	var list []struct {
		ID        int     `json:"id"`
		Kind      string  `json:"kind"`
		AZ        string  `json:"az"`
		State     string  `json:"state"`
		Magnitude float64 `json:"magnitude"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Kind != "throttle-storm" ||
		list[0].AZ != "t1-slow" || list[0].Magnitude != 0.5 {
		t.Fatalf("list = %+v", list)
	}
}

func TestInjectScenario(t *testing.T) {
	s := newTestServer(t)
	res, body := do(t, s, "POST", "/v1/faults", map[string]any{
		"scenario": "degraded", "az": "t1-fast",
	})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", res.StatusCode, body)
	}
	var out struct {
		IDs []int `json:"ids"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.IDs) != 3 {
		t.Fatalf("degraded armed %d faults", len(out.IDs))
	}
}

func TestInjectFaultValidation(t *testing.T) {
	s := newTestServer(t)
	cases := []struct {
		name   string
		body   map[string]any
		status int
		code   string
	}{
		{"neither scenario nor fault", map[string]any{},
			http.StatusBadRequest, "bad_request"},
		{"both scenario and fault", map[string]any{
			"scenario": "degraded", "az": "t1-fast",
			"fault": map[string]any{"kind": "outage", "az": "t1-fast", "durationMS": 1000},
		}, http.StatusBadRequest, "bad_request"},
		{"unknown scenario", map[string]any{"scenario": "volcano", "az": "t1-fast"},
			http.StatusBadRequest, "unknown_scenario"},
		{"unknown kind", map[string]any{
			"fault": map[string]any{"kind": "meteor", "az": "t1-fast", "durationMS": 1000},
		}, http.StatusBadRequest, "unknown_fault_kind"},
		{"missing duration", map[string]any{
			"fault": map[string]any{"kind": "outage", "az": "t1-fast"},
		}, http.StatusBadRequest, "bad_fault"},
		// An unknown zone is an addressing error, distinct from a malformed
		// fault.
		{"ghost az", map[string]any{
			"fault": map[string]any{"kind": "outage", "az": "ghost", "durationMS": 1000},
		}, http.StatusNotFound, "unknown_az"},
	}
	for _, tc := range cases {
		res, body := do(t, s, "POST", "/v1/faults", tc.body)
		wantErr(t, res, body, tc.status, tc.code)
	}
	// Nothing armed by the rejected requests.
	res, body := do(t, s, "GET", "/v1/faults", nil)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("list status %d", res.StatusCode)
	}
	var list []json.RawMessage
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 0 {
		t.Fatalf("rejected requests armed %d faults", len(list))
	}
}

// TestBurstDegradesUnderInjectedStorm drives the full admin path: arm a
// storm over HTTP, then run a baseline burst into the stormed zone and
// watch it fail attempts, while a resilient strategy is free to leave.
func TestBurstDegradesUnderInjectedStorm(t *testing.T) {
	s := newTestServer(t)
	// The test server races virtual time at 5e6x wall speed between
	// requests (a 100 ms wall gap is ~6 virtual days), so the window must
	// span months of virtual time — but not more, because Close drains the
	// window-end event at the same pacing.
	res, body := do(t, s, "POST", "/v1/faults", map[string]any{
		"fault": map[string]any{
			"kind": "throttle-storm", "az": "t1-slow",
			"durationMS": 1.5e10, "magnitude": 0.6,
		},
	})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("inject status %d: %s", res.StatusCode, body)
	}
	res, body = do(t, s, "POST", "/v1/burst", map[string]any{
		"strategy": "baseline", "az": "t1-slow", "workload": "math_service", "n": 50,
		"candidates": []string{"t1-slow"},
	})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("burst status %d: %s", res.StatusCode, body)
	}
	var burst struct {
		Completed int `json:"completed"`
		Failed    int `json:"failed"`
	}
	if err := json.Unmarshal(body, &burst); err != nil {
		t.Fatal(err)
	}
	if burst.Failed == 0 {
		t.Fatalf("storm caused no failed attempts: %+v", burst)
	}
}
