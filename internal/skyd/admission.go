package skyd

import (
	"fmt"
	"math"
	"net/http"
	"strconv"

	"skyfaas/internal/admission"
)

// Overload-control admin surface. GET /v1/admission snapshots the gate
// (slots, utilization, per-function capacity estimates); POST /v1/admission
// retunes it (enable/disable, slots, utilization targets). Shedding itself
// happens in the burst path: over-capacity requests answer 429 with a
// Retry-After header and a typed JSON body (shedJS).

// shedJS is the 429 body an admission rejection produces.
type shedJS struct {
	Error        string  `json:"error"`
	Shed         bool    `json:"shed"` // discriminates from other error bodies
	Workload     string  `json:"workload"`
	RetryAfterMS float64 `json:"retryAfterMS"`
	Inflight     int     `json:"inflight"`
	Limit        int     `json:"limit"`
	Utilization  float64 `json:"utilization"`
}

// writeShed answers a *ShedError as HTTP 429 with Retry-After (whole
// seconds, rounded up, per RFC 9110) and the typed JSON body.
func writeShed(w http.ResponseWriter, fn string, shed *admission.ShedError) {
	secs := int(math.Ceil(shed.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, http.StatusTooManyRequests, shedJS{
		Error:        shed.Error(),
		Shed:         true,
		Workload:     fn,
		RetryAfterMS: float64(shed.RetryAfter.Milliseconds()),
		Inflight:     shed.Inflight,
		Limit:        shed.Limit,
		Utilization:  shed.Utilization,
	})
}

// errAdmissionDisabled answers both endpoints when the server was built
// without an admission configuration.
var errAdmissionDisabled = fmt.Errorf("admission control not enabled (start skyd with an admission config)")

func (s *Server) handleAdmissionStatus(w http.ResponseWriter, r *http.Request) {
	gate := s.gate
	if gate == nil {
		writeErr(w, http.StatusConflict, errAdmissionDisabled)
		return
	}
	// The controller is mutex-guarded, not simulation state: snapshot
	// directly, no command round-trip.
	writeJSON(w, http.StatusOK, gate.Snapshot())
}

func (s *Server) handleAdmissionControl(w http.ResponseWriter, r *http.Request) {
	gate := s.gate
	if gate == nil {
		writeErr(w, http.StatusConflict, errAdmissionDisabled)
		return
	}
	var req admission.Retune
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Enabled == nil && req.Slots == 0 && req.TargetUtil == 0 &&
		req.PressureUtil == 0 && req.EWMAAlpha == 0 {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("provide at least one of enabled, slots, targetUtil, pressureUtil, ewmaAlpha"))
		return
	}
	if err := gate.Apply(req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, gate.Snapshot())
}
