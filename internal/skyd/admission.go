package skyd

import (
	"context"
	"net/http"

	"skyfaas/internal/admission"
)

// Overload-control admin surface. GET /v1/admission snapshots the gate
// (slots, utilization, per-function capacity estimates); POST /v1/admission
// retunes it (enable/disable, slots, utilization targets). Shedding itself
// happens in the burst path: over-capacity requests answer 429 with a
// Retry-After header and the documented error envelope, code "overloaded".

// shedDetailJS is the detail payload of an admission-shed envelope.
type shedDetailJS struct {
	Workload     string  `json:"workload"`
	RetryAfterMS float64 `json:"retryAfterMS"`
	Inflight     int     `json:"inflight"`
	Limit        int     `json:"limit"`
	Utilization  float64 `json:"utilization"`
}

// shedToAPIError converts a global-gate rejection into the envelope: 429,
// code "overloaded", Retry-After header and retryAfterMS from the
// controller's hint, detail carrying the gate telemetry.
func shedToAPIError(fn string, shed *admission.ShedError) *apiError {
	e := apiErrf(http.StatusTooManyRequests, "overloaded", "%v", shed)
	e.retryAfter = shed.RetryAfter
	e.detail = shedDetailJS{
		Workload:     fn,
		RetryAfterMS: float64(shed.RetryAfter.Milliseconds()),
		Inflight:     shed.Inflight,
		Limit:        shed.Limit,
		Utilization:  shed.Utilization,
	}
	return e
}

// errAdmissionDisabled answers both endpoints when the server was built
// without an admission configuration.
func errAdmissionDisabled() *apiError {
	return apiErrf(http.StatusConflict, "admission_disabled",
		"admission control not enabled (start skyd with an admission config)")
}

func (s *Server) handleAdmissionStatus(ctx context.Context, r *apiReq) (any, *apiError) {
	gate := s.gate
	if gate == nil {
		return nil, errAdmissionDisabled()
	}
	// The controller is mutex-guarded, not simulation state: snapshot
	// directly, no command round-trip.
	return gate.Snapshot(), nil
}

func (s *Server) handleAdmissionControl(ctx context.Context, r *apiReq) (any, *apiError) {
	gate := s.gate
	if gate == nil {
		return nil, errAdmissionDisabled()
	}
	var req admission.Retune
	if e := r.decode(&req); e != nil {
		return nil, e
	}
	if req.Enabled == nil && req.Slots == 0 && req.TargetUtil == 0 &&
		req.PressureUtil == 0 && req.EWMAAlpha == 0 {
		return nil, apiErrf(http.StatusBadRequest, "bad_request",
			"provide at least one of enabled, slots, targetUtil, pressureUtil, ewmaAlpha")
	}
	if err := gate.Apply(req); err != nil {
		return nil, apiErrf(http.StatusBadRequest, "bad_retune", "%v", err)
	}
	return gate.Snapshot(), nil
}
