package skyd

import (
	"context"
	"errors"
	"net/http"
	"time"

	"skyfaas/internal/tenant"
)

// Tenant admin surface. POST/GET /v1/tenants and DELETE /v1/tenants/{id}
// are the operator CRUD over the account registry;
// GET /v1/tenants/{id}/usage serves the billing/load rollup (a tenant may
// read its own, operators may read anyone's). The registry is
// mutex-guarded, not simulation state, so none of these round-trip through
// the command queue.

// errTenantsDisabled answers the whole surface when the server runs
// auth-off (no registry configured).
func errTenantsDisabled() *apiError {
	return apiErrf(http.StatusConflict, "tenants_disabled",
		"tenant registry not enabled (start skyd with -tenants)")
}

// tenantJS is the public view of an account: keys are write-only and never
// echoed back.
type tenantJS struct {
	ID            string  `json:"id"`
	Name          string  `json:"name"`
	Admin         bool    `json:"admin"`
	NumKeys       int     `json:"numKeys"`
	QuotaSlots    int     `json:"quotaSlots"`
	BudgetPerHour float64 `json:"budgetPerHourUSD"`
	BudgetCap     float64 `json:"budgetCapUSD"`
}

func tenantToJS(t tenant.Tenant) tenantJS {
	return tenantJS{
		ID:            t.ID,
		Name:          t.Name,
		Admin:         t.Admin,
		NumKeys:       len(t.Keys),
		QuotaSlots:    t.QuotaSlots,
		BudgetPerHour: t.BudgetPerHour,
		BudgetCap:     t.BudgetCap,
	}
}

func (s *Server) handleListTenants(ctx context.Context, r *apiReq) (any, *apiError) {
	if s.tenants == nil {
		return nil, errTenantsDisabled()
	}
	out := make([]tenantJS, 0, s.tenants.Len())
	for _, t := range s.tenants.List() {
		out = append(out, tenantToJS(t))
	}
	return map[string]any{"tenants": out}, nil
}

func (s *Server) handleCreateTenant(ctx context.Context, r *apiReq) (any, *apiError) {
	if s.tenants == nil {
		return nil, errTenantsDisabled()
	}
	var req tenant.Tenant
	if e := r.decode(&req); e != nil {
		return nil, e
	}
	switch err := s.tenants.Create(req, time.Now()); {
	case err == nil:
		return tenantToJS(req), nil
	case errors.Is(err, tenant.ErrExists):
		return nil, apiErrf(http.StatusConflict, "tenant_exists", "%v", err)
	case errors.Is(err, tenant.ErrDuplicateKey):
		return nil, apiErrf(http.StatusConflict, "duplicate_key", "%v", err)
	default:
		return nil, apiErrf(http.StatusBadRequest, "bad_tenant", "%v", err)
	}
}

func (s *Server) handleDeleteTenant(ctx context.Context, r *apiReq) (any, *apiError) {
	if s.tenants == nil {
		return nil, errTenantsDisabled()
	}
	id := r.http.PathValue("id")
	if !s.tenants.Delete(id) {
		return nil, apiErrf(http.StatusNotFound, "unknown_tenant", "no tenant %q", id)
	}
	return map[string]any{"deleted": id}, nil
}

func (s *Server) handleTenantUsage(ctx context.Context, r *apiReq) (any, *apiError) {
	if s.tenants == nil {
		return nil, errTenantsDisabled()
	}
	id := r.http.PathValue("id")
	// Self-or-admin: a tenant's spend and shed history is its own business.
	if r.acct != nil && !r.acct.Admin && r.acct.ID != id {
		return nil, apiErrf(http.StatusForbidden, "forbidden",
			"tenant %q may not read %q's usage", r.acct.ID, id)
	}
	u, ok := s.tenants.Usage(id, time.Now())
	if !ok {
		return nil, apiErrf(http.StatusNotFound, "unknown_tenant", "no tenant %q", id)
	}
	if s.warmer != nil {
		// Warm-pool provisioning is platform spend billed to the operator
		// account; surface it on the rollup so tenants see what the sky
		// pays to keep their cold starts down. The meter is mutex-guarded,
		// so this read needs no Exec round trip.
		u.WarmPoolUSD = s.rt.Cloud().WarmPoolSpend(s.rt.Client().Account())
	}
	return u, nil
}
