package skyd

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"skyfaas/internal/cloudsim"
	"skyfaas/internal/core"
	"skyfaas/internal/cpu"
	"skyfaas/internal/geo"
	"skyfaas/internal/metrics"
	"skyfaas/internal/sampler"
)

// newMetricsServer is newTestServer with an isolated registry, so
// assertions cannot see series written by other tests sharing the
// process-default registry.
func newMetricsServer(t *testing.T) (*Server, *metrics.Registry) {
	t.Helper()
	reg := metrics.NewRegistry()
	rt, err := core.New(core.Config{
		Seed:    9,
		Metrics: reg,
		Catalog: []cloudsim.RegionSpec{{
			Provider: cloudsim.AWS, Name: "t1", Loc: geo.Coord{Lat: 40, Lon: -80},
			AZs: []cloudsim.AZSpec{
				{Name: "t1-slow", PoolFIs: 2048,
					Mix: map[cpu.Kind]float64{cpu.Xeon25: 0.5, cpu.EPYC: 0.5}},
				{Name: "t1-fast", PoolFIs: 2048,
					Mix: map[cpu.Kind]float64{cpu.Xeon30: 0.6, cpu.Xeon25: 0.4}},
			},
		}},
		SamplerCfg: sampler.Config{
			Endpoints: 30, PollSize: 84, Branch: 4,
			Sleep: 100 * time.Millisecond, InterPollPause: 500 * time.Millisecond,
		},
		SkipMesh: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Runtime: rt, Speedup: 5e6})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, reg
}

// TestMetricsExposition drives traffic through all three instrumented
// layers and checks one scrape sees a router counter, a cloudsim counter,
// and a skyd latency histogram — the PR's acceptance criterion.
func TestMetricsExposition(t *testing.T) {
	s, _ := newMetricsServer(t)
	for _, az := range []string{"t1-slow", "t1-fast"} {
		if res, body := do(t, s, "POST", "/v1/characterize", map[string]any{"az": az, "polls": 3}); res.StatusCode != http.StatusOK {
			t.Fatalf("characterize %s: %d %s", az, res.StatusCode, body)
		}
	}
	if res, body := do(t, s, "POST", "/v1/profile", map[string]any{
		"workload": "math_service", "zones": []string{"t1-slow", "t1-fast"}, "runs": 200,
	}); res.StatusCode != http.StatusOK {
		t.Fatalf("profile: %d %s", res.StatusCode, body)
	}
	if res, body := do(t, s, "POST", "/v1/burst", map[string]any{
		"strategy": "hybrid", "workload": "math_service", "n": 50,
		"candidates": []string{"t1-slow", "t1-fast"},
	}); res.StatusCode != http.StatusOK {
		t.Fatalf("burst: %d %s", res.StatusCode, body)
	}

	res, body := do(t, s, "GET", "/metrics", nil)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	out := string(body)
	for _, want := range []string{
		`sky_router_bursts_total{strategy="hybrid"} 1`,
		`sky_cloudsim_invocations_total{az="`,
		`sky_skyd_http_request_ms_bucket{path="/v1/burst",le="+Inf"} 1`,
		`sky_skyd_http_requests_total{code="200",path="/v1/burst"} 1`,
		"# TYPE sky_cloudsim_billed_ms histogram",
		"# TYPE sky_skyd_cmd_queue_depth gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("scrape:\n%s", out)
	}
}

func TestMetricsJSON(t *testing.T) {
	s, _ := newMetricsServer(t)
	if res, _ := do(t, s, "GET", "/v1/zones", nil); res.StatusCode != http.StatusOK {
		t.Fatal("zones request failed")
	}
	res, body := do(t, s, "GET", "/metrics.json", nil)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/metrics.json status %d", res.StatusCode)
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	found := false
	for _, fam := range snap.Metrics {
		if fam.Name == "sky_skyd_http_requests_total" {
			found = true
		}
	}
	if !found {
		t.Fatalf("snapshot missing request counter: %s", body)
	}
}

// TestHealthzLifecycle is the PR's health acceptance criterion: 200 while
// the pump is live, non-200 after Close.
func TestHealthzLifecycle(t *testing.T) {
	s, _ := newMetricsServer(t)
	res, body := do(t, s, "GET", "/healthz", nil)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("live /healthz = %d: %s", res.StatusCode, body)
	}
	var health struct {
		Status      string    `json:"status"`
		VirtualTime time.Time `json:"virtualTime"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.VirtualTime.IsZero() {
		t.Fatalf("health = %s", body)
	}

	s.Close()
	res, body = do(t, s, "GET", "/healthz", nil)
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("closed /healthz = %d: %s", res.StatusCode, body)
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "down" {
		t.Fatalf("closed health = %s", body)
	}
}

// TestQueueDepthGaugeSettles checks the enqueue/dequeue accounting returns
// to zero once in-flight commands drain.
func TestQueueDepthGaugeSettles(t *testing.T) {
	s, reg := newMetricsServer(t)
	for i := 0; i < 5; i++ {
		if res, _ := do(t, s, "GET", "/v1/healthz", nil); res.StatusCode != http.StatusOK {
			t.Fatal("healthz failed")
		}
	}
	depth := reg.Gauge("sky_skyd_cmd_queue_depth", "").Value()
	if depth != 0 {
		t.Fatalf("queue depth after quiescence = %v, want 0", depth)
	}
}
