package skyd

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"skyfaas/internal/cloudsim"
	"skyfaas/internal/core"
	"skyfaas/internal/cpu"
	"skyfaas/internal/geo"
	"skyfaas/internal/refresh"
	"skyfaas/internal/sampler"
)

// newRefreshServer builds the two-zone test server with the maintenance
// loop enabled in the given mode.
func newRefreshServer(t *testing.T, mode refresh.Mode) *Server {
	t.Helper()
	rt, err := core.New(core.Config{
		Seed: 9,
		Catalog: []cloudsim.RegionSpec{{
			Provider: cloudsim.AWS, Name: "t1", Loc: geo.Coord{Lat: 40, Lon: -80},
			AZs: []cloudsim.AZSpec{
				{Name: "t1-slow", PoolFIs: 2048,
					Mix: map[cpu.Kind]float64{cpu.Xeon25: 0.5, cpu.EPYC: 0.5}},
				{Name: "t1-fast", PoolFIs: 2048,
					Mix: map[cpu.Kind]float64{cpu.Xeon30: 0.6, cpu.Xeon25: 0.4}},
			},
		}},
		SamplerCfg: sampler.Config{
			Endpoints: 30, PollSize: 84, Branch: 4,
			Sleep: 100 * time.Millisecond, InterPollPause: 500 * time.Millisecond,
		},
		SkipMesh: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.EnablePassiveCharacterization(time.Hour)
	s, err := New(Config{
		Runtime: rt,
		Speedup: 5e6,
		Refresh: &refresh.Config{
			Zones: []string{"t1-slow", "t1-fast"},
			Mode:  mode,
			Polls: 2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestRefreshDisabledAnswers409(t *testing.T) {
	s := newTestServer(t)
	res, body := do(t, s, "GET", "/v1/refresh", nil)
	wantErr(t, res, body, http.StatusConflict, "refresh_disabled")
	res, body = do(t, s, "POST", "/v1/refresh", map[string]any{"mode": "age"})
	wantErr(t, res, body, http.StatusConflict, "refresh_disabled")
}

func TestRefreshStatusAndControl(t *testing.T) {
	s := newRefreshServer(t, refresh.ModeOff)

	res, body := do(t, s, "GET", "/v1/refresh", nil)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET status = %d: %s", res.StatusCode, body)
	}
	var st refreshStatusJS
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Mode != "off" || !st.Running || len(st.Zones) != 2 {
		t.Fatalf("status = %+v, want running off-mode loop over 2 zones", st)
	}

	// Force one zone: it must become known and the spend must register.
	res, body = do(t, s, "POST", "/v1/refresh", map[string]any{"az": "t1-fast", "polls": 2})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("force status = %d: %s", res.StatusCode, body)
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Refreshes != 1 || st.Forced != 1 || st.SpentUSD <= 0 {
		t.Fatalf("after force: %+v, want refreshes=1 forced=1 spend>0", st)
	}
	known := map[string]bool{}
	for _, z := range st.Zones {
		known[z.AZ] = z.Known
	}
	if !known["t1-fast"] || known["t1-slow"] {
		t.Fatalf("zones after force = %+v, want only t1-fast known", st.Zones)
	}

	// Switch mode and retune the budget in one call.
	res, body = do(t, s, "POST", "/v1/refresh", map[string]any{
		"mode":   "drift",
		"budget": map[string]any{"ratePerHour": 2.5, "capUSD": 0.75},
	})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("control status = %d: %s", res.StatusCode, body)
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Mode != "drift" || st.BudgetRatePerHour != 2.5 || st.BudgetCapUSD != 0.75 {
		t.Fatalf("after retune: %+v, want drift mode with 2.5/h cap 0.75", st)
	}
}

func TestRefreshControlValidation(t *testing.T) {
	s := newRefreshServer(t, refresh.ModeOff)
	res, body := do(t, s, "POST", "/v1/refresh", map[string]any{})
	wantErr(t, res, body, http.StatusBadRequest, "bad_request")
	res, body = do(t, s, "POST", "/v1/refresh", map[string]any{"mode": "sometimes"})
	wantErr(t, res, body, http.StatusBadRequest, "unknown_mode")
	res, body = do(t, s, "POST", "/v1/refresh", map[string]any{"budget": map[string]any{"ratePerHour": 1.0}})
	wantErr(t, res, body, http.StatusBadRequest, "bad_budget")
}

// TestRefreshLoopCloseRaces arms an age-mode loop that is actively ticking
// and immediately closes the server: Close must stop the tick and return
// (run with -race; this is the cross-thread Stop path).
func TestRefreshLoopCloseRaces(t *testing.T) {
	s := newRefreshServer(t, refresh.ModeAge)
	res, _ := do(t, s, "GET", "/v1/refresh", nil)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET status = %d", res.StatusCode)
	}
	done := make(chan struct{})
	go func() {
		s.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Close hung: refresh tick kept the event queue alive")
	}
}
