package skyd

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"skyfaas/internal/admission"
	"skyfaas/internal/cloudsim"
	"skyfaas/internal/core"
	"skyfaas/internal/cpu"
	"skyfaas/internal/geo"
	"skyfaas/internal/sampler"
)

// newAdmissionServer builds a server with the overload gate enabled and a
// deliberately tiny slot count so tests can saturate it with one burst.
func newAdmissionServer(t *testing.T, slots int) *Server {
	t.Helper()
	rt, err := core.New(core.Config{
		Seed: 11,
		Catalog: []cloudsim.RegionSpec{{
			Provider: cloudsim.AWS, Name: "t1", Loc: geo.Coord{Lat: 40, Lon: -80},
			AZs: []cloudsim.AZSpec{
				{Name: "t1-a", PoolFIs: 2048,
					Mix: map[cpu.Kind]float64{cpu.Xeon25: 1}},
			},
		}},
		SamplerCfg: sampler.Config{
			Endpoints: 30, PollSize: 84, Branch: 4,
			Sleep: 100 * time.Millisecond, InterPollPause: 500 * time.Millisecond,
		},
		SkipMesh: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Runtime:   rt,
		Speedup:   5e6,
		Admission: &admission.Config{Slots: slots, TargetUtil: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestAdmissionDisabled409(t *testing.T) {
	s := newTestServer(t)
	res, body := do(t, s, "GET", "/v1/admission", nil)
	wantErr(t, res, body, http.StatusConflict, "admission_disabled")
	res, body = do(t, s, "POST", "/v1/admission", map[string]any{"slots": 10})
	wantErr(t, res, body, http.StatusConflict, "admission_disabled")
}

func TestAdmissionStatusAndRetune(t *testing.T) {
	s := newAdmissionServer(t, 50)
	res, body := do(t, s, "GET", "/v1/admission", nil)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", res.StatusCode, body)
	}
	var snap admission.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if !snap.Enabled || snap.Slots != 50 || snap.TargetUtil != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}

	res, body = do(t, s, "POST", "/v1/admission", map[string]any{"targetUtil": 0.5})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("retune status %d: %s", res.StatusCode, body)
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.TargetUtil != 0.5 || snap.Limit != 25 {
		t.Fatalf("retuned snapshot = %+v", snap)
	}

	res, body = do(t, s, "POST", "/v1/admission", map[string]any{"targetUtil": 3.0})
	wantErr(t, res, body, http.StatusBadRequest, "bad_retune")
	res, body = do(t, s, "POST", "/v1/admission", map[string]any{})
	wantErr(t, res, body, http.StatusBadRequest, "bad_request")
}

func TestBurstShedsWith429(t *testing.T) {
	s := newAdmissionServer(t, 5)
	// A burst of 40 wants 40 slots against a 5-slot gate: typed 429.
	res, body := do(t, s, "POST", "/v1/burst", map[string]any{
		"workload": "sha1_hash", "strategy": "baseline", "az": "t1-a", "n": 40,
	})
	env := wantErr(t, res, body, http.StatusTooManyRequests, "overloaded")
	var detail shedDetailJS
	if err := json.Unmarshal(env.Error.Detail, &detail); err != nil {
		t.Fatalf("shed detail: %v: %s", err, env.Error.Detail)
	}
	if detail.Workload != "sha1_hash" || detail.RetryAfterMS <= 0 || detail.Limit != 5 {
		t.Fatalf("shed detail = %+v", detail)
	}
	if env.Error.RetryAfterMS != detail.RetryAfterMS {
		t.Fatalf("envelope retryAfterMS %v != detail %v", env.Error.RetryAfterMS, detail.RetryAfterMS)
	}

	// The gate books the shed and the snapshot reflects it.
	_, body = do(t, s, "GET", "/v1/admission", nil)
	var snap admission.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, fn := range snap.Functions {
		if fn.Workload == "sha1_hash" && fn.Shed == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("shed not booked: %+v", snap.Functions)
	}

	// Disabling the gate lets the same burst through, and completion feeds
	// the service-time estimate.
	if res, body := do(t, s, "POST", "/v1/admission", map[string]any{"enabled": false}); res.StatusCode != http.StatusOK {
		t.Fatalf("disable: status %d: %s", res.StatusCode, body)
	}
	res, body = do(t, s, "POST", "/v1/burst", map[string]any{
		"workload": "sha1_hash", "strategy": "baseline", "az": "t1-a", "n": 40,
	})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("disabled-gate burst: status %d: %s", res.StatusCode, body)
	}
	_, body = do(t, s, "GET", "/v1/admission", nil)
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	for _, fn := range snap.Functions {
		if fn.Workload == "sha1_hash" {
			if fn.Admitted != 1 || fn.Inflight != 0 {
				t.Fatalf("post-burst accounting: %+v", fn)
			}
			if fn.Observed.Count != 1 {
				t.Fatalf("observed service time not recorded: %+v", fn)
			}
		}
	}
}

func TestBurstAdmittedWithinCapacity(t *testing.T) {
	s := newAdmissionServer(t, 200)
	res, body := do(t, s, "POST", "/v1/burst", map[string]any{
		"workload": "sha1_hash", "strategy": "baseline", "az": "t1-a", "n": 20,
	})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", res.StatusCode, body)
	}
	var out burstJS
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Completed != 20 {
		t.Fatalf("completed %d, want 20", out.Completed)
	}
}
