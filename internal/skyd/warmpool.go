package skyd

import (
	"context"
	"net/http"
	"strings"

	"skyfaas/internal/sim"
	"skyfaas/internal/warmpool"
)

// Warm-pool admin surface. GET /v1/warmpool snapshots the maintainer
// (policy, budget, per-zone forecast/target/pool state); POST /v1/warmpool
// switches policies and retunes the spend budget. Rates are requests/sec,
// money is USD, matching the refresh surface.

type warmPoolZoneJS struct {
	AZ          string  `json:"az"`
	RecentRPS   float64 `json:"recentRPS"`
	ForecastRPS float64 `json:"forecastRPS"`
	Target      int     `json:"target"`
	Floor       int     `json:"floor"`
	Live        int     `json:"live"`
	Idle        int     `json:"idle"`
	Provisioned int     `json:"provisioned"`
	SpentUSD    float64 `json:"spentUSD"`
}

type warmPoolStatusJS struct {
	Mode              string           `json:"mode"`
	Running           bool             `json:"running"`
	BudgetBalanceUSD  float64          `json:"budgetBalanceUSD"`
	BudgetRatePerHour float64          `json:"budgetRatePerHour"`
	BudgetCapUSD      float64          `json:"budgetCapUSD"`
	SpentUSD          float64          `json:"spentUSD"`
	Ticks             int              `json:"ticks"`
	Provisioned       int              `json:"provisioned"`
	SkippedBudget     int              `json:"skippedBudget"`
	Zones             []warmPoolZoneJS `json:"zones"`
}

func warmPoolStatus(st warmpool.Status, running bool) warmPoolStatusJS {
	out := warmPoolStatusJS{
		Mode:              string(st.Mode),
		Running:           running,
		BudgetBalanceUSD:  st.BudgetBalance,
		BudgetRatePerHour: st.BudgetRate,
		BudgetCapUSD:      st.BudgetCap,
		SpentUSD:          st.SpentUSD,
		Ticks:             st.Ticks,
		Provisioned:       st.Provisioned,
		SkippedBudget:     st.SkippedBudget,
		Zones:             []warmPoolZoneJS{},
	}
	for _, z := range st.Zones {
		out.Zones = append(out.Zones, warmPoolZoneJS{
			AZ:          z.AZ,
			RecentRPS:   z.RecentRPS,
			ForecastRPS: z.ForecastRPS,
			Target:      z.Target,
			Floor:       z.Floor,
			Live:        z.Live,
			Idle:        z.Idle,
			Provisioned: z.Provisioned,
			SpentUSD:    z.SpentUSD,
		})
	}
	return out
}

type warmPoolBudgetJS struct {
	RatePerHour float64 `json:"ratePerHour"`
	CapUSD      float64 `json:"capUSD"`
}

type warmPoolReq struct {
	// Mode switches the sizing policy (off | pinned | reactive | predictive).
	Mode string `json:"mode,omitempty"`
	// Budget retunes the token-bucket spend governor.
	Budget *warmPoolBudgetJS `json:"budget,omitempty"`
}

// errWarmPoolDisabled answers both endpoints when the server was built
// without a warm-pool configuration.
func errWarmPoolDisabled() *apiError {
	return apiErrf(http.StatusConflict, "warmpool_disabled",
		"warm-pool maintenance not enabled (start skyd with a warm-pool config)")
}

func (s *Server) handleWarmPoolStatus(ctx context.Context, r *apiReq) (any, *apiError) {
	m := s.warmer
	if m == nil {
		return nil, errWarmPoolDisabled()
	}
	var st warmpool.Status
	err := s.Exec(func(*sim.Proc) error {
		st = m.Snapshot()
		return nil
	})
	if err != nil {
		return nil, errFromExec(err)
	}
	return warmPoolStatus(st, m.Running()), nil
}

func (s *Server) handleWarmPoolControl(ctx context.Context, r *apiReq) (any, *apiError) {
	m := s.warmer
	if m == nil {
		return nil, errWarmPoolDisabled()
	}
	var req warmPoolReq
	if e := r.decode(&req); e != nil {
		return nil, e
	}
	if req.Mode == "" && req.Budget == nil {
		return nil, apiErrf(http.StatusBadRequest, "bad_request",
			"provide at least one of mode, budget")
	}
	if req.Mode != "" && !warmpool.ValidMode(warmpool.Mode(req.Mode)) {
		names := make([]string, 0, 4)
		for _, k := range warmpool.Modes() {
			names = append(names, string(k))
		}
		return nil, apiErrf(http.StatusBadRequest, "unknown_mode",
			"unknown mode %q (valid: %s)", req.Mode, strings.Join(names, ", "))
	}
	if req.Budget != nil && (req.Budget.RatePerHour < 0 || req.Budget.CapUSD <= 0) {
		return nil, apiErrf(http.StatusBadRequest, "bad_budget",
			"budget rate must be >= 0 and cap > 0")
	}
	var st warmpool.Status
	err := s.Exec(func(*sim.Proc) error {
		if req.Mode != "" {
			if err := m.SetMode(warmpool.Mode(req.Mode)); err != nil {
				return err
			}
		}
		if req.Budget != nil {
			if err := m.RetuneBudget(req.Budget.RatePerHour, req.Budget.CapUSD); err != nil {
				return err
			}
		}
		st = m.Snapshot()
		return nil
	})
	if err != nil {
		return nil, errFromExec(err)
	}
	return warmPoolStatus(st, m.Running()), nil
}
