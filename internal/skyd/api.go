package skyd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"skyfaas/internal/cloudsim"
	"skyfaas/internal/metrics"
	"skyfaas/internal/tenant"
)

// The /v1 surface is a route table of typed handlers. Every handler has the
// shape func(ctx, req) (resp, *apiError): the mount loop owns decoding
// identity, encoding the response, emitting the documented error envelope,
// and instrumenting the endpoint, so handlers hold only their own logic.
// The table itself is data — the API-surface golden test diffs it against
// testdata/api_surface.golden, making any endpoint or auth change a visible
// review artifact.
//
// Error contract (documented in README "API reference"): every non-2xx
// response is
//
//	{"error": {"code": "...", "message": "...", "retryAfterMS": 1500, "detail": {...}}}
//
// where code is a stable machine-readable identifier, message is for
// humans, retryAfterMS appears on 429s (and agrees with the Retry-After
// header), and detail carries code-specific structure (shed telemetry,
// tenant budget state).

// apiFunc is the typed handler shape. A nil *apiError means success; the
// mount loop encodes resp as JSON with status 200.
type apiFunc func(ctx context.Context, r *apiReq) (any, *apiError)

// apiReq is what a handler sees of the HTTP request: the raw request for
// path/query access plus the authenticated account.
type apiReq struct {
	http *http.Request
	// acct is the tenant the API key resolved to; nil when the server runs
	// with no tenant registry (auth-off mode).
	acct *tenant.Tenant
}

// decode reads the JSON request body (1 MiB cap, unknown fields rejected).
func (r *apiReq) decode(v any) *apiError {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.http.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return apiErrf(http.StatusBadRequest, "bad_request", "bad request body: %v", err)
	}
	return nil
}

// apiError is a typed handler failure: the HTTP status, the stable error
// code, and optional retry/detail payload for the envelope.
type apiError struct {
	status     int
	code       string
	message    string
	retryAfter time.Duration
	detail     any
}

// apiErrf builds an apiError with a formatted message.
func apiErrf(status int, code, format string, args ...any) *apiError {
	return &apiError{status: status, code: code, message: fmt.Sprintf(format, args...)}
}

// errFromExec classifies an error that surfaced from inside the simulation
// (or the command queue): addressing errors are the client's fault, a
// closed server is unavailability, anything else is an upstream failure of
// the simulated cloud.
func errFromExec(err error) *apiError {
	switch {
	case errors.Is(err, cloudsim.ErrNoSuchAZ):
		return apiErrf(http.StatusNotFound, "unknown_az", "%v", err)
	case errors.Is(err, ErrClosed):
		return apiErrf(http.StatusServiceUnavailable, "unavailable", "%v", err)
	default:
		return apiErrf(http.StatusBadGateway, "upstream_failure", "%v", err)
	}
}

// errEnvelope is the documented JSON error body.
type errEnvelope struct {
	Error errBody `json:"error"`
}

type errBody struct {
	Code         string  `json:"code"`
	Message      string  `json:"message"`
	RetryAfterMS float64 `json:"retryAfterMS,omitempty"`
	Detail       any     `json:"detail,omitempty"`
}

// writeAPIError emits the envelope; on sheds it also sets the Retry-After
// header (whole seconds, rounded up, per RFC 9110) so plain HTTP clients
// and envelope-aware ones read the same hint.
func writeAPIError(w http.ResponseWriter, e *apiError) {
	if e.retryAfter > 0 {
		secs := int(math.Ceil(e.retryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeJSON(w, e.status, errEnvelope{Error: errBody{
		Code:         e.code,
		Message:      e.message,
		RetryAfterMS: float64(e.retryAfter.Milliseconds()),
		Detail:       e.detail,
	}})
}

// ---------------------------------------------------------------------------
// Route table

// routeDef declares one /v1 endpoint: its mux pattern, whether it requires
// an authenticated tenant (only enforced when a registry is configured),
// whether it is operator-only, and its handler.
type routeDef struct {
	method string
	path   string
	auth   bool
	admin  bool
	h      func(*Server) apiFunc
}

// apiRouteDefs is the complete /v1 surface. Order is the documentation
// order; the golden test snapshots {method, path, auth} from exactly this
// table.
func apiRouteDefs() []routeDef {
	return []routeDef{
		{method: "GET", path: "/v1/healthz", auth: false, h: func(s *Server) apiFunc { return s.handleHealthz }},
		{method: "GET", path: "/v1/zones", auth: true, h: func(s *Server) apiFunc { return s.handleZones }},
		{method: "GET", path: "/v1/characterizations", auth: true, h: func(s *Server) apiFunc { return s.handleCharacterizations }},
		{method: "POST", path: "/v1/characterize", auth: true, h: func(s *Server) apiFunc { return s.handleCharacterize }},
		{method: "POST", path: "/v1/profile", auth: true, h: func(s *Server) apiFunc { return s.handleProfile }},
		{method: "GET", path: "/v1/perf", auth: true, h: func(s *Server) apiFunc { return s.handlePerf }},
		{method: "POST", path: "/v1/burst", auth: true, h: func(s *Server) apiFunc { return s.handleBurst }},
		{method: "GET", path: "/v1/workloads", auth: true, h: func(s *Server) apiFunc { return s.handleWorkloads }},
		{method: "POST", path: "/v1/faults", auth: true, admin: true, h: func(s *Server) apiFunc { return s.handleInjectFaults }},
		{method: "GET", path: "/v1/faults", auth: true, h: func(s *Server) apiFunc { return s.handleListFaults }},
		{method: "GET", path: "/v1/refresh", auth: true, h: func(s *Server) apiFunc { return s.handleRefreshStatus }},
		{method: "POST", path: "/v1/refresh", auth: true, admin: true, h: func(s *Server) apiFunc { return s.handleRefreshControl }},
		{method: "GET", path: "/v1/admission", auth: true, h: func(s *Server) apiFunc { return s.handleAdmissionStatus }},
		{method: "POST", path: "/v1/admission", auth: true, admin: true, h: func(s *Server) apiFunc { return s.handleAdmissionControl }},
		{method: "GET", path: "/v1/warmpool", auth: true, h: func(s *Server) apiFunc { return s.handleWarmPoolStatus }},
		{method: "POST", path: "/v1/warmpool", auth: true, admin: true, h: func(s *Server) apiFunc { return s.handleWarmPoolControl }},
		{method: "GET", path: "/v1/tenants", auth: true, admin: true, h: func(s *Server) apiFunc { return s.handleListTenants }},
		{method: "POST", path: "/v1/tenants", auth: true, admin: true, h: func(s *Server) apiFunc { return s.handleCreateTenant }},
		{method: "DELETE", path: "/v1/tenants/{id}", auth: true, admin: true, h: func(s *Server) apiFunc { return s.handleDeleteTenant }},
		{method: "GET", path: "/v1/tenants/{id}/usage", auth: true, h: func(s *Server) apiFunc { return s.handleTenantUsage }},
	}
}

// ---------------------------------------------------------------------------
// Auth middleware

// apiKey extracts the credential: Authorization: Bearer <key> wins, the
// X-Sky-Key header is the fallback for clients that cannot set
// Authorization.
func apiKey(r *http.Request) string {
	if h := r.Header.Get("Authorization"); h != "" {
		if k, ok := strings.CutPrefix(h, "Bearer "); ok {
			return strings.TrimSpace(k)
		}
		return ""
	}
	return r.Header.Get("X-Sky-Key")
}

// authorize resolves the request's API key to a tenant before the handler
// runs. With no registry configured the whole surface is open (auth-off
// mode — zero-config dev servers and most tests); with one, every auth
// route needs a known key and admin routes an operator account.
func (s *Server) authorize(def routeDef, req *apiReq) *apiError {
	if s.tenants == nil || !def.auth {
		return nil
	}
	key := apiKey(req.http)
	if key == "" {
		return apiErrf(http.StatusUnauthorized, "missing_key",
			"an API key is required: send Authorization: Bearer <key> or X-Sky-Key")
	}
	t, ok := s.tenants.Resolve(key)
	if !ok {
		return apiErrf(http.StatusForbidden, "bad_key", "unrecognized API key")
	}
	req.acct = &t
	if def.admin && !t.Admin {
		return apiErrf(http.StatusForbidden, "not_admin",
			"tenant %q is not an operator account", t.ID)
	}
	return nil
}

// mount registers one route with the shared middleware stack:
// authentication, the central encoder, and per-endpoint (plus per-tenant)
// instrumentation. The metric path label is the route pattern, not the
// concrete URL, so {id} routes stay one series.
func (s *Server) mount(def routeDef) {
	hist := s.metrics.Histogram("sky_skyd_http_request_ms",
		"wall-time handler latency (milliseconds)", httpBuckets, metrics.L("path", def.path))
	h := def.h(s)
	s.mux.HandleFunc(def.method+" "+def.path, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		code := http.StatusOK
		req := &apiReq{http: r}
		if e := s.authorize(def, req); e != nil {
			code = e.status
			writeAPIError(w, e)
		} else if resp, e := h(r.Context(), req); e != nil {
			code = e.status
			writeAPIError(w, e)
		} else {
			writeJSON(w, http.StatusOK, resp)
		}
		hist.Observe(float64(time.Since(start)) / float64(time.Millisecond))
		s.metrics.Counter("sky_skyd_http_requests_total",
			"requests served, by endpoint and status code",
			metrics.L("path", def.path), metrics.L("code", strconv.Itoa(code))).Inc()
		if s.tenants != nil {
			id := "-" // unauthenticated or auth-off route
			if req.acct != nil {
				id = req.acct.ID
			}
			s.metrics.Counter("sky_tenant_http_requests_total",
				"requests served, by tenant and status code",
				metrics.L("tenant", id), metrics.L("code", strconv.Itoa(code))).Inc()
		}
	})
}
