package skyd

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"skyfaas/internal/cloudsim"
	"skyfaas/internal/core"
	"skyfaas/internal/cpu"
	"skyfaas/internal/geo"
	"skyfaas/internal/sampler"
	"skyfaas/internal/sim"
	"skyfaas/internal/tenant"
	"skyfaas/internal/warmpool"
)

// newWarmPoolServer builds the two-zone test server with the pre-warming
// loop enabled in the given mode.
func newWarmPoolServer(t *testing.T, mode warmpool.Mode) *Server {
	t.Helper()
	rt, err := core.New(core.Config{
		Seed: 9,
		Catalog: []cloudsim.RegionSpec{{
			Provider: cloudsim.AWS, Name: "t1", Loc: geo.Coord{Lat: 40, Lon: -80},
			AZs: []cloudsim.AZSpec{
				{Name: "t1-slow", PoolFIs: 2048,
					Mix: map[cpu.Kind]float64{cpu.Xeon25: 0.5, cpu.EPYC: 0.5}},
				{Name: "t1-fast", PoolFIs: 2048,
					Mix: map[cpu.Kind]float64{cpu.Xeon30: 0.6, cpu.Xeon25: 0.4}},
			},
		}},
		SamplerCfg: sampler.Config{
			Endpoints: 30, PollSize: 84, Branch: 4,
			Sleep: 100 * time.Millisecond, InterPollPause: 500 * time.Millisecond,
		},
		SkipMesh: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Runtime: rt,
		Speedup: 5e6,
		WarmPool: &warmpool.Config{
			Zones: []string{"t1-slow", "t1-fast"},
			Mode:  mode,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestWarmPoolDisabledAnswers409(t *testing.T) {
	s := newTestServer(t)
	res, body := do(t, s, "GET", "/v1/warmpool", nil)
	wantErr(t, res, body, http.StatusConflict, "warmpool_disabled")
	res, body = do(t, s, "POST", "/v1/warmpool", map[string]any{"mode": "pinned"})
	wantErr(t, res, body, http.StatusConflict, "warmpool_disabled")
}

func TestWarmPoolStatusAndControl(t *testing.T) {
	s := newWarmPoolServer(t, warmpool.ModeOff)

	res, body := do(t, s, "GET", "/v1/warmpool", nil)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET status = %d: %s", res.StatusCode, body)
	}
	var st warmPoolStatusJS
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Mode != "off" || !st.Running || len(st.Zones) != 2 {
		t.Fatalf("status = %+v, want running off-mode loop over 2 zones", st)
	}

	// Switch policy and retune the budget in one call.
	res, body = do(t, s, "POST", "/v1/warmpool", map[string]any{
		"mode":   "predictive",
		"budget": map[string]any{"ratePerHour": 2.5, "capUSD": 0.75},
	})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("control status = %d: %s", res.StatusCode, body)
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Mode != "predictive" || st.BudgetRatePerHour != 2.5 || st.BudgetCapUSD != 0.75 {
		t.Fatalf("after retune: %+v, want predictive mode with 2.5/h cap 0.75", st)
	}
}

func TestWarmPoolControlValidation(t *testing.T) {
	s := newWarmPoolServer(t, warmpool.ModeOff)
	res, body := do(t, s, "POST", "/v1/warmpool", map[string]any{})
	wantErr(t, res, body, http.StatusBadRequest, "bad_request")
	res, body = do(t, s, "POST", "/v1/warmpool", map[string]any{"mode": "clairvoyant"})
	wantErr(t, res, body, http.StatusBadRequest, "unknown_mode")
	res, body = do(t, s, "POST", "/v1/warmpool", map[string]any{"budget": map[string]any{"ratePerHour": 1.0}})
	wantErr(t, res, body, http.StatusBadRequest, "bad_budget")
}

// TestWarmPoolLoopCloseRaces arms a pinned-mode loop that is actively
// ticking and immediately closes the server: Close must stop the tick and
// return (run with -race; this is the cross-thread Stop path).
func TestWarmPoolLoopCloseRaces(t *testing.T) {
	s := newWarmPoolServer(t, warmpool.ModePinned)
	res, _ := do(t, s, "GET", "/v1/warmpool", nil)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET status = %d", res.StatusCode)
	}
	done := make(chan struct{})
	go func() {
		s.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Close hung: warm-pool tick kept the event queue alive")
	}
}

// TestTenantUsageIncludesWarmPoolSpend drives a real PreWarm against the
// simulated cloud under the runtime's account and checks the platform's
// warm-pool spend surfaces on the tenant usage rollup.
func TestTenantUsageIncludesWarmPoolSpend(t *testing.T) {
	rt, err := core.New(core.Config{
		Seed: 13,
		Catalog: []cloudsim.RegionSpec{{
			Provider: cloudsim.AWS, Name: "t1", Loc: geo.Coord{Lat: 40, Lon: -80},
			AZs: []cloudsim.AZSpec{
				{Name: "t1-a", PoolFIs: 2048,
					Mix: map[cpu.Kind]float64{cpu.Xeon25: 1}},
			},
		}},
		SamplerCfg: sampler.Config{
			Endpoints: 30, PollSize: 84, Branch: 4,
			Sleep: 100 * time.Millisecond, InterPollPause: 500 * time.Millisecond,
		},
		SkipMesh: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := tenant.NewRegistry(tenant.Config{Metrics: rt.Metrics()})
	for _, tn := range tenant.Fixture() {
		if err := reg.Create(tn, time.Now()); err != nil {
			t.Fatal(err)
		}
	}
	s, err := New(Config{
		Runtime:  rt,
		Speedup:  5e6,
		Tenants:  reg,
		WarmPool: &warmpool.Config{Zones: []string{"t1-a"}, Mode: warmpool.ModeOff},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	var cost float64
	err = s.Exec(func(*sim.Proc) error {
		c := s.Runtime().Cloud()
		if _, err := c.Deploy("t1-a", "fn", cloudsim.DeployConfig{
			MemoryMB: 2048,
			Behavior: cloudsim.SleepBehavior{D: 50 * time.Millisecond},
		}); err != nil {
			return err
		}
		az, _ := c.AZ("t1-a")
		_, cost, err = az.PreWarm("fn", 2, s.Runtime().Client().Account())
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Fatalf("PreWarm cost = %f, want positive", cost)
	}
	res, body := doKey(t, s, "GET", "/v1/tenants/acme/usage", nil, acmeKey)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("usage status = %d: %s", res.StatusCode, body)
	}
	var u tenant.Usage
	if err := json.Unmarshal(body, &u); err != nil {
		t.Fatal(err)
	}
	if u.WarmPoolUSD != cost {
		t.Fatalf("warmPoolUSD = %f, want the provisioning cost %f", u.WarmPoolUSD, cost)
	}
}
