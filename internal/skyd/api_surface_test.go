package skyd

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestAPISurfaceGolden snapshots the /v1 surface — {method, path,
// auth-requirement} straight from the route table — against a checked-in
// golden. Adding, removing, or re-scoping an endpoint is an API contract
// change; this test makes it a visible diff in review instead of a silent
// side effect. Refresh deliberately with:
//
//	go test ./internal/skyd/ -run APISurface -update
func TestAPISurfaceGolden(t *testing.T) {
	var b strings.Builder
	b.WriteString("# The /v1 API surface: METHOD PATH AUTH.\n")
	b.WriteString("# AUTH is open (no key), key (any tenant), or admin (operator tenants\n")
	b.WriteString("# only); enforced when skyd runs with a tenant registry.\n")
	for _, def := range apiRouteDefs() {
		auth := "open"
		switch {
		case def.admin:
			auth = "admin"
		case def.auth:
			auth = "key"
		}
		fmt.Fprintf(&b, "%-6s %-28s %s\n", def.method, def.path, auth)
	}
	got := b.String()

	path := filepath.Join("testdata", "api_surface.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Errorf("API surface drifted from %s (run with -update after reviewing the change):\ngot:\n%s\nwant:\n%s",
			path, got, want)
	}
}

// TestRouteTableSane: the defs must be unique and admin implies auth —
// an admin route that skipped authentication would be an open door.
func TestRouteTableSane(t *testing.T) {
	seen := map[string]bool{}
	for _, def := range apiRouteDefs() {
		key := def.method + " " + def.path
		if seen[key] {
			t.Errorf("duplicate route %s", key)
		}
		seen[key] = true
		if def.admin && !def.auth {
			t.Errorf("%s is admin-only but unauthenticated", key)
		}
		if !strings.HasPrefix(def.path, "/v1/") {
			t.Errorf("%s outside /v1", key)
		}
	}
}
