package skyd

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"skyfaas/internal/admission"
	"skyfaas/internal/cloudsim"
	"skyfaas/internal/core"
	"skyfaas/internal/cpu"
	"skyfaas/internal/geo"
	"skyfaas/internal/sampler"
	"skyfaas/internal/tenant"
)

// Fixture keys (see tenant.Fixture): ops is the operator, acme has a
// 32-slot quota and a metered budget, burst-lab an 8-slot quota.
const (
	opsKey  = "sk-ops-0001"
	acmeKey = "sk-acme-7f3a"
	labKey  = "sk-lab-21c9"
)

// newAuthServer builds a single-zone server with the fixture tenant
// registry and (optionally) the global admission gate.
func newAuthServer(t *testing.T, adm *admission.Config) *Server {
	t.Helper()
	rt, err := core.New(core.Config{
		Seed: 13,
		Catalog: []cloudsim.RegionSpec{{
			Provider: cloudsim.AWS, Name: "t1", Loc: geo.Coord{Lat: 40, Lon: -80},
			AZs: []cloudsim.AZSpec{
				{Name: "t1-a", PoolFIs: 2048,
					Mix: map[cpu.Kind]float64{cpu.Xeon25: 1}},
			},
		}},
		SamplerCfg: sampler.Config{
			Endpoints: 30, PollSize: 84, Branch: 4,
			Sleep: 100 * time.Millisecond, InterPollPause: 500 * time.Millisecond,
		},
		SkipMesh: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := tenant.NewRegistry(tenant.Config{Metrics: rt.Metrics()})
	for _, tn := range tenant.Fixture() {
		if err := reg.Create(tn, time.Now()); err != nil {
			t.Fatal(err)
		}
	}
	s, err := New(Config{Runtime: rt, Speedup: 5e6, Admission: adm, Tenants: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestAuthRequired(t *testing.T) {
	s := newAuthServer(t, nil)
	// No key: 401 missing_key on every authenticated route.
	res, body := do(t, s, "GET", "/v1/zones", nil)
	wantErr(t, res, body, http.StatusUnauthorized, "missing_key")
	// Wrong key: 403 bad_key.
	res, body = doKey(t, s, "GET", "/v1/zones", nil, "sk-wrong")
	wantErr(t, res, body, http.StatusForbidden, "bad_key")
	// Malformed Authorization scheme counts as missing.
	req := httptest.NewRequest("GET", "/v1/zones", nil)
	req.Header.Set("Authorization", "Basic dXNlcjpwYXNz")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	badRes := rec.Result()
	defer badRes.Body.Close()
	wantErr(t, badRes, rec.Body.Bytes(), http.StatusUnauthorized, "missing_key")
	// A valid key is admitted.
	res, _ = doKey(t, s, "GET", "/v1/zones", nil, acmeKey)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("keyed request status %d", res.StatusCode)
	}
	// Health stays open without a key; so do the observability endpoints.
	for _, path := range []string{"/v1/healthz", "/healthz", "/metrics", "/metrics.json"} {
		if res, body := do(t, s, "GET", path, nil); res.StatusCode != http.StatusOK {
			t.Errorf("%s without key: status %d: %s", path, res.StatusCode, body)
		}
	}
}

func TestXSkyKeyHeader(t *testing.T) {
	s := newAuthServer(t, nil)
	req := httptest.NewRequest("GET", "/v1/zones", nil)
	req.Header.Set("X-Sky-Key", acmeKey)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("X-Sky-Key request status %d: %s", rec.Code, rec.Body.Bytes())
	}
}

func TestAdminOnlyRoutes(t *testing.T) {
	s := newAuthServer(t, nil)
	// A workload tenant may not administer tenants, faults, refresh, or
	// admission.
	for _, c := range []struct {
		method, path string
		body         any
	}{
		{"GET", "/v1/tenants", nil},
		{"POST", "/v1/tenants", map[string]any{"id": "x", "keys": []string{"kx"}}},
		{"DELETE", "/v1/tenants/acme", nil},
		{"POST", "/v1/faults", map[string]any{"scenario": "degraded", "az": "t1-a"}},
		{"POST", "/v1/refresh", map[string]any{"mode": "age"}},
		{"POST", "/v1/admission", map[string]any{"slots": 10}},
	} {
		res, body := doKey(t, s, c.method, c.path, c.body, acmeKey)
		wantErr(t, res, body, http.StatusForbidden, "not_admin")
	}
}

func TestTenantCRUD(t *testing.T) {
	s := newAuthServer(t, nil)
	// List shows the fixture, keys redacted.
	res, body := doKey(t, s, "GET", "/v1/tenants", nil, opsKey)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("list status %d: %s", res.StatusCode, body)
	}
	var list struct {
		Tenants []struct {
			ID      string `json:"id"`
			NumKeys int    `json:"numKeys"`
		} `json:"tenants"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Tenants) != 3 || list.Tenants[0].ID != "acme" || list.Tenants[0].NumKeys != 1 {
		t.Fatalf("tenants = %+v", list.Tenants)
	}
	if bytes.Contains(body, []byte("sk-acme")) {
		t.Fatal("tenant list leaked an API key")
	}

	// Create, then the new key works immediately.
	res, body = doKey(t, s, "POST", "/v1/tenants", map[string]any{
		"id": "newco", "name": "NewCo", "keys": []string{"sk-new-1"}, "quotaSlots": 4,
	}, opsKey)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("create status %d: %s", res.StatusCode, body)
	}
	if res, _ := doKey(t, s, "GET", "/v1/zones", nil, "sk-new-1"); res.StatusCode != http.StatusOK {
		t.Fatalf("new key status %d", res.StatusCode)
	}

	// Duplicate ID and duplicate key are conflicts; a bad record is a 400.
	res, body = doKey(t, s, "POST", "/v1/tenants", map[string]any{
		"id": "newco", "keys": []string{"sk-other"},
	}, opsKey)
	wantErr(t, res, body, http.StatusConflict, "tenant_exists")
	res, body = doKey(t, s, "POST", "/v1/tenants", map[string]any{
		"id": "other", "keys": []string{"sk-new-1"},
	}, opsKey)
	wantErr(t, res, body, http.StatusConflict, "duplicate_key")
	res, body = doKey(t, s, "POST", "/v1/tenants", map[string]any{
		"id": "nokeys",
	}, opsKey)
	wantErr(t, res, body, http.StatusBadRequest, "bad_tenant")

	// Delete revokes the key.
	res, body = doKey(t, s, "DELETE", "/v1/tenants/newco", nil, opsKey)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d: %s", res.StatusCode, body)
	}
	res, body = doKey(t, s, "GET", "/v1/zones", nil, "sk-new-1")
	wantErr(t, res, body, http.StatusForbidden, "bad_key")
	res, body = doKey(t, s, "DELETE", "/v1/tenants/newco", nil, opsKey)
	wantErr(t, res, body, http.StatusNotFound, "unknown_tenant")
}

func TestTenantBudgetExhausted(t *testing.T) {
	s := newAuthServer(t, nil)
	// A tenant with a microscopic budget: the first burst's cost overdrafts
	// the bucket, the second sheds 429 budget_exhausted until it refills.
	res, body := doKey(t, s, "POST", "/v1/tenants", map[string]any{
		"id": "poor", "keys": []string{"sk-poor-1"},
		"budgetPerHourUSD": 1e-6, "budgetCapUSD": 1e-6,
	}, opsKey)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("create status %d: %s", res.StatusCode, body)
	}
	burst := map[string]any{"workload": "sha1_hash", "strategy": "baseline", "az": "t1-a", "n": 5}
	res, body = doKey(t, s, "POST", "/v1/burst", burst, "sk-poor-1")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("first burst status %d: %s", res.StatusCode, body)
	}
	res, body = doKey(t, s, "POST", "/v1/burst", burst, "sk-poor-1")
	env := wantErr(t, res, body, http.StatusTooManyRequests, "budget_exhausted")
	var detail struct {
		BalanceUSD float64 `json:"balanceUSD"`
	}
	if err := json.Unmarshal(env.Error.Detail, &detail); err != nil {
		t.Fatal(err)
	}
	if detail.BalanceUSD >= 0 {
		t.Fatalf("balance = %v, want negative", detail.BalanceUSD)
	}
}

func TestTenantUsageVisibility(t *testing.T) {
	s := newAuthServer(t, nil)
	// Self-read is allowed.
	res, body := doKey(t, s, "GET", "/v1/tenants/acme/usage", nil, acmeKey)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("self usage status %d: %s", res.StatusCode, body)
	}
	var u tenant.Usage
	if err := json.Unmarshal(body, &u); err != nil {
		t.Fatal(err)
	}
	if u.Tenant != "acme" || !u.Metered || u.QuotaSlots != 32 {
		t.Fatalf("usage = %+v", u)
	}
	// Cross-tenant reads need an operator.
	res, body = doKey(t, s, "GET", "/v1/tenants/burst-lab/usage", nil, acmeKey)
	wantErr(t, res, body, http.StatusForbidden, "forbidden")
	if res, _ := doKey(t, s, "GET", "/v1/tenants/burst-lab/usage", nil, opsKey); res.StatusCode != http.StatusOK {
		t.Fatalf("admin cross-read status %d", res.StatusCode)
	}
	res, body = doKey(t, s, "GET", "/v1/tenants/ghost/usage", nil, opsKey)
	wantErr(t, res, body, http.StatusNotFound, "unknown_tenant")
}

func TestTenantQuotaShedsBeforeGlobalGate(t *testing.T) {
	// Global gate has plenty of room (200 slots, TargetUtil 1); burst-lab's
	// quota is only 8, so an 8+ burst sheds with the tenant reason and the
	// global gate never books it.
	s := newAuthServer(t, &admission.Config{Slots: 200, TargetUtil: 1})
	res, body := doKey(t, s, "POST", "/v1/burst", map[string]any{
		"workload": "sha1_hash", "strategy": "baseline", "az": "t1-a", "n": 40,
	}, labKey)
	env := wantErr(t, res, body, http.StatusTooManyRequests, "tenant_over_quota")
	var detail struct {
		Tenant     string `json:"tenant"`
		QuotaSlots int    `json:"quotaSlots"`
	}
	if err := json.Unmarshal(env.Error.Detail, &detail); err != nil {
		t.Fatal(err)
	}
	if detail.Tenant != "burst-lab" || detail.QuotaSlots != 8 {
		t.Fatalf("detail = %+v", detail)
	}
	// The global gate saw nothing: no admitted, no shed for the workload.
	var snap admission.Snapshot
	if _, body := doKey(t, s, "GET", "/v1/admission", nil, opsKey); true {
		if err := json.Unmarshal(body, &snap); err != nil {
			t.Fatal(err)
		}
	}
	for _, fn := range snap.Functions {
		if fn.Workload == "sha1_hash" {
			t.Fatalf("tenant shed leaked into the global gate: %+v", fn)
		}
	}
	// A burst inside the quota is admitted, billed, and visible in usage.
	res, body = doKey(t, s, "POST", "/v1/burst", map[string]any{
		"workload": "sha1_hash", "strategy": "baseline", "az": "t1-a", "n": 8,
	}, labKey)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("in-quota burst status %d: %s", res.StatusCode, body)
	}
	var u tenant.Usage
	_, body = doKey(t, s, "GET", "/v1/tenants/burst-lab/usage", nil, labKey)
	if err := json.Unmarshal(body, &u); err != nil {
		t.Fatal(err)
	}
	if u.Admitted != 1 || u.ShedQuota != 1 || u.SpentUSD <= 0 || u.Inflight != 0 {
		t.Fatalf("usage after bursts = %+v", u)
	}
}
