package skyd

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"skyfaas/internal/cloudsim"
	"skyfaas/internal/core"
	"skyfaas/internal/cpu"
	"skyfaas/internal/geo"
	"skyfaas/internal/sampler"
	"skyfaas/internal/sim"
)

// newTestServer spins a server over a tiny two-zone world at very high
// pacing so HTTP tests finish in milliseconds of wall time.
func newTestServer(t *testing.T) *Server {
	t.Helper()
	rt, err := core.New(core.Config{
		Seed: 9,
		Catalog: []cloudsim.RegionSpec{{
			Provider: cloudsim.AWS, Name: "t1", Loc: geo.Coord{Lat: 40, Lon: -80},
			AZs: []cloudsim.AZSpec{
				{Name: "t1-slow", PoolFIs: 2048,
					Mix: map[cpu.Kind]float64{cpu.Xeon25: 0.5, cpu.EPYC: 0.5}},
				{Name: "t1-fast", PoolFIs: 2048,
					Mix: map[cpu.Kind]float64{cpu.Xeon30: 0.6, cpu.Xeon25: 0.4}},
			},
		}},
		SamplerCfg: sampler.Config{
			Endpoints: 30, PollSize: 84, Branch: 4,
			Sleep: 100 * time.Millisecond, InterPollPause: 500 * time.Millisecond,
		},
		SkipMesh: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Runtime: rt, Speedup: 5e6})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func do(t *testing.T, s *Server, method, path string, body any) (*http.Response, []byte) {
	t.Helper()
	return doKey(t, s, method, path, body, "")
}

// doKey is do with an API key attached as a bearer token.
func doKey(t *testing.T, s *Server, method, path string, body any, key string) (*http.Response, []byte) {
	t.Helper()
	var reqBody *bytes.Buffer = bytes.NewBuffer(nil)
	if body != nil {
		if err := json.NewEncoder(reqBody).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, reqBody)
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	res := rec.Result()
	defer res.Body.Close()
	buf := new(bytes.Buffer)
	if _, err := buf.ReadFrom(res.Body); err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

// envelope mirrors the documented error body for assertions.
type envelope struct {
	Error struct {
		Code         string          `json:"code"`
		Message      string          `json:"message"`
		RetryAfterMS float64         `json:"retryAfterMS"`
		Detail       json.RawMessage `json:"detail"`
	} `json:"error"`
}

// wantErr asserts the response is status with the typed envelope: the
// expected code, a non-empty message, and — on sheds carrying a retry hint
// — a Retry-After header that agrees with retryAfterMS (whole seconds,
// rounded up). It returns the envelope for detail assertions.
func wantErr(t *testing.T, res *http.Response, body []byte, status int, code string) envelope {
	t.Helper()
	if res.StatusCode != status {
		t.Fatalf("status %d, want %d: %s", res.StatusCode, status, body)
	}
	var env envelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("not an envelope: %v: %s", err, body)
	}
	if env.Error.Code != code {
		t.Fatalf("error code %q, want %q: %s", env.Error.Code, code, body)
	}
	if env.Error.Message == "" {
		t.Fatalf("empty error message: %s", body)
	}
	header := res.Header.Get("Retry-After")
	if env.Error.RetryAfterMS > 0 {
		if header == "" {
			t.Fatalf("retryAfterMS %v without Retry-After header", env.Error.RetryAfterMS)
		}
		secs, err := strconv.Atoi(header)
		if err != nil {
			t.Fatalf("Retry-After %q not whole seconds", header)
		}
		want := int(math.Ceil(env.Error.RetryAfterMS / 1000))
		if want < 1 {
			want = 1
		}
		if secs != want {
			t.Fatalf("Retry-After %ds disagrees with retryAfterMS %v", secs, env.Error.RetryAfterMS)
		}
	} else if header != "" {
		t.Fatalf("Retry-After %q on a response without a retry hint", header)
	}
	return env
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t)
	res, body := do(t, s, "GET", "/v1/healthz", nil)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", res.StatusCode, body)
	}
	var out struct {
		Status      string    `json:"status"`
		VirtualTime time.Time `json:"virtualTime"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Status != "ok" || out.VirtualTime.IsZero() {
		t.Fatalf("body = %s", body)
	}
}

func TestZones(t *testing.T) {
	s := newTestServer(t)
	res, body := do(t, s, "GET", "/v1/zones", nil)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d", res.StatusCode)
	}
	var out struct {
		Zones []struct {
			Name, Region, Provider string
		} `json:"zones"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Zones) != 2 || out.Zones[0].Provider != "aws-lambda" {
		t.Fatalf("zones = %+v", out.Zones)
	}
}

func TestCharacterizeFlow(t *testing.T) {
	s := newTestServer(t)
	res, body := do(t, s, "POST", "/v1/characterize", map[string]any{"az": "t1-fast", "polls": 3})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", res.StatusCode, body)
	}
	var ch struct {
		AZ      string             `json:"az"`
		Samples int                `json:"samples"`
		Dist    map[string]float64 `json:"dist"`
	}
	if err := json.Unmarshal(body, &ch); err != nil {
		t.Fatal(err)
	}
	if ch.AZ != "t1-fast" || ch.Samples == 0 {
		t.Fatalf("characterization = %+v", ch)
	}
	if ch.Dist["Xeon 3.00GHz"] <= 0 {
		t.Fatalf("dist = %v", ch.Dist)
	}
	// Now listed.
	res, body = do(t, s, "GET", "/v1/characterizations", nil)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d", res.StatusCode)
	}
	var list struct {
		Characterizations []json.RawMessage `json:"characterizations"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Characterizations) != 1 {
		t.Fatalf("listed %d characterizations", len(list.Characterizations))
	}
}

func TestCharacterizeValidation(t *testing.T) {
	s := newTestServer(t)
	// An unknown AZ is the caller's addressing error, not a gateway
	// failure.
	res, body := do(t, s, "POST", "/v1/characterize", map[string]any{"az": "ghost"})
	wantErr(t, res, body, http.StatusNotFound, "unknown_az")

	req := httptest.NewRequest("POST", "/v1/characterize", bytes.NewBufferString("{bad"))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	badRes := rec.Result()
	defer badRes.Body.Close()
	wantErr(t, badRes, rec.Body.Bytes(), http.StatusBadRequest, "bad_request")
}

func TestProfileThenPerfThenBurst(t *testing.T) {
	s := newTestServer(t)
	res, body := do(t, s, "POST", "/v1/profile", map[string]any{
		"workload": "math_service", "zones": []string{"t1-slow", "t1-fast"}, "runs": 450,
	})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("profile status %d: %s", res.StatusCode, body)
	}

	res, body = do(t, s, "GET", "/v1/perf?workload=math_service", nil)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("perf status %d", res.StatusCode)
	}
	var perf struct {
		Kinds []struct {
			CPU     string  `json:"cpu"`
			MeanMS  float64 `json:"meanMS"`
			Samples int     `json:"samples"`
		} `json:"kinds"`
	}
	if err := json.Unmarshal(body, &perf); err != nil {
		t.Fatal(err)
	}
	if len(perf.Kinds) < 2 {
		t.Fatalf("perf kinds = %+v", perf.Kinds)
	}
	// Ranked fastest first.
	if perf.Kinds[0].MeanMS > perf.Kinds[1].MeanMS {
		t.Fatalf("perf not ranked: %+v", perf.Kinds)
	}

	// Characterize both zones so the hybrid strategy can decide.
	for _, az := range []string{"t1-slow", "t1-fast"} {
		if res, body := do(t, s, "POST", "/v1/characterize", map[string]any{"az": az, "polls": 3}); res.StatusCode != http.StatusOK {
			t.Fatalf("characterize %s: %d %s", az, res.StatusCode, body)
		}
	}
	res, body = do(t, s, "POST", "/v1/burst", map[string]any{
		"strategy": "hybrid", "workload": "math_service", "n": 100,
		"candidates": []string{"t1-slow", "t1-fast"},
	})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("burst status %d: %s", res.StatusCode, body)
	}
	var burst struct {
		AZ        string  `json:"az"`
		Completed int     `json:"completed"`
		CostUSD   float64 `json:"costUSD"`
	}
	if err := json.Unmarshal(body, &burst); err != nil {
		t.Fatal(err)
	}
	if burst.Completed != 100 || burst.AZ != "t1-fast" || burst.CostUSD <= 0 {
		t.Fatalf("burst = %+v", burst)
	}
}

func TestBurstValidation(t *testing.T) {
	s := newTestServer(t)
	cases := []struct {
		req    map[string]any
		status int
		code   string
	}{
		{map[string]any{"strategy": "warp", "workload": "zipper"},
			http.StatusBadRequest, "unknown_strategy"},
		{map[string]any{"strategy": "baseline", "workload": "zipper"},
			http.StatusBadRequest, "bad_request"}, // baseline without az
		{map[string]any{"strategy": "hybrid", "workload": "quantum_sort"},
			http.StatusBadRequest, "unknown_workload"},
		{map[string]any{"strategy": "baseline", "az": "ghost", "workload": "zipper"},
			http.StatusNotFound, "unknown_az"},
		{map[string]any{"workload": "zipper", "candidates": []string{"t1-fast", "ghost"}},
			http.StatusNotFound, "unknown_az"},
	}
	for _, c := range cases {
		res, body := do(t, s, "POST", "/v1/burst", c.req)
		wantErr(t, res, body, c.status, c.code)
	}
}

func TestProfileValidation(t *testing.T) {
	s := newTestServer(t)
	res, body := do(t, s, "POST", "/v1/profile", map[string]any{
		"workload": "math_service", "zones": []string{"ghost"},
	})
	wantErr(t, res, body, http.StatusNotFound, "unknown_az")
	res, body = do(t, s, "POST", "/v1/profile", map[string]any{
		"workload": "quantum_sort", "zones": []string{"t1-fast"},
	})
	wantErr(t, res, body, http.StatusBadRequest, "unknown_workload")
	res, body = do(t, s, "POST", "/v1/profile", map[string]any{"workload": "math_service"})
	wantErr(t, res, body, http.StatusBadRequest, "bad_request")
}

func TestPerfValidation(t *testing.T) {
	s := newTestServer(t)
	res, body := do(t, s, "GET", "/v1/perf?workload=quantum_sort", nil)
	wantErr(t, res, body, http.StatusBadRequest, "unknown_workload")
}

func TestClosedServer503(t *testing.T) {
	s := newTestServer(t)
	s.Close()
	res, body := do(t, s, "GET", "/v1/healthz", nil)
	wantErr(t, res, body, http.StatusServiceUnavailable, "unavailable")
}

func TestWorkloadsEndpoint(t *testing.T) {
	s := newTestServer(t)
	res, body := do(t, s, "GET", "/v1/workloads", nil)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d", res.StatusCode)
	}
	var out struct {
		Workloads []struct{ Name string } `json:"workloads"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Workloads) != 12 {
		t.Fatalf("workloads = %d", len(out.Workloads))
	}
}

func TestExecAfterClose(t *testing.T) {
	s := newTestServer(t)
	s.Close()
	if err := s.Exec(func(p *sim.Proc) error { return nil }); err != ErrClosed {
		t.Fatalf("err = %v", err)
	}
	// Double close is safe.
	s.Close()
}

func TestConcurrentRequests(t *testing.T) {
	s := newTestServer(t)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			res, _ := do(t, s, "GET", "/v1/healthz", nil)
			if res.StatusCode != http.StatusOK {
				done <- ErrClosed
				return
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal("concurrent healthz failed")
		}
	}
}
