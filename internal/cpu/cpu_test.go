package cpu

import (
	"strings"
	"testing"
)

func TestKindsCoversCatalog(t *testing.T) {
	ks := Kinds()
	if len(ks) != numKinds {
		t.Fatalf("Kinds() returned %d entries, want %d", len(ks), numKinds)
	}
	for _, k := range ks {
		if !k.Valid() {
			t.Errorf("kind %d listed but not in catalog", int(k))
		}
		info := MustLookup(k)
		if info.Kind != k {
			t.Errorf("catalog entry for %v has Kind %v", k, info.Kind)
		}
		if info.Model == "" || info.Vendor == "" {
			t.Errorf("catalog entry for %v missing model/vendor", k)
		}
		if info.ClockGHz <= 0 {
			t.Errorf("catalog entry for %v has clock %v", k, info.ClockGHz)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, ok := Lookup(Kind(999)); ok {
		t.Fatal("Lookup(999) succeeded")
	}
	if Kind(999).Valid() {
		t.Fatal("Kind(999).Valid() = true")
	}
}

func TestStringLabels(t *testing.T) {
	tests := []struct {
		kind Kind
		want string
	}{
		{Xeon25, "Xeon 2.50GHz"},
		{Xeon29, "Xeon 2.90GHz"},
		{Xeon30, "Xeon 3.00GHz"},
		{EPYC, "AMD EPYC"},
		{Graviton, "Graviton2"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", int(tt.kind), got, tt.want)
		}
	}
}

func TestArchString(t *testing.T) {
	if X86.String() != "x86_64" || ARM.String() != "arm64" {
		t.Fatalf("arch strings: %q %q", X86, ARM)
	}
	if !strings.HasPrefix(Arch(42).String(), "Arch(") {
		t.Fatal("unknown arch not flagged")
	}
}

func TestCPUInfoRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		for _, vcpus := range []int{1, 2, 6} {
			dump := CPUInfo(k, vcpus)
			got, procs, err := ParseCPUInfo(dump)
			if err != nil {
				t.Fatalf("ParseCPUInfo(%v, %d): %v", k, vcpus, err)
			}
			if got != k {
				t.Errorf("round trip %v -> %v", k, got)
			}
			if procs != vcpus {
				t.Errorf("%v: procs = %d, want %d", k, procs, vcpus)
			}
		}
	}
}

func TestCPUInfoClampsVCPUs(t *testing.T) {
	dump := CPUInfo(Xeon25, 0)
	_, procs, err := ParseCPUInfo(dump)
	if err != nil {
		t.Fatal(err)
	}
	if procs != 1 {
		t.Fatalf("procs = %d, want clamp to 1", procs)
	}
}

func TestCPUInfoUnknownKindEmpty(t *testing.T) {
	if got := CPUInfo(Kind(0), 2); got != "" {
		t.Fatalf("CPUInfo(0) = %q", got)
	}
}

func TestParseCPUInfoErrors(t *testing.T) {
	if _, _, err := ParseCPUInfo("no such content"); err == nil {
		t.Fatal("parse of garbage succeeded")
	}
	if _, _, err := ParseCPUInfo("model name : Quantum CPU 9000\nprocessor: 0\n"); err == nil {
		t.Fatal("parse of unknown model succeeded")
	}
}

func TestFromModelExactMatch(t *testing.T) {
	for _, k := range Kinds() {
		info := MustLookup(k)
		got, err := FromModel(info.Model)
		if err != nil {
			t.Fatalf("FromModel(%q): %v", info.Model, err)
		}
		if got != k {
			t.Errorf("FromModel(%q) = %v, want %v", info.Model, got, k)
		}
	}
}

func TestArchAssignments(t *testing.T) {
	if MustLookup(Graviton).Arch != ARM {
		t.Error("Graviton should be ARM")
	}
	for _, k := range []Kind{Xeon25, Xeon29, Xeon30, EPYC, IBMCascade24, DOXeon26} {
		if MustLookup(k).Arch != X86 {
			t.Errorf("%v should be x86", k)
		}
	}
}

func TestMustLookupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustLookup(0) did not panic")
		}
	}()
	MustLookup(Kind(0))
}
