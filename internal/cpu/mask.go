package cpu

// Mask is a bitset over the catalogued Kinds. The routing hot path carries
// ban sets as Masks instead of map[Kind]bool so that issuing an invocation
// allocates nothing: a Mask is one word, fits in a register, and tests
// membership with a shift.
type Mask uint16

// MaskOf builds a mask containing the given kinds.
func MaskOf(kinds ...Kind) Mask {
	var m Mask
	for _, k := range kinds {
		m = m.Add(k)
	}
	return m
}

// MaskOfSet converts a ban map (the Strategy interface currency) to a Mask.
// A nil or empty map yields the zero Mask.
func MaskOfSet(set map[Kind]bool) Mask {
	var m Mask
	for k, banned := range set {
		if banned {
			m = m.Add(k)
		}
	}
	return m
}

// Add returns m with k set. Kinds outside the catalog are ignored.
func (m Mask) Add(k Kind) Mask {
	if k < Xeon25 || int(k) > numKinds {
		return m
	}
	return m | 1<<uint(k-1)
}

// Has reports whether k is in the mask.
func (m Mask) Has(k Kind) bool {
	if k < Xeon25 || int(k) > numKinds {
		return false
	}
	return m&(1<<uint(k-1)) != 0
}

// Empty reports whether no kind is set.
func (m Mask) Empty() bool { return m == 0 }

// Count returns the number of kinds set.
func (m Mask) Count() int {
	n := 0
	for v := m; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// Set materializes the mask as a ban map for interfaces that still speak
// map[Kind]bool. Returns nil for the empty mask. This is the slow-path
// bridge — never call it per invocation.
func (m Mask) Set() map[Kind]bool {
	if m == 0 {
		return nil
	}
	out := make(map[Kind]bool, m.Count())
	for k := Xeon25; int(k) <= numKinds; k++ {
		if m.Has(k) {
			out[k] = true
		}
	}
	return out
}
