// Package cpu catalogs the processor types observed behind serverless
// platforms in the paper (Fig. 2) and renders/parses the /proc/cpuinfo view
// a function instance sees.
//
// The catalog is the ground truth the rest of the system must *discover*:
// only the saaf profiler is allowed to look at a host's cpuinfo, exactly as
// the real SAAF tool infers hardware from inside a function instance.
package cpu

import (
	"fmt"
	"strings"
)

// Arch is an instruction-set architecture offered by a FaaS platform.
type Arch int

const (
	// X86 is the x86_64 architecture.
	X86 Arch = iota + 1
	// ARM is the arm64 (Graviton) architecture.
	ARM
)

// String returns the platform-facing architecture name.
func (a Arch) String() string {
	switch a {
	case X86:
		return "x86_64"
	case ARM:
		return "arm64"
	default:
		return fmt.Sprintf("Arch(%d)", int(a))
	}
}

// Kind identifies a processor model observed on a serverless platform.
type Kind int

// The catalog. AWS Lambda exposes four x86 CPU types (three Intel Xeons at
// 2.5/2.9/3.0 GHz and one AMD EPYC) plus Graviton for arm64 deployments;
// IBM Code Engine exposes two Cascade Lake Xeons; DigitalOcean Functions
// exposes two Xeons (Fig. 2, §4.2).
const (
	Xeon25       Kind = iota + 1 // Intel Xeon @ 2.50GHz — most prevalent on Lambda
	Xeon29                       // Intel Xeon @ 2.90GHz
	Xeon30                       // Intel Xeon @ 3.00GHz — fastest for most workloads
	EPYC                         // AMD EPYC — rare, slowest for compute-bound work
	Graviton                     // AWS Graviton2 (arm64 deployments only)
	IBMCascade24                 // Intel Cascade Lake @ 2.40GHz (IBM Code Engine)
	IBMCascade25                 // Intel Cascade Lake @ 2.50GHz (IBM Code Engine)
	DOXeon26                     // Intel Xeon @ 2.60GHz (DigitalOcean Functions)
	DOXeon27                     // Intel Xeon @ 2.70GHz (DigitalOcean Functions)

	numKinds = int(DOXeon27)
)

// Kinds lists every catalogued processor in a stable order.
func Kinds() []Kind {
	out := make([]Kind, 0, numKinds)
	for k := Xeon25; int(k) <= numKinds; k++ {
		out = append(out, k)
	}
	return out
}

// Info describes a catalogued processor.
type Info struct {
	Kind     Kind
	Vendor   string  // cpuinfo vendor_id
	Model    string  // cpuinfo "model name" string
	ClockGHz float64 // nominal clock as advertised in the model name
	Arch     Arch
}

var catalog = map[Kind]Info{
	Xeon25:       {Xeon25, "GenuineIntel", "Intel(R) Xeon(R) Processor @ 2.50GHz", 2.50, X86},
	Xeon29:       {Xeon29, "GenuineIntel", "Intel(R) Xeon(R) Processor @ 2.90GHz", 2.90, X86},
	Xeon30:       {Xeon30, "GenuineIntel", "Intel(R) Xeon(R) Processor @ 3.00GHz", 3.00, X86},
	EPYC:         {EPYC, "AuthenticAMD", "AMD EPYC", 2.65, X86},
	Graviton:     {Graviton, "ARM", "AWS Graviton2", 2.50, ARM},
	IBMCascade24: {IBMCascade24, "GenuineIntel", "Intel(R) Xeon(R) Cascade Lake @ 2.40GHz", 2.40, X86},
	IBMCascade25: {IBMCascade25, "GenuineIntel", "Intel(R) Xeon(R) Cascade Lake @ 2.50GHz", 2.50, X86},
	DOXeon26:     {DOXeon26, "GenuineIntel", "Intel(R) Xeon(R) CPU @ 2.60GHz", 2.60, X86},
	DOXeon27:     {DOXeon27, "GenuineIntel", "Intel(R) Xeon(R) CPU @ 2.70GHz", 2.70, X86},
}

// Lookup returns the catalog entry for k.
func Lookup(k Kind) (Info, bool) {
	info, ok := catalog[k]
	return info, ok
}

// MustLookup returns the catalog entry for k and panics if k is not
// catalogued; use only with compile-time-known kinds.
func MustLookup(k Kind) Info {
	info, ok := catalog[k]
	if !ok {
		panic(fmt.Sprintf("cpu: unknown kind %d", int(k)))
	}
	return info
}

// String returns a short stable label used in tables and figures,
// e.g. "Xeon 2.50GHz" or "AMD EPYC".
func (k Kind) String() string {
	info, ok := catalog[k]
	if !ok {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	switch k {
	case EPYC:
		return "AMD EPYC"
	case Graviton:
		return "Graviton2"
	default:
		return fmt.Sprintf("Xeon %.2fGHz", info.ClockGHz)
	}
}

// Valid reports whether k is a catalogued processor kind.
func (k Kind) Valid() bool {
	_, ok := catalog[k]
	return ok
}

// CPUInfo renders the /proc/cpuinfo content a guest with vcpus virtual CPUs
// would observe on a host backed by k. The format carries the fields the
// saaf profiler inspects (vendor_id, model name, cpu MHz).
func CPUInfo(k Kind, vcpus int) string {
	info, ok := catalog[k]
	if !ok {
		return ""
	}
	if vcpus < 1 {
		vcpus = 1
	}
	var b strings.Builder
	for i := 0; i < vcpus; i++ {
		fmt.Fprintf(&b, "processor\t: %d\n", i)
		fmt.Fprintf(&b, "vendor_id\t: %s\n", info.Vendor)
		fmt.Fprintf(&b, "model name\t: %s\n", info.Model)
		fmt.Fprintf(&b, "cpu MHz\t\t: %.3f\n", info.ClockGHz*1000)
		b.WriteString("\n")
	}
	return b.String()
}

// ParseCPUInfo infers the processor kind from a /proc/cpuinfo dump, the way
// SAAF does from inside a function instance. It returns the kind and the
// number of processors listed.
func ParseCPUInfo(cpuinfo string) (Kind, int, error) {
	var model string
	procs := 0
	for _, line := range strings.Split(cpuinfo, "\n") {
		switch {
		case strings.HasPrefix(line, "processor"):
			procs++
		case strings.HasPrefix(line, "model name") && model == "":
			if _, rest, ok := strings.Cut(line, ":"); ok {
				model = strings.TrimSpace(rest)
			}
		}
	}
	if model == "" {
		return 0, 0, fmt.Errorf("cpu: no model name in cpuinfo")
	}
	k, err := FromModel(model)
	if err != nil {
		return 0, 0, err
	}
	return k, procs, nil
}

// FromModel maps a cpuinfo model-name string back to a catalogued kind.
func FromModel(model string) (Kind, error) {
	for k, info := range catalog {
		if info.Model == model {
			return k, nil
		}
	}
	return 0, fmt.Errorf("cpu: unknown model %q", model)
}
