package cpu

import "testing"

func TestMaskBasics(t *testing.T) {
	var m Mask
	if !m.Empty() || m.Count() != 0 || m.Set() != nil {
		t.Fatal("zero mask not empty")
	}
	m = MaskOf(Xeon30, EPYC)
	if m.Empty() || m.Count() != 2 {
		t.Fatalf("count = %d, want 2", m.Count())
	}
	if !m.Has(Xeon30) || !m.Has(EPYC) || m.Has(Xeon25) {
		t.Errorf("membership wrong: %b", m)
	}
	// Adding twice is idempotent.
	if m.Add(EPYC) != m {
		t.Error("double add changed mask")
	}
}

func TestMaskCoversCatalog(t *testing.T) {
	// Every catalogued kind fits, and the round trip through Set preserves
	// membership exactly.
	var m Mask
	for _, k := range Kinds() {
		m = m.Add(k)
	}
	if m.Count() != len(Kinds()) {
		t.Fatalf("count = %d, want %d", m.Count(), len(Kinds()))
	}
	set := m.Set()
	if len(set) != len(Kinds()) {
		t.Fatalf("set size = %d", len(set))
	}
	if got := MaskOfSet(set); got != m {
		t.Errorf("round trip %b != %b", got, m)
	}
}

func TestMaskRejectsOutOfRange(t *testing.T) {
	var m Mask
	if got := m.Add(Kind(0)); got != 0 {
		t.Errorf("Add(0) = %b", got)
	}
	if got := m.Add(Kind(100)); got != 0 {
		t.Errorf("Add(100) = %b", got)
	}
	if m.Has(Kind(0)) || m.Has(Kind(100)) {
		t.Error("out-of-range membership")
	}
	// MaskOfSet ignores false entries.
	if got := MaskOfSet(map[Kind]bool{Xeon25: false, EPYC: true}); got != MaskOf(EPYC) {
		t.Errorf("MaskOfSet kept false entry: %b", got)
	}
}
