// Package clean is outside every rule's scope and free of violations; the
// golden test asserts it yields no findings.
package clean

import "time"

// Stamp may use the wall clock: clean is not a deterministic package.
func Stamp() time.Time { return time.Now() }
