module example.com/skylintfix

go 1.22
