// Package stats is a skylint fixture: slice-order accumulation is the
// deterministic pattern floatdet accepts.
package stats

// Mean is order-stable: it sums a slice, not a map.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
