// Package experiments is a skylint fixture: the maporder rule forbids
// map-iteration order and select case order from reaching sim-visible
// state (scheduling, traces, checksums) without an intervening sort.
package experiments

import (
	"sort"

	"example.com/skylintfix/internal/sim"
)

// Direct schedules straight out of a map range: event order inherits the
// randomized iteration order.
func Direct(delays map[string]int) {
	for name, d := range delays {
		_ = name
		sim.Schedule(d, func() {}) //want maporder
	}
}

// Leaked collects keys in iteration order and emits them without
// sorting: the taint pass follows keys out of the loop to the sink.
func Leaked(delays map[string]int) {
	var keys []string
	for k := range delays {
		keys = append(keys, k)
	}
	sim.Send(keys) //want maporder
}

// Sorted is the blessed idiom — collect, sort, then emit — and must stay
// clean.
func Sorted(delays map[string]int) {
	var keys []string
	for k := range delays {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sim.Send(keys)
}

// Race triggers an event from whichever select case wins the ready race.
func Race(a, b chan string) {
	for i := 0; i < 2; i++ {
		select {
		case v := <-a:
			sim.Trigger(v) //want maporder
		case v := <-b:
			sim.Trigger(v) //want maporder
		}
	}
}
