// Package lockb is a skylint fixture: the B side of a cross-package
// lock-order cycle with locka.
package lockb

import (
	"sync"

	"example.com/skylintfix/internal/locka"
)

// Mu is the B-side mutex.
var Mu sync.Mutex

// Poke acquires and releases Mu.
func Poke() {
	Mu.Lock()
	Mu.Unlock()
}

// BThenA locks B, then calls into locka, which locks A: the B→A half of
// the cycle, visible only through the transitive acquire summary.
func BThenA() {
	Mu.Lock()
	locka.PokeA() //want lockorder
	Mu.Unlock()
}
