// Package tenant is a skylint fixture: the real registry serves both the
// live skyd (wall time) and EX-10 (virtual time), so every quota/budget
// decision takes an explicit `now` from the caller (nodeterm), and as a
// server-side package it must not leak unjoined goroutines (ctxgo).
package tenant

import (
	"sync"
	"time"
)

// Acquire stamps the lease off the wall clock — forbidden: the caller
// passes now, real for skyd, virtual for experiments.
func Acquire() time.Time {
	return time.Now() //want nodeterm
}

// AcquireAt is the correct shape: explicit now from the caller.
func AcquireAt(now time.Time) time.Time {
	return now
}

// Expire fires an unjoined background sweep — forbidden: the goroutine
// holds registry state with no cancellation or join path.
func Expire() {
	go func() { //want ctxgo
		var n int
		n++
		_ = n
	}()
}

// ExpireJoined is fine: the sweep is joined before return.
func ExpireJoined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}
