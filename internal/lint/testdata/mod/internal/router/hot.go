// Package router is a skylint fixture: the hotalloc rule proves that
// //lint:hotpath functions and everything they transitively call stay
// allocation-free, reporting the call chain from the annotated root.
package router

import (
	"fmt"

	"example.com/skylintfix/internal/hotutil"
)

type table struct {
	n     int
	names []string
}

// Pick is an annotated hot root: every allocation in it, and in anything
// it calls, is a finding.
//
//lint:hotpath
func (t *table) Pick(i int) int {
	m := map[string]int{"a": 1}      //want hotalloc
	t.names = append(t.names, "x")   //want hotalloc
	msg := fmt.Sprintf("pick %d", i) //want hotalloc
	cb := func() { t.n++ }           //want hotalloc
	cb()
	_ = m
	_ = msg
	return t.grow(i)
}

// grow is not annotated but is reachable from Pick, so its allocations
// are reported with the Pick → grow chain.
func (t *table) grow(i int) int {
	label := "n" + t.names[0] //want hotalloc
	box(label)                //want hotalloc
	return hotutil.Pad(i)
}

// box takes an interface: concrete arguments passed to it from a hot
// path are flagged as boxing at the call site, but box itself is clean.
func box(v any) { _ = v }

// Warm is a hot root whose cold setup is exempted at the call site: the
// allow both suppresses the line and stops traversal into prime.
//
//lint:hotpath
func (t *table) Warm() {
	t.prime() //lint:allow hotalloc -- fixture: one-time warm-up off the steady state
	t.n++
}

// prime allocates freely; it is only reachable through the allowed site.
func (t *table) prime() {
	t.names = make([]string, 0, 8)
}
