// Package hotutil is a skylint fixture helper reached from the router
// fixture's //lint:hotpath roots: the hotalloc finding below must carry a
// call chain that crosses this package boundary.
package hotutil

var buf []int

// Pad grows a package-level buffer. It is not annotated itself; it is
// hot only because (router.table).Pick reaches it.
func Pad(i int) int {
	buf = append(buf, i) //want hotalloc
	return len(buf)
}
