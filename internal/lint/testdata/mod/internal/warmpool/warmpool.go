// Package warmpool is a skylint fixture: the real maintainer's forecasts
// must be pure functions of observed arrivals and virtual time (nodeterm —
// a wall-clock read would desync replays and shard counts), and its control
// loop lives inside the simulation, so any real goroutine it spawned would
// outlive the run holding pool state (ctxgo).
package warmpool

import (
	"sync"
	"time"
)

// Forecast samples the wall clock to pick a seasonal bucket — forbidden:
// virtual time comes from sim.Env, passed in by the caller.
func Forecast() time.Time {
	return time.Now() //want nodeterm
}

// ForecastAt is the correct shape: explicit virtual now from the caller.
func ForecastAt(now time.Time) time.Time {
	return now
}

// Tick launches an unjoined actuation goroutine — forbidden: the control
// loop runs as simulation events, never as free-running goroutines.
func Tick() {
	go func() { //want ctxgo
		var n int
		n++
		_ = n
	}()
}

// TickJoined is fine: the actuation is joined before return.
func TickJoined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}
