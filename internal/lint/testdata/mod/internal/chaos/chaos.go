// Package chaos is a skylint fixture: fault injection must be a pure
// function of sim time and seeded RNG (nodeterm), and must never leak a
// goroutine past the injector (ctxgo).
package chaos

import (
	"math/rand"
	"time"
)

// Window schedules a fault window off the wall clock — forbidden: windows
// must anchor to the sim.Env virtual clock.
func Window() time.Time {
	return time.Now().Add(time.Minute) //want nodeterm
}

// Magnitude draws storm strength from the process-global RNG instead of a
// seeded, named stream.
func Magnitude() float64 {
	return rand.Float64() //want nodeterm
}

// Arm spawns an unjoined goroutine to flip the fault — forbidden: fault
// transitions belong on the simulation event queue.
func Arm(fire func()) {
	go func() { //want ctxgo
		fire()
	}()
}
