// Package admission is a skylint fixture: the overload-control gate serves
// both the live skyd (wall time) and EX-8 (virtual time), so every decision
// takes an explicit `now` from the caller — the package itself must never
// read a clock (nodeterm).
package admission

import (
	"math/rand"
	"time"
)

// Admit stamps the ticket off the wall clock — forbidden: the caller passes
// now, real for skyd, virtual for experiments.
func Admit() time.Time {
	return time.Now() //want nodeterm
}

// RetryJitter spreads Retry-After hints with global randomness — forbidden:
// schedule-dependent draws make same-seed runs diverge.
func RetryJitter(base time.Duration) time.Duration {
	return base + time.Duration(rand.Int63n(int64(base))) //want nodeterm
}
