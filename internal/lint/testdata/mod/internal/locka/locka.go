// Package locka is a skylint fixture: the A side of a cross-package
// lock-order cycle (closed by lockb and lockc), plus an in-package
// field-mutex cycle on pair.
package locka

import "sync"

// Mu is the A-side mutex of the cross-package cycle.
var Mu sync.Mutex

// PokeA acquires and releases Mu; a caller holding another lock creates
// an order edge into it.
func PokeA() {
	Mu.Lock()
	Mu.Unlock()
}

// pair carries two mutexes that the methods below lock in both orders.
type pair struct {
	a sync.Mutex
	b sync.Mutex
}

// AB nests b under a.
func (p *pair) AB() {
	p.a.Lock()
	p.b.Lock() //want lockorder
	p.b.Unlock()
	p.a.Unlock()
}

// BA nests a under b: together with AB this can deadlock.
func (p *pair) BA() {
	p.b.Lock()
	p.a.Lock() //want lockorder
	p.a.Unlock()
	p.b.Unlock()
}
