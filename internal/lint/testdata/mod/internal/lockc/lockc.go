// Package lockc is a skylint fixture: it closes the cross-package cycle
// by taking locka.Mu before lockb's mutex.
package lockc

import (
	"example.com/skylintfix/internal/locka"
	"example.com/skylintfix/internal/lockb"
)

// AThenB locks A, then calls into lockb, which locks B: the A→B edge
// that makes lockb's B→A edge a cycle.
func AThenB() {
	locka.Mu.Lock()
	lockb.Poke() //want lockorder
	locka.Mu.Unlock()
}
