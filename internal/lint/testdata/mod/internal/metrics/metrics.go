// Package metrics is a skylint fixture standing in for the real
// instrumentation package: handles must stay nil-safe outside it.
package metrics

// Counter is a nil-safe handle.
type Counter struct{ n uint64 }

// Inc is a no-op on a nil handle.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.n++
}

// New constructs a handle; composite literals are fine inside the package.
func New() *Counter {
	return &Counter{}
}
