package cloudsim

import "errors"

// ErrBoom is the sentinel fixture errors must wrap.
var ErrBoom = errors.New("cloudsim: boom")
