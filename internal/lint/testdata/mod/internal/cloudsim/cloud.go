package cloudsim

import (
	"errors"
	"fmt"
)

// Deploy exercises the sentinelerr rule: leaf errors outside errors.go.
func Deploy(name string) error {
	if name == "" {
		return fmt.Errorf("cloudsim: empty deployment name") //want sentinelerr
	}
	if name == "dup" {
		return errors.New("cloudsim: duplicate deployment") //want sentinelerr
	}
	return fmt.Errorf("%w: %s", ErrBoom, name)
}
