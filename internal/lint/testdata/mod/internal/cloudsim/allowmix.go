// allowmix exercises //lint:allow edge cases: one comment naming several
// rules, allows naming the wrong or a misspelled rule, and an allow that
// forgot the rule entirely.
package cloudsim

import (
	"math/rand"
	"time"
)

// Mixed accumulates from the global RNG across map order; the one
// multi-rule allow suppresses both findings.
func Mixed(samples map[string]float64) float64 {
	total := 0.0
	for k := range samples {
		_ = k
		total += rand.Float64() //lint:allow floatdet,nodeterm -- fixture: multi-rule allow
	}
	return total
}

// Typo misspells the rule name: the allow suppresses nothing and is
// itself a badallow finding.
func Typo() time.Time {
	return time.Now() //lint:allow nodetermm -- fixture: typo //want badallow,nodeterm
}

// Bare forgot the rule name entirely.
func Bare() time.Time {
	return time.Now() //lint:allow -- fixture: forgot the rule //want badallow,nodeterm
}

// Wrong names a real rule that does not fire on this line: unused allows
// are not errors, but they do not suppress the rule that does fire.
func Wrong() time.Time {
	return time.Now() //lint:allow floatdet -- fixture: wrong rule for this line //want nodeterm
}
