package cloudsim

import (
	"sort"
	"sync"
)

// Meter mirrors the billing meter: a mutex-guarded spend ledger.
type Meter struct {
	mu sync.Mutex
	// byLabel is spend per label; guarded by mu.
	byLabel map[string]float64
}

// Total sums spend without holding mu and in map order: two bugs at once.
func (m *Meter) Total() float64 {
	var sum float64
	for _, v := range m.byLabel { //want mutexheld
		sum += v //want floatdet
	}
	return sum
}

// SortedTotal is the clean pattern: lock held, keys sorted before summing.
func (m *Meter) SortedTotal() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	keys := make([]string, 0, len(m.byLabel))
	for k := range m.byLabel {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += m.byLabel[k]
	}
	return sum
}
