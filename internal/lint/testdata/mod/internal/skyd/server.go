// Package skyd is a skylint fixture for the ctxgo and nilmetrics rules.
package skyd

import (
	"context"
	"sync"

	"example.com/skylintfix/internal/metrics"
)

// Fire leaks: no join or cancellation path in scope.
func Fire() {
	go func() { //want ctxgo
		var n int
		n++
		_ = n
	}()
}

// FireCtx is fine: cancellation is in scope.
func FireCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// FireJoin is fine: a WaitGroup joins the goroutine.
func FireJoin() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

// Handle builds a handle directly, defeating nil-registry no-op mode.
func Handle() *metrics.Counter {
	c := metrics.Counter{} //want nilmetrics
	return &c
}

// Read dereferences a possibly-nil handle.
func Read(c *metrics.Counter) metrics.Counter {
	return *c //want nilmetrics
}
