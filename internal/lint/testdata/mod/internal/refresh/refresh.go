// Package refresh is a skylint fixture: the characterization maintenance
// loop must be a pure function of sim time — urgency, cooldowns, and budget
// accrual all anchor to the sim.Env virtual clock (nodeterm).
package refresh

import "time"

// Staleness ages a characterization off the wall clock — forbidden: age is
// sim-time elapsed since the stored Taken stamp.
func Staleness(taken time.Time) time.Duration {
	return time.Since(taken) //want nodeterm
}

// NextTick schedules the control loop with a host timer — forbidden: ticks
// belong on the simulation event queue via Env.Schedule.
func NextTick(fire func()) {
	time.AfterFunc(time.Minute, fire) //want nodeterm
}
