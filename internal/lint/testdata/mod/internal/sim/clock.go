// Package sim is a skylint fixture: the nodeterm rule bans wall-clock and
// global-RNG calls in this package.
package sim

import (
	"math/rand"
	"time"
)

// WallClock reads the host clock inside the deterministic kernel.
func WallClock() time.Time {
	return time.Now() //want nodeterm
}

// Pace sleeps on the wall clock but is annotated as intentional.
func Pace() {
	time.Sleep(time.Millisecond) //lint:allow nodeterm -- fixture: intentional pacing
}

// Tick arms a ticker, allowed by a standalone comment on the line above.
func Tick() *time.Ticker {
	//lint:allow nodeterm -- fixture: standalone allow
	return time.NewTicker(time.Second)
}

// Jitter draws from the process-global RNG.
func Jitter() float64 {
	return rand.Float64() //want nodeterm
}

// Delay arms a wall-clock timer.
func Delay() <-chan time.Time {
	return time.After(time.Second) //want nodeterm
}
