package sim

// Schedule, Trigger, and Send mimic the real kernel's scheduling surface
// for the maporder fixture: feeding them map-ordered or select-ordered
// data breaks replay determinism.

// Schedule registers a callback after a delay.
func Schedule(after int, fn func()) { _ = after; _ = fn }

// Trigger fires a named event immediately.
func Trigger(name string) { _ = name }

// Send enqueues a batch of values in order.
func Send(vals []string) { _ = vals }
