package lint

import "go/ast"

// nodetermScope lists the packages whose runs must be pure functions of the
// model and its RNG seeds: virtual time comes from sim.Env and randomness
// from seeded internal/rng streams, never from the process environment.
var nodetermScope = []string{
	"internal/sim",
	"internal/cloudsim",
	"internal/chaos",
	"internal/faas",
	"internal/router",
	"internal/experiments",
	"internal/refresh",
	"internal/admission",
	"internal/load",
	"internal/tenant",
	"internal/warmpool",
}

// nodetermTimeFuncs are the wall-clock entry points of package time that
// leak host scheduling into a simulation run.
var nodetermTimeFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"Since":     true,
	"Until":     true,
}

var nodetermAnalyzer = &Analyzer{
	Name: "nodeterm",
	Doc:  "forbid wall-clock time and global math/rand in deterministic simulation packages",
	Run:  runNodeterm,
}

func runNodeterm(p *Pass) {
	if !pkgInScope(p.Pkg.Path, nodetermScope) {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, ok := importedPkg(p.Pkg.Info, sel.X)
			if !ok {
				return true
			}
			switch pkgPath {
			case "time":
				if nodetermTimeFuncs[sel.Sel.Name] {
					p.Reportf(sel.Pos(),
						"time.%s reads the wall clock and breaks replayability; use the sim.Env virtual clock (Env.Now, Proc.Sleep, Env.Schedule)",
						sel.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				p.Reportf(sel.Pos(),
					"rand.%s draws from global, schedule-dependent state; use a seeded internal/rng stream",
					sel.Sel.Name)
			}
			return true
		})
	}
}
