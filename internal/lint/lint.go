// Package lint implements skylint, the project's static-analysis pass.
//
// The paper's tables are reproducible only because the simulation stack is
// deterministic (virtual time from sim.Env, seeded streams from
// internal/rng) and race-clean. go vet cannot express those invariants, so
// this package checks them mechanically: a small analyzer framework on
// go/ast + go/parser + go/types (standard library only — go.mod stays
// dependency-free) plus a registry of project-specific rules.
//
// A finding is reported as "file:line: [rule] message" with the file path
// relative to the module root. Individual call sites that are intentionally
// exempt carry an escape comment, either trailing the offending line or on
// the line directly above it:
//
//	time.Sleep(gap) //lint:allow nodeterm -- pacing demos against the wall clock
//
// The comment names one rule (or a comma-separated list) and everything
// after it is a free-form justification. Adding a new analyzer means adding
// one file defining an *Analyzer and listing it in Analyzers.
package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one rule violation at a specific source position.
type Finding struct {
	File string // module-root-relative, slash-separated
	Line int
	Rule string
	Msg  string
}

// String renders the canonical "file:line: [rule] message" form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Rule, f.Msg)
}

// Analyzer checks one invariant. Per-package analyzers set Run, which is
// invoked once per package; module-level analyzers (those needing the call
// graph or cross-package state) set RunModule, which is invoked exactly
// once with Pass.Pkg == nil. Exactly one of the two must be set.
type Analyzer struct {
	Name      string // rule name used in findings and //lint:allow comments
	Doc       string // one-line description of the invariant protected
	Run       func(*Pass)
	RunModule func(*Pass)
}

// Pass hands one analyzer one package (nil for RunModule), plus a sink for
// findings.
type Pass struct {
	Mod      *Module
	Pkg      *Package
	analyzer *Analyzer
	findings *[]rawFinding
}

type rawFinding struct {
	pos  token.Position
	rule string
	msg  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, rawFinding{
		pos:  p.Mod.Fset.Position(pos),
		rule: p.analyzer.Name,
		msg:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full rule registry.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		ctxgoAnalyzer,
		floatdetAnalyzer,
		hotallocAnalyzer,
		lockorderAnalyzer,
		maporderAnalyzer,
		mutexheldAnalyzer,
		nilmetricsAnalyzer,
		nodetermAnalyzer,
		sentinelerrAnalyzer,
	}
}

// BadAllowRule is the pseudo-rule under which malformed //lint:allow
// comments are reported. It is a framework check, not a registered
// analyzer: a typo'd rule name silently suppresses nothing, which is worse
// than a loud finding, so Run always emits these regardless of which
// analyzers were selected.
const BadAllowRule = "badallow"

// Run applies analyzers to every package of mod and returns the surviving
// findings — deduplicated, with //lint:allow suppressions applied — sorted
// by file, line, and rule.
func Run(mod *Module, analyzers []*Analyzer) []Finding {
	var raw []rawFinding
	for _, a := range analyzers {
		if a.RunModule != nil {
			a.RunModule(&Pass{Mod: mod, analyzer: a, findings: &raw})
		}
	}
	for _, pkg := range mod.Pkgs {
		for _, a := range analyzers {
			if a.Run != nil {
				a.Run(&Pass{Mod: mod, Pkg: pkg, analyzer: a, findings: &raw})
			}
		}
	}

	allows := mod.Allows()
	raw = append(raw, mod.allowErrs...)
	seen := make(map[Finding]bool)
	var out []Finding
	for _, r := range raw {
		if allows.allowed(r.pos.Filename, r.pos.Line, r.rule) {
			continue
		}
		rel := r.pos.Filename
		if p, err := filepath.Rel(mod.Dir, rel); err == nil {
			rel = filepath.ToSlash(p)
		}
		f := Finding{File: rel, Line: r.pos.Line, Rule: r.rule, Msg: r.msg}
		if seen[f] {
			continue
		}
		seen[f] = true
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	return out
}

// ---------------------------------------------------------------------------
// //lint:allow escape comments

const allowPrefix = "//lint:allow"

// allowSet records which rules are suppressed on which lines of which files.
type allowSet map[string]map[int]map[string]bool // file -> line -> rule

func (s allowSet) allowed(file string, line int, rule string) bool {
	return s[file][line][rule]
}

func (s allowSet) add(file string, line int, rule string) {
	lines, ok := s[file]
	if !ok {
		lines = make(map[int]map[string]bool)
		s[file] = lines
	}
	rules, ok := lines[line]
	if !ok {
		rules = make(map[string]bool)
		lines[line] = rules
	}
	rules[rule] = true
}

// Allows returns (memoized) the module's //lint:allow suppression set. A
// directive suppresses the named rules on its own line (trailing comment)
// and on the line directly below it (standalone comment above a statement).
// Malformed directives — an unknown rule name, or no rule at all — are
// recorded as BadAllowRule findings that Run reports: a typo'd allow
// comment must fail lint, not silently suppress nothing.
func (m *Module) Allows() allowSet {
	if m.allows != nil {
		return m.allows
	}
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	known[BadAllowRule] = true

	set := make(allowSet)
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, allowPrefix)
					if !ok {
						continue
					}
					pos := m.Fset.Position(c.Pos())
					fields := strings.Fields(rest)
					// "//lint:allow -- reason" forgot the rule list.
					if len(fields) == 0 || fields[0] == "--" {
						m.allowErrs = append(m.allowErrs, rawFinding{
							pos:  pos,
							rule: BadAllowRule,
							msg:  "//lint:allow names no rule; write //lint:allow <rule>[,<rule>] -- reason",
						})
						continue
					}
					for _, rule := range strings.Split(fields[0], ",") {
						if rule == "" {
							continue
						}
						if !known[rule] {
							m.allowErrs = append(m.allowErrs, rawFinding{
								pos:  pos,
								rule: BadAllowRule,
								msg:  fmt.Sprintf("//lint:allow names unknown rule %q, so it suppresses nothing (run skylint -list for rule names)", rule),
							})
							continue
						}
						set.add(pos.Filename, pos.Line, rule)
						set.add(pos.Filename, pos.Line+1, rule)
					}
				}
			}
		}
	}
	m.allows = set
	return set
}

// ---------------------------------------------------------------------------
// Shared analyzer helpers

// pkgInScope reports whether a package import path falls under any of the
// scope entries (each a module-relative path like "internal/sim"): either
// the path ends with the entry or the entry names one of its ancestors.
func pkgInScope(path string, scope []string) bool {
	for _, s := range scope {
		if path == s || strings.HasSuffix(path, "/"+s) ||
			strings.Contains(path, "/"+s+"/") || strings.HasPrefix(path, s+"/") {
			return true
		}
	}
	return false
}
