package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// mutexheld enforces "guarded by <mu>" field annotations: a struct field
// whose doc or line comment says it is guarded by a sibling mutex field may
// only be touched inside functions that lock that mutex on the same base
// expression. The check is a per-function-body heuristic — it looks for a
// <base>.<mu>.Lock() or <base>.<mu>.RLock() call anywhere in the enclosing
// function, not for a dominating lock — which is exactly strong enough to
// catch the "forgot to lock at all" class of race without a full
// happens-before analysis.
var mutexheldAnalyzer = &Analyzer{
	Name: "mutexheld",
	Doc:  "fields documented as 'guarded by <mu>' are only accessed under that mutex",
	Run:  runMutexheld,
}

var guardedByRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

func runMutexheld(p *Pass) {
	guarded := collectGuarded(p)
	if len(guarded) == 0 {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			locked := lockedMutexes(fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				structName, ok := localStructOf(p, sel.X)
				if !ok {
					return true
				}
				mu, ok := guarded[structName][sel.Sel.Name]
				if !ok {
					return true
				}
				key := types.ExprString(sel.X) + "." + mu
				if !locked[key] {
					p.Reportf(sel.Pos(),
						"%s.%s is guarded by %s but this function never locks %s", structName, sel.Sel.Name, mu, key)
				}
				return true
			})
		}
	}
}

// collectGuarded scans struct declarations for fields annotated
// "guarded by <mu>", keyed by struct type name then field name.
func collectGuarded(p *Pass) map[string]map[string]string {
	guarded := make(map[string]map[string]string)
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					text := field.Doc.Text() + " " + field.Comment.Text()
					m := guardedByRe.FindStringSubmatch(text)
					if m == nil {
						continue
					}
					for _, name := range field.Names {
						if guarded[ts.Name.Name] == nil {
							guarded[ts.Name.Name] = make(map[string]string)
						}
						guarded[ts.Name.Name][name.Name] = m[1]
					}
				}
			}
		}
	}
	return guarded
}

// lockedMutexes returns the set of "<base>.<mu>" expressions on which body
// calls Lock or RLock.
func lockedMutexes(body *ast.BlockStmt) map[string]bool {
	locked := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		if mu, ok := sel.X.(*ast.SelectorExpr); ok {
			locked[types.ExprString(mu.X)+"."+mu.Sel.Name] = true
		}
		return true
	})
	return locked
}

// localStructOf resolves x to the name of a struct type declared in the
// package under analysis (annotations are package-local).
func localStructOf(p *Pass, x ast.Expr) (string, bool) {
	tv, ok := p.Pkg.Info.Types[x]
	if !ok {
		return "", false
	}
	named, ok := namedType(tv.Type)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg() != p.Pkg.Types {
		return "", false
	}
	return obj.Name(), true
}
