package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floatdetScope: packages whose float aggregates feed the paper's tables.
// Go randomizes map iteration order per process, and float addition is not
// associative, so accumulating over a map range perturbs low-order bits
// between otherwise identical runs.
var floatdetScope = []string{
	"internal/stats",
	"internal/cloudsim",
}

var floatdetAnalyzer = &Analyzer{
	Name: "floatdet",
	Doc:  "no float accumulation over map iteration order; sort the keys first",
	Run:  runFloatdet,
}

func runFloatdet(p *Pass) {
	if !pkgInScope(p.Pkg.Path, floatdetScope) {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := p.Pkg.Info.Types[rng.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			iterObjs := rangeVarObjects(p, rng)
			ast.Inspect(rng.Body, func(inner ast.Node) bool {
				a, ok := inner.(*ast.AssignStmt)
				if !ok {
					return true
				}
				switch a.Tok {
				case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				default:
					return true
				}
				for _, lhs := range a.Lhs {
					if !isFloat(p.Pkg.Info.Types[lhs].Type) {
						continue
					}
					// Per-element updates (LHS indexed by the iteration
					// variables) are order-independent; only accumulators
					// that outlive the loop are flagged.
					if exprUsesObjects(p, lhs, iterObjs) {
						continue
					}
					p.Reportf(a.Pos(),
						"float accumulation across map iteration order is nondeterministic; collect the keys, sort them, then sum in key order")
				}
				return true
			})
			return true
		})
	}
}

// rangeVarObjects returns the types.Objects of the range statement's key
// and value variables.
func rangeVarObjects(p *Pass, rng *ast.RangeStmt) map[types.Object]bool {
	objs := make(map[types.Object]bool)
	for _, expr := range []ast.Expr{rng.Key, rng.Value} {
		id, ok := expr.(*ast.Ident)
		if !ok {
			continue
		}
		if obj := p.Pkg.Info.Defs[id]; obj != nil {
			objs[obj] = true
		}
		if obj := p.Pkg.Info.Uses[id]; obj != nil {
			objs[obj] = true
		}
	}
	return objs
}

// exprUsesObjects reports whether any identifier in expr resolves to one of
// the given objects.
func exprUsesObjects(p *Pass, expr ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := p.Pkg.Info.Uses[id]; obj != nil && objs[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}
