package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// This file is the second half of the module-level analysis layer: a
// module-wide call graph keyed by *types.Func. Per-package AST walks
// cannot see that router.Burst reaches fmt.Sprintf four frames down in
// another package; the call graph can, and the module-level analyzers
// (hotalloc, lockorder) traverse it. Only statically resolvable callees
// are recorded — direct function calls and method calls whose callee
// identifier resolves to a *types.Func. Interface dispatch and calls
// through function values are invisible here by construction; the rules
// that rely on the graph treat those as analysis boundaries and flag the
// boxing/closure at the call site instead (see hotalloc.go).

// FuncNode is one declared function or method of the module.
type FuncNode struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Calls lists statically resolved call sites in source order,
	// including those inside function literals (attributed to the
	// enclosing declaration).
	Calls []CallSite
}

// CallSite is one resolved call expression inside a FuncNode.
type CallSite struct {
	Call *ast.CallExpr
	// Callee may belong to any package, including the standard library;
	// it has a FuncNode only when declared in this module.
	Callee *types.Func
}

// CallGraph indexes every function declaration of the module.
type CallGraph struct {
	// Funcs maps a declared function to its node.
	Funcs map[*types.Func]*FuncNode
	// Ordered lists the nodes sorted by source position, for deterministic
	// traversal (map iteration over Funcs must never decide output order).
	Ordered []*FuncNode
}

// Node returns the module-internal node for fn, if fn is declared here.
func (g *CallGraph) Node(fn *types.Func) (*FuncNode, bool) {
	n, ok := g.Funcs[fn]
	return n, ok
}

// CallGraph builds (once, memoized) the module-wide call graph.
func (m *Module) CallGraph() *CallGraph {
	if m.callgraph != nil {
		return m.callgraph
	}
	g := &CallGraph{Funcs: make(map[*types.Func]*FuncNode)}
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Obj: obj, Decl: fd, Pkg: pkg}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if callee := staticCallee(pkg.Info, call); callee != nil {
						node.Calls = append(node.Calls, CallSite{Call: call, Callee: callee})
					}
					return true
				})
				g.Funcs[obj] = node
				g.Ordered = append(g.Ordered, node)
			}
		}
	}
	sort.Slice(g.Ordered, func(i, j int) bool {
		return g.Ordered[i].Decl.Pos() < g.Ordered[j].Decl.Pos()
	})
	m.callgraph = g
	return g
}

// FuncCFG builds (memoized) the CFG for one declared function.
func (m *Module) FuncCFG(fd *ast.FuncDecl) *CFG {
	if m.cfgs == nil {
		m.cfgs = make(map[*ast.FuncDecl]*CFG)
	}
	if c, ok := m.cfgs[fd]; ok {
		return c
	}
	c := BuildCFG(fd.Body)
	m.cfgs[fd] = c
	return c
}

// staticCallee resolves the target of a call expression to a *types.Func,
// or nil when the callee is dynamic (function value, interface method
// through a non-selector path) or a type conversion / builtin.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// FuncDisplayName renders fn as "pkg.Name" or "(pkg.Recv).Name" for
// findings, using the last import-path element as the package qualifier.
func FuncDisplayName(fn *types.Func) string {
	pkg := ""
	if p := fn.Pkg(); p != nil {
		pkg = shortPkg(p.Path())
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		recv := sig.Recv().Type()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		if named, ok := recv.(*types.Named); ok {
			return "(" + pkg + "." + named.Obj().Name() + ")." + fn.Name()
		}
	}
	if pkg == "" {
		return fn.Name()
	}
	return pkg + "." + fn.Name()
}

// shortPkg returns the last element of an import path.
func shortPkg(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
