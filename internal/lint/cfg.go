package lint

import (
	"go/ast"
	"go/token"
)

// This file is the first half of skylint's second analysis layer: a
// control-flow graph over function bodies. The per-statement analyzers
// (nodeterm, floatdet, ...) inspect the AST in lexical order, which cannot
// answer questions like "is this slice sorted before it reaches the event
// queue?" or "which mutexes are held at this call site?". The CFG answers
// them: a function body becomes basic blocks of straight-line statements
// connected by successor edges, and analyses run classic forward-dataflow
// worklists over the blocks (see maporder.go and lockorder.go).
//
// The builder decomposes structured statements — if/for/range/switch/
// select, break/continue/return, defer — into blocks. Block.Nodes holds
// only the atomic statements and expressions evaluated in that block;
// nested control flow lives in its own blocks, so an analysis can
// ast.Inspect a block's nodes without crossing a branch. goto and labeled
// branches conservatively terminate the current path: they are absent from
// this codebase, and "no successors" can only suppress dataflow findings
// downstream of them, never invent one on code that cannot run.

// Block is one basic block of a CFG: statements that execute straight
// through, then a transfer to one of Succs.
type Block struct {
	Index int
	// Nodes are the atomic statements/expressions evaluated in this block,
	// in execution order. Control statements are decomposed: an if's
	// condition lands here, its branches in successor blocks.
	Nodes []ast.Node
	// Range is set on a range loop's head block (the loop re-enters here);
	// Nodes then holds the ranged expression.
	Range *ast.RangeStmt
	// Comm is set on a select case's entry block: the clause's
	// communication statement (nil for default clauses).
	Comm ast.Stmt
	// NCases is set on the block evaluating a select statement: the number
	// of communication clauses (default excluded). A value >= 2 means the
	// runtime chooses among simultaneously ready cases pseudorandomly.
	NCases int
	Succs  []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Entry  *Block
	Blocks []*Block // all blocks, in creation (roughly source) order
	// Defers lists deferred calls in source order; they run at every
	// function exit in LIFO order.
	Defers []*ast.CallExpr
}

// BuildCFG decomposes a function body into basic blocks. The body is not
// mutated; blocks reference the original AST nodes.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}}
	b.cur = b.newBlock()
	b.cfg.Entry = b.cur
	b.stmt(body)
	return b.cfg
}

type loopFrame struct {
	head  *Block // continue target
	after *Block // break target
}

type cfgBuilder struct {
	cfg   *CFG
	cur   *Block // nil while the current path is terminated (return/branch)
	loops []loopFrame
	// switches tracks break targets for switch/select statements.
	switches []*Block
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// startFrom creates a new block with an edge from each non-nil pred.
func (b *cfgBuilder) startFrom(preds ...*Block) *Block {
	blk := b.newBlock()
	for _, p := range preds {
		if p != nil {
			p.Succs = append(p.Succs, blk)
		}
	}
	return blk
}

// add appends an atomic node to the current block (no-op on a dead path).
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur != nil && n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	if b.cur == nil && s != nil {
		// Dead code after return/break: give it its own unreachable block so
		// its nodes still exist for lexical passes, without predecessors.
		b.cur = b.newBlock()
	}
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, inner := range s.List {
			b.stmt(inner)
		}
	case *ast.IfStmt:
		b.add(s.Init)
		b.add(s.Cond)
		cond := b.cur
		b.cur = b.startFrom(cond)
		b.stmt(s.Body)
		thenEnd := b.cur
		elseEnd := cond
		if s.Else != nil {
			b.cur = b.startFrom(cond)
			b.stmt(s.Else)
			elseEnd = b.cur
		}
		if thenEnd == nil && elseEnd == nil {
			b.cur = nil
			return
		}
		b.cur = b.startFrom(thenEnd, elseEnd)
	case *ast.ForStmt:
		b.add(s.Init)
		head := b.startFrom(b.cur)
		head.Nodes = append(head.Nodes, nilFree(s.Cond)...)
		after := b.newBlock()
		if s.Cond != nil {
			head.Succs = append(head.Succs, after)
		}
		b.loops = append(b.loops, loopFrame{head: head, after: after})
		b.cur = b.startFrom(head)
		b.stmt(s.Body)
		b.add(s.Post)
		if b.cur != nil {
			b.cur.Succs = append(b.cur.Succs, head)
		}
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = after
	case *ast.RangeStmt:
		head := b.startFrom(b.cur)
		head.Range = s
		head.Nodes = append(head.Nodes, s.X)
		after := b.startFrom(head)
		b.loops = append(b.loops, loopFrame{head: head, after: after})
		b.cur = b.startFrom(head)
		b.stmt(s.Body)
		if b.cur != nil {
			b.cur.Succs = append(b.cur.Succs, head)
		}
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = after
	case *ast.SwitchStmt:
		b.add(s.Init)
		b.add(s.Tag)
		b.caseClauses(s.Body, false)
	case *ast.TypeSwitchStmt:
		b.add(s.Init)
		b.add(s.Assign)
		b.caseClauses(s.Body, false)
	case *ast.SelectStmt:
		b.caseClauses(s.Body, true)
	case *ast.LabeledStmt:
		b.stmt(s.Stmt)
	case *ast.ReturnStmt:
		b.add(s)
		b.cur = nil
	case *ast.BranchStmt:
		b.add(s)
		b.branch(s)
	case *ast.DeferStmt:
		b.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s.Call)
	default:
		// Atomic statements: assignments, expressions, declarations, sends,
		// inc/dec, go, empty.
		b.add(s)
	}
}

// caseClauses builds blocks for switch/type-switch (*ast.CaseClause) or
// select (*ast.CommClause) bodies hanging off the current block.
func (b *cfgBuilder) caseClauses(body *ast.BlockStmt, isSelect bool) {
	tag := b.cur
	after := b.newBlock()
	b.switches = append(b.switches, after)
	hasDefault := false
	var ends []*Block
	var prevBody *Block // fallthrough source (switch only)
	comms := 0
	for _, raw := range body.List {
		blk := b.startFrom(tag)
		switch cl := raw.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				blk.Nodes = append(blk.Nodes, e)
			}
			if prevBody != nil {
				prevBody.Succs = append(prevBody.Succs, blk)
				prevBody = nil
			}
			b.cur = blk
			fall := false
			for _, inner := range cl.Body {
				if br, ok := inner.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
					fall = true
					continue
				}
				b.stmt(inner)
			}
			if fall {
				prevBody = b.cur
			} else {
				ends = append(ends, b.cur)
			}
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				comms++
				blk.Comm = cl.Comm
				blk.Nodes = append(blk.Nodes, cl.Comm)
			}
			b.cur = blk
			for _, inner := range cl.Body {
				b.stmt(inner)
			}
			ends = append(ends, b.cur)
		}
	}
	if isSelect && tag != nil {
		tag.NCases = comms
	}
	if prevBody != nil { // trailing fallthrough (illegal Go, but stay safe)
		ends = append(ends, prevBody)
	}
	if !hasDefault && tag != nil {
		// No default: execution may skip every case (switch) or block until
		// one is ready (select); either way `after` is reachable from the tag.
		tag.Succs = append(tag.Succs, after)
	}
	for _, e := range ends {
		if e != nil {
			e.Succs = append(e.Succs, after)
		}
	}
	b.switches = b.switches[:len(b.switches)-1]
	b.cur = after
}

// branch wires break/continue; goto and labeled branches terminate the
// path conservatively.
func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	if s.Label != nil {
		b.cur = nil
		return
	}
	switch s.Tok {
	case token.BREAK:
		if t := b.breakTarget(); t != nil && b.cur != nil {
			b.cur.Succs = append(b.cur.Succs, t)
		}
	case token.CONTINUE:
		if len(b.loops) > 0 && b.cur != nil {
			b.cur.Succs = append(b.cur.Succs, b.loops[len(b.loops)-1].head)
		}
	}
	b.cur = nil
}

// breakTarget is the innermost enclosing breakable construct. The builder
// pushes loop frames and switch afters as it descends; break binds to
// whichever was entered last, which the separate stacks cannot tell apart —
// so loops record their depth and the comparison below picks the deeper.
func (b *cfgBuilder) breakTarget() *Block {
	// Switch/select frames are pushed inside loop bodies and vice versa; the
	// most recently created after-block has the highest index, and block
	// indices increase monotonically with nesting depth at the point of push.
	var best *Block
	if len(b.loops) > 0 {
		best = b.loops[len(b.loops)-1].after
	}
	if len(b.switches) > 0 {
		sw := b.switches[len(b.switches)-1]
		if best == nil || sw.Index > best.Index {
			best = sw
		}
	}
	return best
}

// nilFree wraps a possibly-nil expression as a node slice.
func nilFree(e ast.Expr) []ast.Node {
	if e == nil {
		return nil
	}
	return []ast.Node{e}
}
