package lint_test

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"skyfaas/internal/lint"
)

const fixtureDir = "testdata/mod"

func loadFixture(t *testing.T) *lint.Module {
	t.Helper()
	mod, err := lint.Load(fixtureDir)
	if err != nil {
		t.Fatalf("Load(%s): %v", fixtureDir, err)
	}
	return mod
}

// TestFixtureGolden runs every analyzer over the fixture module and checks
// the exact "file:line: [rule]" findings against the //want markers seeded
// in the fixture sources. Fixture lines without a marker — including the
// whole clean package and every //lint:allow site — must produce nothing.
func TestFixtureGolden(t *testing.T) {
	findings := lint.Run(loadFixture(t), lint.Analyzers())
	got := make(map[string]bool)
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d: [%s]", f.File, f.Line, f.Rule)
		if got[key] {
			t.Errorf("duplicate finding %s", key)
		}
		got[key] = true
	}
	want := wantMarkers(t)

	for key := range want {
		if !got[key] {
			t.Errorf("missing expected finding %s", key)
		}
	}
	for key := range got {
		if !want[key] {
			t.Errorf("unexpected finding %s", key)
		}
	}
}

// TestEveryRuleFires asserts each registered analyzer has fixture coverage:
// a lint rule nothing exercises is a lint rule nothing protects.
func TestEveryRuleFires(t *testing.T) {
	findings := lint.Run(loadFixture(t), lint.Analyzers())
	fired := make(map[string]bool)
	for _, f := range findings {
		fired[f.Rule] = true
	}
	for _, a := range lint.Analyzers() {
		if !fired[a.Name] {
			t.Errorf("rule %s produced no fixture findings", a.Name)
		}
	}
}

// TestRuleSubset checks that running a single analyzer reports only its own
// findings.
func TestRuleSubset(t *testing.T) {
	mod := loadFixture(t)
	var nodeterm *lint.Analyzer
	for _, a := range lint.Analyzers() {
		if a.Name == "nodeterm" {
			nodeterm = a
		}
	}
	if nodeterm == nil {
		t.Fatal("nodeterm analyzer not registered")
	}
	// Malformed //lint:allow comments are a framework check, not an
	// analyzer: badallow findings surface regardless of rule selection.
	for _, f := range lint.Run(mod, []*lint.Analyzer{nodeterm}) {
		if f.Rule != "nodeterm" && f.Rule != lint.BadAllowRule {
			t.Errorf("unexpected rule %s in nodeterm-only run", f.Rule)
		}
	}
}

// TestFindingString pins the canonical output format CI greps for.
func TestFindingString(t *testing.T) {
	f := lint.Finding{File: "internal/sim/sim.go", Line: 42, Rule: "nodeterm", Msg: "boom"}
	want := "internal/sim/sim.go:42: [nodeterm] boom"
	if got := f.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

var (
	repoOnce sync.Once
	repoMod  *lint.Module
	repoErr  error
)

// loadRepo type-checks the real repository once per test binary (the
// load is the expensive part; several tests below share it).
func loadRepo(t *testing.T) *lint.Module {
	t.Helper()
	if testing.Short() {
		t.Skip("repo-wide type-check is slow; run without -short")
	}
	repoOnce.Do(func() { repoMod, repoErr = lint.Load("../..") })
	if repoErr != nil {
		t.Fatalf("Load(../..): %v", repoErr)
	}
	return repoMod
}

// TestRepoClean asserts the shipped tree itself passes skylint — the same
// invariant `make ci` enforces.
func TestRepoClean(t *testing.T) {
	mod := loadRepo(t)
	for _, f := range lint.Run(mod, lint.Analyzers()) {
		t.Errorf("repo not lint-clean: %s", f)
	}
}

// TestHotpathRootsAnnotated pins the //lint:hotpath annotations on the
// real hot paths: the router's frozen-decision issue path, the simulation
// kernel's scheduler and event loop, and the admission gate. Deleting one
// of these annotations silently removes hotalloc coverage from that whole
// call tree, so their presence is load-bearing and asserted here.
func TestHotpathRootsAnnotated(t *testing.T) {
	roots := lint.HotpathRoots(loadRepo(t))
	have := make(map[string]bool, len(roots))
	for _, r := range roots {
		have[r] = true
	}
	for _, want := range []string{
		"(router.DecisionTable).Call",
		"(router.DecisionTable).Pick",
		"(sim.Env).Schedule",
		"(sim.Env).run",
		"(admission.Controller).Admit",
		"(admission.Controller).Done",
	} {
		if !have[want] {
			t.Errorf("missing //lint:hotpath annotation on %s (annotated roots: %v)", want, roots)
		}
	}
}

// wantMarkers scans the fixture tree for "//want rule[,rule]" trailing
// comments and returns the expected "file:line: [rule]" set.
func wantMarkers(t *testing.T) map[string]bool {
	t.Helper()
	want := make(map[string]bool)
	err := filepath.WalkDir(fixtureDir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		rel, err := filepath.Rel(fixtureDir, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		scanner := bufio.NewScanner(f)
		for line := 1; scanner.Scan(); line++ {
			_, marker, ok := strings.Cut(scanner.Text(), "//want ")
			if !ok {
				continue
			}
			for _, rule := range strings.Split(strings.Fields(marker)[0], ",") {
				want[fmt.Sprintf("%s:%d: [%s]", rel, line, rule)] = true
			}
		}
		return scanner.Err()
	})
	if err != nil {
		t.Fatalf("scanning fixtures: %v", err)
	}
	if len(want) == 0 {
		t.Fatal("no //want markers found in fixtures")
	}
	return want
}

// TestRegistryNamesSorted keeps the registry tidy: every rule documented,
// runnable, and listed in name order (the order -list and README use).
func TestRegistryNamesSorted(t *testing.T) {
	var names []string
	for _, a := range lint.Analyzers() {
		names = append(names, a.Name)
		if a.Doc == "" {
			t.Errorf("rule %s has no Doc", a.Name)
		}
		if (a.Run == nil) == (a.RunModule == nil) {
			t.Errorf("rule %s must set exactly one of Run or RunModule", a.Name)
		}
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("Analyzers() not sorted by name: %v", names)
	}
}
