package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// maporder guards replay determinism against Go's two deliberately
// randomized constructs: map iteration order and select case choice. A
// simulation run must be a pure function of the model and its seeds; if a
// range over a map decides the order in which events are scheduled, rows
// are traced, or bytes reach a checksum, two runs of the same seed
// diverge. The rule has two passes per function:
//
//  1. Direct: a sink called lexically inside `for k := range m` (map m),
//     or inside a select with >= 2 communication cases, is flagged at the
//     sink.
//  2. Dataflow: a forward taint analysis over the function's CFG. A slice
//     or string built up inside a map-range body (append / string +=
//     feeding off the range variables) is tainted; passing it through
//     sort.* or slices.Sort* kills the taint; a tainted value reaching a
//     sink after the loop is flagged. This is what blesses the idiomatic
//     fix — collect keys, sort, then range the sorted slice — while still
//     catching the version that forgets the sort.
//
// Sinks are the module's sim-visible surfaces: event scheduling on the
// simulation Env, the trace and table/CSV writers, encoding/csv, and
// hash.Hash writes (checksums).
var maporderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc:  "map-iteration or select order must not reach sim-visible state without a sort",
	Run:  runMaporder,
}

// maporderSimFuncs are the scheduling entry points of the simulation
// kernel: calling one decides event order.
var maporderSimFuncs = map[string]bool{
	"Schedule": true,
	"Go":       true,
	"Trigger":  true,
	"Send":     true,
}

// maporderSink classifies a statically resolved callee as sim-visible
// state, returning a short description for findings.
func maporderSink(callee *types.Func) (string, bool) {
	if callee == nil || callee.Pkg() == nil {
		return "", false
	}
	path, name := callee.Pkg().Path(), callee.Name()
	switch {
	case pkgInScope(path, []string{"internal/sim"}) && maporderSimFuncs[name]:
		return "event scheduling (" + name + ")", true
	case pkgInScope(path, []string{"internal/trace"}):
		return "trace output (" + name + ")", true
	case pkgInScope(path, []string{"internal/tablefmt"}):
		return "table/CSV output (" + name + ")", true
	case path == "encoding/csv":
		return "CSV output (" + name + ")", true
	case path == "hash" || strings.HasPrefix(path, "hash/"):
		return "checksum input (" + name + ")", true
	}
	return "", false
}

// isSortCall reports whether call invokes sort.* or slices.Sort*, the
// blessed ways to impose a deterministic order.
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	callee := staticCallee(info, call)
	if callee == nil || callee.Pkg() == nil {
		return false
	}
	path := callee.Pkg().Path()
	return path == "sort" || (path == "slices" && strings.HasPrefix(callee.Name(), "Sort"))
}

func runMaporder(p *Pass) {
	if !pkgInScope(p.Pkg.Path, nodetermScope) {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			mo := &maporderFunc{pass: p, info: p.Pkg.Info, fd: fd}
			mo.directPass()
			mo.taintPass()
		}
	}
}

type maporderFunc struct {
	pass *Pass
	info *types.Info
	fd   *ast.FuncDecl
	// mapRanges records every range-over-map statement in the function; a
	// position inside one of their bodies is "inside the loop".
	mapRanges []*ast.RangeStmt
}

// isMapRange reports whether s ranges over a map.
func (mo *maporderFunc) isMapRange(s *ast.RangeStmt) bool {
	t := mo.info.Types[s.X].Type
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func (mo *maporderFunc) inMapRangeBody(pos token.Pos) bool {
	for _, r := range mo.mapRanges {
		if r.Body.Pos() <= pos && pos < r.Body.End() {
			return true
		}
	}
	return false
}

// directPass flags sinks lexically inside a map-range body or a
// multi-case select clause, and collects the map-range statements for the
// taint pass.
func (mo *maporderFunc) directPass() {
	ast.Inspect(mo.fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if mo.isMapRange(n) {
				mo.mapRanges = append(mo.mapRanges, n)
				ast.Inspect(n.Body, func(inner ast.Node) bool {
					call, ok := inner.(*ast.CallExpr)
					if !ok {
						return true
					}
					if desc, ok := maporderSink(staticCallee(mo.info, call)); ok {
						mo.pass.Reportf(call.Pos(),
							"%s inside range over map: iteration order is randomized per run; collect keys, sort, then range the slice",
							desc)
					}
					return true
				})
			}
		case *ast.SelectStmt:
			comms := 0
			for _, cl := range n.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
					comms++
				}
			}
			if comms < 2 {
				return true
			}
			for _, cl := range n.Body.List {
				cc, ok := cl.(*ast.CommClause)
				if !ok {
					continue
				}
				for _, s := range cc.Body {
					ast.Inspect(s, func(inner ast.Node) bool {
						call, ok := inner.(*ast.CallExpr)
						if !ok {
							return true
						}
						if desc, ok := maporderSink(staticCallee(mo.info, call)); ok {
							mo.pass.Reportf(call.Pos(),
								"%s inside a select with %d communication cases: the runtime picks among ready cases pseudorandomly",
								desc, comms)
						}
						return true
					})
				}
			}
			return false // clause bodies already inspected
		}
		return true
	})
}

// taintSet tracks variables carrying map-iteration-ordered data.
type taintSet map[types.Object]bool

func (t taintSet) clone() taintSet {
	c := make(taintSet, len(t))
	for k := range t {
		c[k] = true
	}
	return c
}

func (t taintSet) equal(o taintSet) bool {
	if len(t) != len(o) {
		return false
	}
	for k := range t {
		if !o[k] {
			return false
		}
	}
	return true
}

// taintPass runs the forward dataflow: gen taint at in-loop accumulation,
// kill it at sort calls, report at sinks outside the loop.
func (mo *maporderFunc) taintPass() {
	if len(mo.mapRanges) == 0 {
		return
	}
	cfg := mo.pass.Mod.FuncCFG(mo.fd)

	// Fixpoint over block in-states: out = transfer(in), meet = union.
	in := make([]taintSet, len(cfg.Blocks))
	out := make([]taintSet, len(cfg.Blocks))
	for i := range cfg.Blocks {
		in[i], out[i] = taintSet{}, taintSet{}
	}
	changed := true
	for changed {
		changed = false
		for _, blk := range cfg.Blocks {
			st := in[blk.Index].clone()
			for _, n := range blk.Nodes {
				mo.transfer(n, st, nil)
			}
			if !st.equal(out[blk.Index]) {
				out[blk.Index] = st
				changed = true
			}
			for _, succ := range blk.Succs {
				for obj := range st {
					if !in[succ.Index][obj] {
						in[succ.Index][obj] = true
						changed = true
					}
				}
			}
		}
	}

	// Reporting pass: replay each block's transfer from its final in-state.
	for _, blk := range cfg.Blocks {
		st := in[blk.Index].clone()
		for _, n := range blk.Nodes {
			mo.transfer(n, st, func(call *ast.CallExpr, desc string, obj types.Object) {
				mo.pass.Reportf(call.Pos(),
					"%s receives %q, which was built by ranging over a map and never sorted; map iteration order is randomized per run",
					desc, obj.Name())
			})
		}
	}
}

// transfer applies one CFG node to the taint state: seeds taint at
// in-loop accumulation, kills it at sorts, and (when report is non-nil)
// reports tainted values reaching sinks outside map-range bodies.
func (mo *maporderFunc) transfer(n ast.Node, st taintSet, report func(*ast.CallExpr, string, types.Object)) {
	ast.Inspect(n, func(inner ast.Node) bool {
		switch inner := inner.(type) {
		case *ast.AssignStmt:
			mo.seedTaint(inner, st)
		case *ast.CallExpr:
			if isSortCall(mo.info, inner) {
				for _, arg := range inner.Args {
					if obj := mo.baseObject(arg); obj != nil {
						delete(st, obj)
					}
				}
				return true
			}
			desc, isSink := maporderSink(staticCallee(mo.info, inner))
			if !isSink || report == nil || mo.inMapRangeBody(inner.Pos()) {
				return true
			}
			for _, arg := range inner.Args {
				for _, obj := range mo.mentioned(arg, st) {
					report(inner, desc, obj)
				}
			}
		}
		return true
	})
}

// seedTaint marks the target of an order-sensitive accumulation inside a
// map-range body: x = append(x, ...) and string x += ... record elements
// in iteration order. Order-insensitive folds (counters, sums, map
// writes keyed by the range key) are deliberately not tainted.
func (mo *maporderFunc) seedTaint(as *ast.AssignStmt, st taintSet) {
	if !mo.inMapRangeBody(as.Pos()) || len(as.Lhs) != 1 {
		return
	}
	obj := mo.baseObject(as.Lhs[0])
	if obj == nil {
		return
	}
	switch as.Tok {
	case token.ADD_ASSIGN:
		if isStringExpr(mo.info, as.Lhs[0]) {
			st[obj] = true
		}
	case token.ASSIGN, token.DEFINE:
		if call, ok := unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := mo.info.Uses[id].(*types.Builtin); isBuiltin {
					st[obj] = true
				}
			}
		}
	}
}

// baseObject resolves the root variable of an lvalue/expression chain
// (x, x[i], x.f, *x) to its types.Object.
func (mo *maporderFunc) baseObject(e ast.Expr) types.Object {
	for {
		switch t := unparen(e).(type) {
		case *ast.Ident:
			if obj := mo.info.Uses[t]; obj != nil {
				return obj
			}
			return mo.info.Defs[t]
		case *ast.IndexExpr:
			e = t.X
		case *ast.SelectorExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.SliceExpr:
			e = t.X
		default:
			return nil
		}
	}
}

// mentioned returns the tainted objects referenced anywhere inside e, in
// source order.
func (mo *maporderFunc) mentioned(e ast.Expr, st taintSet) []types.Object {
	var objs []types.Object
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := mo.info.Uses[id]; obj != nil && st[obj] {
			objs = append(objs, obj)
		}
		return true
	})
	return objs
}
