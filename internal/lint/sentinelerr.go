package lint

import (
	"go/ast"
	"path/filepath"
	"strings"
)

// sentinelerrScope: the simulated cloud's error taxonomy lives in
// cloudsim/errors.go so samplers, routers, and tests can branch on causes
// with errors.Is. Ad-hoc leaf errors silently escape that taxonomy.
var sentinelerrScope = []string{"internal/cloudsim"}

// sentinelerrHome is the one file allowed to declare sentinel values.
const sentinelerrHome = "errors.go"

var sentinelerrAnalyzer = &Analyzer{
	Name: "sentinelerr",
	Doc:  "cloudsim errors must be errors.go sentinels or wrap one with %w",
	Run:  runSentinelerr,
}

func runSentinelerr(p *Pass) {
	if !pkgInScope(p.Pkg.Path, sentinelerrScope) {
		return
	}
	for _, f := range p.Pkg.Files {
		name := filepath.Base(p.Mod.Fset.Position(f.Pos()).Filename)
		if name == sentinelerrHome {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, ok := importedPkg(p.Pkg.Info, sel.X)
			if !ok {
				return true
			}
			switch {
			case pkgPath == "errors" && sel.Sel.Name == "New":
				p.Reportf(call.Pos(),
					"ad-hoc errors.New in cloudsim; declare the sentinel in %s so callers can errors.Is on it", sentinelerrHome)
			case pkgPath == "fmt" && sel.Sel.Name == "Errorf" && len(call.Args) > 0:
				if lit, ok := call.Args[0].(*ast.BasicLit); ok && !strings.Contains(lit.Value, "%w") {
					p.Reportf(call.Pos(),
						"fmt.Errorf leaf error in cloudsim; wrap a sentinel from %s with %%w instead", sentinelerrHome)
				}
			}
			return true
		})
	}
}
