package lint

import (
	"go/ast"
	"go/token"
)

// ctxgoScope lists the long-lived/server packages where an unjoined
// goroutine outlives its caller: leaked goroutines in these paths hold
// simulation state or sockets until process exit.
var ctxgoScope = []string{
	"internal/skyd",
	"cmd/skyd",
	"internal/workload",
	"internal/chaos",
	"internal/tenant",
	"internal/warmpool",
}

var ctxgoAnalyzer = &Analyzer{
	Name: "ctxgo",
	Doc:  "no bare go func(){} in server packages without a WaitGroup, channel join, or context in scope",
	Run:  runCtxgo,
}

func runCtxgo(p *Pass) {
	if !pkgInScope(p.Pkg.Path, ctxgoScope) {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			joined := hasCtxParam(p, fd) || hasJoin(p, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if _, bare := g.Call.Fun.(*ast.FuncLit); bare && !joined {
					p.Reportf(g.Pos(),
						"bare go func(){...}() with no WaitGroup, channel join, or context in scope leaks the goroutine; add a join or cancellation path")
				}
				return true
			})
		}
	}
}

// hasCtxParam reports whether fn takes a context.Context (including the
// receiver, for methods carrying a context field is out of scope).
func hasCtxParam(p *Pass, fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, field := range fn.Type.Params.List {
		if tv, ok := p.Pkg.Info.Types[field.Type]; ok && tv.Type != nil &&
			tv.Type.String() == "context.Context" {
			return true
		}
	}
	return false
}

// hasJoin reports whether body contains any of the accepted goroutine
// lifecycle mechanisms: a sync.WaitGroup Add/Done/Wait call, a channel send
// or receive, or a select statement.
func hasJoin(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && isWaitGroupMethod(p, sel) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isWaitGroupMethod(p *Pass, sel *ast.SelectorExpr) bool {
	switch sel.Sel.Name {
	case "Add", "Done", "Wait":
	default:
		return false
	}
	named, ok := namedType(p.Pkg.Info.Types[sel.X].Type)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
