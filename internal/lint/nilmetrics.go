package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// nilmetricsPkgSuffix identifies the instrumentation package whose handle
// types (*Counter, *Gauge, *Histogram) promise nil-safety: a nil Registry
// hands out nil handles and every method on them must stay a no-op.
const nilmetricsPkgSuffix = "internal/metrics"

// nilmetricsHandles are the nil-safe handle types.
var nilmetricsHandles = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
}

var nilmetricsAnalyzer = &Analyzer{
	Name: "nilmetrics",
	Doc:  "metrics handles outside internal/metrics must tolerate a nil registry: no direct construction or deref",
	Run:  runNilmetrics,
}

func runNilmetrics(p *Pass) {
	if strings.HasSuffix(p.Pkg.Path, nilmetricsPkgSuffix) {
		return // the package itself manages handle internals
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if t, ok := metricsHandle(p.Pkg.Info.Types[n].Type); ok {
					p.Reportf(n.Pos(),
						"metrics.%s composite literal bypasses the registry; obtain handles from a Registry (nil registries hand out nil-safe no-op handles)", t)
				}
			case *ast.StarExpr:
				tv, ok := p.Pkg.Info.Types[n]
				if !ok || !tv.IsValue() {
					return true // type position, e.g. *metrics.Counter in a signature
				}
				opnd := p.Pkg.Info.Types[n.X].Type
				ptr, ok := opnd.(*types.Pointer)
				if !ok {
					return true
				}
				if t, ok := metricsHandle(ptr.Elem()); ok {
					p.Reportf(n.Pos(),
						"dereferencing a *metrics.%s handle panics when the registry is nil; call its nil-safe methods instead", t)
				}
			}
			return true
		})
	}
}

// metricsHandle reports whether t is one of the nil-safe metrics handle
// types, returning its name.
func metricsHandle(t types.Type) (string, bool) {
	named, ok := namedType(t)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), nilmetricsPkgSuffix) {
		return "", false
	}
	if !nilmetricsHandles[obj.Name()] {
		return "", false
	}
	return obj.Name(), true
}
