package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Module is a fully parsed and type-checked Go module.
type Module struct {
	Dir  string // absolute module root
	Path string // module path from go.mod
	Fset *token.FileSet
	Pkgs []*Package // every non-test package, sorted by import path

	// Lazily built, shared analysis state (see callgraph.go and lint.go).
	callgraph *CallGraph
	cfgs      map[*ast.FuncDecl]*CFG
	allows    allowSet
	allowErrs []rawFinding
}

// Package is one type-checked package of a Module.
type Package struct {
	Path  string // import path
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Load parses and type-checks every non-test package under the module
// rooted at dir, resolving standard-library imports from GOROOT source so
// no toolchain invocation or third-party loader is needed.
//
// Test files are excluded on purpose: the invariants skylint enforces
// protect simulation and server code paths, and leaving _test.go out keeps
// the type-checker away from external test packages.
func Load(dir string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := &loader{
		fset:    token.NewFileSet(),
		modDir:  abs,
		modPath: modPath,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	l.std = importer.ForCompiler(l.fset, "source", nil).(types.ImporterFrom)
	paths, err := l.packagePaths()
	if err != nil {
		return nil, err
	}
	for _, p := range paths {
		if _, err := l.load(p); err != nil {
			return nil, err
		}
	}
	mod := &Module{Dir: abs, Path: modPath, Fset: l.fset}
	for _, p := range l.pkgs {
		mod.Pkgs = append(mod.Pkgs, p)
	}
	sort.Slice(mod.Pkgs, func(i, j int) bool { return mod.Pkgs[i].Path < mod.Pkgs[j].Path })
	return mod, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

type loader struct {
	fset    *token.FileSet
	modDir  string
	modPath string
	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool // cycle detection
}

// packagePaths walks the module tree and returns the import path of every
// directory holding non-test Go files. testdata, vendor, hidden, and
// underscore-prefixed directories are skipped, mirroring the go tool.
func (l *loader) packagePaths() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.modDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.modDir && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !isLintedGoFile(d.Name()) {
			return nil
		}
		rel, err := filepath.Rel(l.modDir, filepath.Dir(path))
		if err != nil {
			return err
		}
		importPath := l.modPath
		if rel != "." {
			importPath += "/" + filepath.ToSlash(rel)
		}
		if len(paths) == 0 || paths[len(paths)-1] != importPath {
			paths = append(paths, importPath)
		}
		return nil
	})
	return paths, err
}

func isLintedGoFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// dirFor maps a module-internal import path back to its directory.
func (l *loader) dirFor(importPath string) string {
	if importPath == l.modPath {
		return l.modDir
	}
	rel := strings.TrimPrefix(importPath, l.modPath+"/")
	return filepath.Join(l.modDir, filepath.FromSlash(rel))
}

// load parses and type-checks one module-internal package (memoized).
func (l *loader) load(importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	dir := l.dirFor(importPath)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !isLintedGoFile(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, typeErrs[0])
	}
	p := &Package{Path: importPath, Files: files, Types: tpkg, Info: info}
	l.pkgs[importPath] = p
	return p, nil
}

// Import implements types.Importer: module-internal paths are loaded from
// source here; everything else (the standard library) is delegated to the
// GOROOT source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, l.modDir, 0)
}
