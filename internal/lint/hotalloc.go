package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// hotalloc proves allocation-freedom statically. The repo's hot paths —
// the router's per-invocation issue path, the simulation kernel's event
// loop, the admission gate — are guarded dynamically by
// testing.AllocsPerRun and the benchmark gate, but those only fire after
// the regression is committed. This rule moves the check to `make lint`:
// a function annotated
//
//	//lint:hotpath
//
// in its doc comment, and everything it transitively calls inside the
// module, must contain no allocation site. Flagged sites: map/slice
// literals, &composite literals, make/new, append (the backing array may
// grow), function literals (closures), fmt calls, non-constant string
// concatenation, and concrete values boxed into interface parameters at
// call sites. Every finding names the call chain from the annotated root,
// so a regression four frames deep is still attributed to the invariant
// it breaks.
//
// Cold paths inside hot functions (pool warm-up, error construction on
// the shed path) are exempted with `//lint:allow hotalloc -- reason` on
// the offending line; an allow on a call site additionally stops the
// traversal into that callee, so one annotation exempts a deliberate
// slow-path helper wholesale.
//
// Interface dispatch and calls through function values are invisible to
// the static call graph; the rule compensates by flagging the boxing and
// the closure creation themselves, which is where those allocations
// happen.
var hotallocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc:  "//lint:hotpath functions and their transitive callees must be allocation-free",
}

// RunModule is wired in init: runHotalloc consults Module.Allows, which
// consults the registry, which contains this analyzer — a static
// initialization cycle the compiler rejects if expressed as a literal.
func init() { hotallocAnalyzer.RunModule = runHotalloc }

const hotpathDirective = "//lint:hotpath"

// hasHotpathDirective reports whether fd's doc comment carries the
// //lint:hotpath directive.
func hasHotpathDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == hotpathDirective || strings.HasPrefix(c.Text, hotpathDirective+" ") {
			return true
		}
	}
	return false
}

// HotpathRoots returns the display names of every //lint:hotpath-annotated
// function in the module, sorted. Tests use it to assert the annotations
// on the real hot paths are present — i.e. that hotalloc actually guards
// them and deleting an annotation would be a visible change.
func HotpathRoots(mod *Module) []string {
	var names []string
	for _, node := range mod.CallGraph().Ordered {
		if hasHotpathDirective(node.Decl) {
			names = append(names, FuncDisplayName(node.Obj))
		}
	}
	sort.Strings(names)
	return names
}

func runHotalloc(p *Pass) {
	g := p.Mod.CallGraph()
	allows := p.Mod.Allows()

	// BFS from every annotated root in source order: shortest chains win,
	// ties resolved by source order, so finding messages are deterministic.
	type visit struct {
		node  *FuncNode
		chain []*types.Func
	}
	var queue []visit
	for _, node := range g.Ordered {
		if hasHotpathDirective(node.Decl) {
			queue = append(queue, visit{node: node, chain: []*types.Func{node.Obj}})
		}
	}
	seen := make(map[*types.Func]bool)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if seen[v.node.Obj] {
			continue
		}
		seen[v.node.Obj] = true
		scanHotAllocs(p, v.node, v.chain)
		for _, site := range v.node.Calls {
			callee, ok := g.Node(site.Callee)
			if !ok || seen[site.Callee] {
				continue
			}
			pos := p.Mod.Fset.Position(site.Call.Pos())
			if allows.allowed(pos.Filename, pos.Line, "hotalloc") {
				continue // an allowed call site exempts the whole callee
			}
			queue = append(queue, visit{node: callee, chain: append(append([]*types.Func{}, v.chain...), site.Callee)})
		}
	}
}

// chainString renders a root→...→current call chain for findings.
func chainString(chain []*types.Func) string {
	parts := make([]string, len(chain))
	for i, fn := range chain {
		parts[i] = FuncDisplayName(fn)
	}
	return strings.Join(parts, " → ")
}

// scanHotAllocs reports every allocation site in node's body, labelled
// with the call chain from the hotpath root.
func scanHotAllocs(p *Pass, node *FuncNode, chain []*types.Func) {
	info := node.Pkg.Info
	via := chainString(chain)
	report := func(pos token.Pos, what string) {
		p.Reportf(pos, "%s on //lint:hotpath path %s", what, via)
	}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n.Pos(), "function literal allocates a closure")
			return false // the literal's body runs as a different function
		case *ast.CompositeLit:
			t := info.Types[n].Type
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				report(n.Pos(), "map literal allocates")
			case *types.Slice:
				report(n.Pos(), "slice literal allocates")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "&composite literal allocates")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(info, n) && info.Types[n].Value == nil {
				report(n.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringExpr(info, n.Lhs[0]) {
				report(n.Pos(), "string concatenation allocates")
			}
		case *ast.CallExpr:
			scanHotCall(p, info, n, report)
		}
		return true
	})
}

// scanHotCall flags allocating builtins, fmt calls, and interface boxing
// at one call expression.
func scanHotCall(p *Pass, info *types.Info, call *ast.CallExpr, report func(token.Pos, string)) {
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				report(call.Pos(), "make allocates")
			case "new":
				report(call.Pos(), "new allocates")
			case "append":
				report(call.Pos(), "append may grow and reallocate its backing array; preallocate off the hot path")
			}
			return
		}
	}
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if pkg, ok := importedPkg(info, sel.X); ok && pkg == "fmt" {
			report(call.Pos(), fmt.Sprintf("fmt.%s formats through reflection and allocates", sel.Sel.Name))
			return // the boxing of its ...any arguments is implied
		}
	}
	// Interface boxing: a concrete value passed where an interface is
	// expected is copied to the heap unless escape analysis saves it —
	// which the hot path must not gamble on.
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() { // conversion, not a call
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // s... passes the slice itself
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		at := info.Types[arg].Type
		if at == nil || !types.IsInterface(pt) || types.IsInterface(at.Underlying()) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		report(arg.Pos(), fmt.Sprintf("%s argument boxed into interface parameter allocates", at.String()))
	}
}

// isStringExpr reports whether e's static type is a string.
func isStringExpr(info *types.Info, e ast.Expr) bool {
	t := info.Types[e].Type
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
