package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockorder detects AB/BA deadlock potential statically. Two goroutines
// that acquire the same two mutexes in opposite orders can deadlock; the
// race detector only notices when the interleaving actually happens,
// which overnight simulation batches are good at finding and CI is not.
// This rule builds a module-wide mutex acquisition-order graph and
// reports every edge that participates in a cycle.
//
// Mutex identity is the declared field or variable (*types.Var), not the
// instance: "(router.burstState).mu" names every burstState's mutex at
// once, which is the granularity at which ordering disciplines are
// stated. Edges come from three sources, all per-function forward walks
// over the CFG with a may-be-held set:
//
//   - direct nesting: b.mu.Lock() while a.mu is held adds a→b;
//   - transitive acquisition: calling pkgb.Poke() while a.mu is held adds
//     a→x for every mutex x that Poke (or anything it calls) locks,
//     computed as a fixpoint over the call graph — this is what sees
//     cycles split across packages;
//   - "guarded by" annotations (see mutexheld): a function that touches a
//     field guarded by mu without locking mu itself is, per that
//     contract, called with mu held — so mu joins its entry held-set.
//
// defer'd unlocks do not release within the body (they run at exit), and
// function literals are skipped: a closure handed to a scheduler runs
// later, not under the locks held at creation.
var lockorderAnalyzer = &Analyzer{
	Name:      "lockorder",
	Doc:       "mutex acquisition order must be acyclic module-wide",
	RunModule: runLockorder,
}

// lockEdge is one observed acquisition "to locked while from held".
type lockEdge struct {
	from, to *types.Var
	pos      token.Pos
}

type lockorderState struct {
	pass *Pass
	g    *CallGraph
	// display memoizes human-readable mutex names: "(pkg.Type).field" for
	// struct fields, "pkg.name" for variables.
	display map[*types.Var]string
	// acquires summarizes, per function, every mutex it may lock directly
	// or transitively (call-graph fixpoint).
	acquires map[*types.Func]map[*types.Var]bool
	// guardCache memoizes per-package "guarded by" annotation scans.
	guardCache map[*Package]map[string]map[string]string
	edges      []lockEdge
}

func runLockorder(p *Pass) {
	st := &lockorderState{
		pass:     p,
		g:        p.Mod.CallGraph(),
		display:  make(map[*types.Var]string),
		acquires: make(map[*types.Func]map[*types.Var]bool),
	}
	st.buildSummaries()
	for _, node := range st.g.Ordered {
		st.collectEdges(node)
	}
	st.reportCycles()
}

// mutexMethod classifies sel as a sync.Mutex/RWMutex method call and
// resolves the mutex identity. acquired=true for Lock/RLock, false for
// Unlock/RUnlock; mu=nil when sel is not a mutex method or the receiver
// cannot be resolved to a declared field/variable.
func (st *lockorderState) mutexMethod(info *types.Info, sel *ast.SelectorExpr) (mu *types.Var, acquired bool) {
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquired = true
	case "Unlock", "RUnlock":
	default:
		return nil, false
	}
	named, ok := namedType(typeOf(info, sel.X))
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return nil, false
	}
	if n := named.Obj().Name(); n != "Mutex" && n != "RWMutex" {
		return nil, false
	}
	return st.mutexVar(info, sel.X), acquired
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// mutexVar resolves the expression denoting a mutex to its declared
// *types.Var (field or variable), registering a display name.
func (st *lockorderState) mutexVar(info *types.Info, e ast.Expr) *types.Var {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		v, ok := info.Uses[e].(*types.Var)
		if !ok {
			return nil
		}
		if _, seen := st.display[v]; !seen {
			name := v.Name()
			if v.Pkg() != nil {
				name = shortPkg(v.Pkg().Path()) + "." + name
			}
			st.display[v] = name
		}
		return v
	case *ast.SelectorExpr:
		v, ok := info.Uses[e.Sel].(*types.Var)
		if !ok {
			return nil
		}
		if !v.IsField() {
			// Package-qualified variable: locka.Mu.
			if _, isPkg := importedPkg(info, e.X); !isPkg {
				return nil
			}
			if _, seen := st.display[v]; !seen {
				name := v.Name()
				if v.Pkg() != nil {
					name = shortPkg(v.Pkg().Path()) + "." + name
				}
				st.display[v] = name
			}
			return v
		}
		if _, seen := st.display[v]; !seen {
			name := v.Name()
			if named, ok := namedType(typeOf(info, e.X)); ok && named.Obj().Pkg() != nil {
				name = "(" + shortPkg(named.Obj().Pkg().Path()) + "." + named.Obj().Name() + ")." + v.Name()
			}
			st.display[v] = name
		}
		return v
	case *ast.StarExpr:
		return st.mutexVar(info, e.X)
	}
	return nil
}

// buildSummaries computes the transitive may-acquire set of every module
// function by fixpoint over the call graph.
func (st *lockorderState) buildSummaries() {
	for _, node := range st.g.Ordered {
		direct := make(map[*types.Var]bool)
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
				if mu, acq := st.mutexMethod(node.Pkg.Info, sel); mu != nil && acq {
					direct[mu] = true
				}
			}
			return true
		})
		st.acquires[node.Obj] = direct
	}
	for changed := true; changed; {
		changed = false
		for _, node := range st.g.Ordered {
			set := st.acquires[node.Obj]
			for _, site := range node.Calls {
				for mu := range st.acquires[site.Callee] {
					if !set[mu] {
						set[mu] = true
						changed = true
					}
				}
			}
		}
	}
}

// entryHeld derives the caller-holds contract from "guarded by" field
// annotations: touching a guarded field without locking its mutex in
// this function means the mutex is held on entry.
func (st *lockorderState) entryHeld(node *FuncNode) map[*types.Var]bool {
	info := node.Pkg.Info
	held := make(map[*types.Var]bool)
	locksItself := make(map[*types.Var]bool)
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if mu, acq := st.mutexMethod(info, sel); mu != nil && acq {
			locksItself[mu] = true
			return true
		}
		fv, ok := info.Uses[sel.Sel].(*types.Var)
		if !ok || !fv.IsField() {
			return true
		}
		if mu := st.guardOf(node.Pkg, info, sel, fv); mu != nil {
			held[mu] = true
		}
		return true
	})
	for mu := range locksItself {
		delete(held, mu)
	}
	return held
}

// guardOf returns the sibling mutex field guarding fv per its
// "guarded by <mu>" comment, if any (package-local structs only).
func (st *lockorderState) guardOf(pkg *Package, info *types.Info, sel *ast.SelectorExpr, fv *types.Var) *types.Var {
	named, ok := namedType(typeOf(info, sel.X))
	if !ok || named.Obj().Pkg() != pkg.Types {
		return nil
	}
	guarded := st.guardedFields(pkg)
	muName, ok := guarded[named.Obj().Name()][fv.Name()]
	if !ok {
		return nil
	}
	strct, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < strct.NumFields(); i++ {
		if f := strct.Field(i); f.Name() == muName {
			if _, seen := st.display[f]; !seen {
				st.display[f] = "(" + shortPkg(named.Obj().Pkg().Path()) + "." + named.Obj().Name() + ")." + muName
			}
			return f
		}
	}
	return nil
}

// guardedFields scans pkg's struct declarations for "guarded by" field
// annotations (struct name -> field name -> mutex field name).
func (st *lockorderState) guardedFields(pkg *Package) map[string]map[string]string {
	if st.guardCache == nil {
		st.guardCache = make(map[*Package]map[string]map[string]string)
	}
	if g, ok := st.guardCache[pkg]; ok {
		return g
	}
	guarded := collectGuarded(&Pass{Pkg: pkg})
	st.guardCache[pkg] = guarded
	return guarded
}

// collectEdges walks node's CFG with a may-be-held set, recording an
// order edge at every acquisition (direct or via call summary) that
// happens with other mutexes held.
func (st *lockorderState) collectEdges(node *FuncNode) {
	info := node.Pkg.Info
	cfg := st.pass.Mod.FuncCFG(node.Decl)
	in := make([]map[*types.Var]bool, len(cfg.Blocks))
	for i := range in {
		in[i] = make(map[*types.Var]bool)
	}
	for mu := range st.entryHeld(node) {
		in[cfg.Entry.Index][mu] = true
	}

	transfer := func(held map[*types.Var]bool, n ast.Node, emit bool) {
		ast.Inspect(n, func(inner ast.Node) bool {
			switch inner := inner.(type) {
			case *ast.DeferStmt, *ast.FuncLit:
				// Deferred calls run at exit, closures run wherever they are
				// invoked — neither under the held-set being tracked here.
				return false
			case *ast.CallExpr:
				if sel, ok := unparen(inner.Fun).(*ast.SelectorExpr); ok {
					if mu, acq := st.mutexMethod(info, sel); mu != nil {
						if acq {
							if emit {
								for h := range held {
									if h != mu {
										st.edges = append(st.edges, lockEdge{from: h, to: mu, pos: inner.Pos()})
									}
								}
							}
							held[mu] = true
						} else {
							delete(held, mu)
						}
						return true
					}
				}
				if emit {
					if callee := staticCallee(info, inner); callee != nil {
						for mu := range st.acquires[callee] {
							for h := range held {
								if h != mu {
									st.edges = append(st.edges, lockEdge{from: h, to: mu, pos: inner.Pos()})
								}
							}
						}
					}
				}
			}
			return true
		})
	}

	// Fixpoint on held-sets (may analysis: meet = union), then one replay
	// pass that emits edges from the converged in-states.
	for changed := true; changed; {
		changed = false
		for _, blk := range cfg.Blocks {
			held := make(map[*types.Var]bool, len(in[blk.Index]))
			for mu := range in[blk.Index] {
				held[mu] = true
			}
			for _, n := range blk.Nodes {
				transfer(held, n, false)
			}
			for _, succ := range blk.Succs {
				for mu := range held {
					if !in[succ.Index][mu] {
						in[succ.Index][mu] = true
						changed = true
					}
				}
			}
		}
	}
	for _, blk := range cfg.Blocks {
		held := make(map[*types.Var]bool, len(in[blk.Index]))
		for mu := range in[blk.Index] {
			held[mu] = true
		}
		for _, n := range blk.Nodes {
			transfer(held, n, true)
		}
	}
}

// reportCycles finds strongly connected components of the order graph
// and reports every edge inside one.
func (st *lockorderState) reportCycles() {
	if len(st.edges) == 0 {
		return
	}
	// Deterministic node order: by display name (all nodes are registered
	// in st.display by construction).
	nodes := make([]*types.Var, 0, len(st.display))
	for v := range st.display {
		nodes = append(nodes, v)
	}
	sort.Slice(nodes, func(i, j int) bool { return st.display[nodes[i]] < st.display[nodes[j]] })
	adj := make(map[*types.Var]map[*types.Var]bool)
	for _, e := range st.edges {
		if adj[e.from] == nil {
			adj[e.from] = make(map[*types.Var]bool)
		}
		adj[e.from][e.to] = true
	}
	succsOf := func(v *types.Var) []*types.Var {
		var out []*types.Var
		for _, n := range nodes {
			if adj[v][n] {
				out = append(out, n)
			}
		}
		return out
	}

	// Tarjan's SCC.
	index := make(map[*types.Var]int)
	low := make(map[*types.Var]int)
	onStack := make(map[*types.Var]bool)
	sccOf := make(map[*types.Var]int)
	var stack []*types.Var
	next, nscc := 0, 0
	sizes := make(map[int]int)
	var strongconnect func(v *types.Var)
	strongconnect = func(v *types.Var) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succsOf(v) {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				sccOf[w] = nscc
				sizes[nscc]++
				if w == v {
					break
				}
			}
			nscc++
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}

	// An edge is cyclic iff both ends sit in the same SCC of size >= 2.
	cycleName := func(id int) string {
		var names []string
		for _, v := range nodes {
			if sccOf[v] == id {
				names = append(names, st.display[v])
			}
		}
		return strings.Join(append(names, names[0]), " → ")
	}
	sort.Slice(st.edges, func(i, j int) bool { return st.edges[i].pos < st.edges[j].pos })
	for _, e := range st.edges {
		if sccOf[e.from] != sccOf[e.to] || sizes[sccOf[e.from]] < 2 {
			continue
		}
		st.pass.Reportf(e.pos,
			"%s acquired while %s is held, but the opposite order also occurs — lock-order cycle %s can deadlock",
			st.display[e.to], st.display[e.from], cycleName(sccOf[e.from]))
	}
}
