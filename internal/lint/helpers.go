package lint

import (
	"go/ast"
	"go/types"
)

// importedPkg resolves x to the import path of the package it qualifies
// (e.g. the "time" in time.Now), or ok=false when x is not a package name.
func importedPkg(info *types.Info, x ast.Expr) (string, bool) {
	id, ok := x.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}

// namedType unwraps pointers and returns the named type of t, if any.
func namedType(t types.Type) (*types.Named, bool) {
	if t == nil {
		return nil, false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return named, ok
}

// isFloat reports whether t is a floating-point type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}
