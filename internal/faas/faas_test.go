package faas

import (
	"testing"
	"time"

	"skyfaas/internal/cloudsim"
	"skyfaas/internal/cpu"
	"skyfaas/internal/geo"
	"skyfaas/internal/sim"
)

var testEpoch = time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)

func world(t *testing.T) (*sim.Env, *cloudsim.Cloud) {
	t.Helper()
	env := sim.NewEnv(testEpoch)
	catalog := []cloudsim.RegionSpec{{
		Provider: cloudsim.AWS,
		Name:     "r1",
		Loc:      geo.Coord{Lat: 40, Lon: -80},
		AZs: []cloudsim.AZSpec{{
			Name:    "r1-az-a",
			PoolFIs: 2048,
			Mix:     map[cpu.Kind]float64{cpu.Xeon25: 1},
		}},
	}}
	return env, cloudsim.New(env, 5, catalog, cloudsim.Options{HorizonDays: 1})
}

func TestDeployAndInvoke(t *testing.T) {
	env, cloud := world(t)
	client := NewClient(cloud, "acct")
	if client.Account() != "acct" {
		t.Fatalf("account = %q", client.Account())
	}
	if client.Cloud() != cloud {
		t.Fatal("Cloud() accessor broken")
	}
	if _, err := client.Deploy("r1-az-a", "fn", cloudsim.DeployConfig{
		MemoryMB: 1024,
		Behavior: cloudsim.SleepBehavior{D: 20 * time.Millisecond},
	}); err != nil {
		t.Fatal(err)
	}
	var resp cloudsim.Response
	env.Go("client", func(p *sim.Proc) error {
		resp = client.Invoke(p, Call{AZ: "r1-az-a", Function: "fn"})
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !resp.OK() {
		t.Fatalf("invoke: %v", resp.Err)
	}
	if resp.BilledMS < 20 {
		t.Errorf("billed %.1f ms", resp.BilledMS)
	}
}

func TestDeployErrorWrapped(t *testing.T) {
	_, cloud := world(t)
	client := NewClient(cloud, "acct")
	if _, err := client.Deploy("ghost", "fn", cloudsim.DeployConfig{
		MemoryMB: 128, Behavior: cloudsim.SleepBehavior{},
	}); err == nil {
		t.Fatal("deploy to unknown AZ succeeded")
	}
}

func TestInvokeAsyncFuture(t *testing.T) {
	env, cloud := world(t)
	client := NewClient(cloud, "acct")
	if _, err := client.Deploy("r1-az-a", "fn", cloudsim.DeployConfig{
		MemoryMB: 1024, Behavior: cloudsim.SleepBehavior{D: 50 * time.Millisecond},
	}); err != nil {
		t.Fatal(err)
	}
	env.Go("client", func(p *sim.Proc) error {
		f := client.InvokeAsync(Call{AZ: "r1-az-a", Function: "fn"})
		if f.Done() {
			t.Error("future done before any time passed")
		}
		r := f.Wait(p)
		if !r.OK() {
			t.Errorf("async invoke: %v", r.Err)
		}
		if !f.Done() {
			t.Error("future not done after Wait")
		}
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestInvokeBatchParallelism(t *testing.T) {
	env, cloud := world(t)
	client := NewClient(cloud, "acct")
	if _, err := client.Deploy("r1-az-a", "fn", cloudsim.DeployConfig{
		MemoryMB: 1024, Behavior: cloudsim.SleepBehavior{D: 100 * time.Millisecond},
	}); err != nil {
		t.Fatal(err)
	}
	var elapsed time.Duration
	var responses []cloudsim.Response
	env.Go("client", func(p *sim.Proc) error {
		t0 := env.Now()
		responses = client.InvokeBatch(p, Call{AZ: "r1-az-a", Function: "fn"}, 50)
		elapsed = env.Now().Sub(t0)
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(responses) != 50 {
		t.Fatalf("%d responses", len(responses))
	}
	fis := map[string]bool{}
	for i, r := range responses {
		if !r.OK() {
			t.Fatalf("response %d: %v", i, r.Err)
		}
		fis[r.FI] = true
	}
	if len(fis) != 50 {
		t.Errorf("batch used %d unique FIs, want 50 (parallel)", len(fis))
	}
	// Parallel batch takes ~one invocation's latency, not 50x.
	if elapsed > time.Second {
		t.Errorf("batch of 50 took %v, not parallel", elapsed)
	}
}

func TestClientLocationAddsLatency(t *testing.T) {
	env, cloud := world(t)
	sydney, _ := geo.City("sydney")
	near := NewClient(cloud, "acct")
	far := NewClient(cloud, "acct", WithLocation(sydney))
	if _, err := near.Deploy("r1-az-a", "fn", cloudsim.DeployConfig{
		MemoryMB: 1024, Behavior: cloudsim.SleepBehavior{D: time.Millisecond},
	}); err != nil {
		t.Fatal(err)
	}
	var dNear, dFar time.Duration
	env.Go("client", func(p *sim.Proc) error {
		// Warm up to exclude cold starts from both timings.
		near.Invoke(p, Call{AZ: "r1-az-a", Function: "fn"})
		t0 := env.Now()
		near.Invoke(p, Call{AZ: "r1-az-a", Function: "fn"})
		dNear = env.Now().Sub(t0)
		t1 := env.Now()
		far.Invoke(p, Call{AZ: "r1-az-a", Function: "fn"})
		dFar = env.Now().Sub(t1)
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if dFar <= dNear+50*time.Millisecond {
		t.Errorf("sydney client %v vs co-located %v: latency model not applied", dFar, dNear)
	}
}
