package faas

import (
	"errors"
	"time"

	"skyfaas/internal/cloudsim"
	"skyfaas/internal/sim"
)

// This file is the redesigned invocation API: every entry point funnels
// through a single InvokeSpec carrying the call, its deadline, its retry
// budget, and its hedge policy. The legacy Invoke/InvokeAsync/InvokeBatch
// forms survive as thin deprecated wrappers so existing call sites (the
// sampler, the router's profiling path) migrate incrementally.

// ErrDeadlineExceeded is returned when an invocation's deadline elapses
// before any attempt produced a response.
var ErrDeadlineExceeded = errors.New("faas: invocation deadline exceeded")

// RetryPolicy bounds and paces re-attempts after transient platform
// failures (throttles, saturation, zone outages). The zero value means a
// single attempt with no retries.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget including the first
	// (0 or 1 = no retries).
	MaxAttempts int
	// BaseBackoff is the pause before the first retry (default 50 ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 5 s).
	MaxBackoff time.Duration
	// Multiplier grows the backoff per retry (default 2).
	Multiplier float64
	// JitterFrac spreads each backoff uniformly within ±JitterFrac of
	// itself, drawn from the client's seeded stream so two same-seed runs
	// jitter identically (default 0 = no jitter).
	JitterFrac float64
}

func (p RetryPolicy) maxAttempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

func (p RetryPolicy) base() time.Duration {
	if p.BaseBackoff <= 0 {
		return 50 * time.Millisecond
	}
	return p.BaseBackoff
}

func (p RetryPolicy) capped() time.Duration {
	if p.MaxBackoff <= 0 {
		return 5 * time.Second
	}
	return p.MaxBackoff
}

func (p RetryPolicy) multiplier() float64 {
	if p.Multiplier <= 1 {
		return 2
	}
	return p.Multiplier
}

// Backoff returns the pause before retry number n (1-based), applying
// exponential growth, the cap, and jitter drawn from rand. A nil rand or
// zero JitterFrac yields the deterministic un-jittered schedule.
func (p RetryPolicy) Backoff(n int, rand JitterSource) time.Duration {
	d := float64(p.base())
	mult := p.multiplier()
	for i := 1; i < n; i++ {
		d *= mult
		if d >= float64(p.capped()) {
			break
		}
	}
	if d > float64(p.capped()) {
		d = float64(p.capped())
	}
	if p.JitterFrac > 0 && rand != nil {
		d = rand.Jitter(d, p.JitterFrac)
	}
	return time.Duration(d)
}

// JitterSource is the slice of rng.Stream the backoff path needs; taking an
// interface keeps the policy testable with a fixed source.
type JitterSource interface {
	Jitter(v, amount float64) float64
}

// HedgePolicy duplicates a slow invocation: if no response arrives within
// After, a hedge copy is issued and the first response wins. The zero value
// disables hedging.
type HedgePolicy struct {
	// After is the latency threshold that triggers a hedge (0 = disabled).
	After time.Duration
	// Max is how many hedge copies may be issued per attempt (default 1).
	Max int
}

// MaxHedges is the effective hedge budget per attempt (Max, min 1).
func (h HedgePolicy) MaxHedges() int {
	if h.Max < 1 {
		return 1
	}
	return h.Max
}

// Enabled reports whether the policy triggers hedges.
func (h HedgePolicy) Enabled() bool { return h.After > 0 }

// InvokeSpec fully describes one logical invocation: the call plus its
// failure-handling envelope. Construct with NewInvokeSpec and options, or
// as a literal.
type InvokeSpec struct {
	Call Call
	// Deadline bounds the whole invocation — every attempt, backoff, and
	// hedge — in virtual time (0 = unbounded).
	Deadline time.Duration
	// Retry is the transient-failure budget.
	Retry RetryPolicy
	// Hedge is the tail-latency duplication policy.
	Hedge HedgePolicy
}

// InvokeOption configures an InvokeSpec.
type InvokeOption func(*InvokeSpec)

// WithDeadline bounds the whole invocation in virtual time.
func WithDeadline(d time.Duration) InvokeOption {
	return func(s *InvokeSpec) { s.Deadline = d }
}

// WithRetry sets the transient-failure retry policy.
func WithRetry(p RetryPolicy) InvokeOption {
	return func(s *InvokeSpec) { s.Retry = p }
}

// WithHedge sets the tail-latency hedge policy.
func WithHedge(p HedgePolicy) InvokeOption {
	return func(s *InvokeSpec) { s.Hedge = p }
}

// WithPayloadHash keys the dynamic-function per-instance payload cache.
func WithPayloadHash(hash string) InvokeOption {
	return func(s *InvokeSpec) { s.Call.PayloadHash = hash }
}

// NewInvokeSpec builds a spec for call with the given options.
func NewInvokeSpec(call Call, opts ...InvokeOption) InvokeSpec {
	s := InvokeSpec{Call: call}
	for _, o := range opts {
		o(&s)
	}
	return s
}

// Retryable reports whether err is a transient platform failure worth
// re-attempting (throttle, saturation, injected zone outage).
func Retryable(err error) bool {
	return errors.Is(err, cloudsim.ErrThrottled) ||
		errors.Is(err, cloudsim.ErrSaturated) ||
		errors.Is(err, cloudsim.ErrZoneOutage)
}

// Do performs one logical invocation under spec's envelope, blocking the
// calling process: attempts are retried per the retry policy, each attempt
// may be hedged, and the deadline bounds the whole affair. With a zero
// envelope it is exactly the legacy blocking Invoke.
func (c *Client) Do(p *sim.Proc, spec InvokeSpec) cloudsim.Response {
	env := c.cloud.Env()
	start := env.Now()
	budget := spec.Retry.maxAttempts()
	var resp cloudsim.Response
	for attempt := 1; ; attempt++ {
		remaining := time.Duration(-1)
		if spec.Deadline > 0 {
			remaining = spec.Deadline - env.Now().Sub(start)
			if remaining <= 0 {
				return cloudsim.Response{Err: ErrDeadlineExceeded, Sent: env.Now()}
			}
		}
		resp = c.attempt(p, spec, remaining)
		if resp.OK() || !Retryable(resp.Err) || attempt >= budget {
			return resp
		}
		pause := spec.Retry.Backoff(attempt, c.rand)
		if spec.Deadline > 0 && env.Now().Add(pause).Sub(start) >= spec.Deadline {
			return resp // backing off would blow the deadline; surface the failure
		}
		p.Sleep(pause)
	}
}

// attempt issues one (possibly hedged) attempt and waits for the first
// response, or the remaining deadline to lapse (remaining < 0 = unbounded).
// The hedge loser is abandoned: its response is discarded on arrival, which
// is what cancelling a FaaS request amounts to — the execution (and its
// bill) cannot be recalled, only ignored.
func (c *Client) attempt(p *sim.Proc, spec InvokeSpec, remaining time.Duration) cloudsim.Response {
	if !spec.Hedge.Enabled() && remaining < 0 {
		return c.cloud.Invoke(p, c.request(spec.Call))
	}
	env := c.cloud.Env()
	first := sim.NewEvent(env)
	launch := func() {
		c.cloud.StartInvoke(c.request(spec.Call), func(r cloudsim.Response) {
			first.Trigger(r) // idempotent: the first response wins, losers are dropped
		})
	}
	launch()
	if spec.Hedge.Enabled() {
		var arm func(left int)
		arm = func(left int) {
			if left == 0 {
				return
			}
			env.Schedule(spec.Hedge.After, func() {
				if first.Triggered() {
					return
				}
				launch()
				arm(left - 1)
			})
		}
		arm(spec.Hedge.MaxHedges())
	}
	if remaining >= 0 {
		env.Schedule(remaining, func() {
			first.Trigger(cloudsim.Response{Err: ErrDeadlineExceeded, Sent: env.Now()})
		})
	}
	v := p.Wait(first)
	r, ok := v.(cloudsim.Response)
	if !ok {
		return cloudsim.Response{Err: cloudsim.ErrBadRequest}
	}
	return r
}

// DoAsync starts a logical invocation under spec's envelope and returns a
// Future. Retries and backoff run on the event queue, not a process, so the
// caller can fan out thousands of these without goroutines.
func (c *Client) DoAsync(spec InvokeSpec) *Future {
	env := c.cloud.Env()
	ev := sim.NewEvent(env)
	start := env.Now()
	budget := spec.Retry.maxAttempts()
	var issue func(attempt int)
	issue = func(attempt int) {
		if spec.Deadline > 0 && env.Now().Sub(start) >= spec.Deadline {
			ev.Trigger(cloudsim.Response{Err: ErrDeadlineExceeded, Sent: env.Now()})
			return
		}
		c.cloud.StartInvoke(c.request(spec.Call), func(r cloudsim.Response) {
			if ev.Triggered() {
				return
			}
			if r.OK() || !Retryable(r.Err) || attempt >= budget {
				ev.Trigger(r)
				return
			}
			env.Schedule(spec.Retry.Backoff(attempt, c.rand), func() { issue(attempt + 1) })
		})
	}
	if spec.Deadline > 0 {
		env.Schedule(spec.Deadline, func() {
			ev.Trigger(cloudsim.Response{Err: ErrDeadlineExceeded, Sent: env.Now()})
		})
	}
	issue(1)
	return &Future{ev: ev}
}
