// Package faas is the client-side SDK over the simulated cloud: the thin
// layer an application (or our sampler and router) uses to deploy functions
// and invoke them synchronously, asynchronously, or in parallel batches.
//
// It deliberately mirrors the shape of a real FaaS SDK — an account-scoped
// client with a network vantage point — so the code above it reads like a
// program against AWS Lambda rather than against a simulator.
package faas

import (
	"fmt"

	"skyfaas/internal/cloudsim"
	"skyfaas/internal/geo"
	"skyfaas/internal/rng"
	"skyfaas/internal/sim"
)

// Client issues requests against the cloud on behalf of one account from
// one network vantage point.
type Client struct {
	cloud   *cloudsim.Cloud
	account string
	loc     *geo.Coord
	rand    *rng.Stream
}

// Option configures a Client.
type Option func(*Client)

// WithLocation places the client at a geographic vantage point; requests
// pay realistic network latency to each region. Without it the client is
// co-located with the cloud (intra-cloud latency only).
func WithLocation(loc geo.Coord) Option {
	return func(c *Client) {
		l := loc
		c.loc = &l
	}
}

// WithSeed derives the client's private randomness (retry-backoff jitter)
// from seed instead of the account-name default, letting experiments tie
// client behavior to their run seed.
func WithSeed(seed uint64) Option {
	return func(c *Client) {
		c.rand = rng.New(seed).Split("faas/" + c.account)
	}
}

// NewClient returns a client for account.
func NewClient(cloud *cloudsim.Cloud, account string, opts ...Option) *Client {
	c := &Client{cloud: cloud, account: account}
	c.rand = rng.New(0).Split("faas/" + account)
	for _, o := range opts {
		o(c)
	}
	return c
}

// Account returns the account the client bills against.
func (c *Client) Account() string { return c.account }

// Cloud returns the underlying cloud.
func (c *Client) Cloud() *cloudsim.Cloud { return c.cloud }

// Deploy creates a function deployment in the named zone.
func (c *Client) Deploy(az, name string, cfg cloudsim.DeployConfig) (*cloudsim.Deployment, error) {
	dep, err := c.cloud.Deploy(az, name, cfg)
	if err != nil {
		return nil, fmt.Errorf("deploy %s/%s: %w", az, name, err)
	}
	return dep, nil
}

// Call addresses one invocation.
type Call struct {
	AZ       string
	Function string
	// Work optionally overrides a dynamic deployment's behavior.
	Work cloudsim.Behavior
	// PayloadHash keys the dynamic-function per-instance cache.
	PayloadHash string
}

func (c *Client) request(call Call) cloudsim.Request {
	return cloudsim.Request{
		Account:     c.account,
		AZ:          call.AZ,
		Function:    call.Function,
		Work:        call.Work,
		PayloadHash: call.PayloadHash,
		ClientLoc:   c.loc,
	}
}

// Invoke performs a blocking invocation from the calling process.
//
// Deprecated: use Do with an InvokeSpec; Invoke is Do with a zero envelope
// (single attempt, no hedge, no deadline).
func (c *Client) Invoke(p *sim.Proc, call Call) cloudsim.Response {
	return c.Do(p, InvokeSpec{Call: call})
}

// Future is a pending asynchronous invocation.
type Future struct {
	ev *sim.Event
}

// Wait blocks until the response arrives.
func (f *Future) Wait(p *sim.Proc) cloudsim.Response {
	v := p.Wait(f.ev)
	r, ok := v.(cloudsim.Response)
	if !ok {
		return cloudsim.Response{Err: cloudsim.ErrBadRequest}
	}
	return r
}

// Done reports whether the response has arrived.
func (f *Future) Done() bool { return f.ev.Triggered() }

// InvokeAsync starts an invocation and returns a Future.
//
// Deprecated: use DoAsync with an InvokeSpec.
func (c *Client) InvokeAsync(call Call) *Future {
	ev := sim.NewEvent(c.cloud.Env())
	c.cloud.StartInvoke(c.request(call), func(r cloudsim.Response) { ev.Trigger(r) })
	return &Future{ev: ev}
}

// Start issues an invocation with a completion callback — the streaming
// form batch clients use to reissue work the moment a response arrives.
func (c *Client) Start(call Call, done func(cloudsim.Response)) {
	c.cloud.StartInvoke(c.request(call), done)
}

// InvokeBatch issues n copies of call concurrently and returns all
// responses in completion-independent order (index i is request i).
//
// Deprecated: fan out DoAsync calls with an InvokeSpec instead.
func (c *Client) InvokeBatch(p *sim.Proc, call Call, n int) []cloudsim.Response {
	futures := make([]*Future, n)
	for i := range futures {
		futures[i] = c.InvokeAsync(call)
	}
	out := make([]cloudsim.Response, n)
	for i, f := range futures {
		out[i] = f.Wait(p)
	}
	return out
}
