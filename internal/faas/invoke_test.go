package faas

import (
	"errors"
	"testing"
	"time"

	"skyfaas/internal/cloudsim"
	"skyfaas/internal/sim"
)

func deployEcho(t *testing.T, cloud *cloudsim.Cloud, client *Client, d time.Duration) {
	t.Helper()
	if _, err := client.Deploy("r1-az-a", "fn", cloudsim.DeployConfig{
		MemoryMB: 1024,
		Behavior: cloudsim.SleepBehavior{D: d},
	}); err != nil {
		t.Fatal(err)
	}
}

func TestInvokeSpecOptions(t *testing.T) {
	spec := NewInvokeSpec(Call{AZ: "z", Function: "f"},
		WithDeadline(time.Minute),
		WithRetry(RetryPolicy{MaxAttempts: 4}),
		WithHedge(HedgePolicy{After: time.Second, Max: 2}),
		WithPayloadHash("h1"),
	)
	if spec.Deadline != time.Minute || spec.Retry.MaxAttempts != 4 ||
		spec.Hedge.After != time.Second || spec.Hedge.Max != 2 ||
		spec.Call.PayloadHash != "h1" {
		t.Fatalf("spec = %+v", spec)
	}
}

func TestDoRetriesThroughThrottleStorm(t *testing.T) {
	env, cloud := world(t)
	client := NewClient(cloud, "acct")
	deployEcho(t, cloud, client, 20*time.Millisecond)
	var resp cloudsim.Response
	var elapsed time.Duration
	env.Go("client", func(p *sim.Proc) error {
		az, _ := cloud.AZ("r1-az-a")
		az.SetThrottleStorm(1) // total storm: every attempt is rejected
		if !az.FaultSnapshot().Faulted() {
			t.Error("snapshot does not report the storm")
		}
		env.Schedule(100*time.Millisecond, func() { az.SetThrottleStorm(0) })
		start := env.Now()
		resp = client.Do(p, NewInvokeSpec(Call{AZ: "r1-az-a", Function: "fn"},
			WithRetry(RetryPolicy{MaxAttempts: 50, BaseBackoff: 10 * time.Millisecond})))
		elapsed = env.Now().Sub(start)
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !resp.OK() {
		t.Fatalf("Do under storm: %v", resp.Err)
	}
	if elapsed < 100*time.Millisecond {
		t.Errorf("completed in %v — retries cannot have happened", elapsed)
	}
}

func TestDoRespectsAttemptBudget(t *testing.T) {
	env, cloud := world(t)
	client := NewClient(cloud, "acct")
	deployEcho(t, cloud, client, 20*time.Millisecond)
	var resp cloudsim.Response
	env.Go("client", func(p *sim.Proc) error {
		az, _ := cloud.AZ("r1-az-a")
		az.SetOutage(true) // every attempt fails
		resp = client.Do(p, NewInvokeSpec(Call{AZ: "r1-az-a", Function: "fn"},
			WithRetry(RetryPolicy{MaxAttempts: 3, BaseBackoff: 10 * time.Millisecond})))
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(resp.Err, cloudsim.ErrZoneOutage) {
		t.Fatalf("err = %v, want zone outage", resp.Err)
	}
}

func TestDoDeadline(t *testing.T) {
	env, cloud := world(t)
	client := NewClient(cloud, "acct")
	deployEcho(t, cloud, client, 5*time.Second) // execution far exceeds the deadline
	var resp cloudsim.Response
	var elapsed time.Duration
	env.Go("client", func(p *sim.Proc) error {
		start := env.Now()
		resp = client.Do(p, NewInvokeSpec(Call{AZ: "r1-az-a", Function: "fn"},
			WithDeadline(500*time.Millisecond)))
		elapsed = env.Now().Sub(start)
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(resp.Err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", resp.Err)
	}
	if elapsed != 500*time.Millisecond {
		t.Errorf("returned after %v, want exactly the deadline", elapsed)
	}
}

func TestDoHedgeWinsOnSlowPrimary(t *testing.T) {
	env, cloud := world(t)
	client := NewClient(cloud, "acct")
	deployEcho(t, cloud, client, 50*time.Millisecond)
	var resp cloudsim.Response
	env.Go("client", func(p *sim.Proc) error {
		// Cold starts are seconds; the warm hedge (issued after the spike is
		// cleared... actually both pay the spike) — just assert completion
		// and that the spec path with hedging returns a valid response.
		resp = client.Do(p, NewInvokeSpec(Call{AZ: "r1-az-a", Function: "fn"},
			WithHedge(HedgePolicy{After: 200 * time.Millisecond, Max: 2})))
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !resp.OK() {
		t.Fatalf("hedged Do failed: %v", resp.Err)
	}
}

func TestDoAsyncRetries(t *testing.T) {
	env, cloud := world(t)
	client := NewClient(cloud, "acct")
	deployEcho(t, cloud, client, 20*time.Millisecond)
	var resp cloudsim.Response
	env.Go("client", func(p *sim.Proc) error {
		az, _ := cloud.AZ("r1-az-a")
		az.SetOutage(true)
		env.Schedule(300*time.Millisecond, func() { az.SetOutage(false) })
		f := client.DoAsync(NewInvokeSpec(Call{AZ: "r1-az-a", Function: "fn"},
			WithRetry(RetryPolicy{MaxAttempts: 20, BaseBackoff: 50 * time.Millisecond})))
		resp = f.Wait(p)
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !resp.OK() {
		t.Fatalf("DoAsync through transient outage: %v", resp.Err)
	}
}

func TestDoAsyncDeadline(t *testing.T) {
	env, cloud := world(t)
	client := NewClient(cloud, "acct")
	deployEcho(t, cloud, client, 20*time.Millisecond)
	var resp cloudsim.Response
	env.Go("client", func(p *sim.Proc) error {
		az, _ := cloud.AZ("r1-az-a")
		az.SetOutage(true) // permanent: retries can never succeed
		f := client.DoAsync(NewInvokeSpec(Call{AZ: "r1-az-a", Function: "fn"},
			WithRetry(RetryPolicy{MaxAttempts: 1000, BaseBackoff: 20 * time.Millisecond}),
			WithDeadline(400*time.Millisecond)))
		resp = f.Wait(p)
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(resp.Err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", resp.Err)
	}
}

func TestRetryableClassification(t *testing.T) {
	for err, want := range map[error]bool{
		cloudsim.ErrThrottled:        true,
		cloudsim.ErrSaturated:        true,
		cloudsim.ErrZoneOutage:       true,
		cloudsim.ErrBadRequest:       false,
		cloudsim.ErrNoSuchDeployment: false,
		ErrDeadlineExceeded:          false,
		nil:                          false,
	} {
		if got := Retryable(err); got != want {
			t.Errorf("Retryable(%v) = %v, want %v", err, got, want)
		}
	}
}

func TestDeprecatedWrappersStillWork(t *testing.T) {
	env, cloud := world(t)
	client := NewClient(cloud, "acct")
	deployEcho(t, cloud, client, 20*time.Millisecond)
	env.Go("client", func(p *sim.Proc) error {
		if resp := client.Invoke(p, Call{AZ: "r1-az-a", Function: "fn"}); !resp.OK() {
			t.Errorf("Invoke wrapper: %v", resp.Err)
		}
		for _, resp := range client.InvokeBatch(p, Call{AZ: "r1-az-a", Function: "fn"}, 8) {
			if !resp.OK() {
				t.Errorf("InvokeBatch wrapper: %v", resp.Err)
			}
		}
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}
