// Package ciparity pins the contract between `make ci` and the GitHub
// workflow: every target the ci meta-target runs must appear as a
// `run: make <target>` step in .github/workflows/ci.yml, and every make
// step in the workflow must be part of `make ci`. Before this test the
// contract was a pair of "keep in sync" comments; comments don't fail.
package ciparity

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

func repoFile(t *testing.T, rel string) string {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("..", "..", rel))
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// makeCITargets parses the Makefile's `ci:` rule into its target list.
func makeCITargets(t *testing.T) []string {
	t.Helper()
	for _, line := range strings.Split(repoFile(t, "Makefile"), "\n") {
		if rest, ok := strings.CutPrefix(line, "ci:"); ok {
			targets := strings.Fields(rest)
			if len(targets) == 0 {
				t.Fatal("Makefile ci target has no prerequisites")
			}
			return targets
		}
	}
	t.Fatal("no `ci:` rule in Makefile")
	return nil
}

var workflowMake = regexp.MustCompile(`run:\s*make\s+(\S+)`)

// workflowTargets parses every `run: make <target>` step across all jobs.
func workflowTargets(t *testing.T) []string {
	t.Helper()
	var targets []string
	for _, m := range workflowMake.FindAllStringSubmatch(repoFile(t, filepath.Join(".github", "workflows", "ci.yml")), -1) {
		targets = append(targets, m[1])
	}
	if len(targets) == 0 {
		t.Fatal("no `run: make ...` steps in ci.yml")
	}
	return targets
}

func TestMakeCIMatchesWorkflow(t *testing.T) {
	ci := makeCITargets(t)
	wf := workflowTargets(t)

	ciSet := map[string]bool{}
	for _, target := range ci {
		if ciSet[target] {
			t.Errorf("make ci runs %q twice", target)
		}
		ciSet[target] = true
	}
	wfSet := map[string]bool{}
	for _, target := range wf {
		if wfSet[target] {
			t.Errorf("ci.yml runs `make %s` twice", target)
		}
		wfSet[target] = true
	}

	for _, target := range ci {
		if !wfSet[target] {
			t.Errorf("make ci runs %q but no workflow step does", target)
		}
	}
	for _, target := range wf {
		if !ciSet[target] {
			t.Errorf("ci.yml runs `make %s` which is not part of `make ci`", target)
		}
	}
}

// TestWorkflowJobsGuarded: every job must carry a timeout-minutes guard so
// a hung sharded-sim run fails fast instead of eating the 6-hour default.
func TestWorkflowJobsGuarded(t *testing.T) {
	wf := repoFile(t, filepath.Join(".github", "workflows", "ci.yml"))
	// Two-space-indented keys appear under `on:` too; only the ones after
	// the jobs: section are job names.
	_, wf, found := strings.Cut(wf, "\njobs:\n")
	if !found {
		t.Fatal("no jobs: section in ci.yml")
	}
	jobs := regexp.MustCompile(`(?m)^  ([a-z][a-z0-9-]*):$`).FindAllStringSubmatch(wf, -1)
	if len(jobs) < 2 {
		t.Fatalf("expected the split build-test/smoke-bench jobs, found %d", len(jobs))
	}
	var names []string
	for _, j := range jobs {
		names = append(names, j[1])
	}
	sort.Strings(names)
	if got := strings.Join(names, ","); got != "build-test,smoke-bench" {
		t.Errorf("jobs = %s", got)
	}
	if got := strings.Count(wf, "timeout-minutes:"); got != len(jobs) {
		t.Errorf("%d jobs but %d timeout-minutes guards", len(jobs), got)
	}
}

// TestMakeCICoversTheGates: the meta-target must keep the load-bearing
// steps — dropping the race run or the bench gate from `make ci` would
// silently drop them from CI too, since the workflow mirrors the Makefile.
func TestMakeCICoversTheGates(t *testing.T) {
	ciSet := map[string]bool{}
	for _, target := range makeCITargets(t) {
		ciSet[target] = true
	}
	for _, want := range []string{"build", "vet", "fmt-check", "lint", "test", "race", "bench-check"} {
		if !ciSet[want] {
			t.Errorf("make ci no longer runs %q", want)
		}
	}
}
