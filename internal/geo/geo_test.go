package geo

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"skyfaas/internal/rng"
)

func TestHaversineKnownDistances(t *testing.T) {
	tests := []struct {
		name   string
		a, b   string
		wantKM float64
		tolKM  float64
	}{
		{"seattle-newyork", "seattle", "new-york", 3870, 100},
		{"london-frankfurt", "london", "frankfurt", 640, 40},
		{"tokyo-sydney", "tokyo", "sydney", 7820, 150},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a, _ := City(tt.a)
			b, _ := City(tt.b)
			got := Haversine(a, b)
			if got < tt.wantKM-tt.tolKM || got > tt.wantKM+tt.tolKM {
				t.Fatalf("distance = %.0f km, want %.0f±%.0f", got, tt.wantKM, tt.tolKM)
			}
		})
	}
}

func TestHaversineProperties(t *testing.T) {
	if err := quick.Check(func(lat1, lon1, lat2, lon2 float64) bool {
		a := Coord{Lat: wrapLat(lat1), Lon: wrapLon(lon1)}
		b := Coord{Lat: wrapLat(lat2), Lon: wrapLon(lon2)}
		d1 := Haversine(a, b)
		d2 := Haversine(b, a)
		// Symmetric, non-negative, bounded by half the circumference.
		return d1 >= 0 && d1 == d2 && d1 <= 20100
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func wrapLat(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 90)
}

func wrapLon(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 180)
}

func TestHaversineZero(t *testing.T) {
	c := Coord{Lat: 10, Lon: 20}
	if d := Haversine(c, c); d != 0 {
		t.Fatalf("self distance = %v", d)
	}
}

func TestBaseRTTMonotoneWithDistance(t *testing.T) {
	m := DefaultLatencyModel()
	sea, _ := City("seattle")
	ny, _ := City("new-york")
	syd, _ := City("sydney")
	near := m.BaseRTT(sea, ny)
	far := m.BaseRTT(sea, syd)
	if near >= far {
		t.Fatalf("near RTT %v >= far RTT %v", near, far)
	}
	if near < 8*time.Millisecond {
		t.Fatalf("RTT below fixed overhead: %v", near)
	}
}

func TestRTTJitterBounded(t *testing.T) {
	m := DefaultLatencyModel()
	s := rng.New(1)
	a, _ := City("london")
	b, _ := City("frankfurt")
	base := float64(m.BaseRTT(a, b))
	for i := 0; i < 1000; i++ {
		rtt := float64(m.RTT(a, b, s))
		if rtt < base*(1-m.JitterFrac)-1 || rtt > base*(1+m.JitterFrac)+1 {
			t.Fatalf("jittered RTT %v outside ±%.0f%% of %v", rtt, m.JitterFrac*100, base)
		}
	}
}

func TestRTTNilStreamDeterministic(t *testing.T) {
	m := DefaultLatencyModel()
	a, _ := City("tokyo")
	b, _ := City("sydney")
	if m.RTT(a, b, nil) != m.BaseRTT(a, b) {
		t.Fatal("nil-stream RTT should equal BaseRTT")
	}
}

func TestCityLookup(t *testing.T) {
	if _, ok := City("seattle"); !ok {
		t.Fatal("seattle missing")
	}
	if _, ok := City("atlantis"); ok {
		t.Fatal("atlantis found")
	}
}
