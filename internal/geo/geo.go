// Package geo models the physical geography underneath the sky: great-circle
// distances between clients and cloud regions, and the round-trip network
// latency the smart routing system must trade off against faster hardware
// (§3.4's client–region distance heuristic).
package geo

import (
	"math"
	"time"

	"skyfaas/internal/rng"
)

// Coord is a WGS84 latitude/longitude pair in degrees.
type Coord struct {
	Lat float64
	Lon float64
}

// earthRadiusKM is the mean Earth radius.
const earthRadiusKM = 6371.0

// Haversine returns the great-circle distance between a and b in kilometres.
func Haversine(a, b Coord) float64 {
	const deg = math.Pi / 180
	dLat := (b.Lat - a.Lat) * deg
	dLon := (b.Lon - a.Lon) * deg
	lat1 := a.Lat * deg
	lat2 := b.Lat * deg
	h := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKM * math.Asin(math.Min(1, math.Sqrt(h)))
}

// LatencyModel converts distance into request round-trip time. The defaults
// follow the usual fibre rule of thumb (~1 ms RTT per 100 km along the great
// circle, inflated for real routing) plus a fixed termination overhead.
type LatencyModel struct {
	// OverheadMS is the distance-independent RTT floor (TLS termination,
	// front-end routing, last-mile).
	OverheadMS float64
	// MSPerKM is RTT milliseconds added per great-circle kilometre.
	MSPerKM float64
	// PathInflation multiplies the great-circle distance to account for
	// non-geodesic fibre paths.
	PathInflation float64
	// JitterFrac is the half-width of the uniform multiplicative jitter
	// applied per request (0.1 = ±10%).
	JitterFrac float64
}

// DefaultLatencyModel returns the model used throughout the experiments.
func DefaultLatencyModel() LatencyModel {
	return LatencyModel{
		OverheadMS:    8,
		MSPerKM:       0.01,
		PathInflation: 1.3,
		JitterFrac:    0.1,
	}
}

// BaseRTT returns the deterministic (jitter-free) round trip between two
// coordinates.
func (m LatencyModel) BaseRTT(a, b Coord) time.Duration {
	km := Haversine(a, b) * m.PathInflation
	ms := m.OverheadMS + m.MSPerKM*km
	return time.Duration(ms * float64(time.Millisecond))
}

// RTT returns a jittered round trip drawn from s.
func (m LatencyModel) RTT(a, b Coord, s *rng.Stream) time.Duration {
	base := float64(m.BaseRTT(a, b))
	if s == nil || m.JitterFrac <= 0 {
		return time.Duration(base)
	}
	return time.Duration(s.Jitter(base, m.JitterFrac))
}

// Cities provides client vantage points for experiments and examples.
var Cities = map[string]Coord{
	"seattle":   {47.61, -122.33},
	"new-york":  {40.71, -74.01},
	"london":    {51.51, -0.13},
	"frankfurt": {50.11, 8.68},
	"tokyo":     {35.68, 139.69},
	"sydney":    {-33.87, 151.21},
	"sao-paulo": {-23.55, -46.63},
	"mumbai":    {19.08, 72.88},
}

// City returns a named vantage point; ok is false for unknown names.
func City(name string) (Coord, bool) {
	c, ok := Cities[name]
	return c, ok
}
