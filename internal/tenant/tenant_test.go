package tenant

import (
	"errors"
	"strings"
	"testing"
	"time"

	"skyfaas/internal/metrics"
)

var epoch = time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)

func newFixtureRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry(Config{})
	for _, tn := range Fixture() {
		if err := r.Create(tn, epoch); err != nil {
			t.Fatalf("Create(%s): %v", tn.ID, err)
		}
	}
	return r
}

func TestFixtureLoadsAndResolves(t *testing.T) {
	r := newFixtureRegistry(t)
	if r.Len() != 3 {
		t.Fatalf("fixture tenants = %d, want 3", r.Len())
	}
	tn, ok := r.Resolve("sk-acme-7f3a")
	if !ok || tn.ID != "acme" {
		t.Fatalf("Resolve(acme key) = %+v, %v", tn, ok)
	}
	if tn.Admin {
		t.Error("acme should not be admin")
	}
	ops, ok := r.Resolve("sk-ops-0001")
	if !ok || !ops.Admin {
		t.Fatalf("ops key should resolve to an admin, got %+v, %v", ops, ok)
	}
	if _, ok := r.Resolve("sk-nope"); ok {
		t.Error("unknown key resolved")
	}
	ids := make([]string, 0, 3)
	for _, tn := range r.List() {
		ids = append(ids, tn.ID)
	}
	if got := strings.Join(ids, ","); got != "acme,burst-lab,ops" {
		t.Errorf("List order = %s", got)
	}
}

func TestCreateValidation(t *testing.T) {
	r := newFixtureRegistry(t)
	cases := []struct {
		name string
		t    Tenant
	}{
		{"empty id", Tenant{Keys: []string{"k"}}},
		{"id with slash", Tenant{ID: "a/b", Keys: []string{"k"}}},
		{"no keys", Tenant{ID: "x"}},
		{"empty key", Tenant{ID: "x", Keys: []string{""}}},
		{"negative quota", Tenant{ID: "x", Keys: []string{"k"}, QuotaSlots: -1}},
		{"rate without cap", Tenant{ID: "x", Keys: []string{"k"}, BudgetPerHour: 1}},
	}
	for _, c := range cases {
		if err := r.Create(c.t, epoch); err == nil {
			t.Errorf("%s: Create accepted %+v", c.name, c.t)
		}
	}
	if err := r.Create(Tenant{ID: "acme", Keys: []string{"k2"}}, epoch); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate ID error = %v, want ErrExists", err)
	}
	if err := r.Create(Tenant{ID: "x", Keys: []string{"sk-acme-7f3a"}}, epoch); !errors.Is(err, ErrDuplicateKey) {
		t.Errorf("duplicate key error = %v, want ErrDuplicateKey", err)
	}
	// A rejected create must not leak key registrations.
	if _, ok := r.Resolve("k2"); ok {
		t.Error("rejected create leaked a key")
	}
}

func TestDeleteUnregistersKeys(t *testing.T) {
	r := newFixtureRegistry(t)
	if !r.Delete("acme") {
		t.Fatal("Delete(acme) = false")
	}
	if r.Delete("acme") {
		t.Error("second Delete(acme) = true")
	}
	if _, ok := r.Resolve("sk-acme-7f3a"); ok {
		t.Error("deleted tenant's key still resolves")
	}
	// The freed key can be reused.
	if err := r.Create(Tenant{ID: "acme2", Keys: []string{"sk-acme-7f3a"}}, epoch); err != nil {
		t.Errorf("reusing freed key: %v", err)
	}
}

func TestQuotaShedsWithoutGlobalSpend(t *testing.T) {
	r := NewRegistry(Config{})
	if err := r.Create(Tenant{ID: "t", Keys: []string{"k"}, QuotaSlots: 2}, epoch); err != nil {
		t.Fatal(err)
	}
	l1, err := r.Acquire("t", 1, epoch)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Acquire("t", 1, epoch); err != nil {
		t.Fatal(err)
	}
	_, err = r.Acquire("t", 1, epoch)
	var le *LimitError
	if !errors.As(err, &le) || !errors.Is(err, ErrLimited) {
		t.Fatalf("third acquire = %v, want *LimitError wrapping ErrLimited", err)
	}
	if le.Reason != OverQuota {
		t.Errorf("reason = %s, want %s", le.Reason, OverQuota)
	}
	if le.Inflight != 2 || le.QuotaSlots != 2 {
		t.Errorf("detail = %d/%d, want 2/2", le.Inflight, le.QuotaSlots)
	}
	if le.RetryAfter < 100*time.Millisecond || le.RetryAfter > 5*time.Second {
		t.Errorf("RetryAfter %v outside clamp", le.RetryAfter)
	}
	// Releasing a slot readmits.
	r.Release(l1, epoch, 0)
	if _, err := r.Acquire("t", 1, epoch); err != nil {
		t.Errorf("acquire after release: %v", err)
	}
	u, _ := r.Usage("t", epoch)
	if u.ShedQuota != 1 || u.Admitted != 3 {
		t.Errorf("usage = %+v, want 1 quota shed / 3 admitted", u)
	}
}

func TestWeightedAcquire(t *testing.T) {
	r := NewRegistry(Config{})
	if err := r.Create(Tenant{ID: "t", Keys: []string{"k"}, QuotaSlots: 10}, epoch); err != nil {
		t.Fatal(err)
	}
	l, err := r.Acquire("t", 8, epoch)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Acquire("t", 4, epoch); !errors.Is(err, ErrLimited) {
		t.Fatalf("8+4 of 10 admitted: %v", err)
	}
	if _, err := r.Acquire("t", 2, epoch); err != nil {
		t.Errorf("8+2 of 10 shed: %v", err)
	}
	r.Release(l, epoch, 0)
	u, _ := r.Usage("t", epoch)
	if u.Inflight != 2 {
		t.Errorf("inflight after release = %d, want 2", u.Inflight)
	}
}

func TestUnlimitedTenant(t *testing.T) {
	r := NewRegistry(Config{})
	if err := r.Create(Tenant{ID: "t", Keys: []string{"k"}}, epoch); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := r.Acquire("t", 1, epoch); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
	}
}

func TestBudgetGovernor(t *testing.T) {
	r := NewRegistry(Config{})
	// $1/hour refill, $0.05 cap: two cheap bursts drain it.
	if err := r.Create(Tenant{ID: "t", Keys: []string{"k"}, BudgetPerHour: 1, BudgetCap: 0.05}, epoch); err != nil {
		t.Fatal(err)
	}
	now := epoch
	l, err := r.Acquire("t", 1, now)
	if err != nil {
		t.Fatal(err)
	}
	r.Release(l, now, 0.10) // over-drafts the bucket to -0.05
	_, err = r.Acquire("t", 1, now)
	var le *LimitError
	if !errors.As(err, &le) || le.Reason != BudgetExhausted {
		t.Fatalf("acquire with drained budget = %v, want budget_exhausted", err)
	}
	// -0.05 at $1/hour refills in 3 minutes; the hint clamps to MaxRetryAfter.
	if le.RetryAfter != 5*time.Second {
		t.Errorf("RetryAfter = %v, want the 5s clamp", le.RetryAfter)
	}
	if le.BalanceUSD >= 0 {
		t.Errorf("balance = %v, want negative", le.BalanceUSD)
	}
	// After the refill interval the tenant is admitted again.
	now = now.Add(4 * time.Minute)
	if _, err := r.Acquire("t", 1, now); err != nil {
		t.Errorf("acquire after refill: %v", err)
	}
	u, _ := r.Usage("t", now)
	if !u.Metered || u.ShedBudget != 1 || u.SpentUSD != 0.10 {
		t.Errorf("usage = %+v", u)
	}
	if u.BudgetBalanceUSD <= 0 {
		t.Errorf("balance after refill = %v, want positive", u.BudgetBalanceUSD)
	}
}

func TestAcquireUnknownTenant(t *testing.T) {
	r := NewRegistry(Config{})
	if _, err := r.Acquire("ghost", 1, epoch); !errors.Is(err, ErrUnknown) {
		t.Errorf("err = %v, want ErrUnknown", err)
	}
}

func TestReleaseZeroAndDeleted(t *testing.T) {
	r := newFixtureRegistry(t)
	r.Release(Lease{}, epoch, 1) // zero lease: no-op, no panic
	l, err := r.Acquire("acme", 1, epoch)
	if err != nil {
		t.Fatal(err)
	}
	r.Delete("acme")
	r.Release(l, epoch, 1) // tenant gone: no-op, no panic
}

func TestMetricsRollup(t *testing.T) {
	reg := metrics.NewRegistry()
	r := NewRegistry(Config{Metrics: reg})
	if err := r.Create(Tenant{ID: "t", Keys: []string{"k"}, QuotaSlots: 1}, epoch); err != nil {
		t.Fatal(err)
	}
	l, _ := r.Acquire("t", 1, epoch)
	if _, err := r.Acquire("t", 1, epoch); !errors.Is(err, ErrLimited) {
		t.Fatal("expected quota shed")
	}
	r.Release(l, epoch, 0.25)
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`sky_tenant_admitted_total{tenant="t"} 1`,
		`sky_tenant_shed_total{reason="tenant_over_quota",tenant="t"} 1`,
		`sky_tenant_inflight{tenant="t"} 0`,
		`sky_tenant_spent_usd{tenant="t"} 0.25`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics text missing %q\n%s", want, text)
		}
	}
}

func TestLoadJSON(t *testing.T) {
	src := `[
	  {"id": "a", "name": "A", "keys": ["ka"], "quotaSlots": 4},
	  {"id": "b", "keys": ["kb"], "admin": true, "budgetPerHourUSD": 2, "budgetCapUSD": 1}
	]`
	ts, err := Load(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 || ts[0].ID != "a" || ts[0].QuotaSlots != 4 || !ts[1].Admin {
		t.Fatalf("Load = %+v", ts)
	}
	if _, err := Load(strings.NewReader(`[{"id": "", "keys": ["k"]}]`)); err == nil {
		t.Error("Load accepted empty ID")
	}
	if _, err := Load(strings.NewReader(`[{"id": "a", "keys": ["k"], "bogus": 1}]`)); err == nil {
		t.Error("Load accepted unknown field")
	}
}
