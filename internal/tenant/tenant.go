// Package tenant is skyd's account model: the identity, quota, and billing
// layer that turns the single-tenant sim harness into a shared control
// plane. A Registry maps API keys to tenants and enforces two per-tenant
// governors in front of the global admission gate:
//
//   - a concurrency quota (QuotaSlots): a tenant over its own slots sheds
//     with a typed 429 *before* touching global capacity, so one tenant's
//     storm cannot starve another's steady traffic;
//   - a USD budget (BudgetPerHour/BudgetCap): a token bucket in the
//     internal/refresh governor shape — balance accrues over time up to the
//     cap, each served burst debits its actual cost, and a tenant whose
//     balance is exhausted sheds until the bucket climbs back above zero.
//
// Determinism contract: like internal/admission, the registry never reads
// the wall clock — every method that needs time takes an explicit now.
// Under skyd the callers pass real time; under the simulation (EX-10) they
// pass virtual time, and the same seed replays bit-identically. All state
// is mutex-guarded and safe for concurrent use from HTTP handlers.
package tenant

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"skyfaas/internal/metrics"
	"skyfaas/internal/refresh"
)

// Tenant is one account: who may call skyd, how much concurrency it may
// hold, and how fast its spending allowance refills.
type Tenant struct {
	// ID is the stable account identifier; it appears in URLs
	// (/v1/tenants/{id}/usage) and metric labels, so it must be non-empty
	// and free of spaces and slashes.
	ID string `json:"id"`
	// Name is the display name.
	Name string `json:"name"`
	// Keys are the API keys resolving to this tenant. Every key must be
	// unique across the registry.
	Keys []string `json:"keys"`
	// Admin marks the account as a control-plane operator: tenant CRUD and
	// other tenants' usage are admin-only.
	Admin bool `json:"admin,omitempty"`
	// QuotaSlots is the tenant's concurrent-invocation ceiling (0 = no
	// per-tenant concurrency limit).
	QuotaSlots int `json:"quotaSlots,omitempty"`
	// BudgetPerHour is the USD refill rate of the tenant's spending bucket
	// and BudgetCap its ceiling. Both zero means unmetered spend.
	BudgetPerHour float64 `json:"budgetPerHourUSD,omitempty"`
	BudgetCap     float64 `json:"budgetCapUSD,omitempty"`
}

// Validate reports whether the tenant record is usable.
func (t Tenant) Validate() error {
	if t.ID == "" {
		return fmt.Errorf("tenant: empty id")
	}
	if strings.ContainsAny(t.ID, " /") {
		return fmt.Errorf("tenant: id %q contains spaces or slashes", t.ID)
	}
	if len(t.Keys) == 0 {
		return fmt.Errorf("tenant %s: no API keys", t.ID)
	}
	for _, k := range t.Keys {
		if k == "" {
			return fmt.Errorf("tenant %s: empty API key", t.ID)
		}
	}
	if t.QuotaSlots < 0 {
		return fmt.Errorf("tenant %s: negative quota %d", t.ID, t.QuotaSlots)
	}
	if t.BudgetPerHour < 0 || t.BudgetCap < 0 {
		return fmt.Errorf("tenant %s: negative budget", t.ID)
	}
	if t.metered() && t.BudgetCap == 0 {
		return fmt.Errorf("tenant %s: budget rate without a cap (the bucket would start empty)", t.ID)
	}
	return nil
}

// metered reports whether the tenant carries a spend governor.
func (t Tenant) metered() bool { return t.BudgetPerHour > 0 || t.BudgetCap > 0 }

// Registry errors. ErrLimited is the sentinel every per-tenant shed wraps;
// errors.Is(err, ErrLimited) identifies quota/budget rejections regardless
// of detail.
var (
	ErrLimited = errors.New("tenant: limited")
	// ErrUnknown is returned for operations addressed to a tenant ID the
	// registry does not hold.
	ErrUnknown = errors.New("tenant: unknown tenant")
	// ErrExists is returned by Create when the ID is already registered.
	ErrExists = errors.New("tenant: tenant exists")
	// ErrDuplicateKey is returned by Create when one of the new tenant's
	// keys already resolves to another account.
	ErrDuplicateKey = errors.New("tenant: duplicate API key")
)

// Reason classifies a per-tenant shed.
type Reason string

// The per-tenant shed reasons; their values double as API error codes.
const (
	// OverQuota: the tenant holds its full concurrency quota.
	OverQuota Reason = "tenant_over_quota"
	// BudgetExhausted: the tenant's spending bucket is at or below zero.
	BudgetExhausted Reason = "budget_exhausted"
)

// LimitError is the typed rejection a per-tenant governor returns. It
// carries everything the HTTP layer needs for a 429: the shed reason, the
// Retry-After hint, and the tenant's load/budget picture at rejection time.
type LimitError struct {
	Tenant     string
	Reason     Reason
	RetryAfter time.Duration
	Inflight   int
	QuotaSlots int
	BalanceUSD float64
}

// Error implements error.
func (e *LimitError) Error() string {
	switch e.Reason {
	case BudgetExhausted:
		return fmt.Sprintf("tenant %s: budget exhausted (balance %.4f USD), retry after %v",
			e.Tenant, e.BalanceUSD, e.RetryAfter)
	default:
		return fmt.Sprintf("tenant %s: over quota: %d/%d slots in use, retry after %v",
			e.Tenant, e.Inflight, e.QuotaSlots, e.RetryAfter)
	}
}

// Unwrap ties the typed error to the ErrLimited sentinel.
func (e *LimitError) Unwrap() error { return ErrLimited }

// Lease is proof of a per-tenant admission; pass it back to Release exactly
// once. The zero Lease is a no-op.
type Lease struct {
	id     string
	weight int
}

// Tenant returns the account the lease was granted to.
func (l Lease) Tenant() string { return l.id }

// Weight returns how many slots the lease holds.
func (l Lease) Weight() int { return l.weight }

// Config parameterizes a Registry.
type Config struct {
	// MinRetryAfter / MaxRetryAfter clamp the Retry-After hint attached to
	// per-tenant sheds (defaults 100ms / 5s).
	MinRetryAfter time.Duration
	MaxRetryAfter time.Duration
	// Metrics receives the sky_tenant_* series; nil disables them.
	Metrics *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.MinRetryAfter == 0 {
		c.MinRetryAfter = 100 * time.Millisecond
	}
	if c.MaxRetryAfter == 0 {
		c.MaxRetryAfter = 5 * time.Second
	}
	return c
}

// account is one tenant's live state: the record plus quota/budget
// bookkeeping and rollup counters.
type account struct {
	t        Tenant
	inflight int
	admitted uint64
	shed     map[Reason]uint64
	spent    float64
	budget   *refresh.Budget // nil when unmetered

	mAdmitted *metrics.Counter
	mShed     map[Reason]*metrics.Counter
	mInflight *metrics.Gauge
	mSpent    *metrics.Gauge
}

// Registry holds the accounts and enforces their governors. Construct with
// NewRegistry; the zero value is not usable.
type Registry struct {
	mu       sync.Mutex
	cfg      Config
	accounts map[string]*account
	byKey    map[string]string // API key -> tenant ID
}

// NewRegistry returns an empty registry.
func NewRegistry(cfg Config) *Registry {
	return &Registry{
		cfg:      cfg.withDefaults(),
		accounts: make(map[string]*account),
		byKey:    make(map[string]string),
	}
}

// Create registers a tenant. The budget bucket (if metered) starts full at
// now. Fails with ErrExists on a duplicate ID and ErrDuplicateKey when a
// key already resolves elsewhere.
func (r *Registry) Create(t Tenant, now time.Time) error {
	if err := t.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.accounts[t.ID]; ok {
		return fmt.Errorf("%w: %q", ErrExists, t.ID)
	}
	seen := make(map[string]bool, len(t.Keys))
	for _, k := range t.Keys {
		if owner, ok := r.byKey[k]; ok {
			return fmt.Errorf("%w: already held by %q", ErrDuplicateKey, owner)
		}
		if seen[k] {
			return fmt.Errorf("%w: repeated within %q", ErrDuplicateKey, t.ID)
		}
		seen[k] = true
	}
	a := &account{
		t:    t,
		shed: make(map[Reason]uint64),
	}
	if t.metered() {
		a.budget = refresh.NewBudget(t.BudgetPerHour, t.BudgetCap, now)
	}
	if reg := r.cfg.Metrics; reg != nil {
		lbl := metrics.L("tenant", t.ID)
		a.mAdmitted = reg.Counter("sky_tenant_admitted_total",
			"Requests admitted past the tenant's governors.", lbl)
		a.mShed = map[Reason]*metrics.Counter{
			OverQuota: reg.Counter("sky_tenant_shed_total",
				"Requests shed by a per-tenant governor, by reason.", lbl, metrics.L("reason", string(OverQuota))),
			BudgetExhausted: reg.Counter("sky_tenant_shed_total",
				"Requests shed by a per-tenant governor, by reason.", lbl, metrics.L("reason", string(BudgetExhausted))),
		}
		a.mInflight = reg.Gauge("sky_tenant_inflight",
			"Requests currently holding tenant quota slots.", lbl)
		a.mSpent = reg.Gauge("sky_tenant_spent_usd",
			"Cumulative USD billed to the tenant.", lbl)
	}
	for _, k := range t.Keys {
		r.byKey[k] = t.ID
	}
	r.accounts[t.ID] = a
	return nil
}

// Get returns the tenant record for id.
func (r *Registry) Get(id string) (Tenant, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	a, ok := r.accounts[id]
	if !ok {
		return Tenant{}, false
	}
	return a.t, true
}

// Delete removes a tenant and its keys; it reports whether the ID existed.
// In-flight leases belonging to the deleted tenant release into the void
// harmlessly.
func (r *Registry) Delete(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	a, ok := r.accounts[id]
	if !ok {
		return false
	}
	for _, k := range a.t.Keys {
		delete(r.byKey, k)
	}
	delete(r.accounts, id)
	return true
}

// List returns every tenant record, sorted by ID.
func (r *Registry) List() []Tenant {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Tenant, 0, len(r.accounts))
	for _, a := range r.accounts {
		out = append(out, a.t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of registered tenants.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.accounts)
}

// Resolve maps an API key to its tenant.
func (r *Registry) Resolve(key string) (Tenant, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	id, ok := r.byKey[key]
	if !ok {
		return Tenant{}, false
	}
	return r.accounts[id].t, true
}

// Acquire asks the tenant's governors for weight concurrent slots at time
// now. On success the returned lease must be released with Release. On a
// quota or budget rejection it returns a *LimitError (wrapping ErrLimited)
// and holds nothing — the point of the layering is that a tenant over its
// own limits never consumes global admission capacity.
func (r *Registry) Acquire(id string, weight int, now time.Time) (Lease, error) {
	if weight < 1 {
		weight = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	a, ok := r.accounts[id]
	if !ok {
		return Lease{}, fmt.Errorf("%w: %q", ErrUnknown, id)
	}
	if q := a.t.QuotaSlots; q > 0 && a.inflight+weight > q {
		return Lease{}, r.shedLocked(a, OverQuota, now)
	}
	if a.budget != nil && !a.budget.Allows(now) {
		return Lease{}, r.shedLocked(a, BudgetExhausted, now)
	}
	a.inflight += weight
	a.admitted++
	a.mAdmitted.Inc()
	a.mInflight.Set(float64(a.inflight))
	return Lease{id: id, weight: weight}, nil
}

// shedLocked records the rejection and builds the typed 429 detail.
// Callers hold mu.
func (r *Registry) shedLocked(a *account, reason Reason, now time.Time) *LimitError {
	a.shed[reason]++
	a.mShed[reason].Inc()
	e := &LimitError{
		Tenant:     a.t.ID,
		Reason:     reason,
		Inflight:   a.inflight,
		QuotaSlots: a.t.QuotaSlots,
	}
	switch reason {
	case BudgetExhausted:
		e.BalanceUSD = a.budget.Balance(now)
		e.RetryAfter = r.clamp(refillTime(e.BalanceUSD, a.t.BudgetPerHour))
	default:
		// A slot frees when some in-flight burst finishes; without a
		// service-time model at this layer, hint proportionally to how
		// oversubscribed the tenant is.
		over := float64(a.inflight-a.t.QuotaSlots) + 1
		frac := over / float64(a.t.QuotaSlots)
		if frac < 0.25 {
			frac = 0.25
		}
		e.RetryAfter = r.clamp(time.Duration(frac * float64(time.Second)))
	}
	return e
}

// refillTime is how long a drained bucket needs to climb back above zero.
func refillTime(balance, ratePerHour float64) time.Duration {
	if ratePerHour <= 0 {
		return time.Duration(1<<62 - 1) // clamped to MaxRetryAfter
	}
	hours := -balance / ratePerHour
	return time.Duration(hours * float64(time.Hour))
}

func (r *Registry) clamp(d time.Duration) time.Duration {
	if d < r.cfg.MinRetryAfter {
		return r.cfg.MinRetryAfter
	}
	if d > r.cfg.MaxRetryAfter {
		return r.cfg.MaxRetryAfter
	}
	return d
}

// Release returns a lease's slots and debits the billed cost against the
// tenant's budget. A zero lease, or one whose tenant has since been
// deleted, is a no-op.
func (r *Registry) Release(l Lease, now time.Time, costUSD float64) {
	if l.id == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	a, ok := r.accounts[l.id]
	if !ok {
		return
	}
	a.inflight -= l.weight
	if a.inflight < 0 {
		a.inflight = 0
	}
	if costUSD > 0 {
		a.spent += costUSD
		if a.budget != nil {
			a.budget.Debit(now, costUSD)
		}
	}
	a.mInflight.Set(float64(a.inflight))
	a.mSpent.Set(a.spent)
}

// Usage is one tenant's billing/load rollup, served by
// GET /v1/tenants/{id}/usage.
type Usage struct {
	Tenant           string  `json:"tenant"`
	Name             string  `json:"name"`
	Admin            bool    `json:"admin"`
	QuotaSlots       int     `json:"quotaSlots"`
	Inflight         int     `json:"inflight"`
	Admitted         uint64  `json:"admitted"`
	ShedQuota        uint64  `json:"shedQuota"`
	ShedBudget       uint64  `json:"shedBudget"`
	SpentUSD         float64 `json:"spentUSD"`
	Metered          bool    `json:"metered"`
	BudgetPerHourUSD float64 `json:"budgetPerHourUSD,omitempty"`
	BudgetCapUSD     float64 `json:"budgetCapUSD,omitempty"`
	BudgetBalanceUSD float64 `json:"budgetBalanceUSD,omitempty"`
	// WarmPoolUSD is the platform's warm-pool provisioning spend —
	// pre-warming is a platform service billed to the operator account, so
	// the figure is the same on every tenant's rollup. The registry never
	// fills it; skyd stamps it from the cloud meter when a warm pool runs.
	WarmPoolUSD float64 `json:"warmPoolUSD,omitempty"`
}

func (r *Registry) usageLocked(a *account, now time.Time) Usage {
	u := Usage{
		Tenant:     a.t.ID,
		Name:       a.t.Name,
		Admin:      a.t.Admin,
		QuotaSlots: a.t.QuotaSlots,
		Inflight:   a.inflight,
		Admitted:   a.admitted,
		ShedQuota:  a.shed[OverQuota],
		ShedBudget: a.shed[BudgetExhausted],
		SpentUSD:   a.spent,
	}
	if a.budget != nil {
		u.Metered = true
		u.BudgetPerHourUSD = a.t.BudgetPerHour
		u.BudgetCapUSD = a.t.BudgetCap
		u.BudgetBalanceUSD = a.budget.Balance(now)
	}
	return u
}

// Usage snapshots one tenant's rollup at now.
func (r *Registry) Usage(id string, now time.Time) (Usage, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	a, ok := r.accounts[id]
	if !ok {
		return Usage{}, false
	}
	return r.usageLocked(a, now), true
}

// Usages snapshots every tenant's rollup at now, sorted by ID.
func (r *Registry) Usages(now time.Time) []Usage {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Usage, 0, len(r.accounts))
	for _, a := range r.accounts {
		out = append(out, r.usageLocked(a, now))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// Fixture returns the deterministic development registry: an operator
// account plus two workload tenants with contrasting governors. Tests, the
// EX-10 experiment harness, and `skyd -tenants fixture` all load exactly
// this set, so keys and limits are stable across runs and documentation.
func Fixture() []Tenant {
	return []Tenant{
		{ID: "ops", Name: "Cluster operator", Keys: []string{"sk-ops-0001"}, Admin: true},
		{ID: "acme", Name: "Acme Pipelines", Keys: []string{"sk-acme-7f3a"},
			QuotaSlots: 32, BudgetPerHour: 60, BudgetCap: 10},
		{ID: "burst-lab", Name: "Burst Lab", Keys: []string{"sk-lab-21c9"},
			QuotaSlots: 8},
	}
}

// Load decodes a tenant list from JSON (an array of Tenant records) and
// validates each entry; it is the file-based counterpart of Fixture for
// `skyd -tenants <path>`.
func Load(src io.Reader) ([]Tenant, error) {
	dec := json.NewDecoder(src)
	dec.DisallowUnknownFields()
	var ts []Tenant
	if err := dec.Decode(&ts); err != nil {
		return nil, fmt.Errorf("tenant: bad tenants file: %w", err)
	}
	for _, t := range ts {
		if err := t.Validate(); err != nil {
			return nil, err
		}
	}
	return ts, nil
}
