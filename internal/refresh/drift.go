package refresh

import (
	"time"

	"skyfaas/internal/charact"
	"skyfaas/internal/cpu"
)

// Drift detection: the paper's §3.5 evaluation (EX-4) shows per-AZ CPU
// characterizations decay within hours, and the chaos drift-burst fault
// makes the decay violent. The detector compares what routed traffic has
// *actually* been landing on (the passive collector's sliding window) with
// what the store still *believes* (the last active characterization) and
// scores the divergence, so the scheduler can re-sample exactly the zones
// whose model has rotted — instead of re-sampling everything on a timer.

// DriftScore is one zone's model-vs-reality divergence at a point in time.
type DriftScore struct {
	AZ string
	// TV is the total-variation distance between the passive-window
	// distribution and the stored characterization, in [0, 1]
	// (charact.APE / 100). Zero when not Confident.
	TV float64
	// Chi2 is the chi-square statistic of the passive counts against the
	// stored distribution — a sample-size-aware companion to TV that grows
	// with both divergence and evidence. Zero when not Confident.
	Chi2 float64
	// Samples is the live passive observation count backing the score.
	Samples int
	// Confident reports whether the score is trustworthy: the zone has a
	// stored characterization to compare against AND at least MinSamples
	// live passive observations. A zone whose passive window has fully
	// expired is not confidently drifted — it is merely unobserved.
	Confident bool
}

// Detector scores per-zone drift from a passive collector and a store.
type Detector struct {
	passive *charact.Passive
	store   *charact.Store
	// minSamples is the live-observation floor below which no confident
	// score is emitted.
	minSamples int
}

// NewDetector builds a detector; minSamples <= 0 defaults to 25.
func NewDetector(passive *charact.Passive, store *charact.Store, minSamples int) *Detector {
	if minSamples <= 0 {
		minSamples = 25
	}
	return &Detector{passive: passive, store: store, minSamples: minSamples}
}

// MinSamples returns the confidence floor.
func (d *Detector) MinSamples() int { return d.minSamples }

// Score computes az's drift score at now. Expired passive observations are
// aged out first (the collector window slides with now), so a zone that
// stopped carrying traffic loses confidence rather than reporting a stale
// divergence forever.
func (d *Detector) Score(az string, now time.Time) DriftScore {
	score := DriftScore{AZ: az}
	if d.passive == nil || d.store == nil {
		return score
	}
	stored, ok := d.store.Last(az)
	if !ok {
		score.Samples = d.passive.Samples(az, now)
		return score
	}
	obs, ok := d.passive.Characterization(az, now, d.minSamples)
	if !ok {
		score.Samples = d.passive.Samples(az, now)
		return score
	}
	score.Samples = obs.Samples
	score.Confident = true
	score.TV = charact.APE(obs.Dist(), stored.Dist()) / 100
	score.Chi2 = chiSquare(obs.Counts, stored.Dist())
	return score
}

// chiSquare computes the chi-square statistic of observed counts against an
// expected distribution, iterating in catalogue order so floating-point
// rounding is reproducible. Kinds the expected distribution has never seen
// get a small floor share instead of a division by zero — an observation on
// a CPU the model says does not exist is the strongest drift evidence there
// is, and the floor turns it into a large, finite contribution.
func chiSquare(obs charact.Counts, expected charact.Dist) float64 {
	const floorShare = 1e-3
	total := obs.Total()
	if total == 0 {
		return 0
	}
	var chi2 float64
	for _, k := range cpu.Kinds() {
		share := expected.Share(k)
		n := float64(obs[k])
		if share <= 0 {
			if n == 0 {
				continue
			}
			share = floorShare
		}
		exp := share * float64(total)
		diff := n - exp
		chi2 += diff * diff / exp
	}
	return chi2
}
