package refresh

import (
	"errors"
	"testing"
	"time"

	"skyfaas/internal/charact"
	"skyfaas/internal/cpu"
	"skyfaas/internal/sim"
)

// fakeSampler is a scripted Resampler: each call burns a little virtual
// time, returns the per-zone mix it was configured with, and records the
// call order.
type fakeSampler struct {
	calls []string
	cost  float64
	delay time.Duration
	mix   map[string]charact.Counts
	fail  map[string]error
}

func (f *fakeSampler) Resample(p *sim.Proc, az string, polls int) (charact.Characterization, error) {
	if f.delay > 0 {
		p.Sleep(f.delay)
	}
	f.calls = append(f.calls, az)
	if err := f.fail[az]; err != nil {
		return charact.Characterization{}, err
	}
	counts := f.mix[az]
	if counts == nil {
		counts = charact.Counts{cpu.Xeon25: 10}
	}
	return charact.Characterization{
		AZ:      az,
		Taken:   p.Env().Now(),
		Polls:   polls,
		Samples: counts.Total(),
		Counts:  counts.Clone(),
		CostUSD: f.cost,
	}, nil
}

func newMaintainer(t *testing.T, env *sim.Env, cfg Config, store *charact.Store, pass *charact.Passive, fs *fakeSampler) *Maintainer {
	t.Helper()
	m, err := New(env, cfg, store, pass, fs, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestNewValidates(t *testing.T) {
	env := sim.NewEnv(epoch)
	store := charact.NewStore(0)
	if _, err := New(env, Config{Mode: "sometimes"}, store, nil, &fakeSampler{}, nil); err == nil {
		t.Fatal("unknown mode must be rejected")
	}
	if _, err := New(env, Config{}, store, nil, nil, nil); err == nil {
		t.Fatal("nil sampler must be rejected")
	}
	m, err := New(env, Config{}, store, nil, &fakeSampler{}, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	cfg := m.Config()
	if cfg.Mode != ModeDrift || cfg.TickEvery != time.Minute || cfg.MaxAge != time.Hour {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestModeAgeRefreshesOnStalenessWithCooldown(t *testing.T) {
	env := sim.NewEnv(epoch)
	store := charact.NewStore(0)
	storedChar(store, "az-a", epoch, charact.Counts{cpu.Xeon30: 50})
	fs := &fakeSampler{cost: 0.01, delay: 30 * time.Second}
	m := newMaintainer(t, env, Config{
		Zones:     []string{"az-a"},
		Mode:      ModeAge,
		TickEvery: time.Minute,
		MaxAge:    10 * time.Minute,
		Cooldown:  30 * time.Minute,
	}, store, nil, fs)
	m.Start()
	if err := env.RunFor(45 * time.Minute); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	m.Stop()

	// Due at 10m (age hits MaxAge), then again at 40m (cooldown expires
	// and the refreshed model is stale again by then).
	if len(fs.calls) != 2 {
		t.Fatalf("calls = %v, want exactly 2 age-triggered refreshes", fs.calls)
	}
	st := mustSnapshot(t, env, m)
	if st.Refreshes != 2 || st.SkippedCooldown == 0 {
		t.Fatalf("snapshot = %+v, want 2 refreshes and >0 cooldown skips", st)
	}
	ch, ok := store.Last("az-a")
	if !ok || !ch.Taken.After(epoch) {
		t.Fatalf("store not updated: %+v ok=%v", ch, ok)
	}
}

func TestModeDriftRefreshesOnlyDriftedZone(t *testing.T) {
	env := sim.NewEnv(epoch)
	store := charact.NewStore(0)
	pass := charact.NewPassive(2 * time.Hour)
	// az-ok's traffic matches its model; az-bad's model says Xeon30 but
	// traffic lands on EPYC.
	storedChar(store, "az-ok", epoch, charact.Counts{cpu.Xeon25: 50})
	storedChar(store, "az-bad", epoch, charact.Counts{cpu.Xeon30: 50})
	feed(pass, "az-ok", epoch, cpu.Xeon25, 40, "ok")
	feed(pass, "az-bad", epoch, cpu.EPYC, 40, "bad")

	fs := &fakeSampler{cost: 0.01, delay: 30 * time.Second, mix: map[string]charact.Counts{
		"az-bad": {cpu.EPYC: 50}, // re-sampling discovers the new reality
	}}
	m := newMaintainer(t, env, Config{
		Mode:           ModeDrift,
		TickEvery:      time.Minute,
		MaxAge:         24 * time.Hour, // keep the age backstop out of the way
		DriftThreshold: 0.10,
		MinSamples:     10,
		Cooldown:       5 * time.Minute,
	}, store, pass, fs)
	m.Start()
	if err := env.RunFor(30 * time.Minute); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	m.Stop()

	// Exactly one refresh: az-bad once; the refreshed model then agrees
	// with the passive mix, so drift clears and az-ok is never touched.
	if len(fs.calls) != 1 || fs.calls[0] != "az-bad" {
		t.Fatalf("calls = %v, want exactly [az-bad]", fs.calls)
	}
	ch, _ := store.Last("az-bad")
	if ch.Counts[cpu.EPYC] != 50 {
		t.Fatalf("store not refreshed with new mix: %+v", ch)
	}
}

func TestTrafficShareOrdersUrgency(t *testing.T) {
	env := sim.NewEnv(epoch)
	store := charact.NewStore(0) // both zones unknown → both due
	fs := &fakeSampler{cost: 0.001, delay: 10 * time.Second}
	m := newMaintainer(t, env, Config{
		Zones:     []string{"az-a", "az-b"},
		Mode:      ModeAge,
		TickEvery: time.Minute,
	}, store, nil, fs)
	// az-b carries 9x the traffic; it must be re-characterized first even
	// though az-a sorts first alphabetically.
	env.Schedule(0, func() {
		m.ObserveTraffic("az-a", 10)
		m.ObserveTraffic("az-b", 90)
	})
	m.Start()
	if err := env.RunFor(5 * time.Minute); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	m.Stop()
	if len(fs.calls) < 2 || fs.calls[0] != "az-b" || fs.calls[1] != "az-a" {
		t.Fatalf("calls = %v, want az-b before az-a", fs.calls)
	}
}

func TestBudgetGovernsSpend(t *testing.T) {
	env := sim.NewEnv(epoch)
	store := charact.NewStore(0) // three unknown zones, all due at once
	fs := &fakeSampler{cost: 0.03, delay: 10 * time.Second}
	m := newMaintainer(t, env, Config{
		Zones:       []string{"az-a", "az-b", "az-c"},
		Mode:        ModeAge,
		TickEvery:   time.Minute,
		RatePerHour: 1e-6, // effectively no refill within the run
		Cap:         0.05,
		Cooldown:    2 * time.Hour,
	}, store, nil, fs)
	m.Start()
	if err := env.RunFor(10 * time.Minute); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	m.Stop()

	// 0.05 of budget admits the first (0.05→0.02) and second (0.02→-0.01)
	// refresh; the third is blocked until the bucket recovers, which the
	// micro refill rate never achieves in-run.
	if len(fs.calls) != 2 {
		t.Fatalf("calls = %v, want exactly 2 before budget exhaustion", fs.calls)
	}
	st := mustSnapshot(t, env, m)
	if st.SkippedBudget == 0 {
		t.Fatalf("snapshot = %+v, want >0 budget skips", st)
	}
	if !almost(st.SpentUSD, 0.06) {
		t.Fatalf("spent = %v, want 0.06", st.SpentUSD)
	}
	if _, ok := store.Last("az-c"); ok {
		t.Fatal("az-c must still be uncharacterized (budget blocked it)")
	}
}

func TestResampleErrorLeavesOldModel(t *testing.T) {
	env := sim.NewEnv(epoch)
	store := charact.NewStore(0)
	storedChar(store, "az-a", epoch, charact.Counts{cpu.Xeon30: 50})
	fs := &fakeSampler{cost: 0.01, fail: map[string]error{"az-a": errors.New("zone outage")}}
	m := newMaintainer(t, env, Config{
		Zones:     []string{"az-a"},
		Mode:      ModeAge,
		TickEvery: time.Minute,
		MaxAge:    5 * time.Minute,
		Cooldown:  20 * time.Minute,
	}, store, nil, fs)
	m.Start()
	if err := env.RunFor(30 * time.Minute); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	m.Stop()

	// Failed refreshes must not wipe the stored model, must not count as
	// refreshes, and must honor the cooldown before retrying.
	ch, ok := store.Last("az-a")
	if !ok || !ch.Taken.Equal(epoch) {
		t.Fatalf("old characterization must survive a failed refresh: %+v ok=%v", ch, ok)
	}
	if st := mustSnapshot(t, env, m); st.Refreshes != 0 {
		t.Fatalf("failed attempts must not count as refreshes: %+v", st)
	}
	if len(fs.calls) < 1 || len(fs.calls) > 3 {
		t.Fatalf("calls = %v, want 1-3 cooldown-limited retries over 30m", fs.calls)
	}
}

func TestForceBypassesModeAndDebits(t *testing.T) {
	env := sim.NewEnv(epoch)
	store := charact.NewStore(0)
	fs := &fakeSampler{cost: 0.02}
	m := newMaintainer(t, env, Config{Zones: []string{"az-a"}, Mode: ModeOff}, store, nil, fs)
	m.Start()
	var forced charact.Characterization
	var ferr error
	env.Go("force", func(p *sim.Proc) error {
		p.Sleep(5 * time.Minute)
		forced, ferr = m.Force(p, "az-a", 7)
		return nil
	})
	env.Schedule(10*time.Minute, m.Stop)
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ferr != nil {
		t.Fatalf("Force: %v", ferr)
	}
	if forced.Polls != 7 {
		t.Fatalf("forced polls = %d, want 7", forced.Polls)
	}
	if len(fs.calls) != 1 {
		t.Fatalf("calls = %v, want only the forced refresh under ModeOff", fs.calls)
	}
	st := mustSnapshot(t, env, m)
	if st.Forced != 1 || st.Refreshes != 1 || !almost(st.SpentUSD, 0.02) {
		t.Fatalf("snapshot = %+v, want forced=1 refreshes=1 spent=0.02", st)
	}
}

func TestSnapshotZoneStatus(t *testing.T) {
	env := sim.NewEnv(epoch)
	store := charact.NewStore(time.Hour)
	pass := charact.NewPassive(2 * time.Hour)
	storedChar(store, "az-a", epoch, charact.Counts{cpu.Xeon30: 50})
	feed(pass, "az-a", epoch, cpu.EPYC, 40, "x")
	fs := &fakeSampler{cost: 0.01}
	m := newMaintainer(t, env, Config{
		Zones:          []string{"az-a", "az-new"},
		Mode:           ModeDrift,
		MinSamples:     10,
		DriftThreshold: 0.10,
	}, store, pass, fs)
	env.Schedule(0, func() { m.ObserveTraffic("az-a", 100) })

	var st Status
	env.Schedule(5*time.Minute, func() { st = m.Snapshot() })
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}

	if st.Mode != ModeDrift || len(st.Zones) != 2 {
		t.Fatalf("snapshot = %+v, want drift mode and 2 zones", st)
	}
	byAZ := map[string]ZoneStatus{}
	for _, z := range st.Zones {
		byAZ[z.AZ] = z
	}
	a := byAZ["az-a"]
	if !a.Known || !a.Fresh || a.Age != 5*time.Minute {
		t.Fatalf("az-a status = %+v, want known fresh age=5m", a)
	}
	if !a.Due || a.Reason != ReasonDrift || !a.Drift.Confident || a.Drift.TV < 0.99 {
		t.Fatalf("az-a status = %+v, want due for confident drift", a)
	}
	if !almost(a.TrafficShare, 1.0) {
		t.Fatalf("az-a traffic share = %v, want 1.0", a.TrafficShare)
	}
	n := byAZ["az-new"]
	if n.Known || !n.Due || n.Reason != ReasonUnknown {
		t.Fatalf("az-new status = %+v, want unknown and due", n)
	}
	if n.Urgency >= a.Urgency {
		// az-a combines drift + full traffic share; the unknown zone's
		// fixed boost must not outrank it.
		t.Fatalf("urgency(az-new)=%v >= urgency(az-a)=%v", n.Urgency, a.Urgency)
	}
}

func TestSetModeAndRetune(t *testing.T) {
	env := sim.NewEnv(epoch)
	m := newMaintainer(t, env, Config{}, charact.NewStore(0), nil, &fakeSampler{})
	if err := m.SetMode("never"); err == nil {
		t.Fatal("bad mode must be rejected")
	}
	if err := m.SetMode(ModeAge); err != nil {
		t.Fatalf("SetMode: %v", err)
	}
	if err := m.RetuneBudget(0, 0); err == nil {
		t.Fatal("cap <= 0 must be rejected")
	}
	if err := m.RetuneBudget(2.0, 0.40); err != nil {
		t.Fatalf("RetuneBudget: %v", err)
	}
	st := mustSnapshot(t, env, m)
	if st.Mode != ModeAge || !almost(st.BudgetRate, 2.0) || !almost(st.BudgetCap, 0.40) || !almost(st.BudgetBalance, 0.40) {
		t.Fatalf("snapshot = %+v, want retuned age-mode budget", st)
	}
}

// TestStopTerminatesLoop is the termination property skyd's Close path
// depends on: once Stop is called, the tick stops rescheduling and the
// event queue drains, so Env.Run returns instead of spinning forever.
func TestStopTerminatesLoop(t *testing.T) {
	env := sim.NewEnv(epoch)
	m := newMaintainer(t, env, Config{Zones: []string{"az-a"}, Mode: ModeOff, TickEvery: time.Minute}, charact.NewStore(0), nil, &fakeSampler{})
	m.Start()
	m.Start() // idempotent: must not arm a second loop
	env.Schedule(10*time.Minute, m.Stop)
	done := make(chan error, 1)
	go func() { done <- env.Run() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Env.Run did not return after Stop — tick kept rescheduling")
	}
	if m.Running() {
		t.Fatal("Running() must report false after Stop")
	}
}

// TestStopFromAnotherGoroutine exercises the cross-thread Stop skyd's HTTP
// Close handler performs while the simulation goroutine is mid-loop; run
// with -race.
func TestStopFromAnotherGoroutine(t *testing.T) {
	env := sim.NewEnv(epoch)
	store := charact.NewStore(0)
	fs := &fakeSampler{cost: 0.001, delay: time.Second}
	m := newMaintainer(t, env, Config{
		Zones:     []string{"az-a"},
		Mode:      ModeAge,
		TickEvery: time.Minute,
		MaxAge:    2 * time.Minute,
		Cooldown:  time.Minute,
	}, store, nil, fs)
	m.Start()
	done := make(chan error, 1)
	go func() { done <- env.RunFor(6 * time.Hour) }()
	for !m.Running() {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(2 * time.Millisecond) // let the loop take some ticks
	m.Stop()
	if err := <-done; err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if m.Running() {
		t.Fatal("Running() must report false after Stop")
	}
}

// mustSnapshot reads a snapshot from inside the simulation.
func mustSnapshot(t *testing.T, env *sim.Env, m *Maintainer) Status {
	t.Helper()
	var st Status
	env.Schedule(0, func() { st = m.Snapshot() })
	if err := env.Run(); err != nil {
		t.Fatalf("snapshot run: %v", err)
	}
	return st
}
