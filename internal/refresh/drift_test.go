package refresh

import (
	"fmt"
	"testing"
	"time"

	"skyfaas/internal/charact"
	"skyfaas/internal/cpu"
)

// storedChar puts a characterization with the given per-kind counts into a
// store at `taken`.
func storedChar(store *charact.Store, az string, taken time.Time, counts charact.Counts) {
	store.Put(charact.Characterization{
		AZ:      az,
		Taken:   taken,
		Polls:   5,
		Samples: counts.Total(),
		Counts:  counts,
		CostUSD: 0.01,
	})
}

// feed records n deduplicated passive observations of kind k at time t.
func feed(p *charact.Passive, az string, t time.Time, k cpu.Kind, n int, tag string) {
	for i := 0; i < n; i++ {
		p.Observe(az, t, fmt.Sprintf("%s-%s-%d", tag, k, i), k)
	}
}

func TestDetectorNoStoredCharacterization(t *testing.T) {
	pass := charact.NewPassive(time.Hour)
	store := charact.NewStore(0)
	det := NewDetector(pass, store, 10)
	feed(pass, "az-a", epoch, cpu.Xeon25, 20, "x")

	sc := det.Score("az-a", epoch)
	if sc.Confident {
		t.Fatal("no stored characterization must not yield a confident score")
	}
	if sc.Samples != 20 {
		t.Fatalf("Samples = %d, want 20 (live window reported even without a model)", sc.Samples)
	}
}

func TestDetectorBelowMinSamples(t *testing.T) {
	pass := charact.NewPassive(time.Hour)
	store := charact.NewStore(0)
	det := NewDetector(pass, store, 10)
	storedChar(store, "az-a", epoch, charact.Counts{cpu.Xeon25: 50})
	feed(pass, "az-a", epoch, cpu.EPYC, 9, "x")

	if sc := det.Score("az-a", epoch); sc.Confident {
		t.Fatalf("9 samples under a floor of 10 must not be confident: %+v", sc)
	}
}

func TestDetectorAgreementScoresNearZero(t *testing.T) {
	pass := charact.NewPassive(time.Hour)
	store := charact.NewStore(0)
	det := NewDetector(pass, store, 10)
	// Stored: 80/20 Xeon25/Xeon30. Passive sees the same mix.
	storedChar(store, "az-a", epoch, charact.Counts{cpu.Xeon25: 80, cpu.Xeon30: 20})
	feed(pass, "az-a", epoch, cpu.Xeon25, 40, "x")
	feed(pass, "az-a", epoch, cpu.Xeon30, 10, "y")

	sc := det.Score("az-a", epoch)
	if !sc.Confident {
		t.Fatalf("expected confident score: %+v", sc)
	}
	if sc.TV > 0.001 || sc.Chi2 > 0.001 {
		t.Fatalf("identical mixes must score ~0 drift, got TV=%v chi2=%v", sc.TV, sc.Chi2)
	}
}

func TestDetectorDivergenceScoresHigh(t *testing.T) {
	pass := charact.NewPassive(time.Hour)
	store := charact.NewStore(0)
	det := NewDetector(pass, store, 10)
	// Model says all-Xeon30; traffic lands entirely on EPYC (a kind the
	// model has never seen — the floor-share path in chiSquare).
	storedChar(store, "az-a", epoch, charact.Counts{cpu.Xeon30: 100})
	feed(pass, "az-a", epoch, cpu.EPYC, 50, "x")

	sc := det.Score("az-a", epoch)
	if !sc.Confident {
		t.Fatalf("expected confident score: %+v", sc)
	}
	if sc.TV < 0.99 {
		t.Fatalf("disjoint mixes must score TV~1, got %v", sc.TV)
	}
	if sc.Chi2 < 100 {
		t.Fatalf("disjoint mixes must score a large chi2, got %v", sc.Chi2)
	}
}

// A zone whose passive observations have all aged out of the window must
// lose confidence rather than keep reporting its last divergence (ISSUE 5
// satellite: passive-window expiry vs drift confidence).
func TestDetectorExpiredWindowLosesConfidence(t *testing.T) {
	pass := charact.NewPassive(30 * time.Minute)
	store := charact.NewStore(0)
	det := NewDetector(pass, store, 10)
	storedChar(store, "az-a", epoch, charact.Counts{cpu.Xeon30: 100})
	feed(pass, "az-a", epoch, cpu.EPYC, 50, "x")

	if sc := det.Score("az-a", epoch.Add(time.Minute)); !sc.Confident || sc.TV < 0.99 {
		t.Fatalf("fresh observations must yield a confident drifted score: %+v", sc)
	}
	late := epoch.Add(31 * time.Minute)
	sc := det.Score("az-a", late)
	if sc.Confident {
		t.Fatalf("expired window must not be confident: %+v", sc)
	}
	if sc.Samples != 0 {
		t.Fatalf("expired window must report 0 live samples, got %d", sc.Samples)
	}
	if sc.TV != 0 || sc.Chi2 != 0 {
		t.Fatalf("unconfident scores must be zeroed, got TV=%v chi2=%v", sc.TV, sc.Chi2)
	}
}

func TestDetectorNilPassive(t *testing.T) {
	det := NewDetector(nil, charact.NewStore(0), 0)
	if det.MinSamples() != 25 {
		t.Fatalf("default MinSamples = %d, want 25", det.MinSamples())
	}
	if sc := det.Score("az-a", epoch); sc.Confident {
		t.Fatal("nil passive collector must never be confident")
	}
}

func TestChiSquareDeterministicOrder(t *testing.T) {
	obs := charact.Counts{cpu.Xeon25: 30, cpu.Xeon30: 30, cpu.EPYC: 40}
	exp := charact.Dist{cpu.Xeon25: 0.5, cpu.Xeon30: 0.3, cpu.EPYC: 0.2}
	a := chiSquare(obs, exp)
	for i := 0; i < 100; i++ {
		if b := chiSquare(obs, exp); b != a {
			t.Fatalf("chiSquare not deterministic: %v vs %v", a, b)
		}
	}
	if a <= 0 {
		t.Fatalf("diverged counts must yield positive chi2, got %v", a)
	}
}
