package refresh

import "time"

// Budget is the refresh scheduler's cost governor: a token bucket of
// sampling dollars accrued over *simulated* time. Re-characterization polls
// are real spend (every poll fans ~100 requests through the zone), so the
// maintenance loop must never be allowed to out-spend the traffic it
// protects. The bucket refills at RatePerHour up to Cap; a refresh may start
// whenever the balance is positive and debits its actual cost afterwards
// (driving the balance below zero at most once — the bucket must climb back
// above zero before the next refresh is admitted).
//
// All methods take the current virtual time explicitly; the governor holds
// no clock of its own, which keeps it a pure function of the simulation.
type Budget struct {
	ratePerHour float64
	cap         float64
	balance     float64
	last        time.Time
	spent       float64
}

// NewBudget returns a governor refilling at ratePerHour USD up to cap,
// starting full at now.
func NewBudget(ratePerHour, cap float64, now time.Time) *Budget {
	return &Budget{
		ratePerHour: ratePerHour,
		cap:         cap,
		balance:     cap,
		last:        now,
	}
}

// accrue folds elapsed virtual time into the balance.
func (b *Budget) accrue(now time.Time) {
	if elapsed := now.Sub(b.last); elapsed > 0 {
		b.balance += b.ratePerHour * elapsed.Hours()
		if b.balance > b.cap {
			b.balance = b.cap
		}
	}
	b.last = now
}

// Allows reports whether a refresh may start at now: the accrued balance
// must be positive.
func (b *Budget) Allows(now time.Time) bool {
	b.accrue(now)
	return b.balance > 0
}

// Debit charges an actual refresh cost against the bucket.
func (b *Budget) Debit(now time.Time, usd float64) {
	b.accrue(now)
	b.balance -= usd
	b.spent += usd
}

// Balance returns the accrued balance at now (possibly negative right after
// an expensive refresh).
func (b *Budget) Balance(now time.Time) float64 {
	b.accrue(now)
	return b.balance
}

// Spent returns the total dollars debited over the governor's lifetime.
func (b *Budget) Spent() float64 { return b.spent }

// RatePerHour returns the refill rate.
func (b *Budget) RatePerHour() float64 { return b.ratePerHour }

// Cap returns the bucket ceiling.
func (b *Budget) Cap() float64 { return b.cap }

// Retune changes the refill rate and cap in place (the skyd admin surface).
// The balance is clamped to the new cap; accrued spend is preserved.
func (b *Budget) Retune(now time.Time, ratePerHour, cap float64) {
	b.accrue(now)
	b.ratePerHour = ratePerHour
	b.cap = cap
	if b.balance > b.cap {
		b.balance = b.cap
	}
}
