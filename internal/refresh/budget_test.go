package refresh

import (
	"math"
	"testing"
	"time"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestBudgetStartsFullAndAccrues(t *testing.T) {
	b := NewBudget(0.60, 1.00, epoch)
	if got := b.Balance(epoch); !almost(got, 1.00) {
		t.Fatalf("initial balance = %v, want full cap 1.00", got)
	}
	// Spend it all, then wait half an hour: 0.60/h * 0.5h = 0.30 accrued.
	b.Debit(epoch, 1.00)
	if got := b.Balance(epoch); !almost(got, 0) {
		t.Fatalf("balance after full debit = %v, want 0", got)
	}
	at := epoch.Add(30 * time.Minute)
	if got := b.Balance(at); !almost(got, 0.30) {
		t.Fatalf("balance after 30m = %v, want 0.30", got)
	}
}

func TestBudgetCapClamps(t *testing.T) {
	b := NewBudget(10.0, 0.25, epoch)
	if got := b.Balance(epoch.Add(5 * time.Hour)); !almost(got, 0.25) {
		t.Fatalf("balance = %v, want clamped to cap 0.25", got)
	}
}

func TestBudgetAllowsAndRecovery(t *testing.T) {
	b := NewBudget(1.0, 0.10, epoch)
	if !b.Allows(epoch) {
		t.Fatal("full bucket must allow a refresh")
	}
	// An expensive refresh may overshoot the balance once...
	b.Debit(epoch, 0.50)
	if got := b.Balance(epoch); !almost(got, -0.40) {
		t.Fatalf("balance = %v, want -0.40 after overshoot", got)
	}
	if b.Allows(epoch.Add(time.Minute)) {
		t.Fatal("negative balance must block the next refresh")
	}
	// ...and must climb back above zero before the next one is admitted.
	if !b.Allows(epoch.Add(30 * time.Minute)) {
		t.Fatal("recovered balance must allow again")
	}
	if got := b.Spent(); !almost(got, 0.50) {
		t.Fatalf("spent = %v, want 0.50", got)
	}
}

func TestBudgetRetune(t *testing.T) {
	b := NewBudget(1.0, 2.0, epoch)
	b.Debit(epoch, 0.75)
	b.Retune(epoch, 0.10, 1.0)
	if got := b.RatePerHour(); !almost(got, 0.10) {
		t.Fatalf("rate = %v, want 0.10", got)
	}
	if got := b.Cap(); !almost(got, 1.0) {
		t.Fatalf("cap = %v, want 1.0", got)
	}
	// Balance 1.25 clamps to the new cap; spend history survives.
	if got := b.Balance(epoch); !almost(got, 1.0) {
		t.Fatalf("balance = %v, want clamped 1.0", got)
	}
	if got := b.Spent(); !almost(got, 0.75) {
		t.Fatalf("spent = %v, want preserved 0.75", got)
	}
}
