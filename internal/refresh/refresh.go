// Package refresh is the sky's continuous characterization-maintenance
// subsystem: a closed control loop between the passive observations routed
// traffic produces and the active sampling spend that keeps the
// characterization store honest.
//
// The paper samples each zone once and routes on the result; its own EX-4
// evaluation shows that model rots within hours. This package closes the
// loop. A Detector scores per-zone drift (passive-window CPU mix vs the
// stored characterization, total-variation + chi-square). A Maintainer
// keeps a priority queue over maintained zones ordered by a composite
// urgency score — staleness age, drift score, routed traffic share — and
// issues budgeted re-characterization polls through the sampler, governed
// by a token-bucket Budget (USD per sim-hour with a cap, plus a per-zone
// cooldown) so maintenance can never dominate spend. The loop itself is a
// self-rescheduling sim.Env tick: deterministic under virtual time,
// replayable from the seed, and stoppable from another OS thread (skyd's
// Close path) via a single atomic flag.
//
// Concurrency: everything except Stop/Start's running flag is owned by the
// simulation goroutine. Ticks run as Env callbacks, refreshes as Env
// processes, and admin reads (Snapshot) or writes (SetMode, RetuneBudget,
// Force) must be issued from inside the simulation — skyd routes them
// through its Exec command queue.
package refresh

import (
	"container/heap"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"skyfaas/internal/charact"
	"skyfaas/internal/metrics"
	"skyfaas/internal/sim"
)

// Mode selects the refresh trigger policy.
type Mode string

// The supported maintenance modes.
const (
	// ModeOff disables automatic refresh; only Force re-samples.
	ModeOff Mode = "off"
	// ModeAge re-samples every maintained zone whose characterization is
	// older than MaxAge — the naive periodic policy.
	ModeAge Mode = "age"
	// ModeDrift re-samples zones whose passive traffic confidently
	// diverges from the stored characterization (with MaxAge kept as a
	// backstop for zones too idle to observe passively).
	ModeDrift Mode = "drift"
)

// Modes lists the supported modes in stable order.
func Modes() []Mode { return []Mode{ModeOff, ModeAge, ModeDrift} }

// ValidMode reports whether m names a supported mode.
func ValidMode(m Mode) bool {
	for _, k := range Modes() {
		if m == k {
			return true
		}
	}
	return false
}

// Reason labels why a zone was (or would be) refreshed.
type Reason string

// Refresh reasons, also used as metric labels.
const (
	ReasonUnknown Reason = "unknown" // never characterized
	ReasonAge     Reason = "age"     // older than MaxAge
	ReasonDrift   Reason = "drift"   // confident divergence over threshold
	ReasonForced  Reason = "forced"  // operator-initiated
)

// Weights shape the composite urgency score.
type Weights struct {
	// Age weights normalized staleness (age / MaxAge).
	Age float64
	// Drift weights normalized divergence (TV / DriftThreshold).
	Drift float64
	// Traffic weights the zone's share of routed completions — a drifted
	// zone carrying most of the traffic matters more than a drifted
	// backwater.
	Traffic float64
}

func (w Weights) withDefaults() Weights {
	if w.Age == 0 && w.Drift == 0 && w.Traffic == 0 {
		return Weights{Age: 1, Drift: 1, Traffic: 0.5}
	}
	return w
}

// Config tunes a Maintainer. Zero fields take defaults.
type Config struct {
	// Zones restricts maintenance to a fixed set. Empty means dynamic:
	// every zone in the store plus every zone that has carried routed
	// traffic.
	Zones []string
	// Mode selects the trigger policy (default ModeDrift).
	Mode Mode
	// TickEvery is the control-loop cadence in virtual time (default 1m).
	TickEvery time.Duration
	// Polls is the re-characterization depth per refresh (default 3 — the
	// cheap quick mode, not a saturation run).
	Polls int
	// MaxAge is the staleness trigger (default 1h). In ModeDrift it is the
	// backstop for zones with too little traffic to observe.
	MaxAge time.Duration
	// DriftThreshold is the total-variation distance (0..1) past which a
	// confident score marks the zone drifted (default 0.10).
	DriftThreshold float64
	// MinSamples is the live passive observation floor for a confident
	// drift score (default 25).
	MinSamples int
	// RatePerHour refills the cost budget, USD per sim-hour (default 0.50).
	RatePerHour float64
	// Cap bounds the accumulated budget in USD (default 1.00).
	Cap float64
	// Cooldown is the minimum gap between two refreshes of the same zone
	// (default 15m), so one noisy zone cannot monopolize the budget.
	Cooldown time.Duration
	// Weights shape the urgency ordering (default 1/1/0.5).
	Weights Weights
}

func (c Config) withDefaults() Config {
	if c.Mode == "" {
		c.Mode = ModeDrift
	}
	if c.TickEvery == 0 {
		c.TickEvery = time.Minute
	}
	if c.Polls == 0 {
		c.Polls = 3
	}
	if c.MaxAge == 0 {
		c.MaxAge = time.Hour
	}
	if c.DriftThreshold == 0 {
		c.DriftThreshold = 0.10
	}
	if c.MinSamples == 0 {
		c.MinSamples = 25
	}
	if c.RatePerHour == 0 {
		c.RatePerHour = 0.50
	}
	if c.Cap == 0 {
		c.Cap = 1.00
	}
	if c.Cooldown == 0 {
		c.Cooldown = 15 * time.Minute
	}
	c.Weights = c.Weights.withDefaults()
	return c
}

// Resampler issues one budgeted re-characterization of a zone. Implemented
// by core.Runtime (ensure sampling endpoints, then CharacterizeQuick); the
// Maintainer stores the result itself.
type Resampler interface {
	Resample(p *sim.Proc, az string, polls int) (charact.Characterization, error)
}

// ZoneStatus is one maintained zone's state at snapshot time.
type ZoneStatus struct {
	AZ string
	// Known/Fresh/Age mirror the store's view.
	Known bool
	Fresh bool
	Age   time.Duration
	// Drift is the detector's current score.
	Drift DriftScore
	// TrafficShare is the zone's fraction of observed routed completions.
	TrafficShare float64
	// Urgency is the composite priority score.
	Urgency float64
	// Due reports whether the current mode would refresh the zone now
	// (before budget and cooldown gating).
	Due bool
	// Reason is the trigger a due zone would be refreshed under.
	Reason Reason
	// LastRefresh is when the maintainer last re-sampled the zone (zero if
	// never).
	LastRefresh time.Time
}

// Status is the maintainer's full snapshot.
type Status struct {
	Mode            Mode
	BudgetBalance   float64
	BudgetRate      float64
	BudgetCap       float64
	SpentUSD        float64
	Refreshes       int
	Forced          int
	SkippedBudget   int
	SkippedCooldown int
	Zones           []ZoneStatus
}

// Maintainer drives continuous characterization maintenance over one
// runtime's store. All fields besides running are owned by the simulation
// goroutine.
type Maintainer struct {
	cfg     Config
	env     *sim.Env
	store   *charact.Store
	det     *Detector
	sampler Resampler
	budget  *Budget

	// running gates the self-rescheduling tick; atomic because Stop may be
	// called from another OS thread (skyd.Close) while the simulation
	// goroutine is mid-tick.
	running atomic.Bool
	// inflight guards against overlapping refresh processes.
	inflight bool

	traffic      map[string]int
	trafficTotal int
	lastAt       map[string]time.Time

	refreshes       int
	forced          int
	skippedBudget   int
	skippedCooldown int

	mRefreshed   map[Reason]*metrics.Counter
	mSkipBudget  *metrics.Counter
	mSkipCool    *metrics.Counter
	mBudgetUSD   *metrics.Gauge
	mSpentUSD    *metrics.Gauge
	mTicks       *metrics.Counter
	mPollsIssued *metrics.Counter
	reg          *metrics.Registry
}

// New assembles a maintainer over env. passive may be nil (drift scoring
// then never gains confidence and ModeDrift degrades to its MaxAge
// backstop); reg may be nil to disable instrumentation.
func New(env *sim.Env, cfg Config, store *charact.Store, passive *charact.Passive, sampler Resampler, reg *metrics.Registry) (*Maintainer, error) {
	cfg = cfg.withDefaults()
	if !ValidMode(cfg.Mode) {
		return nil, fmt.Errorf("refresh: unknown mode %q (valid: %v)", cfg.Mode, Modes())
	}
	if sampler == nil {
		return nil, fmt.Errorf("refresh: nil sampler")
	}
	m := &Maintainer{
		cfg:     cfg,
		env:     env,
		store:   store,
		det:     NewDetector(passive, store, cfg.MinSamples),
		sampler: sampler,
		budget:  NewBudget(cfg.RatePerHour, cfg.Cap, env.Now()),
		traffic: make(map[string]int),
		lastAt:  make(map[string]time.Time),
		reg:     reg,
		mRefreshed: map[Reason]*metrics.Counter{
			ReasonUnknown: reg.Counter("sky_refresh_total", "zone re-characterizations, by trigger", metrics.L("reason", string(ReasonUnknown))),
			ReasonAge:     reg.Counter("sky_refresh_total", "zone re-characterizations, by trigger", metrics.L("reason", string(ReasonAge))),
			ReasonDrift:   reg.Counter("sky_refresh_total", "zone re-characterizations, by trigger", metrics.L("reason", string(ReasonDrift))),
			ReasonForced:  reg.Counter("sky_refresh_total", "zone re-characterizations, by trigger", metrics.L("reason", string(ReasonForced))),
		},
		mSkipBudget:  reg.Counter("sky_refresh_skipped_total", "due refreshes deferred, by cause", metrics.L("cause", "budget")),
		mSkipCool:    reg.Counter("sky_refresh_skipped_total", "due refreshes deferred, by cause", metrics.L("cause", "cooldown")),
		mBudgetUSD:   reg.Gauge("sky_refresh_budget_usd", "accrued refresh budget balance (USD)"),
		mSpentUSD:    reg.Gauge("sky_refresh_spent_usd", "total refresh sampling spend (USD)"),
		mTicks:       reg.Counter("sky_refresh_ticks_total", "control-loop ticks executed"),
		mPollsIssued: reg.Counter("sky_refresh_polls_total", "sampling polls issued by maintenance refreshes"),
	}
	m.mBudgetUSD.Set(m.budget.Balance(env.Now()))
	return m, nil
}

// Config returns the effective configuration.
func (m *Maintainer) Config() Config { return m.cfg }

// Detector exposes the drift detector (read-only use from inside the sim).
func (m *Maintainer) Detector() *Detector { return m.det }

// ObserveTraffic records completed routed invocations landing on az; the
// urgency score uses the accumulated share. Must be called from inside the
// simulation (the router's burst path).
func (m *Maintainer) ObserveTraffic(az string, completed int) {
	if completed <= 0 {
		return
	}
	m.traffic[az] += completed
	m.trafficTotal += completed
}

// SetMode switches the trigger policy. Must be called from inside the
// simulation.
func (m *Maintainer) SetMode(mode Mode) error {
	if !ValidMode(mode) {
		return fmt.Errorf("refresh: unknown mode %q (valid: %v)", mode, Modes())
	}
	m.cfg.Mode = mode
	return nil
}

// RetuneBudget changes the governor's refill rate and cap. Must be called
// from inside the simulation.
func (m *Maintainer) RetuneBudget(ratePerHour, cap float64) error {
	if ratePerHour < 0 || cap <= 0 {
		return fmt.Errorf("refresh: budget rate must be >= 0 and cap > 0")
	}
	m.budget.Retune(m.env.Now(), ratePerHour, cap)
	m.cfg.RatePerHour = ratePerHour
	m.cfg.Cap = cap
	m.mBudgetUSD.Set(m.budget.Balance(m.env.Now()))
	return nil
}

// Start arms the control loop: a tick every TickEvery of virtual time that
// plans due refreshes and spawns one refresh process when there is work.
// Safe to call at most once before or during the run; the loop stops
// rescheduling after Stop, letting the event queue drain.
func (m *Maintainer) Start() {
	if !m.running.CompareAndSwap(false, true) {
		return
	}
	var tick func()
	tick = func() {
		if !m.running.Load() {
			return
		}
		m.mTicks.Inc()
		m.mBudgetUSD.Set(m.budget.Balance(m.env.Now()))
		if !m.inflight {
			if due := m.plan(m.env.Now()); len(due) > 0 {
				m.inflight = true
				m.env.Go("refresh-loop", func(p *sim.Proc) error {
					defer func() { m.inflight = false }()
					m.runDue(p, due)
					return nil
				})
			}
		}
		m.env.Schedule(m.cfg.TickEvery, tick)
	}
	m.env.Schedule(m.cfg.TickEvery, tick)
}

// Stop halts the control loop after the current tick. Safe from any
// goroutine; idempotent. In-flight refresh processes finish on their own.
func (m *Maintainer) Stop() { m.running.Store(false) }

// Running reports whether the control loop is armed.
func (m *Maintainer) Running() bool { return m.running.Load() }

// zones returns the maintained zone set, sorted.
func (m *Maintainer) zones() []string {
	if len(m.cfg.Zones) > 0 {
		out := append([]string(nil), m.cfg.Zones...)
		sort.Strings(out)
		return out
	}
	set := make(map[string]bool)
	for _, az := range m.store.Zones() {
		set[az] = true
	}
	for az := range m.traffic {
		set[az] = true
	}
	out := make([]string, 0, len(set))
	for az := range set {
		out = append(out, az)
	}
	sort.Strings(out)
	return out
}

// zoneStatus scores one zone at now.
func (m *Maintainer) zoneStatus(az string, now time.Time) ZoneStatus {
	zs := ZoneStatus{AZ: az, LastRefresh: m.lastAt[az]}
	ch, ok := m.store.Last(az)
	if ok {
		zs.Known = true
		zs.Age = ch.Age(now)
		zs.Fresh = m.store.Fresh(ch, now)
	}
	zs.Drift = m.det.Score(az, now)
	if m.trafficTotal > 0 {
		zs.TrafficShare = float64(m.traffic[az]) / float64(m.trafficTotal)
	}

	w := m.cfg.Weights
	ageNorm := 0.0
	if zs.Known {
		ageNorm = float64(zs.Age) / float64(m.cfg.MaxAge)
	}
	driftNorm := 0.0
	if zs.Drift.Confident {
		driftNorm = zs.Drift.TV / m.cfg.DriftThreshold
	}
	zs.Urgency = w.Age*ageNorm + w.Drift*driftNorm + w.Traffic*zs.TrafficShare

	switch {
	case !zs.Known:
		// Never characterized: urgent under every active mode.
		zs.Due = m.cfg.Mode != ModeOff
		zs.Reason = ReasonUnknown
		zs.Urgency += 2 * w.Age
	case m.cfg.Mode == ModeAge:
		zs.Due = ageNorm >= 1
		zs.Reason = ReasonAge
	case m.cfg.Mode == ModeDrift:
		switch {
		case driftNorm >= 1:
			zs.Due = true
			zs.Reason = ReasonDrift
		case ageNorm >= 1:
			zs.Due = true
			zs.Reason = ReasonAge
		}
	}
	if m.reg != nil {
		m.reg.Gauge("sky_refresh_drift_tv",
			"total-variation distance between passive traffic mix and stored characterization",
			metrics.L("az", az)).Set(zs.Drift.TV)
	}
	return zs
}

// dueZone is one planned refresh.
type dueZone struct {
	az      string
	urgency float64
	reason  Reason
}

// dueHeap is a max-heap on urgency with the zone name breaking ties, so
// planning order is a pure function of the scores.
type dueHeap []dueZone

func (h dueHeap) Len() int { return len(h) }
func (h dueHeap) Less(i, j int) bool {
	if h[i].urgency != h[j].urgency {
		return h[i].urgency > h[j].urgency
	}
	return h[i].az < h[j].az
}
func (h dueHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *dueHeap) Push(x any)   { *h = append(*h, x.(dueZone)) }
func (h *dueHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// plan scores every maintained zone and returns the due ones, most urgent
// first, with per-zone cooldown already applied.
func (m *Maintainer) plan(now time.Time) []dueZone {
	h := make(dueHeap, 0, 4)
	heap.Init(&h)
	for _, az := range m.zones() {
		zs := m.zoneStatus(az, now)
		if !zs.Due {
			continue
		}
		if last, ok := m.lastAt[az]; ok && now.Sub(last) < m.cfg.Cooldown {
			m.skippedCooldown++
			m.mSkipCool.Inc()
			continue
		}
		heap.Push(&h, dueZone{az: az, urgency: zs.Urgency, reason: zs.Reason})
	}
	out := make([]dueZone, 0, h.Len())
	for h.Len() > 0 {
		out = append(out, heap.Pop(&h).(dueZone))
	}
	return out
}

// runDue executes planned refreshes in urgency order until the budget
// governor says stop. Cooldowns are re-checked at execution time: earlier
// refreshes consume virtual time.
func (m *Maintainer) runDue(p *sim.Proc, due []dueZone) {
	for _, d := range due {
		now := p.Env().Now()
		if last, ok := m.lastAt[d.az]; ok && now.Sub(last) < m.cfg.Cooldown {
			m.skippedCooldown++
			m.mSkipCool.Inc()
			continue
		}
		if !m.budget.Allows(now) {
			m.skippedBudget++
			m.mSkipBudget.Inc()
			m.mBudgetUSD.Set(m.budget.Balance(now))
			return
		}
		if _, err := m.refreshOne(p, d.az, m.cfg.Polls, d.reason); err != nil {
			// A refresh that found nothing (e.g. the zone is mid-outage)
			// leaves the old characterization in place; the next tick
			// retries after the cooldown.
			m.lastAt[d.az] = p.Env().Now()
			continue
		}
	}
}

// refreshOne re-samples az and stores the result, debiting actual cost.
func (m *Maintainer) refreshOne(p *sim.Proc, az string, polls int, reason Reason) (charact.Characterization, error) {
	ch, err := m.sampler.Resample(p, az, polls)
	now := p.Env().Now()
	if err != nil {
		return charact.Characterization{}, err
	}
	m.store.Put(ch)
	m.lastAt[az] = now
	m.budget.Debit(now, ch.CostUSD)
	m.refreshes++
	if reason == ReasonForced {
		m.forced++
	}
	m.mRefreshed[reason].Inc()
	m.mPollsIssued.Add(uint64(ch.Polls))
	m.mSpentUSD.Set(m.budget.Spent())
	m.mBudgetUSD.Set(m.budget.Balance(now))
	return ch, nil
}

// Force re-samples az immediately, bypassing mode, thresholds, and
// cooldown (spend is still debited so the governor sees it). polls <= 0
// uses the configured depth. Must be called from inside the simulation.
func (m *Maintainer) Force(p *sim.Proc, az string, polls int) (charact.Characterization, error) {
	if polls <= 0 {
		polls = m.cfg.Polls
	}
	return m.refreshOne(p, az, polls, ReasonForced)
}

// Snapshot returns the maintainer's full state at now. Must be called from
// inside the simulation.
func (m *Maintainer) Snapshot() Status {
	now := m.env.Now()
	st := Status{
		Mode:            m.cfg.Mode,
		BudgetBalance:   m.budget.Balance(now),
		BudgetRate:      m.budget.RatePerHour(),
		BudgetCap:       m.budget.Cap(),
		SpentUSD:        m.budget.Spent(),
		Refreshes:       m.refreshes,
		Forced:          m.forced,
		SkippedBudget:   m.skippedBudget,
		SkippedCooldown: m.skippedCooldown,
	}
	for _, az := range m.zones() {
		st.Zones = append(st.Zones, m.zoneStatus(az, now))
	}
	return st
}
