// Package sampler implements the paper's FaaS infrastructure sampling
// technique (§3.1):
//
//   - Deploy many (default 100) identical-logic sampling functions per zone,
//     each with a unique memory setting and code hash, so no two endpoints
//     share warm instances.
//   - A *poll* drives ~1,000 concurrent requests through a branching tree
//     of recursive function invocations — the client only issues a handful
//     of root requests; the tree fans out platform-side — while each
//     request sleeps briefly so every concurrent request pins a unique
//     function instance.
//   - Each request returns its SAAF profile; deduplicating by instance id
//     yields new-hardware observations per poll.
//   - Successive polls cycle endpoints until the zone saturates: when more
//     than half of a poll's requests fail, the accumulated observation is
//     the zone's ground-truth characterization (§4.1's stop rule).
package sampler

import (
	"fmt"
	"time"

	"skyfaas/internal/charact"
	"skyfaas/internal/cloudsim"
	"skyfaas/internal/faas"
	"skyfaas/internal/saaf"
	"skyfaas/internal/sim"
)

// Config tunes the sampling technique. Zero fields take the paper's values.
type Config struct {
	// Endpoints is the number of sampling functions deployed per zone.
	Endpoints int
	// PollSize is the target number of concurrent requests per poll.
	PollSize int
	// Branch is the fan-out of each internal tree node; trees are three
	// levels deep (root, Branch children, Branch^2 leaves).
	Branch int
	// Sleep is how long each request holds its instance.
	Sleep time.Duration
	// MemoryMB is the base memory setting; endpoint i deploys at
	// MemoryMB+i so every endpoint is a distinct configuration.
	MemoryMB int
	// FailStop stops characterization when a poll's failure fraction
	// exceeds it (the paper uses 0.5).
	FailStop float64
	// MaxPolls bounds a characterization run.
	MaxPolls int
	// InterPollPause separates successive polls.
	InterPollPause time.Duration
	// Prefix namespaces the sampling deployments so independent accounts
	// (EX-1's two-account validation) can sample the same zone (default
	// "skysample").
	Prefix string
}

func (c Config) withDefaults() Config {
	if c.Endpoints == 0 {
		c.Endpoints = 100
	}
	if c.PollSize == 0 {
		c.PollSize = 1000
	}
	if c.Branch == 0 {
		c.Branch = 10
	}
	if c.Sleep == 0 {
		c.Sleep = 250 * time.Millisecond
	}
	if c.MemoryMB == 0 {
		c.MemoryMB = 2048
	}
	if c.FailStop == 0 {
		c.FailStop = 0.5
	}
	if c.MaxPolls == 0 {
		c.MaxPolls = 200
	}
	if c.InterPollPause == 0 {
		c.InterPollPause = time.Second
	}
	if c.Prefix == "" {
		c.Prefix = "skysample"
	}
	return c
}

// treeSize returns the number of requests a three-level tree generates.
func (c Config) treeSize() int { return 1 + c.Branch + c.Branch*c.Branch }

// roots returns how many root requests approximate PollSize.
func (c Config) roots() int {
	r := c.PollSize / c.treeSize()
	if r < 1 {
		return 1
	}
	return r
}

// Sampler profiles zones on behalf of one client account.
type Sampler struct {
	client *faas.Client
	cfg    Config
}

// New returns a sampler issuing requests through client.
func New(client *faas.Client, cfg Config) *Sampler {
	return &Sampler{client: client, cfg: cfg.withDefaults()}
}

// Config returns the effective configuration.
func (s *Sampler) Config() Config { return s.cfg }

func (s *Sampler) endpointName(az string, i int) string {
	return fmt.Sprintf("%s-%s-%03d", s.cfg.Prefix, az, i)
}

// Deploy installs the sampling endpoints in a zone. Each endpoint is a
// dynamic function with a unique memory setting and code hash.
func (s *Sampler) Deploy(az string) error {
	for i := 0; i < s.cfg.Endpoints; i++ {
		_, err := s.client.Deploy(az, s.endpointName(az, i), cloudsim.DeployConfig{
			MemoryMB: s.cfg.MemoryMB + i,
			Dynamic:  true,
			Behavior: cloudsim.SleepBehavior{D: s.cfg.Sleep},
			CodeHash: fmt.Sprintf("%s-v1-%03d", s.cfg.Prefix, i),
		})
		if err != nil {
			return fmt.Errorf("sampler: %w", err)
		}
	}
	return nil
}

// treeResult aggregates a subtree's observations as they bubble up.
type treeResult struct {
	reports []saaf.Report
	failed  int
	cost    float64
}

// subtreeRequests returns the request count of a subtree rooted at depth.
func (s *Sampler) subtreeRequests(depth int) int {
	total := 1
	width := 1
	for d := 0; d < depth; d++ {
		width *= s.cfg.Branch
		total += width
	}
	return total
}

// treeWork builds the behavior for a tree node at the given depth. Leaves
// sleep (fast path); internal nodes fan out to the same endpoint and
// aggregate their children's observations, sleeping concurrently to hold
// their own instance.
func (s *Sampler) treeWork(az, fn string, depth int, sleep time.Duration) cloudsim.Behavior {
	if depth == 0 {
		return cloudsim.SleepBehavior{D: sleep}
	}
	return cloudsim.HandlerBehavior{Fn: func(ctx *cloudsim.Ctx, req cloudsim.Request) (any, error) {
		childWork := s.treeWork(az, fn, depth-1, sleep)
		events := make([]*sim.Event, s.cfg.Branch)
		for i := range events {
			events[i] = ctx.InvokeAsync(cloudsim.Request{
				Account:  req.Account,
				AZ:       az,
				Function: fn,
				Work:     childWork,
			})
		}
		ctx.Sleep(sleep)
		agg := treeResult{}
		for _, ev := range events {
			r := ctx.Wait(ev)
			if !r.OK() {
				agg.failed += s.subtreeRequests(depth - 1)
				continue
			}
			agg.cost += r.CostUSD
			agg.reports = append(agg.reports, r.Profile)
			if sub, ok := r.Value.(treeResult); ok {
				agg.reports = append(agg.reports, sub.reports...)
				agg.failed += sub.failed
				agg.cost += sub.cost
			}
		}
		return agg, nil
	}}
}

// PollResult is one poll's outcome.
type PollResult struct {
	// Endpoint is the sampling function index used.
	Endpoint int
	// Requested counts requests issued (client roots plus tree fan-out).
	Requested int
	// Failed counts requests that never ran (throttled/saturated).
	Failed int
	// Reports are the SAAF profiles of every successful request.
	Reports []saaf.Report
	// NewFIs counts instances not seen in earlier polls of the same
	// characterization run (filled by Characterize; equals len(Reports)
	// for a standalone poll).
	NewFIs int
	// CostUSD is the poll's total spend.
	CostUSD float64
}

// FailFrac returns the failed fraction of requested calls.
func (r PollResult) FailFrac() float64 {
	if r.Requested == 0 {
		return 0
	}
	return float64(r.Failed) / float64(r.Requested)
}

// Poll runs one poll against endpoint idx (mod Endpoints) in az.
func (s *Sampler) Poll(p *sim.Proc, az string, idx int) PollResult {
	return s.pollWith(p, az, s.endpointName(az, idx%s.cfg.Endpoints), idx%s.cfg.Endpoints, s.cfg.Sleep)
}

func (s *Sampler) pollWith(p *sim.Proc, az, fn string, idx int, sleep time.Duration) PollResult {
	depth := 2
	roots := s.cfg.roots()
	futures := make([]*faas.Future, roots)
	for i := range futures {
		futures[i] = s.client.InvokeAsync(faas.Call{
			AZ:       az,
			Function: fn,
			Work:     s.treeWork(az, fn, depth, sleep),
		})
	}
	res := PollResult{
		Endpoint:  idx,
		Requested: roots * s.subtreeRequests(depth),
	}
	for _, f := range futures {
		r := f.Wait(p)
		if !r.OK() {
			res.Failed += s.subtreeRequests(depth)
			continue
		}
		res.CostUSD += r.CostUSD
		res.Reports = append(res.Reports, r.Profile)
		if sub, ok := r.Value.(treeResult); ok {
			res.Reports = append(res.Reports, sub.reports...)
			res.Failed += sub.failed
			res.CostUSD += sub.cost
		}
	}
	res.NewFIs = len(res.Reports)
	return res
}

// Characterize polls a zone until the saturation stop rule fires (or
// MaxPolls), deduplicating instances across polls. It returns the
// accumulated characterization (the at-failure "ground truth" of EX-1)
// and the per-poll trail for progressive-sampling analysis.
func (s *Sampler) Characterize(p *sim.Proc, az string) (charact.Characterization, []PollResult, error) {
	return s.characterize(p, az, s.cfg.MaxPolls, true)
}

// CharacterizeQuick runs exactly polls polls without driving the zone to
// saturation — the cheap refresh mode routing uses day to day.
func (s *Sampler) CharacterizeQuick(p *sim.Proc, az string, polls int) (charact.Characterization, []PollResult, error) {
	return s.characterize(p, az, polls, false)
}

func (s *Sampler) characterize(p *sim.Proc, az string, maxPolls int, untilFailure bool) (charact.Characterization, []PollResult, error) {
	seen := make(map[string]struct{})
	cum := make(charact.Counts)
	var trail []PollResult
	var cost float64
	for poll := 0; poll < maxPolls; poll++ {
		res := s.Poll(p, az, poll)
		fresh := make(charact.Counts)
		for _, rep := range res.Reports {
			if _, dup := seen[rep.UUID]; dup {
				continue
			}
			seen[rep.UUID] = struct{}{}
			fresh.Add(rep.Kind)
		}
		res.NewFIs = fresh.Total()
		cum.Merge(fresh)
		cost += res.CostUSD
		trail = append(trail, res)
		if untilFailure && res.FailFrac() > s.cfg.FailStop {
			break
		}
		p.Sleep(s.cfg.InterPollPause)
	}
	if cum.Total() == 0 {
		return charact.Characterization{}, trail, fmt.Errorf("sampler: no observations in %s", az)
	}
	return charact.Characterization{
		AZ:      az,
		Taken:   p.Env().Now(),
		Polls:   len(trail),
		Samples: cum.Total(),
		Counts:  cum,
		CostUSD: cost,
	}, trail, nil
}

// SweepPoint is one (sleep, memory) sample of the Fig.-3 tuning sweep.
type SweepPoint struct {
	Sleep     time.Duration
	MemoryMB  int
	UniqueFIs int
	CostUSD   float64
}

// SweepSleep measures unique-instance coverage and cost across sleep
// intervals and memory settings (Fig. 3). Each combination uses a dedicated
// endpoint, and combinations are separated by more than the keep-alive so
// earlier instances expire.
func (s *Sampler) SweepSleep(p *sim.Proc, az string, sleeps []time.Duration, memories []int) ([]SweepPoint, error) {
	keepAlive := s.client.Cloud().Options().KeepAlive
	var out []SweepPoint
	for _, mem := range memories {
		for _, sleep := range sleeps {
			fn := fmt.Sprintf("skysweep-%s-%dmb-%dms", az, mem, sleep.Milliseconds())
			if _, err := s.client.Deploy(az, fn, cloudsim.DeployConfig{
				MemoryMB: mem,
				Dynamic:  true,
				Behavior: cloudsim.SleepBehavior{D: sleep},
				CodeHash: fn,
			}); err != nil {
				return nil, fmt.Errorf("sampler: sweep: %w", err)
			}
			res := s.pollWith(p, az, fn, 0, sleep)
			unique := make(map[string]struct{}, len(res.Reports))
			for _, rep := range res.Reports {
				unique[rep.UUID] = struct{}{}
			}
			out = append(out, SweepPoint{
				Sleep:     sleep,
				MemoryMB:  mem,
				UniqueFIs: len(unique),
				CostUSD:   res.CostUSD,
			})
			p.Sleep(keepAlive + time.Minute)
		}
	}
	return out, nil
}
