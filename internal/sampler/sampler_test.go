package sampler

import (
	"math"
	"testing"
	"time"

	"skyfaas/internal/charact"
	"skyfaas/internal/cloudsim"
	"skyfaas/internal/cpu"
	"skyfaas/internal/faas"
	"skyfaas/internal/geo"
	"skyfaas/internal/sim"
)

var testEpoch = time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)

// fastCfg keeps test polls small and quick: 4-wide trees (1+4+16 = 21
// requests), with enough endpoints that test-sized pools saturate before
// endpoint cycling reuses warm instances.
func fastCfg() Config {
	return Config{
		Endpoints:      15,
		PollSize:       84, // 4 roots x 21
		Branch:         4,
		Sleep:          100 * time.Millisecond,
		MemoryMB:       2048,
		MaxPolls:       60,
		InterPollPause: 500 * time.Millisecond,
	}
}

func world(t *testing.T, azSpec cloudsim.AZSpec) (*sim.Env, *cloudsim.Cloud, *Sampler) {
	t.Helper()
	env := sim.NewEnv(testEpoch)
	catalog := []cloudsim.RegionSpec{{
		Provider: cloudsim.AWS, Name: "r1", Loc: geo.Coord{Lat: 40, Lon: -80},
		AZs: []cloudsim.AZSpec{azSpec},
	}}
	cloud := cloudsim.New(env, 77, catalog, cloudsim.Options{HorizonDays: 2})
	client := faas.NewClient(cloud, "sampler-acct")
	s := New(client, fastCfg())
	if err := s.Deploy(azSpec.Name); err != nil {
		t.Fatal(err)
	}
	return env, cloud, s
}

func mixedAZ(pool int) cloudsim.AZSpec {
	return cloudsim.AZSpec{
		Name:    "r1-az-a",
		PoolFIs: pool,
		Mix: map[cpu.Kind]float64{
			cpu.Xeon25: 0.5, cpu.Xeon29: 0.2, cpu.Xeon30: 0.25, cpu.EPYC: 0.05,
		},
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Endpoints != 100 || c.PollSize != 1000 || c.Branch != 10 {
		t.Fatalf("defaults = %+v", c)
	}
	if c.Sleep != 250*time.Millisecond {
		t.Fatalf("sleep default = %v", c.Sleep)
	}
	if c.FailStop != 0.5 {
		t.Fatalf("failstop default = %v", c.FailStop)
	}
	// Paper geometry: 9 roots x 111-request trees ~ 999 requests/poll.
	if c.treeSize() != 111 || c.roots() != 9 {
		t.Fatalf("tree geometry = %d x %d", c.roots(), c.treeSize())
	}
}

func TestPollObservesUniqueFIs(t *testing.T) {
	env, _, s := world(t, mixedAZ(4096))
	var res PollResult
	env.Go("poller", func(p *sim.Proc) error {
		res = s.Poll(p, "r1-az-a", 0)
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if res.Requested != 84 {
		t.Fatalf("requested = %d", res.Requested)
	}
	if res.Failed != 0 {
		t.Fatalf("failed = %d in an empty zone", res.Failed)
	}
	if len(res.Reports) != res.Requested {
		t.Fatalf("%d reports for %d requests", len(res.Reports), res.Requested)
	}
	unique := map[string]bool{}
	for _, rep := range res.Reports {
		unique[rep.UUID] = true
		if !rep.Kind.Valid() {
			t.Fatalf("invalid kind in report: %+v", rep)
		}
	}
	if len(unique) != res.Requested {
		t.Errorf("only %d unique FIs out of %d concurrent requests", len(unique), res.Requested)
	}
	if res.CostUSD <= 0 {
		t.Error("poll cost not accounted")
	}
}

func TestRepollSameEndpointReusesWarmFIs(t *testing.T) {
	env, _, s := world(t, mixedAZ(4096))
	var first, second PollResult
	env.Go("poller", func(p *sim.Proc) error {
		first = s.Poll(p, "r1-az-a", 0)
		p.Sleep(2 * time.Second)
		second = s.Poll(p, "r1-az-a", 0) // same endpoint: warm instances
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	firstIDs := map[string]bool{}
	for _, rep := range first.Reports {
		firstIDs[rep.UUID] = true
	}
	reused := 0
	for _, rep := range second.Reports {
		if firstIDs[rep.UUID] {
			reused++
		}
	}
	if reused < len(second.Reports)/2 {
		t.Errorf("only %d/%d instances reused on re-poll of the same endpoint", reused, len(second.Reports))
	}
}

func TestDistinctEndpointsSeeFreshFIs(t *testing.T) {
	env, _, s := world(t, mixedAZ(4096))
	var first, second PollResult
	env.Go("poller", func(p *sim.Proc) error {
		first = s.Poll(p, "r1-az-a", 0)
		p.Sleep(time.Second)
		second = s.Poll(p, "r1-az-a", 1) // different endpoint
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	firstIDs := map[string]bool{}
	for _, rep := range first.Reports {
		firstIDs[rep.UUID] = true
	}
	for _, rep := range second.Reports {
		if firstIDs[rep.UUID] {
			t.Fatalf("endpoint 1 reused endpoint 0's instance %s", rep.UUID)
		}
	}
}

func TestCharacterizeSaturatesZone(t *testing.T) {
	// Pool of 512 FIs; polls of 84 -> saturation after ~6-7 polls while
	// earlier instances are still in keep-alive.
	env, cloud, s := world(t, mixedAZ(512))
	var ch charact.Characterization
	var trail []PollResult
	env.Go("characterize", func(p *sim.Proc) error {
		var err error
		ch, trail, err = s.Characterize(p, "r1-az-a")
		return err
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(trail) < 5 || len(trail) >= fastCfg().MaxPolls {
		t.Fatalf("saturated after %d polls", len(trail))
	}
	last := trail[len(trail)-1]
	if last.FailFrac() <= 0.5 {
		t.Fatalf("final poll failure fraction %.2f, want > 0.5", last.FailFrac())
	}
	// Early polls should have succeeded nearly fully.
	if trail[0].FailFrac() > 0.05 {
		t.Fatalf("first poll already failing: %.2f", trail[0].FailFrac())
	}
	// Unique instances cover most of the pool.
	az, _ := cloud.AZ("r1-az-a")
	if ch.Samples < az.CapacityFIs()*7/10 {
		t.Errorf("observed %d FIs of %d capacity", ch.Samples, az.CapacityFIs())
	}
	// The characterization approximates the zone's true mix.
	if ape := charact.APE(ch.Dist(), az.TrueMix()); ape > 12 {
		t.Errorf("characterization APE vs truth = %.1f%%", ape)
	}
	if ch.CostUSD <= 0 || ch.Polls != len(trail) {
		t.Errorf("metadata: cost=%v polls=%d", ch.CostUSD, ch.Polls)
	}
}

func TestCharacterizeQuickDoesNotSaturate(t *testing.T) {
	env, _, s := world(t, mixedAZ(2048))
	var trail []PollResult
	env.Go("quick", func(p *sim.Proc) error {
		_, tr, err := s.CharacterizeQuick(p, "r1-az-a", 3)
		trail = tr
		return err
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(trail) != 3 {
		t.Fatalf("quick ran %d polls, want 3", len(trail))
	}
	for i, res := range trail {
		if res.FailFrac() > 0.05 {
			t.Errorf("quick poll %d failing: %.2f", i, res.FailFrac())
		}
	}
}

func TestProgressiveAccuracyImproves(t *testing.T) {
	env, cloud, s := world(t, cloudsim.AZSpec{
		Name:    "r1-az-a",
		PoolFIs: 1024,
		// Coarse hosts: strong clustering, so single polls misestimate.
		HostFIs: 256,
		Mix: map[cpu.Kind]float64{
			cpu.Xeon25: 0.5, cpu.Xeon29: 0.2, cpu.Xeon30: 0.25, cpu.EPYC: 0.05,
		},
	})
	var trail []PollResult
	env.Go("characterize", func(p *sim.Proc) error {
		_, tr, err := s.Characterize(p, "r1-az-a")
		trail = tr
		return err
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	az, _ := cloud.AZ("r1-az-a")
	truth := az.TrueMix()
	perPoll := make([]charact.Counts, len(trail))
	for i, res := range trail {
		c := make(charact.Counts)
		for _, rep := range res.Reports {
			c.Add(rep.Kind)
		}
		perPoll[i] = c
	}
	apes := charact.ProgressiveAPE(perPoll, truth)
	first, last := apes[0], apes[len(apes)-1]
	if last >= first && first > 5 {
		t.Errorf("progressive sampling did not converge: first %.1f%%, last %.1f%%", first, last)
	}
	if last > 10 {
		t.Errorf("final APE %.1f%% too high", last)
	}
}

func TestSweepSleepCoverageAndCost(t *testing.T) {
	env, _, s := world(t, mixedAZ(4096))
	var points []SweepPoint
	env.Go("sweep", func(p *sim.Proc) error {
		var err error
		points, err = s.SweepSleep(p, "r1-az-a",
			[]time.Duration{10 * time.Millisecond, 250 * time.Millisecond, time.Second},
			[]int{2048})
		return err
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	// Longer sleeps cost more and cover at least as many unique FIs.
	if points[2].CostUSD <= points[0].CostUSD {
		t.Errorf("1s sleep cost %.6f not above 10ms cost %.6f", points[2].CostUSD, points[0].CostUSD)
	}
	if points[0].UniqueFIs > points[1].UniqueFIs {
		t.Errorf("10ms sleep covered %d FIs, 250ms only %d", points[0].UniqueFIs, points[1].UniqueFIs)
	}
	// 250ms reaches (nearly) full coverage at this scale.
	if points[1].UniqueFIs < 80 {
		t.Errorf("250ms coverage = %d FIs, want ~84", points[1].UniqueFIs)
	}
}

func TestCharacterizationMatchesPaperCostScale(t *testing.T) {
	// With paper-scale polls (999 requests, 0.25s at ~2GB), a poll costs
	// under two cents (Fig. 3) and full saturation of a small zone stays
	// in the tens of cents (§4.3).
	env := sim.NewEnv(testEpoch)
	catalog := []cloudsim.RegionSpec{{
		Provider: cloudsim.AWS, Name: "r1", Loc: geo.Coord{},
		AZs: []cloudsim.AZSpec{{
			Name: "r1-az-a", PoolFIs: 5000,
			Mix: map[cpu.Kind]float64{cpu.Xeon25: 0.7, cpu.Xeon30: 0.3},
		}},
	}}
	cloud := cloudsim.New(env, 3, catalog, cloudsim.Options{HorizonDays: 2})
	client := faas.NewClient(cloud, "acct")
	s := New(client, Config{}) // paper defaults
	if err := s.Deploy("r1-az-a"); err != nil {
		t.Fatal(err)
	}
	var ch charact.Characterization
	var trail []PollResult
	env.Go("characterize", func(p *sim.Proc) error {
		var err error
		ch, trail, err = s.Characterize(p, "r1-az-a")
		return err
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if trail[0].CostUSD >= 0.02 {
		t.Errorf("single poll cost $%.4f, want < $0.02", trail[0].CostUSD)
	}
	if ch.CostUSD >= 0.5 {
		t.Errorf("saturation cost $%.4f, want well under $0.50", ch.CostUSD)
	}
	// ~5000-FI zone saturates in a handful of polls, like eu-north-1a.
	if len(trail) < 4 || len(trail) > 12 {
		t.Errorf("saturated after %d polls", len(trail))
	}
	if math.Abs(float64(ch.Samples)-5000) > 1500 {
		t.Errorf("observed %d FIs in a ~5000-FI zone", ch.Samples)
	}
}
