// Package skyapi is the Go client for the skyd /v1 HTTP API. It owns the
// two halves of the wire contract the CLIs would otherwise each reimplement:
// attaching the tenant API key (Authorization: Bearer) and decoding the
// documented JSON error envelope {"error":{"code","message","retryAfterMS"}}
// into a typed *Error callers can errors.As on.
//
// A zero key runs unauthenticated, matching a skyd with no tenant registry
// (auth-off mode); against an auth-enabled skyd the server answers 401
// missing_key, which surfaces here as *Error{Code: "missing_key"}.
package skyapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

// EnvKey is the environment variable the CLIs read a default API key from.
const EnvKey = "SKY_API_KEY"

// KeyFromEnv returns the ambient API key ("" when unset) — the default for
// every CLI -key flag, so `export SKY_API_KEY=...` authenticates a whole
// shell session.
func KeyFromEnv() string {
	return os.Getenv(EnvKey)
}

// Error is a non-200 /v1 answer, decoded from the documented envelope. It
// is returned as an error value; match with errors.As and branch on Code
// (the stable machine-readable half of the contract) rather than Message.
type Error struct {
	Status       int             // HTTP status code
	Code         string          // stable error code, e.g. "unknown_az", "tenant_over_quota"
	Message      string          // human-readable detail
	RetryAfterMS float64         // shed hint on 429s (0 when absent)
	Detail       json.RawMessage // optional structured context
}

func (e *Error) Error() string {
	return fmt.Sprintf("skyd: %s (%d %s)", e.Message, e.Status, e.Code)
}

// RetryAfter returns the shed hint as a duration, 0 when the server sent
// none.
func (e *Error) RetryAfter() time.Duration {
	return time.Duration(e.RetryAfterMS * float64(time.Millisecond))
}

// Client talks to one skyd instance.
type Client struct {
	base string
	key  string
	hc   *http.Client
}

// New builds a client for the skyd at base (e.g. "http://127.0.0.1:8080"),
// authenticating every request with key; an empty key sends no credentials.
func New(base, key string) *Client {
	return &Client{
		base: strings.TrimRight(base, "/"),
		key:  key,
		// Control-plane calls round-trip through the simulation, so a slow
		// pacing factor legitimately takes a while; be generous by default.
		hc: &http.Client{Timeout: 120 * time.Second},
	}
}

// SetTimeout overrides the per-request HTTP timeout.
func (c *Client) SetTimeout(d time.Duration) {
	c.hc.Timeout = d
}

// Get issues a GET and decodes the 200 body into out (out may be nil to
// discard it).
func (c *Client) Get(path string, out any) error {
	return c.roundTrip(http.MethodGet, path, nil, out)
}

// Post marshals in (nil for an empty body), issues a POST, and decodes the
// 200 body into out (nil to discard).
func (c *Client) Post(path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	return c.roundTrip(http.MethodPost, path, body, out)
}

// Delete issues a DELETE and decodes the 200 body into out (nil to discard).
func (c *Client) Delete(path string, out any) error {
	return c.roundTrip(http.MethodDelete, path, nil, out)
}

func (c *Client) roundTrip(method, path string, body io.Reader, out any) error {
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.key != "" {
		req.Header.Set("Authorization", "Bearer "+c.key)
	}
	res, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	data, err := io.ReadAll(io.LimitReader(res.Body, 1<<20))
	if err != nil {
		return err
	}
	if res.StatusCode != http.StatusOK {
		return decodeError(res.StatusCode, data)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// decodeError turns a non-200 body into *Error: the documented envelope
// when the server sent one, a best-effort wrapper (Code "http_error") when
// something in between — a proxy, a panic page — answered instead.
func decodeError(status int, data []byte) error {
	var env struct {
		Error struct {
			Code         string          `json:"code"`
			Message      string          `json:"message"`
			RetryAfterMS float64         `json:"retryAfterMS"`
			Detail       json.RawMessage `json:"detail"`
		} `json:"error"`
	}
	if err := json.Unmarshal(data, &env); err == nil && env.Error.Code != "" {
		return &Error{
			Status:       status,
			Code:         env.Error.Code,
			Message:      env.Error.Message,
			RetryAfterMS: env.Error.RetryAfterMS,
			Detail:       env.Error.Detail,
		}
	}
	msg := strings.TrimSpace(string(data))
	if len(msg) > 200 {
		msg = msg[:200] + "..."
	}
	if msg == "" {
		msg = http.StatusText(status)
	}
	return &Error{Status: status, Code: "http_error", Message: msg}
}
