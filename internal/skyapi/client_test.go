package skyapi

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestClientAuthAndDecode(t *testing.T) {
	var gotAuth string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotAuth = r.Header.Get("Authorization")
		switch r.URL.Path {
		case "/v1/ok":
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write([]byte(`{"answer": 42}`))
		case "/v1/shed":
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			_, _ = w.Write([]byte(`{"error":{"code":"overloaded","message":"shed","retryAfterMS":1500}}`))
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()

	c := New(srv.URL+"/", "sk-test") // trailing slash must not double up
	var out struct {
		Answer int `json:"answer"`
	}
	if err := c.Get("/v1/ok", &out); err != nil {
		t.Fatal(err)
	}
	if out.Answer != 42 {
		t.Fatalf("answer = %d, want 42", out.Answer)
	}
	if gotAuth != "Bearer sk-test" {
		t.Fatalf("Authorization = %q, want Bearer sk-test", gotAuth)
	}

	// The envelope decodes into a typed, matchable error.
	err := c.Post("/v1/shed", map[string]any{"n": 1}, nil)
	var apiErr *Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("error %T %v, want *Error", err, err)
	}
	if apiErr.Status != http.StatusTooManyRequests || apiErr.Code != "overloaded" {
		t.Fatalf("decoded %+v, want 429 overloaded", apiErr)
	}
	if apiErr.RetryAfter() != 1500*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want 1.5s", apiErr.RetryAfter())
	}

	// A non-envelope body (here net/http's 404 page) still comes back as a
	// usable *Error rather than a decode failure.
	err = c.Get("/v1/nope", nil)
	if !errors.As(err, &apiErr) {
		t.Fatalf("error %T %v, want *Error", err, err)
	}
	if apiErr.Status != http.StatusNotFound || apiErr.Code != "http_error" || apiErr.Message == "" {
		t.Fatalf("decoded %+v, want 404 http_error with message", apiErr)
	}
}

func TestClientNoKeySendsNoCredentials(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, ok := r.Header["Authorization"]; ok {
			t.Error("Authorization header sent without a key")
		}
		_, _ = w.Write([]byte(`{}`))
	}))
	defer srv.Close()
	if err := New(srv.URL, "").Get("/v1/zones", nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyFromEnv(t *testing.T) {
	t.Setenv(EnvKey, "sk-ambient")
	if got := KeyFromEnv(); got != "sk-ambient" {
		t.Fatalf("KeyFromEnv = %q", got)
	}
}
