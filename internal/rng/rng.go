// Package rng provides deterministic, splittable pseudo-random number
// streams for the simulation.
//
// Every stochastic component of the simulated sky (host provisioning, drift,
// contention noise, placement tie-breaking, ...) draws from its own named
// Stream derived from a single root seed. Because streams are derived by
// hashing stable names rather than by consuming numbers from a shared
// generator, adding a new consumer never perturbs the draws seen by existing
// consumers, and whole experiments replay bit-identically from one seed.
package rng

import (
	"hash/fnv"
	"math"
)

// Stream is a deterministic pseudo-random number generator. It implements a
// SplitMix64 core, which is statistically strong enough for simulation
// workloads and trivially seedable. The zero value is a valid stream seeded
// with zero, but callers normally construct streams with New or Split.
type Stream struct {
	state uint64
}

// New returns a Stream seeded from seed.
func New(seed uint64) *Stream {
	return &Stream{state: seed}
}

// Split derives an independent child stream from s and a stable name.
// The child's sequence depends only on (seed of s's origin is irrelevant:
// the current state of s is NOT consumed) — it is a pure function of the
// parent's identity state and the name, so call order does not matter.
func (s *Stream) Split(name string) *Stream {
	h := fnv.New64a()
	var buf [8]byte
	putUint64(buf[:], s.state)
	_, _ = h.Write(buf[:])
	_, _ = h.Write([]byte(name))
	return &Stream{state: h.Sum64()}
}

// SplitIndexed derives an independent child stream from s, a stable name,
// and an index. It is shorthand for Split(name + "/" + itoa(i)) without the
// string allocation churn in hot loops.
func (s *Stream) SplitIndexed(name string, i int) *Stream {
	h := fnv.New64a()
	var buf [8]byte
	putUint64(buf[:], s.state)
	_, _ = h.Write(buf[:])
	_, _ = h.Write([]byte(name))
	putUint64(buf[:], uint64(i))
	_, _ = h.Write(buf[:])
	return &Stream{state: h.Sum64()}
}

func putUint64(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

// Uint64 returns the next 64 pseudo-random bits (SplitMix64 step).
func (s *Stream) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0, matching
// math/rand semantics; simulation code treats that as a programming error.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling is overkill here;
	// simple modulo bias is negligible for simulation-sized n (< 2^32).
	return int(s.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit value.
func (s *Stream) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Norm returns a normally distributed value with the given mean and standard
// deviation, using the Box–Muller transform.
func (s *Stream) Norm(mean, stddev float64) float64 {
	// Guard against log(0).
	u1 := 1 - s.Float64()
	u2 := s.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNorm returns a log-normally distributed value whose underlying normal
// has the given mu and sigma.
func (s *Stream) LogNorm(mu, sigma float64) float64 {
	return math.Exp(s.Norm(mu, sigma))
}

// Exp returns an exponentially distributed value with the given mean.
func (s *Stream) Exp(mean float64) float64 {
	return -mean * math.Log(1-s.Float64())
}

// Bool returns true with probability p.
func (s *Stream) Bool(p float64) bool {
	return s.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher–Yates).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly permutes n elements using the provided swap
// function (Fisher–Yates).
func (s *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// WeightedChoice returns an index in [0, len(weights)) drawn with probability
// proportional to weights[i]. All weights must be non-negative and at least
// one must be positive; otherwise it returns 0.
func (s *Stream) WeightedChoice(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	target := s.Float64() * total
	var acc float64
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if target < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Jitter returns v multiplied by a uniform factor in [1-amount, 1+amount].
func (s *Stream) Jitter(v, amount float64) float64 {
	return v * (1 + amount*(2*s.Float64()-1))
}
