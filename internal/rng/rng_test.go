package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: streams diverged: %d != %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds produced %d identical draws", same)
	}
}

func TestSplitIsOrderIndependent(t *testing.T) {
	root := New(7)
	c1 := root.Split("alpha")
	c2 := root.Split("beta")
	// Splitting again in a different order must yield identical children.
	root2 := New(7)
	d2 := root2.Split("beta")
	d1 := root2.Split("alpha")
	if c1.Uint64() != d1.Uint64() {
		t.Error("alpha child depends on split order")
	}
	if c2.Uint64() != d2.Uint64() {
		t.Error("beta child depends on split order")
	}
}

func TestSplitChildrenIndependent(t *testing.T) {
	root := New(7)
	a := root.Split("a")
	b := root.Split("b")
	if a.Uint64() == b.Uint64() {
		t.Fatal("children with different names produced identical first draw")
	}
}

func TestSplitIndexedMatchesDistinctIndices(t *testing.T) {
	root := New(99)
	seen := make(map[uint64]int)
	for i := 0; i < 100; i++ {
		v := root.SplitIndexed("host", i).Uint64()
		if prev, ok := seen[v]; ok {
			t.Fatalf("index %d collides with %d", i, prev)
		}
		seen[v] = i
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(5)
	for _, n := range []int{1, 2, 7, 100} {
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	s := New(17)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Norm(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("Norm mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Errorf("Norm stddev = %v, want ~2", math.Sqrt(variance))
	}
}

func TestExpMean(t *testing.T) {
	s := New(23)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exp(3)
	}
	if mean := sum / n; math.Abs(mean-3) > 0.05 {
		t.Fatalf("Exp mean = %v, want ~3", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedChoiceRespectsZeros(t *testing.T) {
	s := New(31)
	weights := []float64{0, 1, 0, 3}
	counts := make([]int, len(weights))
	const n = 40000
	for i := 0; i < n; i++ {
		counts[s.WeightedChoice(weights)]++
	}
	if counts[0] != 0 || counts[2] != 0 {
		t.Fatalf("zero-weight entries chosen: %v", counts)
	}
	ratio := float64(counts[3]) / float64(counts[1])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weight ratio = %v, want ~3", ratio)
	}
}

func TestWeightedChoiceDegenerate(t *testing.T) {
	s := New(1)
	if got := s.WeightedChoice([]float64{0, 0}); got != 0 {
		t.Fatalf("all-zero weights: got %d, want 0", got)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(13)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.25) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) hit rate %v", p)
	}
}

func TestJitterBounds(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		s := New(seed)
		v := s.Jitter(100, 0.1)
		return v >= 90 && v <= 110
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	s := New(77)
	xs := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 21 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkSplitIndexed(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.SplitIndexed("host", i)
	}
}
