// Package experiments reproduces the paper's five experiments (§3.5) on the
// simulated sky. Each experiment builds its own deterministic world from a
// seed, runs the paper's procedure, and returns the data behind the
// corresponding tables and figures, with Render methods producing
// paper-style text output.
//
// Every Run* function accepts a config whose zero value is the full
// paper-scale procedure; the Reduced() presets cut scale for benchmarks.
package experiments

import (
	"time"

	"skyfaas/internal/cloudsim"
	"skyfaas/internal/core"
	"skyfaas/internal/sampler"
)

// defaultEpoch starts every experiment on a Monday midnight UTC.
var defaultEpoch = time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)

// EX4Zones are the five zones the paper tracked daily for two weeks.
func EX4Zones() []string {
	return []string{"us-west-1a", "us-west-1b", "sa-east-1a", "eu-north-1a", "ca-central-1a"}
}

// EX3Zones are the eleven zones of the progressive-sampling evaluation.
func EX3Zones() []string {
	return []string{
		"ca-central-1a", "eu-north-1a", "ap-northeast-1a", "sa-east-1a",
		"eu-central-1a", "ap-southeast-2a", "us-west-1a", "us-west-1b",
		"us-east-2a", "us-east-2b", "us-east-2c",
	}
}

// newRuntime builds an experiment world. Experiments only need the minimal
// mesh (they pick 2 GB endpoints), which keeps construction fast. shards
// selects the engine: 0/1 single-queue, N > 1 sharded (replay is identical
// either way; the determinism tests assert it).
func newRuntime(seed uint64, horizonDays int, samplerCfg sampler.Config, shards int) (*core.Runtime, error) {
	return core.New(core.Config{
		Seed:       seed,
		Epoch:      defaultEpoch,
		SamplerCfg: samplerCfg,
		CloudOpts:  cloudsim.Options{HorizonDays: horizonDays},
		SkipMesh:   true,
		Shards:     shards,
	})
}
