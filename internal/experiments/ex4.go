package experiments

import (
	"fmt"
	"time"

	"skyfaas/internal/charact"
	"skyfaas/internal/sampler"
	"skyfaas/internal/sim"
	"skyfaas/internal/stats"
	"skyfaas/internal/tablefmt"
)

// EX4Config parameterizes EX-4 (temporal infrastructure variation,
// Figs. 6-8): five zones sampled every 22 hours for two weeks, plus
// hourly sampling of us-west-1b for 24 hours.
type EX4Config struct {
	Seed uint64
	// Shards selects the simulation engine (0/1 single-queue, N > 1
	// sharded); replay is byte-identical across values.
	Shards int
	// AZs are the tracked zones (default: the paper's five).
	AZs []string
	// Rounds is the number of daily observations (default 14).
	Rounds int
	// CadenceHours separates observations (default 22, shifting the poll
	// time across the day as in the paper).
	CadenceHours int
	// HourlyAZ gets the 24-hour high-frequency run (default us-west-1b;
	// empty string disables it).
	HourlyAZ string
	// HourlyRounds is the number of hourly observations (default 24).
	HourlyRounds int
	// HourlyPolls is the sampling depth of each hourly observation
	// (default 12 — deep enough that two independent estimates of an
	// unchanged pool agree within a few percent).
	HourlyPolls int
	// Sampler overrides the polling configuration.
	Sampler sampler.Config
}

func (c EX4Config) withDefaults() EX4Config {
	if len(c.AZs) == 0 {
		c.AZs = EX4Zones()
	}
	if c.Rounds == 0 {
		c.Rounds = 14
	}
	if c.CadenceHours == 0 {
		c.CadenceHours = 22
	}
	if c.HourlyAZ == "" {
		c.HourlyAZ = "us-west-1b"
	}
	if c.HourlyRounds == 0 {
		c.HourlyRounds = 24
	}
	if c.HourlyPolls == 0 {
		c.HourlyPolls = 12
	}
	return c
}

// Reduced returns a benchmark-scale EX-4.
func (c EX4Config) Reduced() EX4Config {
	c = c.withDefaults()
	c.AZs = []string{"us-west-1a", "sa-east-1a"}
	c.Rounds = 5
	c.HourlyAZ = "us-west-1b"
	c.HourlyRounds = 6
	c.Sampler = sampler.Config{
		Endpoints: 60, PollSize: 222, Branch: 10,
		InterPollPause: 500 * time.Millisecond,
	}
	return c
}

// EX4Round is one zone's observation on one round.
type EX4Round struct {
	Round int
	Taken time.Time
	Dist  charact.Dist
	// PollsTo95/85/90/99 are the prefix lengths reaching each accuracy
	// against the round's own at-failure truth (-1 = not reached).
	PollsTo85, PollsTo90, PollsTo95, PollsTo99 int
	// FIsTo95 is the unique instances needed for 95% accuracy (Fig. 6).
	FIsTo95 int
	// APEVsDay1 scores this round's distribution against round 1 (Fig. 7).
	APEVsDay1 float64
	CostUSD   float64
}

// EX4Result is the Figs. 6-8 dataset.
type EX4Result struct {
	// ByZone maps zone name to its round series.
	ByZone map[string][]EX4Round
	Zones  []string
	// MeanPollsTo85/90/95/99 aggregate across zones and rounds.
	MeanPollsTo85, MeanPollsTo90, MeanPollsTo95, MeanPollsTo99 float64
	// Hourly is the 24-hour us-west-1b series: APE of each hour's
	// distribution against hour 1 (Fig. 8).
	HourlyAZ       string
	HourlyAPE      []float64
	HourlyWithin10 int // hours within 10% of the baseline
	TotalCost      float64
}

// RunEX4 executes EX-4.
func RunEX4(cfg EX4Config) (EX4Result, error) {
	cfg = cfg.withDefaults()
	horizon := cfg.Rounds*cfg.CadenceHours/24 + 3
	rt, err := newRuntime(cfg.Seed, horizon, cfg.Sampler, cfg.Shards)
	if err != nil {
		return EX4Result{}, err
	}
	res := EX4Result{
		ByZone:   make(map[string][]EX4Round, len(cfg.AZs)),
		Zones:    cfg.AZs,
		HourlyAZ: cfg.HourlyAZ,
	}
	err = rt.Do(func(p *sim.Proc) error {
		for _, az := range cfg.AZs {
			if err := rt.EnsureSamplerEndpoints(az); err != nil {
				return err
			}
		}
		for round := 0; round < cfg.Rounds; round++ {
			for _, az := range cfg.AZs {
				ch, trail, err := rt.Sampler().Characterize(p, az)
				if err != nil {
					return fmt.Errorf("round %d %s: %w", round, az, err)
				}
				res.TotalCost += ch.CostUSD
				res.ByZone[az] = append(res.ByZone[az], analyzeRound(round, ch, trail))
			}
			if round < cfg.Rounds-1 {
				p.Sleep(time.Duration(cfg.CadenceHours) * time.Hour)
			}
		}
		// Fill APEVsDay1 from each zone's first round.
		for _, az := range cfg.AZs {
			rounds := res.ByZone[az]
			if len(rounds) == 0 {
				continue
			}
			base := rounds[0].Dist
			for i := range rounds {
				rounds[i].APEVsDay1 = charact.APE(rounds[i].Dist, base)
			}
		}

		// Fig. 8: hourly sampling of one volatile zone. The 24-hour window
		// is aligned to start just after a daily reprovisioning boundary so
		// it measures intra-day behaviour, not the day-boundary jump.
		if cfg.HourlyAZ != "" {
			if err := rt.EnsureSamplerEndpoints(cfg.HourlyAZ); err != nil {
				return err
			}
			day := 24 * time.Hour
			sinceBoundary := rt.Env().Elapsed() % day
			p.Sleep(day - sinceBoundary + 5*time.Minute)
			var dists []charact.Dist
			for h := 0; h < cfg.HourlyRounds; h++ {
				ch, _, err := rt.Sampler().CharacterizeQuick(p, cfg.HourlyAZ, cfg.HourlyPolls)
				if err != nil {
					return fmt.Errorf("hourly %d: %w", h, err)
				}
				res.TotalCost += ch.CostUSD
				dists = append(dists, ch.Dist())
				if h < cfg.HourlyRounds-1 {
					p.Sleep(time.Hour)
				}
			}
			if len(dists) > 0 {
				res.HourlyAPE = charact.StabilitySeries(dists[0], dists)
				for _, v := range res.HourlyAPE {
					if v <= 10 {
						res.HourlyWithin10++
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		return EX4Result{}, err
	}

	collect := func(pick func(EX4Round) int) float64 {
		var xs []float64
		for _, az := range res.Zones { // stable order for reproducible sums
			for _, r := range res.ByZone[az] {
				if v := pick(r); v > 0 {
					xs = append(xs, float64(v))
				}
			}
		}
		return stats.Mean(xs)
	}
	res.MeanPollsTo85 = collect(func(r EX4Round) int { return r.PollsTo85 })
	res.MeanPollsTo90 = collect(func(r EX4Round) int { return r.PollsTo90 })
	res.MeanPollsTo95 = collect(func(r EX4Round) int { return r.PollsTo95 })
	res.MeanPollsTo99 = collect(func(r EX4Round) int { return r.PollsTo99 })
	return res, nil
}

func analyzeRound(round int, ch charact.Characterization, trail []sampler.PollResult) EX4Round {
	truth := ch.Dist()
	perPoll := perPollUniqueCounts(trail)
	apes := charact.ProgressiveAPE(perPoll, truth)
	r := EX4Round{
		Round:     round,
		Taken:     ch.Taken,
		Dist:      truth,
		PollsTo85: charact.PollsToAccuracy(apes, 85),
		PollsTo90: charact.PollsToAccuracy(apes, 90),
		PollsTo95: charact.PollsToAccuracy(apes, 95),
		PollsTo99: charact.PollsToAccuracy(apes, 99),
		CostUSD:   ch.CostUSD,
	}
	if r.PollsTo95 > 0 {
		cum := 0
		for i := 0; i < r.PollsTo95 && i < len(trail); i++ {
			cum += trail[i].NewFIs
		}
		r.FIsTo95 = cum
	}
	return r
}

// Render produces the Figs. 6-8 style report.
func (r EX4Result) Render() string {
	out := "EX-4 / Fig. 6 — sampling needed for accurate characterization\n"
	t := tablefmt.New("zone", "round", "pollsTo95", "FIsTo95", "APE vs day1")
	for _, az := range r.Zones {
		for _, round := range r.ByZone[az] {
			t.Row(az, round.Round+1, round.PollsTo95, round.FIsTo95,
				fmt.Sprintf("%.1f%%", round.APEVsDay1))
		}
	}
	out += t.String()
	out += fmt.Sprintf("\nmean polls for 85/90/95/99%% accuracy: %.2f / %.2f / %.2f / %.2f\n",
		r.MeanPollsTo85, r.MeanPollsTo90, r.MeanPollsTo95, r.MeanPollsTo99)

	if len(r.HourlyAPE) > 0 {
		labels := make([]string, len(r.HourlyAPE))
		for i := range labels {
			labels[i] = fmt.Sprintf("hour %02d", i)
		}
		out += "\nEX-4 / Fig. 8 — hourly variation of " + r.HourlyAZ + " (APE vs hour 0)\n"
		out += tablefmt.Series("APE%", labels, r.HourlyAPE)
		out += fmt.Sprintf("hours within 10%% of baseline: %d/%d\n", r.HourlyWithin10, len(r.HourlyAPE))
	}
	out += fmt.Sprintf("\ntotal sampling cost: %s\n", tablefmt.USD(r.TotalCost))
	return out
}
