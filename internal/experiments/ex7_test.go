package experiments

import (
	"reflect"
	"strings"
	"testing"
)

func runEX7Reduced(t *testing.T, seed uint64) EX7Result {
	t.Helper()
	res, err := RunEX7(EX7Config{Seed: seed}.Reduced())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestEX7Reduced checks the experiment's headline claims: under the
// drift-burst chaos, drift-triggered refresh recovers routing quality the
// sample-once baseline loses, while spending well under half of what naive
// periodic re-sampling does on maintenance. The pinned seed is one where
// the regime change hurts the drifted zone — on neutral draws all arms
// tie and there is nothing to measure (see the DriftEvery doc in ex7.go).
func TestEX7Reduced(t *testing.T) {
	res := runEX7Reduced(t, 7)
	if len(res.Cells) != len(DefaultEX7Arms()) {
		t.Fatalf("cells = %d, want %d", len(res.Cells), len(DefaultEX7Arms()))
	}
	cell := func(arm string) EX7Cell {
		c, ok := res.Cell(arm)
		if !ok {
			t.Fatalf("missing cell %s", arm)
		}
		return c
	}
	static, periodic, drift := cell("static-once"), cell("periodic"), cell("drift")

	// Every arm routed the same traffic through the same drifting sky.
	for _, c := range res.Cells {
		if c.Completed == 0 {
			t.Fatalf("%s completed nothing", c.Arm)
		}
		if c.TargetAZ != static.TargetAZ {
			t.Errorf("%s drift target %s != %s (cells must share the world)", c.Arm, c.TargetAZ, static.TargetAZ)
		}
	}

	// The sample-once baseline never refreshes, by construction.
	if static.Refreshes != 0 || static.RefreshUSD != 0 {
		t.Errorf("static-once refreshed: %+v", static)
	}

	// Acceptance criterion 1: drift-triggered refresh beats sample-once on
	// fast-CPU hit rate (the drifted model keeps routing to yesterday's
	// favorite; the refreshed one re-decides).
	if drift.FastRate <= static.FastRate+0.05 {
		t.Errorf("drift fast-rate %.3f vs static %.3f, want a clear win", drift.FastRate, static.FastRate)
	}

	// Acceptance criterion 2: the win costs < 50%% of naive periodic
	// re-sampling's refresh budget.
	if drift.RefreshUSD <= 0 {
		t.Error("drift arm never spent on refresh — the detector never fired")
	}
	if periodic.RefreshUSD <= 0 {
		t.Error("periodic arm never spent on refresh")
	}
	if drift.RefreshUSD >= 0.5*periodic.RefreshUSD {
		t.Errorf("drift refresh $%.4f vs periodic $%.4f, want < 50%%", drift.RefreshUSD, periodic.RefreshUSD)
	}
	if drift.Refreshes >= periodic.Refreshes {
		t.Errorf("drift refreshes %d vs periodic %d, want fewer", drift.Refreshes, periodic.Refreshes)
	}

	out := res.Render()
	for _, arm := range DefaultEX7Arms() {
		if !strings.Contains(out, arm.Label) {
			t.Errorf("render missing arm %s", arm.Label)
		}
	}
	if !strings.Contains(out, "headline") {
		t.Error("render missing the headline comparison")
	}
}

// TestEX7Determinism: two same-seed runs must agree bit for bit — the
// control loop, drift scoring, and budget accounting are all functions of
// the seed.
func TestEX7Determinism(t *testing.T) {
	a, b := runEX7Reduced(t, 7), runEX7Reduced(t, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed EX-7 diverged:\n%+v\nvs\n%+v", a, b)
	}
}

func TestEX7CSV(t *testing.T) {
	res := runEX7Reduced(t, 42)
	dir := t.TempDir()
	if err := res.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
}
