package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// TestEX10GoldenFairness pins the fairness story at benchmark scale, seed
// 42: per-tenant quotas hold the steady tenant's goodput at >= 95% of its
// uncontended baseline while the global-only gate lets the aggressor
// starve it.
func TestEX10GoldenFairness(t *testing.T) {
	res, err := RunEX10(EX10Config{Seed: 42}.Reduced())
	if err != nil {
		t.Fatal(err)
	}
	if res.CapacityRPS <= 0 {
		t.Fatalf("capacity estimate %v, want positive", res.CapacityRPS)
	}
	if len(res.Cells) != 3 {
		t.Fatalf("got %d cells, want 3 arms", len(res.Cells))
	}
	cell := func(arm string) EX10Cell {
		c, ok := res.Cell(arm)
		if !ok {
			t.Fatalf("missing cell %s", arm)
		}
		return c
	}

	// Baseline sanity: the victim alone runs clean at 40% of capacity.
	base := cell(EX10Uncontended)
	if base.Victim.Shed != 0 || base.Victim.Errors != 0 {
		t.Fatalf("uncontended victim shed=%d errors=%d, want clean run",
			base.Victim.Shed, base.Victim.Errors)
	}

	// The acceptance bound: per-tenant quotas keep the victim's goodput at
	// >= 95% of its uncontended baseline despite the 4x storm next door.
	if got := res.Retention(EX10PerTenant); got < 0.95 {
		t.Fatalf("per-tenant victim retention %.3f, want >= 0.95", got)
	}
	// ... while the global-only gate visibly starves it. The theoretical
	// admission share at 4.4x total offered load is ~23%; 0.6 leaves slack.
	if got := res.Retention(EX10GlobalOnly); got >= 0.6 {
		t.Fatalf("global-only victim retention %.3f, want visible starvation (< 0.6)", got)
	}

	// The served tail stays flat under per-tenant quotas: same shedding
	// regime as the baseline, so p99 within 2x (in practice equal).
	perT := cell(EX10PerTenant)
	if base.Victim.Latency.P99 <= 0 || perT.Victim.Latency.P99 > 2*base.Victim.Latency.P99 {
		t.Fatalf("per-tenant victim p99 %v ms vs baseline %v ms, want within 2x",
			perT.Victim.Latency.P99, base.Victim.Latency.P99)
	}

	// Fairness is not free lunch for the aggressor: its quota sheds most of
	// the storm, with a usable Retry-After hint, and no hard errors leak.
	if perT.Aggressor.ShedRate < 0.5 {
		t.Fatalf("per-tenant aggressor shed rate %.3f, want the quota to absorb the storm", perT.Aggressor.ShedRate)
	}
	if perT.Aggressor.MeanRetryAfterMS <= 0 {
		t.Fatalf("aggressor mean Retry-After %v ms, want positive", perT.Aggressor.MeanRetryAfterMS)
	}
	if perT.Victim.Errors != 0 || perT.Aggressor.Errors != 0 {
		t.Fatalf("per-tenant arm errors victim=%d aggressor=%d, want sheds not failures",
			perT.Victim.Errors, perT.Aggressor.Errors)
	}

	out := res.Render()
	for _, want := range []string{"EX-10", "global-only", "per-tenant", "headline:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// TestEX10Deterministic: equal seeds replay all three arms exactly.
func TestEX10Deterministic(t *testing.T) {
	cfg := EX10Config{Seed: 7}.Reduced()
	a, err := RunEX10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunEX10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different result:\n%+v\n%+v", a, b)
	}
	cfg.Seed = 8
	c, err := RunEX10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Cells, c.Cells) {
		t.Fatal("different seeds produced identical cells")
	}
}

// TestEX10CSV exercises the dataset writer.
func TestEX10CSV(t *testing.T) {
	res, err := RunEX10(EX10Config{Seed: 42}.Reduced())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := res.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
}
