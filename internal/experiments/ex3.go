package experiments

import (
	"fmt"
	"time"

	"skyfaas/internal/charact"
	"skyfaas/internal/sampler"
	"skyfaas/internal/sim"
	"skyfaas/internal/stats"
	"skyfaas/internal/tablefmt"
)

// EX3Config parameterizes EX-3 (progressive sampling evaluation, Fig. 5):
// poll eleven zones to saturation and score each cumulative poll prefix
// against the at-failure ground truth.
type EX3Config struct {
	Seed uint64
	// Shards selects the simulation engine (0/1 single-queue, N > 1
	// sharded); replay is byte-identical across values.
	Shards int
	// AZs are the evaluated zones (default: the paper's eleven).
	AZs []string
	// Sampler overrides the polling configuration.
	Sampler sampler.Config
}

func (c EX3Config) withDefaults() EX3Config {
	if len(c.AZs) == 0 {
		c.AZs = EX3Zones()
	}
	return c
}

// Reduced returns a benchmark-scale EX-3 (four zones, small polls).
func (c EX3Config) Reduced() EX3Config {
	c.AZs = []string{"eu-north-1a", "us-east-2a", "us-east-2b", "us-west-1a"}
	c.Sampler = sampler.Config{
		Endpoints: 60, PollSize: 222, Branch: 10,
		InterPollPause: 500 * time.Millisecond,
	}
	return c
}

// EX3Zone is one zone's progressive-sampling curve.
type EX3Zone struct {
	AZ string
	// APEByPoll is the error of each cumulative poll prefix against the
	// at-failure characterization.
	APEByPoll []float64
	// FIsByPoll is the cumulative unique-instance count per poll.
	FIsByPoll []int
	// PollsToSaturation is the total polls until the stop rule fired.
	PollsToSaturation int
	// CallsToFailure is the total requests issued until saturation.
	CallsToFailure int
	// SinglePollAPE is APEByPoll[0].
	SinglePollAPE float64
	// PollsTo95 is the first prefix reaching 95% accuracy (-1 if never).
	PollsTo95 int
	CostUSD   float64
}

// EX3Result is the Fig.-5 dataset.
type EX3Result struct {
	Zones []EX3Zone
	// MeanPollsTo95 averages PollsTo95 over zones that reached it.
	MeanPollsTo95 float64
	// MaxSinglePollAPE is the worst single-poll error across zones.
	MaxSinglePollAPE float64
}

// RunEX3 executes EX-3.
func RunEX3(cfg EX3Config) (EX3Result, error) {
	cfg = cfg.withDefaults()
	rt, err := newRuntime(cfg.Seed, 3, cfg.Sampler, cfg.Shards)
	if err != nil {
		return EX3Result{}, err
	}
	var res EX3Result
	err = rt.Do(func(p *sim.Proc) error {
		for _, az := range cfg.AZs {
			if err := rt.EnsureSamplerEndpoints(az); err != nil {
				return err
			}
			ch, trail, err := rt.Sampler().Characterize(p, az)
			if err != nil {
				return fmt.Errorf("characterize %s: %w", az, err)
			}
			zone := analyzeProgressive(az, ch, trail)
			res.Zones = append(res.Zones, zone)
			// Let the zone recover before the next one (shared world).
			p.Sleep(rt.Cloud().Options().KeepAlive + time.Minute)
		}
		return nil
	})
	if err != nil {
		return EX3Result{}, err
	}
	var to95 []float64
	for _, z := range res.Zones {
		if z.SinglePollAPE > res.MaxSinglePollAPE {
			res.MaxSinglePollAPE = z.SinglePollAPE
		}
		if z.PollsTo95 > 0 {
			to95 = append(to95, float64(z.PollsTo95))
		}
	}
	res.MeanPollsTo95 = stats.Mean(to95)
	return res, nil
}

// analyzeProgressive scores a saturation trail against its own at-failure
// ground truth (the paper's reference for EX-3). Observations are
// deduplicated by instance id across polls, exactly as Characterize counts
// them.
func analyzeProgressive(az string, ch charact.Characterization, trail []sampler.PollResult) EX3Zone {
	truth := ch.Dist()
	perPoll := perPollUniqueCounts(trail)
	fisByPoll := make([]int, len(trail))
	cum := 0
	calls := 0
	for i, pr := range trail {
		cum += perPoll[i].Total()
		fisByPoll[i] = cum
		calls += pr.Requested
	}
	apes := charact.ProgressiveAPE(perPoll, truth)
	zone := EX3Zone{
		AZ:                az,
		APEByPoll:         apes,
		FIsByPoll:         fisByPoll,
		PollsToSaturation: len(trail),
		CallsToFailure:    calls,
		PollsTo95:         charact.PollsToAccuracy(apes, 95),
		CostUSD:           ch.CostUSD,
	}
	if len(apes) > 0 {
		zone.SinglePollAPE = apes[0]
	}
	return zone
}

// perPollUniqueCounts rebuilds per-poll CPU counts over first-sighting
// instances only.
func perPollUniqueCounts(trail []sampler.PollResult) []charact.Counts {
	seen := make(map[string]struct{})
	out := make([]charact.Counts, len(trail))
	for i, pr := range trail {
		counts := make(charact.Counts)
		for _, rep := range pr.Reports {
			if _, dup := seen[rep.UUID]; dup {
				continue
			}
			seen[rep.UUID] = struct{}{}
			counts.Add(rep.Kind)
		}
		out[i] = counts
	}
	return out
}

// Render produces the Fig.-5 style report.
func (r EX3Result) Render() string {
	t := tablefmt.New("zone", "polls", "callsToFailure", "1-poll APE", "pollsTo95", "cost")
	for _, z := range r.Zones {
		t.Row(z.AZ, z.PollsToSaturation, z.CallsToFailure,
			fmt.Sprintf("%.1f%%", z.SinglePollAPE), z.PollsTo95, tablefmt.USD(z.CostUSD))
	}
	out := "EX-3 / Fig. 5 — progressive sampling accuracy vs cost\n" + t.String()
	out += fmt.Sprintf("\nmean polls to 95%% accuracy: %.2f   max single-poll APE: %.1f%%\n",
		r.MeanPollsTo95, r.MaxSinglePollAPE)
	return out
}
