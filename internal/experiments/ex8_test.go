package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// TestEX8GoldenFrontier pins the overload story at benchmark scale, seed 42:
// past capacity the gate sheds explicitly and keeps the served tail flat,
// while the no-admission arm's throttle retries inflate the tail and burn
// attempt budgets into hard errors.
func TestEX8GoldenFrontier(t *testing.T) {
	res, err := RunEX8(EX8Config{Seed: 42}.Reduced())
	if err != nil {
		t.Fatal(err)
	}
	if res.CapacityRPS <= 0 {
		t.Fatalf("capacity estimate %v, want positive", res.CapacityRPS)
	}
	if len(res.Cells) != 8 {
		t.Fatalf("got %d cells, want 2 arms x 4 multiples", len(res.Cells))
	}
	cell := func(arm string, m float64) EX8Cell {
		c, ok := res.Cell(arm, m)
		if !ok {
			t.Fatalf("missing cell %s %gx", arm, m)
		}
		return c
	}

	// The gate engages past capacity: explicit sheds at 2x, none at 0.5x.
	if got := cell(EX8Admission, 2).Report.Shed; got == 0 {
		t.Fatal("admission arm shed nothing at 2x capacity")
	}
	if got := cell(EX8Admission, 0.5).Report.Shed; got != 0 {
		t.Fatalf("admission arm shed %d requests under light load", got)
	}

	// Shedding buys a flat tail: served p99 at 2x stays within 2x of the
	// uncontended p99 (the acceptance bound; in practice they are equal).
	lightP99 := cell(EX8Admission, 0.5).Report.Latency.P99
	overP99 := cell(EX8Admission, 2).Report.Latency.P99
	if lightP99 <= 0 || overP99 > 2*lightP99 {
		t.Fatalf("admission served p99 %v ms at 2x vs %v ms at 0.5x, want within 2x", overP99, lightP99)
	}

	// Goodput holds at capacity even 3x over it.
	g1 := cell(EX8Admission, 1).Report.GoodputRPS
	g3 := cell(EX8Admission, 3).Report.GoodputRPS
	if g3 < 0.8*g1 {
		t.Fatalf("admission goodput collapsed: %v rps at 3x vs %v rps at 1x", g3, g1)
	}

	// The contrast: the retry-storm arm's tail inflates and it fails hard.
	naive2 := cell(EX8NoAdmission, 2).Report
	if naive2.Latency.P99 <= overP99 {
		t.Fatalf("no-admission p99 %v ms not above admission's %v ms at 2x", naive2.Latency.P99, overP99)
	}
	if naive2.Errors == 0 {
		t.Fatal("no-admission arm reported no errors at 2x capacity")
	}
	if got := cell(EX8Admission, 3).Report.Errors; got != 0 {
		t.Fatalf("admission arm reported %d hard errors; overload should shed, not fail", got)
	}
	// Sheds carry a usable Retry-After hint.
	if hint := cell(EX8Admission, 2).Report.MeanRetryAfterMS; hint <= 0 {
		t.Fatalf("mean Retry-After %v ms, want positive", hint)
	}

	out := res.Render()
	for _, want := range []string{"EX-8", "no-admission", "headline:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// TestEX8Deterministic: equal seeds replay the whole frontier exactly.
func TestEX8Deterministic(t *testing.T) {
	cfg := EX8Config{Seed: 7}.Reduced()
	cfg.Multiples = []float64{0.5, 2}
	a, err := RunEX8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunEX8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different frontier:\n%+v\n%+v", a, b)
	}
	cfg.Seed = 8
	c, err := RunEX8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Cells, c.Cells) {
		t.Fatal("different seeds produced identical cells")
	}
}

// TestEX8CSV exercises the dataset writer.
func TestEX8CSV(t *testing.T) {
	cfg := EX8Config{Seed: 42}.Reduced()
	cfg.Multiples = []float64{1}
	res, err := RunEX8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := res.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
}
