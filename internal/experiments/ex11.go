package experiments

import (
	"fmt"
	"strings"
	"time"

	"skyfaas/internal/admission"
	"skyfaas/internal/chaos"
	"skyfaas/internal/cloudsim"
	"skyfaas/internal/core"
	"skyfaas/internal/cpu"
	"skyfaas/internal/faas"
	"skyfaas/internal/load"
	"skyfaas/internal/metrics"
	"skyfaas/internal/rng"
	"skyfaas/internal/sampler"
	"skyfaas/internal/sim"
	"skyfaas/internal/tablefmt"
	"skyfaas/internal/warmpool"
	"skyfaas/internal/workload"
)

// EX-11 — predictive warm pooling vs the cold-start tax. One zone serves a
// day/night square wave: each period spends its first half at a
// near-silent trough that outlasts the platform keep-alive (so pools
// drain) and its second half at a busy plateau, with a vertical edge
// between them. Four policies run the identical arrival schedule: no warm
// pool (organic warming pays one cold start per concurrency slot at every
// edge), a pinned floor (pay to hold peak capacity through every trough),
// reactive sizing (track the smoothed recent rate — always one edge
// behind, so its floor arrives after organic warming already paid), and
// predictive sizing (Holt–Winters seasonal forecast one lead ahead, warm
// before the step). Spend is honest: pre-warm initializations AND
// floor-held instance-seconds are billed (cloudsim's provisioned-
// concurrency pricing), so holding capacity is never free. The first
// period trains the forecaster and is excluded from measurement; the
// comparison is cold-start rate and served latency tail against warm-pool
// spend. Two extra cells repeat reactive and predictive under a chaos
// cold-start spike, where every cold start the policy fails to prevent
// costs several times more.

// The six cells: four policies on the clean curve, the two adaptive
// policies again under a cold-start spike.
const (
	EX11Off             = "off"
	EX11Pinned          = "pinned"
	EX11Reactive        = "reactive"
	EX11Predictive      = "predictive"
	EX11ReactiveSpike   = "reactive-spike"
	EX11PredictiveSpike = "predictive-spike"
)

// EX11Arms lists the cells in run order.
func EX11Arms() []string {
	return []string{EX11Off, EX11Pinned, EX11Reactive, EX11Predictive,
		EX11ReactiveSpike, EX11PredictiveSpike}
}

// EX11Config parameterizes EX-11.
type EX11Config struct {
	Seed uint64
	// Shards selects the simulation engine (0/1 single-queue, N > 1
	// sharded); replay is byte-identical across values.
	Shards int
	// Zone is the served zone (default us-west-1a).
	Zone string
	// Workload the curve runs (default sha1_hash, ~1s service time).
	Workload workload.ID
	// Quota is the provider-side concurrent execution limit (default 60).
	Quota int
	// KeepAlive is the platform's idle-instance retention (default 60s —
	// compressed below the diurnal trough so pools actually drain, the
	// regime the paper's cold-start numbers live in).
	KeepAlive time.Duration
	// PeakRPS / BaseRPS / Period / Cycles shape the square wave: each
	// Period spends its first half at BaseRPS (the trough) and its second
	// half at PeakRPS (the plateau), Cycles times (defaults 10 rps,
	// PeakRPS/20, 12m, 4). The near-silent trough is the point: it must
	// outlast KeepAlive so pools drain, and the vertical edge rewards the
	// policy's foresight (or punishes its lack). The first cycle trains
	// the forecaster and is excluded from measurement.
	PeakRPS float64
	BaseRPS float64
	Period  time.Duration
	Cycles  int
	// TickEvery / Window / Lead tune the maintainer (defaults 20s / 30s /
	// 90s; the season is always Period).
	TickEvery time.Duration
	Window    time.Duration
	Lead      time.Duration
	// Gamma is the forecaster's seasonal learning rate (default 0.65 —
	// higher than the production default because the experiment compresses
	// a day into minutes and grants the forecaster only one training pass
	// over the season before measurement starts).
	Gamma float64
	// Floor is the pinned policy's fixed warm floor (default 12 — peak
	// concurrency at the default curve).
	Floor int
	// RatePerHour / Cap tune the USD budget governor (defaults 0.50/1.00).
	RatePerHour float64
	Cap         float64
	// SpikeMagnitude is the chaos cold-start multiplier in the spike cells
	// (default 8).
	SpikeMagnitude float64
	// InitPolls seeds the characterization (default 2); ProfileRuns trains
	// the perf model and the gate's service-time estimate (default 240).
	InitPolls   int
	ProfileRuns int
	// Sampler overrides the polling configuration.
	Sampler sampler.Config
}

func (c EX11Config) withDefaults() EX11Config {
	if c.Zone == "" {
		c.Zone = "us-west-1a"
	}
	if c.Workload == 0 {
		c.Workload = workload.Sha1Hash
	}
	if c.Quota == 0 {
		c.Quota = 60
	}
	if c.KeepAlive == 0 {
		c.KeepAlive = time.Minute
	}
	if c.PeakRPS == 0 {
		c.PeakRPS = 10
	}
	if c.BaseRPS == 0 {
		c.BaseRPS = c.PeakRPS / 20
	}
	if c.Period == 0 {
		c.Period = 12 * time.Minute
	}
	if c.Cycles == 0 {
		c.Cycles = 4
	}
	if c.TickEvery == 0 {
		c.TickEvery = 20 * time.Second
	}
	if c.Window == 0 {
		c.Window = 30 * time.Second
	}
	if c.Lead == 0 {
		c.Lead = 90 * time.Second
	}
	if c.Gamma == 0 {
		c.Gamma = 0.65
	}
	if c.Floor == 0 {
		c.Floor = 12
	}
	if c.RatePerHour == 0 {
		c.RatePerHour = 0.50
	}
	if c.Cap == 0 {
		c.Cap = 1.00
	}
	if c.SpikeMagnitude == 0 {
		c.SpikeMagnitude = 8
	}
	if c.InitPolls == 0 {
		c.InitPolls = 2
	}
	if c.ProfileRuns == 0 {
		c.ProfileRuns = 240
	}
	if c.Sampler.Endpoints == 0 {
		c.Sampler = sampler.Config{
			Endpoints: 40, PollSize: 50, Branch: 7,
			InterPollPause: 500 * time.Millisecond,
		}
	}
	return c
}

// Reduced returns a benchmark-scale EX-11: the same curve shape compressed
// to three 6-minute cycles at 6 rps peak.
func (c EX11Config) Reduced() EX11Config {
	c = c.withDefaults()
	c.Quota = 30
	c.PeakRPS = 6
	c.BaseRPS = 0.3
	c.Period = 6 * time.Minute
	c.Cycles = 3
	c.TickEvery = 15 * time.Second
	c.Lead = time.Minute
	c.Floor = 8
	c.ProfileRuns = 120
	return c
}

// EX11Cell is one policy's measurement over the post-training cycles.
type EX11Cell struct {
	Arm   string
	Mode  warmpool.Mode
	Spike bool
	// Requests / Cold count measured arrivals and the ones that paid a
	// request-path cold start; ColdRate is their ratio.
	Requests int
	Cold     int
	ColdRate float64
	// Latency digests served measured requests; Errors counts failures.
	Latency metrics.Summary
	Errors  uint64
	// SpendUSD is the warm-pool provisioning spend from the cloud meter;
	// Provisioned / SkippedBudget are the maintainer's rollup.
	SpendUSD      float64
	Provisioned   int
	SkippedBudget int
}

// EX11Result carries the policy comparison, cells in arm order.
type EX11Result struct {
	Workload workload.ID
	Zone     string
	PeakRPS  float64
	Period   time.Duration
	Cycles   int
	Cells    []EX11Cell
}

// Cell returns the named arm's measurement.
func (r EX11Result) Cell(arm string) (EX11Cell, bool) {
	for _, c := range r.Cells {
		if c.Arm == arm {
			return c, true
		}
	}
	return EX11Cell{}, false
}

// armPlan maps an arm to its policy and whether the chaos spike runs.
func armPlan(arm string) (warmpool.Mode, bool) {
	spike := strings.HasSuffix(arm, "-spike")
	return warmpool.Mode(strings.TrimSuffix(arm, "-spike")), spike
}

// ex11Arrivals builds the square-wave schedule: each Period spends its
// first half at BaseRPS and its second half at PeakRPS, with a vertical
// edge between them. Each segment draws from its own derived stream so the
// schedule is independent of how other segments consume randomness.
func ex11Arrivals(cfg EX11Config, r *rng.Stream) ([]time.Duration, error) {
	half := cfg.Period / 2
	var out []time.Duration
	for cyc := 0; cyc < cfg.Cycles; cyc++ {
		start := time.Duration(cyc) * cfg.Period
		for i, rate := range []float64{cfg.BaseRPS, cfg.PeakRPS} {
			sched := load.Schedule{Pattern: load.Constant, PeakRPS: rate, Duration: half}
			if err := sched.Validate(); err != nil {
				return nil, err
			}
			off := start + time.Duration(i)*half
			for _, at := range sched.Arrivals(r.SplitIndexed("seg", cyc*2+i)) {
				out = append(out, off+at)
			}
		}
	}
	return out, nil
}

// RunEX11 executes EX-11.
func RunEX11(cfg EX11Config) (EX11Result, error) {
	cfg = cfg.withDefaults()
	res := EX11Result{
		Workload: cfg.Workload, Zone: cfg.Zone,
		PeakRPS: cfg.PeakRPS, Period: cfg.Period, Cycles: cfg.Cycles,
	}
	for _, arm := range EX11Arms() {
		cell, err := runEX11Cell(cfg, arm)
		if err != nil {
			return EX11Result{}, fmt.Errorf("ex11: %s: %w", arm, err)
		}
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}

// runEX11Cell measures one policy in a fresh world: identical seed,
// identical characterization, warmup, and arrival schedule — only the
// warm-pool mode and the chaos window differ.
func runEX11Cell(cfg EX11Config, arm string) (EX11Cell, error) {
	mode, spike := armPlan(arm)
	rt, err := core.New(core.Config{
		Seed:       cfg.Seed,
		Epoch:      defaultEpoch,
		SamplerCfg: cfg.Sampler,
		CloudOpts: cloudsim.Options{
			Quota: cfg.Quota, KeepAlive: cfg.KeepAlive, HorizonDays: 2,
		},
		SkipMesh: true,
		Shards:   cfg.Shards,
	})
	if err != nil {
		return EX11Cell{}, err
	}
	cell := EX11Cell{Arm: arm, Mode: mode, Spike: spike}
	err = rt.Do(func(p *sim.Proc) error {
		// The same estimate pipeline skyd uses: characterize, train the
		// perf model, seed the admission gate — its service-time estimate
		// is the sizer's input, so every arm builds it identically.
		if _, err := rt.Refresh(p, []string{cfg.Zone}, cfg.InitPolls); err != nil {
			return err
		}
		if _, err := rt.ProfileWorkloads(p, []workload.ID{cfg.Workload}, []string{cfg.Zone}, cfg.ProfileRuns); err != nil {
			return err
		}
		if _, err := rt.EnableAdmission(admission.Config{}); err != nil {
			return err
		}
		m, err := rt.EnableWarmPool(warmpool.Config{
			Zones:       []string{cfg.Zone},
			Mode:        mode,
			TickEvery:   cfg.TickEvery,
			Window:      cfg.Window,
			Season:      cfg.Period,
			Lead:        cfg.Lead,
			Gamma:       cfg.Gamma,
			Floor:       cfg.Floor,
			RatePerHour: cfg.RatePerHour,
			Cap:         cfg.Cap,
		}, cfg.Workload)
		if err != nil {
			return err
		}
		m.Start()

		training := cfg.Period
		if spike {
			// The spike covers every measured cycle: each cold start the
			// policy fails to prevent now pays SpikeMagnitude times the
			// usual initialization.
			if _, err := rt.Chaos().Inject(chaos.Fault{
				Kind:      chaos.ColdStartSpike,
				AZ:        cfg.Zone,
				Start:     training,
				Duration:  time.Duration(cfg.Cycles-1) * cfg.Period,
				Magnitude: cfg.SpikeMagnitude,
			}); err != nil {
				return err
			}
		}

		ep, ok := rt.Mesh().Lookup(cfg.Zone, 4096, cpu.X86)
		if !ok {
			return fmt.Errorf("no mesh endpoint in %s", cfg.Zone)
		}
		env := rt.Env()
		client := rt.Client()
		spec := faas.InvokeSpec{Call: faas.Call{
			AZ:       cfg.Zone,
			Function: ep.Function,
			Work:     cloudsim.WorkBehavior{Workload: cfg.Workload},
		}}

		arrivals, err := ex11Arrivals(cfg, rng.New(cfg.Seed).Split("ex11/arrivals"))
		if err != nil {
			return err
		}
		if len(arrivals) == 0 {
			return fmt.Errorf("empty arrival schedule")
		}

		rec := load.NewRecorder()
		var measuredStart time.Time
		remaining := len(arrivals)
		drained := sim.NewEvent(env)
		for _, at := range arrivals {
			at := at
			env.Schedule(at, func() {
				// The forecaster's signal: arrivals, observed at arrival
				// time (skyd wires this to the router's traffic feed).
				m.ObserveTraffic(cfg.Zone, 1)
				measured := at >= training
				if measured && measuredStart.IsZero() {
					measuredStart = env.Now()
				}
				sent := env.Now()
				env.Go("ex11-req", func(rp *sim.Proc) error {
					resp := client.Do(rp, spec)
					if measured {
						cell.Requests++
						if resp.Cold {
							cell.Cold++
						}
						latMS := float64(env.Now().Sub(sent)) / float64(time.Millisecond)
						if resp.OK() {
							rec.Record(load.OK, latMS)
						} else {
							rec.Record(load.Errored, latMS)
						}
					}
					if remaining--; remaining == 0 {
						drained.Trigger(nil)
					}
					return nil
				})
			})
		}
		p.Wait(drained)
		m.Stop()
		if cell.Requests > 0 {
			cell.ColdRate = float64(cell.Cold) / float64(cell.Requests)
		}
		elapsed := env.Now().Sub(measuredStart)
		rep := rec.Report(float64(cell.Requests)/elapsed.Seconds(), elapsed)
		cell.Latency = rep.Latency
		cell.Errors = rep.Errors
		st := m.Snapshot()
		cell.Provisioned = st.Provisioned
		cell.SkippedBudget = st.SkippedBudget
		cell.SpendUSD = rt.Cloud().WarmPoolSpend(rt.Client().Account())
		return nil
	})
	if err != nil {
		return EX11Cell{}, err
	}
	return cell, nil
}

// Render produces the policy report.
func (r EX11Result) Render() string {
	out := fmt.Sprintf("EX-11 — predictive warm pooling vs the cold-start tax (%s in %s, day/night square wave %.0f rps peak, %v period x %d cycles, first cycle trains)\n\n",
		r.Workload, r.Zone, r.PeakRPS, r.Period, r.Cycles)
	t := tablefmt.New("arm", "requests", "cold", "cold rate", "p50 ms", "p99 ms", "provisioned", "spend USD")
	for _, c := range r.Cells {
		t.Row(c.Arm, c.Requests, c.Cold, tablefmt.Pct(c.ColdRate),
			fmt.Sprintf("%.0f", c.Latency.P50), fmt.Sprintf("%.0f", c.Latency.P99),
			c.Provisioned, fmt.Sprintf("%.6f", c.SpendUSD))
	}
	out += t.String()
	off, okO := r.Cell(EX11Off)
	re, okR := r.Cell(EX11Reactive)
	pr, okP := r.Cell(EX11Predictive)
	if okO && okR && okP {
		out += fmt.Sprintf("\nheadline: forecast-led pre-warming cut the cold-start rate from %s (no pool) and %s (reactive) to %s at $%.6f vs reactive's $%.6f provisioning spend\n",
			tablefmt.Pct(off.ColdRate), tablefmt.Pct(re.ColdRate), tablefmt.Pct(pr.ColdRate),
			pr.SpendUSD, re.SpendUSD)
	}
	if rs, ok := r.Cell(EX11ReactiveSpike); ok {
		if ps, ok2 := r.Cell(EX11PredictiveSpike); ok2 {
			out += fmt.Sprintf("under an 8x cold-start spike the served p99 gap widens: reactive %.0f ms vs predictive %.0f ms\n",
				rs.Latency.P99, ps.Latency.P99)
		}
	}
	return out
}

// WriteCSV writes the policy table as one dataset.
func (r EX11Result) WriteCSV(dir string) error {
	t := tablefmt.New("arm", "mode", "spike", "requests", "cold", "cold_rate",
		"errors", "p50_ms", "p90_ms", "p95_ms", "p99_ms",
		"provisioned", "skipped_budget", "spend_usd")
	for _, c := range r.Cells {
		t.Row(c.Arm, string(c.Mode), c.Spike, c.Requests, c.Cold, c.ColdRate,
			c.Errors, c.Latency.P50, c.Latency.P90, c.Latency.P95, c.Latency.P99,
			c.Provisioned, c.SkippedBudget, c.SpendUSD)
	}
	return writeCSVFile(dir, "ex11_warmpool.csv", t)
}
