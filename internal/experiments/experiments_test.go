package experiments

import (
	"strings"
	"testing"

	"skyfaas/internal/cloudsim"
	"skyfaas/internal/cpu"
	"skyfaas/internal/workload"
)

func TestZoneLists(t *testing.T) {
	if len(EX3Zones()) != 11 {
		t.Errorf("EX-3 zones = %d, want 11", len(EX3Zones()))
	}
	if len(EX4Zones()) != 5 {
		t.Errorf("EX-4 zones = %d, want 5", len(EX4Zones()))
	}
	// Every listed zone exists in the catalog.
	azs := map[string]bool{}
	for _, r := range cloudsim.DefaultCatalog() {
		for _, az := range r.AZs {
			azs[az.Name] = true
		}
	}
	for _, z := range append(EX3Zones(), EX4Zones()...) {
		if !azs[z] {
			t.Errorf("zone %s not in catalog", z)
		}
	}
}

func TestEX1Reduced(t *testing.T) {
	res, err := RunEX1(EX1Config{Seed: 5}.Reduced())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sweep) != 3 {
		t.Fatalf("sweep points = %d", len(res.Sweep))
	}
	// Fig. 3 shape: longer sleeps cost more; coverage not lower.
	if res.Sweep[2].CostUSD <= res.Sweep[0].CostUSD {
		t.Errorf("cost not increasing with sleep: %+v", res.Sweep)
	}
	if res.Sweep[0].UniqueFIs > res.Sweep[1].UniqueFIs {
		t.Errorf("short sleep covered more FIs: %+v", res.Sweep)
	}
	// Fig. 4 shape: early polls succeed, final polls mostly fail, and the
	// second account fails immediately.
	first := res.FirstAccount
	if len(first) < 5 {
		t.Fatalf("saturated after %d polls", len(first))
	}
	if first[0].FailFrac() > 0.05 {
		t.Errorf("first poll failing already: %.2f", first[0].FailFrac())
	}
	if last := first[len(first)-1]; last.FailFrac() < 0.5 {
		t.Errorf("final poll fail frac %.2f", last.FailFrac())
	}
	if len(res.SecondAccount) == 0 {
		t.Fatal("no second-account polls")
	}
	if res.SecondAccount[0].FailFrac() < 0.5 {
		t.Errorf("independent account first poll fail frac %.2f, want immediate saturation",
			res.SecondAccount[0].FailFrac())
	}
	if out := res.Render(); !strings.Contains(out, "Fig. 4") {
		t.Error("render missing figure labels")
	}
}

func TestEX2Reduced(t *testing.T) {
	res, err := RunEX2(EX2Config{Seed: 5}.Reduced())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regions) != 6 {
		t.Fatalf("regions = %d", len(res.Regions))
	}
	byRegion := map[string]RegionChar{}
	for _, rc := range res.Regions {
		byRegion[rc.Region] = rc
		if rc.Samples == 0 || len(rc.Dist) == 0 {
			t.Errorf("%s: empty characterization", rc.Region)
		}
	}
	// Paper facts visible through sampling alone:
	if d := byRegion["us-west-2"].Dist; d.Share(cpu.Xeon30) <= d.Share(cpu.Xeon25) {
		t.Errorf("us-west-2: 3.0GHz share %.2f not dominant", d.Share(cpu.Xeon30))
	}
	if d := byRegion["af-south-1"].Dist; d.Share(cpu.Xeon30) > 0 {
		t.Errorf("af-south-1 shows a 3.0GHz share: %v", d)
	}
	if d := byRegion["il-central-1"].Dist; d.Share(cpu.EPYC) < 0.05 {
		t.Errorf("il-central-1 EPYC share %.2f too low", d.Share(cpu.EPYC))
	}
	// IBM and DO zones show their own CPU families only.
	for _, region := range []string{"us-south", "nyc1"} {
		for kind := range byRegion[region].Dist {
			if kind == cpu.Xeon25 || kind == cpu.Xeon30 || kind == cpu.EPYC {
				t.Errorf("%s characterization contains AWS CPU %v", region, kind)
			}
		}
	}
	if res.TotalCost <= 0 {
		t.Error("no sampling cost recorded")
	}
	if out := res.Render(); !strings.Contains(out, "Fig. 2") {
		t.Error("render missing figure label")
	}
}

func TestEX3Reduced(t *testing.T) {
	res, err := RunEX3(EX3Config{Seed: 5}.Reduced())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Zones) != 4 {
		t.Fatalf("zones = %d", len(res.Zones))
	}
	byZone := map[string]EX3Zone{}
	for _, z := range res.Zones {
		byZone[z.AZ] = z
		if z.PollsToSaturation < 2 {
			t.Errorf("%s saturated after %d polls", z.AZ, z.PollsToSaturation)
		}
		// Errors converge: the final prefix (the truth itself) is ~0.
		if final := z.APEByPoll[len(z.APEByPoll)-1]; final > 1e-9 {
			t.Errorf("%s: final APE %.2f, want 0 vs own truth", z.AZ, final)
		}
	}
	// us-east-2a is single-CPU: 0%% error from the first poll.
	if z := byZone["us-east-2a"]; z.SinglePollAPE > 1e-9 {
		t.Errorf("us-east-2a single-poll APE = %.2f, want 0", z.SinglePollAPE)
	}
	// us-east-2b (coarse hosts, diverse mix) has the worst single-poll APE.
	worst := ""
	worstAPE := -1.0
	for az, z := range byZone {
		if z.SinglePollAPE > worstAPE {
			worst, worstAPE = az, z.SinglePollAPE
		}
	}
	if worst != "us-east-2b" {
		t.Errorf("worst single-poll zone = %s (%.1f%%), want us-east-2b", worst, worstAPE)
	}
	// eu-north-1a (small pool) fails far earlier than us-west-1a.
	if byZone["eu-north-1a"].CallsToFailure*2 > byZone["us-west-1a"].CallsToFailure {
		t.Errorf("failure points: eu-north-1a %d vs us-west-1a %d",
			byZone["eu-north-1a"].CallsToFailure, byZone["us-west-1a"].CallsToFailure)
	}
	if res.MeanPollsTo95 <= 0 {
		t.Error("mean polls to 95 missing")
	}
}

func TestEX4Reduced(t *testing.T) {
	res, err := RunEX4(EX4Config{Seed: 5}.Reduced())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ByZone["us-west-1a"]) != 5 || len(res.ByZone["sa-east-1a"]) != 5 {
		t.Fatalf("round counts: %d / %d", len(res.ByZone["us-west-1a"]), len(res.ByZone["sa-east-1a"]))
	}
	// Temporal classes: the volatile zone wanders from day 1 more than the
	// stable zone does.
	maxAPE := func(az string) float64 {
		best := 0.0
		for _, r := range res.ByZone[az][1:] {
			if r.APEVsDay1 > best {
				best = r.APEVsDay1
			}
		}
		return best
	}
	volatileMax, stableMax := maxAPE("us-west-1a"), maxAPE("sa-east-1a")
	if stableMax > 12 {
		t.Errorf("sa-east-1a drifted %.1f%% from day 1, want <= ~10%%", stableMax)
	}
	if volatileMax <= stableMax {
		t.Errorf("us-west-1a max drift %.1f%% not above sa-east-1a %.1f%%", volatileMax, stableMax)
	}
	// Accuracy thresholds are ordered.
	if !(res.MeanPollsTo85 <= res.MeanPollsTo90 && res.MeanPollsTo90 <= res.MeanPollsTo95 &&
		res.MeanPollsTo95 <= res.MeanPollsTo99) {
		t.Errorf("threshold ordering: 85=%.1f 90=%.1f 95=%.1f 99=%.1f",
			res.MeanPollsTo85, res.MeanPollsTo90, res.MeanPollsTo95, res.MeanPollsTo99)
	}
	// Fig. 8: hourly series exists; most hours near the baseline.
	if len(res.HourlyAPE) != 6 {
		t.Fatalf("hourly points = %d", len(res.HourlyAPE))
	}
	if res.HourlyWithin10 < len(res.HourlyAPE)/2 {
		t.Errorf("only %d/%d hours within 10%%", res.HourlyWithin10, len(res.HourlyAPE))
	}
	if out := res.Render(); !strings.Contains(out, "Fig. 6") {
		t.Error("render missing figure label")
	}
}

func TestEX5Reduced(t *testing.T) {
	res, err := RunEX5(EX5Config{Seed: 5}.Reduced())
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 9 shape for the evaluated workloads.
	for _, w := range []workload.ID{workload.Zipper, workload.LogisticRegression} {
		norm := res.NormalizedPerf[w]
		if norm == nil {
			t.Fatalf("no learned profile for %s", w)
		}
		if norm[cpu.Xeon30] >= 1 {
			t.Errorf("%s: learned 3.0GHz factor %.2f, want < 1", w, norm[cpu.Xeon30])
		}
		if norm[cpu.EPYC] <= 1.1 {
			t.Errorf("%s: learned EPYC factor %.2f, want clearly slower", w, norm[cpu.EPYC])
		}
	}
	// Fig. 10 shape: both retry variants save vs baseline; focus-fastest
	// saves more and retries more.
	slow, focus := res.ZipperRetrySlow, res.ZipperFocusFastest
	if slow.Cumulative() <= 0 {
		t.Errorf("retry-slow cumulative savings %.3f", slow.Cumulative())
	}
	if focus.Cumulative() <= slow.Cumulative() {
		t.Errorf("focus-fastest %.3f not above retry-slow %.3f", focus.Cumulative(), slow.Cumulative())
	}
	if focus.MaxRetryFrac() <= slow.MaxRetryFrac() {
		t.Errorf("focus retries %.2f not above retry-slow %.2f", focus.MaxRetryFrac(), slow.MaxRetryFrac())
	}
	// Fig. 11 shape: hybrid saves vs the fixed zone.
	if res.LogRegHybrid.Cumulative() <= 0 {
		t.Errorf("logreg hybrid savings %.3f", res.LogRegHybrid.Cumulative())
	}
	// Headline: positive average savings, sampling spend small.
	if res.AvgHybridSavings <= 0.02 {
		t.Errorf("avg hybrid savings %.3f", res.AvgHybridSavings)
	}
	if res.SamplingSpendUSD <= 0 {
		t.Error("no sampling spend recorded")
	}
	if out := res.Render(); !strings.Contains(out, "Fig. 10") || !strings.Contains(out, "Fig. 11") {
		t.Error("render missing figure labels")
	}
}
