package experiments

import (
	"fmt"
	"sort"
	"time"

	"skyfaas/internal/cpu"
	"skyfaas/internal/router"
	"skyfaas/internal/sampler"
	"skyfaas/internal/sim"
	"skyfaas/internal/stats"
	"skyfaas/internal/tablefmt"
	"skyfaas/internal/workload"
)

// EX5Config parameterizes EX-5 (performance enhancement by smart routing:
// Figs. 9-11 and the headline savings).
type EX5Config struct {
	Seed uint64
	// Shards selects the simulation engine (0/1 single-queue, N > 1
	// sharded); replay is byte-identical across values.
	Shards int
	// ProfileZones are profiled per workload (default: the EX-4 five).
	ProfileZones []string
	// ProfileRuns is per-workload-per-zone profiling executions. The paper
	// used 10,000; the default here is 2,000, which pins per-CPU means to
	// well under 1% standard error at a fraction of the compute.
	ProfileRuns int
	// BaselineAZ anchors the fixed-zone comparisons (paper: us-west-1b).
	BaselineAZ string
	// HopZones are the region-hopping candidates (paper: us-west-1a,
	// us-west-1b, sa-east-1a).
	HopZones []string
	// Days is the evaluation span (default 14).
	Days int
	// BurstN is the invocations per burst (default 1,000).
	BurstN int
	// RefreshPolls is the daily characterization depth (default 6, the
	// paper's 95%-accuracy budget).
	RefreshPolls int
	// Workloads to evaluate (default: all 12).
	Workloads []workload.ID
	// Sampler overrides the polling configuration.
	Sampler sampler.Config
}

func (c EX5Config) withDefaults() EX5Config {
	if len(c.ProfileZones) == 0 {
		c.ProfileZones = EX4Zones()
	}
	if c.ProfileRuns == 0 {
		c.ProfileRuns = 2000
	}
	if c.BaselineAZ == "" {
		c.BaselineAZ = "us-west-1b"
	}
	if len(c.HopZones) == 0 {
		c.HopZones = []string{"us-west-1a", "us-west-1b", "sa-east-1a"}
	}
	if c.Days == 0 {
		c.Days = 14
	}
	if c.BurstN == 0 {
		c.BurstN = 1000
	}
	if c.RefreshPolls == 0 {
		c.RefreshPolls = 6
	}
	if len(c.Workloads) == 0 {
		c.Workloads = workload.IDs()
	}
	return c
}

// Reduced returns a benchmark-scale EX-5.
func (c EX5Config) Reduced() EX5Config {
	c = c.withDefaults()
	c.ProfileRuns = 450
	c.Days = 4
	c.BurstN = 200
	c.RefreshPolls = 3
	c.Workloads = []workload.ID{workload.Zipper, workload.LogisticRegression, workload.GraphBFS}
	c.Sampler = sampler.Config{
		Endpoints: 60, PollSize: 222, Branch: 10,
		InterPollPause: 500 * time.Millisecond,
	}
	return c
}

// StrategyDay is one day's cost under one strategy.
type StrategyDay struct {
	Day       int
	CostUSD   float64
	RetryFrac float64
	AZ        string
}

// SavingsSeries compares a strategy's daily costs against a baseline.
type SavingsSeries struct {
	Strategy string
	Days     []StrategyDay
	Baseline []StrategyDay
}

// Cumulative returns 1 - totalCost/totalBaselineCost.
func (s SavingsSeries) Cumulative() float64 {
	var cost, base float64
	for _, d := range s.Days {
		cost += d.CostUSD
	}
	for _, d := range s.Baseline {
		base += d.CostUSD
	}
	if base == 0 {
		return 0
	}
	return 1 - cost/base
}

// MaxDaily returns the best single-day savings.
func (s SavingsSeries) MaxDaily() float64 {
	best := 0.0
	for i := range s.Days {
		if i >= len(s.Baseline) || s.Baseline[i].CostUSD == 0 {
			continue
		}
		v := 1 - s.Days[i].CostUSD/s.Baseline[i].CostUSD
		if v > best {
			best = v
		}
	}
	return best
}

// MaxRetryFrac returns the highest daily retry fraction.
func (s SavingsSeries) MaxRetryFrac() float64 {
	best := 0.0
	for _, d := range s.Days {
		if d.RetryFrac > best {
			best = d.RetryFrac
		}
	}
	return best
}

// EX5Result carries Figs. 9-11 and the headline aggregate.
type EX5Result struct {
	// NormalizedPerf is Fig. 9: per-workload runtime by CPU relative to
	// the 2.5 GHz Xeon, as *learned* by profiling.
	NormalizedPerf map[workload.ID]map[cpu.Kind]float64
	ProfileCostUSD float64

	// ZipperRetrySlow / ZipperFocusFastest are Fig. 10 (fixed zone).
	ZipperAZ           string
	ZipperRetrySlow    SavingsSeries
	ZipperFocusFastest SavingsSeries

	// LogRegHybrid is Fig. 11 (hybrid region hopping + retries vs the
	// fixed us-west-1b baseline).
	LogRegHybrid SavingsSeries

	// HybridByWorkload is the headline: cumulative hybrid savings per
	// workload over the whole span.
	HybridByWorkload map[workload.ID]SavingsSeries
	AvgHybridSavings float64
	StdHybridSavings float64
	BestWorkload     workload.ID
	BestSavings      float64

	// SamplingSpendUSD is the total characterization spend of the span
	// (the paper reports $2.80).
	SamplingSpendUSD float64
}

// RunEX5 executes EX-5.
func RunEX5(cfg EX5Config) (EX5Result, error) {
	cfg = cfg.withDefaults()
	rt, err := newRuntime(cfg.Seed, cfg.Days+3, cfg.Sampler, cfg.Shards)
	if err != nil {
		return EX5Result{}, err
	}
	res := EX5Result{
		NormalizedPerf:   make(map[workload.ID]map[cpu.Kind]float64, len(cfg.Workloads)),
		ZipperAZ:         cfg.BaselineAZ,
		HybridByWorkload: make(map[workload.ID]SavingsSeries, len(cfg.Workloads)),
	}
	err = rt.Do(func(p *sim.Proc) error {
		// Step 1 — baseline profiling (Fig. 9).
		profileCost, err := rt.ProfileWorkloads(p, cfg.Workloads, cfg.ProfileZones, cfg.ProfileRuns)
		if err != nil {
			return err
		}
		res.ProfileCostUSD = profileCost
		for _, w := range cfg.Workloads {
			res.NormalizedPerf[w] = rt.Perf().Normalized(w)
		}
		// Instances from profiling expire before routing starts.
		p.Sleep(rt.Cloud().Options().KeepAlive + time.Minute)

		hasZipper := false
		for _, w := range cfg.Workloads {
			if w == workload.Zipper {
				hasZipper = true
			}
		}
		series := make(map[workload.ID]*SavingsSeries, len(cfg.Workloads))
		for _, w := range cfg.Workloads {
			series[w] = &SavingsSeries{Strategy: "hybrid"}
		}
		zipSlow := &SavingsSeries{Strategy: "retry-slow"}
		zipFocus := &SavingsSeries{Strategy: "focus-fastest"}

		// Bursts are separated by more than the keep-alive so no strategy
		// inherits another's warm instances: a focus-fastest burst leaves
		// behind a pool of fast-CPU-only instances that would silently
		// flatter whatever runs next.
		keepAlive := rt.Cloud().Options().KeepAlive
		burst := func(day int, strat router.Strategy, w workload.ID) (StrategyDay, error) {
			r, err := rt.Run(p, router.BurstSpec{
				Strategy:   strat,
				Workload:   w,
				N:          cfg.BurstN,
				Candidates: cfg.HopZones,
			})
			if err != nil {
				return StrategyDay{}, err
			}
			p.Sleep(keepAlive + time.Minute)
			return StrategyDay{Day: day, CostUSD: r.CostUSD, RetryFrac: r.RetryFrac(), AZ: r.AZ}, nil
		}

		// Step 2 — the two-week routed evaluation.
		for day := 0; day < cfg.Days; day++ {
			cost, err := rt.Refresh(p, cfg.HopZones, cfg.RefreshPolls)
			if err != nil {
				return err
			}
			res.SamplingSpendUSD += cost

			for _, w := range cfg.Workloads {
				base, err := burst(day, router.Baseline{AZ: cfg.BaselineAZ}, w)
				if err != nil {
					return err
				}
				hyb, err := burst(day, router.Hybrid{}, w)
				if err != nil {
					return err
				}
				s := series[w]
				s.Baseline = append(s.Baseline, base)
				s.Days = append(s.Days, hyb)

				if w == workload.Zipper {
					slow, err := burst(day, router.RetrySlow{AZ: cfg.BaselineAZ}, w)
					if err != nil {
						return err
					}
					focus, err := burst(day, router.FocusFastest{AZ: cfg.BaselineAZ}, w)
					if err != nil {
						return err
					}
					zipSlow.Baseline = append(zipSlow.Baseline, base)
					zipSlow.Days = append(zipSlow.Days, slow)
					zipFocus.Baseline = append(zipFocus.Baseline, base)
					zipFocus.Days = append(zipFocus.Days, focus)
				}
			}
			if day < cfg.Days-1 {
				p.Sleep(22 * time.Hour)
			}
		}

		for w, s := range series {
			res.HybridByWorkload[w] = *s
		}
		if hasZipper {
			res.ZipperRetrySlow = *zipSlow
			res.ZipperFocusFastest = *zipFocus
		}
		for _, w := range cfg.Workloads {
			if w == workload.LogisticRegression {
				res.LogRegHybrid = res.HybridByWorkload[w]
			}
		}
		return nil
	})
	if err != nil {
		return EX5Result{}, err
	}

	// Aggregate in workload order: map iteration would randomize both the
	// floating-point sum and best-workload tie-breaking across runs.
	var savings []float64
	for _, w := range workload.IDs() {
		s, ok := res.HybridByWorkload[w]
		if !ok {
			continue
		}
		v := s.Cumulative()
		savings = append(savings, v)
		if v > res.BestSavings {
			res.BestSavings = v
			res.BestWorkload = w
		}
	}
	res.AvgHybridSavings = stats.Mean(savings)
	res.StdHybridSavings = stats.StdDev(savings)
	return res, nil
}

// Render produces the Figs. 9-11 style report.
func (r EX5Result) Render() string {
	// Fig. 9.
	kinds := []cpu.Kind{cpu.Xeon25, cpu.Xeon29, cpu.Xeon30, cpu.EPYC}
	t := tablefmt.New("workload", "2.5GHz", "2.9GHz", "3.0GHz", "EPYC")
	ids := make([]workload.ID, 0, len(r.NormalizedPerf))
	for w := range r.NormalizedPerf {
		ids = append(ids, w)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, w := range ids {
		row := []any{w.String()}
		for _, k := range kinds {
			if v, ok := r.NormalizedPerf[w][k]; ok {
				row = append(row, fmt.Sprintf("%.2f", v))
			} else {
				row = append(row, "-")
			}
		}
		t.Row(row...)
	}
	out := fmt.Sprintf("EX-5 / Fig. 9 — learned runtime by CPU, normalized to 2.5GHz (profiling cost %s)\n",
		tablefmt.USD(r.ProfileCostUSD)) + t.String()

	// Fig. 10.
	if len(r.ZipperFocusFastest.Days) > 0 {
		t2 := tablefmt.New("day", "baseline", "retry-slow", "focus-fastest", "focus retryFrac")
		for i := range r.ZipperFocusFastest.Days {
			t2.Row(i+1,
				tablefmt.USD(r.ZipperFocusFastest.Baseline[i].CostUSD),
				tablefmt.USD(r.ZipperRetrySlow.Days[i].CostUSD),
				tablefmt.USD(r.ZipperFocusFastest.Days[i].CostUSD),
				tablefmt.Pct(r.ZipperFocusFastest.Days[i].RetryFrac))
		}
		out += fmt.Sprintf("\nEX-5 / Fig. 10 — zipper on %s\n", r.ZipperAZ) + t2.String()
		out += fmt.Sprintf("cumulative savings: retry-slow %s, focus-fastest %s (max daily %s, max retried %s)\n",
			tablefmt.Pct(r.ZipperRetrySlow.Cumulative()),
			tablefmt.Pct(r.ZipperFocusFastest.Cumulative()),
			tablefmt.Pct(r.ZipperFocusFastest.MaxDaily()),
			tablefmt.Pct(r.ZipperFocusFastest.MaxRetryFrac()))
	}

	// Fig. 11.
	if len(r.LogRegHybrid.Days) > 0 {
		t3 := tablefmt.New("day", "baseline(us-west-1b)", "hybrid", "zone")
		for i := range r.LogRegHybrid.Days {
			t3.Row(i+1,
				tablefmt.USD(r.LogRegHybrid.Baseline[i].CostUSD),
				tablefmt.USD(r.LogRegHybrid.Days[i].CostUSD),
				r.LogRegHybrid.Days[i].AZ)
		}
		out += "\nEX-5 / Fig. 11 — logistic_regression hybrid region hopping\n" + t3.String()
		out += fmt.Sprintf("cumulative savings %s, max daily %s\n",
			tablefmt.Pct(r.LogRegHybrid.Cumulative()), tablefmt.Pct(r.LogRegHybrid.MaxDaily()))
	}

	// Headline.
	t4 := tablefmt.New("workload", "hybrid cumulative savings")
	for _, w := range ids {
		if s, ok := r.HybridByWorkload[w]; ok {
			t4.Row(w.String(), tablefmt.Pct(s.Cumulative()))
		}
	}
	out += "\nEX-5 — headline hybrid savings per workload\n" + t4.String()
	out += fmt.Sprintf("avg %s ± %.2f pp; best %s (%s); sampling spend %s\n",
		tablefmt.Pct(r.AvgHybridSavings), r.StdHybridSavings*100,
		tablefmt.Pct(r.BestSavings), r.BestWorkload, tablefmt.USD(r.SamplingSpendUSD))
	return out
}
