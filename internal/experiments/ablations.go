package experiments

import (
	"time"

	"skyfaas/internal/cloudsim"
	"skyfaas/internal/core"
	"skyfaas/internal/faas"
	"skyfaas/internal/router"
	"skyfaas/internal/sampler"
	"skyfaas/internal/sim"
	"skyfaas/internal/workload"
)

// This file holds the ablation studies DESIGN.md §6 calls out: they justify
// the design choices of the reproduced system rather than regenerate a
// paper figure.

// AblationFanoutResult compares the recursive-tree fan-out against a flat
// client fan-out at equal request counts.
type AblationFanoutResult struct {
	// TreeUniqueFIs / TreeClientCalls: one tree poll's coverage and the
	// concurrent requests the client itself had to hold open.
	TreeUniqueFIs   int
	TreeClientCalls int
	// FlatUniqueFIs / FlatClientCalls: the same request volume issued as
	// individual client calls.
	FlatUniqueFIs   int
	FlatClientCalls int
}

// RunAblationFanout measures both fan-out shapes in a fresh zone each.
func RunAblationFanout(seed uint64) (AblationFanoutResult, error) {
	cfg := sampler.Config{
		Endpoints: 4, PollSize: 222, Branch: 10,
		InterPollPause: 500 * time.Millisecond,
	}
	rt, err := newRuntime(seed, 2, cfg, 0)
	if err != nil {
		return AblationFanoutResult{}, err
	}
	const az = "us-west-1a"
	var res AblationFanoutResult
	err = rt.Do(func(p *sim.Proc) error {
		if err := rt.EnsureSamplerEndpoints(az); err != nil {
			return err
		}
		s := rt.Sampler()

		// Tree fan-out: the client only issues the root requests.
		tree := s.Poll(p, az, 0)
		res.TreeUniqueFIs = uniqueFIs(tree)
		res.TreeClientCalls = s.Config().PollSize / (1 + s.Config().Branch + s.Config().Branch*s.Config().Branch)

		// Let the tree's instances expire so the flat poll starts cold.
		p.Sleep(rt.Cloud().Options().KeepAlive + time.Minute)

		// Flat fan-out: the client holds every request itself.
		client := rt.Client()
		responses := client.InvokeBatch(p, faas.Call{
			AZ:       az,
			Function: flatEndpointName(s, az),
			Work:     cloudsim.SleepBehavior{D: s.Config().Sleep},
		}, tree.Requested)
		seen := make(map[string]struct{}, len(responses))
		for _, r := range responses {
			if r.OK() {
				seen[r.FI] = struct{}{}
			}
		}
		res.FlatUniqueFIs = len(seen)
		res.FlatClientCalls = tree.Requested
		return nil
	})
	if err != nil {
		return AblationFanoutResult{}, err
	}
	return res, nil
}

// flatEndpointName picks a sampler endpoint not used by the tree poll.
func flatEndpointName(s *sampler.Sampler, az string) string {
	// Endpoint 1 (the tree used endpoint 0).
	return flatName(s.Config().Prefix, az)
}

func flatName(prefix, az string) string {
	return prefix + "-" + az + "-001"
}

func uniqueFIs(pr sampler.PollResult) int {
	seen := make(map[string]struct{}, len(pr.Reports))
	for _, rep := range pr.Reports {
		seen[rep.UUID] = struct{}{}
	}
	return len(seen)
}

// AblationPassiveResult compares routing on polled characterizations
// against free passive ones built from the traffic itself (§4.6).
type AblationPassiveResult struct {
	// PolledSavings / PolledSamplingUSD: hybrid savings and the polling
	// spend that enabled them.
	PolledSavings     float64
	PolledSamplingUSD float64
	// PassiveSavings / PassiveSamplingUSD: the same with zero-cost passive
	// characterization.
	PassiveSavings     float64
	PassiveSamplingUSD float64
}

// RunAblationPassive routes a workload for several days over volatile
// zones twice — once refreshing characterizations by polling, once
// passively from the traffic — on identical worlds.
func RunAblationPassive(seed uint64) (AblationPassiveResult, error) {
	const days = 4
	zones := []string{"us-west-1a", "us-west-1b", "sa-east-1a"}
	run := func(passive bool) (float64, float64, error) {
		rt, err := core.New(core.Config{
			Seed:  seed,
			Epoch: defaultEpoch,
			SamplerCfg: sampler.Config{
				Endpoints: 60, PollSize: 222, Branch: 10,
				InterPollPause: 500 * time.Millisecond,
			},
			CloudOpts: cloudsim.Options{HorizonDays: days + 2},
			SkipMesh:  true,
		})
		if err != nil {
			return 0, 0, err
		}
		if passive {
			rt.EnablePassiveCharacterization(24 * time.Hour)
		}
		var baseTotal, hybTotal, sampling float64
		err = rt.Do(func(p *sim.Proc) error {
			if _, err := rt.ProfileWorkloads(p, []workload.ID{workload.MathService}, zones, 600); err != nil {
				return err
			}
			p.Sleep(6 * time.Minute)
			for day := 0; day < days; day++ {
				if passive {
					rt.RefreshPassive(zones, 100)
				} else {
					cost, err := rt.Refresh(p, zones, 3)
					if err != nil {
						return err
					}
					sampling += cost
				}
				base, err := rt.Run(p, router.BurstSpec{
					Strategy: router.Baseline{AZ: "us-west-1b"}, Workload: workload.MathService,
					N: 200, Candidates: zones,
				})
				if err != nil {
					return err
				}
				p.Sleep(6 * time.Minute)
				hyb, err := rt.Run(p, router.BurstSpec{
					Strategy: router.Hybrid{}, Workload: workload.MathService,
					N: 200, Candidates: zones,
				})
				if err != nil {
					return err
				}
				baseTotal += base.CostUSD
				hybTotal += hyb.CostUSD
				if day < days-1 {
					p.Sleep(22 * time.Hour)
				}
			}
			return nil
		})
		if err != nil {
			return 0, 0, err
		}
		return 1 - hybTotal/baseTotal, sampling, nil
	}
	polled, polledCost, err := run(false)
	if err != nil {
		return AblationPassiveResult{}, err
	}
	passive, passiveCost, err := run(true)
	if err != nil {
		return AblationPassiveResult{}, err
	}
	return AblationPassiveResult{
		PolledSavings:      polled,
		PolledSamplingUSD:  polledCost,
		PassiveSavings:     passive,
		PassiveSamplingUSD: passiveCost,
	}, nil
}

// AblationStaleResult compares routing on fresh daily characterizations
// against a frozen day-1 profile.
type AblationStaleResult struct {
	FreshSavings float64
	StaleSavings float64
}

// RunAblationStaleProfile routes a workload for several days over volatile
// zones twice — refreshing characterizations daily versus freezing day 1 —
// and reports cumulative savings versus the fixed-zone baseline in each
// mode. Both runs replay the identical world (same seed).
func RunAblationStaleProfile(seed uint64) (AblationStaleResult, error) {
	const days = 5
	zones := []string{"us-west-1a", "us-west-1b", "sa-east-1a"}
	run := func(refreshDaily bool) (float64, error) {
		rt, err := core.New(core.Config{
			Seed:  seed,
			Epoch: defaultEpoch,
			SamplerCfg: sampler.Config{
				Endpoints: 60, PollSize: 222, Branch: 10,
				InterPollPause: 500 * time.Millisecond,
			},
			CloudOpts: cloudsim.Options{HorizonDays: days + 2},
			StoreTTL:  1000 * time.Hour, // stale mode relies on old entries staying visible
			SkipMesh:  true,
		})
		if err != nil {
			return 0, err
		}
		var baseTotal, hybTotal float64
		err = rt.Do(func(p *sim.Proc) error {
			if _, err := rt.ProfileWorkloads(p, []workload.ID{workload.Zipper}, zones, 450); err != nil {
				return err
			}
			p.Sleep(6 * time.Minute)
			for day := 0; day < days; day++ {
				if day == 0 || refreshDaily {
					if _, err := rt.Refresh(p, zones, 3); err != nil {
						return err
					}
				}
				base, err := rt.Run(p, router.BurstSpec{
					Strategy: router.Baseline{AZ: "us-west-1b"}, Workload: workload.Zipper,
					N: 200, Candidates: zones,
				})
				if err != nil {
					return err
				}
				p.Sleep(6 * time.Minute)
				hyb, err := rt.Run(p, router.BurstSpec{
					Strategy: router.Hybrid{}, Workload: workload.Zipper,
					N: 200, Candidates: zones,
				})
				if err != nil {
					return err
				}
				baseTotal += base.CostUSD
				hybTotal += hyb.CostUSD
				if day < days-1 {
					p.Sleep(22 * time.Hour)
				}
			}
			return nil
		})
		if err != nil {
			return 0, err
		}
		return 1 - hybTotal/baseTotal, nil
	}
	fresh, err := run(true)
	if err != nil {
		return AblationStaleResult{}, err
	}
	stale, err := run(false)
	if err != nil {
		return AblationStaleResult{}, err
	}
	return AblationStaleResult{FreshSavings: fresh, StaleSavings: stale}, nil
}
