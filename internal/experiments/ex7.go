package experiments

import (
	"fmt"
	"time"

	"skyfaas/internal/chaos"
	"skyfaas/internal/refresh"
	"skyfaas/internal/router"
	"skyfaas/internal/sampler"
	"skyfaas/internal/sim"
	"skyfaas/internal/tablefmt"
	"skyfaas/internal/workload"
)

// EX-7 — continuous characterization maintenance under drift. EX-4 showed
// characterizations rot; EX-6's drift-burst showed how violently. EX-7 asks
// what to do about it: each arm runs the same traffic through the same
// drifting sky, differing only in the refresh maintainer's trigger policy.
// The hybrid router keeps routing on whatever the store believes, so
// routing quality (fast-CPU hit rate) directly exposes how stale that
// belief is — and the maintainer's ledger exposes what keeping it fresh
// cost. The headline claim: drift-triggered refresh recovers near-fresh
// routing quality at a fraction of naive periodic re-sampling's spend.

// EX7Arm is one maintenance policy under test.
type EX7Arm struct {
	// Label names the arm in tables and CSVs.
	Label string
	// Refresh configures the maintainer (zones are filled in by the
	// runner). Mode off = the paper's sample-once baseline.
	Refresh refresh.Config
}

// DefaultEX7Arms returns the canonical policy ladder: sample-once (the
// paper's default), naive periodic re-sampling, and drift-triggered
// refresh. Budgets are deliberately generous so the measured spend is the
// policy's appetite, not the governor's clamp.
func DefaultEX7Arms() []EX7Arm {
	generous := func(c refresh.Config) refresh.Config {
		c.TickEvery = time.Minute
		c.RatePerHour = 10
		c.Cap = 10
		return c
	}
	return []EX7Arm{
		{Label: "static-once", Refresh: generous(refresh.Config{
			Mode: refresh.ModeOff,
		})},
		{Label: "periodic", Refresh: generous(refresh.Config{
			Mode:     refresh.ModeAge,
			MaxAge:   20 * time.Minute,
			Cooldown: 10 * time.Minute,
		})},
		{Label: "drift", Refresh: generous(refresh.Config{
			Mode:           refresh.ModeDrift,
			MaxAge:         6 * time.Hour, // age backstop out of the measurement span
			DriftThreshold: 0.12,
			MinSamples:     40,
			Cooldown:       15 * time.Minute,
		})},
	}
}

// EX7Config parameterizes EX-7.
type EX7Config struct {
	Seed uint64
	// Shards selects the simulation engine (0/1 single-queue, N > 1
	// sharded); replay is byte-identical across values.
	Shards int
	// HopZones are the candidate zones (default: EX-5's three).
	HopZones []string
	// Workload under test (default zipper).
	Workload workload.ID
	// BurstN is invocations per measured burst (default 300).
	BurstN int
	// Bursts is the number of measured bursts (default 10).
	Bursts int
	// BurstEvery is the gap between bursts (default 12m — past the 5m
	// keep-alive, so each burst's placements re-sample the, possibly
	// drifted, idle pool).
	BurstEvery time.Duration
	// ProfileRuns is per-zone profiling executions (default 2,000).
	ProfileRuns int
	// InitPolls is the initial characterization depth (default 6).
	InitPolls int
	// RefreshPolls is the maintainer's re-characterization depth
	// (default 3).
	RefreshPolls int
	// DriftMagnitude is the chaos drift-burst idle-pool replacement
	// fraction (default 0.9).
	DriftMagnitude float64
	// DriftStep is the burst's mix-walk step (default 1.0 — a hard regime
	// change, not gentle churn).
	DriftStep float64
	// DriftEvery is the poisoning repetition period. The default (the whole
	// measurement span) fires exactly one burst: a persistent regime change
	// the stale model stays wrong about, which is the failure mode refresh
	// exists to catch. Short periods instead model churn faster than any
	// sampler can track, where no policy can win.
	DriftEvery time.Duration
	// PassiveWindow is the passive collector's sliding window (default
	// 30m: about two burst intervals of evidence).
	PassiveWindow time.Duration
	// Arms overrides the policy ladder (default DefaultEX7Arms).
	Arms []EX7Arm
	// Sampler overrides the polling configuration.
	Sampler sampler.Config
}

func (c EX7Config) withDefaults() EX7Config {
	if len(c.HopZones) == 0 {
		c.HopZones = []string{"us-west-1a", "us-west-1b", "sa-east-1a"}
	}
	if c.Workload == 0 {
		c.Workload = workload.Zipper
	}
	if c.BurstN == 0 {
		c.BurstN = 300
	}
	if c.Bursts == 0 {
		c.Bursts = 10
	}
	if c.BurstEvery == 0 {
		c.BurstEvery = 12 * time.Minute
	}
	if c.ProfileRuns == 0 {
		c.ProfileRuns = 2000
	}
	if c.InitPolls == 0 {
		c.InitPolls = 6
	}
	if c.RefreshPolls == 0 {
		c.RefreshPolls = 3
	}
	if c.DriftMagnitude == 0 {
		c.DriftMagnitude = 0.9
	}
	if c.DriftStep == 0 {
		c.DriftStep = 1.0
	}
	if c.DriftEvery == 0 {
		c.DriftEvery = time.Duration(c.Bursts+1) * c.BurstEvery
	}
	if c.PassiveWindow == 0 {
		c.PassiveWindow = 30 * time.Minute
	}
	if len(c.Arms) == 0 {
		c.Arms = DefaultEX7Arms()
	}
	return c
}

// Reduced returns a benchmark-scale EX-7.
func (c EX7Config) Reduced() EX7Config {
	c = c.withDefaults()
	c.BurstN = 150
	c.Bursts = 8
	c.ProfileRuns = 450
	c.InitPolls = 3
	c.Sampler = sampler.Config{
		Endpoints: 60, PollSize: 222, Branch: 10,
		InterPollPause: 500 * time.Millisecond,
	}
	return c
}

// EX7Cell is one maintenance arm's measurement.
type EX7Cell struct {
	Arm string
	// TargetAZ is the drifted zone (the hybrid favorite at t0).
	TargetAZ string
	// FastKind is the workload's fastest observed CPU kind.
	FastKind string
	// Completed and FastHits accumulate over all measured bursts;
	// FastRate = FastHits / Completed.
	Completed int
	FastHits  int
	FastRate  float64
	// Refreshes and RefreshUSD come from the maintainer's ledger.
	Refreshes  int
	RefreshUSD float64
	// BurstUSD is the routed traffic's own spend.
	BurstUSD float64
	// TotalUSD = BurstUSD + RefreshUSD.
	TotalUSD float64
}

// EX7Result carries one cell per arm, in arm order.
type EX7Result struct {
	Workload workload.ID
	Cells    []EX7Cell
}

// Cell returns the named arm's measurement.
func (r EX7Result) Cell(arm string) (EX7Cell, bool) {
	for _, c := range r.Cells {
		if c.Arm == arm {
			return c, true
		}
	}
	return EX7Cell{}, false
}

// RunEX7 executes EX-7.
func RunEX7(cfg EX7Config) (EX7Result, error) {
	cfg = cfg.withDefaults()
	res := EX7Result{Workload: cfg.Workload}
	for _, arm := range cfg.Arms {
		cell, err := runEX7Cell(cfg, arm)
		if err != nil {
			return EX7Result{}, fmt.Errorf("ex7: %s: %w", arm.Label, err)
		}
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}

// runEX7Cell measures one maintenance policy in a fresh runtime: identical
// seed, identical chaos, identical traffic — only the refresh trigger
// differs.
func runEX7Cell(cfg EX7Config, arm EX7Arm) (EX7Cell, error) {
	rt, err := newRuntime(cfg.Seed, 2, cfg.Sampler, cfg.Shards)
	if err != nil {
		return EX7Cell{}, err
	}
	rt.EnablePassiveCharacterization(cfg.PassiveWindow)
	rcfg := arm.Refresh
	rcfg.Zones = append([]string(nil), cfg.HopZones...)
	rcfg.Polls = cfg.RefreshPolls
	m, err := rt.EnableRefresh(rcfg)
	if err != nil {
		return EX7Cell{}, err
	}
	cell := EX7Cell{Arm: arm.Label}
	err = rt.Do(func(p *sim.Proc) error {
		defer m.Stop()
		if _, err := rt.Refresh(p, cfg.HopZones, cfg.InitPolls); err != nil {
			return err
		}
		if _, err := rt.ProfileWorkloads(p, []workload.ID{cfg.Workload}, cfg.HopZones, cfg.ProfileRuns); err != nil {
			return err
		}
		fast := rt.Perf().Kinds(cfg.Workload)
		if len(fast) == 0 {
			return fmt.Errorf("no perf observations for %s", cfg.Workload)
		}
		fastKind := fast[0]
		cell.FastKind = fastKind.String()

		keepAlive := rt.Cloud().Options().KeepAlive
		p.Sleep(keepAlive + time.Minute)

		// Find the zone the hybrid strategy prefers and aim the drift
		// exactly there: poisoning a zone nobody routes to proves nothing.
		probe, err := rt.Run(p, router.BurstSpec{
			Strategy:   router.Hybrid{},
			Workload:   cfg.Workload,
			N:          50,
			Candidates: cfg.HopZones,
		})
		if err != nil {
			return err
		}
		cell.TargetAZ = probe.AZ
		p.Sleep(keepAlive + time.Minute)

		// Poison the favorite — by default one hard regime change at the
		// start of the span — then start the maintenance loop and route
		// through the drift.
		span := time.Duration(cfg.Bursts+1) * cfg.BurstEvery
		if _, err := rt.Chaos().Inject(chaos.Fault{
			Kind:      chaos.DriftBurst,
			AZ:        cell.TargetAZ,
			Start:     time.Minute,
			Duration:  span,
			Magnitude: cfg.DriftMagnitude,
			Step:      cfg.DriftStep,
			Every:     cfg.DriftEvery,
		}); err != nil {
			return err
		}
		m.Start()

		// Measurement bursts use the regional strategy: it places on
		// whichever zone the *stored* characterizations say is fastest and
		// takes the CPUs it gets, so a rotten model shows up directly as a
		// lower fast-CPU hit rate (hybrid's CPU-banning retries would mask
		// staleness as extra attempts and cost instead).
		for i := 0; i < cfg.Bursts; i++ {
			p.Sleep(cfg.BurstEvery)
			r, err := rt.Run(p, router.BurstSpec{
				Strategy:   router.Regional{},
				Workload:   cfg.Workload,
				N:          cfg.BurstN,
				Candidates: cfg.HopZones,
			})
			if err != nil {
				return err
			}
			cell.Completed += r.Completed
			cell.FastHits += r.PerCPU[fastKind]
			cell.BurstUSD += r.CostUSD
		}

		st := m.Snapshot()
		cell.Refreshes = st.Refreshes
		cell.RefreshUSD = st.SpentUSD
		return nil
	})
	if err != nil {
		return EX7Cell{}, err
	}
	if cell.Completed > 0 {
		cell.FastRate = float64(cell.FastHits) / float64(cell.Completed)
	}
	cell.TotalUSD = cell.BurstUSD + cell.RefreshUSD
	return cell, nil
}

// Render produces the maintenance-policy report.
func (r EX7Result) Render() string {
	out := fmt.Sprintf("EX-7 — characterization maintenance under drift (%s)\n\n", r.Workload)
	t := tablefmt.New("arm", "fast-rate", "completed", "refreshes", "refresh $", "burst $", "total $")
	for _, c := range r.Cells {
		t.Row(c.Arm, tablefmt.Pct(c.FastRate), c.Completed, c.Refreshes,
			tablefmt.USD(c.RefreshUSD), tablefmt.USD(c.BurstUSD), tablefmt.USD(c.TotalUSD))
	}
	out += t.String()
	if len(r.Cells) > 0 {
		out += fmt.Sprintf("\ndrift target %s, fastest CPU %s\n", r.Cells[0].TargetAZ, r.Cells[0].FastKind)
	}
	drift, okD := r.Cell("drift")
	static, okS := r.Cell("static-once")
	periodic, okP := r.Cell("periodic")
	if okD && okS && okP && periodic.RefreshUSD > 0 {
		out += fmt.Sprintf("\nheadline: drift-triggered refresh lifted the fast-CPU hit rate from %s (static-once) to %s while spending %.0f%% of periodic re-sampling's refresh budget\n",
			tablefmt.Pct(static.FastRate), tablefmt.Pct(drift.FastRate),
			100*drift.RefreshUSD/periodic.RefreshUSD)
	}
	return out
}

// WriteCSV writes the arm table as one dataset.
func (r EX7Result) WriteCSV(dir string) error {
	t := tablefmt.New("arm", "target_az", "fast_kind", "fast_rate", "completed",
		"fast_hits", "refreshes", "refresh_usd", "burst_usd", "total_usd")
	for _, c := range r.Cells {
		t.Row(c.Arm, c.TargetAZ, c.FastKind, c.FastRate, c.Completed,
			c.FastHits, c.Refreshes, c.RefreshUSD, c.BurstUSD, c.TotalUSD)
	}
	return writeCSVFile(dir, "ex7_refresh.csv", t)
}
