package experiments

import (
	"fmt"
	"time"

	"skyfaas/internal/faas"
	"skyfaas/internal/sampler"
	"skyfaas/internal/sim"
	"skyfaas/internal/tablefmt"
)

// EX1Config parameterizes EX-1 (infrastructure observation verification:
// Figs. 3 and 4).
type EX1Config struct {
	Seed uint64
	// Shards selects the simulation engine (0/1 single-queue, N > 1
	// sharded); replay is byte-identical across values.
	Shards int
	// AZ is the zone driven to saturation (paper: us-west-1a).
	AZ string
	// Sleeps and MemoriesMB are the Fig.-3 sweep axes.
	Sleeps     []time.Duration
	MemoriesMB []int
	// SecondAccountPolls is how many polls the independent second account
	// issues after the first account saturates the zone.
	SecondAccountPolls int
	// Sampler overrides the polling configuration (zero = paper scale).
	Sampler sampler.Config
}

func (c EX1Config) withDefaults() EX1Config {
	if c.AZ == "" {
		c.AZ = "us-west-1a"
	}
	if len(c.Sleeps) == 0 {
		c.Sleeps = []time.Duration{
			50 * time.Millisecond, 100 * time.Millisecond, 250 * time.Millisecond,
			500 * time.Millisecond, time.Second, 2 * time.Second,
		}
	}
	if len(c.MemoriesMB) == 0 {
		c.MemoriesMB = []int{2048, 4096}
	}
	if c.SecondAccountPolls == 0 {
		c.SecondAccountPolls = 3
	}
	return c
}

// Reduced returns a benchmark-scale EX-1: saturates the small eu-north-1a
// pool with small polls (an AZ can only saturate if its endpoints can
// collectively pin more instances than the zone provisions).
func (c EX1Config) Reduced() EX1Config {
	c = c.withDefaults()
	c.AZ = "eu-north-1a"
	c.Sleeps = []time.Duration{50 * time.Millisecond, 250 * time.Millisecond, time.Second}
	c.MemoriesMB = []int{2048}
	c.Sampler = sampler.Config{
		Endpoints: 60, PollSize: 222, Branch: 10,
		InterPollPause: 500 * time.Millisecond,
	}
	return c
}

// EX1Result carries Fig.-3 and Fig.-4 data.
type EX1Result struct {
	AZ string
	// Sweep is the sleep-interval / memory cost-coverage sweep (Fig. 3).
	Sweep []sampler.SweepPoint
	// FirstAccount is the per-poll trail of the saturating run (Fig. 4:
	// observed new FIs and failed requests per sequential poll).
	FirstAccount []sampler.PollResult
	// SecondAccount is the independent account's trail issued immediately
	// after saturation (Fig. 4's two-account validation).
	SecondAccount []sampler.PollResult
	// SaturationCostUSD is the first account's total spend to saturation.
	SaturationCostUSD float64
	// ObservedFIs is the number of unique instances the first account saw.
	ObservedFIs int
}

// RunEX1 executes EX-1.
func RunEX1(cfg EX1Config) (EX1Result, error) {
	cfg = cfg.withDefaults()
	rt, err := newRuntime(cfg.Seed, 3, cfg.Sampler, cfg.Shards)
	if err != nil {
		return EX1Result{}, err
	}
	res := EX1Result{AZ: cfg.AZ}

	// The second account is fully independent: its own client and its own
	// sampling endpoints in the same zone.
	second := sampler.New(faas.NewClient(rt.Cloud(), "account-b"), samplerCfgSecond(rt.Sampler().Config()))

	err = rt.Do(func(p *sim.Proc) error {
		if err := rt.EnsureSamplerEndpoints(cfg.AZ); err != nil {
			return err
		}
		if err := second.Deploy(cfg.AZ); err != nil {
			return err
		}
		// Fig. 3: tune the sleep interval per memory setting.
		sweep, err := rt.Sampler().SweepSleep(p, cfg.AZ, cfg.Sleeps, cfg.MemoriesMB)
		if err != nil {
			return err
		}
		res.Sweep = sweep
		// Let sweep instances expire before the saturation run.
		p.Sleep(rt.Cloud().Options().KeepAlive + time.Minute)

		// Fig. 4: poll to saturation on account A...
		ch, trail, err := rt.Sampler().Characterize(p, cfg.AZ)
		if err != nil {
			return err
		}
		res.FirstAccount = trail
		res.SaturationCostUSD = ch.CostUSD
		res.ObservedFIs = ch.Samples
		// ...then immediately poll from the independent account B.
		for i := 0; i < cfg.SecondAccountPolls; i++ {
			res.SecondAccount = append(res.SecondAccount, second.Poll(p, cfg.AZ, i))
		}
		return nil
	})
	if err != nil {
		return EX1Result{}, err
	}
	return res, nil
}

// samplerCfgSecond gives the second account its own endpoint namespace.
func samplerCfgSecond(base sampler.Config) sampler.Config {
	base.Prefix = "skysample-b"
	return base
}

// Render produces the paper-style text report.
func (r EX1Result) Render() string {
	t := tablefmt.New("sleep", "memoryMB", "uniqueFIs", "cost")
	for _, pt := range r.Sweep {
		t.Row(pt.Sleep.String(), pt.MemoryMB, pt.UniqueFIs, tablefmt.USD(pt.CostUSD))
	}
	out := "EX-1 / Fig. 3 — sampling cost vs unique FIs by sleep interval\n" + t.String()

	t2 := tablefmt.New("poll", "newFIs", "failed", "failFrac")
	for i, pr := range r.FirstAccount {
		t2.Row(i+1, pr.NewFIs, pr.Failed, tablefmt.Pct(pr.FailFrac()))
	}
	out += fmt.Sprintf("\nEX-1 / Fig. 4 — saturation of %s (account A, %d unique FIs, %s)\n",
		r.AZ, r.ObservedFIs, tablefmt.USD(r.SaturationCostUSD)) + t2.String()

	t3 := tablefmt.New("poll", "newFIs", "failed", "failFrac")
	for i, pr := range r.SecondAccount {
		t3.Row(i+1, len(pr.Reports), pr.Failed, tablefmt.Pct(pr.FailFrac()))
	}
	out += "\nEX-1 / Fig. 4 — independent account B immediately after saturation\n" + t3.String()
	return out
}
