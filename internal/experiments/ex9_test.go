package experiments

import (
	"strings"
	"testing"
)

// TestEX9Deterministic: the headline claim — every engine width computes the
// identical simulation. The speedup column is machine-dependent (it measures
// real wall clock) and is deliberately not asserted here.
func TestEX9Deterministic(t *testing.T) {
	res, err := RunEX9(EX9Config{Seed: 5}.Reduced())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 3 {
		t.Fatalf("cells = %d, want 3", len(res.Cells))
	}
	if !res.Deterministic() {
		t.Errorf("engines diverged: %+v", res.Cells)
	}
	if res.Zones == 0 || res.Deployments == 0 {
		t.Errorf("empty world: %d zones, %d deployments", res.Zones, res.Deployments)
	}
	for _, c := range res.Cells {
		if c.Invocations != res.Cells[0].Invocations {
			t.Errorf("shards=%d completed %d invocations, single queue completed %d",
				c.Shards, c.Invocations, res.Cells[0].Invocations)
		}
		if c.InvPerSec <= 0 {
			t.Errorf("shards=%d reported no throughput", c.Shards)
		}
	}
	if _, ok := res.Cell(4); !ok {
		t.Error("no 4-shard cell in reduced config")
	}
	out := res.Render()
	if !strings.Contains(out, "EX-9") || !strings.Contains(out, "deterministic across engines: yes") {
		t.Errorf("render:\n%s", out)
	}
}

// TestEX9SeedSensitivity: the checksum must actually depend on the traffic —
// a different seed routes and schedules differently and must not collide.
func TestEX9SeedSensitivity(t *testing.T) {
	a, err := RunMeshLoad(MeshLoadConfig{Seed: 5, Invocations: 2000, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMeshLoad(MeshLoadConfig{Seed: 6, Invocations: 2000, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Checksum == b.Checksum {
		t.Errorf("checksum insensitive to seed: %016x", a.Checksum)
	}
}

func TestEX9WriteCSV(t *testing.T) {
	res := EX9Result{
		Zones: 49, Deployments: 698,
		Cells: []EX9Cell{{Shards: 1, Invocations: 10, WallSeconds: 0.5, InvPerSec: 20, Speedup: 1, Checksum: 7}},
	}
	dir := t.TempDir()
	if err := res.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	got := readCSV(t, dir, "ex9_scalability.csv")
	if !strings.Contains(got, "shards,invocations,wall_s,inv_per_s,speedup,checksum") ||
		!strings.Contains(got, "0000000000000007") {
		t.Errorf("csv:\n%s", got)
	}
}
