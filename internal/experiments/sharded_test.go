package experiments

import "testing"

// TestShardedExperimentsMatchSingleQueue is the end-to-end determinism
// contract for the sharded engine: every experiment, run on its reduced
// config, must render byte-identical output whether the world runs on the
// single-queue engine (Shards: 0) or the conservative sharded engine. The
// paper's replay guarantee (§3.5 methodology) survives parallel execution
// because all cross-shard interactions travel with at least the lookahead
// window of simulated latency.
func TestShardedExperimentsMatchSingleQueue(t *testing.T) {
	const shards = 4
	cases := []struct {
		name string
		run  func(shardCount int) (string, error)
	}{
		{"EX1", func(n int) (string, error) {
			cfg := EX1Config{Seed: 5, Shards: n}.Reduced()
			res, err := RunEX1(cfg)
			if err != nil {
				return "", err
			}
			return res.Render(), nil
		}},
		{"EX2", func(n int) (string, error) {
			cfg := EX2Config{Seed: 5, Shards: n}.Reduced()
			res, err := RunEX2(cfg)
			if err != nil {
				return "", err
			}
			return res.Render(), nil
		}},
		{"EX3", func(n int) (string, error) {
			cfg := EX3Config{Seed: 5, Shards: n}.Reduced()
			res, err := RunEX3(cfg)
			if err != nil {
				return "", err
			}
			return res.Render(), nil
		}},
		{"EX4", func(n int) (string, error) {
			cfg := EX4Config{Seed: 5, Shards: n}.Reduced()
			res, err := RunEX4(cfg)
			if err != nil {
				return "", err
			}
			return res.Render(), nil
		}},
		{"EX5", func(n int) (string, error) {
			cfg := EX5Config{Seed: 5, Shards: n}.Reduced()
			res, err := RunEX5(cfg)
			if err != nil {
				return "", err
			}
			return res.Render(), nil
		}},
		{"EX6", func(n int) (string, error) {
			cfg := EX6Config{Seed: 5, Shards: n}.Reduced()
			res, err := RunEX6(cfg)
			if err != nil {
				return "", err
			}
			return res.Render(), nil
		}},
		{"EX7", func(n int) (string, error) {
			cfg := EX7Config{Seed: 5, Shards: n}.Reduced()
			res, err := RunEX7(cfg)
			if err != nil {
				return "", err
			}
			return res.Render(), nil
		}},
		{"EX8", func(n int) (string, error) {
			cfg := EX8Config{Seed: 5, Shards: n}.Reduced()
			res, err := RunEX8(cfg)
			if err != nil {
				return "", err
			}
			return res.Render(), nil
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			single, err := tc.run(0)
			if err != nil {
				t.Fatalf("single-queue run: %v", err)
			}
			sharded, err := tc.run(shards)
			if err != nil {
				t.Fatalf("sharded run: %v", err)
			}
			if single != sharded {
				t.Errorf("sharded render diverged from single-queue\n--- single-queue ---\n%s\n--- sharded(%d) ---\n%s",
					single, shards, sharded)
			}
			// A second sharded run must also replay exactly: parallel shard
			// scheduling cannot leak into results.
			again, err := tc.run(shards)
			if err != nil {
				t.Fatalf("sharded replay: %v", err)
			}
			if sharded != again {
				t.Error("two sharded runs of the same config diverged")
			}
		})
	}
}
