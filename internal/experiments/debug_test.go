package experiments

import (
	"testing"
	"time"

	"skyfaas/internal/router"
	"skyfaas/internal/sampler"
	"skyfaas/internal/sim"
	"skyfaas/internal/workload"
)

// TestDebugFocusBurst is a diagnostic: run one focus-fastest burst at paper
// scale on us-west-1b and dump where work landed. Kept as a regular test so
// the placement economics stay observable; assertions are loose.
func TestDebugFocusBurst(t *testing.T) {
	rt, err := newRuntime(42, 4, sampleCfgDefault(), 0)
	if err != nil {
		t.Fatal(err)
	}
	err = rt.Do(func(p *sim.Proc) error {
		if _, err := rt.Router().Profile(p, workload.Zipper, []string{"us-west-1b"}, 1200, 0); err != nil {
			return err
		}
		p.Sleep(6 * time.Minute)
		if _, err := rt.Refresh(p, []string{"us-west-1b"}, 6); err != nil {
			return err
		}
		ch, _ := rt.Store().Get("us-west-1b", rt.Env().Now())
		t.Logf("characterized dist: %s (samples %d)", ch.Dist(), ch.Samples)
		t.Logf("true mix: %v", func() any { az, _ := rt.Cloud().AZ("us-west-1b"); return az.TrueMix() }())
		t.Logf("perf kinds ranked: %v", rt.Perf().Kinds(workload.Zipper))

		base, err := rt.Run(p, router.BurstSpec{
			Strategy: router.Baseline{AZ: "us-west-1b"}, Workload: workload.Zipper, N: 1000,
		})
		if err != nil {
			return err
		}
		t.Logf("baseline: cost=%.4f perCPU=%v meanMS=%.0f attempts=%d", base.CostUSD, base.PerCPU, base.MeanRunMS(), base.Attempts)

		focus, err := rt.Run(p, router.BurstSpec{
			Strategy: router.FocusFastest{AZ: "us-west-1b"}, Workload: workload.Zipper, N: 1000,
		})
		if err != nil {
			return err
		}
		t.Logf("focus: cost=%.4f perCPU=%v meanMS=%.0f attempts=%d declined=%d failed=%d elapsed=%v",
			focus.CostUSD, focus.PerCPU, focus.MeanRunMS(), focus.Attempts, focus.Declined, focus.Failed, focus.Elapsed)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func sampleCfgDefault() sampler.Config { return sampler.Config{} }
