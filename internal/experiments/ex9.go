package experiments

import (
	"fmt"
	"math"
	"sort"
	"time"

	"skyfaas/internal/cloudsim"
	"skyfaas/internal/cpu"
	"skyfaas/internal/mesh"
	"skyfaas/internal/rng"
	"skyfaas/internal/sim"
	"skyfaas/internal/tablefmt"
)

// EX-9 — engine scalability. The paper's mesh is 41 regions and ~1,600
// deployments (§3.3); replaying paper-scale invocation volumes against it is
// only practical if the simulator itself scales. EX-9 drives an identical
// geo-distributed open-loop load through the single-queue engine and the
// sharded engine at several shard counts, reports wall-clock invocations
// per second for each, and checksums every cell's traffic to prove the
// engines computed the same simulation.

// EX9Config parameterizes EX-9.
type EX9Config struct {
	Seed uint64
	// ShardCounts are the engine configurations measured; 1 means the
	// single-queue engine (default 1, 2, 4, 8).
	ShardCounts []int
	// Invocations is the total simulated invocation count per cell
	// (default 400,000).
	Invocations int
	// Workers is the number of concurrent invocation chains per zone
	// (default 4).
	Workers int
}

// Reduced cuts the load for tests and benchmarks.
func (c EX9Config) Reduced() EX9Config {
	c.ShardCounts = []int{1, 2, 4}
	c.Invocations = 30000
	c.Workers = 2
	return c
}

func (c EX9Config) withDefaults() EX9Config {
	if len(c.ShardCounts) == 0 {
		c.ShardCounts = []int{1, 2, 4, 8}
	}
	if c.Invocations == 0 {
		c.Invocations = 400000
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	return c
}

// EX9Cell is one engine configuration's measurement.
type EX9Cell struct {
	// Shards is the engine width (1 = single queue).
	Shards int
	// Invocations is the completed invocation count.
	Invocations int
	// WallSeconds is real (not simulated) execution time.
	WallSeconds float64
	// InvPerSec is Invocations / WallSeconds.
	InvPerSec float64
	// Speedup is InvPerSec over the single-queue cell's.
	Speedup float64
	// Checksum folds every response; equal checksums across cells prove
	// the engines ran the same simulation.
	Checksum uint64
}

// EX9Result is the scalability table.
type EX9Result struct {
	Zones       int
	Deployments int
	Cells       []EX9Cell
}

// Deterministic reports whether every cell produced the same checksum.
func (r EX9Result) Deterministic() bool {
	for _, c := range r.Cells {
		if c.Checksum != r.Cells[0].Checksum {
			return false
		}
	}
	return len(r.Cells) > 0
}

// Cell returns the measurement for the given shard count.
func (r EX9Result) Cell(shards int) (EX9Cell, bool) {
	for _, c := range r.Cells {
		if c.Shards == shards {
			return c, true
		}
	}
	return EX9Cell{}, false
}

// Render produces the EX-9 table.
func (r EX9Result) Render() string {
	t := tablefmt.New("Shards", "Invocations", "Wall s", "Inv/s", "Speedup", "Checksum")
	for _, c := range r.Cells {
		t.Row(c.Shards, c.Invocations,
			fmt.Sprintf("%.2f", c.WallSeconds),
			fmt.Sprintf("%.0f", c.InvPerSec),
			fmt.Sprintf("%.2fx", c.Speedup),
			fmt.Sprintf("%016x", c.Checksum))
	}
	det := "yes"
	if !r.Deterministic() {
		det = "NO — ENGINES DIVERGED"
	}
	return fmt.Sprintf("EX-9 — engine scalability (%d zones, %d deployments)\n%sdeterministic across engines: %s\n",
		r.Zones, r.Deployments, t.String(), det)
}

// WriteCSV writes the scalability table as one dataset.
func (r EX9Result) WriteCSV(dir string) error {
	t := tablefmt.New("shards", "invocations", "wall_s", "inv_per_s", "speedup", "checksum")
	for _, c := range r.Cells {
		t.Row(c.Shards, c.Invocations, c.WallSeconds, c.InvPerSec, c.Speedup,
			fmt.Sprintf("%016x", c.Checksum))
	}
	return writeCSVFile(dir, "ex9_scalability.csv", t)
}

// RunEX9 measures each configured engine on the identical load.
func RunEX9(cfg EX9Config) (EX9Result, error) {
	cfg = cfg.withDefaults()
	var res EX9Result
	for _, shards := range cfg.ShardCounts {
		stats, err := RunMeshLoad(MeshLoadConfig{
			Seed:        cfg.Seed,
			Shards:      shards,
			Invocations: cfg.Invocations,
			Workers:     cfg.Workers,
		})
		if err != nil {
			return EX9Result{}, fmt.Errorf("ex9: shards=%d: %w", shards, err)
		}
		res.Zones = stats.Zones
		res.Deployments = stats.Deployments
		cell := EX9Cell{
			Shards:      shards,
			Invocations: stats.Invocations,
			WallSeconds: stats.Wall.Seconds(),
			Checksum:    stats.Checksum,
		}
		if cell.WallSeconds > 0 {
			cell.InvPerSec = float64(cell.Invocations) / cell.WallSeconds
		}
		if len(res.Cells) == 0 {
			cell.Speedup = 1
		} else if base := res.Cells[0].InvPerSec; base > 0 {
			cell.Speedup = cell.InvPerSec / base
		}
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}

// ---------------------------------------------------------------------------

// MeshLoadConfig drives the raw-scale load shared by EX-9 and
// BenchmarkShardedMesh: the full default catalog, the full deployment mesh,
// open-loop invocation chains in every zone, and a slice of cross-region
// traffic so shards genuinely synchronize.
type MeshLoadConfig struct {
	Seed uint64
	// Shards is the engine width; <= 1 runs the single-queue engine.
	Shards int
	// Invocations is the total invocation budget across all zones.
	Invocations int
	// Workers is the number of concurrent chains per zone (default 8).
	Workers int
	// CrossEvery makes every Nth chain step target a zone in another
	// region, exercising the cross-shard path (default 20, ~5%).
	CrossEvery int
}

// MeshLoadStats is a load run's outcome. Wall is measured around the
// simulation run only (world construction excluded).
type MeshLoadStats struct {
	Invocations int
	Zones       int
	Deployments int
	Checksum    uint64
	Wall        time.Duration
}

// meshChain is one zone's traffic accumulator. Each zone's chains run
// entirely on that zone's shard, so the accumulator has a single writer.
type meshChain struct {
	az       string
	env      *sim.Env
	function string
	// partner is the cross-region target (an endpoint in the next
	// catalog region).
	partnerAZ string
	partnerFn string
	rand      *rng.Stream
	checksum  uint64
	completed int
}

// RunMeshLoad builds the 41-region world on the requested engine and runs
// the load to completion. The returned checksum is independent of the
// engine width — the determinism tests and EX-9 both assert it.
func RunMeshLoad(cfg MeshLoadConfig) (MeshLoadStats, error) {
	if cfg.Workers == 0 {
		cfg.Workers = 8
	}
	if cfg.CrossEvery == 0 {
		cfg.CrossEvery = 20
	}
	// The load world stretches the intra-cloud RTT to 8 ms so every
	// cross-shard interaction carries at least 4 ms of simulated latency;
	// the sharded engine can then advance in 4 ms windows instead of the
	// core default's 1 ms, quadrupling the events per merge barrier. No
	// per-invocation RNG latency draws are used anywhere on this path, so
	// the event timeline — and the checksum — is identical on every
	// engine width.
	opts := cloudsim.Options{HorizonDays: 2, IntraCloudRTT: 8 * time.Millisecond}.WithDefaults()
	var env *sim.Env
	if cfg.Shards > 1 {
		env = sim.NewSharded(defaultEpoch, cfg.Shards, opts.IntraCloudRTT/2).Control()
	} else {
		env = sim.NewEnv(defaultEpoch)
	}
	cloud := cloudsim.New(env, cfg.Seed, cloudsim.DefaultCatalog(), opts)
	m, err := mesh.Build(cloud, mesh.Config{})
	if err != nil {
		return MeshLoadStats{}, err
	}

	// One chain descriptor per zone, each bound to an endpoint there.
	const memoryMB = 1024
	root := rng.New(cfg.Seed).Split("ex9")
	var chains []*meshChain
	for _, region := range cloud.Regions() {
		for _, az := range region.AZs() {
			ep, ok := m.Nearest(az.Name(), memoryMB, cpu.X86)
			if !ok {
				continue
			}
			chains = append(chains, &meshChain{
				az:       az.Name(),
				env:      az.Env(),
				function: ep.Function,
				rand:     root.Split(az.Name()),
			})
		}
	}
	sort.Slice(chains, func(i, j int) bool { return chains[i].az < chains[j].az })
	if len(chains) == 0 {
		return MeshLoadStats{}, fmt.Errorf("meshload: no endpoints")
	}
	// Cross-region partner: the zone one third of the list away, which is
	// nearly always in a different region (and therefore often on a
	// different shard).
	for i, ch := range chains {
		p := chains[(i+len(chains)/3)%len(chains)]
		ch.partnerAZ, ch.partnerFn = p.az, p.function
	}

	// Split the invocation budget across zones and workers.
	perZone := cfg.Invocations / len(chains)
	extra := cfg.Invocations % len(chains)
	for i, ch := range chains {
		n := perZone
		if i < extra {
			n++
		}
		startZoneLoad(cloud, ch, cfg.Workers, n, cfg.CrossEvery)
	}

	start := time.Now() //lint:allow nodeterm -- EX-9 measures real engine throughput
	if err := env.Run(); err != nil {
		return MeshLoadStats{}, err
	}
	wall := time.Since(start) //lint:allow nodeterm -- EX-9 measures real engine throughput

	stats := MeshLoadStats{
		Zones:       len(chains),
		Deployments: m.Size(),
		Checksum:    fnvOffset,
		Wall:        wall,
	}
	// Zones are folded in sorted order; each zone's checksum was built on
	// its own shard in deterministic event order.
	for _, ch := range chains {
		stats.Invocations += ch.completed
		stats.Checksum = stats.Checksum*fnvPrime ^ ch.checksum
	}
	return stats, nil
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// startZoneLoad launches the zone's worker chains: self-sustaining
// invocation loops that keep n invocations flowing with a jittered
// inter-arrival gap. Everything here runs on the zone's shard; only the
// cross-region steps leave it.
func startZoneLoad(cloud *cloudsim.Cloud, ch *meshChain, workers, n, crossEvery int) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	remaining := n
	var step func(w int)
	step = func(w int) {
		if remaining <= 0 {
			return
		}
		remaining--
		seq := n - remaining
		target, fn := ch.az, ch.function
		if crossEvery > 0 && seq%crossEvery == 0 {
			target, fn = ch.partnerAZ, ch.partnerFn
		}
		cloud.StartInvokeFrom(ch.env, cloudsim.Request{
			Account:  "ex9",
			AZ:       target,
			Function: fn,
			Work:     cloudsim.SleepBehavior{D: 15 * time.Millisecond},
		}, func(resp cloudsim.Response) {
			// Fold the response: FNV-1a over the identifying fields keeps the
			// checksum sensitive to placement, billing, and timing alike.
			// Hand-rolled (no fmt, no hash.Hash) — this runs once per
			// invocation and must stay off the allocator.
			h := uint64(fnvOffset)
			for i := 0; i < len(resp.FI); i++ {
				h = (h ^ uint64(resp.FI[i])) * fnvPrime
			}
			h = (h ^ uint64(resp.CPU)) * fnvPrime
			if resp.Cold {
				h = (h ^ 1) * fnvPrime
			}
			h = (h ^ math.Float64bits(resp.BilledMS)) * fnvPrime
			h = (h ^ uint64(ch.env.Now().UnixNano())) * fnvPrime
			ch.checksum = ch.checksum*fnvPrime ^ h
			if resp.OK() {
				ch.completed++
			}
			// Jittered think time: nanosecond-granular so no two zones'
			// events collide on the same instant (which would make event
			// order — and thus replay — depend on tie-breaking).
			gap := 2*time.Millisecond + time.Duration(int64(ch.rand.Intn(int(2*time.Millisecond))))
			ch.env.Schedule(gap, func() { step(w) })
		})
	}
	for w := 0; w < workers; w++ {
		w := w
		// Stagger worker starts with the same jittered stream.
		ch.env.Schedule(time.Duration(ch.rand.Intn(int(5*time.Millisecond)))+time.Duration(w), func() { step(w) })
	}
}
