package experiments

import (
	"testing"
	"time"

	"skyfaas/internal/router"
	"skyfaas/internal/sim"
	"skyfaas/internal/workload"
)

// TestDebugHybridLogReg mirrors one EX-5 day for logistic_regression and
// dumps placement, so the hybrid economics stay observable.
func TestDebugHybridLogReg(t *testing.T) {
	rt, err := newRuntime(42, 4, sampleCfgDefault(), 0)
	if err != nil {
		t.Fatal(err)
	}
	zones := EX4Zones()
	hop := []string{"us-west-1a", "us-west-1b", "sa-east-1a"}
	err = rt.Do(func(p *sim.Proc) error {
		if _, err := rt.ProfileWorkloads(p, []workload.ID{workload.LogisticRegression}, zones, 2000); err != nil {
			return err
		}
		p.Sleep(6 * time.Minute)
		if _, err := rt.Refresh(p, hop, 6); err != nil {
			return err
		}
		for _, z := range hop {
			ch, _ := rt.Store().Get(z, rt.Env().Now())
			ms, _ := rt.Perf().ExpectedMS(workload.LogisticRegression, ch.Dist())
			t.Logf("%s: dist=%s expectedMS=%.0f", z, ch.Dist(), ms)
		}
		for _, k := range rt.Perf().Kinds(workload.LogisticRegression) {
			m, _ := rt.Perf().Mean(workload.LogisticRegression, k)
			t.Logf("perf %v: mean=%.0f n=%d", k, m, rt.Perf().Samples(workload.LogisticRegression, k))
		}
		base, err := rt.Run(p, router.BurstSpec{
			Strategy: router.Baseline{AZ: "us-west-1b"}, Workload: workload.LogisticRegression,
			N: 1000, Candidates: hop,
		})
		if err != nil {
			return err
		}
		t.Logf("baseline: cost=%.4f perCPU=%v meanMS=%.0f", base.CostUSD, base.PerCPU, base.MeanRunMS())
		hyb, err := rt.Run(p, router.BurstSpec{
			Strategy: router.Hybrid{}, Workload: workload.LogisticRegression,
			N: 1000, Candidates: hop,
		})
		if err != nil {
			return err
		}
		t.Logf("hybrid: az=%s cost=%.4f perCPU=%v meanMS=%.0f declined=%d elapsed=%v",
			hyb.AZ, hyb.CostUSD, hyb.PerCPU, hyb.MeanRunMS(), hyb.Declined, hyb.Elapsed)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
