package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// TestEX11GoldenWarmPool pins the warm-pool story at benchmark scale, seed
// 42: the bare platform pays the cold-start tax at every rising edge of
// the square wave, pinning eliminates it at roughly double the adaptive
// spend, reactive sizing pays real hold spend while staying one edge
// behind, and predictive sizing cuts the cold-start rate at spend equal to
// reactive's (within the pre-warm initialization cost).
func TestEX11GoldenWarmPool(t *testing.T) {
	res, err := RunEX11(EX11Config{Seed: 42}.Reduced())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 6 {
		t.Fatalf("got %d cells, want 6 arms", len(res.Cells))
	}
	cell := func(arm string) EX11Cell {
		c, ok := res.Cell(arm)
		if !ok {
			t.Fatalf("missing cell %s", arm)
		}
		return c
	}
	off := cell(EX11Off)
	pin := cell(EX11Pinned)
	re := cell(EX11Reactive)
	pr := cell(EX11Predictive)
	rs := cell(EX11ReactiveSpike)
	ps := cell(EX11PredictiveSpike)

	// Every arm replays the identical arrival schedule.
	for _, c := range res.Cells {
		if c.Requests != off.Requests || c.Requests == 0 {
			t.Fatalf("cell %s measured %d requests, want %d identical arrivals",
				c.Arm, c.Requests, off.Requests)
		}
		if c.Errors != 0 {
			t.Fatalf("cell %s had %d errors, want clean runs", c.Arm, c.Errors)
		}
	}

	// The baseline: no pool, no spend, a cold start for every concurrency
	// slot the rising edges re-warm organically.
	if off.Cold == 0 || off.SpendUSD != 0 || off.Provisioned != 0 {
		t.Fatalf("off cell = %+v, want cold starts at zero spend", off)
	}

	// Pinning the peak floor eliminates cold starts — at well over the
	// adaptive policies' spend (it holds capacity through every trough).
	if pin.Cold != 0 {
		t.Fatalf("pinned cold = %d, want 0 (floor holds peak capacity)", pin.Cold)
	}
	if pin.SpendUSD < 1.5*re.SpendUSD {
		t.Fatalf("pinned spend %.6f vs reactive %.6f, want the trough-holding premium (>= 1.5x)",
			pin.SpendUSD, re.SpendUSD)
	}

	// Reactive pays real hold spend but its floor arrives one edge behind:
	// no cold-start improvement over the bare platform on this curve.
	if re.SpendUSD <= 0 {
		t.Fatalf("reactive spend = %.6f, want positive hold spend", re.SpendUSD)
	}
	if re.Cold < off.Cold {
		t.Fatalf("reactive cold %d < off %d: the recent-rate floor should not beat organic warming on a square wave",
			re.Cold, off.Cold)
	}

	// The acceptance bound: predictive pre-warming cuts the cold-start
	// rate vs reactive at equal spend (<= 2% over, the initialization
	// cost), and it genuinely provisions rather than riding organic warmth.
	if pr.Provisioned == 0 {
		t.Fatal("predictive never provisioned: the forecast is not actuating")
	}
	if pr.ColdRate >= 0.8*re.ColdRate {
		t.Fatalf("predictive cold rate %.4f vs reactive %.4f, want >= 20%% cut",
			pr.ColdRate, re.ColdRate)
	}
	if pr.SpendUSD > 1.02*re.SpendUSD {
		t.Fatalf("predictive spend %.6f vs reactive %.6f, want equal within 2%%",
			pr.SpendUSD, re.SpendUSD)
	}

	// Under an 8x cold-start spike every unprevented cold start costs
	// more: the predictive-vs-reactive gap widens in both cold count and
	// served tail latency.
	if ps.Cold >= rs.Cold {
		t.Fatalf("spike: predictive cold %d vs reactive %d, want fewer", ps.Cold, rs.Cold)
	}
	if ps.Latency.P99 >= rs.Latency.P99 {
		t.Fatalf("spike: predictive p99 %.0f ms vs reactive %.0f ms, want lower",
			ps.Latency.P99, rs.Latency.P99)
	}

	// The budget governor held: nobody outspent the cap plus the refill.
	for _, c := range res.Cells {
		if c.SpendUSD > 1.0 {
			t.Fatalf("cell %s spent %.6f, want the budget to bound spend under the 1.00 cap", c.Arm, c.SpendUSD)
		}
	}

	out := res.Render()
	for _, want := range []string{"EX-11", "predictive", "pinned", "headline:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// TestEX11Deterministic: equal seeds replay all six arms exactly, and the
// sharded engine replays the single-queue result byte-identically.
func TestEX11Deterministic(t *testing.T) {
	cfg := EX11Config{Seed: 7}.Reduced()
	a, err := RunEX11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunEX11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different result:\n%+v\n%+v", a, b)
	}
	cfg.Shards = 2
	c, err := RunEX11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, c) {
		t.Fatalf("sharded engine diverged from single queue:\n%+v\n%+v", a, c)
	}
	cfg.Shards = 0
	cfg.Seed = 8
	d, err := RunEX11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Cells, d.Cells) {
		t.Fatal("different seeds produced identical cells")
	}
}

// TestEX11CSV exercises the dataset writer.
func TestEX11CSV(t *testing.T) {
	res, err := RunEX11(EX11Config{Seed: 42}.Reduced())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := res.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
}
