package experiments

import (
	"fmt"
	"time"

	"skyfaas/internal/charact"
	"skyfaas/internal/cloudsim"
	"skyfaas/internal/sampler"
	"skyfaas/internal/sim"
	"skyfaas/internal/tablefmt"
)

// EX2Config parameterizes EX-2 (global infrastructure characterization,
// Fig. 2: CPU distributions of all 41 regions across three providers).
type EX2Config struct {
	Seed uint64
	// Shards selects the simulation engine (0/1 single-queue, N > 1
	// sharded); replay is byte-identical across values.
	Shards int
	// Regions restricts the sweep (nil = every region in the catalog).
	Regions []string
	// PollsPerAZ, when positive, uses the cheap fixed-poll mode instead of
	// saturating every zone (the full paper procedure).
	PollsPerAZ int
	// Sampler overrides the polling configuration.
	Sampler sampler.Config
}

// Reduced returns a benchmark-scale EX-2: a representative region slice
// with quick characterizations.
func (c EX2Config) Reduced() EX2Config {
	c.Regions = []string{"us-west-2", "us-east-2", "il-central-1", "af-south-1", "us-south", "nyc1"}
	c.PollsPerAZ = 3
	c.Sampler = sampler.Config{
		Endpoints: 40, PollSize: 222, Branch: 10,
		InterPollPause: 500 * time.Millisecond,
	}
	return c
}

// RegionChar is one region's aggregated characterization.
type RegionChar struct {
	Region   string
	Provider cloudsim.Provider
	// Dist aggregates the region's zones weighted by observed samples.
	Dist charact.Dist
	// Samples counts unique instances observed across the region's zones.
	Samples int
	CostUSD float64
}

// EX2Result is the Fig.-2 dataset.
type EX2Result struct {
	Regions   []RegionChar
	TotalCost float64
}

// RunEX2 executes EX-2.
func RunEX2(cfg EX2Config) (EX2Result, error) {
	rt, err := newRuntime(cfg.Seed, 3, cfg.Sampler, cfg.Shards)
	if err != nil {
		return EX2Result{}, err
	}
	want := make(map[string]bool, len(cfg.Regions))
	for _, r := range cfg.Regions {
		want[r] = true
	}
	var res EX2Result
	err = rt.Do(func(p *sim.Proc) error {
		for _, region := range rt.Cloud().Regions() {
			if len(want) > 0 && !want[region.Name()] {
				continue
			}
			rc := RegionChar{Region: region.Name(), Provider: region.Provider()}
			counts := make(charact.Counts)
			for _, az := range region.AZs() {
				if err := rt.EnsureSamplerEndpoints(az.Name()); err != nil {
					return err
				}
				var ch charact.Characterization
				var err error
				if cfg.PollsPerAZ > 0 {
					ch, _, err = rt.Sampler().CharacterizeQuick(p, az.Name(), cfg.PollsPerAZ)
				} else {
					ch, _, err = rt.Sampler().Characterize(p, az.Name())
				}
				if err != nil {
					return fmt.Errorf("characterize %s: %w", az.Name(), err)
				}
				rt.Store().Put(ch)
				counts.Merge(ch.Counts)
				rc.Samples += ch.Samples
				rc.CostUSD += ch.CostUSD
			}
			rc.Dist = counts.Dist()
			res.Regions = append(res.Regions, rc)
			res.TotalCost += rc.CostUSD
		}
		return nil
	})
	if err != nil {
		return EX2Result{}, err
	}
	return res, nil
}

// Render produces the Fig.-2 style table.
func (r EX2Result) Render() string {
	t := tablefmt.New("region", "provider", "FIs", "cost", "cpu distribution")
	for _, rc := range r.Regions {
		t.Row(rc.Region, rc.Provider.String(), rc.Samples, tablefmt.USD(rc.CostUSD), rc.Dist.String())
	}
	return fmt.Sprintf("EX-2 / Fig. 2 — global CPU characterization (%d regions, total %s)\n",
		len(r.Regions), tablefmt.USD(r.TotalCost)) + t.String()
}
