package experiments

import (
	"fmt"
	"time"

	"skyfaas/internal/chaos"
	"skyfaas/internal/faas"
	"skyfaas/internal/router"
	"skyfaas/internal/sampler"
	"skyfaas/internal/sim"
	"skyfaas/internal/tablefmt"
	"skyfaas/internal/workload"
)

// EX-6 — resilience under injected faults. The paper's routing evaluation
// (EX-5) assumes a healthy sky; EX-6 asks what each routing policy does
// when a zone misbehaves. Every (scenario, arm) cell runs in its own
// runtime: characterize and profile, find the zone the hybrid strategy
// prefers, aim the chaos scenario at exactly that zone, then run one burst
// and measure how much of it survives.

// EX6Arm is one routing policy under test.
type EX6Arm struct {
	// Label names the arm in tables and CSVs.
	Label string
	// Strategy is built through the registry; an empty AZ on pinned
	// strategies is filled with the chaos target zone.
	Strategy router.StrategySpec
	// Resilience configures retries/breaker/failover (nil = legacy
	// retry-forever routing, which never abandons and so hides failures).
	Resilience *router.Resilience
}

// DefaultEX6Arms returns the canonical policy ladder: a pinned baseline
// with bounded retries, hybrid routing without a breaker, hybrid with
// breaker + failover, and hybrid with breaker + failover + hedging.
func DefaultEX6Arms() []EX6Arm {
	return []EX6Arm{
		{Label: "baseline",
			Strategy:   router.StrategySpec{Name: "baseline"},
			Resilience: &router.Resilience{NoBreaker: true}},
		{Label: "hybrid",
			Strategy:   router.StrategySpec{Name: "hybrid"},
			Resilience: &router.Resilience{NoBreaker: true}},
		{Label: "hybrid+breaker",
			Strategy:   router.StrategySpec{Name: "hybrid"},
			Resilience: router.DefaultResilience()},
		{Label: "hybrid+hedge",
			Strategy: router.StrategySpec{Name: "hybrid"},
			Resilience: &router.Resilience{
				Failover: true,
				Hedge:    faas.HedgePolicy{After: 2 * time.Second, Max: 1},
			}},
	}
}

// EX6Scenarios lists the chaos scenarios each arm faces, calm first.
func EX6Scenarios() []string {
	return []string{"calm", "throttle-storm", "zone-outage", "degraded"}
}

// EX6Config parameterizes EX-6.
type EX6Config struct {
	Seed uint64
	// Shards selects the simulation engine (0/1 single-queue, N > 1
	// sharded); replay is byte-identical across values.
	Shards int
	// HopZones are the candidate zones (default: EX-5's three).
	HopZones []string
	// Workload under test (default zipper).
	Workload workload.ID
	// BurstN is invocations per burst (default 400 — comfortably under the
	// 1,000-slot per-region concurrency quota even after the hybrid
	// strategy's CPU-retry amplification, so calm cells measure routing,
	// not quota pressure).
	BurstN int
	// ProfileRuns is per-zone profiling executions (default 2,000).
	ProfileRuns int
	// RefreshPolls is the characterization depth (default 6).
	RefreshPolls int
	// StormRate is the throttle-storm rejection probability (default 0.75:
	// three bounded attempts then survive ~58% of the time).
	StormRate float64
	// Arms overrides the policy ladder (default DefaultEX6Arms).
	Arms []EX6Arm
	// Scenarios overrides the chaos list (default EX6Scenarios).
	Scenarios []string
	// Sampler overrides the polling configuration.
	Sampler sampler.Config
}

func (c EX6Config) withDefaults() EX6Config {
	if len(c.HopZones) == 0 {
		c.HopZones = []string{"us-west-1a", "us-west-1b", "sa-east-1a"}
	}
	if c.Workload == 0 {
		c.Workload = workload.Zipper
	}
	if c.BurstN == 0 {
		c.BurstN = 400
	}
	if c.ProfileRuns == 0 {
		c.ProfileRuns = 2000
	}
	if c.RefreshPolls == 0 {
		c.RefreshPolls = 6
	}
	if c.StormRate == 0 {
		c.StormRate = 0.75
	}
	if len(c.Arms) == 0 {
		c.Arms = DefaultEX6Arms()
	}
	if len(c.Scenarios) == 0 {
		c.Scenarios = EX6Scenarios()
	}
	return c
}

// Reduced returns a benchmark-scale EX-6.
func (c EX6Config) Reduced() EX6Config {
	c = c.withDefaults()
	c.BurstN = 150
	c.ProfileRuns = 450
	c.RefreshPolls = 3
	c.Sampler = sampler.Config{
		Endpoints: 60, PollSize: 222, Branch: 10,
		InterPollPause: 500 * time.Millisecond,
	}
	return c
}

// EX6Cell is one (scenario, arm) measurement.
type EX6Cell struct {
	Scenario string
	Arm      string
	// TargetAZ is the zone the scenario poisoned (the hybrid favorite).
	TargetAZ string
	// AZ is the zone the burst finished on.
	AZ          string
	SuccessRate float64
	Completed   int
	Abandoned   int
	Attempts    int
	Failovers   int
	Hedges      int
	CostUSD     float64
	MeanRunMS   float64
	ElapsedMS   float64
}

// EX6Result carries the full scenario × arm grid, scenario-major in
// EX6Scenarios order.
type EX6Result struct {
	Workload workload.ID
	Cells    []EX6Cell
}

// Cell returns the (scenario, arm) measurement.
func (r EX6Result) Cell(scenario, arm string) (EX6Cell, bool) {
	for _, c := range r.Cells {
		if c.Scenario == scenario && c.Arm == arm {
			return c, true
		}
	}
	return EX6Cell{}, false
}

// scenarioFor builds the chaos scenario aimed at az ("calm" = none).
func scenarioFor(name, az string, stormRate float64) (chaos.Scenario, bool, error) {
	switch name {
	case "calm":
		return chaos.Scenario{}, false, nil
	case "throttle-storm":
		return chaos.ThrottleStormScenario(az, stormRate), true, nil
	default:
		sc, ok := chaos.ScenarioByName(name, az)
		if !ok {
			return chaos.Scenario{}, false, fmt.Errorf("ex6: unknown scenario %q", name)
		}
		return sc, true, nil
	}
}

// RunEX6 executes EX-6.
func RunEX6(cfg EX6Config) (EX6Result, error) {
	cfg = cfg.withDefaults()
	res := EX6Result{Workload: cfg.Workload}
	for _, scenario := range cfg.Scenarios {
		for _, arm := range cfg.Arms {
			cell, err := runEX6Cell(cfg, scenario, arm)
			if err != nil {
				return EX6Result{}, fmt.Errorf("ex6: %s/%s: %w", scenario, arm.Label, err)
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

// runEX6Cell measures one (scenario, arm) pair in a fresh runtime, so
// breaker state, drift damage, and warm pools never leak between cells.
func runEX6Cell(cfg EX6Config, scenario string, arm EX6Arm) (EX6Cell, error) {
	rt, err := newRuntime(cfg.Seed, 2, cfg.Sampler, cfg.Shards)
	if err != nil {
		return EX6Cell{}, err
	}
	cell := EX6Cell{Scenario: scenario, Arm: arm.Label}
	err = rt.Do(func(p *sim.Proc) error {
		if _, err := rt.Refresh(p, cfg.HopZones, cfg.RefreshPolls); err != nil {
			return err
		}
		if _, err := rt.ProfileWorkloads(p, []workload.ID{cfg.Workload}, cfg.HopZones, cfg.ProfileRuns); err != nil {
			return err
		}
		keepAlive := rt.Cloud().Options().KeepAlive
		p.Sleep(keepAlive + time.Minute)

		// Probe which zone hybrid prefers so the chaos lands exactly
		// where smart routing wants to be — a storm on a zone nobody
		// picks proves nothing.
		probe, err := rt.Run(p, router.BurstSpec{
			Strategy:   router.Hybrid{},
			Workload:   cfg.Workload,
			N:          50,
			Candidates: cfg.HopZones,
		})
		if err != nil {
			return err
		}
		cell.TargetAZ = probe.AZ
		p.Sleep(keepAlive + time.Minute)

		sc, armed, err := scenarioFor(scenario, cell.TargetAZ, cfg.StormRate)
		if err != nil {
			return err
		}
		if armed {
			if _, err := rt.Chaos().InjectScenario(sc); err != nil {
				return err
			}
			// Past every window's onset (zone-outage starts at +1 min)
			// but well inside its span.
			p.Sleep(90 * time.Second)
		}

		spec := arm.Strategy
		if spec.AZ == "" {
			spec.AZ = cell.TargetAZ
		}
		strat, err := router.Build(spec,
			router.WithLocator(router.NewZoneLocator(rt.Cloud())),
			router.WithPricer(router.NewZonePricer(rt.Cloud())))
		if err != nil {
			return err
		}
		r, err := rt.Run(p, router.BurstSpec{
			Strategy:   strat,
			Workload:   cfg.Workload,
			N:          cfg.BurstN,
			Candidates: cfg.HopZones,
			Resilience: arm.Resilience,
		})
		if err != nil {
			return err
		}
		cell.AZ = r.AZ
		cell.SuccessRate = r.SuccessRate()
		cell.Completed = r.Completed
		cell.Abandoned = r.Abandoned
		cell.Attempts = r.Attempts
		cell.Failovers = r.Failovers
		cell.Hedges = r.Hedges
		cell.CostUSD = r.CostUSD
		cell.MeanRunMS = r.MeanRunMS()
		cell.ElapsedMS = float64(r.Elapsed) / float64(time.Millisecond)
		return nil
	})
	if err != nil {
		return EX6Cell{}, err
	}
	return cell, nil
}

// Render produces the scenario × arm report.
func (r EX6Result) Render() string {
	out := fmt.Sprintf("EX-6 — routing resilience under injected faults (%s)\n", r.Workload)
	seen := map[string]bool{}
	var scenarios []string
	for _, c := range r.Cells {
		if !seen[c.Scenario] {
			seen[c.Scenario] = true
			scenarios = append(scenarios, c.Scenario)
		}
	}
	for _, scenario := range scenarios {
		t := tablefmt.New("arm", "success", "completed", "abandoned", "failovers", "hedges", "zone", "cost", "elapsed")
		target := ""
		for _, c := range r.Cells {
			if c.Scenario != scenario {
				continue
			}
			target = c.TargetAZ
			t.Row(c.Arm, tablefmt.Pct(c.SuccessRate), c.Completed, c.Abandoned,
				c.Failovers, c.Hedges, c.AZ, tablefmt.USD(c.CostUSD),
				(time.Duration(c.ElapsedMS) * time.Millisecond).Truncate(10*time.Millisecond).String())
		}
		out += fmt.Sprintf("\nscenario %s (chaos target %s)\n%s", scenario, target, t.String())
	}
	if storm, ok := r.Cell("throttle-storm", "hybrid+breaker"); ok {
		if base, ok := r.Cell("throttle-storm", "baseline"); ok {
			out += fmt.Sprintf("\nheadline: under the throttle storm the breaker+failover policy kept %s of the burst vs the pinned baseline's %s\n",
				tablefmt.Pct(storm.SuccessRate), tablefmt.Pct(base.SuccessRate))
		}
	}
	return out
}

// WriteCSV writes the full grid as one dataset.
func (r EX6Result) WriteCSV(dir string) error {
	t := tablefmt.New("scenario", "arm", "target_az", "final_az", "success_rate",
		"completed", "abandoned", "attempts", "failovers", "hedges",
		"cost_usd", "mean_run_ms", "elapsed_ms")
	for _, c := range r.Cells {
		t.Row(c.Scenario, c.Arm, c.TargetAZ, c.AZ, c.SuccessRate,
			c.Completed, c.Abandoned, c.Attempts, c.Failovers, c.Hedges,
			c.CostUSD, c.MeanRunMS, c.ElapsedMS)
	}
	return writeCSVFile(dir, "ex6_resilience.csv", t)
}
