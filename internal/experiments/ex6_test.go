package experiments

import (
	"reflect"
	"strings"
	"testing"
)

func runEX6Reduced(t *testing.T, seed uint64) EX6Result {
	t.Helper()
	res, err := RunEX6(EX6Config{Seed: seed}.Reduced())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestEX6Reduced checks the experiment's headline claims: resilient
// routing rides out a throttle storm that guts the bounded-retry baseline,
// and an outage is survivable only with breaker + failover.
func TestEX6Reduced(t *testing.T) {
	res := runEX6Reduced(t, 42)
	if len(res.Cells) != len(EX6Scenarios())*len(DefaultEX6Arms()) {
		t.Fatalf("cells = %d", len(res.Cells))
	}

	cell := func(scenario, arm string) EX6Cell {
		c, ok := res.Cell(scenario, arm)
		if !ok {
			t.Fatalf("missing cell %s/%s", scenario, arm)
		}
		return c
	}

	// Calm: every policy completes everything; nothing fails over.
	for _, arm := range DefaultEX6Arms() {
		c := cell("calm", arm.Label)
		if c.SuccessRate != 1 || c.Failovers != 0 {
			t.Errorf("calm/%s: success %.2f failovers %d", arm.Label, c.SuccessRate, c.Failovers)
		}
	}

	// Throttle storm: the acceptance thresholds.
	base := cell("throttle-storm", "baseline")
	if base.SuccessRate >= 0.60 {
		t.Errorf("baseline under storm = %.1f%%, want < 60%%", base.SuccessRate*100)
	}
	breaker := cell("throttle-storm", "hybrid+breaker")
	if breaker.SuccessRate < 0.95 {
		t.Errorf("hybrid+breaker under storm = %.1f%%, want >= 95%%", breaker.SuccessRate*100)
	}
	if breaker.Failovers == 0 {
		t.Error("breaker arm never failed over under the storm")
	}
	if breaker.AZ == breaker.TargetAZ {
		t.Errorf("breaker arm finished on the stormed zone %s", breaker.AZ)
	}

	// Outage: without failover nothing survives; with it everything does.
	if c := cell("zone-outage", "baseline"); c.SuccessRate != 0 {
		t.Errorf("baseline under outage = %.2f, want 0", c.SuccessRate)
	}
	if c := cell("zone-outage", "hybrid+breaker"); c.SuccessRate < 0.95 {
		t.Errorf("hybrid+breaker under outage = %.2f", c.SuccessRate)
	}

	// The hedging arm actually hedges.
	if c := cell("calm", "hybrid+hedge"); c.Hedges == 0 {
		t.Error("hedge arm armed no hedges")
	}

	// Render mentions every scenario and the headline comparison.
	out := res.Render()
	for _, scenario := range EX6Scenarios() {
		if !strings.Contains(out, "scenario "+scenario) {
			t.Errorf("render missing scenario %s", scenario)
		}
	}
	if !strings.Contains(out, "headline") {
		t.Error("render missing the headline comparison")
	}
}

// TestEX6Determinism: two same-seed runs must agree bit for bit — the
// acceptance criterion for the whole chaos layer.
func TestEX6Determinism(t *testing.T) {
	a, b := runEX6Reduced(t, 7), runEX6Reduced(t, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed EX-6 diverged:\n%+v\nvs\n%+v", a, b)
	}
}

func TestEX6CSV(t *testing.T) {
	res := runEX6Reduced(t, 42)
	dir := t.TempDir()
	if err := res.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
}
