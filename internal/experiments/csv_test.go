package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"skyfaas/internal/charact"
	"skyfaas/internal/cpu"
	"skyfaas/internal/saaf"
	"skyfaas/internal/sampler"
	"skyfaas/internal/workload"
)

func readCSV(t *testing.T, dir, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	return string(b)
}

func TestEX1WriteCSV(t *testing.T) {
	dir := t.TempDir()
	res := EX1Result{
		AZ: "us-west-1a",
		Sweep: []sampler.SweepPoint{
			{Sleep: 250 * time.Millisecond, MemoryMB: 2048, UniqueFIs: 999, CostUSD: 0.0093},
		},
		FirstAccount: []sampler.PollResult{
			{Requested: 999, NewFIs: 999},
			{Requested: 999, Failed: 999},
		},
		SecondAccount: []sampler.PollResult{
			{Requested: 999, Failed: 999, Reports: []saaf.Report{}},
		},
	}
	if err := res.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	sweep := readCSV(t, dir, "fig3_sleep_sweep.csv")
	if !strings.HasPrefix(sweep, "sleep_ms,memory_mb,unique_fis,cost_usd\n") {
		t.Errorf("sweep header: %q", sweep)
	}
	if !strings.Contains(sweep, "250,2048,999") {
		t.Errorf("sweep row missing: %q", sweep)
	}
	sat := readCSV(t, dir, "fig4_saturation.csv")
	if !strings.Contains(sat, "a,1,999,0,0") || !strings.Contains(sat, "b,1,0,999,1") {
		t.Errorf("saturation rows missing: %q", sat)
	}
}

func TestEX2WriteCSV(t *testing.T) {
	dir := t.TempDir()
	res := EX2Result{
		Regions: []RegionChar{{
			Region: "us-west-2", Provider: 1, Samples: 1000, CostUSD: 0.05,
			Dist: charact.Dist{cpu.Xeon30: 0.45, cpu.Xeon25: 0.55},
		}},
	}
	if err := res.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	got := readCSV(t, dir, "fig2_global_characterization.csv")
	if !strings.Contains(got, "us-west-2") || !strings.Contains(got, "0.45") {
		t.Errorf("csv = %q", got)
	}
	if !strings.Contains(got, "share_Xeon 3.00GHz") {
		t.Errorf("missing per-kind share columns: %q", got)
	}
}

func TestEX3EX4EX5WriteCSV(t *testing.T) {
	dir := t.TempDir()
	ex3 := EX3Result{Zones: []EX3Zone{{
		AZ: "z", APEByPoll: []float64{10, 2}, FIsByPoll: []int{999, 1998},
	}}}
	if err := ex3.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	if got := readCSV(t, dir, "fig5_progressive_sampling.csv"); !strings.Contains(got, "z,2,1998,2") {
		t.Errorf("ex3 csv = %q", got)
	}

	ex4 := EX4Result{
		Zones: []string{"z"},
		ByZone: map[string][]EX4Round{"z": {
			{Round: 0, PollsTo95: 3, FIsTo95: 2997, APEVsDay1: 0},
		}},
		HourlyAPE: []float64{0, 7.5},
	}
	if err := ex4.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	if got := readCSV(t, dir, "fig6_polls_to_accuracy.csv"); !strings.Contains(got, "z,1,3,2997") {
		t.Errorf("ex4 fig6 csv = %q", got)
	}
	if got := readCSV(t, dir, "fig8_hourly_variation.csv"); !strings.Contains(got, "1,7.5") {
		t.Errorf("ex4 fig8 csv = %q", got)
	}

	day := StrategyDay{Day: 0, CostUSD: 0.2, AZ: "z"}
	base := StrategyDay{Day: 0, CostUSD: 0.25, AZ: "b"}
	series := SavingsSeries{Days: []StrategyDay{day}, Baseline: []StrategyDay{base}}
	ex5 := EX5Result{
		NormalizedPerf: map[workload.ID]map[cpu.Kind]float64{
			workload.Zipper: {cpu.Xeon25: 1, cpu.Xeon30: 0.85},
		},
		ZipperRetrySlow:    series,
		ZipperFocusFastest: series,
		LogRegHybrid:       series,
		HybridByWorkload:   map[workload.ID]SavingsSeries{workload.Zipper: series},
	}
	if err := ex5.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	if got := readCSV(t, dir, "fig9_cpu_performance.csv"); !strings.Contains(got, "zipper,Xeon 3.00GHz,0.85") {
		t.Errorf("ex5 fig9 csv = %q", got)
	}
	if got := readCSV(t, dir, "fig10_zipper_retry.csv"); !strings.Contains(got, "1,0.25,0.2,0.2,0") {
		t.Errorf("ex5 fig10 csv = %q", got)
	}
	if got := readCSV(t, dir, "headline_hybrid_savings.csv"); !strings.Contains(got, "zipper,0.2") {
		t.Errorf("headline csv = %q", got)
	}
}

func TestSavingsSeriesMath(t *testing.T) {
	s := SavingsSeries{
		Days: []StrategyDay{
			{CostUSD: 0.8, RetryFrac: 0.5},
			{CostUSD: 0.9, RetryFrac: 0.2},
		},
		Baseline: []StrategyDay{
			{CostUSD: 1.0},
			{CostUSD: 1.0},
		},
	}
	if got := s.Cumulative(); got < 0.149 || got > 0.151 {
		t.Errorf("cumulative = %v, want 0.15", got)
	}
	if got := s.MaxDaily(); got < 0.199 || got > 0.201 {
		t.Errorf("max daily = %v, want 0.20", got)
	}
	if got := s.MaxRetryFrac(); got != 0.5 {
		t.Errorf("max retry = %v", got)
	}
	if (SavingsSeries{}).Cumulative() != 0 {
		t.Error("empty series cumulative != 0")
	}
}
