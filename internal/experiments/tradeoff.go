package experiments

import (
	"time"

	"skyfaas/internal/router"
	"skyfaas/internal/sampler"
	"skyfaas/internal/sim"
	"skyfaas/internal/workload"
)

// RetryTradeoffResult quantifies §4.6's latency/cost trade-off for the
// aggressive retry strategy on a 1,000-invocation burst.
type RetryTradeoffResult struct {
	// RetriesPerCompletion is the mean number of declined placements each
	// completed invocation paid for (the paper reports ~5 on us-west-1b
	// when focusing the 3.0 GHz Xeon... at its share that day).
	RetriesPerCompletion float64
	// HoldCostUSD is the total billed hold spend (the paper reports
	// ~$0.03 for the 1,000-invocation workload).
	HoldCostUSD float64
	// AddedLatencyMS is the extra burst wall time versus the no-retry
	// baseline. Each retried *request* is deferred by hold + cold-start
	// per round (§4.6's latency concern); at batch concurrency the wall
	// delta can even go negative, because the focused runs are faster and
	// drain the batch sooner — which is why the paper recommends the
	// method for asynchronous batch workloads.
	AddedLatencyMS float64
	// SavingsFrac is the burst cost saving versus the baseline.
	SavingsFrac float64
}

// RunRetryTradeoff runs a baseline and a focus-fastest burst of 1,000
// zipper invocations on us-west-1b and reports the §4.6 quantities.
func RunRetryTradeoff(seed uint64) (RetryTradeoffResult, error) {
	rt, err := newRuntime(seed, 3, sampler.Config{}, 0)
	if err != nil {
		return RetryTradeoffResult{}, err
	}
	const az = "us-west-1b"
	var res RetryTradeoffResult
	err = rt.Do(func(p *sim.Proc) error {
		if _, err := rt.Router().Profile(p, workload.Zipper, []string{az}, 1200, 0); err != nil {
			return err
		}
		p.Sleep(6 * time.Minute)
		if _, err := rt.Refresh(p, []string{az}, 6); err != nil {
			return err
		}
		base, err := rt.Run(p, router.BurstSpec{
			Strategy: router.Baseline{AZ: az}, Workload: workload.Zipper, N: 1000,
		})
		if err != nil {
			return err
		}
		p.Sleep(6 * time.Minute)
		focus, err := rt.Run(p, router.BurstSpec{
			Strategy: router.FocusFastest{AZ: az}, Workload: workload.Zipper, N: 1000,
		})
		if err != nil {
			return err
		}
		res.RetriesPerCompletion = float64(focus.Declined) / float64(focus.Completed)
		// Each decline bills exactly the 150 ms hold at the burst memory.
		zone, _ := rt.Cloud().AZ(az)
		price := rt.Cloud().Price(zone.Region().Provider())
		res.HoldCostUSD = float64(focus.Declined) * price.Cost(4096, 150)
		res.AddedLatencyMS = float64(focus.Elapsed-base.Elapsed) / float64(time.Millisecond)
		if base.CostUSD > 0 {
			res.SavingsFrac = 1 - focus.CostUSD/base.CostUSD
		}
		return nil
	})
	if err != nil {
		return RetryTradeoffResult{}, err
	}
	return res, nil
}
